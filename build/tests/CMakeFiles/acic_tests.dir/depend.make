# Empty dependencies file for acic_tests.
# This may be replaced when dependencies are built.
