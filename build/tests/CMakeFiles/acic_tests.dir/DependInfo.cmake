
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/acic_core_test.cpp" "tests/CMakeFiles/acic_tests.dir/acic_core_test.cpp.o" "gcc" "tests/CMakeFiles/acic_tests.dir/acic_core_test.cpp.o.d"
  "/root/repo/tests/apps_test.cpp" "tests/CMakeFiles/acic_tests.dir/apps_test.cpp.o" "gcc" "tests/CMakeFiles/acic_tests.dir/apps_test.cpp.o.d"
  "/root/repo/tests/cloud_test.cpp" "tests/CMakeFiles/acic_tests.dir/cloud_test.cpp.o" "gcc" "tests/CMakeFiles/acic_tests.dir/cloud_test.cpp.o.d"
  "/root/repo/tests/common_test.cpp" "tests/CMakeFiles/acic_tests.dir/common_test.cpp.o" "gcc" "tests/CMakeFiles/acic_tests.dir/common_test.cpp.o.d"
  "/root/repo/tests/extension_test.cpp" "tests/CMakeFiles/acic_tests.dir/extension_test.cpp.o" "gcc" "tests/CMakeFiles/acic_tests.dir/extension_test.cpp.o.d"
  "/root/repo/tests/flow_test.cpp" "tests/CMakeFiles/acic_tests.dir/flow_test.cpp.o" "gcc" "tests/CMakeFiles/acic_tests.dir/flow_test.cpp.o.d"
  "/root/repo/tests/fs_test.cpp" "tests/CMakeFiles/acic_tests.dir/fs_test.cpp.o" "gcc" "tests/CMakeFiles/acic_tests.dir/fs_test.cpp.o.d"
  "/root/repo/tests/io_test.cpp" "tests/CMakeFiles/acic_tests.dir/io_test.cpp.o" "gcc" "tests/CMakeFiles/acic_tests.dir/io_test.cpp.o.d"
  "/root/repo/tests/lustre_test.cpp" "tests/CMakeFiles/acic_tests.dir/lustre_test.cpp.o" "gcc" "tests/CMakeFiles/acic_tests.dir/lustre_test.cpp.o.d"
  "/root/repo/tests/ml_test.cpp" "tests/CMakeFiles/acic_tests.dir/ml_test.cpp.o" "gcc" "tests/CMakeFiles/acic_tests.dir/ml_test.cpp.o.d"
  "/root/repo/tests/mpi_test.cpp" "tests/CMakeFiles/acic_tests.dir/mpi_test.cpp.o" "gcc" "tests/CMakeFiles/acic_tests.dir/mpi_test.cpp.o.d"
  "/root/repo/tests/parallel_test.cpp" "tests/CMakeFiles/acic_tests.dir/parallel_test.cpp.o" "gcc" "tests/CMakeFiles/acic_tests.dir/parallel_test.cpp.o.d"
  "/root/repo/tests/paramspace_test.cpp" "tests/CMakeFiles/acic_tests.dir/paramspace_test.cpp.o" "gcc" "tests/CMakeFiles/acic_tests.dir/paramspace_test.cpp.o.d"
  "/root/repo/tests/pbdesign_test.cpp" "tests/CMakeFiles/acic_tests.dir/pbdesign_test.cpp.o" "gcc" "tests/CMakeFiles/acic_tests.dir/pbdesign_test.cpp.o.d"
  "/root/repo/tests/pricing_test.cpp" "tests/CMakeFiles/acic_tests.dir/pricing_test.cpp.o" "gcc" "tests/CMakeFiles/acic_tests.dir/pricing_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/acic_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/acic_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/regression_test.cpp" "tests/CMakeFiles/acic_tests.dir/regression_test.cpp.o" "gcc" "tests/CMakeFiles/acic_tests.dir/regression_test.cpp.o.d"
  "/root/repo/tests/replay_test.cpp" "tests/CMakeFiles/acic_tests.dir/replay_test.cpp.o" "gcc" "tests/CMakeFiles/acic_tests.dir/replay_test.cpp.o.d"
  "/root/repo/tests/service_test.cpp" "tests/CMakeFiles/acic_tests.dir/service_test.cpp.o" "gcc" "tests/CMakeFiles/acic_tests.dir/service_test.cpp.o.d"
  "/root/repo/tests/simcore_test.cpp" "tests/CMakeFiles/acic_tests.dir/simcore_test.cpp.o" "gcc" "tests/CMakeFiles/acic_tests.dir/simcore_test.cpp.o.d"
  "/root/repo/tests/storage_test.cpp" "tests/CMakeFiles/acic_tests.dir/storage_test.cpp.o" "gcc" "tests/CMakeFiles/acic_tests.dir/storage_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/acic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
