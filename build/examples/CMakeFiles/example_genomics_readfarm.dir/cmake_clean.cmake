file(REMOVE_RECURSE
  "CMakeFiles/example_genomics_readfarm.dir/genomics_readfarm.cpp.o"
  "CMakeFiles/example_genomics_readfarm.dir/genomics_readfarm.cpp.o.d"
  "example_genomics_readfarm"
  "example_genomics_readfarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_genomics_readfarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
