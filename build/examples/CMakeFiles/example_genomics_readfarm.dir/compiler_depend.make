# Empty compiler generated dependencies file for example_genomics_readfarm.
# This may be replaced when dependencies are built.
