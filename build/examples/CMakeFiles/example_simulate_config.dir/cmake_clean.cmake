file(REMOVE_RECURSE
  "CMakeFiles/example_simulate_config.dir/simulate_config.cpp.o"
  "CMakeFiles/example_simulate_config.dir/simulate_config.cpp.o.d"
  "example_simulate_config"
  "example_simulate_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_simulate_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
