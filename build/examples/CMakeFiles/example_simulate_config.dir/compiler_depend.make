# Empty compiler generated dependencies file for example_simulate_config.
# This may be replaced when dependencies are built.
