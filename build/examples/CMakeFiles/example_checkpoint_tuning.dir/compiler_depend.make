# Empty compiler generated dependencies file for example_checkpoint_tuning.
# This may be replaced when dependencies are built.
