file(REMOVE_RECURSE
  "CMakeFiles/example_checkpoint_tuning.dir/checkpoint_tuning.cpp.o"
  "CMakeFiles/example_checkpoint_tuning.dir/checkpoint_tuning.cpp.o.d"
  "example_checkpoint_tuning"
  "example_checkpoint_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_checkpoint_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
