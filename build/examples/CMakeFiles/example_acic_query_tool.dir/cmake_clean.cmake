file(REMOVE_RECURSE
  "CMakeFiles/example_acic_query_tool.dir/acic_query_tool.cpp.o"
  "CMakeFiles/example_acic_query_tool.dir/acic_query_tool.cpp.o.d"
  "example_acic_query_tool"
  "example_acic_query_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_acic_query_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
