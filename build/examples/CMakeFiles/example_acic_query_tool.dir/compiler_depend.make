# Empty compiler generated dependencies file for example_acic_query_tool.
# This may be replaced when dependencies are built.
