# Empty dependencies file for example_crowdsourced_training.
# This may be replaced when dependencies are built.
