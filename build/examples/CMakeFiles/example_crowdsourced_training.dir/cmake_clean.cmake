file(REMOVE_RECURSE
  "CMakeFiles/example_crowdsourced_training.dir/crowdsourced_training.cpp.o"
  "CMakeFiles/example_crowdsourced_training.dir/crowdsourced_training.cpp.o.d"
  "example_crowdsourced_training"
  "example_crowdsourced_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_crowdsourced_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
