file(REMOVE_RECURSE
  "CMakeFiles/example_new_device_rollout.dir/new_device_rollout.cpp.o"
  "CMakeFiles/example_new_device_rollout.dir/new_device_rollout.cpp.o.d"
  "example_new_device_rollout"
  "example_new_device_rollout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_new_device_rollout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
