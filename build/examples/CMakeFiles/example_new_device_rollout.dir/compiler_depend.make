# Empty compiler generated dependencies file for example_new_device_rollout.
# This may be replaced when dependencies are built.
