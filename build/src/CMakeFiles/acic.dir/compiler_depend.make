# Empty compiler generated dependencies file for acic.
# This may be replaced when dependencies are built.
