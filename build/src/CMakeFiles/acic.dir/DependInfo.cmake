
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/acic/apps/apps.cpp" "src/CMakeFiles/acic.dir/acic/apps/apps.cpp.o" "gcc" "src/CMakeFiles/acic.dir/acic/apps/apps.cpp.o.d"
  "/root/repo/src/acic/cloud/cluster.cpp" "src/CMakeFiles/acic.dir/acic/cloud/cluster.cpp.o" "gcc" "src/CMakeFiles/acic.dir/acic/cloud/cluster.cpp.o.d"
  "/root/repo/src/acic/cloud/failure.cpp" "src/CMakeFiles/acic.dir/acic/cloud/failure.cpp.o" "gcc" "src/CMakeFiles/acic.dir/acic/cloud/failure.cpp.o.d"
  "/root/repo/src/acic/cloud/instance.cpp" "src/CMakeFiles/acic.dir/acic/cloud/instance.cpp.o" "gcc" "src/CMakeFiles/acic.dir/acic/cloud/instance.cpp.o.d"
  "/root/repo/src/acic/cloud/ioconfig.cpp" "src/CMakeFiles/acic.dir/acic/cloud/ioconfig.cpp.o" "gcc" "src/CMakeFiles/acic.dir/acic/cloud/ioconfig.cpp.o.d"
  "/root/repo/src/acic/cloud/pricing.cpp" "src/CMakeFiles/acic.dir/acic/cloud/pricing.cpp.o" "gcc" "src/CMakeFiles/acic.dir/acic/cloud/pricing.cpp.o.d"
  "/root/repo/src/acic/common/csv.cpp" "src/CMakeFiles/acic.dir/acic/common/csv.cpp.o" "gcc" "src/CMakeFiles/acic.dir/acic/common/csv.cpp.o.d"
  "/root/repo/src/acic/common/parallel.cpp" "src/CMakeFiles/acic.dir/acic/common/parallel.cpp.o" "gcc" "src/CMakeFiles/acic.dir/acic/common/parallel.cpp.o.d"
  "/root/repo/src/acic/common/rng.cpp" "src/CMakeFiles/acic.dir/acic/common/rng.cpp.o" "gcc" "src/CMakeFiles/acic.dir/acic/common/rng.cpp.o.d"
  "/root/repo/src/acic/common/stats.cpp" "src/CMakeFiles/acic.dir/acic/common/stats.cpp.o" "gcc" "src/CMakeFiles/acic.dir/acic/common/stats.cpp.o.d"
  "/root/repo/src/acic/common/table.cpp" "src/CMakeFiles/acic.dir/acic/common/table.cpp.o" "gcc" "src/CMakeFiles/acic.dir/acic/common/table.cpp.o.d"
  "/root/repo/src/acic/common/units.cpp" "src/CMakeFiles/acic.dir/acic/common/units.cpp.o" "gcc" "src/CMakeFiles/acic.dir/acic/common/units.cpp.o.d"
  "/root/repo/src/acic/core/manual.cpp" "src/CMakeFiles/acic.dir/acic/core/manual.cpp.o" "gcc" "src/CMakeFiles/acic.dir/acic/core/manual.cpp.o.d"
  "/root/repo/src/acic/core/paramspace.cpp" "src/CMakeFiles/acic.dir/acic/core/paramspace.cpp.o" "gcc" "src/CMakeFiles/acic.dir/acic/core/paramspace.cpp.o.d"
  "/root/repo/src/acic/core/pbdesign.cpp" "src/CMakeFiles/acic.dir/acic/core/pbdesign.cpp.o" "gcc" "src/CMakeFiles/acic.dir/acic/core/pbdesign.cpp.o.d"
  "/root/repo/src/acic/core/predictor.cpp" "src/CMakeFiles/acic.dir/acic/core/predictor.cpp.o" "gcc" "src/CMakeFiles/acic.dir/acic/core/predictor.cpp.o.d"
  "/root/repo/src/acic/core/ranking.cpp" "src/CMakeFiles/acic.dir/acic/core/ranking.cpp.o" "gcc" "src/CMakeFiles/acic.dir/acic/core/ranking.cpp.o.d"
  "/root/repo/src/acic/core/training.cpp" "src/CMakeFiles/acic.dir/acic/core/training.cpp.o" "gcc" "src/CMakeFiles/acic.dir/acic/core/training.cpp.o.d"
  "/root/repo/src/acic/core/walker.cpp" "src/CMakeFiles/acic.dir/acic/core/walker.cpp.o" "gcc" "src/CMakeFiles/acic.dir/acic/core/walker.cpp.o.d"
  "/root/repo/src/acic/fs/filesystem.cpp" "src/CMakeFiles/acic.dir/acic/fs/filesystem.cpp.o" "gcc" "src/CMakeFiles/acic.dir/acic/fs/filesystem.cpp.o.d"
  "/root/repo/src/acic/fs/lustre.cpp" "src/CMakeFiles/acic.dir/acic/fs/lustre.cpp.o" "gcc" "src/CMakeFiles/acic.dir/acic/fs/lustre.cpp.o.d"
  "/root/repo/src/acic/fs/nfs.cpp" "src/CMakeFiles/acic.dir/acic/fs/nfs.cpp.o" "gcc" "src/CMakeFiles/acic.dir/acic/fs/nfs.cpp.o.d"
  "/root/repo/src/acic/fs/pvfs2.cpp" "src/CMakeFiles/acic.dir/acic/fs/pvfs2.cpp.o" "gcc" "src/CMakeFiles/acic.dir/acic/fs/pvfs2.cpp.o.d"
  "/root/repo/src/acic/io/middleware.cpp" "src/CMakeFiles/acic.dir/acic/io/middleware.cpp.o" "gcc" "src/CMakeFiles/acic.dir/acic/io/middleware.cpp.o.d"
  "/root/repo/src/acic/io/runner.cpp" "src/CMakeFiles/acic.dir/acic/io/runner.cpp.o" "gcc" "src/CMakeFiles/acic.dir/acic/io/runner.cpp.o.d"
  "/root/repo/src/acic/io/workload.cpp" "src/CMakeFiles/acic.dir/acic/io/workload.cpp.o" "gcc" "src/CMakeFiles/acic.dir/acic/io/workload.cpp.o.d"
  "/root/repo/src/acic/ior/ior.cpp" "src/CMakeFiles/acic.dir/acic/ior/ior.cpp.o" "gcc" "src/CMakeFiles/acic.dir/acic/ior/ior.cpp.o.d"
  "/root/repo/src/acic/ml/cart.cpp" "src/CMakeFiles/acic.dir/acic/ml/cart.cpp.o" "gcc" "src/CMakeFiles/acic.dir/acic/ml/cart.cpp.o.d"
  "/root/repo/src/acic/ml/dataset.cpp" "src/CMakeFiles/acic.dir/acic/ml/dataset.cpp.o" "gcc" "src/CMakeFiles/acic.dir/acic/ml/dataset.cpp.o.d"
  "/root/repo/src/acic/ml/forest.cpp" "src/CMakeFiles/acic.dir/acic/ml/forest.cpp.o" "gcc" "src/CMakeFiles/acic.dir/acic/ml/forest.cpp.o.d"
  "/root/repo/src/acic/ml/knn.cpp" "src/CMakeFiles/acic.dir/acic/ml/knn.cpp.o" "gcc" "src/CMakeFiles/acic.dir/acic/ml/knn.cpp.o.d"
  "/root/repo/src/acic/mpi/runtime.cpp" "src/CMakeFiles/acic.dir/acic/mpi/runtime.cpp.o" "gcc" "src/CMakeFiles/acic.dir/acic/mpi/runtime.cpp.o.d"
  "/root/repo/src/acic/profiler/replay.cpp" "src/CMakeFiles/acic.dir/acic/profiler/replay.cpp.o" "gcc" "src/CMakeFiles/acic.dir/acic/profiler/replay.cpp.o.d"
  "/root/repo/src/acic/profiler/tracer.cpp" "src/CMakeFiles/acic.dir/acic/profiler/tracer.cpp.o" "gcc" "src/CMakeFiles/acic.dir/acic/profiler/tracer.cpp.o.d"
  "/root/repo/src/acic/service/query_service.cpp" "src/CMakeFiles/acic.dir/acic/service/query_service.cpp.o" "gcc" "src/CMakeFiles/acic.dir/acic/service/query_service.cpp.o.d"
  "/root/repo/src/acic/simcore/flow.cpp" "src/CMakeFiles/acic.dir/acic/simcore/flow.cpp.o" "gcc" "src/CMakeFiles/acic.dir/acic/simcore/flow.cpp.o.d"
  "/root/repo/src/acic/simcore/simulator.cpp" "src/CMakeFiles/acic.dir/acic/simcore/simulator.cpp.o" "gcc" "src/CMakeFiles/acic.dir/acic/simcore/simulator.cpp.o.d"
  "/root/repo/src/acic/storage/device.cpp" "src/CMakeFiles/acic.dir/acic/storage/device.cpp.o" "gcc" "src/CMakeFiles/acic.dir/acic/storage/device.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
