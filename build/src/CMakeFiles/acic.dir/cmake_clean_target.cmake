file(REMOVE_RECURSE
  "libacic.a"
)
