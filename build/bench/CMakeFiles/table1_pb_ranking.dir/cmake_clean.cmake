file(REMOVE_RECURSE
  "CMakeFiles/table1_pb_ranking.dir/support.cpp.o"
  "CMakeFiles/table1_pb_ranking.dir/support.cpp.o.d"
  "CMakeFiles/table1_pb_ranking.dir/table1_pb_ranking.cpp.o"
  "CMakeFiles/table1_pb_ranking.dir/table1_pb_ranking.cpp.o.d"
  "table1_pb_ranking"
  "table1_pb_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_pb_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
