# Empty compiler generated dependencies file for table1_pb_ranking.
# This may be replaced when dependencies are built.
