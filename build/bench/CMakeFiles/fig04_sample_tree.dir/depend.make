# Empty dependencies file for fig04_sample_tree.
# This may be replaced when dependencies are built.
