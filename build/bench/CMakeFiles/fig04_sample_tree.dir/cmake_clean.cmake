file(REMOVE_RECURSE
  "CMakeFiles/fig04_sample_tree.dir/fig04_sample_tree.cpp.o"
  "CMakeFiles/fig04_sample_tree.dir/fig04_sample_tree.cpp.o.d"
  "CMakeFiles/fig04_sample_tree.dir/support.cpp.o"
  "CMakeFiles/fig04_sample_tree.dir/support.cpp.o.d"
  "fig04_sample_tree"
  "fig04_sample_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_sample_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
