file(REMOVE_RECURSE
  "CMakeFiles/fig06_effectiveness_cost.dir/fig06_effectiveness_cost.cpp.o"
  "CMakeFiles/fig06_effectiveness_cost.dir/fig06_effectiveness_cost.cpp.o.d"
  "CMakeFiles/fig06_effectiveness_cost.dir/support.cpp.o"
  "CMakeFiles/fig06_effectiveness_cost.dir/support.cpp.o.d"
  "fig06_effectiveness_cost"
  "fig06_effectiveness_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_effectiveness_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
