file(REMOVE_RECURSE
  "CMakeFiles/table2_pb_sample.dir/support.cpp.o"
  "CMakeFiles/table2_pb_sample.dir/support.cpp.o.d"
  "CMakeFiles/table2_pb_sample.dir/table2_pb_sample.cpp.o"
  "CMakeFiles/table2_pb_sample.dir/table2_pb_sample.cpp.o.d"
  "table2_pb_sample"
  "table2_pb_sample.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_pb_sample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
