# Empty compiler generated dependencies file for table2_pb_sample.
# This may be replaced when dependencies are built.
