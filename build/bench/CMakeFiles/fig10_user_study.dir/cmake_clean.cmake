file(REMOVE_RECURSE
  "CMakeFiles/fig10_user_study.dir/fig10_user_study.cpp.o"
  "CMakeFiles/fig10_user_study.dir/fig10_user_study.cpp.o.d"
  "CMakeFiles/fig10_user_study.dir/support.cpp.o"
  "CMakeFiles/fig10_user_study.dir/support.cpp.o.d"
  "fig10_user_study"
  "fig10_user_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_user_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
