# Empty dependencies file for fig09_walking.
# This may be replaced when dependencies are built.
