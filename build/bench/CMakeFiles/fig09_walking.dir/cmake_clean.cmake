file(REMOVE_RECURSE
  "CMakeFiles/fig09_walking.dir/fig09_walking.cpp.o"
  "CMakeFiles/fig09_walking.dir/fig09_walking.cpp.o.d"
  "CMakeFiles/fig09_walking.dir/support.cpp.o"
  "CMakeFiles/fig09_walking.dir/support.cpp.o.d"
  "fig09_walking"
  "fig09_walking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_walking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
