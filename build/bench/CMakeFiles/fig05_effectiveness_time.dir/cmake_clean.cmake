file(REMOVE_RECURSE
  "CMakeFiles/fig05_effectiveness_time.dir/fig05_effectiveness_time.cpp.o"
  "CMakeFiles/fig05_effectiveness_time.dir/fig05_effectiveness_time.cpp.o.d"
  "CMakeFiles/fig05_effectiveness_time.dir/support.cpp.o"
  "CMakeFiles/fig05_effectiveness_time.dir/support.cpp.o.d"
  "fig05_effectiveness_time"
  "fig05_effectiveness_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_effectiveness_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
