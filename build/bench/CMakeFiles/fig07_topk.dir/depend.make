# Empty dependencies file for fig07_topk.
# This may be replaced when dependencies are built.
