file(REMOVE_RECURSE
  "CMakeFiles/fig07_topk.dir/fig07_topk.cpp.o"
  "CMakeFiles/fig07_topk.dir/fig07_topk.cpp.o.d"
  "CMakeFiles/fig07_topk.dir/support.cpp.o"
  "CMakeFiles/fig07_topk.dir/support.cpp.o.d"
  "fig07_topk"
  "fig07_topk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
