# Empty dependencies file for ablation_learners.
# This may be replaced when dependencies are built.
