# Empty dependencies file for obs_training_insights.
# This may be replaced when dependencies are built.
