file(REMOVE_RECURSE
  "CMakeFiles/obs_training_insights.dir/obs_training_insights.cpp.o"
  "CMakeFiles/obs_training_insights.dir/obs_training_insights.cpp.o.d"
  "CMakeFiles/obs_training_insights.dir/support.cpp.o"
  "CMakeFiles/obs_training_insights.dir/support.cpp.o.d"
  "obs_training_insights"
  "obs_training_insights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_training_insights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
