file(REMOVE_RECURSE
  "CMakeFiles/table4_optimal_configs.dir/support.cpp.o"
  "CMakeFiles/table4_optimal_configs.dir/support.cpp.o.d"
  "CMakeFiles/table4_optimal_configs.dir/table4_optimal_configs.cpp.o"
  "CMakeFiles/table4_optimal_configs.dir/table4_optimal_configs.cpp.o.d"
  "table4_optimal_configs"
  "table4_optimal_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_optimal_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
