# Empty compiler generated dependencies file for table4_optimal_configs.
# This may be replaced when dependencies are built.
