file(REMOVE_RECURSE
  "CMakeFiles/fig08_training_cost.dir/fig08_training_cost.cpp.o"
  "CMakeFiles/fig08_training_cost.dir/fig08_training_cost.cpp.o.d"
  "CMakeFiles/fig08_training_cost.dir/support.cpp.o"
  "CMakeFiles/fig08_training_cost.dir/support.cpp.o.d"
  "fig08_training_cost"
  "fig08_training_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_training_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
