# Empty compiler generated dependencies file for fig08_training_cost.
# This may be replaced when dependencies are built.
