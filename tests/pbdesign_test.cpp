// Tests for Plackett–Burman designs, including the paper's Table 2
// worked example (N = 5, N' = 8).
#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>

#include "acic/common/error.hpp"
#include "acic/core/pbdesign.hpp"

namespace acic::core {
namespace {

TEST(PbDesign, RunsForMatchesPaper) {
  EXPECT_EQ(PbDesign::runs_for(5), 8);    // Table 2
  EXPECT_EQ(PbDesign::runs_for(15), 16);  // the ACIC space
  EXPECT_EQ(PbDesign::runs_for(7), 8);
  EXPECT_EQ(PbDesign::runs_for(11), 12);
  EXPECT_EQ(PbDesign::runs_for(16), 20);
}

TEST(PbDesign, MatrixShapeAndLastRow) {
  for (int runs : {8, 12, 16, 20, 24}) {
    const auto m = PbDesign::matrix(runs);
    ASSERT_EQ(static_cast<int>(m.size()), runs);
    for (const auto& row : m) {
      ASSERT_EQ(static_cast<int>(row.size()), runs - 1);
      for (int v : row) EXPECT_TRUE(v == 1 || v == -1);
    }
    // Final row is all low.
    for (int v : m.back()) EXPECT_EQ(v, -1);
  }
  EXPECT_THROW(PbDesign::matrix(10), Error);
}

TEST(PbDesign, ColumnsAreBalancedAndOrthogonal) {
  // Each column has runs/2 highs; distinct columns are orthogonal —
  // the defining property of a PB design.
  for (int runs : {8, 12, 16, 20}) {
    const auto m = PbDesign::matrix(runs);
    const int cols = runs - 1;
    for (int c = 0; c < cols; ++c) {
      int sum = 0;
      for (int r = 0; r < runs; ++r) sum += m[size_t(r)][size_t(c)];
      EXPECT_EQ(std::abs(sum), runs - 2 * (runs / 2)) << "col " << c;
    }
    for (int a = 0; a < cols; ++a) {
      for (int b = a + 1; b < cols; ++b) {
        int dot = 0;
        for (int r = 0; r < runs; ++r) {
          dot += m[size_t(r)][size_t(a)] * m[size_t(r)][size_t(b)];
        }
        EXPECT_EQ(dot, 0) << "cols " << a << "," << b << " runs " << runs;
      }
    }
  }
}

TEST(PbDesign, FoldoverDoublesRunsWithNegation) {
  const auto f = PbDesign::foldover(16);
  ASSERT_EQ(f.size(), 32u);
  for (std::size_t r = 0; r < 16; ++r) {
    for (std::size_t c = 0; c < 15; ++c) {
      EXPECT_EQ(f[r][c], -f[r + 16][c]);
    }
  }
}

TEST(PbDesign, EffectsMatchHandComputation) {
  // Tiny check: with response equal to one column, that column's effect
  // is N' and every other effect is 0 (orthogonality).
  const auto m = PbDesign::matrix(8);
  std::vector<double> response(8);
  for (std::size_t r = 0; r < 8; ++r) response[r] = m[r][2];
  const auto eff = PbDesign::effects(m, response, 7);
  EXPECT_DOUBLE_EQ(eff[2], 8.0);
  for (int j = 0; j < 7; ++j) {
    if (j != 2) {
      EXPECT_DOUBLE_EQ(eff[size_t(j)], 0.0) << j;
    }
  }
}

TEST(PbDesign, Table2StyleRankingIsByAbsoluteEffect) {
  // Effects with mixed signs: ranking must use |effect| (the paper notes
  // the sign is meaningless for ranking).
  const std::vector<double> eff = {40, -4, 48, -152, 28};
  const auto order = PbDesign::ranking(eff);
  EXPECT_EQ(order, (std::vector<int>{3, 2, 0, 4, 1}));
  const auto rank = PbDesign::rank_of_each(eff);
  EXPECT_EQ(rank, (std::vector<int>{3, 5, 2, 1, 4}));  // Table 2 row
}

TEST(PbDesign, EffectsValidatesShapes) {
  const auto m = PbDesign::matrix(8);
  EXPECT_THROW(PbDesign::effects(m, std::vector<double>(7), 5), Error);
  EXPECT_THROW(PbDesign::effects(m, std::vector<double>(8), 8), Error);
}

}  // namespace
}  // namespace acic::core
