// Tests for the 15-D exploration space: Table 1 fidelity, encode/decode
// round-trips, validity rules and repair.
#include <gtest/gtest.h>

#include "acic/apps/apps.hpp"
#include "acic/core/paramspace.hpp"
#include "acic/core/training.hpp"

namespace acic::core {
namespace {

TEST(ParamSpaceTest, HasFifteenTable1Dimensions) {
  const auto& dims = ParamSpace::dimensions();
  ASSERT_EQ(dims.size(), static_cast<std::size_t>(kNumDims));
  int system = 0;
  for (const auto& d : dims) system += d.is_system;
  EXPECT_EQ(system, 6);  // six cloud configuration dimensions
  EXPECT_EQ(dims[kDataSize].values.size(), 6u);
  EXPECT_EQ(dims[kIoServers].values, (std::vector<double>{1, 2, 4}));
}

TEST(ParamSpaceTest, RawCombinationsMatchPaperFootnote) {
  // Footnote 1: 2*2*2*3*2*2*4*4*2*3*6*4*2*2*2 = 1,769,472 with the
  // paper's {read, write}; we additionally sample the read+write mix
  // (IOR -w -r), scaling the product by 3/2.
  EXPECT_DOUBLE_EQ(ParamSpace::raw_combinations(), 1769472.0 * 1.5);
}

TEST(ParamSpaceTest, EncodeDecodeRoundTripsForCandidates) {
  const auto w = apps::btio(64);
  for (const auto& cfg : cloud::IoConfig::enumerate_candidates()) {
    const Point p = ParamSpace::encode(cfg, w);
    const auto decoded = ParamSpace::config_of(p);
    EXPECT_EQ(decoded.label(), cfg.label());
    const auto wl = ParamSpace::workload_of(p);
    EXPECT_EQ(wl.num_processes, w.num_processes);
    EXPECT_EQ(wl.collective, w.collective);
    EXPECT_DOUBLE_EQ(wl.data_size, w.data_size);
  }
}

TEST(ParamSpaceTest, OpMixEncoding) {
  auto w = apps::madbench2(64);  // read+write
  const Point p = ParamSpace::encode(cloud::IoConfig::baseline(), w);
  EXPECT_DOUBLE_EQ(p[kOpType], 0.5);
  EXPECT_EQ(ParamSpace::workload_of(p).op, io::OpMix::kReadWrite);
}

TEST(ParamSpaceTest, ValidityRules) {
  Point p = default_point();
  EXPECT_TRUE(ParamSpace::valid(p));
  Point bad = p;
  bad[kIoServers] = 4;  // NFS with 4 servers
  EXPECT_FALSE(ParamSpace::valid(bad));
  bad = p;
  bad[kRequestSize] = bad[kDataSize] * 2;
  EXPECT_FALSE(ParamSpace::valid(bad));
  bad = p;
  bad[kNumIoProcs] = 256;
  bad[kNumProcs] = 64;
  EXPECT_FALSE(ParamSpace::valid(bad));
  bad = p;
  bad[kInterface] = 0;  // POSIX
  bad[kCollective] = 1;
  EXPECT_FALSE(ParamSpace::valid(bad));
}

TEST(ParamSpaceTest, RepairProducesValidPoints) {
  Point p = default_point();
  p[kFileSystem] = 0;
  p[kIoServers] = 4;          // invalid for NFS
  p[kStripeSize] = 4.0 * MiB; // invalid for NFS
  p[kRequestSize] = 128.0 * MiB;
  p[kDataSize] = 1.0 * MiB;
  const Point fixed = ParamSpace::repaired(p);
  EXPECT_TRUE(ParamSpace::valid(fixed));
  EXPECT_DOUBLE_EQ(fixed[kIoServers], 1);
  EXPECT_DOUBLE_EQ(fixed[kStripeSize], 0);
  EXPECT_LE(fixed[kRequestSize], fixed[kDataSize]);
}

TEST(ParamSpaceTest, RepairSnapsToGrid) {
  Point p = default_point();
  p[kDataSize] = 20.0 * MiB;  // between the 16 MiB and 32 MiB samples
  const Point fixed = ParamSpace::repaired(p);
  EXPECT_DOUBLE_EQ(fixed[kDataSize], 16.0 * MiB);
}

TEST(ParamSpaceTest, DescribeIsHumanReadable) {
  const auto text = ParamSpace::describe(default_point());
  EXPECT_NE(text.find("nfs"), std::string::npos);
  EXPECT_NE(text.find("np=64"), std::string::npos);
}

TEST(ParamSpaceTest, LowHighEndsOfRanges) {
  EXPECT_DOUBLE_EQ(ParamSpace::low(kDataSize), 1.0 * MiB);
  EXPECT_DOUBLE_EQ(ParamSpace::high(kDataSize), 512.0 * MiB);
  EXPECT_DOUBLE_EQ(ParamSpace::low(kIoServers), 1);
  EXPECT_DOUBLE_EQ(ParamSpace::high(kIoServers), 4);
}

}  // namespace
}  // namespace acic::core
