// Tests for the cloud substrate: instance catalogue, IoConfig rules,
// cluster topology, pricing and failure injection.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "acic/cloud/cluster.hpp"
#include "acic/cloud/failure.hpp"
#include "acic/cloud/instance.hpp"
#include "acic/cloud/ioconfig.hpp"
#include "acic/common/error.hpp"

namespace acic::cloud {
namespace {

TEST(InstanceCatalogue, SpecsMatchEc2) {
  const auto& cc2 = instance_spec(InstanceType::kCc2_8xlarge);
  EXPECT_EQ(cc2.name, "cc2.8xlarge");
  EXPECT_EQ(cc2.cores, 16);
  EXPECT_EQ(cc2.ephemeral_disks, 4);
  EXPECT_DOUBLE_EQ(cc2.price_per_hour, 2.40);
  const auto& cc1 = instance_spec(InstanceType::kCc1_4xlarge);
  EXPECT_EQ(cc1.cores, 8);
  EXPECT_DOUBLE_EQ(cc1.price_per_hour, 1.30);
  EXPECT_LT(cc1.core_speed, cc2.core_speed);
}

TEST(InstanceCatalogue, StringRoundTrip) {
  EXPECT_EQ(instance_type_from_string("cc1.4xlarge"),
            InstanceType::kCc1_4xlarge);
  EXPECT_EQ(instance_type_from_string("cc2.8xlarge"),
            InstanceType::kCc2_8xlarge);
  EXPECT_THROW(instance_type_from_string("m1.small"), Error);
}

TEST(IoConfigTest, BaselineIsPaperBaseline) {
  const auto b = IoConfig::baseline();
  EXPECT_EQ(b.fs, FileSystemType::kNfs);
  EXPECT_EQ(b.device, storage::DeviceType::kEbs);
  EXPECT_EQ(b.placement, Placement::kDedicated);
  EXPECT_EQ(b.io_servers, 1);
  EXPECT_EQ(b.effective_raid_members(), 2);
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.label(), "nfs.D.ebs");
}

TEST(IoConfigTest, ValidityRules) {
  IoConfig c = IoConfig::baseline();
  c.io_servers = 2;  // NFS cannot have two servers
  EXPECT_FALSE(c.valid());
  c.fs = FileSystemType::kPvfs2;
  c.stripe_size = 0.0;  // PVFS2 needs a stripe size
  EXPECT_FALSE(c.valid());
  c.stripe_size = 64.0 * KiB;
  EXPECT_TRUE(c.valid());
}

TEST(IoConfigTest, EnumerationCountsAndUniqueLabels) {
  const auto all = IoConfig::enumerate_candidates();
  // 2 devices x 2 instances x 2 placements x (1 NFS + 3x2 PVFS2) = 56.
  EXPECT_EQ(all.size(), 56u);
  std::set<std::string> labels;
  for (const auto& c : all) {
    EXPECT_TRUE(c.valid());
    labels.insert(c.label());
  }
  EXPECT_EQ(labels.size(), all.size());
}

TEST(IoConfigTest, EphemeralRaidUsesAllLocalDisks) {
  IoConfig c = IoConfig::baseline();
  c.device = storage::DeviceType::kEphemeral;
  c.raid_members = 0;
  c.instance = InstanceType::kCc2_8xlarge;
  EXPECT_EQ(c.effective_raid_members(), 4);
  c.instance = InstanceType::kCc1_4xlarge;
  EXPECT_EQ(c.effective_raid_members(), 2);
}

ClusterModel::Options opts(int np, IoConfig cfg) {
  ClusterModel::Options o;
  o.num_processes = np;
  o.config = cfg;
  o.jitter_sigma = 0.0;  // exact capacities for the topology tests
  return o;
}

TEST(ClusterModelTest, DedicatedServersAddInstances) {
  sim::Simulator s;
  IoConfig cfg;
  cfg.fs = FileSystemType::kPvfs2;
  cfg.io_servers = 4;
  cfg.placement = Placement::kDedicated;
  cfg.device = storage::DeviceType::kEphemeral;
  ClusterModel cluster(s, opts(64, cfg));
  EXPECT_EQ(cluster.num_compute_instances(), 4);  // 64 ranks / 16 cores
  EXPECT_EQ(cluster.num_instances(), 8);
  for (int srv = 0; srv < 4; ++srv) {
    EXPECT_GE(cluster.instance_of_server(srv), 4);
  }
}

TEST(ClusterModelTest, PartTimeServersShareComputeInstances) {
  sim::Simulator s;
  IoConfig cfg;
  cfg.fs = FileSystemType::kPvfs2;
  cfg.io_servers = 4;
  cfg.placement = Placement::kPartTime;
  cfg.device = storage::DeviceType::kEphemeral;
  ClusterModel cluster(s, opts(64, cfg));
  EXPECT_EQ(cluster.num_instances(), 4);  // no extra bill
  for (int srv = 0; srv < 4; ++srv) {
    EXPECT_LT(cluster.instance_of_server(srv), 4);
  }
  // Rank 0 lives on instance 0, which hosts server 0.
  EXPECT_TRUE(cluster.rank_colocated_with_server(0, 0));
}

TEST(ClusterModelTest, LocalWritePathSkipsNics) {
  sim::Simulator s;
  IoConfig cfg;
  cfg.fs = FileSystemType::kPvfs2;
  cfg.io_servers = 1;
  cfg.placement = Placement::kPartTime;
  cfg.device = storage::DeviceType::kEphemeral;
  ClusterModel cluster(s, opts(32, cfg));
  // Rank 0 is co-located with server 0: pure device path.
  const auto local = cluster.write_path(0, 0);
  EXPECT_EQ(local.size(), 1u);
  // Rank 16 is on instance 1: two NIC hops plus the device.
  const auto remote = cluster.write_path(16, 0);
  EXPECT_EQ(remote.size(), 3u);
}

TEST(ClusterModelTest, EbsPathsTransitServerNic) {
  sim::Simulator s;
  IoConfig cfg = IoConfig::baseline();  // dedicated NFS over EBS
  ClusterModel cluster(s, opts(32, cfg));
  // Remote write: client tx, server rx, server tx (to EBS), volume.
  const auto w = cluster.write_path(0, 0);
  EXPECT_EQ(w.size(), 4u);
  const auto r = cluster.read_path(0, 0);
  EXPECT_EQ(r.size(), 4u);
}

TEST(ClusterModelTest, CommPathEmptyWithinInstance) {
  sim::Simulator s;
  ClusterModel cluster(s, opts(32, IoConfig::baseline()));
  EXPECT_TRUE(cluster.comm_path(0, 1).empty());
  EXPECT_EQ(cluster.comm_path(0, 16).size(), 2u);
}

TEST(ClusterModelTest, CostFollowsEquationOne) {
  sim::Simulator s;
  IoConfig cfg = IoConfig::baseline();
  ClusterModel cluster(s, opts(32, cfg));
  // 2 compute + 1 dedicated I/O instance, cc2 at $2.40/h.
  EXPECT_EQ(cluster.num_instances(), 3);
  EXPECT_NEAR(cluster.cost_of(kHour), 3 * 2.40, 1e-9);
  EXPECT_NEAR(cluster.cost_of(90.0), 3 * 2.40 * 90.0 / 3600.0, 1e-9);
}

TEST(ClusterModelTest, PartTimeComputeTaxApplies) {
  sim::Simulator s;
  IoConfig cfg;
  cfg.fs = FileSystemType::kPvfs2;
  cfg.io_servers = 1;
  cfg.placement = Placement::kPartTime;
  cfg.device = storage::DeviceType::kEphemeral;
  ClusterModel cluster(s, opts(32, cfg));
  // Rank 0 shares its instance with the server; rank 16 does not.
  EXPECT_GT(cluster.compute_time(10.0, 0), cluster.compute_time(10.0, 16));
}

TEST(ClusterModelTest, Cc1IsSlowerPerCore) {
  sim::Simulator s1, s2;
  IoConfig cfg1 = IoConfig::baseline();
  cfg1.instance = InstanceType::kCc1_4xlarge;
  ClusterModel c1(s1, opts(32, cfg1));
  ClusterModel c2(s2, opts(32, IoConfig::baseline()));
  EXPECT_GT(c1.compute_time(10.0, 0), c2.compute_time(10.0, 0));
}

TEST(ClusterModelTest, JitterPerturbsCapacityDeterministically) {
  sim::Simulator s1, s2, s3;
  auto o = opts(32, IoConfig::baseline());
  o.jitter_sigma = 0.1;
  o.seed = 7;
  ClusterModel a(s1, o), b(s2, o);
  o.seed = 8;
  ClusterModel c(s3, o);
  EXPECT_DOUBLE_EQ(a.network().capacity(a.nic_tx(0)),
                   b.network().capacity(b.nic_tx(0)));
  EXPECT_NE(a.network().capacity(a.nic_tx(0)),
            c.network().capacity(c.nic_tx(0)));
}

TEST(ClusterModelTest, RejectsInvalidConfig) {
  sim::Simulator s;
  IoConfig bad = IoConfig::baseline();
  bad.io_servers = 3;  // NFS with 3 servers
  EXPECT_THROW(ClusterModel(s, opts(32, bad)), Error);
}

TEST(FailureInjectorTest, OutageStallsTransferThenRecovers) {
  sim::Simulator s;
  IoConfig cfg;
  cfg.fs = FileSystemType::kPvfs2;
  cfg.io_servers = 1;
  cfg.placement = Placement::kDedicated;
  cfg.device = storage::DeviceType::kEphemeral;
  ClusterModel cluster(s, opts(16, cfg));
  FailureInjector inj(cluster);

  SimTime done_no_fail = 0.0;
  {
    sim::Simulator s2;
    ClusterModel c2(s2, opts(16, cfg));
    SimTime done = -1;
    c2.network().start_flow(c2.write_path(0, 0), 100.0 * MiB,
                            [&] { done = s2.now(); });
    s2.run();
    done_no_fail = done;
    EXPECT_GT(done_no_fail, 0.0);
  }

  SimTime done = -1;
  cluster.network().start_flow(cluster.write_path(0, 0), 100.0 * MiB,
                               [&] { done = s.now(); });
  inj.inject(FailureInjector::Target::kServerDevice, 0, 0.05, 10.0);
  s.run();
  EXPECT_NEAR(done, done_no_fail + 10.0, 0.1);
  EXPECT_EQ(inj.scheduled_outages(), 1);
}

TEST(FailureInjectorTest, RandomOutagesAreSeeded) {
  sim::Simulator s;
  IoConfig cfg;
  cfg.fs = FileSystemType::kPvfs2;
  cfg.io_servers = 4;
  cfg.placement = Placement::kDedicated;
  cfg.device = storage::DeviceType::kEphemeral;
  ClusterModel cluster(s, opts(32, cfg));
  FailureInjector inj(cluster);
  Rng rng(99);
  inj.inject_random(rng, /*outages_per_hour=*/60.0, /*horizon=*/kHour);
  EXPECT_GT(inj.scheduled_outages(), 20);
  EXPECT_LT(inj.scheduled_outages(), 180);
  s.run();  // all suppress/restore pairs must balance without throwing
}

IoConfig chaos_config(int servers = 1) {
  IoConfig cfg;
  cfg.fs = FileSystemType::kPvfs2;
  cfg.io_servers = servers;
  cfg.placement = Placement::kDedicated;
  cfg.device = storage::DeviceType::kEphemeral;
  cfg.stripe_size = 1.0 * MiB;
  return cfg;
}

/// Time for a 100 MiB write on server 0 of a fault-free cluster.
SimTime clean_write_time(const IoConfig& cfg, int np = 16) {
  sim::Simulator s;
  ClusterModel cluster(s, opts(np, cfg));
  SimTime done = -1;
  cluster.network().start_flow(cluster.write_path(0, 0), 100.0 * MiB,
                               [&] { done = s.now(); });
  s.run();
  return done;
}

TEST(FailureInjectorTest, BrownoutSlowsButDoesNotStall) {
  const auto cfg = chaos_config();
  const SimTime clean = clean_write_time(cfg);

  sim::Simulator s;
  ClusterModel cluster(s, opts(16, cfg));
  FailureInjector inj(cluster);
  SimTime done = -1;
  cluster.network().start_flow(cluster.write_path(0, 0), 100.0 * MiB,
                               [&] { done = s.now(); });
  FaultSpec spec;
  spec.kind = FaultKind::kBrownout;
  spec.server = 0;
  spec.at = 0.0;
  spec.duration = 1000.0;  // covers the whole transfer
  spec.fraction = 0.5;
  inj.inject(spec);
  s.run();
  // Degraded capacity: strictly slower than clean, but it *finishes*
  // inside the window — a brownout is interference, not an outage.
  EXPECT_GT(done, clean * 1.2);
  EXPECT_LT(done, 1000.0);
}

TEST(FailureInjectorTest, StragglerSlowsTheDevice) {
  const auto cfg = chaos_config();
  const SimTime clean = clean_write_time(cfg);

  sim::Simulator s;
  ClusterModel cluster(s, opts(16, cfg));
  FailureInjector inj(cluster);
  SimTime done = -1;
  cluster.network().start_flow(cluster.write_path(0, 0), 100.0 * MiB,
                               [&] { done = s.now(); });
  FaultSpec spec;
  spec.kind = FaultKind::kStraggler;
  spec.server = 0;
  spec.at = 0.0;
  spec.duration = 4000.0;
  spec.fraction = 0.25;
  inj.inject(spec);
  s.run();
  EXPECT_GT(done, clean * 1.5);  // a slow disk, not a dead one
  EXPECT_LT(done, 4000.0);
}

TEST(FailureInjectorTest, CorrelatedOutageStallsEveryServer) {
  const auto cfg = chaos_config(4);
  sim::Simulator s;
  ClusterModel cluster(s, opts(32, cfg));
  FailureInjector inj(cluster);

  std::vector<SimTime> clean(4, -1.0);
  {
    sim::Simulator s2;
    ClusterModel c2(s2, opts(32, cfg));
    for (int srv = 0; srv < 4; ++srv) {
      c2.network().start_flow(c2.write_path(0, srv), 50.0 * MiB,
                              [&clean, srv, &s2] { clean[srv] = s2.now(); });
    }
    s2.run();
  }

  std::vector<SimTime> done(4, -1.0);
  for (int srv = 0; srv < 4; ++srv) {
    cluster.network().start_flow(cluster.write_path(0, srv), 50.0 * MiB,
                                 [&done, srv, &s] { done[srv] = s.now(); });
  }
  inj.inject_correlated(/*at=*/0.05, /*duration=*/10.0);
  s.run();
  for (int srv = 0; srv < 4; ++srv) {
    EXPECT_NEAR(done[srv], clean[srv] + 10.0, 0.1) << "server " << srv;
  }
}

TEST(FailureInjectorTest, PermanentLossNeverRestores) {
  const auto cfg = chaos_config();
  sim::Simulator s;
  ClusterModel cluster(s, opts(16, cfg));
  FailureInjector inj(cluster);
  bool completed = false;
  cluster.network().start_flow(cluster.write_path(0, 0), 100.0 * MiB,
                               [&] { completed = true; });
  FaultSpec spec;
  spec.kind = FaultKind::kPermanentLoss;
  spec.server = 0;
  spec.at = 0.01;
  inj.inject(spec);
  s.run();  // queue drains; the flow is stuck at rate zero forever
  EXPECT_FALSE(completed);
  EXPECT_EQ(cluster.network().active_flows(), 1u);
  EXPECT_DOUBLE_EQ(
      cluster.network().capacity(cluster.device_write_resource(0)), 0.0);
}

// The tentpole regression: arbitrarily overlapped faults of every kind
// must hand back the *exact* original capacity — including the jittered
// capacities ClusterModel sets up — because effective capacity is always
// recomputed from the stored original, never patched incrementally.
TEST(FailureInjectorTest, OverlappingFaultsRestoreExactJitteredCapacity) {
  sim::Simulator s;
  auto o = opts(16, chaos_config());
  o.jitter_sigma = 0.1;  // non-round capacities: catch additive restore
  o.seed = 42;
  ClusterModel cluster(s, o);
  const auto dev_w = cluster.device_write_resource(0);
  const auto dev_r = cluster.device_read_resource(0);
  const auto nic = cluster.nic_tx(cluster.instance_of_server(0));
  const double orig_w = cluster.network().capacity(dev_w);
  const double orig_r = cluster.network().capacity(dev_r);
  const double orig_nic = cluster.network().capacity(nic);

  FailureInjector inj(cluster);
  // Overlap outages, brownouts and a straggler on the same server, with
  // staggered windows: [1,11] outage, [5,25] outage, [3,30] brownout,
  // [2,40] straggler, plus a NIC outage [4,12].
  FaultSpec f;
  f.server = 0;
  f.kind = FaultKind::kOutage;
  f.at = 1.0;
  f.duration = 10.0;
  inj.inject(f);
  f.at = 5.0;
  f.duration = 20.0;
  inj.inject(f);
  f.kind = FaultKind::kBrownout;
  f.at = 3.0;
  f.duration = 27.0;
  f.fraction = 0.5;
  inj.inject(f);
  f.kind = FaultKind::kStraggler;
  f.at = 2.0;
  f.duration = 38.0;
  f.fraction = 0.3;
  inj.inject(f);
  f.kind = FaultKind::kOutage;
  f.at = 4.0;
  f.duration = 8.0;
  f.hit_nic = true;
  inj.inject(f);

  s.run_until(20.0);
  // Mid-overlap the device is still suppressed by the second outage.
  EXPECT_DOUBLE_EQ(cluster.network().capacity(dev_w), 0.0);

  s.run();
  // Bit-exact restores, not EXPECT_NEAR: the restore path must reproduce
  // the jittered originals exactly.
  EXPECT_EQ(cluster.network().capacity(dev_w), orig_w);
  EXPECT_EQ(cluster.network().capacity(dev_r), orig_r);
  EXPECT_EQ(cluster.network().capacity(nic), orig_nic);
}

TEST(FaultModelTest, AnyCoversEveryRateIncludingPreemptions) {
  FaultModel m;
  EXPECT_FALSE(m.any());  // the all-zero default is injector-free
  m.preemptions_per_hour = 1.0;
  EXPECT_TRUE(m.any());
  EXPECT_TRUE(m.valid());
}

TEST(FaultModelTest, ValidityRules) {
  FaultModel m;
  EXPECT_TRUE(m.valid());
  // Outage-shaping probabilities without an outage rate are config
  // errors, not silent no-ops.
  m.correlated_outage_probability = 0.5;
  EXPECT_FALSE(m.valid());
  m = {};
  m.permanent_loss_probability = 0.5;
  EXPECT_FALSE(m.valid());
  m = {};
  m.outages_per_hour = 1.0;
  m.correlated_outage_probability = 0.5;
  m.permanent_loss_probability = 0.5;
  EXPECT_TRUE(m.valid());
  m = {};
  m.preemptions_per_hour = -1.0;
  EXPECT_FALSE(m.valid());
  m = {};
  m.preemptions_per_hour = 2.0;
  m.preemption_notice = -1.0;
  EXPECT_FALSE(m.valid());
}

// A preemption takes the whole server — NIC and device — after the
// notice window, and the notice hook fires first with the scheduled
// reclaim time so checkpoint managers can react.
TEST(FailureInjectorTest, PreemptionTakesWholeServerUntilRestored) {
  sim::Simulator s;
  auto o = opts(16, chaos_config());
  o.jitter_sigma = 0.08;  // exact-restore check needs jittered originals
  o.seed = 3;
  ClusterModel cluster(s, o);
  const auto dev_w = cluster.device_write_resource(0);
  const auto nic = cluster.nic_tx(cluster.instance_of_server(0));
  const double orig_dev = cluster.network().capacity(dev_w);
  const double orig_nic = cluster.network().capacity(nic);

  FailureInjector inj(cluster);
  SimTime notice_at = -1.0, notice_reclaim_at = -1.0, reclaimed_at = -1.0;
  PreemptionHooks hooks;
  hooks.on_notice = [&](int server, SimTime reclaim_at) {
    EXPECT_EQ(server, 0);
    notice_at = s.now();
    notice_reclaim_at = reclaim_at;
  };
  hooks.on_reclaim = [&](int server) {
    EXPECT_EQ(server, 0);
    reclaimed_at = s.now();
  };
  inj.set_preemption_hooks(std::move(hooks));

  FaultSpec spec;
  spec.kind = FaultKind::kPreemption;
  spec.server = 0;
  spec.at = 1.0;
  spec.notice = 2.0;
  inj.inject(spec);

  s.run_until(4.0);
  EXPECT_DOUBLE_EQ(notice_at, 1.0);
  EXPECT_DOUBLE_EQ(notice_reclaim_at, 3.0);
  EXPECT_DOUBLE_EQ(reclaimed_at, 3.0);
  // The whole server is dark: device and NIC.
  EXPECT_DOUBLE_EQ(cluster.network().capacity(dev_w), 0.0);
  EXPECT_DOUBLE_EQ(cluster.network().capacity(nic), 0.0);

  // A replacement comes online: exact jittered originals return.
  inj.restore_server(0);
  EXPECT_EQ(cluster.network().capacity(dev_w), orig_dev);
  EXPECT_EQ(cluster.network().capacity(nic), orig_nic);
  // Restoring a server that is not preempted is harmless.
  inj.restore_server(0);
  EXPECT_EQ(cluster.network().capacity(dev_w), orig_dev);
}

// Without restore_server() a preemption behaves like a whole-server
// permanent loss: in-flight transfers stall forever.
TEST(FailureInjectorTest, PreemptionWithoutRestoreStallsForever) {
  sim::Simulator s;
  ClusterModel cluster(s, opts(16, chaos_config()));
  FailureInjector inj(cluster);
  bool completed = false;
  cluster.network().start_flow(cluster.write_path(0, 0), 100.0 * MiB,
                               [&] { completed = true; });
  FaultSpec spec;
  spec.kind = FaultKind::kPreemption;
  spec.server = 0;
  spec.at = 0.01;
  spec.notice = 0.05;  // reclaim lands well before the transfer finishes
  inj.inject(spec);
  s.run();
  EXPECT_FALSE(completed);
  EXPECT_EQ(cluster.network().active_flows(), 1u);
}

// cancel_pending() force-restores a reclaimed server, and a straggling
// restore_server() afterwards (e.g. a replacement acquired just as the
// job finished) must not double-restore.
TEST(FailureInjectorTest, LateRestoreAfterCancelPendingIsANoOp) {
  sim::Simulator s;
  auto o = opts(16, chaos_config());
  o.jitter_sigma = 0.08;
  o.seed = 11;
  ClusterModel cluster(s, o);
  const auto dev_w = cluster.device_write_resource(0);
  const double orig = cluster.network().capacity(dev_w);

  FailureInjector inj(cluster);
  FaultSpec spec;
  spec.kind = FaultKind::kPreemption;
  spec.server = 0;
  spec.at = 1.0;
  spec.notice = 1.0;
  inj.inject(spec);
  s.run_until(3.0);
  EXPECT_DOUBLE_EQ(cluster.network().capacity(dev_w), 0.0);

  inj.cancel_pending();
  EXPECT_EQ(cluster.network().capacity(dev_w), orig);
  inj.restore_server(0);
  EXPECT_EQ(cluster.network().capacity(dev_w), orig);
}

TEST(FailureInjectorTest, CancelPendingRestoresAndSilencesTheSchedule) {
  sim::Simulator s;
  auto o = opts(16, chaos_config());
  o.jitter_sigma = 0.08;
  o.seed = 5;
  ClusterModel cluster(s, o);
  const auto dev_w = cluster.device_write_resource(0);
  const double orig = cluster.network().capacity(dev_w);

  FailureInjector inj(cluster);
  FaultSpec f;
  f.server = 0;
  f.at = 5.0;
  f.duration = 10.0;  // active at t=7
  inj.inject(f);
  f.at = 50.0;  // entirely in the future at t=7
  inj.inject(f);

  s.run_until(7.0);
  EXPECT_DOUBLE_EQ(cluster.network().capacity(dev_w), 0.0);

  // Job "finished" at t=7: cancel the restore of the active outage plus
  // both events of the future one, and force-restore the capacity.
  const std::size_t cancelled = inj.cancel_pending();
  EXPECT_GE(cancelled, 3u);
  EXPECT_EQ(cluster.network().capacity(dev_w), orig);

  // Nothing fires later: the capacity stays at its exact original.
  const auto executed_before = s.events_executed();
  s.run();
  EXPECT_EQ(cluster.network().capacity(dev_w), orig);
  EXPECT_EQ(s.events_executed(), executed_before);
}

}  // namespace
}  // namespace acic::cloud
