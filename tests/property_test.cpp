// Property-based sweeps over randomized workloads and configurations:
// conservation, monotonicity, determinism and capacity invariants that
// must hold for every point of the exploration space.
#include <gtest/gtest.h>

#include <algorithm>

#include "acic/common/rng.hpp"
#include "acic/core/paramspace.hpp"
#include "acic/io/runner.hpp"
#include "acic/ior/ior.hpp"
#include "acic/simcore/flow.hpp"

namespace acic {
namespace {

/// Draw a random valid point of the exploration space (moderate sizes so
/// a test sweep stays fast).
core::Point random_point(Rng& rng) {
  core::Point p{};
  for (const auto& d : core::ParamSpace::dimensions()) {
    const auto& values = d.values;
    p[d.dim] = values[rng.uniform_index(values.size())];
  }
  // Keep run times bounded: moderate process counts / volumes.
  p[core::kNumProcs] = std::min(p[core::kNumProcs], 64.0);
  p[core::kNumIoProcs] = std::min(p[core::kNumIoProcs], 64.0);
  p[core::kDataSize] = std::min(p[core::kDataSize], 32.0 * MiB);
  p[core::kIterations] = std::min(p[core::kIterations], 10.0);
  return core::ParamSpace::repaired(p);
}

class RandomSpacePointTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomSpacePointTest, ConservationAndSanity) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 4; ++trial) {
    const auto p = random_point(rng);
    const auto w = core::ParamSpace::workload_of(p);
    const auto cfg = core::ParamSpace::config_of(p);
    io::RunOptions o;
    o.jitter_sigma = 0.0;
    const auto r = ior::run_ior(w, cfg, o);
    SCOPED_TRACE(core::ParamSpace::describe(p));

    // Time sanity.
    EXPECT_GT(r.total_time, 0.0);
    EXPECT_LE(r.io_time, r.total_time + 1e-9);
    // Byte conservation: all payload reaches the file system (within
    // the HDF5/netCDF inflation and header bounds).
    EXPECT_GE(r.fs_bytes, w.total_bytes() * 0.999);
    EXPECT_LE(r.fs_bytes, w.total_bytes() * 1.05 + 64.0 * MiB);
    // Billing is consistent with Eq. (1).
    EXPECT_NEAR(r.cost,
                r.total_time * r.num_instances *
                    per_hour(cloud::instance_spec(cfg.instance)
                                 .price_per_hour),
                1e-9);
  }
}

TEST_P(RandomSpacePointTest, DeterministicPerSeed) {
  Rng rng(GetParam() ^ 0xabcdULL);
  const auto p = random_point(rng);
  const auto w = core::ParamSpace::workload_of(p);
  const auto cfg = core::ParamSpace::config_of(p);
  io::RunOptions o;
  o.seed = GetParam();
  const auto a = ior::run_ior(w, cfg, o);
  const auto b = ior::run_ior(w, cfg, o);
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.sim_events, b.sim_events);
}

TEST_P(RandomSpacePointTest, TimeMonotoneInDataVolume) {
  Rng rng(GetParam() ^ 0x5151ULL);
  const auto p = random_point(rng);
  auto w = core::ParamSpace::workload_of(p);
  const auto cfg = core::ParamSpace::config_of(p);
  io::RunOptions o;
  o.jitter_sigma = 0.0;
  const auto small = ior::run_ior(w, cfg, o);
  w.data_size *= 4.0;
  const auto big = ior::run_ior(w, cfg, o);
  EXPECT_GE(big.total_time, small.total_time * 0.999)
      << core::ParamSpace::describe(p);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSpacePointTest,
                         ::testing::Range<std::uint64_t>(1, 9));

// Capacity invariant: instantaneous max-min rates never oversubscribe a
// resource, across random flow populations.
class FlowCapacityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowCapacityTest, RatesRespectEveryCapacity) {
  Rng rng(GetParam());
  sim::Simulator s;
  sim::FlowNetwork net(s);
  std::vector<sim::ResourceId> resources;
  std::vector<double> caps;
  for (int i = 0; i < 6; ++i) {
    const double cap = rng.uniform(10.0, 200.0);
    resources.push_back(net.add_resource("r" + std::to_string(i), cap));
    caps.push_back(cap);
  }
  struct Live {
    sim::FlowId id;
    std::vector<sim::ResourceId> path;
  };
  std::vector<Live> flows;
  for (int f = 0; f < 24; ++f) {
    std::vector<sim::ResourceId> path;
    const std::size_t hops = 1 + rng.uniform_index(3);
    for (std::size_t h = 0; h < hops; ++h) {
      const auto r = resources[rng.uniform_index(resources.size())];
      if (std::find(path.begin(), path.end(), r) == path.end()) {
        path.push_back(r);
      }
    }
    const auto id = net.start_flow(path, 1e7, nullptr);
    flows.push_back({id, path});
  }
  // Inspect the allocation immediately after the last admission.
  std::vector<double> load(resources.size(), 0.0);
  for (const auto& f : flows) {
    const double rate = net.flow_rate(f.id);
    EXPECT_GE(rate, 0.0);
    for (auto r : f.path) load[r] += rate;
  }
  for (std::size_t i = 0; i < resources.size(); ++i) {
    EXPECT_LE(load[i], caps[i] * (1.0 + 1e-9)) << "resource " << i;
  }
  // And the allocation is work-conserving: every flow got a positive
  // rate (all capacities are positive).
  for (const auto& f : flows) EXPECT_GT(net.flow_rate(f.id), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowCapacityTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace acic
