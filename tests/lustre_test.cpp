// Tests for the Lustre extension file system.
#include <gtest/gtest.h>

#include "acic/core/paramspace.hpp"
#include "acic/core/training.hpp"
#include "acic/fs/filesystem.hpp"
#include "acic/fs/lustre.hpp"
#include "acic/io/runner.hpp"
#include "acic/ior/ior.hpp"

namespace acic::fs {
namespace {

cloud::IoConfig lustre_cfg(int servers, Bytes stripe = 4.0 * MiB) {
  cloud::IoConfig c;
  c.fs = cloud::FileSystemType::kLustre;
  c.device = storage::DeviceType::kEphemeral;
  c.io_servers = servers;
  c.placement = cloud::Placement::kDedicated;
  c.stripe_size = stripe;
  return c;
}

cloud::IoConfig pvfs_cfg(int servers) {
  auto c = lustre_cfg(servers);
  c.fs = cloud::FileSystemType::kPvfs2;
  return c;
}

TEST(LustreTest, ConfigPlumbing) {
  const auto c = lustre_cfg(4);
  EXPECT_TRUE(c.valid());
  EXPECT_EQ(c.label(), "lustre.4.D.eph.4M");
  EXPECT_EQ(cloud::fs_from_string("lustre"), cloud::FileSystemType::kLustre);
  EXPECT_STREQ(cloud::to_string(cloud::FileSystemType::kLustre), "Lustre");
  // Needs a stripe size like any striped FS.
  auto bad = c;
  bad.stripe_size = 0.0;
  EXPECT_FALSE(bad.valid());
}

TEST(LustreTest, FactoryAndParamSpaceRoundTrip) {
  sim::Simulator s;
  cloud::ClusterModel::Options o;
  o.num_processes = 16;
  o.config = lustre_cfg(2);
  o.jitter_sigma = 0.0;
  cloud::ClusterModel cluster(s, o);
  EXPECT_STREQ(make_filesystem(cluster)->name(), "Lustre");

  const auto p = core::ParamSpace::encode(
      lustre_cfg(2), core::ParamSpace::workload_of(core::default_point()));
  EXPECT_DOUBLE_EQ(p[core::kFileSystem], 2.0);
  EXPECT_EQ(core::ParamSpace::config_of(p).fs,
            cloud::FileSystemType::kLustre);
}

TEST(LustreTest, StripingScalesLikeAParallelFs) {
  const auto w = ior::IorBench()
                     .api("POSIX")
                     .tasks(32)
                     .block_size(256.0 * MiB)
                     .transfer_size(16.0 * MiB)
                     .write_only()
                     .file_per_process(true)
                     .build();
  io::RunOptions o;
  o.jitter_sigma = 0.0;
  const auto one = io::run_workload(w, lustre_cfg(1), o);
  const auto four = io::run_workload(w, lustre_cfg(4), o);
  EXPECT_GT(one.total_time, 2.0 * four.total_time);
}

TEST(LustreTest, BeatsPvfs2OnSharedWriteLatency) {
  // Lustre's threaded OSS + cheap extent locks: many small shared-file
  // writes should be at least as fast as our PVFS2 model's.
  const auto w = ior::IorBench()
                     .api("MPIIO")
                     .tasks(32)
                     .block_size(8.0 * MiB)
                     .transfer_size(256.0 * KiB)
                     .write_only()
                     .file_per_process(false)
                     .build();
  io::RunOptions o;
  o.jitter_sigma = 0.0;
  const auto lustre = io::run_workload(w, lustre_cfg(4), o);
  const auto pvfs = io::run_workload(w, pvfs_cfg(4), o);
  EXPECT_LE(lustre.total_time, pvfs.total_time * 1.02);
}

TEST(LustreTest, TrainableViaValueOverride) {
  // The same §8 pathway as the SSD rollout: extend the file-system
  // dimension's sampled values and collect a batch including Lustre.
  core::TrainingPlan plan;
  std::vector<int> order;
  for (int d = 0; d < core::kNumDims; ++d) order.push_back(d);
  plan.dim_order = order;
  plan.top_dims = 6;
  plan.max_samples = 200;
  plan.value_overrides.entries.push_back({core::kFileSystem, {0, 1, 2}});
  core::TrainingDatabase db;
  core::collect_training_data(db, plan);
  bool saw_lustre = false;
  for (const auto& s : db.samples()) {
    if (s.point[core::kFileSystem] == 2.0) saw_lustre = true;
  }
  EXPECT_TRUE(saw_lustre);
}

}  // namespace
}  // namespace acic::fs
