// Tests for the host-thread parallel_for helper.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "acic/common/error.hpp"
#include "acic/common/parallel.hpp"

namespace acic {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, WorksWithExplicitThreadCounts) {
  for (unsigned threads : {1u, 2u, 7u}) {
    std::atomic<long> sum{0};
    parallel_for(100, [&](std::size_t i) { sum += static_cast<long>(i); },
                 threads);
    EXPECT_EQ(sum.load(), 4950);
  }
}

TEST(ParallelFor, ZeroItemsIsNoop) {
  bool called = false;
  parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for(
          50,
          [](std::size_t i) {
            if (i == 17) throw Error("boom");
          },
          4),
      Error);
}

// Regression: after one worker threw, the remaining workers used to grind
// through every remaining item before the exception surfaced — a bad
// config early in a 10k-simulation sweep burned the whole sweep.  With
// the failure flag the pool drains promptly.
TEST(ParallelFor, DrainsPromptlyAfterWorkerThrows) {
  const std::size_t n = 200000;
  std::atomic<std::size_t> executed{0};
  EXPECT_THROW(
      parallel_for(
          n,
          [&](std::size_t i) {
            if (i == 0) throw Error("poison item");
            executed.fetch_add(1, std::memory_order_relaxed);
          },
          4),
      Error);
  // Exact drain point depends on scheduling, but it must be nowhere near
  // the full sweep (the old behaviour executed all n-1 surviving items).
  EXPECT_LT(executed.load(), n / 2);
}

TEST(ParallelFor, SerialFallbackPreservesOrder) {
  std::vector<std::size_t> order;
  parallel_for(10, [&](std::size_t i) { order.push_back(i); }, 1);
  std::vector<std::size_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

}  // namespace
}  // namespace acic
