// Integration tests for the ACIC core: training collection, the
// predictor, PB ranking, space walking and the manual policies.
#include <gtest/gtest.h>

#include <filesystem>
#include <cmath>
#include <limits>
#include <set>

#include "acic/apps/apps.hpp"
#include "acic/common/error.hpp"
#include "acic/core/manual.hpp"
#include "acic/core/predictor.hpp"
#include "acic/core/ranking.hpp"
#include "acic/core/walker.hpp"
#include "acic/common/stats.hpp"
#include "acic/io/runner.hpp"
#include "acic/ml/knn.hpp"

namespace acic::core {
namespace {

/// Small PB ranking + training database shared across tests (collecting
/// data is the expensive part, so do it once).
class AcicCoreFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    PbRankingOptions opts;
    ranking_ = new PbRankingResult(run_pb_ranking(opts));
    db_ = new TrainingDatabase();
    TrainingPlan plan;
    plan.dim_order = ranking_->importance;
    // 6 system dims + the top PB-ranked workload dims, enough to cover
    // the op-type dimension two of the four applications need.
    plan.top_dims = 12;
    plan.max_samples = 320;
    plan.seed = 11;
    stats_ = collect_training_data(*db_, plan);
  }
  static void TearDownTestSuite() {
    delete ranking_;
    delete db_;
    ranking_ = nullptr;
    db_ = nullptr;
  }

  static PbRankingResult* ranking_;
  static TrainingDatabase* db_;
  static TrainingStats stats_;
};

PbRankingResult* AcicCoreFixture::ranking_ = nullptr;
TrainingDatabase* AcicCoreFixture::db_ = nullptr;
TrainingStats AcicCoreFixture::stats_;

TEST_F(AcicCoreFixture, PbRankingScreensAllDimensionsIn32Runs) {
  EXPECT_EQ(ranking_->design.size(), 32u);
  EXPECT_EQ(ranking_->response.size(), 32u);
  EXPECT_EQ(ranking_->stats.runs, 32u);
  EXPECT_EQ(ranking_->importance.size(), static_cast<std::size_t>(kNumDims));
  // Ranks are a permutation of 1..15.
  std::set<int> ranks(ranking_->rank_of_each.begin(),
                      ranking_->rank_of_each.end());
  EXPECT_EQ(ranks.size(), static_cast<std::size_t>(kNumDims));
  EXPECT_EQ(*ranks.begin(), 1);
  EXPECT_EQ(*ranks.rbegin(), kNumDims);
}

TEST_F(AcicCoreFixture, PbRankingFindsDataSizeInfluential) {
  // The paper finds "data size" the most important dimension; our
  // substrate should at least place it in the upper half.
  EXPECT_LE(ranking_->rank_of_each[kDataSize], 7);
}

TEST_F(AcicCoreFixture, TrainingCollectsRequestedSamples) {
  EXPECT_GE(db_->size(), 250u);
  EXPECT_LE(db_->size(), 320u);
  EXPECT_GT(stats_.runs, db_->size());  // baselines included
  EXPECT_GT(stats_.money, 0.0);
  for (const auto& s : db_->samples()) {
    EXPECT_GT(s.time, 0.0);
    EXPECT_GT(s.baseline_time, 0.0);
    EXPECT_TRUE(ParamSpace::valid(s.point));
  }
}

TEST_F(AcicCoreFixture, DatabaseCsvRoundTrip) {
  const auto path = (std::filesystem::temp_directory_path() /
                     "acic_train_db.csv")
                        .string();
  db_->save(path);
  const auto loaded = TrainingDatabase::load(path);
  ASSERT_EQ(loaded.size(), db_->size());
  EXPECT_DOUBLE_EQ(loaded.samples()[0].time, db_->samples()[0].time);
  EXPECT_EQ(loaded.samples()[0].point, db_->samples()[0].point);
  std::filesystem::remove(path);
}

// Regression: a zero-time sample (corrupt CSV row) used to slip into the
// database and turn into an inf improvement label that poisoned CART
// training.  Non-positive or non-finite measurements are now rejected at
// the insert boundary.
TEST(TrainingDatabaseGuard, RejectsNonPositiveMeasurements) {
  TrainingDatabase db;
  TrainingSample good;
  good.point = default_point();
  good.time = 50.0;
  good.cost = 5.0;
  good.baseline_time = 100.0;
  good.baseline_cost = 10.0;
  EXPECT_NO_THROW(db.insert(good));

  for (auto mutate : {+[](TrainingSample& s) { s.time = 0.0; },
                      +[](TrainingSample& s) { s.time = -3.0; },
                      +[](TrainingSample& s) { s.cost = 0.0; },
                      +[](TrainingSample& s) { s.baseline_time = 0.0; },
                      +[](TrainingSample& s) { s.baseline_cost = -1.0; },
                      +[](TrainingSample& s) {
                        s.time = std::numeric_limits<double>::infinity();
                      }}) {
    TrainingSample bad = good;
    mutate(bad);
    EXPECT_THROW(db.insert(bad), Error);
  }
  EXPECT_EQ(db.size(), 1u);
}

TEST(TrainingDatabaseGuard, FromCsvRejectsCorruptRows) {
  TrainingDatabase db;
  TrainingSample s;
  s.point = default_point();
  s.time = 50.0;
  s.cost = 5.0;
  s.baseline_time = 100.0;
  s.baseline_cost = 10.0;
  db.insert(s);
  auto table = db.to_csv();

  auto zero_time = table;
  zero_time.rows[0][static_cast<std::size_t>(kNumDims)] = "0";
  EXPECT_THROW(TrainingDatabase::from_csv(zero_time), Error);

  auto mangled = table;
  mangled.rows[0][static_cast<std::size_t>(kNumDims)] = "not-a-number";
  try {
    TrainingDatabase::from_csv(mangled);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    // The old bare std::stod escaped with a useless "stod" message.
    EXPECT_NE(std::string(e.what()).find("row 1"), std::string::npos)
        << e.what();
  }
}

TEST_F(AcicCoreFixture, AgingDropsOldestSamples) {
  TrainingDatabase copy = *db_;
  const auto last_seq = copy.samples().back().sequence;
  copy.age_out(50);
  EXPECT_EQ(copy.size(), 50u);
  EXPECT_EQ(copy.samples().back().sequence, last_seq);
}

TEST_F(AcicCoreFixture, PredictorRanksCandidatesPlausibly) {
  Acic acic(*db_, Objective::kPerformance);
  const auto traits = apps::madbench2(64);
  const auto recs = acic.recommend(traits, 5);
  ASSERT_EQ(recs.size(), 5u);
  // Ordered by predicted improvement.
  for (std::size_t i = 1; i < recs.size(); ++i) {
    EXPECT_GE(recs[i - 1].predicted_improvement,
              recs[i].predicted_improvement);
  }
  // The predictions must discriminate (not a constant model).
  const auto all = acic.recommend(traits, 56);
  EXPECT_GT(all.front().predicted_improvement,
            all.back().predicted_improvement);
}

TEST_F(AcicCoreFixture, RecommendationActuallyBeatsMedian) {
  // End-to-end check of the paper's headline claim on one app: the
  // top recommendation's *measured* time beats the median candidate.
  Acic acic(*db_, Objective::kPerformance);
  const auto traits = apps::madbench2(64);
  const auto recs = acic.recommend(traits, 1);
  std::vector<double> all_times;
  double rec_time = 0.0;
  for (const auto& cfg : cloud::IoConfig::enumerate_candidates()) {
    io::RunOptions o;
    o.seed = 5;
    const auto r = io::run_workload(traits, cfg, o);
    all_times.push_back(r.total_time);
    if (cfg.label() == recs.front().config.label()) {
      rec_time = r.total_time;
    }
  }
  EXPECT_LT(rec_time, median_of(all_times));
}

TEST_F(AcicCoreFixture, AlternateLearnersPlugIn) {
  Acic knn(*db_, Objective::kCost,
           [] { return std::make_unique<ml::KnnRegressor>(5); });
  EXPECT_EQ(knn.model().name(), "kNN");
  const auto recs = knn.recommend(apps::flashio(64), 3);
  EXPECT_EQ(recs.size(), 3u);
}

TEST_F(AcicCoreFixture, LogResponseScreeningDiffersFromRaw) {
  // The effects are computed on log(response); on this substrate the raw
  // scale is dominated by the volume dimensions, so the two rankings
  // genuinely differ — and data size tops both.
  const auto raw_effects =
      PbDesign::effects(ranking_->design, ranking_->response, kNumDims);
  const auto raw_ranks = PbDesign::rank_of_each(raw_effects);
  EXPECT_NE(raw_ranks, ranking_->rank_of_each);
  EXPECT_EQ(ranking_->importance.front(), kDataSize);
}

TEST_F(AcicCoreFixture, PbResponsesAreFiniteAndPositive) {
  for (double r : ranking_->response) {
    EXPECT_TRUE(std::isfinite(r));
    EXPECT_GT(r, 0.0);
  }
}

TEST(SpaceWalkerTest, ProbeCacheAvoidsRepeatMeasurements) {
  int probes = 0;
  auto probe = [&](const cloud::IoConfig& c) {
    ++probes;
    return static_cast<double>(c.io_servers);
  };
  // Walk the same dimension list twice over; re-visited configs must hit
  // the walker's cache rather than re-running the probe.
  auto order = SpaceWalker::system_dims();
  order.insert(order.end(), order.begin(), order.end());
  const auto result = SpaceWalker::walk(probe, order);
  EXPECT_EQ(result.probes, probes);
  EXPECT_LE(probes, 25);
}

TEST_F(AcicCoreFixture, WalkerUsesPbRankOrder) {
  const auto order = SpaceWalker::system_dims_ranked(ranking_->importance);
  ASSERT_EQ(order.size(), 6u);
  std::set<Dim> dims(order.begin(), order.end());
  EXPECT_EQ(dims.size(), 6u);
}

TEST(SpaceWalkerTest, GreedyWalkFindsPlantedOptimum) {
  // Synthetic probe: separable objective minimised by a known config.
  auto probe = [](const cloud::IoConfig& c) {
    double v = 10.0;
    v += c.device == storage::DeviceType::kEphemeral ? 0.0 : 5.0;
    v += c.fs == cloud::FileSystemType::kPvfs2 ? 0.0 : 3.0;
    v += (4 - c.io_servers);
    v += c.placement == cloud::Placement::kDedicated ? 0.0 : 1.0;
    return v;
  };
  const auto result =
      SpaceWalker::walk(probe, SpaceWalker::system_dims());
  EXPECT_EQ(result.best.device, storage::DeviceType::kEphemeral);
  EXPECT_EQ(result.best.fs, cloud::FileSystemType::kPvfs2);
  EXPECT_EQ(result.best.io_servers, 4);
  EXPECT_EQ(result.best.placement, cloud::Placement::kDedicated);
  EXPECT_GT(result.probes, 5);
  EXPECT_LT(result.probes, 25);  // far fewer than the 56 candidates
}

TEST(SpaceWalkerTest, RandomWalkIsSeededAndValid) {
  auto probe = [](const cloud::IoConfig& c) {
    return c.io_servers == 2 ? 1.0 : 2.0;
  };
  Rng a(3), b(3);
  const auto ra = SpaceWalker::random_walk(probe, a);
  const auto rb = SpaceWalker::random_walk(probe, b);
  EXPECT_EQ(ra.best.label(), rb.best.label());
  EXPECT_TRUE(ra.best.valid());
}

TEST(ManualPolicies, ProduceValidAndDistinctConfigs) {
  for (const auto& run : apps::evaluation_suite()) {
    for (auto obj : {Objective::kPerformance, Objective::kCost}) {
      const auto u = user_top3(run.workload, obj);
      const auto d = developer_top3(run.workload, obj);
      ASSERT_EQ(u.size(), 3u);
      ASSERT_EQ(d.size(), 3u);
      for (const auto& c : u) EXPECT_TRUE(c.valid());
      for (const auto& c : d) EXPECT_TRUE(c.valid());
      EXPECT_EQ(u.front().label(), user_choice(run.workload, obj).label());
      EXPECT_EQ(d.front().label(),
                developer_choice(run.workload, obj).label());
    }
  }
}

TEST(ManualPolicies, DeveloperIsMorePatternAware) {
  // For the read-heavy large mpiBLAST the developer provisions more
  // parallel I/O than the user.
  const auto traits = apps::mpiblast(128);
  const auto u = user_choice(traits, Objective::kPerformance);
  const auto d = developer_choice(traits, Objective::kPerformance);
  EXPECT_GE(d.io_servers, u.io_servers);
}

TEST(TrainingHelpers, EnumerationGrowsExponentially) {
  std::vector<int> order = {kDataSize, kOpType,     kIoServers,
                            kNumIoProcs, kFileSystem, kStripeSize,
                            kPlacement,  kRequestSize, kInterface,
                            kDevice,     kCollective,  kInstanceType,
                            kIterations, kNumProcs,    kFileSharing};
  const double seven = enumeration_size(order, 7);
  const double ten = enumeration_size(order, 10);
  const double fifteen = enumeration_size(order, 15);
  EXPECT_GT(ten, 10.0 * seven);
  EXPECT_GT(fifteen, 10.0 * ten);
  EXPECT_DOUBLE_EQ(fifteen, ParamSpace::raw_combinations());
  EXPECT_DOUBLE_EQ(full_training_cost(order, 7, 0.05), seven * 0.05);
}

TEST(TrainingHelpers, DefaultPointIsBaselineLike) {
  const auto p = default_point();
  EXPECT_TRUE(ParamSpace::valid(p));
  EXPECT_EQ(ParamSpace::config_of(p).label(),
            cloud::IoConfig::baseline().label());
}

}  // namespace
}  // namespace acic::core
