// Tests for the acic::obs metrics layer: counter/gauge/histogram
// semantics, registry find-or-create and kind collisions, snapshot
// isolation, exports, the scoped timer, and (under TSan) concurrent
// hot-path writes.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "acic/common/error.hpp"
#include "acic/obs/metrics.hpp"

namespace acic::obs {
namespace {

TEST(MetricsRegistryTest, CounterAccumulates) {
  MetricsRegistry registry;
  auto& c = registry.counter("requests");
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  c.inc();
  c.add(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
}

TEST(MetricsRegistryTest, GaugeKeepsLastValue) {
  MetricsRegistry registry;
  auto& g = registry.gauge("depth");
  g.set(7.0);
  g.set(3.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
}

TEST(MetricsRegistryTest, SameNameReturnsSameInstrument) {
  MetricsRegistry registry;
  auto& a = registry.counter("x");
  auto& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_DOUBLE_EQ(b.value(), 1.0);
}

TEST(MetricsRegistryTest, KindCollisionThrows) {
  MetricsRegistry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), Error);
  EXPECT_THROW(registry.histogram("x"), Error);
}

TEST(MetricsRegistryTest, HistogramBoundsMismatchThrows) {
  MetricsRegistry registry;
  registry.histogram("h", {1.0, 2.0});
  EXPECT_NO_THROW(registry.histogram("h", {1.0, 2.0}));
  EXPECT_THROW(registry.histogram("h", {1.0, 3.0}), Error);
}

TEST(MetricsRegistryTest, ResetAllZeroesButKeepsHandles) {
  MetricsRegistry registry;
  auto& c = registry.counter("c");
  auto& h = registry.histogram("h", {1.0});
  c.add(5.0);
  h.observe(0.5);
  registry.reset_all();
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  c.inc();  // handle still live after reset
  EXPECT_DOUBLE_EQ(c.value(), 1.0);
}

TEST(MetricsHistogramTest, BucketsCountByUpperBound) {
  MetricsRegistry registry;
  auto& h = registry.histogram("lat", {1.0, 4.0, 16.0});
  for (double v : {0.5, 1.0, 2.0, 10.0, 100.0}) h.observe(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 113.5);
  EXPECT_EQ(h.bucket(0), 2u);  // 0.5, 1.0 (bounds are inclusive)
  EXPECT_EQ(h.bucket(1), 1u);  // 2.0
  EXPECT_EQ(h.bucket(2), 1u);  // 10.0
  EXPECT_EQ(h.bucket(3), 1u);  // 100.0 → overflow
}

TEST(MetricsHistogramTest, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), Error);
  EXPECT_THROW(Histogram({2.0, 1.0}), Error);
  EXPECT_THROW(Histogram({1.0, 1.0}), Error);
}

TEST(MetricsHistogramTest, SnapshotQuantiles) {
  MetricsRegistry registry;
  auto& h = registry.histogram("lat", {1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 90; ++i) h.observe(0.5);  // bucket <=1
  for (int i = 0; i < 10; ++i) h.observe(5.0);  // bucket <=8
  const auto snap = registry.snapshot();
  const auto* hs = snap.histogram("lat");
  ASSERT_NE(hs, nullptr);
  EXPECT_DOUBLE_EQ(hs->quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(hs->quantile(0.99), 8.0);
  EXPECT_NEAR(hs->mean(), (90 * 0.5 + 10 * 5.0) / 100.0, 1e-12);
}

TEST(MetricsSnapshotTest, SnapshotIsIsolatedFromLaterWrites) {
  MetricsRegistry registry;
  auto& c = registry.counter("c");
  auto& h = registry.histogram("h", {1.0});
  c.add(2.0);
  h.observe(0.5);
  const auto snap = registry.snapshot();
  c.add(100.0);
  h.observe(0.5);
  ASSERT_NE(snap.counter("c"), nullptr);
  EXPECT_DOUBLE_EQ(*snap.counter("c"), 2.0);
  ASSERT_NE(snap.histogram("h"), nullptr);
  EXPECT_EQ(snap.histogram("h")->count, 1u);
}

TEST(MetricsSnapshotTest, TextAndCsvExports) {
  MetricsRegistry registry;
  registry.counter("service.requests.rank").add(4.0);
  registry.gauge("queue.depth").set(2.0);
  registry.histogram("lat", {1.0, 2.0}).observe(1.5);
  const auto snap = registry.snapshot();

  const auto text = snap.to_text("  ");
  EXPECT_NE(text.find("  service.requests.rank 4"), std::string::npos);
  EXPECT_NE(text.find("  queue.depth 2"), std::string::npos);
  EXPECT_NE(text.find("  lat count=1"), std::string::npos);

  const auto csv = snap.to_csv();
  ASSERT_EQ(csv.header.size(), 9u);
  ASSERT_EQ(csv.rows.size(), 3u);
  for (const auto& row : csv.rows) EXPECT_EQ(row.size(), csv.header.size());
  // Round-trips through the CSV writer (no commas/newlines in cells).
  EXPECT_NO_THROW(to_csv(csv));
}

TEST(MetricsTimerTest, RecordsOneObservation) {
  MetricsRegistry registry;
  auto& h = registry.histogram("t_us");
  {
    Timer timer(h);
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum(), 0.0);
  EXPECT_LT(h.sum(), 1e6);  // a no-op scope should be well under a second
}

TEST(MetricsConcurrency, ParallelWritesAreExact) {
  MetricsRegistry registry;
  auto& c = registry.counter("hits");
  auto& h = registry.histogram("lat", {1.0, 2.0, 4.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.observe(static_cast<double>(t % 4));
      }
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_DOUBLE_EQ(c.value(), double(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), std::uint64_t(kThreads) * kPerThread);
}

TEST(MetricsConcurrency, SnapshotDuringWritesIsConsistentPerInstrument) {
  MetricsRegistry registry;
  auto& c = registry.counter("c");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load()) c.inc();
  });
  for (int i = 0; i < 100; ++i) {
    const auto snap = registry.snapshot();
    ASSERT_NE(snap.counter("c"), nullptr);
    EXPECT_GE(*snap.counter("c"), 0.0);
  }
  stop.store(true);
  writer.join();
}

}  // namespace
}  // namespace acic::obs
