// Tests for the query service: protocol parsing, responses, error
// handling, database refresh, concurrent serving against copy-on-write
// engine snapshots, and the request metrics it reports.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "acic/common/error.hpp"
#include "acic/obs/metrics.hpp"
#include "acic/service/query_service.hpp"

namespace acic::service {
namespace {

/// A tiny synthetic database: PVFS2-4-ephemeral points improve over
/// baseline, everything else does not.  Enough structure for CART to
/// learn a preference without running a single simulation.
core::TrainingDatabase synthetic_db() {
  core::TrainingDatabase db;
  const auto defaults = core::default_point();
  int tick = 0;
  for (const auto& cfg : cloud::IoConfig::enumerate_candidates()) {
    for (double data : {4.0 * MiB, 128.0 * MiB}) {
      core::Point p = defaults;
      p = core::ParamSpace::encode(
          cfg, core::ParamSpace::workload_of(defaults));
      p[core::kDataSize] = data;
      p = core::ParamSpace::repaired(p);
      core::TrainingSample s;
      s.point = p;
      const bool good = cfg.fs == cloud::FileSystemType::kPvfs2 &&
                        cfg.io_servers == 4 &&
                        cfg.device == storage::DeviceType::kEphemeral;
      s.baseline_time = 100.0;
      s.time = good ? 25.0 + (tick % 3) : 110.0 + (tick % 7);
      s.baseline_cost = 10.0;
      s.cost = good ? 4.0 : 11.0;
      db.insert(s);
      ++tick;
    }
  }
  return db;
}

core::PbRankingResult synthetic_ranking() {
  core::PbRankingResult r;
  for (int d = 0; d < core::kNumDims; ++d) {
    r.importance.push_back(d);
    r.rank_of_each.push_back(d + 1);
    r.effects.push_back(core::kNumDims - d);
  }
  return r;
}

QueryService make_service() {
  return QueryService(synthetic_db(), synthetic_ranking());
}

TEST(ParseSize, AcceptsCommonUnits) {
  EXPECT_DOUBLE_EQ(parse_size("2048"), 2048.0);
  EXPECT_DOUBLE_EQ(parse_size("4MiB"), 4.0 * MiB);
  EXPECT_DOUBLE_EQ(parse_size("256KiB"), 256.0 * KiB);
  EXPECT_DOUBLE_EQ(parse_size("1.5GiB"), 1.5 * GiB);
  EXPECT_DOUBLE_EQ(parse_size("2gb"), 2.0 * GiB);
  EXPECT_THROW(parse_size("10parsecs"), Error);
  EXPECT_THROW(parse_size(""), Error);
}

// Regression: "-4MiB" used to flow a negative Bytes into workloads, and a
// bare unit ("MiB") escaped as an unhelpful std::stod "stod" exception.
TEST(ParseSize, RejectsNonPositiveAndNonFiniteValues) {
  EXPECT_THROW(parse_size("-4MiB"), Error);
  EXPECT_THROW(parse_size("-1"), Error);
  EXPECT_THROW(parse_size("0"), Error);
  EXPECT_THROW(parse_size("0MiB"), Error);
  EXPECT_THROW(parse_size("nan"), Error);
  EXPECT_THROW(parse_size("inf"), Error);
  EXPECT_THROW(parse_size("1e999"), Error);  // stod out_of_range
}

TEST(ParseSize, ErrorsNameTheOffendingText) {
  try {
    parse_size("MiB");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("MiB"), std::string::npos)
        << e.what();
  }
  try {
    parse_size("-4MiB");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("-4MiB"), std::string::npos)
        << e.what();
  }
}

TEST(ParseCount, AcceptsPlainNonNegativeIntegers) {
  EXPECT_EQ(parse_count("top_k", "0"), 0u);
  EXPECT_EQ(parse_count("top_k", "12"), 12u);
  EXPECT_EQ(parse_count("np", "4096"), 4096u);
}

// Regression: raw std::stoul wrapped "top_k=-1" to a huge count and
// surfaced "top_k=abc" as "error stoul".
TEST(ParseCount, RejectsSignsGarbageAndOverflow) {
  EXPECT_THROW(parse_count("top_k", "-1"), Error);
  EXPECT_THROW(parse_count("top_k", "abc"), Error);
  EXPECT_THROW(parse_count("top_k", "1.5"), Error);
  EXPECT_THROW(parse_count("top_k", "+3"), Error);
  EXPECT_THROW(parse_count("top_k", ""), Error);
  EXPECT_THROW(parse_count("top_k", "99999999999999999999999999"), Error);
  try {
    parse_count("top_k", "abc");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("top_k"), std::string::npos) << what;
    EXPECT_NE(what.find("abc"), std::string::npos) << what;
  }
}

TEST(ParseWorkload, FillsFieldsAndValidates) {
  const auto w = parse_workload_query(
      "recommend np=128 io_procs=64 interface=POSIX iterations=5 "
      "data=64MiB request=1MiB op=read shared=no");
  EXPECT_EQ(w.num_processes, 128);
  EXPECT_EQ(w.num_io_processes, 64);
  EXPECT_EQ(w.interface, io::IoInterface::kPosix);
  EXPECT_EQ(w.iterations, 5);
  EXPECT_DOUBLE_EQ(w.data_size, 64.0 * MiB);
  EXPECT_EQ(w.op, io::OpMix::kRead);
  EXPECT_FALSE(w.file_shared);
}

TEST(ParseWorkload, RejectsUnknownKeys) {
  EXPECT_THROW(parse_workload_query("recommend warp_factor=9"), Error);
}

TEST(QueryServiceTest, RecommendPrefersThePlantedOptimum) {
  auto svc = make_service();
  const auto resp = svc.handle(
      "recommend objective=performance top_k=3 np=64 data=128MiB "
      "request=4MiB op=write");
  EXPECT_EQ(resp.rfind("ok 3 recommendations", 0), 0u) << resp;
  // The best predicted config must be a pvfs.4 ephemeral one.
  const auto first = resp.find("pvfs.4");
  ASSERT_NE(first, std::string::npos) << resp;
  EXPECT_LT(first, resp.find('\n', resp.find('\n') + 1) + 80);
}

TEST(QueryServiceTest, PredictReturnsNumericImprovement) {
  auto svc = make_service();
  const auto resp = svc.handle(
      "predict config=pvfs.4.D.eph.4M np=64 data=128MiB op=write");
  EXPECT_EQ(resp.rfind("ok predicted_improvement=", 0), 0u) << resp;
  const double v = std::stod(resp.substr(resp.find('=') + 1));
  EXPECT_GT(v, 1.5);  // planted: ~4x better than baseline
}

TEST(QueryServiceTest, RankListsDimensions) {
  auto svc = make_service();
  const auto resp = svc.handle("rank top=3");
  EXPECT_NE(resp.find("1. Disk device"), std::string::npos) << resp;
  EXPECT_EQ(std::count(resp.begin(), resp.end(), '\n'), 4);
}

TEST(QueryServiceTest, StatsAndHelp) {
  auto svc = make_service();
  EXPECT_NE(svc.handle("stats").find("ok database="), std::string::npos);
  EXPECT_NE(svc.handle("help").find("recommend"), std::string::npos);
}

TEST(QueryServiceTest, ErrorsAreReportedNotThrown) {
  auto svc = make_service();
  EXPECT_EQ(svc.handle("frobnicate").rfind("error", 0), 0u);
  EXPECT_EQ(svc.handle("recommend objective=speed").rfind("error", 0), 0u);
  EXPECT_EQ(svc.handle("predict np=4").rfind("error", 0), 0u);
  EXPECT_EQ(svc.handle("recommend data=banana").rfind("error", 0), 0u);
}

TEST(QueryServiceTest, UpdateDatabaseRetrains) {
  auto svc = make_service();
  const auto before = svc.handle(
      "predict config=pvfs.4.D.eph.4M np=64 data=128MiB op=write");
  // Replace with a database where *nothing* improves.
  core::TrainingDatabase flat;
  const auto source = synthetic_db();  // keep alive across the loop
  for (const auto& s : source.samples()) {
    auto copy = s;
    copy.time = copy.baseline_time;  // improvement exactly 1.0
    copy.cost = copy.baseline_cost;
    flat.insert(copy);
  }
  svc.update_database(std::move(flat));
  const auto after = svc.handle(
      "predict config=pvfs.4.D.eph.4M np=64 data=128MiB op=write");
  const double v = std::stod(after.substr(after.find('=') + 1));
  EXPECT_NEAR(v, 1.0, 1e-9);
  EXPECT_NE(before, after);
}

// Regression: service.engine_builds / service.train_latency_us used to
// be re-registered inline at both the constructor and update_database()
// — two registration sites for one name, which tools/lint/acic_lint.py
// now rejects.  The counter is registered once and must keep counting
// across rebuilds.
TEST(QueryServiceTest, EngineBuildMetricsCountAcrossRebuilds) {
  auto& registry = obs::MetricsRegistry::global();
  const auto counter_at = [&] {
    const auto snap = registry.snapshot();
    const double* v = snap.counter("service.engine_builds");
    return v ? *v : 0.0;
  };
  const double before = counter_at();
  auto svc = make_service();  // constructor: one engine build
  svc.update_database(synthetic_db());  // one more
  EXPECT_NEAR(counter_at() - before, 2.0, 1e-9);
  const auto snap = registry.snapshot();
  const auto* lat = snap.histogram("service.train_latency_us");
  ASSERT_NE(lat, nullptr);
  EXPECT_GE(lat->count, 2u);
}

TEST(QueryServiceTest, ReportsErrorsOnBadCounts) {
  auto svc = make_service();
  const auto bad_k = svc.handle(
      "recommend top_k=abc np=64 data=4MiB op=write");
  EXPECT_EQ(bad_k.rfind("error", 0), 0u) << bad_k;
  EXPECT_NE(bad_k.find("top_k"), std::string::npos) << bad_k;
  const auto negative = svc.handle("rank top=-1");
  EXPECT_EQ(negative.rfind("error", 0), 0u) << negative;
  EXPECT_NE(negative.find("top"), std::string::npos) << negative;
  const auto bad_np = svc.handle("predict config=pvfs.4.D.eph.4M np=-8");
  EXPECT_EQ(bad_np.rfind("error", 0), 0u) << bad_np;
}

TEST(QueryServiceTest, HandleBatchAnswersInRequestOrder) {
  auto svc = make_service();
  const std::vector<std::string> requests = {
      "rank top=1",
      "rank top=2",
      "predict config=pvfs.4.D.eph.4M np=64 data=128MiB op=write",
      "rank top=3",
  };
  const auto responses = svc.handle_batch(requests, 4);
  ASSERT_EQ(responses.size(), requests.size());
  EXPECT_EQ(responses[0].rfind("ok 1 dimensions", 0), 0u) << responses[0];
  EXPECT_EQ(responses[1].rfind("ok 2 dimensions", 0), 0u) << responses[1];
  EXPECT_EQ(responses[2].rfind("ok predicted_improvement=", 0), 0u)
      << responses[2];
  EXPECT_EQ(responses[3].rfind("ok 3 dimensions", 0), 0u) << responses[3];
}

TEST(QueryServiceTest, ServeDrivesStreamsAndStopsOnQuit) {
  auto svc = make_service();
  std::istringstream in(
      "rank top=1\n"
      "\n"
      "rank top=2\n"
      "quit\n"
      "rank top=3\n");
  std::ostringstream out;
  const std::size_t served = svc.serve(in, out, 2, 2);
  EXPECT_EQ(served, 2u);
  const auto text = out.str();
  EXPECT_NE(text.find("ok 1 dimensions"), std::string::npos) << text;
  EXPECT_NE(text.find("ok 2 dimensions"), std::string::npos) << text;
  EXPECT_EQ(text.find("ok 3 dimensions"), std::string::npos) << text;
}

TEST(QueryServiceTest, StatsReportsPerVerbMetrics) {
  auto svc = make_service();
  const std::vector<std::string> mixed = {
      "recommend objective=performance top_k=2 np=64 data=4MiB op=write",
      "predict config=pvfs.4.D.eph.4M np=64 data=128MiB op=write",
      "rank top=2",
      "recommend objective=cost top_k=1 np=64 data=4MiB op=read",
  };
  svc.handle_batch(mixed, 2);

  const auto snap = obs::MetricsRegistry::global().snapshot();
  for (const char* verb : {"recommend", "predict", "rank"}) {
    const auto* count =
        snap.counter(std::string("service.requests.") + verb);
    ASSERT_NE(count, nullptr) << verb;
    EXPECT_GT(*count, 0.0) << verb;
    const auto* latency =
        snap.histogram(std::string("service.latency_us.") + verb);
    ASSERT_NE(latency, nullptr) << verb;
    EXPECT_GT(latency->count, 0u) << verb;
    EXPECT_GT(latency->sum, 0.0) << verb;
  }

  const auto stats = svc.handle("stats");
  EXPECT_EQ(stats.rfind("ok database=", 0), 0u) << stats;
  EXPECT_NE(stats.find("service.requests.recommend"), std::string::npos)
      << stats;
  EXPECT_NE(stats.find("service.latency_us.recommend count="),
            std::string::npos)
      << stats;
}

// The tentpole regression: N reader threads hammer handle() with mixed
// verbs while a writer repeatedly swaps the database snapshot.  Under the
// old lazy unique_ptr model this raced (update_database reset models that
// concurrent predicts were using); with copy-on-write engine snapshots
// every request must answer cleanly.  Run under the tsan preset in CI.
TEST(QueryServiceConcurrency, HandleRacesUpdateDatabaseCleanly) {
  auto svc = make_service();
  constexpr int kReaders = 8;
  constexpr int kRequestsPerReader = 24;
  constexpr int kSwaps = 6;

  const std::vector<std::string> requests = {
      "recommend objective=performance top_k=2 np=64 data=4MiB op=write",
      "predict config=pvfs.4.D.eph.4M np=64 data=128MiB op=write",
      "rank top=3",
      "stats",
  };

  std::atomic<int> failures{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < kRequestsPerReader; ++i) {
        const auto& req = requests[(t + i) % requests.size()];
        const auto resp = svc.handle(req);
        if (resp.rfind("ok", 0) != 0) failures.fetch_add(1);
      }
    });
  }

  std::thread writer([&] {
    go.store(true);
    for (int s = 0; s < kSwaps; ++s) {
      svc.update_database(synthetic_db());
    }
  });

  writer.join();
  for (auto& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(svc.database_size(), synthetic_db().size());
  // The hammering must be visible in the request metrics.
  const auto snap = obs::MetricsRegistry::global().snapshot();
  const auto* recommends = snap.counter("service.requests.recommend");
  ASSERT_NE(recommends, nullptr);
  EXPECT_GE(*recommends, double(kReaders * kRequestsPerReader) /
                             double(requests.size()));
}

// --- Graceful degradation -----------------------------------------------

TEST(ServiceDegradation, EmptyDatabaseComesUpInFallbackMode) {
  QueryService svc(core::TrainingDatabase{}, synthetic_ranking());
  EXPECT_TRUE(svc.degraded());
  const auto stats = svc.handle("stats");
  EXPECT_NE(stats.find("mode=fallback"), std::string::npos) << stats;

  // recommend degrades to the PB-ranking prior instead of erroring.
  const auto rec = svc.handle(
      "recommend objective=performance top_k=3 np=64 data=4MiB op=write");
  EXPECT_EQ(rec.rfind("ok", 0), 0u) << rec;
  EXPECT_NE(rec.find("fallback=pb-ranking"), std::string::npos) << rec;

  // predict has no fallback semantics: a typed error naming the cause.
  const auto pred = svc.handle(
      "predict config=pvfs.4.D.eph.4M np=64 data=4MiB op=write");
  EXPECT_EQ(pred.rfind("error", 0), 0u) << pred;
  EXPECT_NE(pred.find("no trained model"), std::string::npos) << pred;

  const auto snap = obs::MetricsRegistry::global().snapshot();
  const auto* fallback = snap.counter("service.fallback_answers");
  ASSERT_NE(fallback, nullptr);
  EXPECT_GT(*fallback, 0.0);
  const auto* failures = snap.counter("service.engine_build_failures");
  ASSERT_NE(failures, nullptr);
  EXPECT_GT(*failures, 0.0);
}

TEST(ServiceDegradation, UpdateRecoversFromFallbackButNeverRegresses) {
  QueryService svc(core::TrainingDatabase{}, synthetic_ranking());
  EXPECT_TRUE(svc.degraded());
  svc.update_database(synthetic_db());
  EXPECT_FALSE(svc.degraded());
  const auto pred = svc.handle(
      "predict config=pvfs.4.D.eph.4M np=64 data=128MiB op=write");
  EXPECT_EQ(pred.rfind("ok predicted_improvement=", 0), 0u) << pred;

  // A contribution batch that cannot train must not pull a healthy
  // service back into fallback mode: the old snapshot is kept.
  svc.update_database(core::TrainingDatabase{});
  EXPECT_FALSE(svc.degraded());
  EXPECT_EQ(svc.database_size(), synthetic_db().size());
}

TEST(ServiceDegradation, BoundedAdmissionShedsWithTypedResponse) {
  ServiceOptions options;
  options.max_in_flight = 1;
  QueryService svc(synthetic_db(), synthetic_ranking(), options);

  // Occupy the only admission slot with a genuinely slow request (a
  // whole chaos simulation), then probe from this thread.
  std::thread slow([&] {
    const auto resp = svc.handle(
        "simulate config=pvfs.4.D.eph.4M np=64 io_procs=64 data=64MiB "
        "request=4MiB op=write seed=5");
    EXPECT_EQ(resp.rfind("ok", 0), 0u) << resp;
  });
  while (svc.in_flight() < 1) std::this_thread::yield();
  const auto shed = svc.handle("rank top=1");
  slow.join();

  EXPECT_EQ(shed.rfind("shed", 0), 0u) << shed;
  EXPECT_NE(shed.find("retry later"), std::string::npos) << shed;
  const auto snap = obs::MetricsRegistry::global().snapshot();
  const auto* count = snap.counter("service.shed");
  ASSERT_NE(count, nullptr);
  EXPECT_GT(*count, 0.0);
  // The gauge drains once everything returned.
  EXPECT_EQ(svc.in_flight(), 0u);
}

TEST(ServiceDegradation, DeadlineExceededGetsTypedTimeout) {
  ServiceOptions options;
  options.deadline_us = 1e-3;  // one nanosecond: every request blows it
  QueryService svc(synthetic_db(), synthetic_ranking(), options);
  const auto resp = svc.handle("rank top=1");
  EXPECT_EQ(resp.rfind("timeout", 0), 0u) << resp;
  EXPECT_NE(resp.find("deadline"), std::string::npos) << resp;
  const auto snap = obs::MetricsRegistry::global().snapshot();
  const auto* count = snap.counter("service.deadline_exceeded");
  ASSERT_NE(count, nullptr);
  EXPECT_GT(*count, 0.0);
}

// Satellite regression for the network front end: the admitted_at
// overload starts the deadline clock at frame arrival, so time spent in
// the server's dispatch queue counts.  A request that is already over
// budget when it reaches compute is refused without doing the work.
TEST(ServiceDegradation, QueueWaitCountsAgainstDeadlineViaAdmittedAt) {
  ServiceOptions options;
  options.deadline_us = 1000.0;  // 1ms budget...
  QueryService svc(synthetic_db(), synthetic_ranking(), options);
  // ...but the frame "arrived" 50ms ago: the pre-dispatch gate fires.
  const auto admitted_at =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(50);
  const auto resp = svc.handle("rank top=1", admitted_at);
  EXPECT_EQ(resp.rfind("timeout", 0), 0u) << resp;
  EXPECT_NE(resp.find("phase=queue"), std::string::npos) << resp;
  // The same request with a fresh clock is fine — proof the gate keyed
  // off admitted_at, not off anything ambient.
  const auto fresh =
      svc.handle("rank top=1", std::chrono::steady_clock::now());
  EXPECT_EQ(fresh.rfind("ok", 0), 0u) << fresh;
  const auto snap = obs::MetricsRegistry::global().snapshot();
  const auto* count = snap.counter("service.deadline_exceeded");
  ASSERT_NE(count, nullptr);
  EXPECT_GT(*count, 0.0);
}

// A deliberately slow verb (a full chaos simulation, ~tens of ms) under
// a deadline generous enough to clear the queue gate: the deadline is
// re-checked *after* dispatch, the completed-but-late response is marked
// degraded, and the miss is counted.
TEST(ServiceDegradation, DeadlineBlownDuringComputeIsMarkedDegraded) {
  ServiceOptions options;
  options.deadline_us = 10'000.0;  // 10ms: compute below takes ~50ms
  QueryService svc(synthetic_db(), synthetic_ranking(), options);
  const auto before_snap = obs::MetricsRegistry::global().snapshot();
  const auto* before = before_snap.counter("service.deadline_exceeded");
  const double base = before != nullptr ? *before : 0.0;
  const auto resp = svc.handle(
      "simulate config=pvfs.4.D.eph.4M np=64 io_procs=64 data=24MiB "
      "request=1MiB op=read+write iterations=4 seed=3 failures=80 "
      "brownouts=40 stragglers=50 retry=yes timeout=5 attempts=3");
  EXPECT_EQ(resp.rfind("timeout", 0), 0u) << resp;
  EXPECT_NE(resp.find("phase=compute"), std::string::npos) << resp;
  EXPECT_NE(resp.find("degraded=yes"), std::string::npos) << resp;
  const auto snap = obs::MetricsRegistry::global().snapshot();
  const auto* count = snap.counter("service.deadline_exceeded");
  ASSERT_NE(count, nullptr);
  EXPECT_GT(*count, base);
}

TEST(ServiceDegradation, SimulateVerbRunsSeededChaos) {
  auto svc = make_service();
  const auto resp = svc.handle(
      "simulate config=nfs.D.ebs np=16 io_procs=16 data=8MiB request=1MiB "
      "op=write seed=7 failures=60 brownouts=30 retry=yes timeout=5 "
      "attempts=3");
  EXPECT_EQ(resp.rfind("ok time=", 0), 0u) << resp;
  EXPECT_NE(resp.find("outcome="), std::string::npos) << resp;
  EXPECT_NE(resp.find("retries="), std::string::npos) << resp;
  // Same seed, same chaos: the simulate verb is reproducible.
  const auto again = svc.handle(
      "simulate config=nfs.D.ebs np=16 io_procs=16 data=8MiB request=1MiB "
      "op=write seed=7 failures=60 brownouts=30 retry=yes timeout=5 "
      "attempts=3");
  EXPECT_EQ(resp, again);
  // Bad knobs are typed errors, not crashes.
  const auto bad = svc.handle(
      "simulate config=nfs.D.ebs brownouts=5 brownout_fraction=2.0");
  EXPECT_EQ(bad.rfind("error", 0), 0u) << bad;
}

// Run under the tsan preset: concurrent hammering against a tiny
// admission bound must produce only typed responses, race-free counters,
// and a gauge that drains back to zero.
TEST(ServiceDegradation, ConcurrentSheddingIsCleanAndGaugeDrains) {
  ServiceOptions options;
  options.max_in_flight = 2;
  QueryService svc(synthetic_db(), synthetic_ranking(), options);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 16;
  std::atomic<int> shed{0};
  std::atomic<int> answered{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto r = svc.handle("rank top=2");
        if (r.rfind("shed", 0) == 0) {
          shed.fetch_add(1);
        } else if (r.rfind("ok", 0) == 0) {
          answered.fetch_add(1);
        } else {
          ADD_FAILURE() << r;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(shed.load() + answered.load(), kThreads * kPerThread);
  EXPECT_GT(answered.load(), 0);
  EXPECT_EQ(svc.in_flight(), 0u);
}

// --- Preemption / checkpoint / spot knobs ----------------------------

TEST(ServiceDegradation, SimulateVerbRunsPreemptionChaos) {
  auto svc = make_service();
  const std::string query =
      "simulate config=pvfs.4.D.eph.4M np=16 io_procs=16 data=32MiB "
      "request=1MiB op=write iterations=4 seed=3 preemptions=240 notice=5 "
      "checkpoint_interval=15 checkpoint_bytes=8MiB spot=yes";
  const auto resp = svc.handle(query);
  EXPECT_EQ(resp.rfind("ok time=", 0), 0u) << resp;
  EXPECT_NE(resp.find("preemptions="), std::string::npos) << resp;
  EXPECT_NE(resp.find("restarts="), std::string::npos) << resp;
  EXPECT_NE(resp.find("lost_time="), std::string::npos) << resp;
  EXPECT_NE(resp.find("checkpoint_bytes="), std::string::npos) << resp;
  // Same seed, same reclamation schedule: reproducible.
  EXPECT_EQ(resp, svc.handle(query));
  // An invalid checkpoint policy is a typed error, not a crash.
  const auto bad = svc.handle(
      "simulate config=nfs.D.ebs checkpoint_interval=0 checkpoint_bytes=1MiB");
  EXPECT_EQ(bad.rfind("error", 0), 0u) << bad;
}

TEST(QueryServiceTest, RecommendAdjustsForPreemptions) {
  auto svc = make_service();
  const auto plain = svc.handle(
      "recommend objective=performance top_k=2 np=64 data=4MiB op=write");
  EXPECT_EQ(plain.rfind("ok", 0), 0u) << plain;
  EXPECT_EQ(plain.find("preemption_adjusted"), std::string::npos) << plain;
  const auto spot = svc.handle(
      "recommend objective=performance top_k=2 np=64 data=4MiB op=write "
      "chaos=spot-preempt checkpoint_bytes=1GiB checkpoint_interval=300");
  EXPECT_EQ(spot.rfind("ok", 0), 0u) << spot;
  EXPECT_NE(spot.find("preemption_adjusted=yes"), std::string::npos) << spot;
}

// --- Plugin-registry protocol surface --------------------------------

TEST(QueryServiceTest, UnknownPluginNamesAreTypedErrorsListingWhatExists) {
  auto svc = make_service();
  const auto bad_fs = svc.handle(
      "recommend objective=performance top_k=2 np=64 data=4MiB op=write "
      "fs=zfs");
  EXPECT_EQ(bad_fs.rfind("error unknown filesystem 'zfs'", 0), 0u) << bad_fs;
  EXPECT_NE(bad_fs.find("lustre, nfs, pvfs2"), std::string::npos) << bad_fs;
  const auto bad_learner = svc.handle(
      "recommend objective=performance top_k=2 np=64 data=4MiB op=write "
      "learner=perceptron");
  EXPECT_EQ(bad_learner.rfind("error unknown learner 'perceptron'", 0), 0u)
      << bad_learner;
  EXPECT_NE(bad_learner.find("cart, forest, knn, linear"), std::string::npos)
      << bad_learner;
  const auto bad_chaos = svc.handle(
      "simulate config=nfs.D.ebs np=16 data=8MiB chaos=mayhem");
  EXPECT_EQ(bad_chaos.rfind("error unknown fault-model 'mayhem'", 0), 0u)
      << bad_chaos;
}

TEST(QueryServiceTest, FsFilterRestrictsCandidates) {
  auto svc = make_service();
  const auto nfs_only = svc.handle(
      "recommend objective=performance top_k=3 np=64 data=128MiB "
      "request=4MiB op=write fs=nfs");
  EXPECT_EQ(nfs_only.rfind("ok", 0), 0u) << nfs_only;
  EXPECT_NE(nfs_only.find("fs=nfs"), std::string::npos) << nfs_only;
  EXPECT_EQ(nfs_only.find("pvfs."), std::string::npos) << nfs_only;
  // Registered but outside the default grid: a distinct, precise error.
  const auto lustre = svc.handle(
      "recommend objective=performance top_k=3 np=64 data=4MiB op=write "
      "fs=lustre");
  EXPECT_EQ(lustre.rfind("error", 0), 0u) << lustre;
  EXPECT_NE(lustre.find("not in the default grid"), std::string::npos)
      << lustre;
}

TEST(QueryServiceTest, ExplicitLearnerSelectsThatModel) {
  ServiceOptions options;
  options.learners = {"cart", "forest"};
  QueryService svc(synthetic_db(), synthetic_ranking(), options);
  const auto resp = svc.handle(
      "recommend objective=performance top_k=3 np=64 data=128MiB "
      "request=4MiB op=write learner=forest");
  EXPECT_EQ(resp.rfind("ok 3 recommendations", 0), 0u) << resp;
  EXPECT_NE(resp.find("learner=forest"), std::string::npos) << resp;
  EXPECT_NE(resp.find("pvfs.4"), std::string::npos) << resp;
  const auto pred = svc.handle(
      "predict config=pvfs.4.D.eph.4M np=64 data=128MiB op=write "
      "learner=forest");
  EXPECT_EQ(pred.rfind("ok predicted_improvement=", 0), 0u) << pred;
  EXPECT_NE(pred.find("learner=forest"), std::string::npos) << pred;
  // A registered learner this snapshot did not train is a distinct
  // error from an unknown name.
  const auto untrained = svc.handle(
      "predict config=pvfs.4.D.eph.4M np=64 data=128MiB op=write "
      "learner=knn");
  EXPECT_EQ(untrained.rfind("error learner 'knn' is not trained", 0), 0u)
      << untrained;
  EXPECT_NE(untrained.find("cart, forest"), std::string::npos) << untrained;
}

TEST(QueryServiceTest, UnknownLearnerNameFailsServiceStartup) {
  ServiceOptions options;
  options.learners = {"perceptron"};
  EXPECT_THROW(QueryService(synthetic_db(), synthetic_ranking(), options),
               Error);
}

TEST(QueryServiceTest, PluginsVerbListsEverySeedSubstrate) {
  auto svc = make_service();
  const auto resp = svc.handle("plugins");
  EXPECT_EQ(resp.rfind("ok ", 0), 0u) << resp;
  for (const char* name :
       {"nfs", "pvfs2", "lustre", "cart", "forest", "knn", "linear",
        "outages", "brownouts", "stragglers", "eq1", "detailed"}) {
    EXPECT_NE(resp.find(std::string(" ") + name + " "), std::string::npos)
        << "missing " << name << " in:\n" << resp;
  }
  // Deterministic: two calls render byte-identically.
  EXPECT_EQ(resp, svc.handle("plugins"));
  // stats carries the same inventory plus the trained-learner line.
  const auto stats = svc.handle("stats");
  EXPECT_NE(stats.find("learners=cart primary=cart"), std::string::npos)
      << stats;
  EXPECT_NE(stats.find("plugin filesystem nfs"), std::string::npos) << stats;
}

TEST(ServiceDegradation, SimulateChaosPresetMatchesExplicitKnobs) {
  auto svc = make_service();
  // The outages preset is 4/h; spelling the same rate field-by-field
  // must produce the identical seeded run.
  const auto preset = svc.handle(
      "simulate config=nfs.D.ebs np=16 io_procs=16 data=8MiB request=1MiB "
      "op=write seed=7 chaos=outages");
  const auto explicit_rate = svc.handle(
      "simulate config=nfs.D.ebs np=16 io_procs=16 data=8MiB request=1MiB "
      "op=write seed=7 failures=4");
  EXPECT_EQ(preset.rfind("ok time=", 0), 0u) << preset;
  EXPECT_EQ(preset, explicit_rate);
  // Field overrides still apply on top of a preset.
  const auto overridden = svc.handle(
      "simulate config=nfs.D.ebs np=16 io_procs=16 data=8MiB request=1MiB "
      "op=write seed=7 chaos=outages failures=60");
  EXPECT_EQ(overridden.rfind("ok time=", 0), 0u) << overridden;
  EXPECT_NE(overridden, preset);
}

TEST(QueryServiceConcurrency, BatchesRaceSwapsCleanly) {
  auto svc = make_service();
  std::vector<std::string> batch;
  for (int i = 0; i < 64; ++i) {
    batch.push_back(i % 2 == 0
                        ? "predict config=pvfs.4.D.eph.4M np=64 "
                          "data=128MiB op=write"
                        : "rank top=2");
  }
  std::thread writer([&] {
    for (int s = 0; s < 4; ++s) svc.update_database(synthetic_db());
  });
  const auto responses = svc.handle_batch(batch, 8);
  writer.join();
  for (const auto& r : responses) {
    EXPECT_EQ(r.rfind("ok", 0), 0u) << r;
  }
}

}  // namespace
}  // namespace acic::service
