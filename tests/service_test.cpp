// Tests for the query service: protocol parsing, responses, error
// handling, and database refresh.
#include <gtest/gtest.h>

#include "acic/common/error.hpp"
#include "acic/service/query_service.hpp"

namespace acic::service {
namespace {

/// A tiny synthetic database: PVFS2-4-ephemeral points improve over
/// baseline, everything else does not.  Enough structure for CART to
/// learn a preference without running a single simulation.
core::TrainingDatabase synthetic_db() {
  core::TrainingDatabase db;
  const auto defaults = core::default_point();
  int tick = 0;
  for (const auto& cfg : cloud::IoConfig::enumerate_candidates()) {
    for (double data : {4.0 * MiB, 128.0 * MiB}) {
      core::Point p = defaults;
      p = core::ParamSpace::encode(
          cfg, core::ParamSpace::workload_of(defaults));
      p[core::kDataSize] = data;
      p = core::ParamSpace::repaired(p);
      core::TrainingSample s;
      s.point = p;
      const bool good = cfg.fs == cloud::FileSystemType::kPvfs2 &&
                        cfg.io_servers == 4 &&
                        cfg.device == storage::DeviceType::kEphemeral;
      s.baseline_time = 100.0;
      s.time = good ? 25.0 + (tick % 3) : 110.0 + (tick % 7);
      s.baseline_cost = 10.0;
      s.cost = good ? 4.0 : 11.0;
      db.insert(s);
      ++tick;
    }
  }
  return db;
}

core::PbRankingResult synthetic_ranking() {
  core::PbRankingResult r;
  for (int d = 0; d < core::kNumDims; ++d) {
    r.importance.push_back(d);
    r.rank_of_each.push_back(d + 1);
    r.effects.push_back(core::kNumDims - d);
  }
  return r;
}

QueryService make_service() {
  return QueryService(synthetic_db(), synthetic_ranking());
}

TEST(ParseSize, AcceptsCommonUnits) {
  EXPECT_DOUBLE_EQ(parse_size("2048"), 2048.0);
  EXPECT_DOUBLE_EQ(parse_size("4MiB"), 4.0 * MiB);
  EXPECT_DOUBLE_EQ(parse_size("256KiB"), 256.0 * KiB);
  EXPECT_DOUBLE_EQ(parse_size("1.5GiB"), 1.5 * GiB);
  EXPECT_DOUBLE_EQ(parse_size("2gb"), 2.0 * GiB);
  EXPECT_THROW(parse_size("10parsecs"), Error);
  EXPECT_THROW(parse_size(""), Error);
}

TEST(ParseWorkload, FillsFieldsAndValidates) {
  const auto w = parse_workload_query(
      "recommend np=128 io_procs=64 interface=POSIX iterations=5 "
      "data=64MiB request=1MiB op=read shared=no");
  EXPECT_EQ(w.num_processes, 128);
  EXPECT_EQ(w.num_io_processes, 64);
  EXPECT_EQ(w.interface, io::IoInterface::kPosix);
  EXPECT_EQ(w.iterations, 5);
  EXPECT_DOUBLE_EQ(w.data_size, 64.0 * MiB);
  EXPECT_EQ(w.op, io::OpMix::kRead);
  EXPECT_FALSE(w.file_shared);
}

TEST(ParseWorkload, RejectsUnknownKeys) {
  EXPECT_THROW(parse_workload_query("recommend warp_factor=9"), Error);
}

TEST(QueryServiceTest, RecommendPrefersThePlantedOptimum) {
  auto svc = make_service();
  const auto resp = svc.handle(
      "recommend objective=performance top_k=3 np=64 data=128MiB "
      "request=4MiB op=write");
  EXPECT_EQ(resp.rfind("ok 3 recommendations", 0), 0u) << resp;
  // The best predicted config must be a pvfs.4 ephemeral one.
  const auto first = resp.find("pvfs.4");
  ASSERT_NE(first, std::string::npos) << resp;
  EXPECT_LT(first, resp.find('\n', resp.find('\n') + 1) + 80);
}

TEST(QueryServiceTest, PredictReturnsNumericImprovement) {
  auto svc = make_service();
  const auto resp = svc.handle(
      "predict config=pvfs.4.D.eph.4M np=64 data=128MiB op=write");
  EXPECT_EQ(resp.rfind("ok predicted_improvement=", 0), 0u) << resp;
  const double v = std::stod(resp.substr(resp.find('=') + 1));
  EXPECT_GT(v, 1.5);  // planted: ~4x better than baseline
}

TEST(QueryServiceTest, RankListsDimensions) {
  auto svc = make_service();
  const auto resp = svc.handle("rank top=3");
  EXPECT_NE(resp.find("1. Disk device"), std::string::npos) << resp;
  EXPECT_EQ(std::count(resp.begin(), resp.end(), '\n'), 4);
}

TEST(QueryServiceTest, StatsAndHelp) {
  auto svc = make_service();
  EXPECT_NE(svc.handle("stats").find("ok database="), std::string::npos);
  EXPECT_NE(svc.handle("help").find("recommend"), std::string::npos);
}

TEST(QueryServiceTest, ErrorsAreReportedNotThrown) {
  auto svc = make_service();
  EXPECT_EQ(svc.handle("frobnicate").rfind("error", 0), 0u);
  EXPECT_EQ(svc.handle("recommend objective=speed").rfind("error", 0), 0u);
  EXPECT_EQ(svc.handle("predict np=4").rfind("error", 0), 0u);
  EXPECT_EQ(svc.handle("recommend data=banana").rfind("error", 0), 0u);
}

TEST(QueryServiceTest, UpdateDatabaseRetrains) {
  auto svc = make_service();
  const auto before = svc.handle(
      "predict config=pvfs.4.D.eph.4M np=64 data=128MiB op=write");
  // Replace with a database where *nothing* improves.
  core::TrainingDatabase flat;
  const auto source = synthetic_db();  // keep alive across the loop
  for (const auto& s : source.samples()) {
    auto copy = s;
    copy.time = copy.baseline_time;  // improvement exactly 1.0
    copy.cost = copy.baseline_cost;
    flat.insert(copy);
  }
  svc.update_database(std::move(flat));
  const auto after = svc.handle(
      "predict config=pvfs.4.D.eph.4M np=64 data=128MiB op=write");
  const double v = std::stod(after.substr(after.find('=') + 1));
  EXPECT_NEAR(v, 1.0, 1e-9);
  EXPECT_NE(before, after);
}

}  // namespace
}  // namespace acic::service
