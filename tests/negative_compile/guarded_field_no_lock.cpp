// Negative-compile case: writing an ACIC_GUARDED_BY member without
// holding its mutex must fail under Clang's -Werror=thread-safety.
// Registered with WILL_FAIL in tests/CMakeLists.txt (Clang only).
#include "acic/common/mutex.hpp"
#include "acic/common/thread_annotations.hpp"

namespace {

class Account {
 public:
  void deposit(long amount) {
    balance_ += amount;  // expected-error: writing without mutex_ held
  }

 private:
  acic::Mutex mutex_;
  long balance_ ACIC_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Account a;
  a.deposit(1);
  return 0;
}
