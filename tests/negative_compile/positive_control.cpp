// Positive control for the negative-compile harness: the same shapes
// as the violation cases, but correctly locked.  Must compile cleanly
// under every supported compiler, including Clang with
// -Werror=thread-safety — if this file ever fails, the harness (not the
// annotations) is broken.
#include "acic/common/mutex.hpp"
#include "acic/common/thread_annotations.hpp"

namespace {

class Account {
 public:
  void deposit(long amount) {
    acic::MutexLock lock(&mutex_);
    balance_ += amount;
  }
  long balance() const {
    acic::ReaderMutexLock lock(&mutex_);
    return balance_;
  }

 private:
  mutable acic::Mutex mutex_;
  long balance_ ACIC_GUARDED_BY(mutex_) = 0;
};

class Queue {
 public:
  void push(int v) {
    acic::MutexLock lock(&mutex_);
    push_locked(v);
    ready_.notify_one();
  }
  int drain() {
    acic::MutexLock lock(&mutex_);
    // Plain wait loop rather than the predicate overload: the analysis
    // does not propagate lock context into lambda bodies.
    while (pending_ == 0) ready_.wait(mutex_);
    const int got = pending_;
    pending_ = 0;
    return got;
  }

 private:
  void push_locked(int v) ACIC_REQUIRES(mutex_) { pending_ += v; }

  acic::Mutex mutex_;
  acic::CondVar ready_;
  int pending_ ACIC_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Account a;
  a.deposit(1);
  Queue q;
  q.push(static_cast<int>(a.balance()));
  return q.drain() == 1 ? 0 : 1;
}
