// Negative-compile case: calling an ACIC_REQUIRES helper without the
// lock held must fail under Clang's -Werror=thread-safety.  Registered
// with WILL_FAIL in tests/CMakeLists.txt (Clang only).
#include "acic/common/mutex.hpp"
#include "acic/common/thread_annotations.hpp"

namespace {

class Queue {
 public:
  void push(int v) {
    push_locked(v);  // expected-error: requires mutex_, not held
  }

 private:
  void push_locked(int v) ACIC_REQUIRES(mutex_) { pending_ += v; }

  acic::Mutex mutex_;
  int pending_ ACIC_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Queue q;
  q.push(7);
  return 0;
}
