// Tests for the substrate plugin registry (DESIGN.md §14): the generic
// Registry contracts (typed errors, deterministic enumeration, stable
// references, thread safety), the seeded process registries for all
// four axes, the paramspace grids derived from plugin-declared knobs,
// and the RunKey guarantees around the knob fold — including the
// golden 504-key regression pinning every pre-plugin key bit-stable.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "acic/apps/apps.hpp"
#include "acic/cloud/ioconfig.hpp"
#include "acic/core/paramspace.hpp"
#include "acic/exec/runkey.hpp"
#include "acic/io/runner.hpp"
#include "acic/ml/dataset.hpp"
#include "acic/plugin/substrates.hpp"

namespace acic::plugin {
namespace {

LearnerPlugin stub_learner(std::string name) {
  LearnerPlugin p;
  p.name = std::move(name);
  p.description = "test stub";
  p.make = [] { return std::unique_ptr<ml::Learner>(); };
  return p;
}

TEST(PluginRegistryTest, DuplicateRegistrationIsATypedError) {
  Registry<LearnerPlugin> reg(Kind::kLearner);
  reg.add(stub_learner("alpha"));
  try {
    reg.add(stub_learner("alpha"));
    FAIL() << "expected PluginError";
  } catch (const PluginError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDuplicateName);
    EXPECT_EQ(e.kind(), Kind::kLearner);
    EXPECT_EQ(e.name(), "alpha");
    EXPECT_EQ(e.registered(), std::vector<std::string>{"alpha"});
    EXPECT_NE(std::string(e.what()).find("alpha"), std::string::npos);
  }
  // The failed add left the registry unchanged.
  EXPECT_EQ(reg.size(), 1u);
}

TEST(PluginRegistryTest, UnknownLookupListsRegisteredNames) {
  Registry<LearnerPlugin> reg(Kind::kLearner);
  reg.add(stub_learner("beta"));
  reg.add(stub_learner("alpha"));
  try {
    reg.lookup("gamma");
    FAIL() << "expected PluginError";
  } catch (const PluginError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnknownName);
    EXPECT_EQ(e.name(), "gamma");
    const std::vector<std::string> want = {"alpha", "beta"};
    EXPECT_EQ(e.registered(), want);
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown learner 'gamma'"), std::string::npos)
        << what;
    EXPECT_NE(what.find("alpha, beta"), std::string::npos) << what;
  }
}

TEST(PluginRegistryTest, FindIsNonThrowing) {
  Registry<LearnerPlugin> reg(Kind::kLearner);
  reg.add(stub_learner("alpha"));
  EXPECT_NE(reg.find("alpha"), nullptr);
  EXPECT_EQ(reg.find("nope"), nullptr);
}

TEST(PluginRegistryTest, EnumerationIsNameSortedRegardlessOfAddOrder) {
  Registry<LearnerPlugin> reg(Kind::kLearner);
  reg.add(stub_learner("zeta"));
  reg.add(stub_learner("alpha"));
  reg.add(stub_learner("mid"));
  const std::vector<std::string> want = {"alpha", "mid", "zeta"};
  EXPECT_EQ(reg.names(), want);
  std::vector<std::string> via_all;
  for (const auto* p : reg.all()) via_all.push_back(p->name);
  EXPECT_EQ(via_all, want);
}

TEST(PluginRegistryTest, ReferencesSurviveLaterRegistrations) {
  Registry<LearnerPlugin> reg(Kind::kLearner);
  const LearnerPlugin& first = reg.add(stub_learner("first"));
  for (int i = 0; i < 64; ++i) {
    reg.add(stub_learner("filler" + std::to_string(i)));
  }
  EXPECT_EQ(first.name, "first");  // node-stable map: still valid
  EXPECT_EQ(&reg.lookup("first"), &first);
}

// The static-init seeds: every substrate the binary ships must be
// registered, under its canonical name, with no registration errors.
TEST(PluginRegistryTest, SeedSubstratesAreRegistered) {
  EXPECT_TRUE(registration_errors().empty());

  const std::vector<std::string> fs_want = {"lustre", "nfs", "pvfs2"};
  EXPECT_EQ(filesystems().names(), fs_want);
  const std::vector<std::string> learner_want = {"cart", "forest", "knn",
                                                 "linear"};
  EXPECT_EQ(learners().names(), learner_want);
  const std::vector<std::string> fault_want = {
      "brownouts", "lossy-az", "none", "outages", "spot-preempt",
      "stragglers"};
  EXPECT_EQ(fault_models().names(), fault_want);
  const std::vector<std::string> pricing_want = {"detailed", "eq1", "spot"};
  EXPECT_EQ(pricings().names(), pricing_want);
}

TEST(PluginRegistryTest, FilesystemBridgesAgree) {
  const auto& nfs = filesystem_for(cloud::FileSystemType::kNfs);
  EXPECT_EQ(nfs.name, "nfs");
  EXPECT_TRUE(nfs.single_server);
  EXPECT_TRUE(nfs.matches("NFS"));
  const auto& pvfs = filesystem_named("PVFS2");  // display-name spelling
  EXPECT_EQ(pvfs.name, "pvfs2");
  EXPECT_EQ(&pvfs, &filesystem_for(cloud::FileSystemType::kPvfs2));
  EXPECT_EQ(&filesystem_for_level(0.2), &nfs);   // snaps to nearest
  EXPECT_EQ(&filesystem_for_level(2.4),
            &filesystem_for(cloud::FileSystemType::kLustre));

  // Lustre is registered but outside the paper's Table 1 grid.
  const auto grid = default_grid_filesystems();
  ASSERT_EQ(grid.size(), 2u);
  EXPECT_EQ(grid[0]->name, "nfs");    // point_id order, not name order
  EXPECT_EQ(grid[1]->name, "pvfs2");
}

TEST(PluginRegistryTest, MakeLearnerConstructsEverySeed) {
  for (const auto* p : learners().all()) {
    const auto learner = make_learner(p->name);
    ASSERT_NE(learner, nullptr) << p->name;
  }
  EXPECT_THROW(make_learner("perceptron"), PluginError);
}

TEST(PluginRegistryTest, InventoryIsKindMajorAndNameSorted) {
  const auto inv = inventory();
  ASSERT_EQ(inv.size(), filesystems().size() + learners().size() +
                            fault_models().size() + pricings().size());
  // Kind blocks in declaration order, names sorted within each block.
  EXPECT_EQ(inv.front().kind, Kind::kFilesystem);
  EXPECT_EQ(inv.front().name, "lustre");
  EXPECT_EQ(inv.back().kind, Kind::kPricing);
  EXPECT_EQ(inv.back().name, "spot");
  for (std::size_t i = 1; i < inv.size(); ++i) {
    if (inv[i - 1].kind == inv[i].kind) {
      EXPECT_LT(inv[i - 1].name, inv[i].name);
    } else {
      EXPECT_LT(static_cast<int>(inv[i - 1].kind),
                static_cast<int>(inv[i].kind));
    }
  }
}

// Readers and writers racing on one registry: exercised under the tsan
// preset (tests/CMakeLists.txt filters PluginRegistry* in).
TEST(PluginRegistryConcurrency, ConcurrentLookupAndRegistration) {
  Registry<LearnerPlugin> reg(Kind::kLearner);
  for (int i = 0; i < 8; ++i) {
    reg.add(stub_learner("seed" + std::to_string(i)));
  }
  constexpr int kWriters = 4;
  constexpr int kReaders = 4;
  constexpr int kPerWriter = 32;
  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&reg, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        reg.add(stub_learner("w" + std::to_string(w) + "." +
                             std::to_string(i)));
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < 256; ++i) {
        EXPECT_EQ(reg.lookup("seed" + std::to_string(i % 8)).description,
                  "test stub");
        EXPECT_EQ(reg.find("never-registered"), nullptr);
        const auto names = reg.names();
        EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.size(), 8u + kWriters * kPerWriter);
}

// The parameter-space grids are derived from plugin-declared knobs; the
// derivation must reproduce the paper's Table 1 values exactly.
TEST(PluginParamSpace, GridsDeriveFromDeclaredKnobs) {
  const auto& fs = core::ParamSpace::dimension(core::kFileSystem);
  EXPECT_EQ(fs.values, (std::vector<double>{0.0, 1.0}));
  const auto& servers = core::ParamSpace::dimension(core::kIoServers);
  EXPECT_EQ(servers.values, (std::vector<double>{1.0, 2.0, 4.0}));
  const auto& stripe = core::ParamSpace::dimension(core::kStripeSize);
  EXPECT_EQ(stripe.values, (std::vector<double>{64.0 * KiB, 4.0 * MiB}));
  EXPECT_EQ(cloud::IoConfig::enumerate_candidates().size(), 56u);
}

// ---------------------------------------------------------------------
// RunKey knob fold + golden regression
// ---------------------------------------------------------------------

io::Workload knobfold_workload() { return apps::btio(64); }

cloud::IoConfig knobfold_config() {
  cloud::IoConfig c;
  filesystem_named("pvfs2").configure(c, 4, 4.0 * MiB);
  return c;
}

TEST(RunKeyKnobFold, EmptyKnobListContributesZeroBytes) {
  const auto w = knobfold_workload();
  const auto c = knobfold_config();
  const io::RunOptions opts;
  const std::string fp = exec::canonical_run_fingerprint(w, c, opts);
  EXPECT_EQ(fp.find("cfg.knobs"), std::string::npos) << fp;
}

TEST(RunKeyKnobFold, DeclaredKnobsSplitKeys) {
  const auto w = knobfold_workload();
  auto c = knobfold_config();
  const io::RunOptions opts;
  const auto base = exec::run_key(w, c, opts);
  c.plugin_knobs = {{"prefetch_depth", 8.0}};
  const auto with_knob = exec::run_key(w, c, opts);
  EXPECT_NE(base.hex(), with_knob.hex());
  c.plugin_knobs = {{"prefetch_depth", 16.0}};
  EXPECT_NE(with_knob.hex(), exec::run_key(w, c, opts).hex());
  const std::string fp = exec::canonical_run_fingerprint(w, c, opts);
  EXPECT_NE(fp.find("cfg.knobs.v1"), std::string::npos) << fp;
  EXPECT_NE(fp.find("k.prefetch_depth"), std::string::npos) << fp;
}

TEST(RunKeyKnobFold, KnobOrderDoesNotSplitKeys) {
  const auto w = knobfold_workload();
  auto c = knobfold_config();
  const io::RunOptions opts;
  c.plugin_knobs = {{"a", 1.0}, {"b", 2.0}};
  const auto forward = exec::run_key(w, c, opts);
  c.plugin_knobs = {{"b", 2.0}, {"a", 1.0}};
  EXPECT_EQ(forward.hex(), exec::run_key(w, c, opts).hex());
}

// The seed grid's 504 RunKeys (9 evaluation runs x 56 candidates),
// captured before the plugin-registry refactor.  Any drift here would
// silently orphan every persisted run cache, so a mismatch is a
// hard failure: either revert the key change or bump kVersionTag
// deliberately and regenerate the .inc.
struct GoldenKey {
  const char* run;    // "app/scale"
  const char* label;  // IoConfig::label()
  const char* hex;    // RunKey::hex()
};

constexpr GoldenKey kGoldenKeys[] = {
#include "golden_runkeys_seed_grid.inc"
};

TEST(RunKeyGolden, SeedGridKeysAreBitStable) {
  const auto runs = apps::evaluation_suite();
  const auto candidates = cloud::IoConfig::enumerate_candidates();
  ASSERT_EQ(std::size(kGoldenKeys), runs.size() * candidates.size());
  std::size_t i = 0;
  for (const auto& run : runs) {
    const std::string run_name = run.app + "/" + std::to_string(run.scale);
    for (const auto& c : candidates) {
      const io::RunOptions opts;  // defaults, as the ground-truth grid uses
      ASSERT_EQ(run_name, kGoldenKeys[i].run) << "grid order drifted at " << i;
      ASSERT_EQ(c.label(), kGoldenKeys[i].label)
          << "grid order drifted at " << i;
      EXPECT_EQ(exec::run_key(run.workload, c, opts).hex(),
                kGoldenKeys[i].hex)
          << run_name << " " << c.label();
      ++i;
    }
  }
}

}  // namespace
}  // namespace acic::plugin
