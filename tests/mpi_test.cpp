// Tests for the simulated MPI runtime.
#include <gtest/gtest.h>

#include <vector>

#include "acic/mpi/runtime.hpp"

namespace acic::mpi {
namespace {

cloud::ClusterModel::Options opts(int np) {
  cloud::ClusterModel::Options o;
  o.num_processes = np;
  o.config = cloud::IoConfig::baseline();
  o.jitter_sigma = 0.0;
  return o;
}

TEST(MpiRuntime, AggregatorsOnePerInstance) {
  sim::Simulator s;
  cloud::ClusterModel cluster(s, opts(64));  // 4 instances of 16 cores
  Runtime mpi(cluster);
  EXPECT_EQ(mpi.aggregators(), (std::vector<int>{0, 16, 32, 48}));
  EXPECT_EQ(mpi.aggregator_of(5), 0);
  EXPECT_EQ(mpi.aggregator_of(17), 16);
  EXPECT_EQ(mpi.aggregator_of(63), 48);
  EXPECT_TRUE(mpi.is_aggregator(32));
  EXPECT_FALSE(mpi.is_aggregator(33));
}

sim::Task rank_barrier(Runtime& mpi, sim::Simulator& s, SimTime arrive,
                       std::vector<SimTime>& done) {
  co_await s.delay(arrive);
  co_await mpi.barrier();
  done.push_back(s.now());
}

TEST(MpiRuntime, BarrierSynchronisesAllRanks) {
  sim::Simulator s;
  cloud::ClusterModel cluster(s, opts(16));
  Runtime mpi(cluster);
  std::vector<SimTime> done;
  for (int r = 0; r < 16; ++r) {
    s.spawn(rank_barrier(mpi, s, 0.1 * r, done));
  }
  s.run();
  ASSERT_EQ(done.size(), 16u);
  for (SimTime t : done) EXPECT_NEAR(t, done.front(), 1e-9);
  EXPECT_GT(done.front(), 1.5);  // the slowest arriver gates everyone
}

sim::Task one_send(Runtime& mpi, int from, int to, Bytes bytes,
                   sim::Simulator& s, SimTime& done) {
  co_await mpi.send(from, to, bytes);
  done = s.now();
}

TEST(MpiRuntime, IntraInstanceSendIsSharedMemoryFast) {
  sim::Simulator s;
  cloud::ClusterModel cluster(s, opts(32));
  Runtime mpi(cluster);
  SimTime local = -1, remote = -1;
  s.spawn(one_send(mpi, 0, 1, 64.0 * MiB, s, local));    // same instance
  s.spawn(one_send(mpi, 2, 17, 64.0 * MiB, s, remote));  // crosses NIC
  s.run();
  EXPECT_GT(local, 0.0);
  EXPECT_GT(remote, 2.0 * local);
}

sim::Task one_allreduce(Runtime& mpi, int rank, Bytes bytes,
                        sim::Simulator& s, SimTime& done) {
  co_await mpi.allreduce(rank, bytes);
  done = s.now();
}

TEST(MpiRuntime, AllreduceCompletesForAllRanks) {
  sim::Simulator s;
  cloud::ClusterModel cluster(s, opts(32));
  Runtime mpi(cluster);
  std::vector<SimTime> done(32, -1.0);
  for (int r = 0; r < 32; ++r) {
    s.spawn(one_allreduce(mpi, r, 1.0 * MiB, s, done[static_cast<size_t>(r)]));
  }
  s.run();
  for (SimTime t : done) EXPECT_GT(t, 0.0);
}

sim::Task one_exchange(Runtime& mpi, int rank, Bytes bytes, int& finished) {
  co_await mpi.exchange_ring(rank, bytes);
  ++finished;
}

TEST(MpiRuntime, RingExchangeCompletes) {
  sim::Simulator s;
  cloud::ClusterModel cluster(s, opts(32));
  Runtime mpi(cluster);
  int finished = 0;
  for (int r = 0; r < 32; ++r) s.spawn(one_exchange(mpi, r, 4.0 * MiB, finished));
  s.run();
  EXPECT_EQ(finished, 32);
  EXPECT_TRUE(s.all_processes_done());
}

}  // namespace
}  // namespace acic::mpi
