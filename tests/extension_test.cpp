// Tests for the expandability mechanisms: explored-dimension selection,
// value overrides (SSD rollout), and the extended candidate enumeration.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "acic/common/error.hpp"
#include "acic/core/training.hpp"

namespace acic::core {
namespace {

std::vector<int> identity_order() {
  std::vector<int> order;
  for (int d = 0; d < kNumDims; ++d) order.push_back(d);
  return order;
}

TEST(ExploredDims, SystemDimsAlwaysFirst) {
  // Order that ranks every workload dim above every system dim.
  std::vector<int> order = {kDataSize,   kIterations, kRequestSize,
                            kNumProcs,   kNumIoProcs, kOpType,
                            kCollective, kFileSharing, kInterface,
                            kDevice,     kFileSystem, kInstanceType,
                            kIoServers,  kPlacement,  kStripeSize};
  const auto dims = explored_dims(order, 8);
  ASSERT_EQ(dims.size(), 8u);
  // The six system dimensions are present regardless of their rank.
  for (Dim d : {kDevice, kFileSystem, kInstanceType, kIoServers,
                kPlacement, kStripeSize}) {
    EXPECT_NE(std::find(dims.begin(), dims.end(), d), dims.end());
  }
  // The two remaining slots take the top-ranked workload dims.
  EXPECT_NE(std::find(dims.begin(), dims.end(), kDataSize), dims.end());
  EXPECT_NE(std::find(dims.begin(), dims.end(), kIterations), dims.end());
}

TEST(ExploredDims, LiteralModeFollowsRankingExactly) {
  const auto order = identity_order();
  const auto dims = explored_dims(order, 4, /*system_first=*/false);
  EXPECT_EQ(dims, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ExploredDims, RejectsTooFewDimsForSystemMode) {
  EXPECT_THROW(explored_dims(identity_order(), 5), Error);
  EXPECT_NO_THROW(explored_dims(identity_order(), 6));
}

TEST(ValueOverridesTest, FindAndValuesOf) {
  ParamSpace::ValueOverrides ov;
  ov.entries.push_back({kDevice, {0.0, 1.0, 2.0}});
  EXPECT_EQ(ov.find(kDevice)->size(), 3u);
  EXPECT_EQ(ov.find(kStripeSize), nullptr);
  EXPECT_EQ(ParamSpace::values_of(kDevice, &ov).size(), 3u);
  EXPECT_EQ(ParamSpace::values_of(kDevice, nullptr).size(), 2u);
}

TEST(ValueOverridesTest, RepairSnapsToExtendedGrid) {
  ParamSpace::ValueOverrides ov;
  ov.entries.push_back({kDevice, {0.0, 1.0, 2.0}});
  Point p = default_point();
  p[kDevice] = 2.0;  // SSD
  const auto without = ParamSpace::repaired(p);
  EXPECT_DOUBLE_EQ(without[kDevice], 1.0);  // snapped away on the old grid
  const auto with = ParamSpace::repaired(p, &ov);
  EXPECT_DOUBLE_EQ(with[kDevice], 2.0);  // preserved on the extended grid
}

TEST(ValueOverridesTest, SsdDecodesAndEncodes) {
  Point p = default_point();
  p[kDevice] = 2.0;
  const auto cfg = ParamSpace::config_of(p);
  EXPECT_EQ(cfg.device, storage::DeviceType::kSsd);
  const auto back =
      ParamSpace::encode(cfg, ParamSpace::workload_of(default_point()));
  EXPECT_DOUBLE_EQ(back[kDevice], 2.0);
}

TEST(ExtendedCandidates, IncludeSsdVariants) {
  const auto base = cloud::IoConfig::enumerate_candidates();
  const auto ext = cloud::IoConfig::enumerate_candidates_with_ssd();
  EXPECT_EQ(base.size(), 56u);
  EXPECT_EQ(ext.size(), 84u);  // 3 devices instead of 2
  int ssd = 0;
  std::set<std::string> labels;
  for (const auto& c : ext) {
    EXPECT_TRUE(c.valid());
    labels.insert(c.label());
    ssd += (c.device == storage::DeviceType::kSsd);
  }
  EXPECT_EQ(ssd, 28);
  EXPECT_EQ(labels.size(), ext.size());
}

TEST(ExtendedCandidates, OverrideTrainingPlanSamplesSsdPoints) {
  // A plan with the device override must generate at least one SSD
  // point.  We only check the *sampling*, not full simulation: enumerate
  // via the same code path with tiny limits.
  TrainingPlan plan;
  plan.dim_order = identity_order();
  plan.top_dims = 6;  // system dims only: a tiny, fast cartesian space
  plan.max_samples = 400;
  plan.value_overrides.entries.push_back({kDevice, {0.0, 1.0, 2.0}});
  TrainingDatabase db;
  collect_training_data(db, plan);
  bool saw_ssd = false;
  for (const auto& s : db.samples()) {
    if (s.point[kDevice] == 2.0) saw_ssd = true;
  }
  EXPECT_TRUE(saw_ssd);
}

}  // namespace
}  // namespace acic::core
