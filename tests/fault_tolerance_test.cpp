// End-to-end chaos tests for the fault-tolerant I/O pipeline: aggressive
// fault schedules must always terminate with a graded outcome (never hang
// or throw), retry budgets must be respected, and permanent losses must
// be survivable with retries / watchdog-graded without them.
#include <gtest/gtest.h>

#include "acic/cloud/ioconfig.hpp"
#include "acic/io/runner.hpp"
#include "acic/io/workload.hpp"

namespace acic::io {
namespace {

Workload chaos_workload(int np = 16) {
  Workload w;
  w.name = "chaos-probe";
  w.num_processes = np;
  w.num_io_processes = np;
  w.interface = IoInterface::kMpiIo;
  w.iterations = 2;
  w.data_size = 8.0 * MiB;
  w.request_size = 1.0 * MiB;
  w.op = OpMix::kWrite;
  w.collective = true;
  w.file_shared = true;
  return w;
}

cloud::IoConfig pvfs4() {
  cloud::IoConfig c;
  c.fs = cloud::FileSystemType::kPvfs2;
  c.device = storage::DeviceType::kEphemeral;
  c.io_servers = 4;
  c.placement = cloud::Placement::kDedicated;
  c.stripe_size = 1.0 * MiB;
  return c;
}

RunOptions aggressive_chaos(std::uint64_t seed) {
  RunOptions o;
  o.seed = seed;
  o.fault_model.outages_per_hour = 60.0;
  o.fault_model.brownouts_per_hour = 40.0;
  o.fault_model.brownout_fraction = 0.3;
  o.fault_model.stragglers_per_hour = 20.0;
  o.fault_model.straggler_factor = 0.25;
  o.fault_model.correlated_outage_probability = 0.2;
  o.fault_model.permanent_loss_probability = 0.1;
  o.tuning.retry.enabled = true;
  o.tuning.retry.request_timeout = 5.0;
  o.tuning.retry.max_attempts = 3;
  return o;
}

// The tentpole contract: however hostile the schedule, run_workload
// returns a graded outcome with consistent fault statistics — it never
// hangs, deadlocks, or throws.
TEST(FaultToleranceTest, AggressiveChaosAlwaysTerminatesGraded) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    const auto r = run_workload(chaos_workload(), pvfs4(),
                                aggressive_chaos(seed));
    SCOPED_TRACE("seed " + std::to_string(seed));
    EXPECT_TRUE(r.outcome == RunOutcome::kOk ||
                r.outcome == RunOutcome::kDegraded ||
                r.outcome == RunOutcome::kFailed);
    // Every timeout was resolved exactly one way: retried or abandoned.
    EXPECT_EQ(r.timeouts, r.retries + r.failed_requests);
    // A clean grade means the reaction machinery never had to step in.
    if (r.outcome == RunOutcome::kOk) {
      EXPECT_EQ(r.timeouts, 0u);
    } else if (r.outcome == RunOutcome::kDegraded) {
      EXPECT_GT(r.timeouts, 0u);
      EXPECT_GT(r.total_time, 0.0);
    }
    if (r.timeouts > 0) {
      EXPECT_GT(r.stalled_time, 0.0);
    }
  }
}

TEST(FaultToleranceTest, RetryBudgetIsBounded) {
  auto o = aggressive_chaos(11);
  o.tuning.retry.max_attempts = 2;  // one retry per request, then abandon
  const auto r = run_workload(chaos_workload(), pvfs4(), o);
  EXPECT_EQ(r.timeouts, r.retries + r.failed_requests);
  // With a budget of 2 attempts, a request retries at most once, so the
  // retry count can never exceed the number of distinct timed-out
  // requests — which is itself bounded by the timeout count.
  EXPECT_LE(r.retries, r.timeouts);
}

// A permanently lost server with retries armed: requests to the dead
// stripes exhaust their budget and are abandoned, the rest of the job
// completes, and the run grades degraded — data loss, but bounded time.
TEST(FaultToleranceTest, PermanentLossWithRetriesDegradesButFinishes) {
  RunOptions o;
  o.seed = 3;
  o.fault_model.outages_per_hour = 1800.0;  // a loss lands within seconds
  o.fault_model.permanent_loss_probability = 1.0;
  o.tuning.retry.enabled = true;
  o.tuning.retry.request_timeout = 3.0;
  o.tuning.retry.max_attempts = 2;
  const auto r = run_workload(chaos_workload(), pvfs4(), o);
  EXPECT_EQ(r.outcome, RunOutcome::kDegraded);
  EXPECT_GT(r.failed_requests, 0u);
  EXPECT_GT(r.total_time, 0.0);
}

// The same loss without client deadlines: the job stalls forever on the
// dead server, and only the watchdog turns that into a graded failure
// instead of a hang (or the old deadlock throw).
TEST(FaultToleranceTest, PermanentLossWithoutRetriesFailsViaWatchdog) {
  RunOptions o;
  o.seed = 3;
  o.fault_model.outages_per_hour = 1800.0;
  o.fault_model.permanent_loss_probability = 1.0;
  o.watchdog_sim_time = 3600.0;  // explicit bound; default would be 24 h
  const auto r = run_workload(chaos_workload(), pvfs4(), o);
  EXPECT_EQ(r.outcome, RunOutcome::kFailed);
  EXPECT_EQ(r.retries, 0u);  // no retry machinery was armed
}

// Legacy path untouched: an all-zero fault model with retry disabled must
// not arm the injector, the watchdog, or any fault accounting.
TEST(FaultToleranceTest, CleanRunsReportCleanStatistics) {
  RunOptions o;
  o.seed = 9;
  const auto r = run_workload(chaos_workload(), pvfs4(), o);
  EXPECT_EQ(r.outcome, RunOutcome::kOk);
  EXPECT_EQ(r.retries, 0u);
  EXPECT_EQ(r.timeouts, 0u);
  EXPECT_EQ(r.failed_requests, 0u);
  EXPECT_EQ(r.fault_events_cancelled, 0u);
  EXPECT_EQ(r.stalled_time, 0.0);
}

TEST(FaultToleranceTest, OutcomeToStringIsStable) {
  EXPECT_STREQ(to_string(RunOutcome::kOk), "ok");
  EXPECT_STREQ(to_string(RunOutcome::kDegraded), "degraded");
  EXPECT_STREQ(to_string(RunOutcome::kFailed), "failed");
}

}  // namespace
}  // namespace acic::io
