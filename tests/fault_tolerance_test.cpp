// End-to-end chaos tests for the fault-tolerant I/O pipeline: aggressive
// fault schedules must always terminate with a graded outcome (never hang
// or throw), retry budgets must be respected, and permanent losses must
// be survivable with retries / watchdog-graded without them.
#include <gtest/gtest.h>

#include "acic/cloud/cluster.hpp"
#include "acic/cloud/failure.hpp"
#include "acic/cloud/ioconfig.hpp"
#include "acic/fs/filesystem.hpp"
#include "acic/io/runner.hpp"
#include "acic/io/workload.hpp"

namespace acic::io {
namespace {

Workload chaos_workload(int np = 16) {
  Workload w;
  w.name = "chaos-probe";
  w.num_processes = np;
  w.num_io_processes = np;
  w.interface = IoInterface::kMpiIo;
  w.iterations = 2;
  w.data_size = 8.0 * MiB;
  w.request_size = 1.0 * MiB;
  w.op = OpMix::kWrite;
  w.collective = true;
  w.file_shared = true;
  return w;
}

cloud::IoConfig pvfs4() {
  cloud::IoConfig c;
  c.fs = cloud::FileSystemType::kPvfs2;
  c.device = storage::DeviceType::kEphemeral;
  c.io_servers = 4;
  c.placement = cloud::Placement::kDedicated;
  c.stripe_size = 1.0 * MiB;
  return c;
}

RunOptions aggressive_chaos(std::uint64_t seed) {
  RunOptions o;
  o.seed = seed;
  o.fault_model.outages_per_hour = 60.0;
  o.fault_model.brownouts_per_hour = 40.0;
  o.fault_model.brownout_fraction = 0.3;
  o.fault_model.stragglers_per_hour = 20.0;
  o.fault_model.straggler_factor = 0.25;
  o.fault_model.correlated_outage_probability = 0.2;
  o.fault_model.permanent_loss_probability = 0.1;
  o.tuning.retry.enabled = true;
  o.tuning.retry.request_timeout = 5.0;
  o.tuning.retry.max_attempts = 3;
  return o;
}

// The tentpole contract: however hostile the schedule, run_workload
// returns a graded outcome with consistent fault statistics — it never
// hangs, deadlocks, or throws.
TEST(FaultToleranceTest, AggressiveChaosAlwaysTerminatesGraded) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    const auto r = run_workload(chaos_workload(), pvfs4(),
                                aggressive_chaos(seed));
    SCOPED_TRACE("seed " + std::to_string(seed));
    EXPECT_TRUE(r.outcome == RunOutcome::kOk ||
                r.outcome == RunOutcome::kDegraded ||
                r.outcome == RunOutcome::kFailed);
    // Every timeout was resolved exactly one way: retried or abandoned.
    EXPECT_EQ(r.timeouts, r.retries + r.failed_requests);
    // A clean grade means the reaction machinery never had to step in.
    if (r.outcome == RunOutcome::kOk) {
      EXPECT_EQ(r.timeouts, 0u);
    } else if (r.outcome == RunOutcome::kDegraded) {
      EXPECT_GT(r.timeouts, 0u);
      EXPECT_GT(r.total_time, 0.0);
    }
    if (r.timeouts > 0) {
      EXPECT_GT(r.stalled_time, 0.0);
    }
  }
}

TEST(FaultToleranceTest, RetryBudgetIsBounded) {
  auto o = aggressive_chaos(11);
  o.tuning.retry.max_attempts = 2;  // one retry per request, then abandon
  const auto r = run_workload(chaos_workload(), pvfs4(), o);
  EXPECT_EQ(r.timeouts, r.retries + r.failed_requests);
  // With a budget of 2 attempts, a request retries at most once, so the
  // retry count can never exceed the number of distinct timed-out
  // requests — which is itself bounded by the timeout count.
  EXPECT_LE(r.retries, r.timeouts);
}

// A permanently lost server with retries armed: requests to the dead
// stripes exhaust their budget and are abandoned, the rest of the job
// completes, and the run grades degraded — data loss, but bounded time.
TEST(FaultToleranceTest, PermanentLossWithRetriesDegradesButFinishes) {
  RunOptions o;
  o.seed = 3;
  o.fault_model.outages_per_hour = 1800.0;  // a loss lands within seconds
  o.fault_model.permanent_loss_probability = 1.0;
  o.tuning.retry.enabled = true;
  o.tuning.retry.request_timeout = 3.0;
  o.tuning.retry.max_attempts = 2;
  const auto r = run_workload(chaos_workload(), pvfs4(), o);
  EXPECT_EQ(r.outcome, RunOutcome::kDegraded);
  EXPECT_GT(r.failed_requests, 0u);
  EXPECT_GT(r.total_time, 0.0);
}

// The same loss without client deadlines: the job stalls forever on the
// dead server, and only the watchdog turns that into a graded failure
// instead of a hang (or the old deadlock throw).
TEST(FaultToleranceTest, PermanentLossWithoutRetriesFailsViaWatchdog) {
  RunOptions o;
  o.seed = 3;
  o.fault_model.outages_per_hour = 1800.0;
  o.fault_model.permanent_loss_probability = 1.0;
  o.watchdog_sim_time = 3600.0;  // explicit bound; default would be 24 h
  const auto r = run_workload(chaos_workload(), pvfs4(), o);
  EXPECT_EQ(r.outcome, RunOutcome::kFailed);
  EXPECT_EQ(r.retries, 0u);  // no retry machinery was armed
}

// Legacy path untouched: an all-zero fault model with retry disabled must
// not arm the injector, the watchdog, or any fault accounting.
TEST(FaultToleranceTest, CleanRunsReportCleanStatistics) {
  RunOptions o;
  o.seed = 9;
  const auto r = run_workload(chaos_workload(), pvfs4(), o);
  EXPECT_EQ(r.outcome, RunOutcome::kOk);
  EXPECT_EQ(r.retries, 0u);
  EXPECT_EQ(r.timeouts, 0u);
  EXPECT_EQ(r.failed_requests, 0u);
  EXPECT_EQ(r.fault_events_cancelled, 0u);
  EXPECT_EQ(r.stalled_time, 0.0);
}

TEST(FaultToleranceTest, OutcomeToStringIsStable) {
  EXPECT_STREQ(to_string(RunOutcome::kOk), "ok");
  EXPECT_STREQ(to_string(RunOutcome::kDegraded), "degraded");
  EXPECT_STREQ(to_string(RunOutcome::kFailed), "failed");
}

// --- Retry deadline semantics ----------------------------------------
//
// The overall request deadline is max_attempts full timeout windows from
// the first send; backoff sleeps must be clamped to the remaining budget
// so a capped backoff can never push the request past it.

TEST(RetryDeadlineTest, BackoffDelayHonoursBudgetClamp) {
  fs::RetryPolicy p;
  p.enabled = true;
  p.backoff_base = 4.0;
  p.backoff_multiplier = 2.0;
  p.backoff_cap = 8.0;
  p.backoff_jitter = 0.0;
  Rng rng(1);
  // Unclamped growth: base, base*2, then the cap.
  EXPECT_DOUBLE_EQ(fs::backoff_delay(p, 0, rng), 4.0);
  EXPECT_DOUBLE_EQ(fs::backoff_delay(p, 1, rng), 8.0);
  EXPECT_DOUBLE_EQ(fs::backoff_delay(p, 2, rng), 8.0);
  // The budget clamp bites, down to (and never past) zero.
  EXPECT_DOUBLE_EQ(fs::backoff_delay(p, 1, rng, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(fs::backoff_delay(p, 1, rng, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(fs::backoff_delay(p, 1, rng, -5.0), 0.0);
}

TEST(RetryDeadlineTest, JitterDrawPrecedesTheClamp) {
  // The uniform draw happens before the clamp, so clamped and unclamped
  // calls consume the same RNG stream — a replay with a different budget
  // cannot shift every later jitter decision.
  fs::RetryPolicy p;
  p.enabled = true;
  p.backoff_base = 4.0;
  p.backoff_jitter = 0.25;
  Rng clamped(42), unclamped(42);
  fs::backoff_delay(p, 0, clamped, 0.001);
  fs::backoff_delay(p, 0, unclamped);
  EXPECT_EQ(clamped.uniform(), unclamped.uniform());
}

// The satellite regression: a deadline landing mid-backoff.  With
// timeout=5, attempts=3, base=4, cap=8 against a permanently lost
// server, the attempts time out at t=5 and t=14; the second backoff
// (8 s) would land at t=22 and the request would not resolve until 27 —
// well past the 15 s budget.  The clamp cuts that sleep to 1 s and the
// zero-width third window reports the failure at t=15 exactly.
TEST(RetryDeadlineTest, DeadlineLandingMidBackoffResolvesAtDeadline) {
  sim::Simulator s;
  cloud::ClusterModel::Options copts;
  copts.num_processes = 16;
  copts.config = pvfs4();
  copts.config.io_servers = 1;
  copts.jitter_sigma = 0.0;
  cloud::ClusterModel cluster(s, copts);
  cloud::FailureInjector inj(cluster);
  cloud::FaultSpec loss;
  loss.kind = cloud::FaultKind::kPermanentLoss;
  loss.server = 0;
  loss.at = 0.01;
  inj.inject(loss);

  fs::FsTuning tuning;
  tuning.retry.enabled = true;
  tuning.retry.request_timeout = 5.0;
  tuning.retry.max_attempts = 3;
  tuning.retry.backoff_base = 4.0;
  tuning.retry.backoff_multiplier = 2.0;
  tuning.retry.backoff_cap = 8.0;
  tuning.retry.backoff_jitter = 0.0;
  auto filesystem = fs::make_filesystem(cluster, tuning);
  s.spawn(filesystem->request(/*rank=*/0, 64.0 * MiB, /*is_write=*/true,
                              /*shared_file=*/false));
  s.run();

  const auto& stats = filesystem->fault_stats();
  EXPECT_EQ(stats.failed_requests, 1u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.timeouts, stats.retries + stats.failed_requests);
  // Resolution lands at the 15 s deadline (plus sub-second software
  // overhead before the transfer started), never at 27 s.
  EXPECT_GE(s.now(), 15.0);
  EXPECT_LT(s.now(), 16.0);
}

}  // namespace
}  // namespace acic::io
