// Tests for the pricing models: paper Eq. (1) and the detailed EBS
// refinement (volume-hours + per-I/O charges).
#include <gtest/gtest.h>

#include "acic/cloud/pricing.hpp"
#include "acic/io/runner.hpp"
#include "acic/ior/ior.hpp"

namespace acic::cloud {
namespace {

ClusterModel::Options opts(int np, IoConfig cfg) {
  ClusterModel::Options o;
  o.num_processes = np;
  o.config = cfg;
  o.jitter_sigma = 0.0;
  return o;
}

TEST(DetailedPricingTest, NoSurchargeForLocalDisks) {
  sim::Simulator s;
  IoConfig cfg;
  cfg.fs = FileSystemType::kPvfs2;
  cfg.device = storage::DeviceType::kEphemeral;
  cfg.io_servers = 4;
  cfg.placement = Placement::kDedicated;
  cfg.stripe_size = 4.0 * MiB;
  ClusterModel cluster(s, opts(32, cfg));
  DetailedPricing pricing;
  EXPECT_DOUBLE_EQ(pricing.ebs_surcharge(cluster, kHour, 1000000), 0.0);
  EXPECT_DOUBLE_EQ(pricing.run_cost(cluster, kHour, 1000000),
                   cluster.cost_of(kHour));
}

TEST(DetailedPricingTest, EbsSurchargeHasBothTerms) {
  sim::Simulator s;
  ClusterModel cluster(s, opts(32, IoConfig::baseline()));  // 2 EBS volumes
  DetailedPricing pricing;
  // One hour, 2 volumes x 200 GiB at $0.10/GB-month over 720 h.
  const Money capacity = 2.0 * 200.0 * 0.10 / 720.0;
  const Money per_io = 0.10;  // exactly one million I/Os
  const Money surcharge = pricing.ebs_surcharge(cluster, kHour, 1000000);
  EXPECT_NEAR(surcharge, capacity + per_io, 1e-9);
  EXPECT_NEAR(pricing.run_cost(cluster, kHour, 1000000),
              cluster.cost_of(kHour) + capacity + per_io, 1e-9);
}

TEST(DetailedPricingTest, ScalesWithServersAndMembers) {
  sim::Simulator s1, s2;
  IoConfig one = IoConfig::baseline();
  IoConfig four;
  four.fs = FileSystemType::kPvfs2;
  four.device = storage::DeviceType::kEbs;
  four.io_servers = 4;
  four.placement = Placement::kDedicated;
  four.stripe_size = 4.0 * MiB;
  ClusterModel c1(s1, opts(32, one)), c4(s2, opts(32, four));
  DetailedPricing pricing;
  // 4 servers x 2 volumes vs 1 server x 2 volumes: 4x capacity charge.
  EXPECT_NEAR(pricing.ebs_surcharge(c4, kHour, 0),
              4.0 * pricing.ebs_surcharge(c1, kHour, 0), 1e-9);
}

TEST(DetailedPricingTest, RunnerIntegration) {
  const auto w = ior::IorBench()
                     .tasks(32)
                     .block_size(64.0 * MiB)
                     .transfer_size(4.0 * MiB)
                     .write_only()
                     .build();
  io::RunOptions plain;
  plain.jitter_sigma = 0.0;
  io::RunOptions detailed = plain;
  detailed.detailed_pricing = DetailedPricing{};
  const auto a = ior::run_ior(w, IoConfig::baseline(), plain);
  const auto b = ior::run_ior(w, IoConfig::baseline(), detailed);
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
  EXPECT_GT(b.cost, a.cost);  // EBS surcharge applied
  // Ephemeral config: identical under both models.
  IoConfig eph = IoConfig::baseline();
  eph.device = storage::DeviceType::kEphemeral;
  const auto c = ior::run_ior(w, eph, plain);
  const auto d = ior::run_ior(w, eph, detailed);
  EXPECT_DOUBLE_EQ(c.cost, d.cost);
}

}  // namespace
}  // namespace acic::cloud
