// Tests for the ML module: dataset plumbing, CART regression trees
// (splitting, pruning, introspection), kNN and linear learners.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "acic/common/error.hpp"
#include "acic/common/rng.hpp"
#include "acic/ml/cart.hpp"
#include "acic/ml/forest.hpp"
#include "acic/ml/knn.hpp"

namespace acic::ml {
namespace {

Dataset step_function_data(int n, std::uint64_t seed, double noise = 0.0) {
  // y = 10 for x0 < 0.5, else 2; second feature is irrelevant.
  Rng rng(seed);
  Dataset d;
  for (int i = 0; i < n; ++i) {
    const double x0 = rng.uniform();
    const double x1 = rng.uniform();
    const double y =
        (x0 < 0.5 ? 10.0 : 2.0) + noise * rng.normal();
    d.add({x0, x1}, y);
  }
  return d;
}

TEST(DatasetTest, AddAndSplit) {
  Dataset d;
  for (int i = 0; i < 10; ++i) d.add({double(i)}, double(i));
  EXPECT_EQ(d.rows(), 10u);
  EXPECT_EQ(d.features(), 1u);
  const auto [train, val] = d.split_validation(5);
  EXPECT_EQ(train.rows(), 8u);
  EXPECT_EQ(val.rows(), 2u);
  EXPECT_DOUBLE_EQ(val.y[0], 4.0);
  EXPECT_DOUBLE_EQ(val.y[1], 9.0);
}

TEST(DatasetTest, RejectsRaggedRows) {
  Dataset d;
  d.add({1.0, 2.0}, 0.0);
  EXPECT_THROW(d.add({1.0}, 0.0), Error);
}

TEST(CartTest, LearnsStepFunctionExactly) {
  const auto data = step_function_data(200, 1);
  const auto tree = CartTree::train(data);
  EXPECT_NEAR(tree.predict(std::vector<double>{0.1, 0.9}), 10.0, 1e-9);
  EXPECT_NEAR(tree.predict(std::vector<double>{0.9, 0.1}), 2.0, 1e-9);
}

TEST(CartTest, SplitsOnTheInformativeFeature) {
  const auto data = step_function_data(300, 2);
  const auto tree = CartTree::train(data);
  const auto counts = tree.split_counts(2);
  EXPECT_GE(counts[0], 1);
  // The irrelevant feature should essentially never be used.
  EXPECT_LE(counts[1], counts[0]);
}

TEST(CartTest, PruningShrinksNoisyTree) {
  const auto data = step_function_data(400, 3, /*noise=*/1.0);
  CartParams no_prune;
  no_prune.prune_holdout = 0;
  CartParams prune;
  prune.prune_holdout = 4;
  const auto big = CartTree::train(data, no_prune);
  const auto small = CartTree::train(data, prune);
  EXPECT_LT(small.node_count(), big.node_count());
  // Pruned tree still gets the structure right.
  EXPECT_NEAR(small.predict(std::vector<double>{0.1, 0.5}), 10.0, 1.0);
  EXPECT_NEAR(small.predict(std::vector<double>{0.9, 0.5}), 2.0, 1.0);
}

TEST(CartTest, RespectsMaxDepth) {
  Rng rng(4);
  Dataset d;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform();
    d.add({x}, std::sin(8.0 * x));
  }
  CartParams p;
  p.max_depth = 3;
  p.prune_holdout = 0;
  const auto tree = CartTree::train(d, p);
  EXPECT_LE(tree.depth(), 4);  // root at depth 1
}

TEST(CartTest, ConstantTargetYieldsSingleLeaf) {
  Dataset d;
  for (int i = 0; i < 50; ++i) d.add({double(i % 7)}, 3.5);
  const auto tree = CartTree::train(d);
  EXPECT_EQ(tree.node_count(), 1);
  EXPECT_EQ(tree.leaf_count(), 1);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{123.0}), 3.5);
}

TEST(CartTest, DumpShowsPredictorAndLeafStats) {
  const auto data = step_function_data(100, 5);
  const auto tree = CartTree::train(data);
  const auto text = tree.dump({"size", "other"});
  EXPECT_NE(text.find("size <"), std::string::npos);
  EXPECT_NE(text.find("avg="), std::string::npos);
  EXPECT_NE(text.find("std="), std::string::npos);
}

TEST(CartTest, ThrowsOnEmptyAndUnfitted) {
  EXPECT_THROW(CartTree::train(Dataset{}), Error);
  CartTree tree;
  EXPECT_THROW(tree.predict(std::vector<double>{1.0}), Error);
}

TEST(CartTest, MseImprovesOverMeanPredictor) {
  const auto data = step_function_data(300, 6, /*noise=*/0.3);
  const auto tree = CartTree::train(data);
  double mean = 0.0;
  for (double y : data.y) mean += y;
  mean /= static_cast<double>(data.rows());
  double mean_mse = 0.0;
  for (double y : data.y) mean_mse += (y - mean) * (y - mean);
  mean_mse /= static_cast<double>(data.rows());
  EXPECT_LT(mse(tree, data), 0.3 * mean_mse);
}

TEST(KnnTest, InterpolatesLocally) {
  KnnRegressor knn(3);
  Dataset d;
  for (int i = 0; i <= 10; ++i) d.add({double(i)}, 2.0 * i);
  knn.fit(d);
  EXPECT_NEAR(knn.predict(std::vector<double>{5.0}), 10.0, 2.1);
  EXPECT_GT(knn.predict(std::vector<double>{9.0}),
            knn.predict(std::vector<double>{1.0}));
}

TEST(KnnTest, NormalizesFeatureScales) {
  // Feature 1 has a huge numeric range but is irrelevant; feature 0
  // decides the target.  Without normalisation kNN would key on f1.
  Rng rng(7);
  Dataset d;
  for (int i = 0; i < 200; ++i) {
    const double x0 = rng.uniform();
    const double x1 = rng.uniform(0.0, 1e9);
    d.add({x0, x1}, x0 < 0.5 ? 1.0 : 5.0);
  }
  KnnRegressor knn(5);
  knn.fit(d);
  EXPECT_NEAR(knn.predict(std::vector<double>{0.1, 5e8}), 1.0, 0.5);
  EXPECT_NEAR(knn.predict(std::vector<double>{0.9, 5e8}), 5.0, 0.5);
}

TEST(LinearTest, RecoversLinearFunction) {
  Rng rng(8);
  Dataset d;
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform(), b = rng.uniform();
    d.add({a, b}, 3.0 + 2.0 * a - 4.0 * b);
  }
  LinearRegressor lin;
  lin.fit(d);
  EXPECT_NEAR(lin.predict(std::vector<double>{0.5, 0.5}), 2.0, 1e-6);
  EXPECT_NEAR(lin.predict(std::vector<double>{1.0, 0.0}), 5.0, 1e-6);
}

TEST(LearnerInterface, NamesAreStable) {
  EXPECT_EQ(CartTree().name(), "CART");
  EXPECT_EQ(KnnRegressor().name(), "kNN");
  EXPECT_EQ(LinearRegressor().name(), "linear");
}


TEST(ForestTest, LearnsStepFunction) {
  const auto data = step_function_data(300, 9, /*noise=*/0.5);
  ForestRegressor forest;
  forest.fit(data);
  EXPECT_NEAR(forest.predict(std::vector<double>{0.1, 0.5}), 10.0, 1.0);
  EXPECT_NEAR(forest.predict(std::vector<double>{0.9, 0.5}), 2.0, 1.0);
  EXPECT_EQ(forest.tree_count(), 25u);
}

TEST(ForestTest, LowerVarianceThanSingleTreeAcrossResamples) {
  // Fit on two disjoint noisy samples; the forest's predictions at a
  // fixed query should differ less between fits than a single unpruned
  // tree's.
  const auto a = step_function_data(150, 10, 1.5);
  const auto b = step_function_data(150, 11, 1.5);
  CartParams loose;
  loose.prune_holdout = 0;
  const auto t1 = CartTree::train(a, loose);
  const auto t2 = CartTree::train(b, loose);
  ForestRegressor f1, f2;
  f1.fit(a);
  f2.fit(b);
  double tree_gap = 0.0, forest_gap = 0.0;
  Rng rng(12);
  for (int i = 0; i < 200; ++i) {
    const std::vector<double> q = {rng.uniform(), rng.uniform()};
    tree_gap += std::abs(t1.predict(q) - t2.predict(q));
    forest_gap += std::abs(f1.predict(q) - f2.predict(q));
  }
  EXPECT_LT(forest_gap, tree_gap);
}

TEST(ForestTest, PredictionStddevReflectsAmbiguity) {
  const auto data = step_function_data(400, 13, /*noise=*/0.2);
  ForestRegressor forest;
  forest.fit(data);
  // Deep inside a region: trees agree; at the decision boundary they
  // disagree more.
  const double inside = forest.prediction_stddev(std::vector<double>{0.1, 0.5});
  const double boundary =
      forest.prediction_stddev(std::vector<double>{0.5, 0.5});
  EXPECT_GE(boundary, inside);
}

TEST(ForestTest, DeterministicPerSeed) {
  const auto data = step_function_data(200, 14, 0.5);
  ForestParams p;
  p.seed = 7;
  ForestRegressor a(p), b(p);
  a.fit(data);
  b.fit(data);
  const std::vector<double> q = {0.3, 0.7};
  EXPECT_DOUBLE_EQ(a.predict(q), b.predict(q));
}

TEST(ForestTest, ThrowsUnfitted) {
  ForestRegressor f;
  EXPECT_THROW(f.predict(std::vector<double>{1.0, 2.0}), Error);
}

TEST(CartTest, AdjacentDoubleThresholdDoesNotCrash) {
  // Regression: with x values that are adjacent doubles, the midpoint
  // 0.5*(a+b) rounds back onto a, so the `x < thr` partition put zero
  // rows on the left and training aborted on the empty-side contract.
  // The threshold now falls back to b (any a < thr <= b is the same
  // split), so training succeeds and classifies both clusters.
  const double lo = 1.0;
  const double hi = std::nextafter(1.0, 2.0);
  Dataset d;
  d.add({lo}, 0.0);
  d.add({lo}, 0.0);
  d.add({hi}, 1.0);
  d.add({hi}, 1.0);
  const auto tree = CartTree::train(d);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{lo}), 0.0);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{hi}), 1.0);
}

TEST(CartTest, TrainOnRowsFullViewMatchesTrain) {
  const auto data = step_function_data(200, 21, /*noise=*/0.5);
  std::vector<std::size_t> all(data.rows());
  std::iota(all.begin(), all.end(), 0);
  const auto direct = CartTree::train(data);
  const auto viewed = CartTree::train_on_rows(data, all);
  Rng rng(22);
  for (int i = 0; i < 100; ++i) {
    const std::vector<double> q = {rng.uniform(), rng.uniform()};
    EXPECT_EQ(direct.predict(q), viewed.predict(q));
  }
}

TEST(ForestTest, IndexViewBootstrapMatchesMaterializedResample) {
  // fit() now trains each tree on an index view of the bootstrap draw.
  // Replaying the same rng sequence into materialised row-copy datasets
  // (the old implementation) must give bit-identical predictions.
  const auto data = step_function_data(120, 23, /*noise=*/0.8);
  ForestParams p;
  p.trees = 5;
  p.seed = 31;
  ForestRegressor forest(p);
  forest.fit(data);

  CartParams tree_params = p.tree_params;
  tree_params.prune_holdout = 0;  // as ForestRegressor's ctor forces
  Rng rng(p.seed);
  std::vector<CartTree> copied;
  for (int t = 0; t < p.trees; ++t) {
    Dataset boot;
    for (std::size_t i = 0; i < data.rows(); ++i) {
      const auto row = rng.uniform_index(data.rows());
      boot.add(data.x[row], data.y[row]);
    }
    copied.push_back(CartTree::train(boot, tree_params));
  }

  Rng probe(32);
  for (int i = 0; i < 100; ++i) {
    const std::vector<double> q = {probe.uniform(), probe.uniform()};
    double sum = 0.0;
    for (const auto& tree : copied) sum += tree.predict(q);
    EXPECT_EQ(forest.predict(q), sum / static_cast<double>(copied.size()));
  }
}

}  // namespace
}  // namespace acic::ml
