// Tests for the acic::check contract subsystem: macro tiers, violation
// context, the pluggable failure handler, and fail-fast behaviour of a
// deliberately violated simulator invariant.
#include <gtest/gtest.h>

#include <string>

#include "acic/common/check.hpp"
#include "acic/simcore/simulator.hpp"

namespace acic {
namespace {

TEST(ContractTest, PassingChecksAreSilent) {
  ACIC_CHECK(1 + 1 == 2);
  ACIC_EXPECTS(true, "never rendered");
  ACIC_ENSURES(2 > 1);
  ACIC_DCHECK(true);
}

TEST(ContractTest, CheckCarriesFullContext) {
  try {
    ACIC_CHECK(1 == 2, "value was " << 42);
    FAIL() << "expected throw";
  } catch (const ContractError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("ACIC_CHECK failed"), std::string::npos) << what;
    EXPECT_NE(what.find("1 == 2"), std::string::npos) << what;
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("value was 42"), std::string::npos) << what;
    EXPECT_EQ(e.violation().kind, ContractKind::kCheck);
    EXPECT_GT(e.violation().line, 0);
  }
}

TEST(ContractTest, ExpectsAndEnsuresReportTheirKind) {
  try {
    ACIC_EXPECTS(false);
    FAIL() << "expected throw";
  } catch (const ContractError& e) {
    EXPECT_EQ(e.violation().kind, ContractKind::kExpects);
    EXPECT_NE(std::string(e.what()).find("ACIC_EXPECTS failed"),
              std::string::npos);
  }
  try {
    ACIC_ENSURES(false);
    FAIL() << "expected throw";
  } catch (const ContractError& e) {
    EXPECT_EQ(e.violation().kind, ContractKind::kEnsures);
    EXPECT_NE(std::string(e.what()).find("ACIC_ENSURES failed"),
              std::string::npos);
  }
}

TEST(ContractTest, ContractErrorIsAnAcicError) {
  // Existing EXPECT_THROW(..., Error) sites must keep catching contract
  // violations after the error.hpp -> check.hpp migration.
  EXPECT_THROW(ACIC_CHECK(false), Error);
}

TEST(ContractTest, DcheckFollowsTheConfiguredTier) {
  int evaluations = 0;
  auto count = [&evaluations] {
    ++evaluations;
    return true;
  };
  ACIC_DCHECK(count());
  EXPECT_EQ(evaluations, contract_dchecks_enabled() ? 1 : 0);
  if (contract_dchecks_enabled()) {
    EXPECT_THROW(ACIC_DCHECK(false, "debug audit"), ContractError);
  } else {
    ACIC_DCHECK(false, "compiled out");  // must not fire
  }
}

struct CustomFailure {
  std::string text;
};

[[noreturn]] void custom_handler(const ContractViolation& violation) {
  throw CustomFailure{violation.describe()};
}

TEST(ContractTest, HandlerIsPluggableAndRestored) {
  const ContractHandler before = contract_handler();
  {
    ScopedContractHandler scoped(&custom_handler);
    try {
      ACIC_CHECK(false, "routed to custom handler");
      FAIL() << "expected CustomFailure";
    } catch (const CustomFailure& f) {
      EXPECT_NE(f.text.find("routed to custom handler"), std::string::npos);
    }
  }
  EXPECT_EQ(contract_handler(), before);
  EXPECT_THROW(ACIC_CHECK(false), ContractError);  // default restored
}

TEST(ContractTest, SimulatorPastEventFailsFastWithContext) {
  sim::Simulator s;
  s.at(5.0, [] {});
  s.run();
  // The acceptance-criterion scenario: scheduling an event in the past
  // must fail with a message naming the violated precondition and times.
  try {
    s.at(1.0, [] {});
    FAIL() << "expected ContractError";
  } catch (const ContractError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("event scheduled in the past"), std::string::npos)
        << what;
    EXPECT_NE(what.find("t=1"), std::string::npos) << what;
    EXPECT_NE(what.find("now=5"), std::string::npos) << what;
    EXPECT_NE(what.find("simulator.cpp"), std::string::npos) << what;
    EXPECT_EQ(e.violation().kind, ContractKind::kExpects);
  }
}

TEST(ContractDeathTest, AbortHandlerDiesWithDiagnosticOnStderr) {
  EXPECT_DEATH(
      {
        set_contract_handler(&abort_contract_handler);
        sim::Simulator s;
        s.at(5.0, [] {});
        s.run();
        s.at(1.0, [] {});
      },
      "event scheduled in the past");
}

}  // namespace
}  // namespace acic
