// Tests for trace replay: round-trip fidelity between a profiled
// application run and its synthetic stand-in.
#include <gtest/gtest.h>

#include "acic/apps/apps.hpp"
#include "acic/common/error.hpp"
#include "acic/profiler/replay.hpp"

namespace acic::profiler {
namespace {

cloud::IoConfig pvfs4() {
  cloud::IoConfig c;
  c.fs = cloud::FileSystemType::kPvfs2;
  c.device = storage::DeviceType::kEphemeral;
  c.io_servers = 4;
  c.placement = cloud::Placement::kDedicated;
  c.stripe_size = 4.0 * MiB;
  return c;
}

TEST(ReplayTest, ReplayMovesSameBytes) {
  io::Workload w = apps::flashio(64);
  IoTracer tracer;
  io::RunOptions o;
  o.jitter_sigma = 0.0;
  o.tracer = &tracer;
  const auto original = io::run_workload(w, pvfs4(), o);
  const auto replay = replay_trace(tracer, pvfs4(), o);
  EXPECT_NEAR(replay.fs_bytes, original.fs_bytes,
              0.05 * original.fs_bytes);
}

TEST(ReplayTest, FidelityCloseToOneOnSameConfig) {
  // Pure-I/O comparison: the synthetic twin should track the original
  // within a modest factor (it collapses request-size variation into
  // the median).
  for (const auto& w : {apps::flashio(64), apps::madbench2(64)}) {
    io::RunOptions o;
    o.jitter_sigma = 0.0;
    const auto f = replay_fidelity(w, pvfs4(), o);
    EXPECT_GT(f.time_ratio, 0.6) << w.name;
    EXPECT_LT(f.time_ratio, 1.6) << w.name;
    EXPECT_NEAR(f.bytes_ratio, 1.0, 0.06) << w.name;
  }
}

TEST(ReplayTest, ReplayRanksConfigsLikeTheOriginal) {
  // The whole point: decisions made from the replay transfer to the
  // real application.  Compare two configurations both ways.
  const auto w = apps::mpiblast(32);
  IoTracer tracer;
  io::RunOptions traced;
  traced.jitter_sigma = 0.0;
  traced.tracer = &tracer;
  const auto base_cfg = cloud::IoConfig::baseline();
  const auto good_cfg = pvfs4();
  const auto real_base = io::run_workload(w, base_cfg, traced);

  io::RunOptions o;
  o.jitter_sigma = 0.0;
  const auto real_good = io::run_workload(w, good_cfg, o);
  const auto replay_base = replay_trace(tracer, base_cfg, o);
  const auto replay_good = replay_trace(tracer, good_cfg, o);
  // Same ordering and a similar gap.
  ASSERT_LT(real_good.total_time, real_base.total_time);
  EXPECT_LT(replay_good.total_time, replay_base.total_time);
}

TEST(ReplayTest, EmptyTraceIsRejected) {
  IoTracer empty;
  EXPECT_THROW(replay_trace(empty, pvfs4()), Error);
}

}  // namespace
}  // namespace acic::profiler
