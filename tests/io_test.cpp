// Tests for the I/O middleware, workload semantics, the runner and the
// profiling tracer (integration across cloud/fs/mpi/io).
#include <gtest/gtest.h>

#include "acic/common/error.hpp"
#include "acic/io/middleware.hpp"
#include "acic/io/runner.hpp"
#include "acic/io/workload.hpp"
#include "acic/profiler/tracer.hpp"

namespace acic::io {
namespace {

Workload small_workload() {
  Workload w;
  w.name = "unit";
  w.num_processes = 32;
  w.num_io_processes = 32;
  w.interface = IoInterface::kMpiIo;
  w.iterations = 2;
  w.data_size = 8.0 * MiB;
  w.request_size = 4.0 * MiB;
  w.op = OpMix::kWrite;
  w.collective = false;
  w.file_shared = true;
  return w;
}

cloud::IoConfig pvfs4() {
  cloud::IoConfig c;
  c.fs = cloud::FileSystemType::kPvfs2;
  c.device = storage::DeviceType::kEphemeral;
  c.io_servers = 4;
  c.placement = cloud::Placement::kDedicated;
  c.stripe_size = 4.0 * MiB;
  return c;
}

RunOptions quiet() {
  RunOptions o;
  o.jitter_sigma = 0.0;
  return o;
}

TEST(WorkloadTest, NormalizeClampsFields) {
  Workload w = small_workload();
  w.num_io_processes = 64;
  w.request_size = 32.0 * MiB;
  w.interface = IoInterface::kPosix;
  w.collective = true;
  w.normalize();
  EXPECT_EQ(w.num_io_processes, 32);
  EXPECT_DOUBLE_EQ(w.request_size, w.data_size);
  EXPECT_FALSE(w.collective);  // POSIX cannot do collective I/O
  EXPECT_TRUE(w.valid());
}

TEST(WorkloadTest, ByteAccounting) {
  Workload w = small_workload();
  EXPECT_DOUBLE_EQ(w.bytes_per_iteration(), 32 * 8.0 * MiB);
  EXPECT_DOUBLE_EQ(w.total_bytes(), 2 * 32 * 8.0 * MiB);
  w.op = OpMix::kReadWrite;
  EXPECT_DOUBLE_EQ(w.bytes_per_iteration(), 2 * 32 * 8.0 * MiB);
}

TEST(WorkloadTest, StringRoundTrips) {
  EXPECT_EQ(interface_from_string("POSIX"), IoInterface::kPosix);
  EXPECT_EQ(interface_from_string("mpiio"), IoInterface::kMpiIo);
  EXPECT_EQ(opmix_from_string("read+write"), OpMix::kReadWrite);
  EXPECT_THROW(interface_from_string("carrier-pigeon"), Error);
  EXPECT_STREQ(to_string(OpMix::kWrite), "write");
  EXPECT_STREQ(to_string(IoInterface::kHdf5), "HDF5");
}

TEST(RunnerTest, CompletesAndReportsSaneNumbers) {
  const auto r = run_workload(small_workload(), pvfs4(), quiet());
  EXPECT_GT(r.total_time, 0.0);
  EXPECT_GT(r.io_time, 0.0);
  EXPECT_LE(r.io_time, r.total_time + 1e-9);
  EXPECT_EQ(r.num_instances, 6);  // 2 compute (32/16) + 4 dedicated IO
  EXPECT_GT(r.fs_requests, 0u);
  // All written bytes reach the file system.
  EXPECT_NEAR(r.fs_bytes, small_workload().total_bytes(), 1.0);
  EXPECT_NEAR(r.cost, r.total_time * 6 * per_hour(2.40), 1e-9);
}

TEST(RunnerTest, DeterministicForSameSeed) {
  const auto a = run_workload(small_workload(), pvfs4(), quiet());
  const auto b = run_workload(small_workload(), pvfs4(), quiet());
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.sim_events, b.sim_events);
}

TEST(RunnerTest, JitterChangesButStaysClose) {
  RunOptions o1 = quiet(), o2 = quiet();
  o1.jitter_sigma = o2.jitter_sigma = 0.08;
  o1.seed = 1;
  o2.seed = 2;
  const auto a = run_workload(small_workload(), pvfs4(), o1);
  const auto b = run_workload(small_workload(), pvfs4(), o2);
  EXPECT_NE(a.total_time, b.total_time);
  EXPECT_NEAR(a.total_time / b.total_time, 1.0, 0.5);
}

TEST(RunnerTest, CollectiveCoalescesRequests) {
  Workload independent = small_workload();
  independent.data_size = 2.0 * MiB;
  independent.request_size = 256.0 * KiB;
  Workload collective = independent;
  collective.collective = true;
  const auto ri = run_workload(independent, pvfs4(), quiet());
  const auto rc = run_workload(collective, pvfs4(), quiet());
  // Two-phase I/O issues far fewer, larger file-system requests.
  EXPECT_LT(rc.fs_requests, ri.fs_requests / 2);
}

TEST(RunnerTest, CollectiveHelpsSmallRequestsOnSharedFile) {
  Workload w = small_workload();
  w.num_processes = 64;
  w.num_io_processes = 64;
  w.data_size = 4.0 * MiB;
  w.request_size = 256.0 * KiB;
  Workload wc = w;
  wc.collective = true;
  const auto plain = run_workload(w, pvfs4(), quiet());
  const auto coll = run_workload(wc, pvfs4(), quiet());
  EXPECT_LT(coll.total_time, plain.total_time);
}

TEST(RunnerTest, ReadWriteMixMovesBothDirections) {
  Workload w = small_workload();
  w.op = OpMix::kReadWrite;
  const auto r = run_workload(w, pvfs4(), quiet());
  EXPECT_NEAR(r.fs_bytes, w.total_bytes(), 1.0);
}

TEST(RunnerTest, Hdf5AddsOverheadOverMpiIo) {
  Workload plain = small_workload();
  plain.collective = true;
  Workload hdf5 = plain;
  hdf5.interface = IoInterface::kHdf5;
  const auto a = run_workload(plain, pvfs4(), quiet());
  const auto b = run_workload(hdf5, pvfs4(), quiet());
  EXPECT_GT(b.total_time, a.total_time);
}

TEST(RunnerTest, ComputePhaseExtendsRuntime) {
  Workload w = small_workload();
  Workload wc = w;
  wc.compute_per_iteration = 5.0;
  const auto a = run_workload(w, pvfs4(), quiet());
  const auto b = run_workload(wc, pvfs4(), quiet());
  EXPECT_NEAR(b.total_time - a.total_time, 10.0, 1.5);  // 2 iterations
}

TEST(RunnerTest, FewerIoProcessesMoveLessData) {
  Workload w = small_workload();
  w.num_io_processes = 8;
  const auto r = run_workload(w, pvfs4(), quiet());
  EXPECT_NEAR(r.fs_bytes, 2 * 8 * 8.0 * MiB, 1.0);
}

TEST(RunnerTest, FailureInjectionSlowsTheRun) {
  Workload w = small_workload();
  w.iterations = 4;
  RunOptions calm = quiet();
  RunOptions stormy = quiet();
  stormy.failures_per_hour = 2000.0;  // aggressive to hit a short run
  const auto a = run_workload(w, pvfs4(), calm);
  const auto b = run_workload(w, pvfs4(), stormy);
  EXPECT_GT(b.total_time, a.total_time);
}

TEST(RunnerTest, RejectsInvalidWorkload) {
  Workload w = small_workload();
  w.iterations = 0;
  EXPECT_THROW(run_workload(w, pvfs4(), quiet()), Error);
}

TEST(TracerTest, InfersCharacteristicsFromRun) {
  Workload w = small_workload();
  w.num_io_processes = 16;
  w.op = OpMix::kWrite;
  profiler::IoTracer tracer;
  RunOptions o = quiet();
  o.tracer = &tracer;
  run_workload(w, pvfs4(), o);

  const auto inferred = tracer.infer_workload();
  EXPECT_EQ(inferred.num_processes, 32);
  EXPECT_EQ(inferred.num_io_processes, 16);
  EXPECT_EQ(inferred.iterations, 2);
  EXPECT_EQ(inferred.op, OpMix::kWrite);
  EXPECT_NEAR(inferred.data_size, w.data_size, 1.0);
  EXPECT_NEAR(inferred.request_size, w.request_size, 1.0);
  EXPECT_EQ(inferred.interface, w.interface);
  EXPECT_EQ(inferred.collective, w.collective);
  EXPECT_EQ(inferred.file_shared, w.file_shared);
}

TEST(TracerTest, CountsOpsAndBytes) {
  Workload w = small_workload();  // 2 chunks/proc/iter, 32 procs, 2 iters
  profiler::IoTracer tracer;
  RunOptions o = quiet();
  o.tracer = &tracer;
  run_workload(w, pvfs4(), o);
  EXPECT_EQ(tracer.op_count(true), 128u);
  EXPECT_EQ(tracer.op_count(false), 0u);
  EXPECT_NEAR(tracer.byte_count(true), w.total_bytes(), 1.0);
}

TEST(TracerTest, RequiresJobInfoAndRecords) {
  profiler::IoTracer t;
  EXPECT_THROW(t.infer_workload(), Error);
  t.set_job_info(4, IoInterface::kPosix, false, true);
  EXPECT_THROW(t.infer_workload(), Error);  // still no records
  t.record(0, 1024.0, 1024.0, 1.0, true, 0.0, 0);
  const auto w = t.infer_workload();
  EXPECT_EQ(w.num_io_processes, 1);
  EXPECT_DOUBLE_EQ(w.data_size, 1024.0);
}

}  // namespace
}  // namespace acic::io
