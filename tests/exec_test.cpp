// Tests for the unified execution engine: canonical run identity
// (exec::RunKey), the two-tier run cache, the persistent RunStore with
// corrupt-row quarantine, and the deduplicating batch scheduler.
//
// The ExecConcurrency suite is part of the TSan test filter: it
// exercises concurrent run()/run_batch() callers against one executor.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "acic/cloud/ioconfig.hpp"
#include "acic/exec/executor.hpp"
#include "acic/exec/runkey.hpp"
#include "acic/exec/store.hpp"
#include "acic/io/runner.hpp"
#include "acic/io/workload.hpp"
#include "acic/ior/ior.hpp"
#include "acic/profiler/tracer.hpp"

namespace acic {
namespace {

io::Workload test_workload() {
  io::Workload w;
  w.name = "exec-test";
  w.num_processes = 16;
  w.num_io_processes = 16;
  w.interface = io::IoInterface::kMpiIo;
  w.iterations = 2;
  w.data_size = 4.0 * MiB;
  w.request_size = 1.0 * MiB;
  w.op = io::OpMix::kWrite;
  return w;
}

/// A scratch directory that cleans up after itself.
struct TempDir {
  explicit TempDir(const std::string& tag) {
    static std::atomic<int> counter{0};
    path = std::filesystem::temp_directory_path() /
           ("acic_exec_test_" + tag + "_" +
            std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1)));
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string str() const { return path.string(); }
  std::filesystem::path path;
};

/// Executor whose "simulator" is a counting fake: deterministic result
/// derived from the request, plus an execution tally.
struct FakeEngine {
  std::atomic<int> executions{0};
  exec::Executor executor;

  explicit FakeEngine(std::string store_dir = {},
                      double delay_seconds = 0.0)
      : executor(make_options(this, std::move(store_dir), delay_seconds)) {}

  static exec::ExecutorOptions make_options(FakeEngine* self,
                                            std::string store_dir,
                                            double delay_seconds) {
    exec::ExecutorOptions o;
    o.store_dir = std::move(store_dir);
    o.run_fn = [self, delay_seconds](const exec::RunRequest& r) {
      self->executions.fetch_add(1);
      if (delay_seconds > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(delay_seconds));
      }
      io::RunResult result;
      result.total_time = 100.0 + r.config.io_servers +
                          static_cast<double>(r.workload.num_processes);
      result.cost = 1.0 + 0.01 * r.config.io_servers;
      result.io_time = 10.0;
      result.num_instances = r.config.io_servers + 1;
      result.fs_requests = 42;
      result.fs_bytes = r.workload.data_size;
      result.sim_events = 1000;
      result.outcome = io::RunOutcome::kOk;
      return result;
    };
    return o;
  }
};

// --------------------------------------------------------------------
// RunKey: canonical identity
// --------------------------------------------------------------------

TEST(RunKeyTest, EquivalentSpellingsShareOneKey) {
  const auto w = test_workload();
  const cloud::IoConfig cfg = cloud::IoConfig::baseline();
  const io::RunOptions opts;
  const auto base = exec::run_key(w, cfg, opts);

  // The workload display name is not behaviour.
  io::Workload renamed = w;
  renamed.name = "a-completely-different-label";
  EXPECT_EQ(base, exec::run_key(renamed, cfg, opts));

  // An un-normalized spelling keys like its normalized form (the runner
  // normalizes before simulating).
  io::Workload raw = w;
  raw.num_io_processes = 99;  // normalize clamps to num_processes
  io::Workload normalized = raw;
  normalized.normalize();
  EXPECT_EQ(exec::run_key(raw, cfg, opts),
            exec::run_key(normalized, cfg, opts));

  // -0.0 and +0.0 jitter behave identically.
  io::RunOptions poszero = opts;
  poszero.jitter_sigma = 0.0;
  io::RunOptions negzero = opts;
  negzero.jitter_sigma = -0.0;
  EXPECT_EQ(exec::run_key(w, cfg, poszero),
            exec::run_key(w, cfg, negzero));

  // The legacy failures_per_hour shorthand is the same run as the
  // explicit fault-model spelling the runner merges it into.
  io::RunOptions shorthand = opts;
  shorthand.failures_per_hour = 2.0;
  io::RunOptions explicit_model = opts;
  explicit_model.fault_model.outages_per_hour = 2.0;
  EXPECT_EQ(exec::run_key(w, cfg, shorthand),
            exec::run_key(w, cfg, explicit_model));

  // Inert fault shape: brownout_fraction is meaningless while the
  // brownout rate is zero.
  io::RunOptions inert = opts;
  inert.fault_model.brownout_fraction = 0.9;
  EXPECT_EQ(base, exec::run_key(w, cfg, inert));

  // NFS ignores (and normalises away) the stripe size.
  cloud::IoConfig nfs_a = cfg;
  nfs_a.stripe_size = 0.0;
  cloud::IoConfig nfs_b = cfg;
  nfs_b.stripe_size = 64.0 * MiB;
  EXPECT_EQ(exec::run_key(w, nfs_a, opts), exec::run_key(w, nfs_b, opts));

  // raid_members=0 selects the platform default; spelling the resolved
  // value explicitly is the same configuration.
  cloud::IoConfig raid_default = cfg;
  raid_default.raid_members = 0;
  cloud::IoConfig raid_explicit = cfg;
  raid_explicit.raid_members = cfg.effective_raid_members();
  EXPECT_EQ(exec::run_key(w, raid_default, opts),
            exec::run_key(w, raid_explicit, opts));
}

TEST(RunKeyTest, DistinctBehavioursGetDistinctKeys) {
  const auto w = test_workload();
  const cloud::IoConfig cfg = cloud::IoConfig::baseline();
  const io::RunOptions opts;
  const auto base = exec::run_key(w, cfg, opts);

  io::RunOptions seeded = opts;
  seeded.seed = 999;
  EXPECT_NE(base, exec::run_key(w, cfg, seeded));

  io::RunOptions jitter = opts;
  jitter.jitter_sigma = 0.25;
  EXPECT_NE(base, exec::run_key(w, cfg, jitter));

  // Different fault models are different runs — including models that
  // agree on every armed rate but differ in which fault class is armed.
  io::RunOptions outages = opts;
  outages.fault_model.outages_per_hour = 1.5;
  io::RunOptions stragglers = opts;
  stragglers.fault_model.stragglers_per_hour = 1.5;
  EXPECT_NE(exec::run_key(w, cfg, outages),
            exec::run_key(w, cfg, stragglers));
  EXPECT_NE(base, exec::run_key(w, cfg, outages));

  io::RunOptions retry = opts;
  retry.tuning.retry.enabled = true;
  EXPECT_NE(base, exec::run_key(w, cfg, retry));

  io::RunOptions priced = opts;
  priced.detailed_pricing = cloud::DetailedPricing{};
  EXPECT_NE(base, exec::run_key(w, cfg, priced));

  cloud::IoConfig pvfs;
  pvfs.fs = cloud::FileSystemType::kPvfs2;
  pvfs.io_servers = 4;
  EXPECT_NE(base, exec::run_key(w, pvfs, opts));

  io::Workload bigger = w;
  bigger.data_size *= 2.0;
  EXPECT_NE(base, exec::run_key(bigger, cfg, opts));
}

TEST(RunKeyTest, HexRoundTrip) {
  const auto key = exec::run_key(test_workload(),
                                 cloud::IoConfig::baseline(), {});
  const auto hex = key.hex();
  EXPECT_EQ(hex.size(), 32u);
  const auto parsed = exec::RunKey::from_hex(hex);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(key, *parsed);

  EXPECT_FALSE(exec::RunKey::from_hex("").has_value());
  EXPECT_FALSE(exec::RunKey::from_hex("abc").has_value());
  EXPECT_FALSE(
      exec::RunKey::from_hex(std::string(31, 'a') + "g").has_value());
  EXPECT_FALSE(exec::RunKey::from_hex(std::string(32, 'Z')).has_value());
}

// --------------------------------------------------------------------
// Executor: two-tier cache
// --------------------------------------------------------------------

TEST(ExecutorCacheTest, WarmHitIsBitIdenticalAndFree) {
  FakeEngine fake;
  const exec::RunRequest req{test_workload(), cloud::IoConfig::baseline(),
                             io::RunOptions{}};
  exec::RunInfo cold_info;
  const auto cold = fake.executor.run(req, &cold_info);
  EXPECT_EQ(cold_info.source, exec::RunSource::kExecuted);
  EXPECT_EQ(fake.executions.load(), 1);

  exec::RunInfo warm_info;
  const auto warm = fake.executor.run(req, &warm_info);
  EXPECT_EQ(warm_info.source, exec::RunSource::kMemo);
  EXPECT_EQ(fake.executions.load(), 1);  // no second simulation
  EXPECT_EQ(warm_info.key, cold_info.key);

  EXPECT_EQ(cold.total_time, warm.total_time);
  EXPECT_EQ(cold.cost, warm.cost);
  EXPECT_EQ(cold.io_time, warm.io_time);
  EXPECT_EQ(cold.fs_requests, warm.fs_requests);
  EXPECT_EQ(cold.sim_events, warm.sim_events);
  EXPECT_EQ(cold.outcome, warm.outcome);
}

TEST(ExecutorCacheTest, RealSimulatorColdVsWarmIsBitIdentical) {
  // Same, but against the real deterministic simulator through run_ior.
  exec::Executor engine;
  const auto w = ior::IorBench().tasks(8).segments(2).build();
  cloud::IoConfig pvfs;
  pvfs.fs = cloud::FileSystemType::kPvfs2;
  pvfs.io_servers = 2;
  io::RunOptions opts;
  opts.seed = 7;
  opts.jitter_sigma = 0.06;

  exec::RunInfo a_info;
  exec::RunInfo b_info;
  const auto a = ior::run_ior(w, pvfs, opts, &engine, &a_info);
  const auto b = ior::run_ior(w, pvfs, opts, &engine, &b_info);
  EXPECT_EQ(a_info.source, exec::RunSource::kExecuted);
  EXPECT_EQ(b_info.source, exec::RunSource::kMemo);
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.sim_events, b.sim_events);
}

// A preempted-then-recovered run is a legitimate cacheable outcome: the
// warm hit must replay the degraded grade and the full restart
// provenance byte-identically, never surface as a clean timing.
TEST(ExecutorCacheTest, PreemptedRunReplaysGradedOutcomeFromCache) {
  exec::Executor engine;
  io::Workload w = test_workload();
  w.iterations = 4;
  w.data_size = 512.0 * MiB;  // long enough for reclaims to land mid-run
  cloud::IoConfig pvfs;
  pvfs.fs = cloud::FileSystemType::kPvfs2;
  pvfs.device = storage::DeviceType::kEphemeral;
  pvfs.io_servers = 4;
  pvfs.placement = cloud::Placement::kDedicated;
  pvfs.stripe_size = 1.0 * MiB;
  io::RunOptions opts;
  opts.seed = 6;  // this schedule preempts and recovers within budget
  opts.fault_model.preemptions_per_hour = 60.0;
  opts.fault_model.preemption_notice = 10.0;
  opts.checkpoint.enabled = true;
  opts.checkpoint.interval = 15.0;
  opts.checkpoint.bytes = 8.0 * MiB;
  opts.checkpoint.replacement_delay_min = 5.0;
  opts.checkpoint.replacement_delay_max = 20.0;
  opts.watchdog_sim_time = 4.0 * kHour;
  opts.spot_pricing.emplace();

  exec::RunInfo cold_info;
  exec::RunInfo warm_info;
  const exec::RunRequest req{w, pvfs, opts};
  const auto cold = engine.run(req, &cold_info);
  const auto warm = engine.run(req, &warm_info);
  EXPECT_EQ(cold_info.source, exec::RunSource::kExecuted);
  EXPECT_EQ(warm_info.source, exec::RunSource::kMemo);
  // The run must really have been preempted and recovered, else the
  // replay assertions below are vacuous.
  ASSERT_EQ(cold.outcome, io::RunOutcome::kDegraded);
  ASSERT_GT(cold.restarts, 0u);
  EXPECT_EQ(warm.outcome, cold.outcome);
  EXPECT_EQ(warm.total_time, cold.total_time);
  EXPECT_EQ(warm.cost, cold.cost);
  EXPECT_EQ(warm.preemptions, cold.preemptions);
  EXPECT_EQ(warm.restarts, cold.restarts);
  EXPECT_EQ(warm.lost_sim_time, cold.lost_sim_time);
  EXPECT_EQ(warm.checkpoint_bytes, cold.checkpoint_bytes);
}

TEST(ExecutorCacheTest, FailedRunsAreCachedAsFailures) {
  exec::ExecutorOptions o;
  std::atomic<int> executions{0};
  o.run_fn = [&executions](const exec::RunRequest&) {
    executions.fetch_add(1);
    io::RunResult r;
    r.outcome = io::RunOutcome::kFailed;
    r.total_time = 0.0;
    r.cost = 0.0;
    return r;
  };
  exec::Executor executor(std::move(o));
  const exec::RunRequest req{test_workload(), cloud::IoConfig::baseline(),
                             io::RunOptions{}};
  const auto cold = executor.run(req);
  exec::RunInfo info;
  const auto warm = executor.run(req, &info);
  EXPECT_EQ(executions.load(), 1);  // the failure itself is cached...
  EXPECT_EQ(info.source, exec::RunSource::kMemo);
  // ...and keeps its grade: a warm hit can never surface as a timing.
  EXPECT_EQ(cold.outcome, io::RunOutcome::kFailed);
  EXPECT_EQ(warm.outcome, io::RunOutcome::kFailed);
}

TEST(ExecutorCacheTest, TracedRunsBypassTheCache) {
  FakeEngine fake;
  profiler::IoTracer tracer;
  exec::RunRequest req{test_workload(), cloud::IoConfig::baseline(),
                       io::RunOptions{}};
  req.options.tracer = &tracer;
  exec::RunInfo info;
  fake.executor.run(req, &info);
  EXPECT_EQ(info.source, exec::RunSource::kUncacheable);
  fake.executor.run(req, &info);
  EXPECT_EQ(info.source, exec::RunSource::kUncacheable);
  EXPECT_EQ(fake.executions.load(), 2);  // every tap really runs
  EXPECT_EQ(fake.executor.memo_size(), 0u);
}

TEST(ExecutorCacheTest, CacheDisabledIsAPassThrough) {
  exec::ExecutorOptions o;
  std::atomic<int> executions{0};
  o.cache = false;
  o.run_fn = [&executions](const exec::RunRequest&) {
    executions.fetch_add(1);
    io::RunResult r;
    r.total_time = 1.0;
    r.cost = 1.0;
    return r;
  };
  exec::Executor executor(std::move(o));
  const exec::RunRequest req{test_workload(), cloud::IoConfig::baseline(),
                             io::RunOptions{}};
  executor.run(req);
  executor.run(req);
  EXPECT_EQ(executions.load(), 2);
  EXPECT_EQ(executor.memo_size(), 0u);
}

TEST(ExecutorCacheTest, PersistentTierSurvivesIntoAFreshExecutor) {
  TempDir dir("persist");
  const exec::RunRequest req{test_workload(), cloud::IoConfig::baseline(),
                             io::RunOptions{}};
  io::RunResult cold;
  {
    FakeEngine writer(dir.str());
    cold = writer.executor.run(req);
    EXPECT_EQ(writer.executions.load(), 1);
  }
  // A fresh executor (fresh memo) over the same store answers from disk,
  // bit-identically, without simulating.
  FakeEngine reader(dir.str());
  exec::RunInfo info;
  const auto warm = reader.executor.run(req, &info);
  EXPECT_EQ(info.source, exec::RunSource::kStore);
  EXPECT_EQ(reader.executions.load(), 0);
  EXPECT_EQ(cold.total_time, warm.total_time);
  EXPECT_EQ(cold.cost, warm.cost);
  EXPECT_EQ(cold.fs_bytes, warm.fs_bytes);

  // The store hit was promoted to the memo tier.
  const auto again = reader.executor.run(req, &info);
  EXPECT_EQ(info.source, exec::RunSource::kMemo);
  EXPECT_EQ(again.total_time, cold.total_time);
}

// --------------------------------------------------------------------
// RunStore: persistence and quarantine
// --------------------------------------------------------------------

io::RunResult sample_result() {
  io::RunResult r;
  r.total_time = 123.456789012345678;  // exercises %.17g round-tripping
  r.cost = 0.1;
  r.io_time = 45.0;
  r.num_instances = 5;
  r.fs_requests = 777;
  r.fs_bytes = 1.5 * GiB;
  r.sim_events = 987654321;
  r.outcome = io::RunOutcome::kDegraded;
  r.retries = 3;
  r.timeouts = 1;
  r.failed_requests = 2;
  r.stalled_time = 6.25;
  r.fault_events_cancelled = 4;
  r.preemptions = 6;
  r.restarts = 5;
  r.lost_sim_time = 78.9012345678901234;
  r.checkpoint_bytes = 3.5 * GiB;
  return r;
}

TEST(RunStoreTest, RoundTripsEveryFieldExactly) {
  TempDir dir("roundtrip");
  const auto key = exec::run_key(test_workload(),
                                 cloud::IoConfig::baseline(), {});
  const auto put = sample_result();
  {
    exec::RunStore store(dir.str());
    store.put(key, put);
    EXPECT_EQ(store.size(), 1u);
    EXPECT_GT(store.bytes_on_disk(), 0u);
  }
  exec::RunStore reopened(dir.str());
  EXPECT_EQ(reopened.size(), 1u);
  EXPECT_EQ(reopened.quarantined(), 0u);
  const auto got = reopened.lookup(key);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->total_time, put.total_time);
  EXPECT_EQ(got->cost, put.cost);
  EXPECT_EQ(got->io_time, put.io_time);
  EXPECT_EQ(got->num_instances, put.num_instances);
  EXPECT_EQ(got->fs_requests, put.fs_requests);
  EXPECT_EQ(got->fs_bytes, put.fs_bytes);
  EXPECT_EQ(got->sim_events, put.sim_events);
  EXPECT_EQ(got->outcome, put.outcome);
  EXPECT_EQ(got->retries, put.retries);
  EXPECT_EQ(got->timeouts, put.timeouts);
  EXPECT_EQ(got->failed_requests, put.failed_requests);
  EXPECT_EQ(got->stalled_time, put.stalled_time);
  EXPECT_EQ(got->fault_events_cancelled, put.fault_events_cancelled);
  EXPECT_EQ(got->preemptions, put.preemptions);
  EXPECT_EQ(got->restarts, put.restarts);
  EXPECT_EQ(got->lost_sim_time, put.lost_sim_time);
  EXPECT_EQ(got->checkpoint_bytes, put.checkpoint_bytes);
}

TEST(RunStoreTest, CorruptRowsAreQuarantinedNotServed) {
  TempDir dir("quarantine");
  const auto good_key = exec::run_key(test_workload(),
                                      cloud::IoConfig::baseline(), {});
  {
    exec::RunStore store(dir.str());
    store.put(good_key, sample_result());
  }
  // Corrupt the file by hand with records whose CRC frame is *valid*
  // but whose content is not — wrong arity, non-numeric cell, bad key,
  // and the poisonous case, a row claiming `ok` with zero time.  (Bad
  // CRCs are also quarantined when the record is newline-terminated;
  // only unterminated trailing bytes count as a torn tail — see the
  // recovery suite.)
  {
    std::ofstream out(dir.path / "runs.csv", std::ios::app);
    out << exec::RunStore::frame("deadbeef,1.0") << "\n";
    out << exec::RunStore::frame(std::string(32, 'a') +
                                 ",not_a_number,1,1,1,1,1,1,ok,0,0,0,0,0")
        << "\n";
    out << exec::RunStore::frame(
               "zznotakeyzznotakeyzznotakeyzznot,1,1,1,1,1,1,1,ok,0,0,0,0,0")
        << "\n";
    out << exec::RunStore::frame(std::string(32, 'b') +
                                 ",0,0,1,1,1,1,1,ok,0,0,0,0,0")
        << "\n";
  }
  exec::RunStore store(dir.str());
  EXPECT_EQ(store.quarantined(), 4u);
  EXPECT_EQ(store.size(), 1u);  // only the good row survives
  EXPECT_TRUE(store.lookup(good_key).has_value());
  EXPECT_FALSE(
      store.lookup(*exec::RunKey::from_hex(std::string(32, 'b')))
          .has_value());
  EXPECT_TRUE(std::filesystem::exists(dir.path / "quarantine.csv"));

  // runs.csv was rewritten with only survivors: the next open is clean.
  exec::RunStore clean(dir.str());
  EXPECT_EQ(clean.quarantined(), 0u);
  EXPECT_EQ(clean.size(), 1u);
}

TEST(RunStoreTest, IncompatibleSchemaIsSidelinedWhole) {
  TempDir dir("schema");
  std::filesystem::create_directories(dir.path);
  {
    std::ofstream out(dir.path / "runs.csv");
    out << "some_future_schema_v9,who,knows\n";
    out << "row,we,cannot,interpret\n";
  }
  exec::RunStore store(dir.str());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.quarantined(), 0u);
  EXPECT_TRUE(std::filesystem::exists(dir.path / "runs.csv.incompatible"));
}

// --------------------------------------------------------------------
// Concurrency: batch dedup + in-flight coalescing (TSan-audited)
// --------------------------------------------------------------------

TEST(ExecConcurrency, BatchCollapsesDuplicateKeysToOneSimulation) {
  FakeEngine fake;
  const auto w = test_workload();
  const cloud::IoConfig cfg = cloud::IoConfig::baseline();
  cloud::IoConfig pvfs;
  pvfs.fs = cloud::FileSystemType::kPvfs2;
  pvfs.io_servers = 4;

  // 32 requests over only two distinct keys, interleaved.
  std::vector<exec::RunRequest> requests;
  for (int i = 0; i < 32; ++i) {
    requests.push_back(
        exec::RunRequest{w, (i % 2 == 0) ? cfg : pvfs, io::RunOptions{}});
  }
  std::vector<exec::RunInfo> infos;
  const auto results = fake.executor.run_batch(requests, 8, &infos);
  EXPECT_EQ(fake.executions.load(), 2);
  ASSERT_EQ(results.size(), 32u);
  ASSERT_EQ(infos.size(), 32u);

  int executed = 0, deduped = 0;
  for (const auto& info : infos) {
    if (info.source == exec::RunSource::kExecuted) ++executed;
    if (info.source == exec::RunSource::kDeduped) ++deduped;
  }
  EXPECT_EQ(executed, 2);
  EXPECT_EQ(deduped, 30);

  // Scatter is per-index: every response matches its request's config.
  for (std::size_t i = 0; i < results.size(); ++i) {
    const double expected_servers = (i % 2 == 0) ? cfg.io_servers
                                                 : pvfs.io_servers;
    EXPECT_EQ(results[i].total_time,
              100.0 + expected_servers + w.num_processes);
  }
}

TEST(ExecConcurrency, ConcurrentCallersCoalesceOntoOneRun) {
  // A deliberately slow fake makes the race window wide: all threads ask
  // for the same key while the first simulation is still in flight.
  FakeEngine fake(/*store_dir=*/{}, /*delay_seconds=*/0.05);
  const exec::RunRequest req{test_workload(), cloud::IoConfig::baseline(),
                             io::RunOptions{}};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<io::RunResult> results(kThreads);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&, t] { results[static_cast<std::size_t>(t)] = fake.executor.run(req); });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(fake.executions.load(), 1);
  for (const auto& r : results) {
    EXPECT_EQ(r.total_time, results[0].total_time);
    EXPECT_EQ(r.cost, results[0].cost);
  }
}

// Regression: arm_store() used to write options_.store_dir under the
// lock while run() read options_ unlocked — a data race TSan could
// trigger whenever a store was armed mid-traffic.  options_ is now
// immutable after construction (the armed directory lives on the store
// itself), so arming while runs are in flight must be clean.
TEST(ExecConcurrency, ArmStoreRacesConcurrentRuns) {
  TempDir dir("arm_race");
  FakeEngine fake;  // starts with no store
  const auto w = test_workload();
  const auto candidates = cloud::IoConfig::enumerate_candidates();

  std::thread traffic([&] {
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      fake.executor.run(
          exec::RunRequest{w, candidates[i], io::RunOptions{}});
    }
  });
  fake.executor.arm_store(dir.str());
  traffic.join();

  EXPECT_TRUE(fake.executor.has_store());
  EXPECT_FALSE(fake.executor.store_degraded());
  // Runs finishing after the arm land in the store; a rerun of the last
  // key is a cache hit, not a new simulation.
  const int before = fake.executions.load();
  fake.executor.run(
      exec::RunRequest{w, candidates.back(), io::RunOptions{}});
  EXPECT_EQ(fake.executions.load(), before);
}

TEST(ExecConcurrency, ConcurrentDistinctBatchesStayConsistent) {
  FakeEngine fake;
  const auto w = test_workload();
  const auto candidates = cloud::IoConfig::enumerate_candidates();
  std::vector<exec::RunRequest> requests;
  for (const auto& cfg : candidates) {
    requests.push_back(exec::RunRequest{w, cfg, io::RunOptions{}});
  }
  // Two threads race the same batch; every key still runs exactly once.
  std::thread other([&] { fake.executor.run_batch(requests, 4, nullptr); });
  const auto results = fake.executor.run_batch(requests, 4, nullptr);
  other.join();
  EXPECT_EQ(fake.executions.load(), static_cast<int>(candidates.size()));
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].total_time,
              100.0 + candidates[i].io_servers + w.num_processes);
  }
}

}  // namespace
}  // namespace acic
