// Fuzz-style tests for the strict wire framing (src/acic/net/frame.*):
// round-trips, frames split across arbitrarily small reads, truncated
// frames at EOF, oversized length prefixes, embedded NULs, garbage
// bytes, and the poisoned-after-error contract.  No sockets here — the
// decoder is a pure byte-stream state machine, so everything is
// deterministic and instant.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "acic/common/error.hpp"
#include "acic/net/frame.hpp"

namespace acic::net {
namespace {

using Status = FrameDecoder::Status;

std::string corrupt_header(std::size_t offset, char value,
                           const std::string& payload = "stats") {
  std::string frame = encode_frame(payload);
  frame[offset] = value;
  return frame;
}

TEST(NetFrame, EncodeDecodeRoundTrip) {
  const std::string payload = "recommend objective=performance top_k=3";
  const std::string frame = encode_frame(payload);
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + payload.size());
  EXPECT_EQ(static_cast<std::uint8_t>(frame[0]), kFrameMagic);
  EXPECT_EQ(static_cast<std::uint8_t>(frame[1]), kFrameVersion);

  FrameDecoder dec;
  dec.feed(frame);
  auto r = dec.next();
  ASSERT_EQ(r.status, Status::kFrame);
  EXPECT_EQ(r.payload, payload);
  EXPECT_EQ(dec.next().status, Status::kNeedMore);
  EXPECT_FALSE(dec.mid_frame());
  EXPECT_EQ(dec.buffered_bytes(), 0u);
}

TEST(NetFrame, EncoderRefusesMalformedPayloads) {
  EXPECT_THROW((void)encode_frame(""), Error);
  EXPECT_THROW((void)encode_frame(std::string("a\0b", 3)), Error);
  EXPECT_THROW((void)encode_frame(std::string(65, 'x'), 64), Error);
  EXPECT_NO_THROW((void)encode_frame(std::string(64, 'x'), 64));
}

TEST(NetFrame, PipelinedFramesComeOutInOrder) {
  std::string wire;
  const std::vector<std::string> payloads = {"stats", "rank top=5", "help"};
  for (const auto& p : payloads) wire += encode_frame(p);

  FrameDecoder dec;
  dec.feed(wire);
  for (const auto& expected : payloads) {
    auto r = dec.next();
    ASSERT_EQ(r.status, Status::kFrame);
    EXPECT_EQ(r.payload, expected);
  }
  EXPECT_EQ(dec.next().status, Status::kNeedMore);
}

// The socket can deliver one byte at a time; the decoder must reassemble
// regardless of where the cuts land.
TEST(NetFrame, FrameSplitAcrossByteSizedReads) {
  const std::string payload = "predict config=pvfs.4.D.eph.4M np=64";
  const std::string frame = encode_frame(payload);
  FrameDecoder dec;
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    dec.feed(frame.data() + i, 1);
    EXPECT_EQ(dec.next().status, Status::kNeedMore) << "at byte " << i;
    EXPECT_TRUE(dec.mid_frame());
  }
  dec.feed(frame.data() + frame.size() - 1, 1);
  auto r = dec.next();
  ASSERT_EQ(r.status, Status::kFrame);
  EXPECT_EQ(r.payload, payload);
  EXPECT_FALSE(dec.mid_frame());
}

// Randomised cut points: every chunking of a valid multi-frame stream
// must decode to the same sequence.
TEST(NetFrame, RandomChunkingNeverChangesTheDecode) {
  std::string wire;
  std::vector<std::string> payloads;
  for (int i = 1; i <= 24; ++i) {
    payloads.push_back("req " + std::string(static_cast<std::size_t>(i * 7),
                                            static_cast<char>('a' + i % 26)));
    wire += encode_frame(payloads.back());
  }
  std::mt19937 rng(1234);
  for (int trial = 0; trial < 50; ++trial) {
    FrameDecoder dec;
    std::vector<std::string> seen;
    std::size_t off = 0;
    while (off < wire.size()) {
      std::uniform_int_distribution<std::size_t> cut(1, 37);
      const std::size_t n = std::min(cut(rng), wire.size() - off);
      dec.feed(wire.data() + off, n);
      off += n;
      for (;;) {
        auto r = dec.next();
        if (r.status != Status::kFrame) {
          ASSERT_EQ(r.status, Status::kNeedMore);
          break;
        }
        seen.push_back(std::move(r.payload));
      }
    }
    ASSERT_EQ(seen, payloads) << "trial " << trial;
  }
}

TEST(NetFrame, TruncatedFrameIsVisibleAtEof) {
  const std::string frame = encode_frame("stats");
  FrameDecoder dec;
  dec.feed(frame.data(), frame.size() - 2);  // stream ends mid-payload
  EXPECT_EQ(dec.next().status, Status::kNeedMore);
  // The caller sees EOF; mid_frame() is how it distinguishes a clean
  // close from a peer that died mid-request.
  EXPECT_TRUE(dec.mid_frame());
}

TEST(NetFrame, GarbageFirstByteIsRejectedImmediately) {
  FrameDecoder dec;
  dec.feed("GET / HTTP/1.1\r\n");  // a lost HTTP client
  auto r = dec.next();
  ASSERT_EQ(r.status, Status::kError);
  EXPECT_NE(r.error.find("magic"), std::string::npos) << r.error;
  EXPECT_TRUE(dec.failed());
}

TEST(NetFrame, UnsupportedVersionIsRejected) {
  const std::string frame = corrupt_header(1, '\x7F');
  FrameDecoder dec;
  dec.feed(frame);
  auto r = dec.next();
  ASSERT_EQ(r.status, Status::kError);
  EXPECT_NE(r.error.find("version"), std::string::npos) << r.error;
}

TEST(NetFrame, NonZeroReservedFlagsAreRejected) {
  const std::string frame = corrupt_header(2, '\x01');
  FrameDecoder dec;
  dec.feed(frame);
  auto r = dec.next();
  ASSERT_EQ(r.status, Status::kError);
  EXPECT_NE(r.error.find("flags"), std::string::npos) << r.error;
}

// A header claiming a 4 GiB payload must be rejected after 8 bytes, not
// buffered until memory runs out.
TEST(NetFrame, OversizedLengthPrefixIsRejectedFromHeaderAlone) {
  std::string header;
  header.push_back(static_cast<char>(kFrameMagic));
  header.push_back(static_cast<char>(kFrameVersion));
  header.append("\x00\x00", 2);                  // flags
  header.append("\xFF\xFF\xFF\xFF", 4);          // length = 4 GiB - 1
  FrameDecoder dec;
  dec.feed(header);
  auto r = dec.next();
  ASSERT_EQ(r.status, Status::kError);
  EXPECT_NE(r.error.find("exceeds the cap"), std::string::npos) << r.error;
  EXPECT_EQ(dec.buffered_bytes(), 0u);  // nothing retained
}

TEST(NetFrame, ZeroLengthFrameIsRejected) {
  std::string header;
  header.push_back(static_cast<char>(kFrameMagic));
  header.push_back(static_cast<char>(kFrameVersion));
  header.append(6, '\0');  // flags = 0, length = 0
  FrameDecoder dec;
  dec.feed(header);
  auto r = dec.next();
  ASSERT_EQ(r.status, Status::kError);
  EXPECT_NE(r.error.find("zero-length"), std::string::npos) << r.error;
}

TEST(NetFrame, EmbeddedNulInPayloadIsRejected) {
  // Hand-build the frame: the encoder refuses NULs, which is the point.
  const std::string payload = std::string("sta\0ts", 6);
  std::string frame;
  frame.push_back(static_cast<char>(kFrameMagic));
  frame.push_back(static_cast<char>(kFrameVersion));
  frame.append("\x00\x00", 2);
  frame.append("\x00\x00\x00\x06", 4);
  frame += payload;
  FrameDecoder dec;
  dec.feed(frame);
  auto r = dec.next();
  ASSERT_EQ(r.status, Status::kError);
  EXPECT_NE(r.error.find("NUL"), std::string::npos) << r.error;
}

// After the first violation the decoder is poisoned: no resync on a
// length-prefixed stream, even if valid-looking bytes follow.
TEST(NetFrame, DecoderIsPoisonedAfterFirstViolation) {
  FrameDecoder dec;
  dec.feed("junk");
  ASSERT_EQ(dec.next().status, Status::kError);
  dec.feed(encode_frame("stats"));  // ignored
  auto r = dec.next();
  EXPECT_EQ(r.status, Status::kError);
  EXPECT_EQ(dec.buffered_bytes(), 0u);
  EXPECT_FALSE(dec.mid_frame());
}

// Deterministic byte-mangling fuzz: flip one byte anywhere in a valid
// two-frame stream.  The decoder must always terminate with either the
// original frames, fewer frames plus kNeedMore, or a typed error —
// never a crash, hang, or bogus extra frame.
TEST(NetFrame, SingleByteCorruptionNeverProducesBogusFrames) {
  const std::string a = "rank top=3";
  const std::string b = "stats";
  const std::string wire = encode_frame(a) + encode_frame(b);
  for (std::size_t pos = 0; pos < wire.size(); ++pos) {
    for (const int delta : {1, 128, 255}) {
      std::string mangled = wire;
      mangled[pos] = static_cast<char>(
          (static_cast<unsigned char>(mangled[pos]) + delta) & 0xFF);
      if (mangled == wire) continue;
      FrameDecoder dec;
      dec.feed(mangled);
      int frames = 0;
      for (;;) {
        auto r = dec.next();
        if (r.status == Status::kFrame) {
          ++frames;
          ASSERT_LE(frames, 2);
          // Any surfaced payload must have a sane size (the corruption
          // may land in payload text, which framing cannot detect).
          ASSERT_LE(r.payload.size(), dec.max_payload());
          continue;
        }
        if (r.status == Status::kError) {
          EXPECT_FALSE(r.error.empty());
        }
        break;
      }
    }
  }
}

TEST(NetFrame, MaxPayloadCapIsPerDecoderInstance) {
  const std::string payload(100, 'y');
  const std::string frame = encode_frame(payload);
  FrameDecoder tight(32);
  tight.feed(frame);
  EXPECT_EQ(tight.next().status, Status::kError);
  FrameDecoder roomy(128);
  roomy.feed(frame);
  auto r = roomy.next();
  ASSERT_EQ(r.status, Status::kFrame);
  EXPECT_EQ(r.payload, payload);
}

}  // namespace
}  // namespace acic::net
