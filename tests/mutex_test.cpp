// Tests for the annotated lock layer (acic::Mutex / MutexLock /
// ReaderMutexLock / CondVar, common/mutex.hpp) — the only place raw std
// synchronisation primitives are allowed (tools/lint/acic_lint.py).
//
// The MutexTest suite is part of the TSan test filter: mutual exclusion
// and the reader/writer + condvar protocols are exactly what TSan
// verifies at runtime and the Clang thread-safety analysis verifies at
// compile time.
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "acic/common/mutex.hpp"

namespace acic {
namespace {

TEST(MutexTest, MutexLockGivesMutualExclusion) {
  Mutex mu;
  long counter = 0;  // protected by mu (locals cannot carry GUARDED_BY)
  constexpr int kThreads = 8;
  constexpr int kEach = 5000;

  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kEach; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (auto& t : pool) t.join();

  MutexLock lock(&mu);
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kEach);
}

TEST(MutexTest, TryLockRefusesWhileHeldAndSucceedsAfter) {
  Mutex mu;
  mu.lock();
  std::thread contender([&] { EXPECT_FALSE(mu.try_lock()); });
  contender.join();
  mu.unlock();
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(MutexTest, ReadersShareWritersExclude) {
  Mutex mu;
  int value = 0;  // protected by mu
  std::atomic<int> concurrent_readers{0};
  std::atomic<int> max_concurrent_readers{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        ReaderMutexLock lock(&mu);
        const int now = concurrent_readers.fetch_add(1) + 1;
        int seen = max_concurrent_readers.load();
        while (now > seen &&
               !max_concurrent_readers.compare_exchange_weak(seen, now)) {
        }
        EXPECT_GE(value, 0);  // writer only ever increments
        concurrent_readers.fetch_sub(1);
      }
    });
  }
  for (int i = 0; i < 2000; ++i) {
    MutexLock lock(&mu);
    // A writer holds the lock exclusively: no reader can be inside.
    EXPECT_EQ(concurrent_readers.load(), 0);
    ++value;
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  ReaderMutexLock lock(&mu);
  EXPECT_EQ(value, 2000);
}

TEST(MutexTest, CondVarWakesWaiterOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;  // protected by mu
  bool observed = false;

  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.wait(mu);
    observed = ready;
  });
  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
  EXPECT_TRUE(observed);
}

TEST(MutexTest, CondVarPredicateWaitHandlesSpuriousWakeups) {
  Mutex mu;
  CondVar cv;
  int stage = 0;  // protected by mu

  std::thread waiter([&] {
    MutexLock lock(&mu);
    cv.wait(mu, [&] { return stage == 2; });
    EXPECT_EQ(stage, 2);
  });
  for (int s = 1; s <= 2; ++s) {
    {
      MutexLock lock(&mu);
      stage = s;
    }
    // Notifying at stage 1 exercises the predicate re-check: the waiter
    // must go back to sleep instead of proceeding.
    cv.notify_all();
  }
  waiter.join();
}

}  // namespace
}  // namespace acic
