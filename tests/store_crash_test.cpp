// Crash-safety and multi-process tests for the persistent run store:
//
//  * FileLockTest / Crc32cTest / CrashpointTest — the durability
//    building blocks (advisory flock, record checksums, deterministic
//    crash injection);
//  * RunStoreRecovery — torn-tail vs interior-corruption policy, the
//    parse_u64 overflow regression, put() rollback on append failure;
//  * RunStoreSharing — two RunStore instances on one directory (the
//    in-process stand-in for two executors in two processes):
//    interleaved put/lookup/compact with no lost rows and no duplicate
//    headers (in the TSan filter);
//  * CrashTorture — fork a writer, kill it at every store write point
//    (before / torn / after), and assert recovery keeps every
//    acknowledged record, truncates at most one torn tail, quarantines
//    nothing valid, and warm-serves the survivors with zero new
//    simulations;
//  * ExecutorDegradation — store I/O failures demote the executor to
//    memo-only (exec.store.degraded=1) instead of failing runs.
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "acic/cloud/ioconfig.hpp"
#include "acic/common/crc32c.hpp"
#include "acic/common/filelock.hpp"
#include "acic/exec/crashpoint.hpp"
#include "acic/exec/executor.hpp"
#include "acic/exec/runkey.hpp"
#include "acic/exec/store.hpp"
#include "acic/io/runner.hpp"
#include "acic/io/workload.hpp"
#include "acic/obs/metrics.hpp"

namespace acic {
namespace {

namespace fsys = std::filesystem;

io::Workload crash_workload() {
  io::Workload w;
  w.name = "store-crash-test";
  w.num_processes = 8;
  w.num_io_processes = 8;
  w.interface = io::IoInterface::kMpiIo;
  w.iterations = 1;
  w.data_size = 1.0 * MiB;
  w.request_size = 256.0 * KiB;
  w.op = io::OpMix::kWrite;
  return w;
}

/// Distinct RunKeys: the i-th request differs by seed.
io::RunOptions opts_for(int i) {
  io::RunOptions o;
  o.seed = 1000 + static_cast<std::uint64_t>(i);
  return o;
}

exec::RunKey key_for(int i) {
  return exec::run_key(crash_workload(), cloud::IoConfig::baseline(),
                       opts_for(i));
}

io::RunResult result_for(int i) {
  io::RunResult r;
  r.total_time = 100.0 + i;
  r.cost = 1.0 + 0.25 * i;
  r.io_time = 10.0;
  r.num_instances = 3;
  r.fs_requests = 7 + static_cast<std::uint64_t>(i);
  r.fs_bytes = 1.0 * MiB;
  r.sim_events = 500;
  r.outcome = io::RunOutcome::kOk;
  return r;
}

struct TempDir {
  explicit TempDir(const std::string& tag) {
    static std::atomic<int> counter{0};
    path = fsys::temp_directory_path() /
           ("acic_store_crash_" + tag + "_" + std::to_string(::getpid()) +
            "_" + std::to_string(counter.fetch_add(1)));
    fsys::remove_all(path);
  }
  ~TempDir() {
    std::error_code ec;
    fsys::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
  fsys::path path;
};

std::string read_whole(const fsys::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Executor over a counting fake simulator, for warm-rerun assertions.
struct FakeEngine {
  std::atomic<int> executions{0};
  exec::Executor executor;

  explicit FakeEngine(std::string store_dir)
      : executor(make_options(this, std::move(store_dir))) {}

  static exec::ExecutorOptions make_options(FakeEngine* self,
                                            std::string store_dir) {
    exec::ExecutorOptions o;
    o.store_dir = std::move(store_dir);
    o.run_fn = [self](const exec::RunRequest& r) {
      self->executions.fetch_add(1);
      io::RunResult result;
      result.total_time = 100.0 + static_cast<double>(r.options.seed % 1000);
      result.cost = 2.0;
      result.io_time = 1.0;
      result.num_instances = 2;
      result.outcome = io::RunOutcome::kOk;
      return result;
    };
    return o;
  }
};

// --------------------------------------------------------------------
// Building blocks
// --------------------------------------------------------------------

TEST(Crc32cTest, KnownVectors) {
  EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(crc32c(""), 0x00000000u);
  EXPECT_NE(crc32c("abc"), crc32c("abd"));
}

TEST(FileLockTest, InvalidPathIsHarmless) {
  FileLock lock("/nonexistent_acic_dir/never/lock");
  EXPECT_FALSE(lock.valid());
  EXPECT_FALSE(lock.lock_shared());
  EXPECT_FALSE(lock.lock_exclusive());
  EXPECT_FALSE(lock.unlock());
}

TEST(FileLockTest, SharedAndExclusiveRoundTrip) {
  TempDir dir("flock_roundtrip");
  fsys::create_directories(dir.path);
  FileLock lock((dir.path / "lock").string());
  ASSERT_TRUE(lock.valid());
  EXPECT_TRUE(lock.lock_shared());
  EXPECT_TRUE(lock.unlock());
  EXPECT_TRUE(lock.lock_exclusive());
  // flock converts in place: downgrade without an explicit unlock.
  EXPECT_TRUE(lock.lock_shared());
  EXPECT_TRUE(lock.unlock());
}

TEST(FileLockTest, SharedHoldersCoexist) {
  TempDir dir("flock_shared");
  fsys::create_directories(dir.path);
  FileLock a((dir.path / "lock").string());
  FileLock b((dir.path / "lock").string());
  ASSERT_TRUE(a.lock_shared());
  // A second shared holder must not block (a blocking call returning at
  // all proves it).
  EXPECT_TRUE(b.lock_shared());
  EXPECT_TRUE(a.unlock());
  EXPECT_TRUE(b.unlock());
}

TEST(FileLockTest, ExclusiveExcludesSecondHolder) {
  TempDir dir("flock_excl");
  fsys::create_directories(dir.path);
  FileLock a((dir.path / "lock").string());
  FileLock b((dir.path / "lock").string());
  ASSERT_TRUE(a.lock_exclusive());

  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    b.lock_exclusive();
    acquired.store(true);
    b.unlock();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(acquired.load());  // still blocked behind the exclusive
  a.unlock();
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST(CrashpointTest, CountsDownPerSiteAndFires) {
  exec::Crashpoints::arm("unit.site", 3, exec::CrashMode::kTornWrite);
  EXPECT_FALSE(exec::Crashpoints::on_write("unit.site").has_value());
  EXPECT_FALSE(exec::Crashpoints::on_write("other.site").has_value());
  EXPECT_FALSE(exec::Crashpoints::on_write("unit.site").has_value());
  const auto fired = exec::Crashpoints::on_write("unit.site");
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(*fired, exec::CrashMode::kTornWrite);
  // Consumed: the site stays quiet afterwards.
  EXPECT_FALSE(exec::Crashpoints::on_write("unit.site").has_value());
  exec::Crashpoints::disarm();
}

TEST(CrashpointTest, ArmsFromEnvironmentSpec) {
  ::setenv("ACIC_CRASHPOINT", "env.site:2:after", 1);
  exec::Crashpoints::arm_from_env();
  ::unsetenv("ACIC_CRASHPOINT");
  EXPECT_FALSE(exec::Crashpoints::on_write("env.site").has_value());
  const auto fired = exec::Crashpoints::on_write("env.site");
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(*fired, exec::CrashMode::kAfterWrite);
  exec::Crashpoints::disarm();

  // Garbage specs refuse to arm.
  ::setenv("ACIC_CRASHPOINT", "no-count", 1);
  exec::Crashpoints::arm_from_env();
  ::unsetenv("ACIC_CRASHPOINT");
  EXPECT_FALSE(exec::Crashpoints::on_write("no-count").has_value());
}

// --------------------------------------------------------------------
// Recovery policy: torn tails vs interior corruption
// --------------------------------------------------------------------

TEST(RunStoreRecovery, TrailingPartialRecordIsTruncatedSilently) {
  TempDir dir("torn_partial");
  {
    exec::RunStore store(dir.str());
    for (int i = 0; i < 3; ++i) store.put(key_for(i), result_for(i));
  }
  {
    // A crash mid-append leaves an unterminated prefix of a record.
    std::ofstream out(dir.path / "runs.csv",
                      std::ios::app | std::ios::binary);
    out << "0123456789abcdef0123456789abcdef,42.0,1.0";  // no newline
  }
  exec::RunStore store(dir.str());
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.torn_tails(), 1u);
  EXPECT_EQ(store.quarantined(), 0u);  // torn != corrupt: no quarantine
  EXPECT_FALSE(fsys::exists(dir.path / "quarantine.csv"));
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(store.lookup(key_for(i)));

  // The truncation repaired the file: the next open is clean.
  exec::RunStore clean(dir.str());
  EXPECT_EQ(clean.torn_tails(), 0u);
  EXPECT_EQ(clean.size(), 3u);
}

TEST(RunStoreRecovery, BadCrcTerminatedFinalRecordIsQuarantined) {
  TempDir dir("crc_final");
  {
    exec::RunStore store(dir.str());
    for (int i = 0; i < 3; ++i) store.put(key_for(i), result_for(i));
  }
  {
    // A complete, newline-terminated line whose CRC does not match.  A
    // torn single-write append can never persist the trailing newline
    // without the payload in front of it, so even at the tail this is
    // corruption: quarantined, not silently truncated.
    std::string line = exec::RunStore::frame(
        std::string(32, 'c') + ",5,5,1,1,1,1,1,ok,0,0,0,0,0");
    line[0] = line[0] == 'c' ? 'd' : 'c';  // break the checksum
    std::ofstream out(dir.path / "runs.csv",
                      std::ios::app | std::ios::binary);
    out << line << "\n";
  }
  exec::RunStore store(dir.str());
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.torn_tails(), 0u);
  EXPECT_EQ(store.quarantined(), 1u);
  EXPECT_TRUE(fsys::exists(dir.path / "quarantine.csv"));

  exec::RunStore clean(dir.str());
  EXPECT_EQ(clean.quarantined(), 0u);
  EXPECT_EQ(clean.size(), 3u);
}

TEST(RunStoreRecovery, FailedQuarantineWriteIsCountedAsDropped) {
  TempDir dir("quarantine_drop");
  {
    exec::RunStore store(dir.str());
    for (int i = 0; i < 2; ++i) store.put(key_for(i), result_for(i));
  }
  {
    // One corrupt record to sideline...
    std::ofstream out(dir.path / "runs.csv",
                      std::ios::app | std::ios::binary);
    out << exec::RunStore::frame("deadbeef,not_a_row") << "\n";
  }
  // ...but quarantine.csv cannot be opened for append (it is a
  // directory).  Recovery must still scrub the live file, and must
  // report the forensic copy as dropped, not sidelined.
  fsys::create_directories(dir.path / "quarantine.csv");
  exec::RunStore store(dir.str());
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.quarantined(), 0u);
  EXPECT_EQ(store.quarantine_dropped(), 1u);

  exec::RunStore clean(dir.str());
  EXPECT_EQ(clean.quarantine_dropped(), 0u);
  EXPECT_EQ(clean.size(), 2u);
}

TEST(RunStoreRecovery, BadCrcInteriorRecordIsQuarantined) {
  TempDir dir("interior");
  {
    exec::RunStore store(dir.str());
    for (int i = 0; i < 3; ++i) store.put(key_for(i), result_for(i));
  }
  // Bit-flip an interior record (followed by a valid one, so it cannot
  // be mistaken for a torn tail).
  const std::string content = read_whole(dir.path / "runs.csv");
  std::vector<std::string> lines;
  std::istringstream in(content);
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u);  // header + 3 records
  lines[2][40] = lines[2][40] == '1' ? '2' : '1';  // corrupt record #2
  {
    std::ofstream out(dir.path / "runs.csv",
                      std::ios::trunc | std::ios::binary);
    for (const auto& line : lines) out << line << "\n";
  }
  exec::RunStore store(dir.str());
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.quarantined(), 1u);
  EXPECT_EQ(store.torn_tails(), 0u);
  EXPECT_TRUE(fsys::exists(dir.path / "quarantine.csv"));

  // The rewrite repaired the live file: the next open is clean.
  exec::RunStore clean(dir.str());
  EXPECT_EQ(clean.quarantined(), 0u);
  EXPECT_EQ(clean.size(), 2u);
}

TEST(RunStoreRecovery, TornHeaderRecoversFresh) {
  TempDir dir("torn_header");
  fsys::create_directories(dir.path);
  {
    // A crash while the very first process initialized the header.
    std::ofstream out(dir.path / "runs.csv", std::ios::binary);
    out << std::string(exec::RunStore::kVersionTag) + ",total_ti";
  }
  exec::RunStore store(dir.str());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.torn_tails(), 1u);
  EXPECT_FALSE(fsys::exists(dir.path / "runs.csv.incompatible"));
  store.put(key_for(0), result_for(0));

  exec::RunStore reopened(dir.str());
  EXPECT_EQ(reopened.size(), 1u);
  EXPECT_EQ(reopened.torn_tails(), 0u);
}

TEST(RunStoreRecovery, ForeignUnterminatedFileIsSidelined) {
  TempDir dir("foreign");
  fsys::create_directories(dir.path);
  {
    std::ofstream out(dir.path / "runs.csv", std::ios::binary);
    out << "not_anything_we_ever_wrote";  // no newline, not our header
  }
  exec::RunStore store(dir.str());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.torn_tails(), 0u);
  EXPECT_TRUE(fsys::exists(dir.path / "runs.csv.incompatible"));
}

TEST(RunStoreRecovery, OverflowingCounterCellIsQuarantined) {
  // Regression for parse_u64 silent wrap: a 21-digit counter used to be
  // accepted as a small wrapped value.  With a valid CRC frame the row
  // is structurally intact, so only the overflow check can reject it.
  TempDir dir("overflow");
  {
    exec::RunStore store(dir.str());
    store.put(key_for(0), result_for(0));
  }
  {
    std::ofstream out(dir.path / "runs.csv",
                      std::ios::app | std::ios::binary);
    out << exec::RunStore::frame(std::string(32, 'a') + ",1,1,1,1," +
                                 std::string(21, '9') +
                                 ",1,1,ok,0,0,0,0,0,0,0,0,0")
        << "\n";
    // UINT64_MAX itself (20 digits) must still round-trip.
    out << exec::RunStore::frame(std::string(32, 'b') +
                                 ",1,1,1,1,18446744073709551615,1,1,ok,"
                                 "0,0,0,0,0,0,0,0,0")
        << "\n";
  }
  exec::RunStore store(dir.str());
  EXPECT_EQ(store.quarantined(), 1u);
  EXPECT_EQ(store.size(), 2u);
  const auto max_row =
      store.lookup(*exec::RunKey::from_hex(std::string(32, 'b')));
  ASSERT_TRUE(max_row.has_value());
  EXPECT_EQ(max_row->fs_requests, UINT64_MAX);
}

TEST(RunStoreRecovery, PutRollsBackMemoryWhenAppendFails) {
  TempDir dir("rollback");
  exec::RunStore store(dir.str());
  store.put(key_for(0), result_for(0));
  EXPECT_EQ(store.size(), 1u);

  // Yank the directory out from under the store: the next append must
  // fail, and the row must not survive in memory — a later compact()
  // could otherwise resurrect a record that was never acknowledged.
  fsys::remove_all(dir.path);
  EXPECT_THROW(store.put(key_for(1), result_for(1)), Error);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_FALSE(store.lookup(key_for(1)).has_value());
  EXPECT_THROW(store.compact(), Error);
}

// --------------------------------------------------------------------
// Two instances, one directory (the in-process multi-process model) —
// in the TSan filter.
// --------------------------------------------------------------------

TEST(RunStoreSharing, WritersSeeEachOtherThroughReplay) {
  TempDir dir("sharing");
  exec::RunStore a(dir.str());
  exec::RunStore b(dir.str());

  a.put(key_for(0), result_for(0));
  const auto b_sees = b.lookup(key_for(0));  // replay on miss
  ASSERT_TRUE(b_sees.has_value());
  EXPECT_EQ(b_sees->total_time, result_for(0).total_time);
  EXPECT_GE(b.replayed(), 1u);

  b.put(key_for(1), result_for(1));
  ASSERT_TRUE(a.lookup(key_for(1)).has_value());
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(b.size(), 2u);

  // Exactly one header, no matter how many instances appended.
  const std::string content = read_whole(dir.path / "runs.csv");
  std::size_t headers = 0;
  std::istringstream in(content);
  for (std::string line; std::getline(in, line);) {
    if (line.rfind(exec::RunStore::kVersionTag, 0) == 0) ++headers;
  }
  EXPECT_EQ(headers, 1u);

  exec::RunStore fresh(dir.str());
  EXPECT_EQ(fresh.size(), 2u);
  EXPECT_EQ(fresh.quarantined(), 0u);
}

TEST(RunStoreSharing, CompactionMergesAndKeepsOtherWritersRows) {
  TempDir dir("compact_share");
  exec::RunStore a(dir.str());
  exec::RunStore b(dir.str());
  a.put(key_for(0), result_for(0));
  b.put(key_for(1), result_for(1));

  // A compacts without having replayed B's row: the exclusive-locked
  // merge must pick it up rather than drop it.
  a.compact();
  EXPECT_EQ(a.size(), 2u);
  EXPECT_GE(a.compactions(), 1u);
  EXPECT_FALSE(fsys::exists(dir.path / "runs.csv.tmp"));

  // B appends after the rename replaced the inode; A's replay detects
  // the replacement and reloads whole.
  b.put(key_for(2), result_for(2));
  ASSERT_TRUE(a.lookup(key_for(2)).has_value());

  exec::RunStore fresh(dir.str());
  EXPECT_EQ(fresh.size(), 3u);
  EXPECT_EQ(fresh.quarantined(), 0u);
  EXPECT_EQ(fresh.torn_tails(), 0u);
}

TEST(RunStoreSharing, ConcurrentWritersLoseNothing) {
  TempDir dir("concurrent");
  exec::RunStore a(dir.str());
  exec::RunStore b(dir.str());
  constexpr int kEach = 16;

  std::thread writer_a([&] {
    for (int i = 0; i < kEach; ++i) a.put(key_for(i), result_for(i));
  });
  std::thread writer_b([&] {
    for (int i = kEach; i < 2 * kEach; ++i) {
      b.put(key_for(i), result_for(i));
    }
  });
  writer_a.join();
  writer_b.join();

  for (int i = 0; i < 2 * kEach; ++i) {
    EXPECT_TRUE(a.lookup(key_for(i)).has_value()) << "key " << i;
    EXPECT_TRUE(b.lookup(key_for(i)).has_value()) << "key " << i;
  }
  exec::RunStore fresh(dir.str());
  EXPECT_EQ(fresh.size(), static_cast<std::size_t>(2 * kEach));
  EXPECT_EQ(fresh.quarantined(), 0u);
  EXPECT_EQ(fresh.torn_tails(), 0u);
}

// Regression: the stats accessors (quarantined(), replayed(),
// compactions(), ...) used to read their counters without taking the
// store mutex, racing with replay/compaction on another thread.  They
// now lock; this test makes TSan (RunStoreSharing.* is in the tsan
// filter) prove it by polling them while two instances write, replay,
// and compact.
TEST(RunStoreSharing, StatsAccessorsAreSafeDuringConcurrentWrites) {
  TempDir dir("stats_race");
  exec::RunStore a(dir.str());
  exec::RunStore b(dir.str());
  constexpr int kEach = 12;

  std::atomic<bool> done{false};
  std::thread reader([&] {
    std::size_t sink = 0;
    while (!done.load(std::memory_order_relaxed)) {
      sink += a.quarantined() + a.quarantine_dropped() + a.torn_tails() +
              a.replayed() + a.compactions() + b.replayed() +
              b.compactions();
    }
    // The counters only grow, so the final poll is an upper bound of
    // any earlier one (keeps `sink` observable, not optimised away).
    EXPECT_GE(a.replayed() + b.replayed() + sink, sink);
  });

  std::thread writer_a([&] {
    for (int i = 0; i < kEach; ++i) a.put(key_for(i), result_for(i));
    a.compact();
  });
  std::thread writer_b([&] {
    for (int i = kEach; i < 2 * kEach; ++i) {
      b.put(key_for(i), result_for(i));
      (void)b.lookup(key_for(0));  // force replay of A's appends
    }
  });
  writer_a.join();
  writer_b.join();
  done.store(true, std::memory_order_relaxed);
  reader.join();

  exec::RunStore fresh(dir.str());
  EXPECT_EQ(fresh.size(), static_cast<std::size_t>(2 * kEach));
  EXPECT_EQ(fresh.quarantined(), 0u);
}

// --------------------------------------------------------------------
// Crash torture: kill a writer at every write point
// --------------------------------------------------------------------

/// Forks `child`, expects it to die via Crashpoints::die() (exit 2).
void run_crashing_child(const std::function<void()>& child) {
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // In the child: no gtest assertions, no exceptions escaping —
    // just do the work and let the armed crashpoint kill us.
    try {
      child();
    } catch (...) {
      ::_exit(99);  // died of the wrong cause
    }
    ::_exit(98);  // survived: the crashpoint never fired
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 2)
      << "child did not die at the crashpoint (98=survived, 99=threw)";
}

TEST(CrashTorture, KillAtEveryAppendWritePoint) {
  constexpr int kRows = 4;
  const exec::CrashMode kModes[] = {exec::CrashMode::kBeforeWrite,
                                    exec::CrashMode::kTornWrite,
                                    exec::CrashMode::kAfterWrite};
  for (const auto mode : kModes) {
    for (int n = 1; n <= kRows; ++n) {
      TempDir dir("torture_append");
      run_crashing_child([&] {
        exec::Crashpoints::arm("store.append", static_cast<std::size_t>(n),
                               mode);
        exec::RunStore store(dir.str());
        for (int i = 0; i < kRows; ++i) store.put(key_for(i), result_for(i));
      });

      // Recovery: every acknowledged record (the n-1 puts that returned)
      // survives; a kAfterWrite crash may leave one extra complete,
      // never-acknowledged record, which recovery is free to keep; at
      // most one torn tail is truncated; nothing valid is quarantined.
      exec::RunStore store(dir.str());
      const auto expected = static_cast<std::size_t>(
          mode == exec::CrashMode::kAfterWrite ? n : n - 1);
      EXPECT_EQ(store.size(), expected)
          << "mode " << static_cast<int>(mode) << " n " << n;
      EXPECT_EQ(store.quarantined(), 0u);
      EXPECT_EQ(store.torn_tails(),
                mode == exec::CrashMode::kTornWrite ? 1u : 0u);
      for (std::size_t i = 0; i < expected; ++i) {
        const auto hit = store.lookup(key_for(static_cast<int>(i)));
        ASSERT_TRUE(hit.has_value());
        EXPECT_EQ(hit->total_time, result_for(static_cast<int>(i)).total_time);
      }

      // A warm rerun over the surviving rows executes zero simulations.
      FakeEngine engine(dir.str());
      for (std::size_t i = 0; i < expected; ++i) {
        exec::RunInfo info;
        engine.executor.run(
            exec::RunRequest{crash_workload(), cloud::IoConfig::baseline(),
                             opts_for(static_cast<int>(i))},
            &info);
        EXPECT_EQ(info.source, exec::RunSource::kStore);
      }
      EXPECT_EQ(engine.executions.load(), 0);
    }
  }
}

TEST(CrashTorture, KillDuringCompactionKeepsTheOldFileWhole) {
  struct Point {
    const char* site;
    exec::CrashMode mode;
  };
  const Point kPoints[] = {
      {"store.compact", exec::CrashMode::kBeforeWrite},
      {"store.compact", exec::CrashMode::kTornWrite},
      {"store.compact", exec::CrashMode::kAfterWrite},
      {"store.compact.rename", exec::CrashMode::kBeforeWrite},
  };
  for (const auto& point : kPoints) {
    TempDir dir("torture_compact");
    {
      exec::RunStore seed(dir.str());
      for (int i = 0; i < 4; ++i) seed.put(key_for(i), result_for(i));
    }
    run_crashing_child([&] {
      exec::Crashpoints::arm(point.site, 1, point.mode);
      exec::RunStore store(dir.str());
      store.compact();
    });

    // The staging file is the only casualty: the live runs.csv is the
    // old complete file, every record intact.
    exec::RunStore store(dir.str());
    EXPECT_EQ(store.size(), 4u) << point.site;
    EXPECT_EQ(store.quarantined(), 0u);
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(store.lookup(key_for(i)).has_value());
    }
    // A later compaction consumes any stale tmp left by the crash.
    store.compact();
    EXPECT_FALSE(fsys::exists(dir.path / "runs.csv.tmp"));
    EXPECT_EQ(store.size(), 4u);
  }
}

TEST(CrashTorture, KillDuringFreshInitLeavesARecoverableStore) {
  TempDir dir("torture_init");
  run_crashing_child([&] {
    // The header is written through the same atomic rewrite path.
    exec::Crashpoints::arm("store.compact", 1, exec::CrashMode::kTornWrite);
    exec::RunStore store(dir.str());
  });
  exec::RunStore store(dir.str());
  EXPECT_EQ(store.size(), 0u);
  store.put(key_for(0), result_for(0));
  exec::RunStore reopened(dir.str());
  EXPECT_EQ(reopened.size(), 1u);
}

// --------------------------------------------------------------------
// Executor degradation: store failures never fail runs
// --------------------------------------------------------------------

TEST(ExecutorDegradation, UnopenableStoreDirDegradesToMemoOnly) {
  TempDir dir("degrade_open");
  fsys::create_directories(dir.path);
  {
    std::ofstream out(dir.path / "plain_file");
    out << "x";
  }
  // A store directory nested under a regular file can never be created.
  FakeEngine engine((dir.path / "plain_file" / "store").string());
  EXPECT_FALSE(engine.executor.has_store());
  EXPECT_TRUE(engine.executor.store_degraded());
  EXPECT_EQ(
      obs::MetricsRegistry::global().gauge("exec.store.degraded").value(),
      1.0);

  // Memo-only service: runs execute, repeats hit the memo.
  const exec::RunRequest req{crash_workload(), cloud::IoConfig::baseline(),
                             opts_for(0)};
  engine.executor.run(req);
  exec::RunInfo info;
  engine.executor.run(req, &info);
  EXPECT_EQ(engine.executions.load(), 1);
  EXPECT_EQ(info.source, exec::RunSource::kMemo);
}

TEST(ExecutorDegradation, AppendFailureMidFlightDegrades) {
  TempDir dir("degrade_append");
  FakeEngine engine(dir.str());
  ASSERT_TRUE(engine.executor.has_store());

  const exec::RunRequest first{crash_workload(), cloud::IoConfig::baseline(),
                               opts_for(0)};
  engine.executor.run(first);
  EXPECT_FALSE(engine.executor.store_degraded());

  // Yank the store directory mid-flight: the next put must degrade the
  // executor, not throw out of run().
  fsys::remove_all(dir.path);
  const exec::RunRequest second{crash_workload(), cloud::IoConfig::baseline(),
                                opts_for(1)};
  const auto result = engine.executor.run(second);
  EXPECT_EQ(result.outcome, io::RunOutcome::kOk);
  EXPECT_EQ(engine.executions.load(), 2);
  EXPECT_TRUE(engine.executor.store_degraded());
  EXPECT_FALSE(engine.executor.has_store());

  // Still serving from the memo tier.
  exec::RunInfo info;
  engine.executor.run(second, &info);
  EXPECT_EQ(info.source, exec::RunSource::kMemo);
  EXPECT_EQ(engine.executions.load(), 2);
}

TEST(ExecutorDegradation, ConcurrentPutFailuresDegradeSafely) {
  // Regression: run() pins the store and calls put() outside the
  // executor lock, so the first worker to fail must not destroy the
  // RunStore out from under peers still inside theirs — the shared_ptr
  // pin keeps it alive until every in-flight call returns.  Under
  // TSan/ASan this test is what catches a use-after-free regression.
  TempDir dir("degrade_race");
  FakeEngine engine(dir.str());
  ASSERT_TRUE(engine.executor.has_store());

  // Yank the directory so every concurrent put fails at once — the
  // exact many-workers-hit-ENOSPC shape degradation exists for.
  fsys::remove_all(dir.path);
  constexpr int kRuns = 16;
  std::vector<exec::RunRequest> requests;
  requests.reserve(kRuns);
  for (int i = 0; i < kRuns; ++i) {
    requests.push_back(exec::RunRequest{
        crash_workload(), cloud::IoConfig::baseline(), opts_for(i)});
  }
  const auto results = engine.executor.run_batch(requests, 8u);
  ASSERT_EQ(results.size(), static_cast<std::size_t>(kRuns));
  for (const auto& r : results) {
    EXPECT_EQ(r.outcome, io::RunOutcome::kOk);
  }
  EXPECT_EQ(engine.executions.load(), kRuns);
  EXPECT_TRUE(engine.executor.store_degraded());
  EXPECT_FALSE(engine.executor.has_store());

  // Memo tier still serves the whole batch warm.
  exec::RunInfo info;
  engine.executor.run(requests[0], &info);
  EXPECT_EQ(info.source, exec::RunSource::kMemo);
  EXPECT_EQ(engine.executions.load(), kRuns);
}

TEST(ExecutorDegradation, ReadOnlyStoreDirDegradesToMemoOnly) {
  if (::geteuid() == 0) {
    GTEST_SKIP() << "root ignores directory permissions";
  }
  TempDir dir("degrade_ro");
  fsys::create_directories(dir.path);
  fsys::permissions(dir.path, fsys::perms::owner_read | fsys::perms::owner_exec,
                    fsys::perm_options::replace);
  FakeEngine engine(dir.str());
  fsys::permissions(dir.path, fsys::perms::owner_all,
                    fsys::perm_options::replace);
  EXPECT_FALSE(engine.executor.has_store());
  EXPECT_TRUE(engine.executor.store_degraded());
  const exec::RunRequest req{crash_workload(), cloud::IoConfig::baseline(),
                             opts_for(5)};
  engine.executor.run(req);
  EXPECT_EQ(engine.executions.load(), 1);
}

}  // namespace
}  // namespace acic
