// Determinism regression: the paper's methodology (and every cached
// training database) assumes that an identical (config, workload, seed)
// triple maps to an identical simulated outcome.  These tests run the
// same simulation twice and demand *bit-identical* results — EXPECT_EQ on
// doubles, not EXPECT_NEAR — so any nondeterminism sneaking into the
// event kernel, the flow solver or the RNG plumbing fails loudly.
#include <gtest/gtest.h>

#include "acic/cloud/ioconfig.hpp"
#include "acic/io/runner.hpp"
#include "acic/io/workload.hpp"

namespace acic::io {
namespace {

Workload probe_workload() {
  Workload w;
  w.name = "determinism-probe";
  w.num_processes = 32;
  w.num_io_processes = 16;
  w.interface = IoInterface::kMpiIo;
  w.iterations = 3;
  w.data_size = 8.0 * MiB;
  w.request_size = 1.0 * MiB;
  w.op = OpMix::kWrite;
  w.collective = true;
  w.file_shared = true;
  return w;
}

cloud::IoConfig nfs_config() {
  cloud::IoConfig c;
  c.fs = cloud::FileSystemType::kNfs;
  c.device = storage::DeviceType::kEbs;
  c.io_servers = 1;
  c.placement = cloud::Placement::kDedicated;
  c.stripe_size = 4.0 * MiB;
  return c;
}

cloud::IoConfig pvfs_config() {
  cloud::IoConfig c;
  c.fs = cloud::FileSystemType::kPvfs2;
  c.device = storage::DeviceType::kEphemeral;
  c.io_servers = 4;
  c.placement = cloud::Placement::kPartTime;
  c.stripe_size = 1.0 * MiB;
  return c;
}

void expect_bit_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.total_time, b.total_time);  // bit-identical, not NEAR
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.io_time, b.io_time);
  EXPECT_EQ(a.num_instances, b.num_instances);
  EXPECT_EQ(a.fs_requests, b.fs_requests);
  EXPECT_EQ(a.fs_bytes, b.fs_bytes);
  EXPECT_EQ(a.sim_events, b.sim_events);
  // The fault-reaction statistics must replay too.
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.failed_requests, b.failed_requests);
  EXPECT_EQ(a.stalled_time, b.stalled_time);
  EXPECT_EQ(a.fault_events_cancelled, b.fault_events_cancelled);
  // ...and the preemption/checkpoint accounting.
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.lost_sim_time, b.lost_sim_time);
  EXPECT_EQ(a.checkpoint_bytes, b.checkpoint_bytes);
}

TEST(DeterminismTest, IdenticalRunsAreBitIdenticalOnNfs) {
  RunOptions options;
  options.seed = 7;
  options.jitter_sigma = 0.06;  // jitter on: the RNG must replay exactly
  const RunResult first = run_workload(probe_workload(), nfs_config(), options);
  const RunResult second =
      run_workload(probe_workload(), nfs_config(), options);
  expect_bit_identical(first, second);
  EXPECT_GT(first.sim_events, 0u);
  EXPECT_GT(first.total_time, 0.0);
}

TEST(DeterminismTest, IdenticalRunsAreBitIdenticalOnPvfs2) {
  RunOptions options;
  options.seed = 1234;
  options.jitter_sigma = 0.06;
  options.failures_per_hour = 2.0;  // fault injection must replay too
  const RunResult first =
      run_workload(probe_workload(), pvfs_config(), options);
  const RunResult second =
      run_workload(probe_workload(), pvfs_config(), options);
  expect_bit_identical(first, second);
}

// Seeded chaos — the full fault vocabulary plus client retries — must
// replay bit-for-bit: the resilient training sweeps record these runs in
// the shared database, so any nondeterminism would corrupt it silently.
TEST(DeterminismTest, SeededChaosRunsReplayBitIdentical) {
  RunOptions options;
  options.seed = 77;
  options.jitter_sigma = 0.06;
  options.fault_model.outages_per_hour = 30.0;
  options.fault_model.brownouts_per_hour = 20.0;
  options.fault_model.stragglers_per_hour = 10.0;
  options.fault_model.correlated_outage_probability = 0.1;
  options.fault_model.permanent_loss_probability = 0.05;
  options.tuning.retry.enabled = true;
  options.tuning.retry.request_timeout = 5.0;
  options.tuning.retry.max_attempts = 3;
  const RunResult first =
      run_workload(probe_workload(), pvfs_config(), options);
  const RunResult second =
      run_workload(probe_workload(), pvfs_config(), options);
  expect_bit_identical(first, second);
  // Non-vacuity: the 24 h fault schedule extends far past the job, so
  // cancel_pending() must have had events to cancel.
  EXPECT_GT(first.fault_events_cancelled, 0u);
}

// Preemption chaos with checkpoint/restart armed: reclamation schedule,
// urgent dumps, replacement-server delays and work replay all come from
// seeded streams, so a preempted run must replay bit-for-bit too — the
// executor caches these graded outcomes.
TEST(DeterminismTest, SeededPreemptionRunsReplayBitIdentical) {
  // A longer job than the probe's: seed 9's reclamations land mid-run
  // and recover (twice), so both replays exercise the notice dump, the
  // seeded replacement delay and the lost-work replay.
  Workload w = probe_workload();
  w.data_size = 256.0 * MiB;
  RunOptions options;
  options.seed = 9;
  options.jitter_sigma = 0.06;
  options.fault_model.preemptions_per_hour = 120.0;
  options.fault_model.preemption_notice = 5.0;
  options.checkpoint.enabled = true;
  options.checkpoint.interval = 10.0;
  options.checkpoint.bytes = 4.0 * MiB;
  options.checkpoint.replacement_delay_min = 2.0;
  options.checkpoint.replacement_delay_max = 8.0;
  options.watchdog_sim_time = 4.0 * kHour;
  options.spot_pricing.emplace();
  const RunResult first = run_workload(w, pvfs_config(), options);
  const RunResult second = run_workload(w, pvfs_config(), options);
  expect_bit_identical(first, second);
  // Non-vacuity: this seed's schedule must actually preempt the job.
  EXPECT_GT(first.preemptions, 0u);
  EXPECT_GT(first.restarts, 0u);
}

TEST(DeterminismTest, SeedChangesTheOutcome) {
  // Sanity check that the bit-identical assertions above are not passing
  // vacuously (e.g. jitter silently disabled).
  RunOptions a, b;
  a.seed = 1;
  b.seed = 2;
  const RunResult ra = run_workload(probe_workload(), pvfs_config(), a);
  const RunResult rb = run_workload(probe_workload(), pvfs_config(), b);
  EXPECT_NE(ra.total_time, rb.total_time);
}

}  // namespace
}  // namespace acic::io
