// Tests for the four application models (Table 3 characteristics and
// paper-published I/O volumes) and the IOR builder.
#include <gtest/gtest.h>

#include "acic/apps/apps.hpp"
#include "acic/common/error.hpp"
#include "acic/io/runner.hpp"
#include "acic/ior/ior.hpp"

namespace acic {
namespace {

TEST(Apps, BtioMatchesPaperFacts) {
  const auto w = apps::btio(64);
  EXPECT_EQ(w.name, "BTIO");
  EXPECT_EQ(w.interface, io::IoInterface::kMpiIo);
  EXPECT_EQ(w.op, io::OpMix::kWrite);
  EXPECT_TRUE(w.collective);
  EXPECT_TRUE(w.file_shared);
  EXPECT_EQ(w.iterations, 40);  // 200 steps, dump every 5
  // ~6.4 GB total output, independent of scale.
  EXPECT_NEAR(w.total_bytes(), 6.4 * GiB, 1.0 * MiB);
  EXPECT_NEAR(apps::btio(256).total_bytes(), 6.4 * GiB, 1.0 * MiB);
  EXPECT_GT(w.compute_per_iteration, 0.0);  // CPU-heavy
}

TEST(Apps, FlashioMatchesPaperFacts) {
  const auto w = apps::flashio(256);
  EXPECT_EQ(w.interface, io::IoInterface::kHdf5);
  EXPECT_EQ(w.op, io::OpMix::kWrite);
  EXPECT_EQ(w.iterations, 1);
  EXPECT_NEAR(w.total_bytes(), 15.0 * GiB, 1.0 * MiB);
  // I/O kernel: compute is negligible next to BTIO's.
  EXPECT_LT(w.compute_per_iteration * w.iterations,
            apps::btio(256).compute_per_iteration * 40);
}

TEST(Apps, MpiblastMatchesPaperFacts) {
  const auto w = apps::mpiblast(32);
  EXPECT_EQ(w.interface, io::IoInterface::kPosix);
  EXPECT_EQ(w.op, io::OpMix::kRead);
  EXPECT_FALSE(w.file_shared);   // per-segment files
  EXPECT_FALSE(w.collective);
  EXPECT_NEAR(w.total_bytes(), 84.0 * GiB, 1.0 * MiB);
}

TEST(Apps, Madbench2MatchesPaperFacts) {
  const auto w = apps::madbench2(64);
  EXPECT_EQ(w.op, io::OpMix::kReadWrite);
  EXPECT_EQ(w.interface, io::IoInterface::kMpiIo);
  // 32 GB matrix accessed four times -> 2 write + 2 read passes.
  EXPECT_NEAR(w.total_bytes(), 64.0 * GiB, 1.0 * MiB);
}

TEST(Apps, EvaluationSuiteHasNineRuns) {
  const auto suite = apps::evaluation_suite();
  ASSERT_EQ(suite.size(), 9u);
  EXPECT_EQ(suite[0].app, "BTIO");
  EXPECT_EQ(suite[0].scale, 64);
  EXPECT_EQ(suite[4].app, "mpiBLAST");
  for (const auto& run : suite) EXPECT_TRUE(run.workload.valid());
}

TEST(Apps, StrongScalingShrinksPerRankWork) {
  EXPECT_GT(apps::btio(64).compute_per_iteration,
            apps::btio(256).compute_per_iteration);
  EXPECT_GT(apps::btio(64).data_size, apps::btio(256).data_size);
}

TEST(Apps, RunnableOnBaseline) {
  // Every model must actually execute end-to-end (cheapest scales only).
  for (const auto& run : {apps::AppRun{"BTIO", 64, apps::btio(64)},
                          apps::AppRun{"FLASHIO", 64, apps::flashio(64)}}) {
    io::RunOptions o;
    o.jitter_sigma = 0.0;
    const auto r = io::run_workload(run.workload,
                                    cloud::IoConfig::baseline(), o);
    EXPECT_GT(r.total_time, 1.0) << run.app;
    EXPECT_LT(r.total_time, 3600.0) << run.app;
  }
}

TEST(IorBench, BuilderMapsIorOptions) {
  const auto w = ior::IorBench()
                     .api("HDF5")
                     .tasks(64)
                     .io_tasks(16)
                     .block_size(128.0 * MiB)
                     .transfer_size(16.0 * MiB)
                     .segments(10)
                     .collective(true)
                     .file_per_process(false)
                     .read_and_write()
                     .build();
  EXPECT_EQ(w.interface, io::IoInterface::kHdf5);
  EXPECT_EQ(w.num_processes, 64);
  EXPECT_EQ(w.num_io_processes, 16);
  EXPECT_DOUBLE_EQ(w.data_size, 128.0 * MiB);
  EXPECT_DOUBLE_EQ(w.request_size, 16.0 * MiB);
  EXPECT_EQ(w.iterations, 10);
  EXPECT_TRUE(w.collective);
  EXPECT_TRUE(w.file_shared);
  EXPECT_EQ(w.op, io::OpMix::kReadWrite);
}

TEST(IorBench, RejectsUnknownApi) {
  EXPECT_THROW(ior::IorBench().api("GPFS"), Error);
}

TEST(IorBench, BuildNormalizesTransferSize) {
  const auto w = ior::IorBench()
                     .block_size(1.0 * MiB)
                     .transfer_size(8.0 * MiB)
                     .build();
  EXPECT_DOUBLE_EQ(w.request_size, 1.0 * MiB);
}

TEST(IorBench, RunIorStripsComputePhases) {
  auto w = ior::IorBench().tasks(32).block_size(4.0 * MiB).build();
  w.compute_per_iteration = 100.0;  // would dominate if not stripped
  io::RunOptions o;
  o.jitter_sigma = 0.0;
  const auto r = ior::run_ior(w, cloud::IoConfig::baseline(), o);
  EXPECT_LT(r.total_time, 50.0);
}


TEST(Apps, BtioProblemClassesScale) {
  const auto a = apps::btio(64, apps::BtClass::kA);
  const auto c = apps::btio(64, apps::BtClass::kC);
  const auto d = apps::btio(64, apps::BtClass::kD);
  // Output volume scales with the grid cell count.
  EXPECT_LT(a.total_bytes(), 0.1 * c.total_bytes());
  EXPECT_GT(d.total_bytes(), 10.0 * c.total_bytes());
  // Default stays the paper's class C.
  EXPECT_DOUBLE_EQ(apps::btio(64).total_bytes(), c.total_bytes());
  // Solver work scales along.
  EXPECT_LT(a.compute_per_iteration, c.compute_per_iteration);
  EXPECT_GT(d.compute_per_iteration, c.compute_per_iteration);
  for (const auto& w : {a, c, d}) EXPECT_TRUE(w.valid());
}

}  // namespace
}  // namespace acic
