// Regression tests for specific bugs found and fixed during development.
// Each test encodes the failure mode so it cannot silently return.
#include <gtest/gtest.h>

#include "acic/apps/apps.hpp"
#include "acic/fs/nfs.hpp"
#include "acic/io/middleware.hpp"
#include "acic/io/runner.hpp"
#include "acic/ior/ior.hpp"
#include "acic/core/paramspace.hpp"
#include "acic/simcore/flow.hpp"
#include <algorithm>

namespace acic {
namespace {

// --- FP zero-progress spin ---------------------------------------------
// At large simulated timestamps, a completion delay below one ulp of
// `now` cannot advance the clock; the flow network must still terminate.
// (Original symptom: millions of events at one frozen timestamp.)
TEST(Regression, FlowCompletionAtLargeTimestampsTerminates) {
  sim::Simulator s;
  sim::FlowNetwork net(s);
  const auto link = net.add_resource("link", 1.0e9);
  int completed = 0;
  // Start flows at a timestamp where 1e-12 s is below the ulp.
  s.at(2.0e4, [&] {
    for (int i = 0; i < 8; ++i) {
      net.start_flow({link}, 1.0e5 + i * 0.001, [&] { ++completed; });
    }
  });
  s.run();
  EXPECT_EQ(completed, 8);
  EXPECT_LT(s.events_executed(), 10000u);  // the spin burned millions
}

// The paper-scale repro: a big NFS write workload whose completion times
// land on sub-ulp boundaries.  Bounded event count == no spin.
TEST(Regression, LargeNfsWriteJobHasBoundedEventCount) {
  const auto w = ior::IorBench()
                     .api("POSIX")
                     .tasks(64)
                     .block_size(512.0 * MiB)
                     .transfer_size(256.0 * KiB)
                     .segments(100)
                     .write_only()
                     .file_per_process(false)
                     .build();
  io::RunOptions o;
  o.seed = 11ULL ^ 0xb5e11eULL ^ 39ULL;  // the original triggering seed
  const auto r = ior::run_ior(w, cloud::IoConfig::baseline(), o);
  EXPECT_GT(r.total_time, 0.0);
  EXPECT_LT(r.sim_events, 2'000'000u);
}

// --- Coalescing weight accounting on PVFS2 ------------------------------
// A coalesced request standing for N sub-stripe originals must charge N
// per-op services *in total*, not N on every server it fans out to.
// (Original symptom: mpiBLAST 3x slower after coalescing was added.)
TEST(Regression, CoalescedPvfsChargesOriginalRequestCount) {
  // 32 MiB of 256 KiB requests = 128 originals, each inside one 4 MiB
  // stripe.  Coalescing (cap 32) must not change the run time by more
  // than the scheduling granularity it trades away.
  auto base = ior::IorBench()
                  .api("POSIX")
                  .tasks(4)
                  .io_tasks(4)
                  .read_only()
                  .transfer_size(256.0 * KiB)
                  .file_per_process(true);
  cloud::IoConfig cfg;
  cfg.fs = cloud::FileSystemType::kPvfs2;
  cfg.device = storage::DeviceType::kEphemeral;
  cfg.io_servers = 4;
  cfg.placement = cloud::Placement::kDedicated;
  cfg.stripe_size = 4.0 * MiB;
  io::RunOptions o;
  o.jitter_sigma = 0.0;

  // Uncoalesced: 8 MiB -> 32 chunks (at the cap, weight 1).
  const auto small = ior::run_ior(base.block_size(8.0 * MiB).build(), cfg, o);
  // Coalesced: 32 MiB -> 32 chunks of weight 4.
  const auto big = ior::run_ior(base.block_size(32.0 * MiB).build(), cfg, o);
  // 4x the work should cost ~4x the time (same per-op totals per byte);
  // the weight bug made it ~4x *more* than that.
  const double ratio = big.total_time / small.total_time;
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 5.5);
}

// --- NFS write-back cache semantics -------------------------------------
TEST(Regression, NfsDirtyBytesDecayOverTime) {
  sim::Simulator s;
  cloud::ClusterModel::Options o;
  o.num_processes = 16;
  o.config = cloud::IoConfig::baseline();
  o.jitter_sigma = 0.0;
  cloud::ClusterModel cluster(s, o);
  fs::NfsModel nfs(cluster, fs::FsTuning{});

  SimTime done = -1;
  s.spawn([](fs::NfsModel& n, sim::Simulator& sim,
             SimTime& when) -> sim::Task {
    co_await n.request(0, 2.0 * GiB, /*write=*/true, /*shared=*/false, 1.0);
    when = sim.now();
  }(nfs, s, done));
  s.run();
  ASSERT_GT(done, 0.0);
  const Bytes right_after = nfs.dirty_bytes();
  EXPECT_GT(right_after, 1.0 * GiB);  // absorbed, not yet on the device

  // Let the leaky bucket drain for a while.
  s.at(done + 10.0, [] {});
  s.run();
  EXPECT_LT(nfs.dirty_bytes(), right_after);
}

TEST(Regression, NfsCacheOverflowFallsBackToDeviceSpeed) {
  // Writes beyond the cache limit must pay the device path: a workload
  // larger than the cache is much slower per byte than a small one.
  auto bench = ior::IorBench()
                   .api("POSIX")
                   .tasks(16)
                   .write_only()
                   .transfer_size(16.0 * MiB)
                   .file_per_process(true);
  io::RunOptions o;
  o.jitter_sigma = 0.0;
  const auto small =
      ior::run_ior(bench.block_size(256.0 * MiB).build(),
                   cloud::IoConfig::baseline(), o);  // 4 GiB total
  const auto huge =
      ior::run_ior(bench.block_size(4.0 * GiB).build(),
                   cloud::IoConfig::baseline(), o);  // 64 GiB >> 30 GiB cache
  const double per_byte_small = small.total_time / (16 * 256.0 * MiB);
  const double per_byte_huge = huge.total_time / (16 * 4.0 * GiB);
  EXPECT_GT(per_byte_huge, 2.0 * per_byte_small);
}

// --- Simulator process compaction ----------------------------------------
// Spawning far more short-lived processes than the compaction threshold
// must neither lose completions nor blow up the process table.
TEST(Regression, ProcessCompactionKeepsSemantics) {
  sim::Simulator s;
  int completed = 0;
  for (int i = 0; i < 20000; ++i) {
    s.spawn([](sim::Simulator& sim, int& done) -> sim::Task {
      co_await sim.delay(0.001);
      ++done;
    }(s, completed));
  }
  s.run();
  EXPECT_EQ(completed, 20000);
  EXPECT_TRUE(s.all_processes_done());
}

// --- Read+write mix prediction encoding ----------------------------------
// MADbench2-style read+write workloads encode op=0.5 and the sampled
// training grid includes that value, so the model is never extrapolating
// off the grid for half the evaluation suite.
TEST(Regression, OpMixValueIsOnTrainingGrid) {
  const auto& values =
      core::ParamSpace::dimension(core::kOpType).values;
  const auto w = apps::madbench2(64);
  const auto p = core::ParamSpace::encode(cloud::IoConfig::baseline(), w);
  EXPECT_NE(std::find(values.begin(), values.end(), p[core::kOpType]),
            values.end());
}

}  // namespace
}  // namespace acic
