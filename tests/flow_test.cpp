// Unit and property tests for the max-min fair-share flow network.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "acic/common/error.hpp"
#include "acic/common/rng.hpp"
#include "acic/simcore/flow.hpp"
#include "acic/simcore/simulator.hpp"

namespace acic::sim {
namespace {

TEST(FlowNetwork, SingleFlowUsesFullCapacity) {
  Simulator s;
  FlowNetwork net(s);
  const auto link = net.add_resource("link", 100.0);  // 100 B/s
  SimTime done_at = -1.0;
  net.start_flow({link}, 1000.0, [&] { done_at = s.now(); });
  s.run();
  EXPECT_DOUBLE_EQ(done_at, 10.0);
  EXPECT_EQ(net.active_flows(), 0u);
  EXPECT_NEAR(net.bytes_delivered(), 1000.0, 1e-6);
}

TEST(FlowNetwork, BytesAreConservedAcrossContendedTransfers) {
  Simulator s;
  FlowNetwork net(s);
  Rng rng(99);
  const auto a = net.add_resource("a", 80.0);
  const auto b = net.add_resource("b", 120.0);
  const auto c = net.add_resource("c", 50.0);
  Bytes injected = 0.0;
  for (int i = 0; i < 40; ++i) {
    const Bytes bytes = 1.0 + rng.uniform() * 5000.0;
    injected += bytes;
    std::vector<ResourceId> path;
    if (i % 3 == 0) path = {a, c};
    else if (i % 3 == 1) path = {b};
    else path = {a, b, c};
    const SimTime when = rng.uniform() * 30.0;
    s.at(when, [&net, path, bytes]() mutable {
      net.start_flow(std::move(path), bytes, nullptr);
    });
  }
  s.run();
  EXPECT_EQ(net.active_flows(), 0u);
  EXPECT_DOUBLE_EQ(net.bytes_injected(), injected);
  // Conservation: once everything completed, delivered == injected up to
  // fp integration noise.
  EXPECT_NEAR(net.bytes_delivered(), injected, 1e-6 * injected);
}

TEST(FlowNetwork, RejectsDegenerateFlows) {
  Simulator s;
  FlowNetwork net(s);
  const auto link = net.add_resource("link", 100.0);
  EXPECT_THROW(net.start_flow({}, 10.0, nullptr), Error);
  EXPECT_THROW(net.start_flow({link + 7}, 10.0, nullptr), Error);
  EXPECT_THROW(net.start_flow({link}, -1.0, nullptr), Error);
  EXPECT_THROW(net.set_capacity(link, -5.0), Error);
}

TEST(FlowNetwork, TwoFlowsShareEqually) {
  Simulator s;
  FlowNetwork net(s);
  const auto link = net.add_resource("link", 100.0);
  SimTime a_done = -1, b_done = -1;
  net.start_flow({link}, 1000.0, [&] { a_done = s.now(); });
  net.start_flow({link}, 1000.0, [&] { b_done = s.now(); });
  s.run();
  // Both run at 50 B/s -> 20 s each.
  EXPECT_NEAR(a_done, 20.0, 1e-9);
  EXPECT_NEAR(b_done, 20.0, 1e-9);
}

TEST(FlowNetwork, ShortFlowFinishesThenLongSpeedsUp) {
  Simulator s;
  FlowNetwork net(s);
  const auto link = net.add_resource("link", 100.0);
  SimTime small_done = -1, big_done = -1;
  net.start_flow({link}, 500.0, [&] { small_done = s.now(); });
  net.start_flow({link}, 1500.0, [&] { big_done = s.now(); });
  s.run();
  // Phase 1: both at 50 B/s until small ends at t=10 (500 B each).
  // Phase 2: big alone at 100 B/s for remaining 1000 B -> ends t=20.
  EXPECT_NEAR(small_done, 10.0, 1e-9);
  EXPECT_NEAR(big_done, 20.0, 1e-9);
}

TEST(FlowNetwork, LateArrivalSlowsExistingFlow) {
  Simulator s;
  FlowNetwork net(s);
  const auto link = net.add_resource("link", 100.0);
  SimTime first_done = -1;
  net.start_flow({link}, 1000.0, [&] { first_done = s.now(); });
  s.at(5.0, [&] { net.start_flow({link}, 10000.0, nullptr); });
  s.run();
  // 500 B in first 5 s, then 50 B/s -> 10 more seconds.
  EXPECT_NEAR(first_done, 15.0, 1e-9);
}

TEST(FlowNetwork, BottleneckOnSharedMiddleResource) {
  Simulator s;
  FlowNetwork net(s);
  const auto a = net.add_resource("nic-a", 1000.0);
  const auto b = net.add_resource("nic-b", 1000.0);
  const auto shared = net.add_resource("server", 100.0);
  SimTime done_a = -1, done_b = -1;
  net.start_flow({a, shared}, 500.0, [&] { done_a = s.now(); });
  net.start_flow({b, shared}, 500.0, [&] { done_b = s.now(); });
  s.run();
  // Server capacity 100 split two ways -> 50 B/s each -> 10 s.
  EXPECT_NEAR(done_a, 10.0, 1e-9);
  EXPECT_NEAR(done_b, 10.0, 1e-9);
}

TEST(FlowNetwork, MaxMinGivesUnbottleneckedFlowTheRest) {
  Simulator s;
  FlowNetwork net(s);
  const auto wide = net.add_resource("wide", 100.0);
  const auto narrow = net.add_resource("narrow", 10.0);
  // Flow A crosses only the wide link; flow B crosses both.
  net.start_flow({wide}, 1e9, nullptr);
  net.start_flow({wide, narrow}, 1e9, nullptr);
  s.at(0.0, [&] {});
  s.step();
  // B is capped at 10 by the narrow link; A gets the remaining 90.
  // (Rates are observable immediately after the initial solve.)
  EXPECT_EQ(net.active_flows(), 2u);
  double ra = net.flow_rate(1), rb = net.flow_rate(2);
  EXPECT_NEAR(rb, 10.0, 1e-9);
  EXPECT_NEAR(ra, 90.0, 1e-9);
}

TEST(FlowNetwork, ZeroByteFlowCompletesImmediately) {
  Simulator s;
  FlowNetwork net(s);
  const auto link = net.add_resource("link", 100.0);
  bool done = false;
  net.start_flow({link}, 0.0, [&] { done = true; });
  s.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
}

TEST(FlowNetwork, CapacityDropStallsAndRecovers) {
  Simulator s;
  FlowNetwork net(s);
  const auto link = net.add_resource("link", 100.0);
  SimTime done = -1;
  net.start_flow({link}, 1000.0, [&] { done = s.now(); });
  s.at(5.0, [&] { net.set_capacity(link, 0.0); });   // failure
  s.at(25.0, [&] { net.set_capacity(link, 100.0); });  // recovery
  s.run();
  // 500 B before failure, 20 s stall, 5 s to finish the rest.
  EXPECT_NEAR(done, 30.0, 1e-9);
}

TEST(FlowNetwork, RejectsEmptyPathAndBadResource) {
  Simulator s;
  FlowNetwork net(s);
  EXPECT_THROW(net.start_flow({}, 10.0, nullptr), Error);
  EXPECT_THROW(net.start_flow({99}, 10.0, nullptr), Error);
}

Task transfer_and_mark(FlowNetwork& net, std::vector<ResourceId> path,
                       Bytes bytes, Simulator& s, SimTime& done_at) {
  co_await net.transfer(std::move(path), bytes);
  done_at = s.now();
}

TEST(FlowNetwork, CoroutineTransferAwaitsCompletion) {
  Simulator s;
  FlowNetwork net(s);
  const auto link = net.add_resource("link", 100.0);
  SimTime done_at = -1;
  s.spawn(transfer_and_mark(net, {link}, 250.0, s, done_at));
  s.run();
  EXPECT_NEAR(done_at, 2.5, 1e-9);
}

TEST(FlowNetwork, CancelFlowDropsRemainingBytes) {
  Simulator s;
  FlowNetwork net(s);
  const auto link = net.add_resource("link", 100.0);
  bool completed = false;
  const FlowId id = net.start_flow({link}, 1000.0, [&] { completed = true; });
  s.at(5.0, [&] { net.cancel_flow(id); });
  s.run();
  EXPECT_FALSE(completed);
  EXPECT_EQ(net.active_flows(), 0u);
  // 500 B moved before the cancel; the other 500 were abandoned.
  EXPECT_NEAR(net.bytes_delivered(), 500.0, 1e-6);
  EXPECT_NEAR(net.bytes_cancelled(), 500.0, 1e-6);
  // Cancelling again (or an unknown flow) is a harmless no-op.
  net.cancel_flow(id);
  net.cancel_flow(12345);
  EXPECT_NEAR(net.bytes_cancelled(), 500.0, 1e-6);
}

TEST(FlowNetwork, CancelFreesCapacityForSurvivors) {
  Simulator s;
  FlowNetwork net(s);
  const auto link = net.add_resource("link", 100.0);
  SimTime done = -1;
  net.start_flow({link}, 1000.0, [&] { done = s.now(); });
  const FlowId hog = net.start_flow({link}, 1e9, nullptr);
  s.at(10.0, [&] { net.cancel_flow(hog); });
  s.run();
  // Shared 50 B/s for 10 s (500 B), then alone at 100 B/s for the rest.
  EXPECT_NEAR(done, 15.0, 1e-9);
}

Task timed_transfer(FlowNetwork& net, std::vector<ResourceId> path,
                    Bytes bytes, SimTime timeout, bool* completed,
                    Simulator& s, SimTime* finished_at) {
  co_await net.transfer_within(std::move(path), bytes, timeout, completed);
  *finished_at = s.now();
}

TEST(FlowNetwork, TransferWithinCompletesAndCancelsTheTimer) {
  Simulator s;
  FlowNetwork net(s);
  const auto link = net.add_resource("link", 100.0);
  bool completed = false;
  SimTime finished = -1;
  s.spawn(timed_transfer(net, {link}, 250.0, /*timeout=*/60.0, &completed,
                         s, &finished));
  s.run();
  EXPECT_TRUE(completed);
  EXPECT_NEAR(finished, 2.5, 1e-9);
  // The timeout timer must be cancelled on completion: the queue drains
  // at the completion time, not at t=60.
  EXPECT_NEAR(s.now(), 2.5, 1e-9);
}

TEST(FlowNetwork, TransferWithinTimesOutAndAbandonsTheFlow) {
  Simulator s;
  FlowNetwork net(s);
  const auto link = net.add_resource("link", 100.0);
  bool completed = true;
  SimTime finished = -1;
  s.spawn(timed_transfer(net, {link}, 1000.0, /*timeout=*/5.0, &completed,
                         s, &finished));
  s.at(2.0, [&] { net.set_capacity(link, 0.0); });  // outage, never healed
  s.run();
  EXPECT_FALSE(completed);
  EXPECT_NEAR(finished, 5.0, 1e-9);
  EXPECT_EQ(net.active_flows(), 0u);  // the payload was cancelled
  EXPECT_NEAR(net.bytes_delivered(), 200.0, 1e-6);
  EXPECT_NEAR(net.bytes_cancelled(), 800.0, 1e-6);
}

TEST(FlowNetwork, ConservationHoldsWithCancellations) {
  Simulator s;
  FlowNetwork net(s);
  Rng rng(7);
  const auto a = net.add_resource("a", 90.0);
  const auto b = net.add_resource("b", 60.0);
  Bytes injected = 0.0;
  std::vector<FlowId> ids;
  for (int i = 0; i < 30; ++i) {
    const Bytes bytes = 50.0 + rng.uniform() * 3000.0;
    injected += bytes;
    std::vector<ResourceId> path =
        i % 2 == 0 ? std::vector<ResourceId>{a} : std::vector<ResourceId>{a, b};
    s.at(rng.uniform() * 10.0, [&net, &ids, path, bytes]() mutable {
      ids.push_back(net.start_flow(std::move(path), bytes, nullptr));
    });
  }
  // Cancel a scattering of flows mid-stream (whatever is active then).
  for (const SimTime when : {4.0, 9.0, 14.0}) {
    s.at(when, [&net, &ids] {
      for (std::size_t i = 0; i < ids.size(); i += 3) net.cancel_flow(ids[i]);
    });
  }
  s.run();
  EXPECT_EQ(net.active_flows(), 0u);
  EXPECT_GT(net.bytes_cancelled(), 0.0);
  // Conservation with the cancelled term included.
  EXPECT_NEAR(net.bytes_delivered() + net.bytes_cancelled(), injected,
              1e-6 * injected);
}

// Property: total goodput through a single resource never exceeds its
// capacity, and all bytes are delivered, for random flow sets.
class FlowConservationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowConservationTest, AllBytesDeliveredAndMakespanBounded) {
  Rng rng(GetParam());
  Simulator s;
  FlowNetwork net(s);
  const double cap = 100.0;
  const auto link = net.add_resource("link", cap);
  std::vector<ResourceId> nics;
  for (int i = 0; i < 4; ++i) {
    nics.push_back(net.add_resource("nic" + std::to_string(i), 60.0));
  }
  double total_bytes = 0.0;
  int completed = 0;
  const int n = 12;
  for (int i = 0; i < n; ++i) {
    const double bytes = rng.uniform(10.0, 500.0);
    total_bytes += bytes;
    const auto nic = nics[rng.uniform_index(nics.size())];
    const double start = rng.uniform(0.0, 5.0);
    s.at(start, [&net, nic, link, bytes, &completed] {
      net.start_flow({nic, link}, bytes, [&completed] { ++completed; });
    });
  }
  s.run();
  EXPECT_EQ(completed, n);
  EXPECT_NEAR(net.bytes_delivered(), total_bytes, 1e-5);
  // The shared link is the binding constraint: makespan >= bytes/cap.
  EXPECT_GE(s.now() + 1e-9, total_bytes / cap);
  // And it cannot be worse than fully serialized through the slowest NIC.
  EXPECT_LE(s.now(), 5.0 + total_bytes / 60.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, FlowConservationTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Property: with k parallel servers, aggregate completion time of evenly
// spread flows improves ~k× over a single server.
class StripingSpeedupTest : public ::testing::TestWithParam<int> {};

TEST_P(StripingSpeedupTest, ParallelServersScaleThroughput) {
  const int k = GetParam();
  Simulator s;
  FlowNetwork net(s);
  std::vector<ResourceId> servers;
  for (int i = 0; i < k; ++i) {
    servers.push_back(net.add_resource("srv" + std::to_string(i), 100.0));
  }
  const double total = 12000.0;
  for (int i = 0; i < k; ++i) {
    net.start_flow({servers[static_cast<std::size_t>(i)]}, total / k, nullptr);
  }
  s.run();
  EXPECT_NEAR(s.now(), total / (100.0 * k), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(ServerCounts, StripingSpeedupTest,
                         ::testing::Values(1, 2, 3, 4, 6));

}  // namespace
}  // namespace acic::sim
