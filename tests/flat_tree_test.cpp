// Tests for the flat SoA tree snapshot: bit-identical parity with the
// pointer tree, batch wiring through the predictor layer, and
// thread-safety of concurrent batch evaluation.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "acic/common/error.hpp"
#include "acic/common/rng.hpp"
#include "acic/core/paramspace.hpp"
#include "acic/core/predictor.hpp"
#include "acic/core/training.hpp"
#include "acic/ml/cart.hpp"
#include "acic/ml/forest.hpp"

namespace acic::ml {
namespace {

Dataset random_data(std::size_t rows, std::size_t features,
                    std::uint64_t seed) {
  Rng rng(seed);
  Dataset d;
  std::vector<double> x(features);
  for (std::size_t i = 0; i < rows; ++i) {
    for (auto& v : x) v = rng.uniform();
    // A bumpy but learnable target so trees grow real depth.
    const double y = (x[0] < 0.4 ? 3.0 : -1.0) +
                     (features > 1 && x[1] < 0.7 ? 0.5 * x[1] : x[0]) +
                     0.1 * rng.normal();
    d.add(x, y);
  }
  return d;
}

std::vector<double> random_matrix(std::size_t rows, std::size_t features,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> m(rows * features);
  for (auto& v : m) v = rng.uniform(-0.2, 1.2);
  return m;
}

bool bitwise_equal(const std::vector<double>& a,
                   const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

TEST(FlatTreeTest, BatchIsBitIdenticalToPointerTree) {
  // Property test across tree shapes: many seeds, off-grid query points
  // (including values outside the training range, landing exactly on
  // thresholds is covered by reusing training rows below).
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto data = random_data(160, 3, seed);
    const auto tree = CartTree::train(data);
    constexpr std::size_t kRows = 257;
    const auto X = random_matrix(kRows, 3, seed * 977);

    std::vector<double> batch(kRows);
    tree.predict_batch(X, kRows, batch);
    std::vector<double> reference(kRows);
    for (std::size_t i = 0; i < kRows; ++i) {
      reference[i] =
          tree.predict(std::span<const double>(X.data() + i * 3, 3));
    }
    EXPECT_TRUE(bitwise_equal(batch, reference)) << "seed " << seed;
  }
}

TEST(FlatTreeTest, BatchOnTrainingRowsMatchesPredict) {
  // Training rows land exactly on split thresholds — the sharp edge for
  // any `<` vs `<=` divergence between the two walks.
  const auto data = random_data(200, 2, 42);
  const auto tree = CartTree::train(data);
  std::vector<double> X;
  for (const auto& row : data.x) X.insert(X.end(), row.begin(), row.end());

  std::vector<double> batch(data.rows());
  tree.predict_batch(X, data.rows(), batch);
  for (std::size_t i = 0; i < data.rows(); ++i) {
    EXPECT_EQ(batch[i], tree.predict(data.x[i])) << "row " << i;
  }
}

TEST(FlatTreeTest, SingleLeafTreeBatch) {
  Dataset d;
  d.add({1.0}, 7.0);
  d.add({2.0}, 7.0);
  d.add({3.0}, 7.0);
  d.add({4.0}, 7.0);
  const auto tree = CartTree::train(d);  // constant target: one leaf
  EXPECT_EQ(tree.flat().node_count(), 1u);
  const std::vector<double> X = {0.0, 10.0, -5.0};
  std::vector<double> out(3);
  tree.predict_batch(X, 3, out);
  EXPECT_EQ(out, (std::vector<double>{7.0, 7.0, 7.0}));
}

TEST(FlatTreeTest, EmptyBatchIsANoop) {
  const auto data = random_data(50, 2, 3);
  const auto tree = CartTree::train(data);
  std::vector<double> out;
  tree.predict_batch({}, 0, out);  // must not touch anything
}

TEST(FlatTreeTest, RejectsRaggedAndNarrowMatrices) {
  const auto data = random_data(80, 3, 4);
  const auto tree = CartTree::train(data);
  std::vector<double> out(4);
  const std::vector<double> ragged(10, 0.5);  // 10 % 4 != 0
  EXPECT_THROW(tree.predict_batch(ragged, 4, out), Error);
  std::vector<double> small_out(1);
  const std::vector<double> fine(12, 0.5);
  EXPECT_THROW(tree.predict_batch(fine, 4, small_out), Error);
}

TEST(FlatTreeTest, ForestBatchIsBitIdenticalToPerRow) {
  const auto data = random_data(150, 3, 5);
  ForestParams p;
  p.trees = 9;
  ForestRegressor forest(p);
  forest.fit(data);
  constexpr std::size_t kRows = 101;
  const auto X = random_matrix(kRows, 3, 999);

  std::vector<double> batch(kRows);
  forest.predict_batch(X, kRows, batch);
  std::vector<double> reference(kRows);
  for (std::size_t i = 0; i < kRows; ++i) {
    reference[i] =
        forest.predict(std::span<const double>(X.data() + i * 3, 3));
  }
  EXPECT_TRUE(bitwise_equal(batch, reference));
}

/// A small but real training database over the actual exploration space,
/// so the predictor-layer wiring is exercised end to end.
core::TrainingDatabase tiny_database(std::uint64_t seed) {
  Rng rng(seed);
  core::TrainingDatabase db;
  const auto& dims = core::ParamSpace::dimensions();
  for (int n = 0; n < 160; ++n) {
    core::Point p = core::default_point();
    for (const auto& spec : dims) {
      p[spec.dim] = spec.values[rng.uniform_index(spec.values.size())];
    }
    p = core::ParamSpace::repaired(p);
    core::TrainingSample s;
    s.point = p;
    s.baseline_time = 50.0;
    s.baseline_cost = 5.0;
    const double improvement =
        1.0 + p[core::kFileSystem] + 0.2 * p[core::kIoServers] +
        0.1 * rng.uniform();
    s.time = s.baseline_time / improvement;
    s.cost = s.baseline_cost / improvement;
    db.insert(s);
  }
  return db;
}

TEST(FlatTreeTest, AcicRecommendUsesBatchPathBitIdentically) {
  // recommend()/predict_batch() at the predictor layer must score every
  // candidate exactly as per-pair predict() does.
  const auto db = tiny_database(11);
  const core::Acic model(db, core::Objective::kPerformance);
  io::Workload traits;
  traits.num_processes = 64;
  traits.num_io_processes = 64;
  traits.data_size = 4.0 * MiB;
  traits.request_size = 1.0 * MiB;
  traits.collective = true;
  traits.normalize();

  const auto candidates = cloud::IoConfig::enumerate_candidates();
  const auto scores = model.predict_batch(candidates, traits);
  ASSERT_EQ(scores.size(), candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_EQ(scores[i], model.predict(candidates[i], traits)) << "cand " << i;
  }

  const auto recs = model.recommend(traits, 3);
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_GE(recs[0].predicted_improvement, recs[1].predicted_improvement);
  EXPECT_EQ(recs[0].predicted_improvement,
            model.predict(recs[0].config, traits));
}

TEST(FlatTreeConcurrency, SharedTreeConcurrentBatchPredict) {
  // A built FlatTree is immutable; concurrent predict_batch over one
  // shared instance must be race-free (this suite runs under TSan) and
  // agree across threads.
  const auto data = random_data(200, 3, 77);
  const auto tree = CartTree::train(data);
  constexpr std::size_t kRows = 300;
  const auto X = random_matrix(kRows, 3, 78);

  std::vector<double> expected(kRows);
  tree.predict_batch(X, kRows, expected);

  constexpr int kThreads = 4;
  std::vector<std::vector<double>> results(
      kThreads, std::vector<double>(kRows));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int rep = 0; rep < 50; ++rep) {
        tree.flat().predict_batch(X, kRows, results[static_cast<std::size_t>(t)]);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (const auto& r : results) EXPECT_TRUE(bitwise_equal(r, expected));
}

}  // namespace
}  // namespace acic::ml
