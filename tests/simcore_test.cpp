// Unit tests for the discrete-event kernel, coroutine tasks and sync
// primitives.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "acic/common/error.hpp"
#include "acic/simcore/simulator.hpp"
#include "acic/simcore/sync.hpp"

namespace acic::sim {
namespace {

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.at(3.0, [&] { order.push_back(3); });
  s.at(1.0, [&] { order.push_back(1); });
  s.at(2.0, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now(), 3.0);
}

TEST(Simulator, TiesFireFifo) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.at(1.0, [&order, i] { order.push_back(i); });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, RejectsPastEvents) {
  Simulator s;
  s.at(5.0, [] {});
  s.run();
  EXPECT_THROW(s.at(1.0, [] {}), Error);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool fired = false;
  const auto id = s.at(1.0, [&] { fired = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelAfterFireIsHarmless) {
  Simulator s;
  int fired = 0;
  const auto id = s.at(1.0, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  // The id was issued, so the late cancel is accepted — and must not
  // affect any event scheduled afterwards.
  s.cancel(id);
  s.at(2.0, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelOfUnissuedIdIsRejected) {
  Simulator s;
  EXPECT_THROW(s.cancel(42), Error);
  EXPECT_THROW(s.cancel(0), Error);
}

TEST(Simulator, CancelInsideFiringCallbackAtSameTimestamp) {
  Simulator s;
  bool b_fired = false, c_fired = false;
  EventId b_id = 0;
  // A fires first (FIFO at t=1) and cancels B, which shares its timestamp
  // and is already sitting in the heap.
  s.at(1.0, [&] { s.cancel(b_id); });
  b_id = s.at(1.0, [&] { b_fired = true; });
  s.at(1.0, [&] { c_fired = true; });
  s.run();
  EXPECT_FALSE(b_fired);
  EXPECT_TRUE(c_fired);
  EXPECT_EQ(s.events_executed(), 2u);
}

TEST(Simulator, CancelInsideFiringCallbackForLaterEvent) {
  Simulator s;
  bool fired = false;
  const auto id = s.at(5.0, [&] { fired = true; });
  s.at(1.0, [&] { s.cancel(id); });
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_DOUBLE_EQ(s.now(), 1.0);
}

TEST(Simulator, NestedScheduling) {
  Simulator s;
  double inner_time = -1.0;
  s.at(1.0, [&] { s.in(2.0, [&] { inner_time = s.now(); }); });
  s.run();
  EXPECT_DOUBLE_EQ(inner_time, 3.0);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator s;
  int count = 0;
  s.at(1.0, [&] { ++count; });
  s.at(10.0, [&] { ++count; });
  s.run_until(5.0);
  EXPECT_EQ(count, 1);
  EXPECT_DOUBLE_EQ(s.now(), 5.0);
  s.run();
  EXPECT_EQ(count, 2);
}

TEST(Simulator, RunUntilDeadlineExactlyOnEventTimestamp) {
  Simulator s;
  std::vector<double> fired_at;
  s.at(5.0, [&] { fired_at.push_back(s.now()); });
  s.at(5.0, [&] { fired_at.push_back(s.now()); });
  s.at(5.0 + 1e-9, [&] { fired_at.push_back(s.now()); });
  // A deadline equal to an event timestamp is inclusive: both t=5 events
  // fire, the one an epsilon later stays queued.
  s.run_until(5.0);
  EXPECT_EQ(fired_at.size(), 2u);
  EXPECT_DOUBLE_EQ(s.now(), 5.0);
  s.run();
  EXPECT_EQ(fired_at.size(), 3u);
}

TEST(Simulator, RunUntilRefusesToRewindTheClock) {
  Simulator s;
  s.at(1.0, [] {});
  s.run_until(5.0);
  EXPECT_DOUBLE_EQ(s.now(), 5.0);
  EXPECT_THROW(s.run_until(3.0), Error);
  s.run_until(5.0);  // equal deadline is a legal no-op
}

TEST(Simulator, CancelInsideCallbackCancellingItselfIsHarmless) {
  // An event cancelling its own (already-popped) id must not disturb
  // later events: the stale id simply sits in the cancelled list.
  Simulator s;
  EventId self = 0;
  bool later_fired = false;
  self = s.at(1.0, [&] { s.cancel(self); });
  s.at(2.0, [&] { later_fired = true; });
  s.run();
  EXPECT_TRUE(later_fired);
  EXPECT_EQ(s.events_executed(), 2u);
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.at(static_cast<double>(i), [] {});
  s.run();
  EXPECT_EQ(s.events_executed(), 7u);
}

TEST(Simulator, RunUntilWithCancelledEventsDoesNotOvershootDeadline) {
  // Regression: the tombstone-based queue used to pop cancelled entries
  // inside run_until's step loop, so a cancelled event below the
  // deadline could advance the scan past a live event *beyond* it —
  // firing work the deadline should have fenced off.  With the
  // intrusive heap the head is always live, so the deadline comparison
  // is exact.
  Simulator s;
  bool live_fired = false;
  const auto doomed = s.at(1.0, [] {});
  s.at(5.0, [&] { live_fired = true; });
  s.cancel(doomed);
  s.run_until(2.0);
  EXPECT_FALSE(live_fired);
  EXPECT_DOUBLE_EQ(s.now(), 2.0);
  EXPECT_EQ(s.events_executed(), 0u);
  s.run();
  EXPECT_TRUE(live_fired);
}

TEST(Simulator, CancelLeavesNoQueueResidue) {
  // Regression: cancel() used to append the id to a `cancelled_` vector
  // that was only drained when the event's timestamp came up, so a
  // workload cancelling far-future events (failure injection under the
  // 24h horizon) accumulated unbounded tombstones.  Now a cancel
  // removes the heap entry immediately and recycles its arena slot.
  Simulator s;
  const auto id = s.at(100.0, [] {});
  EXPECT_EQ(s.pending_events(), 1u);
  s.cancel(id);
  EXPECT_EQ(s.pending_events(), 0u);

  // Schedule/cancel churn must reuse slots, not grow the arena.
  for (int i = 0; i < 10000; ++i) {
    s.cancel(s.at(100.0 + i, [] {}));
  }
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_LE(s.event_arena_slots(), 8u);
}

TEST(Simulator, DoubleCancelOfPendingEventIsHarmless) {
  Simulator s;
  bool doomed_fired = false;
  bool live_fired = false;
  const auto id = s.at(1.0, [&] { doomed_fired = true; });
  s.at(2.0, [&] { live_fired = true; });
  s.cancel(id);
  s.cancel(id);  // second cancel of the same pending id: a no-op
  s.run();
  EXPECT_FALSE(doomed_fired);
  EXPECT_TRUE(live_fired);
}

TEST(Simulator, HeapSurvivesInterleavedScheduleCancelChurn) {
  // Deterministic stress over the intrusive-heap invariants: interleave
  // schedules and cancels (including middle-of-heap removals), then
  // verify everything left fires in exact (time, id) order.
  Simulator s;
  std::vector<double> fired;
  std::vector<EventId> ids;
  for (int i = 0; i < 200; ++i) {
    const double t = static_cast<double>((i * 37) % 101) + 1.0;
    ids.push_back(s.at(t, [&fired, &s] { fired.push_back(s.now()); }));
    if (i % 3 == 0) {
      s.cancel(ids[static_cast<std::size_t>(i) * 2 / 3]);
    }
  }
  s.run();
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  EXPECT_EQ(fired.size(), s.events_executed());
  EXPECT_EQ(s.pending_events(), 0u);
}

Task delayed_append(Simulator& s, std::vector<int>& out, SimTime dt, int tag) {
  co_await s.delay(dt);
  out.push_back(tag);
}

TEST(TaskTest, SpawnedProcessesInterleaveByTime) {
  Simulator s;
  std::vector<int> out;
  s.spawn(delayed_append(s, out, 2.0, 2));
  s.spawn(delayed_append(s, out, 1.0, 1));
  s.spawn(delayed_append(s, out, 3.0, 3));
  s.run();
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(s.all_processes_done());
}

Task parent_task(Simulator& s, std::vector<std::string>& log) {
  log.push_back("parent-start");
  co_await [](Simulator& sim, std::vector<std::string>& l) -> Task {
    l.push_back("child-start");
    co_await sim.delay(1.0);
    l.push_back("child-end");
  }(s, log);
  log.push_back("parent-end");
}

TEST(TaskTest, AwaitingChildRunsToCompletion) {
  Simulator s;
  std::vector<std::string> log;
  s.spawn(parent_task(s, log));
  s.run();
  EXPECT_EQ(log, (std::vector<std::string>{"parent-start", "child-start",
                                           "child-end", "parent-end"}));
  EXPECT_DOUBLE_EQ(s.now(), 1.0);
}

Task throwing_task(Simulator& s) {
  co_await s.delay(1.0);
  throw Error("boom");
}

TEST(TaskTest, SpawnedExceptionSurfacesFromRun) {
  Simulator s;
  s.spawn(throwing_task(s));
  EXPECT_THROW(s.run(), Error);
}

Task await_throwing_child(Simulator& s, bool& caught) {
  try {
    co_await throwing_task(s);
  } catch (const Error&) {
    caught = true;
  }
}

TEST(TaskTest, ChildExceptionPropagatesToParent) {
  Simulator s;
  bool caught = false;
  s.spawn(await_throwing_child(s, caught));
  s.run();
  EXPECT_TRUE(caught);
}

Task wait_on(Condition& c, int& wakeups) {
  co_await c.wait();
  ++wakeups;
}

TEST(SyncTest, ConditionNotifyAllWakesEveryWaiter) {
  Simulator s;
  Condition c(s);
  int wakeups = 0;
  for (int i = 0; i < 4; ++i) s.spawn(wait_on(c, wakeups));
  s.at(1.0, [&] { c.notify_all(); });
  s.run();
  EXPECT_EQ(wakeups, 4);
}

TEST(SyncTest, ConditionNotifyOneWakesOldest) {
  Simulator s;
  Condition c(s);
  int wakeups = 0;
  for (int i = 0; i < 3; ++i) s.spawn(wait_on(c, wakeups));
  s.at(1.0, [&] { c.notify_one(); });
  s.run_until(2.0);
  EXPECT_EQ(wakeups, 1);
  EXPECT_EQ(c.waiter_count(), 2u);
  c.notify_all();
  s.run();
  EXPECT_EQ(wakeups, 3);
}

Task use_semaphore(Simulator& s, Semaphore& sem, SimTime hold, int& active,
                   int& peak) {
  co_await sem.acquire();
  ++active;
  peak = std::max(peak, active);
  co_await s.delay(hold);
  --active;
  sem.release();
}

TEST(SyncTest, SemaphoreLimitsConcurrency) {
  Simulator s;
  Semaphore sem(s, 2);
  int active = 0, peak = 0;
  for (int i = 0; i < 6; ++i) s.spawn(use_semaphore(s, sem, 1.0, active, peak));
  s.run();
  EXPECT_EQ(peak, 2);
  // 6 holders of 1s each through 2 permits -> 3 serial rounds.
  EXPECT_DOUBLE_EQ(s.now(), 3.0);
  EXPECT_EQ(sem.available(), 2u);
}

Task barrier_participant(Simulator& s, Barrier& b, SimTime arrive_at,
                         std::vector<SimTime>& exit_times) {
  co_await s.delay(arrive_at);
  co_await b.arrive_and_wait();
  exit_times.push_back(s.now());
}

TEST(SyncTest, BarrierReleasesAllAtLastArrival) {
  Simulator s;
  Barrier b(s, 3);
  std::vector<SimTime> exits;
  s.spawn(barrier_participant(s, b, 1.0, exits));
  s.spawn(barrier_participant(s, b, 5.0, exits));
  s.spawn(barrier_participant(s, b, 3.0, exits));
  s.run();
  ASSERT_EQ(exits.size(), 3u);
  for (SimTime t : exits) EXPECT_DOUBLE_EQ(t, 5.0);
}

Task barrier_twice(Simulator& s, Barrier& b, SimTime d, int& phase_counter) {
  co_await s.delay(d);
  co_await b.arrive_and_wait();
  ++phase_counter;
  co_await s.delay(d);
  co_await b.arrive_and_wait();
  ++phase_counter;
}

TEST(SyncTest, BarrierIsReusable) {
  Simulator s;
  Barrier b(s, 2);
  int phases = 0;
  s.spawn(barrier_twice(s, b, 1.0, phases));
  s.spawn(barrier_twice(s, b, 2.0, phases));
  s.run();
  EXPECT_EQ(phases, 4);
  EXPECT_TRUE(s.all_processes_done());
}

Task consume(Simulator& s, Mailbox<int>& mb, std::vector<int>& got, int n) {
  for (int i = 0; i < n; ++i) {
    int v = 0;
    co_await mb.recv_into(v);
    got.push_back(v);
  }
  (void)s;
}

TEST(SyncTest, MailboxDeliversInOrder) {
  Simulator s;
  Mailbox<int> mb(s);
  std::vector<int> got;
  s.spawn(consume(s, mb, got, 3));
  s.at(1.0, [&] { mb.send(10); });
  s.at(2.0, [&] {
    mb.send(20);
    mb.send(30);
  });
  s.run();
  EXPECT_EQ(got, (std::vector<int>{10, 20, 30}));
  EXPECT_TRUE(mb.empty());
}

}  // namespace
}  // namespace acic::sim
