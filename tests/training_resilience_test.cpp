// Resilient training sweeps: chaos-corrupted measurement campaigns must
// still produce a database whose trained model agrees with the fault-free
// one (median-of-k + MAD outlier rejection absorb the noise), repeatedly
// failing configurations must be quarantined instead of poisoning the
// database, and the per-sample provenance must survive CSV round-trips.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "acic/common/stats.hpp"
#include "acic/core/predictor.hpp"
#include "acic/core/training.hpp"
#include "acic/io/workload.hpp"

namespace acic::core {
namespace {

std::vector<int> identity_order() {
  std::vector<int> order(static_cast<std::size_t>(kNumDims));
  std::iota(order.begin(), order.end(), 0);
  return order;
}

TrainingPlan small_plan() {
  TrainingPlan plan;
  plan.dim_order = identity_order();
  plan.top_dims = 8;
  plan.max_samples = 60;
  plan.seed = 11;
  return plan;
}

io::Workload probe_traits() {
  io::Workload w;
  w.num_processes = 64;
  w.num_io_processes = 64;
  w.interface = io::IoInterface::kMpiIo;
  w.iterations = 4;
  w.data_size = 64.0 * MiB;
  w.request_size = 4.0 * MiB;
  w.op = io::OpMix::kWrite;
  w.collective = true;
  w.file_shared = true;
  return w;
}

TEST(SweepResilienceTest, LegacyDefaultsReproduceTheSingleShotSweep) {
  TrainingDatabase legacy, resilient;
  auto plan = small_plan();
  plan.max_samples = 20;  // determinism probe, not a model-quality sweep
  collect_training_data(legacy, plan);
  auto armed = plan;  // defaults: repeats=1, attempts=1, no faults
  armed.resilience = SweepResilience{};
  collect_training_data(resilient, armed);
  ASSERT_EQ(legacy.size(), resilient.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(legacy.samples()[i].time, resilient.samples()[i].time);
    EXPECT_EQ(legacy.samples()[i].cost, resilient.samples()[i].cost);
    EXPECT_EQ(legacy.samples()[i].repeats, 1);
    EXPECT_EQ(legacy.samples()[i].rejected, 0);
  }
}

// The acceptance regression: a sweep where a sizeable share of the runs
// are brownout/straggler-corrupted must still teach CART the same best
// configuration as the fault-free sweep — median-of-3 with MAD rejection
// keeps the labels honest.
TEST(SweepResilienceTest, CorruptedSweepAgreesWithCleanSweepOnTopConfig) {
  TrainingDatabase clean;
  const auto plan = small_plan();
  const auto clean_stats = collect_training_data(clean, plan);
  EXPECT_EQ(clean_stats.failed_runs, 0u);

  TrainingDatabase noisy;
  auto chaos = plan;
  chaos.resilience.repeats = 3;
  chaos.resilience.max_attempts = 2;
  chaos.resilience.fault_model.brownouts_per_hour = 20.0;
  chaos.resilience.fault_model.brownout_fraction = 0.3;
  chaos.resilience.fault_model.stragglers_per_hour = 10.0;
  chaos.resilience.retry.enabled = true;
  chaos.resilience.retry.request_timeout = 10.0;
  chaos.resilience.retry.max_attempts = 3;
  chaos.resilience.watchdog_sim_time = 7200.0;
  const auto noisy_stats = collect_training_data(noisy, chaos);

  ASSERT_GT(noisy.size(), 0u);
  // The chaos sweep actually exercised the resilience machinery.
  std::size_t multi_repeat = 0;
  for (const auto& s : noisy.samples()) {
    EXPECT_GE(s.repeats, 1);
    if (s.repeats > 1) ++multi_repeat;
  }
  EXPECT_GT(multi_repeat, 0u);
  // The chaos runs cost more machine time than the clean ones (three
  // repeats plus fault stalls) — a cheap sanity check that the fault
  // model was actually armed.
  EXPECT_GT(noisy_stats.runs, clean_stats.runs);

  const Acic clean_model(clean, Objective::kPerformance);
  const Acic noisy_model(noisy, Objective::kPerformance);
  const auto traits = probe_traits();
  const auto clean_top = clean_model.recommend(traits, 1);
  const auto noisy_top = noisy_model.recommend(traits, 1);
  ASSERT_EQ(clean_top.size(), 1u);
  ASSERT_EQ(noisy_top.size(), 1u);
  EXPECT_EQ(clean_top[0].config.label(), noisy_top[0].config.label());
}

// A configuration whose every attempt fails must be quarantined — the
// sweep completes, reports it, and never writes a poisoned sample.
TEST(SweepResilienceTest, UnmeasurablePointsAreQuarantinedNotInserted) {
  TrainingDatabase db;
  TrainingPlan plan;
  plan.dim_order = identity_order();
  plan.top_dims = 6;
  plan.max_samples = 6;
  plan.seed = 5;
  plan.resilience.repeats = 1;
  plan.resilience.max_attempts = 2;
  plan.resilience.fault_model.outages_per_hour = 1800.0;
  plan.resilience.fault_model.permanent_loss_probability = 1.0;
  plan.resilience.watchdog_sim_time = 120.0;  // fail fast, no retries
  const auto stats = collect_training_data(db, plan);
  EXPECT_GT(stats.failed_runs, 0u);
  EXPECT_GT(stats.quarantined, 0u);
  EXPECT_EQ(stats.quarantined_labels.size(), stats.quarantined);
  EXPECT_EQ(db.size(), 0u);  // nothing usable was measured
  for (const auto& label : stats.quarantined_labels) {
    EXPECT_NE(label.find('|'), std::string::npos) << label;
  }
}

TEST(TrainingProvenance, SurvivesCsvRoundTrip) {
  TrainingDatabase db;
  TrainingSample s;
  s.point = default_point();
  s.time = 50.0;
  s.cost = 5.0;
  s.baseline_time = 100.0;
  s.baseline_cost = 10.0;
  s.repeats = 3;
  s.rejected = 1;
  s.retries = 2;
  db.insert(s);
  const auto loaded = TrainingDatabase::from_csv(db.to_csv());
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.samples()[0].repeats, 3);
  EXPECT_EQ(loaded.samples()[0].rejected, 1);
  EXPECT_EQ(loaded.samples()[0].retries, 2);
}

TEST(TrainingProvenance, LegacyCsvWithoutProvenanceStillLoads) {
  TrainingDatabase db;
  TrainingSample s;
  s.point = default_point();
  s.time = 50.0;
  s.cost = 5.0;
  s.baseline_time = 100.0;
  s.baseline_cost = 10.0;
  db.insert(s);
  auto table = db.to_csv();
  // Strip the three provenance columns to fake a pre-upgrade file.
  table.header.resize(table.header.size() - 3);
  for (auto& row : table.rows) row.resize(row.size() - 3);
  const auto loaded = TrainingDatabase::from_csv(table);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.samples()[0].repeats, 1);
  EXPECT_EQ(loaded.samples()[0].rejected, 0);
  EXPECT_EQ(loaded.samples()[0].retries, 0);
  EXPECT_DOUBLE_EQ(loaded.samples()[0].time, 50.0);
}

TEST(MadStats, MedianAbsoluteDeviation) {
  EXPECT_DOUBLE_EQ(mad_of({}), 0.0);
  EXPECT_DOUBLE_EQ(mad_of({3.0}), 0.0);
  EXPECT_DOUBLE_EQ(mad_of({1.0, 1.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(mad_of({1.0, 2.0, 3.0}), 1.0);
  EXPECT_DOUBLE_EQ(mad_of({1.0, 2.0, 100.0}), 1.0);  // robust to the spike
}

TEST(MadStats, RejectOutliersDropsTheSpikeOnly) {
  const auto f = reject_outliers({10.0, 10.2, 9.9, 10.1, 50.0});
  ASSERT_EQ(f.keep.size(), 5u);
  EXPECT_EQ(f.rejected, 1u);
  EXPECT_TRUE(f.keep[0] && f.keep[1] && f.keep[2] && f.keep[3]);
  EXPECT_FALSE(f.keep[4]);
}

TEST(MadStats, ZeroMadKeepsEverything) {
  const auto f = reject_outliers({5.0, 5.0, 5.0, 5.0});
  EXPECT_EQ(f.rejected, 0u);
  for (const bool k : f.keep) EXPECT_TRUE(k);
}

}  // namespace
}  // namespace acic::core
