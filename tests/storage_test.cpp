// Tests for the storage device catalogue and RAID-0 aggregation model.
#include <gtest/gtest.h>

#include "acic/common/error.hpp"
#include "acic/storage/device.hpp"

namespace acic::storage {
namespace {

TEST(DeviceCatalogue, RelativeOrderingMatchesEc2Measurements) {
  const auto& eph = device_spec(DeviceType::kEphemeral);
  const auto& ebs = device_spec(DeviceType::kEbs);
  const auto& ssd = device_spec(DeviceType::kSsd);
  // A local spindle out-streams a standard EBS volume.
  EXPECT_GT(eph.write_bandwidth, ebs.write_bandwidth);
  EXPECT_GT(eph.read_bandwidth, ebs.read_bandwidth);
  // SSD dominates both on bandwidth and especially on latency.
  EXPECT_GT(ssd.read_bandwidth, eph.read_bandwidth);
  EXPECT_LT(ssd.per_op_latency, eph.per_op_latency / 10.0);
  // Only EBS rides the instance NIC.
  EXPECT_TRUE(ebs.network_attached);
  EXPECT_FALSE(eph.network_attached);
  EXPECT_FALSE(ssd.network_attached);
}

TEST(DeviceCatalogue, StringRoundTrip) {
  EXPECT_EQ(device_type_from_string("ephemeral"), DeviceType::kEphemeral);
  EXPECT_EQ(device_type_from_string("eph"), DeviceType::kEphemeral);
  EXPECT_EQ(device_type_from_string("EBS"), DeviceType::kEbs);
  EXPECT_EQ(device_type_from_string("ssd"), DeviceType::kSsd);
  EXPECT_THROW(device_type_from_string("floppy"), Error);
  EXPECT_STREQ(to_string(DeviceType::kEbs), "EBS");
}

TEST(Raid0, BandwidthScalesNearLinearly) {
  const auto& eph = device_spec(DeviceType::kEphemeral);
  const double one = raid0_bandwidth(eph, 1, true);
  const double four = raid0_bandwidth(eph, 4, true);
  EXPECT_DOUBLE_EQ(one, eph.write_bandwidth);
  EXPECT_GT(four, 3.0 * one);
  EXPECT_LT(four, 4.0 * one);
}

TEST(Raid0, ReadAndWriteUseRespectiveBandwidths) {
  const auto& eph = device_spec(DeviceType::kEphemeral);
  EXPECT_DOUBLE_EQ(raid0_bandwidth(eph, 1, false), eph.read_bandwidth);
  EXPECT_DOUBLE_EQ(raid0_bandwidth(eph, 1, true), eph.write_bandwidth);
}

TEST(Raid0, LatencyGrowsMildlyWithMembers) {
  const auto& eph = device_spec(DeviceType::kEphemeral);
  EXPECT_DOUBLE_EQ(raid0_latency(eph, 1), eph.per_op_latency);
  EXPECT_GT(raid0_latency(eph, 4), eph.per_op_latency);
  EXPECT_LT(raid0_latency(eph, 4), 2.0 * eph.per_op_latency);
}

TEST(Raid0, RejectsNonPositiveMemberCount) {
  const auto& eph = device_spec(DeviceType::kEphemeral);
  EXPECT_THROW(raid0_bandwidth(eph, 0, true), Error);
  EXPECT_THROW(raid0_latency(eph, 0), Error);
}

// Property sweep: aggregate bandwidth is monotone in member count for all
// device types, both directions.
class RaidMonotoneTest
    : public ::testing::TestWithParam<std::tuple<DeviceType, bool>> {};

TEST_P(RaidMonotoneTest, MonotoneInMembers) {
  const auto [type, for_write] = GetParam();
  const auto& spec = device_spec(type);
  double prev = 0.0;
  for (int members = 1; members <= 8; ++members) {
    const double bw = raid0_bandwidth(spec, members, for_write);
    EXPECT_GT(bw, prev);
    prev = bw;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDevices, RaidMonotoneTest,
    ::testing::Combine(::testing::Values(DeviceType::kEphemeral,
                                         DeviceType::kEbs, DeviceType::kSsd),
                       ::testing::Bool()));

}  // namespace
}  // namespace acic::storage
