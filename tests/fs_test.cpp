// Tests for the NFS and PVFS2 file-system models — the behavioural
// contrasts here are what the ACIC learning problem feeds on.
#include <gtest/gtest.h>

#include <memory>

#include "acic/fs/filesystem.hpp"
#include "acic/fs/pvfs2.hpp"

namespace acic::fs {
namespace {

cloud::ClusterModel::Options opts(int np, cloud::IoConfig cfg) {
  cloud::ClusterModel::Options o;
  o.num_processes = np;
  o.config = cfg;
  o.jitter_sigma = 0.0;
  return o;
}

cloud::IoConfig pvfs_cfg(int servers, Bytes stripe,
                         cloud::Placement placement =
                             cloud::Placement::kDedicated) {
  cloud::IoConfig c;
  c.fs = cloud::FileSystemType::kPvfs2;
  c.device = storage::DeviceType::kEphemeral;
  c.io_servers = servers;
  c.placement = placement;
  c.stripe_size = stripe;
  return c;
}

sim::Task do_request(FileSystem& fs, int rank, Bytes bytes, bool write,
                     bool shared, sim::Simulator& s, SimTime& done) {
  co_await fs.request(rank, bytes, write, shared);
  done = s.now();
}

SimTime time_one_request(cloud::IoConfig cfg, int rank, Bytes bytes,
                         bool write, bool shared) {
  sim::Simulator s;
  cloud::ClusterModel cluster(s, opts(32, cfg));
  auto fs = make_filesystem(cluster);
  SimTime done = -1.0;
  s.spawn(do_request(*fs, rank, bytes, write, shared, s, done));
  s.run();
  return done;
}

TEST(Factory, SelectsModelFromConfig) {
  sim::Simulator s;
  cloud::ClusterModel nfs_cluster(s, opts(16, cloud::IoConfig::baseline()));
  EXPECT_STREQ(make_filesystem(nfs_cluster)->name(), "NFS");
  sim::Simulator s2;
  cloud::ClusterModel pvfs_cluster(s2,
                                   opts(16, pvfs_cfg(2, 4.0 * MiB)));
  EXPECT_STREQ(make_filesystem(pvfs_cluster)->name(), "PVFS2");
}

TEST(NfsModelTest, SmallRequestsBeatPvfs2) {
  // Paper §5.6 obs. 4: NFS wins for small POSIX I/O (lower per-op cost,
  // write-back caching).
  const Bytes small = 64.0 * KiB;
  const SimTime nfs = time_one_request(cloud::IoConfig::baseline(), 1, small,
                                       /*write=*/true, /*shared=*/false);
  const SimTime pvfs = time_one_request(pvfs_cfg(1, 64.0 * KiB), 1, small,
                                        /*write=*/true, /*shared=*/false);
  EXPECT_LT(nfs, pvfs);
}

TEST(NfsModelTest, SharedWritePenaltyApplies) {
  const Bytes b = 1.0 * MiB;
  const SimTime shared = time_one_request(cloud::IoConfig::baseline(), 1, b,
                                          true, /*shared=*/true);
  const SimTime priv = time_one_request(cloud::IoConfig::baseline(), 1, b,
                                        true, /*shared=*/false);
  EXPECT_GT(shared, priv);
}

TEST(NfsModelTest, WriteBackHidesSeekButReadPaysIt) {
  const Bytes b = 256.0 * KiB;
  const SimTime w = time_one_request(cloud::IoConfig::baseline(), 1, b, true,
                                     false);
  const SimTime r = time_one_request(cloud::IoConfig::baseline(), 1, b, false,
                                     false);
  EXPECT_LT(w, r);
}

TEST(Pvfs2ModelTest, ServersTouchedFollowsStriping) {
  sim::Simulator s;
  cloud::ClusterModel cluster(s, opts(16, pvfs_cfg(4, 4.0 * MiB)));
  Pvfs2Model fs(cluster, FsTuning{});
  EXPECT_EQ(fs.servers_touched(1.0 * MiB), 1);   // one stripe
  EXPECT_EQ(fs.servers_touched(8.0 * MiB), 2);   // two stripes
  EXPECT_EQ(fs.servers_touched(64.0 * MiB), 4);  // capped at server count
}

TEST(Pvfs2ModelTest, LargeRequestScalesWithServers) {
  // Paper §5.6 obs. 2: more PVFS2 servers -> better large-transfer times.
  const Bytes big = 512.0 * MiB;
  const SimTime one = time_one_request(pvfs_cfg(1, 4.0 * MiB), 1, big, true,
                                       true);
  const SimTime four = time_one_request(pvfs_cfg(4, 4.0 * MiB), 1, big, true,
                                        true);
  EXPECT_GT(one, 2.5 * four);
}

TEST(Pvfs2ModelTest, TinyStripeCostsCpuOnLargeRequests) {
  const Bytes big = 512.0 * MiB;
  const SimTime coarse = time_one_request(pvfs_cfg(4, 4.0 * MiB), 1, big,
                                          true, true);
  const SimTime fine = time_one_request(pvfs_cfg(4, 64.0 * KiB), 1, big,
                                        true, true);
  EXPECT_GT(fine, coarse);  // 8192 stripes of splitting work vs 128
}

TEST(Pvfs2ModelTest, SmallStripeSpreadsMediumRequests) {
  // A 256 KiB request is one 4 MiB stripe (one server) but four 64 KiB
  // stripes (all four servers) — the fine stripe wins on parallelism.
  sim::Simulator s;
  cloud::ClusterModel cluster(s, opts(16, pvfs_cfg(4, 64.0 * KiB)));
  Pvfs2Model fine(cluster, FsTuning{});
  EXPECT_EQ(fine.servers_touched(256.0 * KiB), 4);
  sim::Simulator s2;
  cloud::ClusterModel cluster2(s2, opts(16, pvfs_cfg(4, 4.0 * MiB)));
  Pvfs2Model coarse(cluster2, FsTuning{});
  EXPECT_EQ(coarse.servers_touched(256.0 * KiB), 1);
}

TEST(Pvfs2ModelTest, ColocatedWriterSkipsNetwork) {
  // Part-time server on the writer's own instance: local path is faster.
  const Bytes b = 64.0 * MiB;
  const SimTime local = time_one_request(
      pvfs_cfg(1, 4.0 * MiB, cloud::Placement::kPartTime), 0, b, true, true);
  const SimTime remote = time_one_request(
      pvfs_cfg(1, 4.0 * MiB, cloud::Placement::kDedicated), 0, b, true, true);
  EXPECT_LT(local, remote);
}

TEST(FileSystemStats, RequestsAndBytesAccounted) {
  sim::Simulator s;
  cloud::ClusterModel cluster(s, opts(16, pvfs_cfg(2, 4.0 * MiB)));
  auto fs = make_filesystem(cluster);
  SimTime done = -1;
  s.spawn(do_request(*fs, 0, 10.0 * MiB, true, true, s, done));
  s.run();
  EXPECT_EQ(fs->requests_served(), 1u);
  EXPECT_DOUBLE_EQ(fs->bytes_moved(), 10.0 * MiB);
}

sim::Task open_close(FileSystem& fs, int rank) {
  co_await fs.open_file(rank);
  co_await fs.close_file(rank);
}

TEST(FileSystemStats, MetadataOpsCompleteForManyRanks) {
  sim::Simulator s;
  cloud::ClusterModel cluster(s, opts(64, pvfs_cfg(4, 4.0 * MiB)));
  auto fs = make_filesystem(cluster);
  for (int r = 0; r < 64; ++r) s.spawn(open_close(*fs, r));
  s.run();
  EXPECT_TRUE(s.all_processes_done());
  // 128 serialized MDS ops at 0.5 ms >= 64 ms of metadata time.
  EXPECT_GT(s.now(), 0.06);
}

// Property: EBS requests are never faster than the equivalent ephemeral
// request (the EBS path transits the server NIC twice and the volume is
// slower), across request sizes and ops.
class EbsVsEphemeralTest
    : public ::testing::TestWithParam<std::tuple<double, bool>> {};

TEST_P(EbsVsEphemeralTest, EphemeralAtLeastAsFast) {
  const auto [mib, write] = GetParam();
  auto eph = pvfs_cfg(2, 4.0 * MiB);
  auto ebs = eph;
  ebs.device = storage::DeviceType::kEbs;
  const SimTime t_eph = time_one_request(eph, 1, mib * MiB, write, true);
  const SimTime t_ebs = time_one_request(ebs, 1, mib * MiB, write, true);
  EXPECT_LE(t_eph, t_ebs * 1.001);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndOps, EbsVsEphemeralTest,
    ::testing::Combine(::testing::Values(0.25, 4.0, 64.0, 512.0),
                       ::testing::Bool()));

}  // namespace
}  // namespace acic::fs
