// Loopback tests for the epoll front end (src/acic/net/server.*): echo
// round-trips, pipelining, shed-under-load, idle and slow-loris
// disconnects, strict-framing rejections, half-close semantics, the
// connection cap, backpressure, and graceful drain.  Every server binds
// port 0 (ephemeral) so tests never collide; handlers are lambdas, so
// no training or simulation runs here.  The concurrency-heavy cases are
// in the tsan preset's filter (tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "acic/net/client.hpp"
#include "acic/net/frame.hpp"
#include "acic/net/server.hpp"
#include "acic/obs/metrics.hpp"

namespace acic::net {
namespace {

/// Owns a Server plus the thread running its event loop; drains on
/// destruction so a failing assertion can't leak a live loop.
struct TestServer {
  TestServer(ServerOptions options, Handler handler)
      : server(std::move(options), std::move(handler)),
        thread([this] { server.run(); }) {}
  ~TestServer() { stop(); }
  void stop() {
    server.request_drain();
    if (thread.joinable()) thread.join();
  }
  std::uint16_t port() { return server.port(); }

  Server server;
  std::thread thread;
};

Handler echo_handler() {
  return [](const Request& req) { return "ok echo " + req.line + "\n"; };
}

TEST(NetServer, EchoRoundTrip) {
  TestServer ts({}, echo_handler());
  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", ts.port(), 2000))
      << client.last_error();
  const auto resp = client.call("hello", 2000);
  ASSERT_TRUE(resp.has_value()) << client.last_error();
  EXPECT_EQ(*resp, "ok echo hello\n");
  // The connection stays usable for more requests.
  const auto again = client.call("again", 2000);
  ASSERT_TRUE(again.has_value()) << client.last_error();
  EXPECT_EQ(*again, "ok echo again\n");
}

TEST(NetServer, PipelinedRequestsAllAnswered) {
  TestServer ts({}, echo_handler());
  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", ts.port(), 2000));
  constexpr int kCount = 32;
  for (int i = 0; i < kCount; ++i) {
    ASSERT_TRUE(client.send_request("req" + std::to_string(i), 2000));
  }
  int answered = 0;
  for (int i = 0; i < kCount; ++i) {
    const auto resp = client.read_response(5000);
    ASSERT_TRUE(resp.has_value()) << client.last_error();
    EXPECT_EQ(resp->rfind("ok echo req", 0), 0u) << *resp;
    ++answered;
  }
  EXPECT_EQ(answered, kCount);
}

// Run under the tsan preset: many client threads against one server;
// every request must get exactly its own response (the handler echoes
// the request text back, so mixups are detectable).
TEST(NetServer, ConcurrentClientsGetTheirOwnResponses) {
  TestServer ts({}, echo_handler());
  constexpr int kThreads = 8;
  constexpr int kRequests = 16;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      BlockingClient client;
      if (!client.connect("127.0.0.1", ts.port(), 5000)) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kRequests; ++i) {
        const std::string tag =
            "t" + std::to_string(t) + "r" + std::to_string(i);
        const auto resp = client.call(tag, 5000);
        if (!resp || *resp != "ok echo " + tag + "\n") {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(NetServer, FullWorkQueueShedsWithTypedResponse) {
  ServerOptions options;
  options.workers = 1;
  options.max_queue_depth = 1;
  TestServer ts(options, [](const Request& req) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    return "ok slow " + req.line + "\n";
  });
  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", ts.port(), 2000));
  constexpr int kCount = 8;
  for (int i = 0; i < kCount; ++i) {
    ASSERT_TRUE(client.send_request("burst" + std::to_string(i), 2000));
  }
  int ok = 0, shed = 0;
  for (int i = 0; i < kCount; ++i) {
    const auto resp = client.read_response(5000);
    ASSERT_TRUE(resp.has_value()) << client.last_error();
    if (resp->rfind("ok", 0) == 0) {
      ++ok;
    } else if (resp->rfind("shed", 0) == 0) {
      ++shed;
      EXPECT_NE(resp->find("retry later"), std::string::npos) << *resp;
    } else {
      ADD_FAILURE() << "unexpected response type: " << *resp;
    }
  }
  // One worker, queue depth one, zero-delay burst: most of the burst
  // must shed, but every single request got a typed answer.
  EXPECT_EQ(ok + shed, kCount);
  EXPECT_GE(shed, 1);
  EXPECT_GE(ok, 1);
  const auto snap = obs::MetricsRegistry::global().snapshot();
  const auto* count = snap.counter("net.queue_shed");
  ASSERT_NE(count, nullptr);
  EXPECT_GT(*count, 0.0);
}

TEST(NetServer, IdleConnectionIsDisconnected) {
  ServerOptions options;
  options.idle_timeout_ms = 100;
  TestServer ts(options, echo_handler());
  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", ts.port(), 2000));
  // Send nothing at all: the server must reclaim the slot.
  const auto resp = client.read_response(3000);
  EXPECT_FALSE(resp.has_value());
  EXPECT_EQ(client.last_error(), "eof");
}

// Slow loris: a frame that never completes.  The deadline is on frame
// *assembly*, so trickling bytes does not reset it.
TEST(NetServer, MidFrameStallIsDisconnected) {
  ServerOptions options;
  options.idle_timeout_ms = 100;
  TestServer ts(options, echo_handler());
  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", ts.port(), 2000));
  const std::string frame = encode_frame(std::string(1024, 'x'));
  ASSERT_TRUE(client.send_raw(frame.substr(0, frame.size() / 2)));
  const auto resp = client.read_response(3000);
  EXPECT_FALSE(resp.has_value());
  EXPECT_EQ(client.last_error(), "eof");
}

TEST(NetServer, GarbageBytesGetTypedErrorThenClose) {
  TestServer ts({}, echo_handler());
  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", ts.port(), 2000));
  ASSERT_TRUE(client.send_raw("GET / HTTP/1.1\r\nHost: x\r\n\r\n"));
  const auto resp = client.read_response(3000);
  ASSERT_TRUE(resp.has_value()) << client.last_error();
  EXPECT_EQ(resp->rfind("error", 0), 0u) << *resp;
  EXPECT_NE(resp->find("magic"), std::string::npos) << *resp;
  // After the typed error the server closes; nothing else arrives.
  const auto next = client.read_response(3000);
  EXPECT_FALSE(next.has_value());
  EXPECT_EQ(client.last_error(), "eof");
  const auto snap = obs::MetricsRegistry::global().snapshot();
  const auto* count = snap.counter("net.protocol_errors");
  ASSERT_NE(count, nullptr);
  EXPECT_GT(*count, 0.0);
}

TEST(NetServer, OversizedFrameIsRejectedFromItsHeader) {
  ServerOptions options;
  options.max_frame_bytes = 64;
  TestServer ts(options, echo_handler());
  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", ts.port(), 2000));
  // Encode under a roomier client-side cap so the client can even build
  // the frame the server must refuse.
  ASSERT_TRUE(client.send_raw(encode_frame(std::string(100, 'y'), 1024)));
  const auto resp = client.read_response(3000);
  ASSERT_TRUE(resp.has_value()) << client.last_error();
  EXPECT_EQ(resp->rfind("error", 0), 0u) << *resp;
  EXPECT_NE(resp->find("exceeds the cap"), std::string::npos) << *resp;
  const auto next = client.read_response(3000);
  EXPECT_FALSE(next.has_value());
}

// shutdown(SHUT_WR) after sending: the read side is intact, so the
// response must still be delivered before the server closes.
TEST(NetServer, HalfClosedPeerStillReceivesItsResponse) {
  TestServer ts({}, echo_handler());
  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", ts.port(), 2000));
  ASSERT_TRUE(client.send_request("parting words", 2000));
  client.half_close();
  const auto resp = client.read_response(3000);
  ASSERT_TRUE(resp.has_value()) << client.last_error();
  EXPECT_EQ(*resp, "ok echo parting words\n");
  const auto next = client.read_response(3000);
  EXPECT_FALSE(next.has_value());
  EXPECT_EQ(client.last_error(), "eof");
}

TEST(NetServer, ConnectionCapRejectsWithTypedError) {
  ServerOptions options;
  options.max_connections = 1;
  TestServer ts(options, echo_handler());
  BlockingClient first;
  ASSERT_TRUE(first.connect("127.0.0.1", ts.port(), 2000));
  // Prove the first slot is really established server-side.
  ASSERT_TRUE(first.call("hold", 2000).has_value());
  BlockingClient second;
  ASSERT_TRUE(second.connect("127.0.0.1", ts.port(), 2000));
  const auto resp = second.read_response(3000);
  if (resp.has_value()) {
    EXPECT_EQ(resp->rfind("error", 0), 0u) << *resp;
    EXPECT_NE(resp->find("capacity"), std::string::npos) << *resp;
  } else {
    // The reject frame is best-effort; a straight close is acceptable.
    EXPECT_EQ(second.last_error(), "eof");
  }
  // The occupied slot is unaffected.
  const auto still = first.call("still here", 2000);
  ASSERT_TRUE(still.has_value()) << first.last_error();
  EXPECT_EQ(*still, "ok echo still here\n");
}

// Backpressure: a tiny output watermark plus a client that stops
// reading.  The server must pause reads instead of buffering without
// bound, then finish everything once the client drains.
TEST(NetServer, BackpressurePausesAndRecovers) {
  ServerOptions options;
  options.max_output_bytes = 1024;
  options.max_pipeline = 4;
  const std::string big(2000, 'z');
  TestServer ts(options,
                [&big](const Request&) { return "ok " + big + "\n"; });
  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", ts.port(), 2000));
  constexpr int kCount = 16;
  for (int i = 0; i < kCount; ++i) {
    ASSERT_TRUE(client.send_request("r" + std::to_string(i), 2000))
        << client.last_error();
  }
  // Let responses pile into the watermark before reading any.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  for (int i = 0; i < kCount; ++i) {
    const auto resp = client.read_response(5000);
    ASSERT_TRUE(resp.has_value()) << client.last_error() << " at " << i;
    EXPECT_EQ(resp->rfind("ok ", 0), 0u);
  }
}

// Drain completes in-flight work: the response outlives the listener.
TEST(NetServer, DrainDeliversInFlightResponsesThenStops) {
  ServerOptions options;
  options.drain_timeout_ms = 5000;
  TestServer ts(options, [](const Request& req) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    return "ok eventually " + req.line + "\n";
  });
  const auto port = ts.port();
  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", port, 2000));
  ASSERT_TRUE(client.send_request("in flight", 2000));
  // Give the loop a moment to dispatch, then pull the plug.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ts.server.request_drain();
  const auto resp = client.read_response(5000);
  ASSERT_TRUE(resp.has_value()) << client.last_error();
  EXPECT_EQ(*resp, "ok eventually in flight\n");
  // run() returns once the drain finishes.
  ts.thread.join();
  // The listener is gone: new connections are refused.
  BlockingClient late;
  EXPECT_FALSE(late.connect("127.0.0.1", port, 500));
}

// A handler that outlives the drain budget: the straggler's connection
// must be force-closed at the deadline.  (run() itself still joins the
// worker pool before returning — a thread stuck inside the handler
// cannot be killed safely; bounding handler *runtime* is the service
// deadline's job, bounding *connection* lifetime is the drain's.)
TEST(NetServer, DrainDeadlineForceClosesStragglers) {
  ServerOptions options;
  options.drain_timeout_ms = 100;
  TestServer ts(options, [](const Request& req) {
    std::this_thread::sleep_for(std::chrono::milliseconds(600));
    return "ok late " + req.line + "\n";
  });
  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", ts.port(), 2000));
  ASSERT_TRUE(client.send_request("too slow", 2000));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto drain_started = std::chrono::steady_clock::now();
  ts.server.request_drain();
  // The client is cut loose at the 100ms deadline, long before the
  // 600ms handler would have answered.
  const auto resp = client.read_response(2000);
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - drain_started)
                          .count();
  EXPECT_FALSE(resp.has_value());
  EXPECT_EQ(client.last_error(), "eof");
  EXPECT_LT(waited, 500) << "force-close did not respect the deadline";
  ts.thread.join();
  const auto snap = obs::MetricsRegistry::global().snapshot();
  const auto* forced = snap.counter("net.drain_forced_closes");
  ASSERT_NE(forced, nullptr);
  EXPECT_GT(*forced, 0.0);
}

TEST(NetServer, EphemeralPortIsResolved) {
  TestServer ts({}, echo_handler());
  EXPECT_NE(ts.port(), 0);
}

}  // namespace
}  // namespace acic::net
