// End-to-end tests for spot-instance preemption as a first-class fault:
// checkpoint/restart recovery through the configured file system, seeded
// replacement-server acquisition, restart-budget exhaustion, and spot
// billing.  The overarching contract mirrors the outage chaos suite:
// however hostile the reclamation schedule, every run terminates with a
// graded outcome under the watchdog — never a hang or a throw.
#include <gtest/gtest.h>

#include "acic/cloud/cluster.hpp"
#include "acic/cloud/ioconfig.hpp"
#include "acic/cloud/pricing.hpp"
#include "acic/io/checkpoint.hpp"
#include "acic/io/runner.hpp"
#include "acic/io/workload.hpp"

namespace acic::io {
namespace {

Workload spot_workload(int np = 16) {
  Workload w;
  w.name = "spot-probe";
  w.num_processes = np;
  w.num_io_processes = np;
  w.interface = IoInterface::kMpiIo;
  w.iterations = 4;
  // Long enough (~50 s clean on the 4-server array) that a reclamation
  // schedule at spot rates actually lands mid-run; a too-short job sails
  // through its notice windows and finishes before any reclaim.
  w.data_size = 512.0 * MiB;
  w.request_size = 1.0 * MiB;
  w.op = OpMix::kWrite;
  w.collective = true;
  w.file_shared = true;
  return w;
}

cloud::IoConfig pvfs4() {
  cloud::IoConfig c;
  c.fs = cloud::FileSystemType::kPvfs2;
  c.device = storage::DeviceType::kEphemeral;
  c.io_servers = 4;
  c.placement = cloud::Placement::kDedicated;
  c.stripe_size = 1.0 * MiB;
  return c;
}

/// An aggressive reclamation schedule: roughly one preemption per
/// server-minute with a short notice, plus periodic checkpoints small
/// enough to finish inside the notice window.
RunOptions spot_chaos(std::uint64_t seed) {
  RunOptions o;
  o.seed = seed;
  o.fault_model.preemptions_per_hour = 60.0;
  o.fault_model.preemption_notice = 10.0;
  o.checkpoint.enabled = true;
  o.checkpoint.interval = 15.0;
  o.checkpoint.bytes = 8.0 * MiB;
  o.checkpoint.replacement_delay_min = 5.0;
  o.checkpoint.replacement_delay_max = 20.0;
  o.watchdog_sim_time = 4.0 * kHour;
  return o;
}

// The tentpole contract: every preemption chaos run terminates graded
// under the watchdog, with consistent restart accounting.
TEST(PreemptionTest, PreemptionChaosAlwaysTerminatesGraded) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto r = run_workload(spot_workload(), pvfs4(), spot_chaos(seed));
    EXPECT_TRUE(r.outcome == RunOutcome::kOk ||
                r.outcome == RunOutcome::kDegraded ||
                r.outcome == RunOutcome::kFailed);
    // A replacement server implies an observed reclaim, never the
    // other way around (reclaims after the app finished don't restart).
    EXPECT_LE(r.restarts, r.preemptions);
    if (r.restarts > 0) {
      EXPECT_NE(r.outcome, RunOutcome::kOk);
    }
    // Lost work only ever comes from restarts.
    if (r.restarts == 0) {
      EXPECT_DOUBLE_EQ(r.lost_sim_time, 0.0);
    }
    EXPECT_GT(r.total_time, 0.0);
  }
}

// A run that was preempted and recovered grades degraded — the timing is
// real but the cluster was not healthy — and carries full provenance:
// restarts, work replayed, checkpoint bytes dumped.
TEST(PreemptionTest, RestartedRunGradesDegradedWithProvenance) {
  // Seed 3's schedule preempts this job several times, and every reclaim
  // recovers within the default restart budget.
  const auto r = run_workload(spot_workload(), pvfs4(), spot_chaos(3));
  ASSERT_EQ(r.outcome, RunOutcome::kDegraded);
  EXPECT_GT(r.preemptions, 0u);
  EXPECT_GT(r.restarts, 0u);
  EXPECT_GT(r.lost_sim_time, 0.0);
  EXPECT_GT(r.checkpoint_bytes, 0.0);
  EXPECT_GT(r.total_time, 0.0);
}

// With a zero restart budget the first reclaim leaves the server dark
// forever; only the watchdog turns the stalled job into a graded
// failure instead of a hang.
TEST(PreemptionTest, ExhaustedRestartBudgetFailsViaWatchdog) {
  auto o = spot_chaos(3);
  o.checkpoint.max_restarts = 0;
  o.watchdog_sim_time = 1800.0;
  const auto r = run_workload(spot_workload(), pvfs4(), o);
  EXPECT_EQ(r.outcome, RunOutcome::kFailed);
  EXPECT_GT(r.preemptions, 0u);
  EXPECT_EQ(r.restarts, 0u);
}

// Periodic checkpointing on a fault-free cluster: the dumps compete with
// application I/O (total time grows) but the run stays clean, and no
// preemption statistics appear.
TEST(PreemptionTest, CheckpointingWithoutFaultsStaysClean) {
  RunOptions plain;
  plain.seed = 7;
  const auto base = run_workload(spot_workload(), pvfs4(), plain);

  RunOptions o;
  o.seed = 7;
  o.checkpoint.enabled = true;
  o.checkpoint.interval = 5.0;
  o.checkpoint.bytes = 64.0 * MiB;
  const auto r = run_workload(spot_workload(), pvfs4(), o);
  EXPECT_EQ(r.outcome, RunOutcome::kOk);
  EXPECT_EQ(r.preemptions, 0u);
  EXPECT_EQ(r.restarts, 0u);
  EXPECT_DOUBLE_EQ(r.lost_sim_time, 0.0);
  EXPECT_GT(r.checkpoint_bytes, 0.0);
  // Checkpoint I/O went through the same file system as the app's.
  EXPECT_GT(r.fs_bytes, base.fs_bytes);
  EXPECT_GT(r.total_time, base.total_time);
}

// Spot billing: a clean run at the default 35% spot factor costs 35% of
// its on-demand (equation 1) price; each restart adds a flat fee.
TEST(PreemptionTest, SpotPricingDiscountsAndChargesRestarts) {
  RunOptions plain;
  plain.seed = 7;
  const auto on_demand = run_workload(spot_workload(), pvfs4(), plain);

  RunOptions o;
  o.seed = 7;
  o.spot_pricing.emplace();
  const auto spot = run_workload(spot_workload(), pvfs4(), o);
  EXPECT_EQ(spot.outcome, RunOutcome::kOk);
  EXPECT_EQ(spot.total_time, on_demand.total_time);  // billing-only change
  EXPECT_NEAR(spot.cost, 0.35 * on_demand.cost, 1e-9);

  cloud::SpotPricing pricing;
  sim::Simulator s;
  cloud::ClusterModel::Options copts;
  copts.num_processes = 16;
  copts.config = pvfs4();
  copts.jitter_sigma = 0.0;
  cloud::ClusterModel cluster(s, copts);
  const auto clean = pricing.run_cost(cluster, kHour, 0);
  const auto restarted = pricing.run_cost(cluster, kHour, 3);
  EXPECT_NEAR(clean, 0.35 * cluster.cost_of(kHour), 1e-9);
  EXPECT_NEAR(restarted, clean + 3 * pricing.per_restart_cost, 1e-9);
}

TEST(PreemptionTest, CheckpointPolicyValidityRules) {
  CheckpointPolicy p;
  EXPECT_TRUE(p.valid());  // defaults are valid (and inert)
  p.interval = 0.0;
  EXPECT_FALSE(p.valid());
  p = {};
  p.bytes = -1.0;
  EXPECT_FALSE(p.valid());
  p = {};
  p.max_restarts = -1;
  EXPECT_FALSE(p.valid());
  p = {};
  p.replacement_delay_min = 50.0;
  p.replacement_delay_max = 10.0;  // inverted bounds
  EXPECT_FALSE(p.valid());
  p = {};
  p.replacement_delay_min = -1.0;
  EXPECT_FALSE(p.valid());
}

// Armed preemptions with checkpointing off still recover — the job
// restarts from scratch, so everything since t=0 is replayed — and the
// recovery leaves provenance but no checkpoint bytes.
TEST(PreemptionTest, RecoveryWithoutCheckpointingReplaysFromScratch) {
  // Seed 6 recovers within budget even from scratch; most seeds spiral
  // (each restart replays everything since t=0, so the exposure window
  // regrows) and exhaust the budget instead — exactly why checkpointing
  // exists.
  auto o = spot_chaos(6);
  o.checkpoint = CheckpointPolicy{};  // periodic dumps off
  o.checkpoint.replacement_delay_min = 5.0;
  o.checkpoint.replacement_delay_max = 20.0;
  o.watchdog_sim_time = 4.0 * kHour;
  const auto r = run_workload(spot_workload(), pvfs4(), o);
  ASSERT_EQ(r.outcome, RunOutcome::kDegraded);
  EXPECT_GT(r.restarts, 0u);
  EXPECT_GT(r.lost_sim_time, 0.0);
  EXPECT_DOUBLE_EQ(r.checkpoint_bytes, 0.0);
}

}  // namespace
}  // namespace acic::io
