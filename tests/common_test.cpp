// Unit tests for acic/common: units, rng, stats, table, csv.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <set>

#include "acic/common/csv.hpp"
#include "acic/common/error.hpp"
#include "acic/common/rng.hpp"
#include "acic/common/stats.hpp"
#include "acic/common/table.hpp"
#include "acic/common/units.hpp"

namespace acic {
namespace {

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1024), "1.00 KiB");
  EXPECT_EQ(format_bytes(6.4 * GiB), "6.40 GiB");
}

TEST(Units, FormatTime) {
  EXPECT_EQ(format_time(0.5e-3), "500.0 us");
  EXPECT_EQ(format_time(0.25), "250.0 ms");
  EXPECT_EQ(format_time(42.0), "42.00 s");
  EXPECT_EQ(format_time(125.0), "2m 5.0s");
  EXPECT_EQ(format_time(2.0 * kHour + 5.0 * kMinute), "2h 5m");
}

TEST(Units, FormatMoney) {
  EXPECT_EQ(format_money(1.234), "$1.23");
  EXPECT_EQ(format_money(12345.0), "$12.3K");
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(mb_per_s(100.0), 100.0 * MiB);
  EXPECT_DOUBLE_EQ(per_hour(3.6), 0.001);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformBoundsRespected) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(10.0, 20.0);
    EXPECT_GE(x, 10.0);
    EXPECT_LT(x, 20.0);
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng r(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, NormalMoments) {
  Rng r(11);
  OnlineStats s;
  for (int i = 0; i < 200000; ++i) s.add(r.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, LognormalJitterMedianNearOne) {
  Rng r(13);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(r.lognormal_jitter(0.2));
  EXPECT_NEAR(median_of(xs), 1.0, 0.02);
  for (double x : xs) EXPECT_GT(x, 0.0);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng r(5);
  auto p = r.permutation(50);
  std::set<std::size_t> s(p.begin(), p.end());
  EXPECT_EQ(s.size(), 50u);
  EXPECT_EQ(*s.rbegin(), 49u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(OnlineStatsTest, MeanVarianceMinMax) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStatsTest, MergeMatchesSequential) {
  Rng r(21);
  OnlineStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(-5, 5);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStatsTest, EmptyAndSingle) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(quantile({1, 2}, 0.5), 1.5);
}

TEST(StatsTest, SummaryFields) {
  auto s = summarize({4, 1, 3, 2, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
}

TEST(StatsTest, GeomeanAndMedian) {
  EXPECT_DOUBLE_EQ(geomean_of({1.0, 100.0}), 10.0);
  EXPECT_DOUBLE_EQ(median_of({5.0, 1.0, 9.0}), 5.0);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_THROW(geomean_of({1.0, 0.0}), Error);
}

TEST(TextTableTest, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "2.50"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 2.50  |"), std::string::npos);
}

TEST(TextTableTest, RejectsWrongArity) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TextTableTest, NumFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(CsvTest, RoundTrip) {
  CsvTable t;
  t.header = {"x", "y", "label"};
  t.rows = {{"1", "2.5", "foo"}, {"3", "4.5", "bar"}};
  const auto parsed = from_csv(to_csv(t));
  EXPECT_EQ(parsed.header, t.header);
  EXPECT_EQ(parsed.rows, t.rows);
}

TEST(CsvTest, RejectsSeparatorInCell) {
  CsvTable t;
  t.header = {"a"};
  t.rows = {{"has,comma"}};
  EXPECT_THROW(to_csv(t), Error);
}

TEST(CsvTest, FileRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "acic_csv_test.csv").string();
  CsvTable t;
  t.header = {"k", "v"};
  t.rows = {{"alpha", "1"}, {"beta", "2"}};
  write_csv_file(path, t);
  const auto parsed = read_csv_file(path);
  EXPECT_EQ(parsed.rows, t.rows);
  std::filesystem::remove(path);
}

TEST(CsvTest, ParseRejectsRaggedRows) {
  EXPECT_THROW(from_csv("a,b\n1\n"), Error);
}

TEST(ErrorTest, CheckMacroThrowsWithContext) {
  try {
    ACIC_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("custom 42"), std::string::npos);
  }
}

}  // namespace
}  // namespace acic
