#!/usr/bin/env python3
"""ACIC-specific lint gate.

Project rules that generic tooling (clang-tidy, compiler warnings) cannot
express, enforced over `src/acic`:

  raw-mutex        Raw std synchronisation primitives (std::mutex,
                   std::lock_guard, std::unique_lock, std::shared_mutex,
                   std::condition_variable, ...) are banned outside
                   src/acic/common/mutex.{hpp,cpp}.  Everything else must
                   use the annotated acic::Mutex layer so the Clang
                   thread-safety analysis sees every lock in the process.
                   (std::once_flag / std::call_once stay legal: they carry
                   no lock contract.)

  check-side-effect
                   The condition of ACIC_CHECK / ACIC_CHECK_MSG /
                   ACIC_EXPECTS / ACIC_ENSURES / ACIC_DCHECK /
                   ACIC_DCHECK_MSG must be side-effect free: no ++/--, no
                   assignment.  ACIC_DCHECK compiles away in release
                   builds, so a side effect in one changes behaviour
                   between build modes; the same text rule is applied to
                   the always-on macros for consistency.

  metric-registry  Every obs metric name must be (a) registered from
                   exactly one source site and (b) documented in the
                   README.md metrics table (between the
                   `<!-- metrics-table-begin -->` / `-end -->` markers).
                   Dynamically composed names (literal prefix/suffix +
                   runtime fragment) must have every literal fragment of
                   3+ characters appear in the table, where the runtime
                   part is written as a `<placeholder>`.

  raw-io           Naked ::write / ::pwrite / fsync / fdatasync calls are
                   banned outside src/acic/exec/store.cpp and
                   src/acic/common/ — durability lives in the store, and
                   a stray unsynced write elsewhere silently weakens the
                   crash-safety story.

  tsa-suppression  Every ACIC_NO_THREAD_SAFETY_ANALYSIS use must carry a
                   justification comment on the same line or within the
                   two preceding lines.

  plugin-dispatch  Substrate dispatch belongs to the plugin registry
                   (src/acic/plugin/, DESIGN.md §14): `switch`-style
                   `case FileSystemType::...` branching and direct
                   construction of concrete learners
                   (std::make_unique<CartTree/ForestRegressor/
                   KnnRegressor/LinearRegressor>) are banned outside the
                   plugin layer and the substrates' own homes (the
                   learner implementations in src/acic/ml/ construct
                   themselves inside their registration blocks).
                   Everything else resolves substrates by name through
                   acic::plugin so out-of-tree registrations are picked
                   up everywhere at once.

Engines: the primary engine is textual (comment/string-aware token
scanning) and needs nothing beyond the Python standard library.  When the
`clang.cindex` bindings are importable (`--mode libclang`, or `auto` when
available) the tool additionally parses each translation unit from
`compile_commands.json` to cross-check metric-registration sites at the
AST level; without the bindings `auto` silently stays textual, and
`libclang` says so on stderr and falls back.

Exit status: 0 = clean, 1 = findings, 2 = usage/configuration error.
Findings print as `path:line: rule-id: message` (compiler-style, so
editors and CI annotate them).
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from typing import Dict, List, Optional, Tuple

RULE_RAW_MUTEX = "raw-mutex"
RULE_CHECK_SIDE_EFFECT = "check-side-effect"
RULE_METRIC_REGISTRY = "metric-registry"
RULE_RAW_IO = "raw-io"
RULE_TSA_SUPPRESSION = "tsa-suppression"
RULE_PLUGIN_DISPATCH = "plugin-dispatch"

# Files (relative to the repo root, '/' separators) where raw std
# synchronisation primitives are legal: the annotated wrapper itself.
RAW_MUTEX_ALLOWED = {
    "src/acic/common/mutex.hpp",
    "src/acic/common/mutex.cpp",
}

# Files allowed to issue naked write/fsync syscalls.
RAW_IO_ALLOWED_FILES = {"src/acic/exec/store.cpp"}
RAW_IO_ALLOWED_DIRS = ("src/acic/common/",)

# Directories where substrate dispatch / concrete-learner construction is
# legal: the registry layer itself and the learner implementations (each
# constructs itself inside its ACIC_REGISTER_PLUGIN block).
PLUGIN_DISPATCH_ALLOWED_DIRS = ("src/acic/plugin/", "src/acic/ml/")

# `case FileSystemType::kNfs:`-style enum dispatch — the pattern the
# registry refactor removed; a new one means a substrate axis is being
# rewired around the plugin layer.
FS_SWITCH_DISPATCH = re.compile(r"\bcase\s+(?:cloud\s*::\s*)?FileSystemType\s*::")

# Direct construction of a concrete learner outside its home.
LEARNER_CONSTRUCTION = re.compile(
    r"std\s*::\s*make_unique\s*<\s*(?:acic\s*::\s*)?(?:ml\s*::\s*)?"
    r"(?:CartTree|ForestRegressor|KnnRegressor|LinearRegressor)\b")

BANNED_STD_SYNC = re.compile(
    r"std::(?:recursive_timed_mutex|recursive_mutex|timed_mutex|"
    r"shared_timed_mutex|shared_mutex|mutex|lock_guard|unique_lock|"
    r"scoped_lock|shared_lock|condition_variable_any|condition_variable)\b"
)

CHECK_MACROS = (
    "ACIC_CHECK_MSG",
    "ACIC_CHECK",
    "ACIC_DCHECK_MSG",
    "ACIC_DCHECK",
    "ACIC_EXPECTS",
    "ACIC_ENSURES",
)

RAW_IO_CALL = re.compile(r"(?<![\w.:])(?:::\s*)?(?:fsync|fdatasync|pwrite)\s*\(|::\s*write\s*\(")

METRIC_CALL = re.compile(r"\.\s*(counter|gauge|histogram)\s*\(")

STRING_LITERAL = re.compile(r'"((?:[^"\\\n]|\\.)*)"')


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving newlines
    and column positions so findings keep accurate line numbers."""
    out = []
    i, n = 0, len(text)
    mode = "code"  # code | line_comment | block_comment | string | char | raw_string
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == "R" and nxt == '"':
                m = re.match(r'R"([^\s()\\]{0,16})\(', text[i:])
                if m:
                    raw_delim = ")" + m.group(1) + '"'
                    mode = "raw_string"
                    out.append(" " * len(m.group(0)))
                    i += len(m.group(0))
                    continue
            if c == '"':
                mode = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                mode = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
            i += 1
        elif mode == "line_comment":
            if c == "\n":
                mode = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif mode == "block_comment":
            if c == "*" and nxt == "/":
                mode = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif mode == "string":
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == '"':
                mode = "code"
                out.append('"')
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif mode == "char":
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == "'":
                mode = "code"
                out.append("'")
                i += 1
            else:
                out.append(" ")
                i += 1
        elif mode == "raw_string":
            if text.startswith(raw_delim, i):
                mode = "code"
                out.append(" " * len(raw_delim))
                i += len(raw_delim)
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def balanced_argument(text: str, open_paren: int) -> Tuple[str, int]:
    """Return (argument text, end offset) for the parenthesised argument
    list opening at `open_paren` (which must index a '(')."""
    depth = 0
    i = open_paren
    n = len(text)
    while i < n:
        c = text[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren + 1 : i], i
        i += 1
    return text[open_paren + 1 :], n


def split_top_level(arg: str) -> List[str]:
    parts = []
    depth = 0
    cur = []
    for c in arg:
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        if c == "," and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    parts.append("".join(cur))
    return parts


def condition_has_side_effect(cond: str) -> Optional[str]:
    """Return a description when the (comment/string-stripped) condition
    text contains ++/-- or an assignment; None when clean."""
    if re.search(r"\+\+|--", cond):
        return "increment/decrement"
    i = 0
    n = len(cond)
    while i < n:
        if cond[i] != "=":
            i += 1
            continue
        prev = cond[i - 1] if i > 0 else ""
        nxt = cond[i + 1] if i + 1 < n else ""
        if nxt == "=":  # == comparison
            i += 2
            continue
        if prev in "=!<>":  # !=, <=, >=, (=='s tail is skipped above)
            i += 1
            continue
        if prev in "+-*/%&|^":
            return "compound assignment"
        if prev == "[":  # lambda capture [=]
            i += 1
            continue
        return "assignment"
    return None


def iter_source_files(root: str) -> List[str]:
    files = []
    src = os.path.join(root, "src", "acic")
    for dirpath, _dirnames, filenames in os.walk(src):
        for name in sorted(filenames):
            if name.endswith((".hpp", ".cpp", ".h", ".cc")):
                files.append(os.path.join(dirpath, name))
    # The slap harness ships alongside the library and holds to the same
    # contracts (no raw mutexes, no unregistered metrics, ...).  The perf
    # gate is NOT scanned here: it re-resolves existing metric names to
    # *read* them, which the single-registration-site rule cannot tell
    # apart from a second registration.
    slap = os.path.join(root, "bench", "acic_slap.cpp")
    if os.path.isfile(slap):
        files.append(slap)
    return sorted(files)


def rel(root: str, path: str) -> str:
    return os.path.relpath(path, root).replace(os.sep, "/")


def readme_metrics_table(root: str, findings: List[Finding]) -> Optional[str]:
    readme = os.path.join(root, "README.md")
    try:
        with open(readme, encoding="utf-8") as f:
            text = f.read()
    except OSError:
        findings.append(Finding("README.md", 1, RULE_METRIC_REGISTRY,
                                "README.md not found; cannot check the metrics table"))
        return None
    begin = text.find("<!-- metrics-table-begin -->")
    end = text.find("<!-- metrics-table-end -->")
    if begin < 0 or end < 0 or end < begin:
        findings.append(Finding(
            "README.md", 1, RULE_METRIC_REGISTRY,
            "metrics table markers (<!-- metrics-table-begin/-end -->) missing"))
        return None
    return text[begin:end]


def check_file_textual(root: str, path: str, table: Optional[str],
                       registrations: Dict[str, List[Tuple[str, int]]],
                       findings: List[Finding]) -> None:
    relpath = rel(root, path)
    with open(path, encoding="utf-8") as f:
        raw = f.read()
    stripped = strip_comments_and_strings(raw)

    # --- raw-mutex ---------------------------------------------------
    if relpath not in RAW_MUTEX_ALLOWED:
        for m in BANNED_STD_SYNC.finditer(stripped):
            findings.append(Finding(
                relpath, line_of(stripped, m.start()), RULE_RAW_MUTEX,
                f"raw {m.group(0)} is banned outside common/mutex.*; "
                "use acic::Mutex / acic::MutexLock (common/mutex.hpp)"))

    # --- check-side-effect -------------------------------------------
    for macro in CHECK_MACROS:
        for m in re.finditer(r"\b" + macro + r"\s*\(", stripped):
            # Skip the macro's own definition (`#define ACIC_CHECK(...)`).
            line_start = stripped.rfind("\n", 0, m.start()) + 1
            if stripped[line_start:m.start()].lstrip().startswith("#"):
                continue
            arg, _end = balanced_argument(stripped, m.end() - 1)
            cond = split_top_level(arg)[0]
            why = condition_has_side_effect(cond)
            if why:
                findings.append(Finding(
                    relpath, line_of(stripped, m.start()),
                    RULE_CHECK_SIDE_EFFECT,
                    f"{macro} condition contains {why}; contract "
                    "conditions must be side-effect free (ACIC_DCHECK "
                    "compiles away in release builds) — hoist loops or "
                    "mutation into a named predicate"))

    # --- metric-registry (collection; verdicts happen in the caller) --
    if relpath not in ("src/acic/obs/metrics.hpp", "src/acic/obs/metrics.cpp"):
        for m in METRIC_CALL.finditer(stripped):
            arg_stripped, _ = balanced_argument(stripped, m.end() - 1)
            # Same span in the raw text still holds the string literals.
            arg_raw = raw[m.end() : m.end() + len(arg_stripped)]
            name_arg_len = len(split_top_level(arg_stripped)[0])
            name_raw = arg_raw[:name_arg_len]
            literals = STRING_LITERAL.findall(name_raw)
            lineno = line_of(stripped, m.start())
            if not literals:
                findings.append(Finding(
                    relpath, lineno, RULE_METRIC_REGISTRY,
                    "metric name has no literal fragment; lint cannot tie "
                    "it to the README metrics table — include at least a "
                    "literal prefix"))
                continue
            whole = re.fullmatch(
                r'\s*(?:std::string\s*\(\s*)?"(?:[^"\\\n]|\\.)*"\s*\)?\s*',
                name_raw)
            if whole and len(literals) == 1:
                registrations.setdefault(literals[0], []).append(
                    (relpath, lineno))
            if table is None:
                continue
            for frag in literals:
                if len(frag) < 3:
                    continue
                if frag not in table:
                    findings.append(Finding(
                        relpath, lineno, RULE_METRIC_REGISTRY,
                        f'metric name fragment "{frag}" is not documented '
                        "in the README.md metrics table"))

    # --- raw-io ------------------------------------------------------
    if relpath not in RAW_IO_ALLOWED_FILES and not relpath.startswith(
            RAW_IO_ALLOWED_DIRS):
        for m in RAW_IO_CALL.finditer(stripped):
            findings.append(Finding(
                relpath, line_of(stripped, m.start()), RULE_RAW_IO,
                f"naked {m.group(0).strip()}...) outside exec/store.cpp "
                "and common/ — durability primitives belong to the store"))

    # --- plugin-dispatch ---------------------------------------------
    if not relpath.startswith(PLUGIN_DISPATCH_ALLOWED_DIRS):
        for m in FS_SWITCH_DISPATCH.finditer(stripped):
            findings.append(Finding(
                relpath, line_of(stripped, m.start()), RULE_PLUGIN_DISPATCH,
                "switch dispatch on FileSystemType outside the plugin "
                "layer; resolve the substrate through acic::plugin"
                "::filesystem_for / filesystem_named (plugin/substrates"
                ".hpp) so registered filesystems are honoured everywhere"))
        for m in LEARNER_CONSTRUCTION.finditer(stripped):
            findings.append(Finding(
                relpath, line_of(stripped, m.start()), RULE_PLUGIN_DISPATCH,
                "direct concrete-learner construction outside src/acic/ml/; "
                "use acic::plugin::make_learner(name) so the learner "
                "registry stays the single construction path"))

    # --- tsa-suppression ---------------------------------------------
    if relpath != "src/acic/common/thread_annotations.hpp":
        lines = raw.splitlines()
        for idx, line in enumerate(lines):
            if "ACIC_NO_THREAD_SAFETY_ANALYSIS" not in line:
                continue
            window = lines[max(0, idx - 2) : idx + 1]
            if not any("//" in w for w in window):
                findings.append(Finding(
                    relpath, idx + 1, RULE_TSA_SUPPRESSION,
                    "ACIC_NO_THREAD_SAFETY_ANALYSIS needs a justification "
                    "comment on the same line or the two lines above"))


def libclang_crosscheck(root: str, compdb_dir: str,
                        registrations: Dict[str, List[Tuple[str, int]]],
                        findings: List[Finding]) -> bool:
    """AST-level confirmation of metric-registration sites.  Returns True
    when the libclang pass actually ran."""
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return False
    try:
        index = cindex.Index.create()
        db = cindex.CompilationDatabase.fromDirectory(compdb_dir)
    except Exception as err:  # pragma: no cover - environment-specific
        print(f"acic_lint: libclang unavailable ({err}); "
              "textual engine only", file=sys.stderr)
        return False
    ast_names: Dict[str, int] = {}
    for path in iter_source_files(root):
        if not path.endswith(".cpp"):
            continue
        cmds = db.getCompileCommands(path)
        if not cmds:
            continue
        args = [a for a in list(cmds[0].arguments)[1:] if a != path]
        tu = index.parse(path, args=args)
        for cur in tu.cursor.walk_preorder():
            if cur.kind != cindex.CursorKind.CALL_EXPR:
                continue
            if cur.spelling not in ("counter", "gauge", "histogram"):
                continue
            for child in cur.walk_preorder():
                if child.kind == cindex.CursorKind.STRING_LITERAL:
                    name = child.spelling.strip('"')
                    ast_names[name] = ast_names.get(name, 0) + 1
                    break
    for name in registrations:
        if name not in ast_names:
            print(f"acic_lint: note: textual site for \"{name}\" not "
                  "confirmed by libclang (macro or template context)",
                  file=sys.stderr)
    return True


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        description="ACIC-specific lint gate (see module docstring)")
    parser.add_argument("--root", default=None,
                        help="repository root (default: two levels up "
                             "from this script)")
    parser.add_argument("--compdb", default=None,
                        help="directory holding compile_commands.json "
                             "(used by the libclang engine)")
    parser.add_argument("--mode", choices=("auto", "text", "libclang"),
                        default="auto",
                        help="auto: textual plus libclang when the "
                             "bindings import; text: textual only; "
                             "libclang: require/attempt the AST pass")
    args = parser.parse_args(argv)

    root = args.root or os.path.normpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))
    if not os.path.isdir(os.path.join(root, "src", "acic")):
        print(f"acic_lint: {root} does not look like the ACIC repo "
              "(no src/acic)", file=sys.stderr)
        return 2

    findings: List[Finding] = []
    table = readme_metrics_table(root, findings)
    registrations: Dict[str, List[Tuple[str, int]]] = {}
    for path in iter_source_files(root):
        check_file_textual(root, path, table, registrations, findings)

    for name, sites in sorted(registrations.items()):
        distinct = sorted(set(sites))
        if len(distinct) > 1:
            first = distinct[0]
            for where in distinct[1:]:
                findings.append(Finding(
                    where[0], where[1], RULE_METRIC_REGISTRY,
                    f'metric "{name}" is registered at more than one '
                    f"source site (also {first[0]}:{first[1]}); hoist the "
                    "registration to a single owner"))

    if args.mode in ("auto", "libclang"):
        compdb = args.compdb or os.path.join(root, "build")
        ran = False
        if os.path.exists(os.path.join(compdb, "compile_commands.json")):
            ran = libclang_crosscheck(root, compdb, registrations, findings)
        if not ran and args.mode == "libclang":
            print("acic_lint: libclang engine requested but python "
                  "clang bindings / compile_commands.json are missing; "
                  "ran the textual engine only", file=sys.stderr)

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in findings:
        print(f)
    if findings:
        print(f"acic_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
