#!/usr/bin/env python3
"""Compare a perf_gate run against the checked-in baseline.

Usage: check_perf_gate.py CURRENT_JSON BASELINE_JSON

The baseline file carries the reference metrics plus a `tolerance` block
describing how each gated metric may move before CI fails:

  "tolerance": {
    "cart_batch_speedup":  {"min_abs": 5.0},        # absolute floor
    "sim_events_per_sec":  {"min_ratio": 0.4},      # >= 40% of baseline
    "cart_batch_ns_per_row": {"max_ratio": 2.5}     # <= 2.5x baseline
  }

Metrics without a tolerance entry are informational: recorded in the
artifact, never gated (raw wall numbers vary with the runner host).
Exit code 0 = within tolerance, 1 = regression(s), 2 = usage/schema
error.
"""

import json
import sys

SCHEMA = "acic_perf_gate_v1"


def load(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != SCHEMA:
        sys.exit(f"{path}: expected schema {SCHEMA!r}, got {doc.get('schema')!r}")
    return doc


def main(argv):
    if len(argv) != 3:
        sys.exit(__doc__)
    current = load(argv[1])
    baseline = load(argv[2])
    cur = current["metrics"]
    base = baseline["metrics"]
    tolerance = baseline.get("tolerance", {})

    violations = []
    for name, rule in sorted(tolerance.items()):
        if name not in cur:
            violations.append(f"{name}: missing from current run")
            continue
        value = cur[name]
        ref = base.get(name)
        if "min_abs" in rule and value < rule["min_abs"]:
            violations.append(
                f"{name}: {value:.4g} below absolute floor {rule['min_abs']:.4g}"
            )
        if "min_ratio" in rule:
            if ref is None:
                violations.append(f"{name}: min_ratio rule but no baseline value")
            elif value < ref * rule["min_ratio"]:
                violations.append(
                    f"{name}: {value:.4g} < {rule['min_ratio']:.2f}x baseline"
                    f" {ref:.4g}"
                )
        if "max_ratio" in rule:
            if ref is None:
                violations.append(f"{name}: max_ratio rule but no baseline value")
            elif value > ref * rule["max_ratio"]:
                violations.append(
                    f"{name}: {value:.4g} > {rule['max_ratio']:.2f}x baseline"
                    f" {ref:.4g}"
                )

    for name in sorted(cur):
        ref = base.get(name)
        drift = "" if ref in (None, 0) else f"  ({value_ratio(cur[name], ref)})"
        print(f"  {name:28s} {cur[name]:>14.4g}{drift}")

    if violations:
        print(f"\nperf gate FAILED ({len(violations)} violation(s)):")
        for v in violations:
            print(f"  - {v}")
        return 1
    print("\nperf gate OK")
    return 0


def value_ratio(value, ref):
    return f"{value / ref:.2f}x baseline"


if __name__ == "__main__":
    sys.exit(main(sys.argv))
