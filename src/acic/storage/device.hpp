// Storage device models: local ephemeral spindles, network-attached EBS
// volumes, and local SSDs, plus software RAID-0 aggregation.
//
// Bandwidths/latencies reflect published 2013 EC2 measurements: one
// ephemeral spindle streams ~95 MB/s; a standard EBS volume sustains
// ~55 MB/s and rides the instance NIC (that coupling is modelled by the
// cluster topology, not here); SSDs trade peak streaming bandwidth for two
// orders of magnitude lower per-operation latency.
#pragma once

#include <string>

#include "acic/common/units.hpp"

namespace acic::storage {

enum class DeviceType {
  kEphemeral,
  kEbs,
  kSsd,
};

struct DeviceSpec {
  std::string name;
  double read_bandwidth = 0.0;   // bytes/s, one device
  double write_bandwidth = 0.0;  // bytes/s, one device
  SimTime per_op_latency = 0.0;  // seek + queueing overhead per request
  /// True when the device hangs off the instance NIC (EBS).
  bool network_attached = false;
};

const DeviceSpec& device_spec(DeviceType type);

const char* to_string(DeviceType type);
DeviceType device_type_from_string(const std::string& s);

/// Aggregate bandwidth of a `count`-member software RAID-0 built from the
/// given device.  RAID-0 striping scales streaming bandwidth nearly
/// linearly; we apply a small software-RAID efficiency factor.
double raid0_bandwidth(const DeviceSpec& spec, int count, bool for_write);

/// Per-request latency of the RAID-0 set (parallel members -> the op is as
/// slow as one member, chunk splitting adds a little).
SimTime raid0_latency(const DeviceSpec& spec, int count);

}  // namespace acic::storage
