#include "acic/storage/device.hpp"

#include <algorithm>

#include "acic/common/error.hpp"

namespace acic::storage {

const DeviceSpec& device_spec(DeviceType type) {
  static const DeviceSpec kEphemeral{
      /*name=*/"ephemeral",
      /*read_bandwidth=*/mb_per_s(95.0),
      /*write_bandwidth=*/mb_per_s(90.0),
      /*per_op_latency=*/8.0 * kMillisecond,
      /*network_attached=*/false,
  };
  static const DeviceSpec kEbs{
      /*name=*/"EBS",
      /*read_bandwidth=*/mb_per_s(60.0),
      /*write_bandwidth=*/mb_per_s(55.0),
      /*per_op_latency=*/10.0 * kMillisecond,
      /*network_attached=*/true,
  };
  static const DeviceSpec kSsd{
      /*name=*/"SSD",
      /*read_bandwidth=*/mb_per_s(250.0),
      /*write_bandwidth=*/mb_per_s(220.0),
      /*per_op_latency=*/0.1 * kMillisecond,
      /*network_attached=*/false,
  };
  switch (type) {
    case DeviceType::kEphemeral:
      return kEphemeral;
    case DeviceType::kEbs:
      return kEbs;
    case DeviceType::kSsd:
      return kSsd;
  }
  throw acic::Error("unknown device type");
}

const char* to_string(DeviceType type) {
  switch (type) {
    case DeviceType::kEphemeral:
      return "ephemeral";
    case DeviceType::kEbs:
      return "EBS";
    case DeviceType::kSsd:
      return "SSD";
  }
  return "?";
}

DeviceType device_type_from_string(const std::string& s) {
  if (s == "ephemeral" || s == "eph") return DeviceType::kEphemeral;
  if (s == "EBS" || s == "ebs") return DeviceType::kEbs;
  if (s == "SSD" || s == "ssd") return DeviceType::kSsd;
  throw acic::Error("unknown device type: " + s);
}

double raid0_bandwidth(const DeviceSpec& spec, int count, bool for_write) {
  ACIC_EXPECTS(count >= 1, "RAID-0 needs at least one member, got " << count);
  const double base = for_write ? spec.write_bandwidth : spec.read_bandwidth;
  // mdraid chunking overhead eats a few percent per extra member.
  const double efficiency = 1.0 - 0.03 * static_cast<double>(count - 1);
  const double bandwidth = base * count * std::max(efficiency, 0.7);
  ACIC_ENSURES(bandwidth >= base, "RAID-0 of " << count << " x " << spec.name
                                               << " slower than one member");
  return bandwidth;
}

SimTime raid0_latency(const DeviceSpec& spec, int count) {
  ACIC_EXPECTS(count >= 1, "RAID-0 needs at least one member, got " << count);
  // Members are hit in parallel; splitting adds ~5 % per extra member.
  return spec.per_op_latency * (1.0 + 0.05 * static_cast<double>(count - 1));
}

}  // namespace acic::storage
