// I/O tracing and characteristic extraction — the paper's profiling tool.
//
// The middleware reports every *logical* application I/O call (before
// collective aggregation or striping transforms it) to an attached
// IoTracer.  `infer_workload()` then reconstructs the nine Table 1
// application characteristics from the trace, which is exactly what users
// feed to the ACIC predictor when they cannot state the numbers
// themselves.
#pragma once

#include <cstdint>
#include <vector>

#include "acic/common/units.hpp"
#include "acic/io/workload.hpp"

namespace acic::profiler {

struct TraceRecord {
  int rank = 0;
  /// Total payload covered by this record.
  Bytes total_bytes = 0.0;
  /// Size of the individual application calls within it.
  Bytes request_bytes = 0.0;
  /// Number of application calls the record stands for.
  double op_count = 1.0;
  bool is_write = false;
  SimTime at = 0.0;
  int iteration = 0;
};

class IoTracer {
 public:
  /// Called by the middleware once per rank/iteration/direction: `ops`
  /// application calls of `request_bytes` each, `total_bytes` in sum.
  void record(int rank, Bytes total_bytes, Bytes request_bytes, double ops,
              bool is_write, SimTime at, int iteration);

  /// Job-level facts the trace cannot see request-by-request.
  void set_job_info(int num_processes, io::IoInterface interface,
                    bool collective, bool file_shared);

  const std::vector<TraceRecord>& records() const { return records_; }
  bool empty() const { return records_.empty(); }

  std::uint64_t op_count(bool writes) const;
  Bytes byte_count(bool writes) const;

  /// Reconstruct the nine application I/O characteristics.
  io::Workload infer_workload() const;

  void clear();

 private:
  std::vector<TraceRecord> records_;
  int num_processes_ = 0;
  io::IoInterface interface_ = io::IoInterface::kPosix;
  bool collective_ = false;
  bool file_shared_ = true;
  bool job_info_set_ = false;
};

}  // namespace acic::profiler
