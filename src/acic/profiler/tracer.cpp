#include "acic/profiler/tracer.hpp"

#include <algorithm>
#include <set>

#include "acic/common/error.hpp"
#include "acic/common/stats.hpp"

namespace acic::profiler {

void IoTracer::record(int rank, Bytes total_bytes, Bytes request_bytes,
                      double ops, bool is_write, SimTime at, int iteration) {
  records_.push_back(TraceRecord{rank, total_bytes, request_bytes, ops,
                                 is_write, at, iteration});
}

void IoTracer::set_job_info(int num_processes, io::IoInterface interface,
                            bool collective, bool file_shared) {
  num_processes_ = num_processes;
  interface_ = interface;
  collective_ = collective;
  file_shared_ = file_shared;
  job_info_set_ = true;
}

std::uint64_t IoTracer::op_count(bool writes) const {
  double n = 0.0;
  for (const auto& r : records_) {
    if (r.is_write == writes) n += r.op_count;
  }
  return static_cast<std::uint64_t>(n + 0.5);
}

Bytes IoTracer::byte_count(bool writes) const {
  Bytes b = 0.0;
  for (const auto& r : records_) {
    if (r.is_write == writes) b += r.total_bytes;
  }
  return b;
}

io::Workload IoTracer::infer_workload() const {
  ACIC_CHECK_MSG(job_info_set_, "set_job_info() must be called before "
                                "infer_workload()");
  ACIC_CHECK_MSG(!records_.empty(), "empty trace");

  io::Workload w;
  w.name = "profiled";
  w.num_processes = num_processes_;
  w.interface = interface_;
  w.collective = collective_;
  w.file_shared = file_shared_;

  std::set<int> io_ranks;
  std::set<int> iterations;
  std::vector<double> request_sizes;
  Bytes read_bytes = 0.0, write_bytes = 0.0;
  request_sizes.reserve(records_.size());
  for (const auto& r : records_) {
    io_ranks.insert(r.rank);
    iterations.insert(r.iteration);
    request_sizes.push_back(r.request_bytes);
    (r.is_write ? write_bytes : read_bytes) += r.total_bytes;
  }
  w.num_io_processes = static_cast<int>(io_ranks.size());
  w.iterations = static_cast<int>(iterations.size());
  w.request_size = median_of(request_sizes);

  if (read_bytes > 0.0 && write_bytes > 0.0) {
    w.op = io::OpMix::kReadWrite;
  } else if (read_bytes > 0.0) {
    w.op = io::OpMix::kRead;
  } else {
    w.op = io::OpMix::kWrite;
  }

  // Bytes one I/O process moves per iteration, per direction (the
  // read+write mix counts each direction once, as IOR does).
  const double directions = (w.op == io::OpMix::kReadWrite) ? 2.0 : 1.0;
  w.data_size = (read_bytes + write_bytes) /
                (directions * static_cast<double>(w.num_io_processes) *
                 static_cast<double>(w.iterations));
  w.normalize();
  return w;
}

void IoTracer::clear() {
  records_.clear();
  job_info_set_ = false;
}

}  // namespace acic::profiler
