#include "acic/profiler/replay.hpp"

#include "acic/common/error.hpp"

namespace acic::profiler {

io::RunResult replay_trace(const IoTracer& trace,
                           const cloud::IoConfig& config,
                           const io::RunOptions& options) {
  io::Workload w = trace.infer_workload();
  w.name = "replay";
  io::RunOptions opts = options;
  opts.tracer = nullptr;  // do not re-trace the replay
  return io::run_workload(w, config, opts);
}

ReplayFidelity replay_fidelity(const io::Workload& workload,
                               const cloud::IoConfig& config,
                               const io::RunOptions& options) {
  IoTracer tracer;
  io::RunOptions traced = options;
  traced.tracer = &tracer;
  io::Workload original = workload;
  // Compare I/O behaviour: strip app-side phases from both sides.
  original.compute_per_iteration = 0.0;
  original.comm_per_iteration = 0.0;
  const auto real = io::run_workload(original, config, traced);
  const auto synthetic = replay_trace(tracer, config, options);
  ACIC_CHECK(real.total_time > 0.0 && real.fs_bytes > 0.0);
  ReplayFidelity f;
  f.time_ratio = synthetic.total_time / real.total_time;
  f.bytes_ratio = synthetic.fs_bytes / real.fs_bytes;
  return f;
}

}  // namespace acic::profiler
