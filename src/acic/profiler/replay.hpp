// Trace replay (§2 lists application case studies, benchmarks and trace
// replays as training-data sources).  A recorded application trace is
// reduced to its characteristic 9-tuple and re-executed as a synthetic
// workload on any candidate configuration — profile once on whatever
// setup is handy, then evaluate everywhere.
#pragma once

#include "acic/cloud/ioconfig.hpp"
#include "acic/io/runner.hpp"
#include "acic/profiler/tracer.hpp"

namespace acic::profiler {

/// Replay fidelity report: how closely the synthetic stand-in tracks the
/// original application on the configuration where both were run.
struct ReplayFidelity {
  double time_ratio = 0.0;  ///< replay time / original time
  Bytes bytes_ratio = 0.0;  ///< replay bytes / original bytes
};

/// Re-execute the traced workload on `config`.  Compute/communication
/// phases are not part of the trace (the paper's profiler sees only I/O
/// primitives), so the replay measures the I/O-side behaviour — exactly
/// what configuration search needs.
io::RunResult replay_trace(const IoTracer& trace,
                           const cloud::IoConfig& config,
                           const io::RunOptions& options = {});

/// Convenience check: profile `workload` on `config`, replay the trace on
/// the same config, and report how well I/O times line up.
ReplayFidelity replay_fidelity(const io::Workload& workload,
                               const cloud::IoConfig& config,
                               const io::RunOptions& options = {});

}  // namespace acic::profiler
