// The paper's four evaluation applications (Table 3), modelled at the
// phase level: per-iteration compute, communication, and I/O with the
// published volumes and interfaces.
//
//   name       field      CPU  comm  R/W  API      volume
//   BTIO       physics    H    H     W    MPI-IO   ~6.4 GB shared file
//   FLASHIO    astro      L    L     W    HDF5     ~15 GB checkpoint
//   mpiBLAST   biology    M    M     R    POSIX    84 GB DB, 32 segments
//   MADbench2  cosmology  L    M     RW   MPI-IO   32 GB matrix, 4 passes
//
// ACIC itself never looks inside these models — it sees only the
// extracted I/O characteristics and the measured time/cost, exactly as
// the paper's black-box treatment demands.
#pragma once

#include <string>
#include <vector>

#include "acic/io/workload.hpp"

namespace acic::apps {

/// NPB problem classes for BTIO (grid edge per class; I/O volume and
/// solver work scale with the cell count).
enum class BtClass { kA, kB, kC, kD };

/// NPB BT with I/O every 5 of 200 steps, collective MPI-IO into one
/// shared file (~6.4 GB over a class C run, the paper's setting).
/// Compute- and comm-heavy.
io::Workload btio(int num_processes, BtClass problem_class = BtClass::kC);

/// FLASH parallel-HDF5 checkpoint kernel: one ~15 GB collective dump,
/// negligible compute.
io::Workload flashio(int num_processes);

/// Parallel NCBI BLAST: read-mostly POSIX scan of an 84 GB database in 32
/// segments (file-per-process), medium compute between reads.
io::Workload mpiblast(int num_io_processes);

/// MADspec CMB analysis kernel: a 32 GB matrix written after each step
/// and read back on demand (read+write MPI-IO, large requests).
io::Workload madbench2(int num_processes);

/// One named application run.
struct AppRun {
  std::string app;
  int scale = 0;  ///< the paper's NP column (I/O processes for mpiBLAST)
  io::Workload workload;
};

/// The nine application executions evaluated in the paper (Figures 5–7,
/// Table 4): BTIO {64,256}, FLASHIO {64,256}, mpiBLAST {32,64,128},
/// MADbench2 {64,256}.
std::vector<AppRun> evaluation_suite();

}  // namespace acic::apps
