#include "acic/apps/apps.hpp"

#include <cmath>

#include "acic/common/error.hpp"

namespace acic::apps {

namespace {

/// Strong-scaled per-rank compute seconds for a fixed total amount of
/// work (expressed in cc2-core-seconds).
double scaled_compute(double total_core_seconds, int num_processes,
                      int iterations) {
  return total_core_seconds /
         (static_cast<double>(num_processes) *
          static_cast<double>(iterations));
}

}  // namespace

io::Workload btio(int num_processes, BtClass problem_class) {
  ACIC_CHECK(num_processes >= 1);
  // NPB grid edges per class; output volume and solver work scale with
  // the cell count (class C is the paper's 6.4 GB setting).
  double edge = 162.0;
  switch (problem_class) {
    case BtClass::kA:
      edge = 64.0;
      break;
    case BtClass::kB:
      edge = 102.0;
      break;
    case BtClass::kC:
      edge = 162.0;
      break;
    case BtClass::kD:
      edge = 408.0;
      break;
  }
  const double cells_vs_c = (edge * edge * edge) / (162.0 * 162.0 * 162.0);

  io::Workload w;
  w.name = "BTIO";
  w.num_processes = num_processes;
  w.num_io_processes = num_processes;
  w.interface = io::IoInterface::kMpiIo;
  // 200 BT time steps, a collective dump every 5 steps.
  w.iterations = 40;
  // ~6.4 GB (class C) over the run, split across dumps and ranks.
  w.data_size = cells_vs_c * 6.4 * GiB / (40.0 * num_processes);
  w.request_size = w.data_size;  // one collective call per rank per dump
  w.op = io::OpMix::kWrite;
  w.collective = true;
  w.file_shared = true;
  // CPU-heavy: ~3840 core-seconds of class C solver work across the run.
  w.compute_per_iteration =
      scaled_compute(3840.0 * cells_vs_c, num_processes, 40);
  // Comm-heavy: face exchanges each dump interval (surface ~ cells^{2/3}).
  w.comm_per_iteration = 8.0 * MiB * std::pow(cells_vs_c, 2.0 / 3.0);
  w.normalize();
  return w;
}

io::Workload flashio(int num_processes) {
  ACIC_CHECK(num_processes >= 1);
  io::Workload w;
  w.name = "FLASHIO";
  w.num_processes = num_processes;
  w.num_io_processes = num_processes;
  w.interface = io::IoInterface::kHdf5;
  w.iterations = 1;  // one checkpoint dump per kernel run
  // ~15 GB checkpoint split across the ranks.
  w.data_size = 15.0 * GiB / static_cast<double>(num_processes);
  w.request_size = 32.0 * MiB;  // chunked dataset writes
  w.op = io::OpMix::kWrite;
  w.collective = true;  // parallel HDF5 collective transfer mode
  w.file_shared = true;
  // I/O kernel: barely any compute or communication.
  w.compute_per_iteration = scaled_compute(320.0, num_processes, 1);
  w.comm_per_iteration = 256.0 * KiB;
  w.normalize();
  return w;
}

io::Workload mpiblast(int num_io_processes) {
  ACIC_CHECK(num_io_processes >= 1);
  io::Workload w;
  w.name = "mpiBLAST";
  w.num_processes = num_io_processes;
  w.num_io_processes = num_io_processes;
  w.interface = io::IoInterface::kPosix;
  w.iterations = 1;  // one scan of the database per batch of queries
  // 84 GB wgs database, 32 segments, read once per run.
  w.data_size = 84.0 * GiB / static_cast<double>(num_io_processes);
  w.request_size = 1.0 * MiB;  // sequence-block sized POSIX reads
  w.op = io::OpMix::kRead;
  w.collective = false;
  w.file_shared = false;  // each reader works on its own segment files
  // ~1K queries of alignment work spread over the workers.
  w.compute_per_iteration = scaled_compute(4800.0, num_io_processes, 1);
  w.comm_per_iteration = 2.0 * MiB;  // result merging
  w.normalize();
  return w;
}

io::Workload madbench2(int num_processes) {
  ACIC_CHECK(num_processes >= 1);
  io::Workload w;
  w.name = "MADbench2";
  w.num_processes = num_processes;
  w.num_io_processes = num_processes;
  w.interface = io::IoInterface::kMpiIo;
  // The 32 GB matrix is written after each of two computation stages and
  // read back on demand: four passes over the file in total.
  w.iterations = 2;
  w.op = io::OpMix::kReadWrite;
  w.data_size = 32.0 * GiB / (2.0 * num_processes);
  w.request_size = 64.0 * MiB;  // large contiguous matrix slabs
  w.collective = false;
  w.file_shared = true;
  w.compute_per_iteration = scaled_compute(1280.0, num_processes, 2);
  w.comm_per_iteration = 4.0 * MiB;
  w.normalize();
  return w;
}

std::vector<AppRun> evaluation_suite() {
  std::vector<AppRun> suite;
  for (int np : {64, 256}) suite.push_back({"BTIO", np, btio(np)});
  for (int np : {64, 256}) suite.push_back({"FLASHIO", np, flashio(np)});
  for (int np : {32, 64, 128}) {
    suite.push_back({"mpiBLAST", np, mpiblast(np)});
  }
  for (int np : {64, 256}) suite.push_back({"MADbench2", np, madbench2(np)});
  return suite;
}

}  // namespace acic::apps
