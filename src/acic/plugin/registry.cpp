#include "acic/plugin/registry.hpp"

#include <sstream>

#include "acic/obs/metrics.hpp"

namespace acic::plugin {

const char* to_string(Kind kind) {
  switch (kind) {
    case Kind::kFilesystem:
      return "filesystem";
    case Kind::kLearner:
      return "learner";
    case Kind::kFaultModel:
      return "fault-model";
    case Kind::kPricing:
      return "pricing";
  }
  return "?";
}

namespace {

std::string describe(ErrorCode code, Kind kind, const std::string& name,
                     const std::vector<std::string>& registered) {
  std::ostringstream os;
  os << (code == ErrorCode::kDuplicateName ? "duplicate " : "unknown ")
     << to_string(kind) << " '" << name << "' (registered: ";
  if (registered.empty()) {
    os << "none";
  } else {
    for (std::size_t i = 0; i < registered.size(); ++i) {
      if (i > 0) os << ", ";
      os << registered[i];
    }
  }
  os << ")";
  return os.str();
}

}  // namespace

PluginError::PluginError(ErrorCode code, Kind kind, std::string name,
                         std::vector<std::string> registered)
    : Error(describe(code, kind, name, registered)),
      code_(code),
      kind_(kind),
      name_(std::move(name)),
      registered_(std::move(registered)) {}

const Knob* KnobSchema::find(std::string_view name) const {
  for (const auto& knob : knobs) {
    if (knob.name == name) return &knob;
  }
  return nullptr;
}

namespace detail {

namespace {

// Each plugin.* instrument is resolved exactly once, here — the single
// registration site the metric-registry lint rule demands.
obs::Counter& lookups_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("plugin.lookups");
  return c;
}
obs::Counter& lookup_misses_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("plugin.lookup_misses");
  return c;
}
obs::Counter& registrations_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("plugin.registrations");
  return c;
}
obs::Counter& duplicate_registrations_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("plugin.duplicate_registrations");
  return c;
}

// Written only during static init (single-threaded by [basic.start]);
// read at runtime by registration_errors().  No lock needed for that
// write-before-main / read-after-main ordering.
std::vector<std::string>& init_errors() {
  static std::vector<std::string> errors;
  return errors;
}

}  // namespace

void count_lookup() { lookups_counter().inc(); }
void count_lookup_miss() { lookup_misses_counter().inc(); }
void count_registration() { registrations_counter().inc(); }
void count_duplicate_registration() {
  duplicate_registrations_counter().inc();
}

bool register_quietly(const char* where, void (*fn)()) noexcept {
  try {
    fn();
    return true;
  } catch (const std::exception& e) {
    init_errors().push_back(std::string(where) + ": " + e.what());
  } catch (...) {
    init_errors().push_back(std::string(where) + ": unknown error");
  }
  return false;
}

}  // namespace detail

std::vector<std::string> registration_errors() {
  return detail::init_errors();
}

}  // namespace acic::plugin
