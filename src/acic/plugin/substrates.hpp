// The four substrate axes behind the plugin registry (DESIGN.md §14):
// concrete plugin types, the process-wide registries holding them, and
// the enum→plugin bridges the legacy call sites canonicalise through.
//
// Adding a substrate is one self-contained .cpp (see the README
// "Adding a substrate" quickstart): fill in the plugin struct, declare
// the knobs the substrate samples, and ACIC_REGISTER_PLUGIN it.  The
// candidate enumeration, parameter-space grid, RunKey canonicalization,
// service inventory, and protocol name parsing all pick it up from the
// registry — no core surgery.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "acic/cloud/failure.hpp"
#include "acic/cloud/ioconfig.hpp"
#include "acic/cloud/pricing.hpp"
#include "acic/fs/filesystem.hpp"
#include "acic/ml/dataset.hpp"
#include "acic/plugin/registry.hpp"

namespace acic::plugin {

// ---------------------------------------------------------------------
// Filesystems
// ---------------------------------------------------------------------

/// A shared/parallel file-system substrate.  The structural flags
/// (single_server, in_default_grid) plus the declared knobs are what
/// used to be hard-wired `switch (config.fs)` logic in ioconfig.cpp,
/// paramspace.cpp and filesystem.cpp.
struct FilesystemPlugin {
  /// Canonical lowercase name ("nfs", "pvfs2", "lustre") — the
  /// registry key and the protocol spelling.
  std::string name;
  /// Display spelling, e.g. "PVFS2" (cloud::to_string compat).
  std::string display_name;
  /// Label prefix for IoConfig::label(), e.g. "pvfs" in "pvfs.4.D.eph".
  std::string label_stem;
  /// Additional accepted spellings for fs_from_string().
  std::vector<std::string> aliases;
  /// The legacy enum value this plugin canonicalises to/from.
  cloud::FileSystemType type = cloud::FileSystemType::kNfs;
  /// Numeric level of the kFileSystem paramspace dimension (the CART
  /// feature encoding; 0 = NFS, 1 = PVFS2, 2 = Lustre for the seeds).
  double point_id = 0.0;
  /// NFS-style topology: exactly one server, no striping.  Drives the
  /// validity rules, label shape, and RunKey stripe canonicalization.
  bool single_server = false;
  /// Whether enumerate_candidates() includes this substrate (the
  /// paper's Table 1 grid is NFS + PVFS2; Lustre is the extension).
  bool in_default_grid = true;
  /// Declared knob grids: "io_servers" and, for striped systems,
  /// "stripe_size".  paramspace derives its dimensions from these.
  KnobSchema schema;
  /// Instantiate the simulation model for a provisioned cluster.
  std::function<std::unique_ptr<fs::FileSystem>(cloud::ClusterModel&,
                                                const fs::FsTuning&)>
      make;

  /// True when `spelling` is the name, display name, or an alias.
  bool matches(std::string_view spelling) const;

  /// Point `config` at this substrate, applying the structural rules:
  /// a single-server system forces one server and no stripe; a striped
  /// one takes the given server count and stripe size.
  void configure(cloud::IoConfig& config, int io_servers = 1,
                 Bytes stripe = 4.0 * MiB) const;
};

/// Process-wide filesystem registry (seeded by fs/{nfs,pvfs2,lustre}.cpp).
Registry<FilesystemPlugin>& filesystems();

/// Enum→plugin bridge for legacy call sites and the RunKey shim.
const FilesystemPlugin& filesystem_for(cloud::FileSystemType type);

/// Paramspace-level→plugin bridge: nearest registered point_id (the
/// same snapping rule ParamSpace::repaired applies to every dimension).
const FilesystemPlugin& filesystem_for_level(double level);

/// Name/alias→plugin parse; throws PluginError listing the registered
/// names on a miss (the typed error behind fs_from_string and the
/// service's fs= key).
const FilesystemPlugin& filesystem_named(std::string_view spelling);

/// Default-grid substrates in point_id order — the iteration order of
/// IoConfig::enumerate_candidates(), which must stay byte-stable.
std::vector<const FilesystemPlugin*> default_grid_filesystems();

// ---------------------------------------------------------------------
// Learners
// ---------------------------------------------------------------------

struct LearnerPlugin {
  /// Canonical lowercase name: "cart", "forest", "knn", "linear".
  std::string name;
  std::string description;
  /// Declared hyper-parameters (defaults), for the inventory.
  KnobSchema schema;
  /// Construct a fresh, unfitted learner.
  std::function<std::unique_ptr<ml::Learner>()> make;
};

/// Process-wide learner registry (seeded by ml/{cart,forest,knn}.cpp).
Registry<LearnerPlugin>& learners();

/// Construct the named learner; throws PluginError listing registered
/// learner names on a miss.
std::unique_ptr<ml::Learner> make_learner(std::string_view name);

// ---------------------------------------------------------------------
// Fault-model presets
// ---------------------------------------------------------------------

/// A named chaos preset: a ready-to-use cloud::FaultModel.  Presets
/// are data, not factories — the injector consumes the model directly.
struct FaultModelPlugin {
  std::string name;
  std::string description;
  /// The preset's non-default rates/shapes, for the inventory.
  KnobSchema schema;
  cloud::FaultModel model;
};

/// Process-wide fault-preset registry (seeded by cloud/failure.cpp).
Registry<FaultModelPlugin>& fault_models();

// ---------------------------------------------------------------------
// Pricing models
// ---------------------------------------------------------------------

/// Everything a pricing model may charge for.  `detailed` carries the
/// caller's DetailedPricing rates when one was supplied (the "detailed"
/// plugin falls back to the 2013 defaults when it is null); `spot` and
/// `restarts` feed the spot-market plugin's discount + reacquisition-fee
/// terms the same way.
struct PricingContext {
  const cloud::ClusterModel* cluster = nullptr;
  SimTime duration = 0.0;
  std::uint64_t io_operations = 0;
  const cloud::DetailedPricing* detailed = nullptr;
  /// Replacement servers acquired after preemptions during the run.
  std::uint64_t restarts = 0;
  const cloud::SpotPricing* spot = nullptr;
};

struct PricingPlugin {
  /// Canonical name: "eq1" (the paper's Eq. (1)) or "detailed".
  std::string name;
  std::string description;
  /// Declared rate knobs (defaults), for the inventory.
  KnobSchema schema;
  std::function<Money(const PricingContext&)> cost;
};

/// Process-wide pricing registry (seeded by cloud/pricing.cpp).
Registry<PricingPlugin>& pricings();

// ---------------------------------------------------------------------
// Inventory
// ---------------------------------------------------------------------

/// One row of the cross-axis inventory (the `plugins` verb and
/// acic_serve --help): kind + name + knob count + schema version.
struct PluginInfo {
  Kind kind = Kind::kFilesystem;
  std::string name;
  std::size_t knob_count = 0;
  int schema_version = 1;
  std::string summary;
};

/// Every registered plugin across all four axes, kind-major then
/// name-sorted (deterministic).
std::vector<PluginInfo> inventory();

}  // namespace acic::plugin
