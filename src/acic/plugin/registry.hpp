// Substrate plugin registry (DESIGN.md §14).
//
// Every substrate axis ACIC ranks configurations across — file system,
// learner, fault-model preset, pricing model — used to be a hard-wired
// enum dispatched by switches scattered over five translation units.
// This registry replaces that with drizzle-style self-registration:
// each substrate's own .cpp declares a factory under a canonical name
// at static-init time (ACIC_REGISTER_PLUGIN), and every consumer
// constructs through a typed lookup instead of branching.
//
// Contracts:
//
//  * Deterministic enumeration — names()/all() return entries in
//    lexicographic name order, independent of link order or
//    registration order, so inventories and protocol responses are
//    reproducible across builds.
//  * Typed errors, never aborts — a duplicate name or an unknown
//    lookup throws PluginError (carrying the error code, the plugin
//    kind, the offending name and the registered names), which the
//    serving path converts into a protocol "error ..." line.  Static
//    initialisation itself never throws: the registration macro routes
//    failures into registration_errors() instead of std::terminate.
//  * Stable references — plugins are never removed, and the backing
//    map's nodes are address-stable, so the references handed out by
//    lookup()/find()/all() stay valid for the process lifetime.
//  * Thread safety — lookups take a shared (reader) lock; runtime
//    registration (tests, dynamically loaded substrates) takes the
//    exclusive side.  Counters for lookups/misses/registrations land
//    in the `plugin.*` metrics (see README metrics table).
//
// The concrete plugin types for the four axes (FilesystemPlugin,
// LearnerPlugin, FaultModelPlugin, PricingPlugin) and their process
// registries live in plugin/substrates.hpp.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "acic/common/check.hpp"
#include "acic/common/mutex.hpp"
#include "acic/common/thread_annotations.hpp"

namespace acic::plugin {

/// The four substrate axes a plugin can extend.
enum class Kind {
  kFilesystem,
  kLearner,
  kFaultModel,
  kPricing,
};

const char* to_string(Kind kind);

enum class ErrorCode {
  kDuplicateName,  ///< add() of a name that is already registered
  kUnknownName,    ///< lookup() of a name nobody registered
};

/// Typed registry failure.  The what() message lists the registered
/// names so a protocol client (or an operator reading a log line) can
/// immediately see what this binary actually serves.
class PluginError : public Error {
 public:
  PluginError(ErrorCode code, Kind kind, std::string name,
              std::vector<std::string> registered);

  ErrorCode code() const { return code_; }
  Kind kind() const { return kind_; }
  const std::string& name() const { return name_; }
  const std::vector<std::string>& registered() const { return registered_; }

 private:
  ErrorCode code_;
  Kind kind_;
  std::string name_;
  std::vector<std::string> registered_;
};

/// One declared configuration knob: a name plus the value grid the
/// substrate samples it over (ascending).  Declared knobs drive two
/// things: the parameter-space grid (core/paramspace.cpp derives the
/// per-filesystem dimensions from them) and the RunKey knob fold
/// (exec/runkey.cpp hashes per-config knob values under the schema
/// version, so out-of-tree substrates get cache-correct keys).
struct Knob {
  std::string name;
  std::vector<double> values;
};

/// Versioned per-plugin knob declaration.  Bump `version` when a
/// knob's *meaning* changes; the version participates in the RunKey
/// fold, so old cached rows miss instead of being served wrongly.
struct KnobSchema {
  int version = 1;
  std::vector<Knob> knobs;

  const Knob* find(std::string_view name) const;
};

namespace detail {

// plugin.* metric taps, resolved once in registry.cpp so the template
// below stays header-only without multiplying registration sites.
void count_lookup();
void count_lookup_miss();
void count_registration();
void count_duplicate_registration();

/// Runs `fn` (a registration body) and swallows any exception into the
/// registration_errors() list: static initialisation must never call
/// std::terminate over a bad plugin — the serving path reports it as a
/// typed inventory entry instead.  Returns true when `fn` succeeded.
bool register_quietly(const char* where, void (*fn)()) noexcept;

}  // namespace detail

/// Registration bodies that threw during static init ("site: what").
/// Empty in a healthy binary; surfaced by the service `plugins` verb.
std::vector<std::string> registration_errors();

/// Name-keyed factory registry for one plugin kind.  See the file
/// comment for the determinism/error/reference-stability contracts.
template <class Plugin>
class Registry {
 public:
  explicit Registry(Kind kind) : kind_(kind) {}
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Register `plugin` under its `name` member.  Throws PluginError
  /// (kDuplicateName) when the name is taken; the registry is
  /// unchanged in that case.
  const Plugin& add(Plugin plugin) ACIC_EXCLUDES(mutex_) {
    ACIC_EXPECTS(!plugin.name.empty(), "plugin needs a non-empty name");
    MutexLock lock(&mutex_);
    auto [it, inserted] = entries_.try_emplace(plugin.name, std::move(plugin));
    if (!inserted) {
      detail::count_duplicate_registration();
      throw PluginError(ErrorCode::kDuplicateName, kind_, it->first,
                        names_locked());
    }
    detail::count_registration();
    return it->second;
  }

  /// The plugin registered under `name`.  Throws PluginError
  /// (kUnknownName) listing every registered name on a miss.
  const Plugin& lookup(std::string_view name) const ACIC_EXCLUDES(mutex_) {
    detail::count_lookup();
    ReaderMutexLock lock(&mutex_);
    const auto it = entries_.find(name);
    if (it == entries_.end()) {
      detail::count_lookup_miss();
      throw PluginError(ErrorCode::kUnknownName, kind_, std::string(name),
                        names_locked());
    }
    return it->second;
  }

  /// Non-throwing lookup; nullptr on a miss.
  const Plugin* find(std::string_view name) const ACIC_EXCLUDES(mutex_) {
    ReaderMutexLock lock(&mutex_);
    const auto it = entries_.find(name);
    return it == entries_.end() ? nullptr : &it->second;
  }

  /// Registered names, lexicographically sorted (deterministic).
  std::vector<std::string> names() const ACIC_EXCLUDES(mutex_) {
    ReaderMutexLock lock(&mutex_);
    return names_locked();
  }

  /// Every registered plugin in name order (deterministic).  The
  /// pointers stay valid for the registry's lifetime.
  std::vector<const Plugin*> all() const ACIC_EXCLUDES(mutex_) {
    ReaderMutexLock lock(&mutex_);
    std::vector<const Plugin*> out;
    out.reserve(entries_.size());
    for (const auto& [name, plugin] : entries_) out.push_back(&plugin);
    return out;
  }

  std::size_t size() const ACIC_EXCLUDES(mutex_) {
    ReaderMutexLock lock(&mutex_);
    return entries_.size();
  }

  Kind kind() const { return kind_; }

 private:
  std::vector<std::string> names_locked() const ACIC_REQUIRES_SHARED(mutex_) {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [name, plugin] : entries_) out.push_back(name);
    return out;
  }

  const Kind kind_;
  mutable Mutex mutex_;
  // std::map for two load-bearing properties: key-sorted iteration
  // (deterministic enumeration) and node stability (handed-out plugin
  // references survive later registrations).  std::less<> enables
  // string_view lookups without a temporary std::string.
  std::map<std::string, Plugin, std::less<>> entries_ ACIC_GUARDED_BY(mutex_);
};

// Static-init self-registration: expands to a uniquely named function
// whose body follows the macro, run once before main() with any
// exception captured into registration_errors() (never an abort).
//
//   ACIC_REGISTER_PLUGIN(nfs_filesystem) {
//     plugin::FilesystemPlugin p;
//     p.name = "nfs";
//     ...
//     plugin::filesystems().add(std::move(p));
//   }
#define ACIC_PLUGIN_CONCAT_INNER_(a, b) a##b
#define ACIC_PLUGIN_CONCAT_(a, b) ACIC_PLUGIN_CONCAT_INNER_(a, b)
#define ACIC_REGISTER_PLUGIN(token)                                          \
  static void ACIC_PLUGIN_CONCAT_(acic_plugin_register_, token)();           \
  static const bool ACIC_PLUGIN_CONCAT_(acic_plugin_registered_, token) =    \
      ::acic::plugin::detail::register_quietly(                              \
          #token, &ACIC_PLUGIN_CONCAT_(acic_plugin_register_, token));       \
  static void ACIC_PLUGIN_CONCAT_(acic_plugin_register_, token)()

}  // namespace acic::plugin
