#include "acic/plugin/substrates.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace acic::plugin {

bool FilesystemPlugin::matches(std::string_view spelling) const {
  if (spelling == name || spelling == display_name) return true;
  return std::find(aliases.begin(), aliases.end(), spelling) != aliases.end();
}

void FilesystemPlugin::configure(cloud::IoConfig& config, int io_servers,
                                 Bytes stripe) const {
  config.fs = type;
  if (single_server) {
    config.io_servers = 1;
    config.stripe_size = 0.0;
  } else {
    config.io_servers = io_servers;
    config.stripe_size = stripe;
  }
}

Registry<FilesystemPlugin>& filesystems() {
  static Registry<FilesystemPlugin> registry(Kind::kFilesystem);
  return registry;
}

const FilesystemPlugin& filesystem_for(cloud::FileSystemType type) {
  for (const FilesystemPlugin* p : filesystems().all()) {
    if (p->type == type) return *p;
  }
  throw PluginError(ErrorCode::kUnknownName, Kind::kFilesystem,
                    "enum#" + std::to_string(static_cast<int>(type)),
                    filesystems().names());
}

const FilesystemPlugin& filesystem_for_level(double level) {
  const FilesystemPlugin* best = nullptr;
  double best_distance = 0.0;
  for (const FilesystemPlugin* p : filesystems().all()) {
    const double distance = std::abs(p->point_id - level);
    if (best == nullptr || distance < best_distance) {
      best = p;
      best_distance = distance;
    }
  }
  if (best == nullptr) {
    throw PluginError(ErrorCode::kUnknownName, Kind::kFilesystem,
                      "level#" + std::to_string(level), {});
  }
  return *best;
}

const FilesystemPlugin& filesystem_named(std::string_view spelling) {
  detail::count_lookup();
  for (const FilesystemPlugin* p : filesystems().all()) {
    if (p->matches(spelling)) return *p;
  }
  detail::count_lookup_miss();
  throw PluginError(ErrorCode::kUnknownName, Kind::kFilesystem,
                    std::string(spelling), filesystems().names());
}

std::vector<const FilesystemPlugin*> default_grid_filesystems() {
  std::vector<const FilesystemPlugin*> grid;
  for (const FilesystemPlugin* p : filesystems().all()) {
    if (p->in_default_grid) grid.push_back(p);
  }
  std::sort(grid.begin(), grid.end(),
            [](const FilesystemPlugin* a, const FilesystemPlugin* b) {
              return a->point_id < b->point_id;
            });
  return grid;
}

Registry<LearnerPlugin>& learners() {
  static Registry<LearnerPlugin> registry(Kind::kLearner);
  return registry;
}

std::unique_ptr<ml::Learner> make_learner(std::string_view name) {
  return learners().lookup(name).make();
}

Registry<FaultModelPlugin>& fault_models() {
  static Registry<FaultModelPlugin> registry(Kind::kFaultModel);
  return registry;
}

Registry<PricingPlugin>& pricings() {
  static Registry<PricingPlugin> registry(Kind::kPricing);
  return registry;
}

namespace {

template <class Plugin>
void append_inventory(const Registry<Plugin>& registry,
                      std::vector<PluginInfo>& out) {
  for (const Plugin* p : registry.all()) {
    PluginInfo info;
    info.kind = registry.kind();
    info.name = p->name;
    info.knob_count = p->schema.knobs.size();
    info.schema_version = p->schema.version;
    std::ostringstream os;
    os << to_string(registry.kind()) << " " << p->name
       << " knobs=" << p->schema.knobs.size() << " schema=v"
       << p->schema.version;
    info.summary = os.str();
    out.push_back(std::move(info));
  }
}

}  // namespace

std::vector<PluginInfo> inventory() {
  std::vector<PluginInfo> out;
  append_inventory(filesystems(), out);
  append_inventory(learners(), out);
  append_inventory(fault_models(), out);
  append_inventory(pricings(), out);
  return out;
}

}  // namespace acic::plugin
