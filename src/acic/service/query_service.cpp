#include "acic/service/query_service.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>

#include "acic/common/error.hpp"

namespace acic::service {

namespace {

std::map<std::string, std::string> parse_pairs(const std::string& line) {
  std::map<std::string, std::string> kv;
  std::istringstream is(line);
  std::string token;
  is >> token;  // skip the verb
  while (is >> token) {
    const auto eq = token.find('=');
    ACIC_CHECK_MSG(eq != std::string::npos && eq > 0,
                   "expected key=value, got '" << token << "'");
    kv[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return kv;
}

bool parse_bool(const std::string& v) {
  if (v == "yes" || v == "true" || v == "1" || v == "on") return true;
  if (v == "no" || v == "false" || v == "0" || v == "off") return false;
  throw Error("expected yes/no, got '" + v + "'");
}

core::Objective parse_objective(const std::string& v) {
  if (v == "performance" || v == "perf" || v == "time") {
    return core::Objective::kPerformance;
  }
  if (v == "cost" || v == "money") return core::Objective::kCost;
  throw Error("unknown objective '" + v + "'");
}

cloud::IoConfig config_by_label(const std::string& label) {
  for (const auto& c : cloud::IoConfig::enumerate_candidates()) {
    if (c.label() == label) return c;
  }
  throw Error("unknown config label '" + label + "'");
}

std::string verb_of(const std::string& line) {
  std::istringstream is(line);
  std::string verb;
  is >> verb;
  return verb;
}

}  // namespace

Bytes parse_size(const std::string& text) {
  ACIC_CHECK_MSG(!text.empty(), "empty size literal");
  std::size_t pos = 0;
  const double value = std::stod(text, &pos);
  std::string unit = text.substr(pos);
  std::transform(unit.begin(), unit.end(), unit.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (unit.empty() || unit == "b") return value;
  if (unit == "kib" || unit == "kb" || unit == "k") return value * KiB;
  if (unit == "mib" || unit == "mb" || unit == "m") return value * MiB;
  if (unit == "gib" || unit == "gb" || unit == "g") return value * GiB;
  if (unit == "tib" || unit == "tb" || unit == "t") return value * TiB;
  throw Error("unknown size unit '" + unit + "'");
}

io::Workload parse_workload_query(const std::string& line) {
  const auto kv = parse_pairs(line);
  io::Workload w;
  w.name = "query";
  for (const auto& [key, value] : kv) {
    if (key == "objective" || key == "top_k" || key == "config") continue;
    if (key == "np") {
      w.num_processes = std::stoi(value);
    } else if (key == "io_procs") {
      w.num_io_processes = std::stoi(value);
    } else if (key == "interface") {
      w.interface = io::interface_from_string(value);
    } else if (key == "iterations") {
      w.iterations = std::stoi(value);
    } else if (key == "data") {
      w.data_size = parse_size(value);
    } else if (key == "request") {
      w.request_size = parse_size(value);
    } else if (key == "op") {
      w.op = io::opmix_from_string(value);
    } else if (key == "collective") {
      w.collective = parse_bool(value);
    } else if (key == "shared") {
      w.file_shared = parse_bool(value);
    } else {
      throw Error("unknown workload key '" + key + "'");
    }
  }
  w.normalize();
  ACIC_CHECK_MSG(w.valid(), "query describes an invalid workload");
  return w;
}

QueryService::QueryService(core::TrainingDatabase database,
                           core::PbRankingResult ranking)
    : database_(std::move(database)), ranking_(std::move(ranking)) {}

void QueryService::update_database(core::TrainingDatabase database) {
  database_ = std::move(database);
  perf_model_.reset();
  cost_model_.reset();
}

const core::Acic& QueryService::model_for(core::Objective objective) {
  auto& slot = objective == core::Objective::kPerformance ? perf_model_
                                                          : cost_model_;
  if (!slot) slot = std::make_unique<core::Acic>(database_, objective);
  return *slot;
}

std::string QueryService::handle(const std::string& request_line) {
  try {
    const std::string verb = verb_of(request_line);
    if (verb == "recommend") return handle_recommend(request_line);
    if (verb == "predict") return handle_predict(request_line);
    if (verb == "rank") return handle_rank(request_line);
    if (verb == "stats") return handle_stats();
    if (verb == "help" || verb.empty()) return help_text();
    return "error unknown verb '" + verb + "' (try: help)\n";
  } catch (const std::exception& e) {
    return std::string("error ") + e.what() + "\n";
  }
}

std::string QueryService::handle_recommend(const std::string& line) {
  const auto kv = parse_pairs(line);
  const auto obj_it = kv.find("objective");
  const core::Objective objective =
      obj_it == kv.end() ? core::Objective::kPerformance
                         : parse_objective(obj_it->second);
  const auto k_it = kv.find("top_k");
  const std::size_t top_k =
      k_it == kv.end() ? 3 : std::stoul(k_it->second);
  const auto traits = parse_workload_query(line);

  const auto recs = model_for(objective).recommend(traits, top_k);
  std::ostringstream os;
  os << "ok " << recs.size() << " recommendations (objective="
     << core::to_string(objective) << ")\n";
  for (const auto& r : recs) {
    os << "  " << r.config.label() << " predicted_improvement="
       << r.predicted_improvement << "\n";
  }
  return os.str();
}

std::string QueryService::handle_predict(const std::string& line) {
  const auto kv = parse_pairs(line);
  const auto cfg_it = kv.find("config");
  ACIC_CHECK_MSG(cfg_it != kv.end(), "predict needs config=<label>");
  const auto config = config_by_label(cfg_it->second);
  const auto obj_it = kv.find("objective");
  const core::Objective objective =
      obj_it == kv.end() ? core::Objective::kPerformance
                         : parse_objective(obj_it->second);
  const auto traits = parse_workload_query(line);
  const double improvement = model_for(objective).predict(config, traits);
  std::ostringstream os;
  os << "ok predicted_improvement=" << improvement << " config="
     << config.label() << " objective=" << core::to_string(objective)
     << "\n";
  return os.str();
}

std::string QueryService::handle_rank(const std::string& line) {
  const auto kv = parse_pairs(line);
  const auto top_it = kv.find("top");
  std::size_t top = top_it == kv.end()
                        ? ranking_.importance.size()
                        : std::stoul(top_it->second);
  top = std::min(top, ranking_.importance.size());
  std::ostringstream os;
  os << "ok " << top << " dimensions by PB importance\n";
  for (std::size_t i = 0; i < top; ++i) {
    const auto dim = static_cast<core::Dim>(ranking_.importance[i]);
    os << "  " << (i + 1) << ". "
       << core::ParamSpace::dimension(dim).name << "\n";
  }
  return os.str();
}

std::string QueryService::handle_stats() const {
  std::ostringstream os;
  os << "ok database=" << database_.size() << " samples, "
     << cloud::IoConfig::enumerate_candidates().size()
     << " candidate configs\n";
  return os.str();
}

std::string QueryService::help_text() {
  return
      "ok commands\n"
      "  recommend objective=performance|cost top_k=N <workload keys>\n"
      "  predict config=<label> objective=... <workload keys>\n"
      "  rank [top=N]\n"
      "  stats\n"
      "  workload keys: np io_procs interface iterations data request op\n"
      "                 collective shared (sizes like 4MiB, 256KiB)\n";
}

}  // namespace acic::service
