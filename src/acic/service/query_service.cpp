#include "acic/service/query_service.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <istream>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>

#include "acic/common/error.hpp"
#include "acic/common/parallel.hpp"

namespace acic::service {

namespace {

std::map<std::string, std::string> parse_pairs(const std::string& line) {
  std::map<std::string, std::string> kv;
  std::istringstream is(line);
  std::string token;
  is >> token;  // skip the verb
  while (is >> token) {
    const auto eq = token.find('=');
    ACIC_CHECK_MSG(eq != std::string::npos && eq > 0,
                   "expected key=value, got '" << token << "'");
    kv[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return kv;
}

bool parse_bool(const std::string& v) {
  if (v == "yes" || v == "true" || v == "1" || v == "on") return true;
  if (v == "no" || v == "false" || v == "0" || v == "off") return false;
  throw Error("expected yes/no, got '" + v + "'");
}

core::Objective parse_objective(const std::string& v) {
  if (v == "performance" || v == "perf" || v == "time") {
    return core::Objective::kPerformance;
  }
  if (v == "cost" || v == "money") return core::Objective::kCost;
  throw Error("unknown objective '" + v + "'");
}

cloud::IoConfig config_by_label(const std::string& label) {
  for (const auto& c : cloud::IoConfig::enumerate_candidates()) {
    if (c.label() == label) return c;
  }
  throw Error("unknown config label '" + label + "'");
}

std::string verb_of(const std::string& line) {
  std::istringstream is(line);
  std::string verb;
  is >> verb;
  return verb;
}

/// parse_count, bounded to int for the workload fields.
int parse_int_field(const std::string& key, const std::string& text) {
  const std::size_t v = parse_count(key, text);
  if (v > static_cast<std::size_t>(std::numeric_limits<int>::max())) {
    throw Error(key + "='" + text + "' is out of range");
  }
  return static_cast<int>(v);
}

}  // namespace

Bytes parse_size(const std::string& text) {
  ACIC_CHECK_MSG(!text.empty(), "empty size literal");
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &pos);
  } catch (const std::exception&) {
    // std::stod's "stod" message is useless to a protocol client; name
    // the offending input instead.
    throw Error("malformed size literal '" + text + "'");
  }
  if (!std::isfinite(value) || value <= 0.0) {
    throw Error("size literal '" + text + "' must be positive and finite");
  }
  std::string unit = text.substr(pos);
  std::transform(unit.begin(), unit.end(), unit.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (unit.empty() || unit == "b") return value;
  if (unit == "kib" || unit == "kb" || unit == "k") return value * KiB;
  if (unit == "mib" || unit == "mb" || unit == "m") return value * MiB;
  if (unit == "gib" || unit == "gb" || unit == "g") return value * GiB;
  if (unit == "tib" || unit == "tb" || unit == "t") return value * TiB;
  throw Error("unknown size unit '" + unit + "'");
}

std::size_t parse_count(const std::string& key, const std::string& text) {
  const bool all_digits =
      !text.empty() &&
      std::all_of(text.begin(), text.end(),
                  [](unsigned char c) { return std::isdigit(c) != 0; });
  if (!all_digits) {
    throw Error(key + " must be a non-negative integer, got '" + text + "'");
  }
  try {
    return static_cast<std::size_t>(std::stoull(text));
  } catch (const std::exception&) {
    throw Error(key + "='" + text + "' is out of range");
  }
}

io::Workload parse_workload_query(const std::string& line) {
  const auto kv = parse_pairs(line);
  io::Workload w;
  w.name = "query";
  for (const auto& [key, value] : kv) {
    if (key == "objective" || key == "top_k" || key == "config") continue;
    if (key == "np") {
      w.num_processes = parse_int_field(key, value);
    } else if (key == "io_procs") {
      w.num_io_processes = parse_int_field(key, value);
    } else if (key == "interface") {
      w.interface = io::interface_from_string(value);
    } else if (key == "iterations") {
      w.iterations = parse_int_field(key, value);
    } else if (key == "data") {
      w.data_size = parse_size(value);
    } else if (key == "request") {
      w.request_size = parse_size(value);
    } else if (key == "op") {
      w.op = io::opmix_from_string(value);
    } else if (key == "collective") {
      w.collective = parse_bool(value);
    } else if (key == "shared") {
      w.file_shared = parse_bool(value);
    } else {
      throw Error("unknown workload key '" + key + "'");
    }
  }
  w.normalize();
  ACIC_CHECK_MSG(w.valid(), "query describes an invalid workload");
  return w;
}

QueryService::Engine::Engine(core::TrainingDatabase db,
                             core::PbRankingResult rank)
    : database(std::move(db)),
      ranking(std::move(rank)),
      perf_model(database, core::Objective::kPerformance),
      cost_model(database, core::Objective::kCost) {}

QueryService::QueryService(core::TrainingDatabase database,
                           core::PbRankingResult ranking) {
  auto& registry = obs::MetricsRegistry::global();
  auto verb_metrics = [&registry](const char* verb) {
    VerbMetrics m;
    m.requests = &registry.counter(std::string("service.requests.") + verb);
    m.latency_us =
        &registry.histogram(std::string("service.latency_us.") + verb);
    return m;
  };
  recommend_metrics_ = verb_metrics("recommend");
  predict_metrics_ = verb_metrics("predict");
  rank_metrics_ = verb_metrics("rank");
  stats_metrics_ = verb_metrics("stats");
  other_metrics_ = verb_metrics("other");
  errors_ = &registry.counter("service.errors");

  obs::Timer train_timer(registry.histogram("service.train_latency_us"));
  registry.counter("service.engine_builds").inc();
  publish(std::make_shared<const Engine>(std::move(database),
                                         std::move(ranking)));
}

void QueryService::update_database(core::TrainingDatabase database) {
  auto& registry = obs::MetricsRegistry::global();
  obs::Timer train_timer(registry.histogram("service.train_latency_us"));
  registry.counter("service.engine_builds").inc();
  // Train the replacement engine *before* publishing it: readers keep
  // answering from the old snapshot during the (expensive) build, then
  // pick up the new one on their next request.
  const EngineRef current = engine();
  publish(std::make_shared<const Engine>(std::move(database),
                                         current->ranking));
}

std::size_t QueryService::database_size() const {
  return engine()->database.size();
}

const QueryService::VerbMetrics& QueryService::metrics_for(
    const std::string& verb) const {
  if (verb == "recommend") return recommend_metrics_;
  if (verb == "predict") return predict_metrics_;
  if (verb == "rank") return rank_metrics_;
  if (verb == "stats") return stats_metrics_;
  return other_metrics_;
}

std::string QueryService::handle(const std::string& request_line) {
  const std::string verb = verb_of(request_line);
  const VerbMetrics& vm = metrics_for(verb);
  vm.requests->inc();
  obs::Timer timer(*vm.latency_us);
  try {
    // Pin one immutable snapshot for the whole request; a concurrent
    // update_database() cannot pull the models out from under us.
    const EngineRef e = engine();
    if (verb == "recommend") return handle_recommend(*e, request_line);
    if (verb == "predict") return handle_predict(*e, request_line);
    if (verb == "rank") return handle_rank(*e, request_line);
    if (verb == "stats") return handle_stats(*e);
    if (verb == "help" || verb.empty()) return help_text();
    errors_->inc();
    return "error unknown verb '" + verb + "' (try: help)\n";
  } catch (const std::exception& e) {
    errors_->inc();
    return std::string("error ") + e.what() + "\n";
  }
}

std::vector<std::string> QueryService::handle_batch(
    const std::vector<std::string>& request_lines, unsigned threads) {
  std::vector<std::string> responses(request_lines.size());
  parallel_for(
      request_lines.size(),
      [&](std::size_t i) { responses[i] = handle(request_lines[i]); },
      threads);
  return responses;
}

std::size_t QueryService::serve(std::istream& in, std::ostream& out,
                                unsigned threads, std::size_t batch_size) {
  if (batch_size == 0) batch_size = 1;
  std::size_t served = 0;
  std::vector<std::string> batch;
  std::string line;
  bool stop = false;
  while (!stop) {
    batch.clear();
    while (batch.size() < batch_size) {
      if (!std::getline(in, line)) {
        stop = true;
        break;
      }
      if (line == "quit" || line == "exit") {
        stop = true;
        break;
      }
      if (line.empty()) continue;
      batch.push_back(line);
    }
    if (batch.empty()) continue;
    for (const auto& response : handle_batch(batch, threads)) {
      out << response;
    }
    out.flush();
    served += batch.size();
  }
  return served;
}

std::string QueryService::handle_recommend(const Engine& engine,
                                           const std::string& line) {
  const auto kv = parse_pairs(line);
  const auto obj_it = kv.find("objective");
  const core::Objective objective =
      obj_it == kv.end() ? core::Objective::kPerformance
                         : parse_objective(obj_it->second);
  const auto k_it = kv.find("top_k");
  const std::size_t top_k =
      k_it == kv.end() ? 3 : parse_count("top_k", k_it->second);
  const auto traits = parse_workload_query(line);

  const auto recs = engine.model_for(objective).recommend(traits, top_k);
  std::ostringstream os;
  os << "ok " << recs.size() << " recommendations (objective="
     << core::to_string(objective) << ")\n";
  for (const auto& r : recs) {
    os << "  " << r.config.label() << " predicted_improvement="
       << r.predicted_improvement << "\n";
  }
  return os.str();
}

std::string QueryService::handle_predict(const Engine& engine,
                                         const std::string& line) {
  const auto kv = parse_pairs(line);
  const auto cfg_it = kv.find("config");
  ACIC_CHECK_MSG(cfg_it != kv.end(), "predict needs config=<label>");
  const auto config = config_by_label(cfg_it->second);
  const auto obj_it = kv.find("objective");
  const core::Objective objective =
      obj_it == kv.end() ? core::Objective::kPerformance
                         : parse_objective(obj_it->second);
  const auto traits = parse_workload_query(line);
  const double improvement =
      engine.model_for(objective).predict(config, traits);
  std::ostringstream os;
  os << "ok predicted_improvement=" << improvement << " config="
     << config.label() << " objective=" << core::to_string(objective)
     << "\n";
  return os.str();
}

std::string QueryService::handle_rank(const Engine& engine,
                                      const std::string& line) {
  const auto kv = parse_pairs(line);
  const auto top_it = kv.find("top");
  std::size_t top = top_it == kv.end()
                        ? engine.ranking.importance.size()
                        : parse_count("top", top_it->second);
  top = std::min(top, engine.ranking.importance.size());
  std::ostringstream os;
  os << "ok " << top << " dimensions by PB importance\n";
  for (std::size_t i = 0; i < top; ++i) {
    const auto dim = static_cast<core::Dim>(engine.ranking.importance[i]);
    os << "  " << (i + 1) << ". "
       << core::ParamSpace::dimension(dim).name << "\n";
  }
  return os.str();
}

std::string QueryService::handle_stats(const Engine& engine) {
  std::ostringstream os;
  os << "ok database=" << engine.database.size() << " samples, "
     << cloud::IoConfig::enumerate_candidates().size()
     << " candidate configs\n";
  os << obs::MetricsRegistry::global().snapshot().to_text("  ");
  return os.str();
}

std::string QueryService::help_text() {
  return
      "ok commands\n"
      "  recommend objective=performance|cost top_k=N <workload keys>\n"
      "  predict config=<label> objective=... <workload keys>\n"
      "  rank [top=N]\n"
      "  stats\n"
      "  workload keys: np io_procs interface iterations data request op\n"
      "                 collective shared (sizes like 4MiB, 256KiB)\n";
}

}  // namespace acic::service
