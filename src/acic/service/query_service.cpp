#include "acic/service/query_service.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <istream>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>

#include "acic/common/error.hpp"
#include "acic/common/parallel.hpp"
#include "acic/exec/executor.hpp"
#include "acic/io/runner.hpp"
#include "acic/plugin/substrates.hpp"

namespace acic::service {

namespace {

std::map<std::string, std::string> parse_pairs(const std::string& line) {
  std::map<std::string, std::string> kv;
  std::istringstream is(line);
  std::string token;
  is >> token;  // skip the verb
  while (is >> token) {
    const auto eq = token.find('=');
    ACIC_CHECK_MSG(eq != std::string::npos && eq > 0,
                   "expected key=value, got '" << token << "'");
    kv[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return kv;
}

bool parse_bool(const std::string& v) {
  if (v == "yes" || v == "true" || v == "1" || v == "on") return true;
  if (v == "no" || v == "false" || v == "0" || v == "off") return false;
  throw Error("expected yes/no, got '" + v + "'");
}

core::Objective parse_objective(const std::string& v) {
  if (v == "performance" || v == "perf" || v == "time") {
    return core::Objective::kPerformance;
  }
  if (v == "cost" || v == "money") return core::Objective::kCost;
  throw Error("unknown objective '" + v + "'");
}

cloud::IoConfig config_by_label(const std::string& label) {
  for (const auto& c : cloud::IoConfig::enumerate_candidates()) {
    if (c.label() == label) return c;
  }
  throw Error("unknown config label '" + label + "'");
}

std::string verb_of(const std::string& line) {
  std::istringstream is(line);
  std::string verb;
  is >> verb;
  return verb;
}

/// parse_count, bounded to int for the workload fields.
int parse_int_field(const std::string& key, const std::string& text) {
  const std::size_t v = parse_count(key, text);
  if (v > static_cast<std::size_t>(std::numeric_limits<int>::max())) {
    throw Error(key + "='" + text + "' is out of range");
  }
  return static_cast<int>(v);
}

/// Non-negative, finite double protocol field (fault-model knobs).
double parse_nonneg_double(const std::string& key, const std::string& text) {
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(text, &pos);
  } catch (const std::exception&) {
    throw Error(key + "='" + text + "' is not a number");
  }
  if (pos != text.size() || !std::isfinite(v) || v < 0.0) {
    throw Error(key + "='" + text + "' must be a non-negative number");
  }
  return v;
}

/// Keys of the simulate verb that are *not* workload keys.
bool is_simulate_key(const std::string& key) {
  static const char* kKeys[] = {
      "seed",       "failures", "brownouts", "brownout_fraction",
      "stragglers", "straggler_factor", "correlated", "permanent",
      "retry",      "timeout",  "attempts",  "watchdog",  "chaos",
      "preemptions", "notice",  "checkpoint", "checkpoint_interval",
      "checkpoint_bytes", "max_restarts", "spot", "spot_factor",
      "restart_cost"};
  for (const char* k : kKeys) {
    if (key == k) return true;
  }
  return false;
}

}  // namespace

Bytes parse_size(const std::string& text) {
  ACIC_CHECK_MSG(!text.empty(), "empty size literal");
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &pos);
  } catch (const std::exception&) {
    // std::stod's "stod" message is useless to a protocol client; name
    // the offending input instead.
    throw Error("malformed size literal '" + text + "'");
  }
  if (!std::isfinite(value) || value <= 0.0) {
    throw Error("size literal '" + text + "' must be positive and finite");
  }
  std::string unit = text.substr(pos);
  std::transform(unit.begin(), unit.end(), unit.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (unit.empty() || unit == "b") return value;
  if (unit == "kib" || unit == "kb" || unit == "k") return value * KiB;
  if (unit == "mib" || unit == "mb" || unit == "m") return value * MiB;
  if (unit == "gib" || unit == "gb" || unit == "g") return value * GiB;
  if (unit == "tib" || unit == "tb" || unit == "t") return value * TiB;
  throw Error("unknown size unit '" + unit + "'");
}

std::size_t parse_count(const std::string& key, const std::string& text) {
  const bool all_digits =
      !text.empty() &&
      std::all_of(text.begin(), text.end(),
                  [](unsigned char c) { return std::isdigit(c) != 0; });
  if (!all_digits) {
    throw Error(key + " must be a non-negative integer, got '" + text + "'");
  }
  try {
    return static_cast<std::size_t>(std::stoull(text));
  } catch (const std::exception&) {
    throw Error(key + "='" + text + "' is out of range");
  }
}

io::Workload parse_workload_query(const std::string& line) {
  const auto kv = parse_pairs(line);
  io::Workload w;
  w.name = "query";
  for (const auto& [key, value] : kv) {
    if (key == "objective" || key == "top_k" || key == "config") continue;
    if (key == "top" || key == "model") continue;  // rank verb controls
    if (key == "learner" || key == "fs") continue;  // plugin selectors
    if (is_simulate_key(key)) continue;
    if (key == "np") {
      w.num_processes = parse_int_field(key, value);
    } else if (key == "io_procs") {
      w.num_io_processes = parse_int_field(key, value);
    } else if (key == "interface") {
      w.interface = io::interface_from_string(value);
    } else if (key == "iterations") {
      w.iterations = parse_int_field(key, value);
    } else if (key == "data") {
      w.data_size = parse_size(value);
    } else if (key == "request") {
      w.request_size = parse_size(value);
    } else if (key == "op") {
      w.op = io::opmix_from_string(value);
    } else if (key == "collective") {
      w.collective = parse_bool(value);
    } else if (key == "shared") {
      w.file_shared = parse_bool(value);
    } else {
      throw Error("unknown workload key '" + key + "'");
    }
  }
  w.normalize();
  ACIC_CHECK_MSG(w.valid(), "query describes an invalid workload");
  return w;
}

QueryService::Engine::Engine(core::TrainingDatabase db,
                             core::PbRankingResult rank,
                             std::vector<std::string> learner_names)
    : database(std::move(db)),
      ranking(std::move(rank)),
      learners(std::move(learner_names)) {
  // A snapshot whose models cannot be trained (empty or degenerate
  // database) still serves: recommend falls back to the PB ranking.
  // Each learner trains independently — one blowing up must not take
  // the others (or the fallback path) down with it.
  for (const auto& name : learners) {
    try {
      ModelSet set;
      set.perf.emplace(database, core::Objective::kPerformance,
                       std::string_view(name));
      set.cost.emplace(database, core::Objective::kCost,
                       std::string_view(name));
      models.emplace(name, std::move(set));
    } catch (const std::exception&) {
      // Absent from the map; requests naming it get a typed error.
    }
  }
}

QueryService::QueryService(core::TrainingDatabase database,
                           core::PbRankingResult ranking,
                           ServiceOptions options)
    : options_(std::move(options)) {
  ACIC_CHECK_MSG(!options_.learners.empty(),
                 "ServiceOptions::learners must name at least one learner");
  // Validate the learner names against the plugin registry up front: a
  // typo fails startup with a PluginError listing what is registered,
  // instead of every future request erroring.
  for (const auto& name : options_.learners) {
    plugin::learners().lookup(name);
  }
  auto& registry = obs::MetricsRegistry::global();
  auto verb_metrics = [&registry](const char* verb) {
    VerbMetrics m;
    m.requests = &registry.counter(std::string("service.requests.") + verb);
    m.latency_us =
        &registry.histogram(std::string("service.latency_us.") + verb);
    return m;
  };
  recommend_metrics_ = verb_metrics("recommend");
  predict_metrics_ = verb_metrics("predict");
  rank_metrics_ = verb_metrics("rank");
  simulate_metrics_ = verb_metrics("simulate");
  stats_metrics_ = verb_metrics("stats");
  plugins_metrics_ = verb_metrics("plugins");
  other_metrics_ = verb_metrics("other");
  errors_ = &registry.counter("service.errors");
  shed_ = &registry.counter("service.shed");
  deadline_exceeded_ = &registry.counter("service.deadline_exceeded");
  fallback_answers_ = &registry.counter("service.fallback_answers");
  engine_build_failures_ =
      &registry.counter("service.engine_build_failures");
  engine_builds_ = &registry.counter("service.engine_builds");
  train_latency_us_ = &registry.histogram("service.train_latency_us");

  obs::Timer train_timer(*train_latency_us_);
  engine_builds_->inc();
  auto first = std::make_shared<const Engine>(
      std::move(database), std::move(ranking), options_.learners);
  if (first->degraded()) engine_build_failures_->inc();
  publish(std::move(first));
}

void QueryService::update_database(core::TrainingDatabase database) {
  obs::Timer train_timer(*train_latency_us_);
  engine_builds_->inc();
  // Train the replacement engine *before* publishing it: readers keep
  // answering from the old snapshot during the (expensive) build, then
  // pick up the new one on their next request.
  const EngineRef current = engine();
  auto next = std::make_shared<const Engine>(
      std::move(database), current->ranking, current->learners);
  if (next->degraded()) {
    engine_build_failures_->inc();
    // A contribution batch that cannot train must not degrade a healthy
    // service: keep the current snapshot.  (If the service was already
    // degraded, take the new database anyway — at least the stats and
    // fallback answers reflect it.)
    if (!current->degraded()) return;
  }
  publish(std::move(next));
}

std::size_t QueryService::database_size() const {
  return engine()->database.size();
}

bool QueryService::degraded() const { return engine()->degraded(); }

const QueryService::VerbMetrics& QueryService::metrics_for(
    const std::string& verb) const {
  if (verb == "recommend") return recommend_metrics_;
  if (verb == "predict") return predict_metrics_;
  if (verb == "rank") return rank_metrics_;
  if (verb == "simulate") return simulate_metrics_;
  if (verb == "stats") return stats_metrics_;
  if (verb == "plugins") return plugins_metrics_;
  return other_metrics_;
}

std::string QueryService::handle(const std::string& request_line) {
  return handle(request_line, std::chrono::steady_clock::now());
}

std::string QueryService::handle(
    const std::string& request_line,
    std::chrono::steady_clock::time_point admitted_at) {
  const std::string verb = verb_of(request_line);
  const VerbMetrics& vm = metrics_for(verb);
  vm.requests->inc();

  // Bounded admission: shed instead of queuing up behind slow requests.
  // The shed path is counted but not timed — the latency histograms
  // describe admitted work only.
  const std::size_t running =
      in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1;
  struct InFlightGuard {
    std::atomic<std::size_t>& gauge;
    ~InFlightGuard() { gauge.fetch_sub(1, std::memory_order_acq_rel); }
  } guard{in_flight_};
  if (options_.max_in_flight > 0 && running > options_.max_in_flight) {
    shed_->inc();
    std::ostringstream os;
    os << "shed at capacity (" << options_.max_in_flight
       << " requests in flight); retry later\n";
    return os.str();
  }

  const auto elapsed_us_since = [](std::chrono::steady_clock::time_point t) {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - t)
        .count();
  };
  // Deadline gate #1, before the verb runs: a request that burned its
  // whole budget waiting (in a socket-layer queue, or behind a slow
  // batch neighbour) is answered without doing the work — under
  // overload, computing an answer nobody is waiting for anymore only
  // deepens the overload.
  if (options_.deadline_us > 0.0) {
    const double waited_us = elapsed_us_since(admitted_at);
    if (waited_us > options_.deadline_us) {
      deadline_exceeded_->inc();
      std::ostringstream os;
      os << "timeout request exceeded deadline (" << waited_us << "us > "
         << options_.deadline_us << "us) phase=queue\n";
      return os.str();
    }
  }

  obs::Timer timer(*vm.latency_us);
  std::string response = dispatch(verb, request_line);
  // Deadline gate #2, re-checked after the verb dispatch: a request
  // that blows `deadline_us` *during* compute is counted too, and the
  // late answer is replaced by a typed, explicitly degraded response.
  if (options_.deadline_us > 0.0) {
    const double elapsed_us = elapsed_us_since(admitted_at);
    if (elapsed_us > options_.deadline_us) {
      deadline_exceeded_->inc();
      std::ostringstream os;
      os << "timeout request exceeded deadline (" << elapsed_us << "us > "
         << options_.deadline_us << "us) phase=compute degraded=yes\n";
      return os.str();
    }
  }
  return response;
}

std::string QueryService::dispatch(const std::string& verb,
                                   const std::string& request_line) {
  try {
    // Pin one immutable snapshot for the whole request; a concurrent
    // update_database() cannot pull the models out from under us.
    const EngineRef e = engine();
    if (verb == "recommend") return handle_recommend(*e, request_line);
    if (verb == "predict") return handle_predict(*e, request_line);
    if (verb == "rank") return handle_rank(*e, request_line);
    if (verb == "simulate") return handle_simulate(request_line);
    if (verb == "stats") return handle_stats(*e);
    if (verb == "plugins") return handle_plugins();
    if (verb == "help" || verb.empty()) return help_text();
    errors_->inc();
    return "error unknown verb '" + verb + "' (try: help)\n";
  } catch (const std::exception& e) {
    errors_->inc();
    return std::string("error ") + e.what() + "\n";
  }
}

std::vector<std::string> QueryService::handle_batch(
    const std::vector<std::string>& request_lines, unsigned threads) {
  std::vector<std::string> responses(request_lines.size());
  parallel_for(
      request_lines.size(),
      [&](std::size_t i) { responses[i] = handle(request_lines[i]); },
      threads);
  return responses;
}

std::size_t QueryService::serve(std::istream& in, std::ostream& out,
                                unsigned threads, std::size_t batch_size) {
  if (batch_size == 0) batch_size = 1;
  std::size_t served = 0;
  std::vector<std::string> batch;
  std::string line;
  bool stop = false;
  while (!stop) {
    batch.clear();
    while (batch.size() < batch_size) {
      if (!std::getline(in, line)) {
        stop = true;
        break;
      }
      if (line == "quit" || line == "exit") {
        stop = true;
        break;
      }
      if (line.empty()) continue;
      batch.push_back(line);
    }
    if (batch.empty()) continue;
    for (const auto& response : handle_batch(batch, threads)) {
      out << response;
    }
    out.flush();
    served += batch.size();
  }
  return served;
}

std::string QueryService::handle_recommend(const Engine& engine,
                                           const std::string& line) {
  const auto kv = parse_pairs(line);
  const auto obj_it = kv.find("objective");
  const core::Objective objective =
      obj_it == kv.end() ? core::Objective::kPerformance
                         : parse_objective(obj_it->second);
  const auto k_it = kv.find("top_k");
  const std::size_t top_k =
      k_it == kv.end() ? 3 : parse_count("top_k", k_it->second);
  const auto traits = parse_workload_query(line);

  // Optional fs= filter: restrict the candidate pool to one registered
  // filesystem.  An unknown name throws the registry's PluginError
  // listing the registered filesystems.
  const auto fs_it = kv.find("fs");
  std::vector<cloud::IoConfig> candidates;
  if (fs_it != kv.end()) {
    const auto& substrate = plugin::filesystem_named(fs_it->second);
    for (const auto& c : cloud::IoConfig::enumerate_candidates()) {
      if (c.fs == substrate.type) candidates.push_back(c);
    }
    if (candidates.empty()) {
      throw Error("no candidate configs for filesystem '" + substrate.name +
                  "' (registered, but not in the default grid)");
    }
  } else {
    candidates = cloud::IoConfig::enumerate_candidates();
  }

  // Optional learner= selection; defaults to the snapshot's primary.
  // An unregistered name throws the registry's PluginError; a
  // registered name this snapshot did not train is a typed error
  // listing what *is* trained.
  const auto learner_it = kv.find("learner");
  const std::string learner = learner_it != kv.end()
                                  ? learner_it->second
                                  : engine.primary_learner();
  plugin::learners().lookup(learner);
  const core::Acic* model = engine.model_for(objective, learner);
  if (model == nullptr) {
    if (learner_it != kv.end()) throw untrained_learner_error(engine, learner);
    // No trained snapshot: degrade gracefully to the PB screening
    // ranking instead of erroring out.
    fallback_answers_->inc();
    return fallback_recommend(engine, objective, top_k);
  }
  // Optional restart-aware ranking: chaos=<preset> (or an explicit
  // preemptions= rate) arms a PreemptionModel, so the ranking trades raw
  // bandwidth against checkpoint-dump and recovery economics under the
  // given spot terms.
  core::PreemptionModel preemption;
  if (const auto chaos_it = kv.find("chaos"); chaos_it != kv.end()) {
    preemption.preemptions_per_hour = plugin::fault_models()
                                          .lookup(chaos_it->second)
                                          .model.preemptions_per_hour;
  }
  if (const auto it = kv.find("preemptions"); it != kv.end()) {
    preemption.preemptions_per_hour =
        parse_nonneg_double("preemptions", it->second);
  }
  if (const auto it = kv.find("checkpoint_interval"); it != kv.end()) {
    preemption.checkpoint_interval =
        parse_nonneg_double("checkpoint_interval", it->second);
  }
  if (const auto it = kv.find("checkpoint_bytes"); it != kv.end()) {
    preemption.checkpoint_bytes = parse_size(it->second);
  }
  if (const auto it = kv.find("spot_factor"); it != kv.end()) {
    preemption.spot.price_factor =
        parse_nonneg_double("spot_factor", it->second);
  }
  if (const auto it = kv.find("restart_cost"); it != kv.end()) {
    preemption.spot.per_restart_cost =
        parse_nonneg_double("restart_cost", it->second);
  }
  const auto recs =
      preemption.active()
          ? model->recommend(traits, preemption, top_k, candidates)
          : model->recommend(traits, top_k, candidates);
  std::ostringstream os;
  os << "ok " << recs.size() << " recommendations (objective="
     << core::to_string(objective);
  if (learner_it != kv.end()) os << ", learner=" << learner;
  if (fs_it != kv.end()) os << ", fs=" << fs_it->second;
  if (preemption.active()) os << ", preemption_adjusted=yes";
  os << ")\n";
  for (const auto& r : recs) {
    os << "  " << r.config.label() << " predicted_improvement="
       << r.predicted_improvement << "\n";
  }
  return os.str();
}

Error QueryService::untrained_learner_error(const Engine& engine,
                                            const std::string& learner) {
  std::string trained;
  for (const auto& [name, set] : engine.models) {
    if (!trained.empty()) trained += ", ";
    trained += name;
  }
  return Error("learner '" + learner +
               "' is not trained in this snapshot (trained: " +
               (trained.empty() ? "none" : trained) + ")");
}

std::string QueryService::fallback_recommend(const Engine& engine,
                                             core::Objective objective,
                                             std::size_t top_k) {
  // Score each candidate by the PB effects of its system levels: the
  // effects are signed impacts on log(time) (positive = a higher level
  // slows the job down), so a candidate whose high-valued dimensions
  // carry negative effects scores well.  Workload traits play no role —
  // this is a workload-agnostic prior, which is exactly what the paper's
  // screening phase provides before any model exists.
  const auto& effects = engine.ranking.effects;
  struct Scored {
    double score = 0.0;
    const cloud::IoConfig* config = nullptr;
  };
  const auto candidates = cloud::IoConfig::enumerate_candidates();
  std::vector<Scored> scored;
  scored.reserve(candidates.size());
  io::Workload neutral;  // defaults; only system dims are scored anyway
  for (const auto& c : candidates) {
    const core::Point p = core::ParamSpace::encode(c, neutral);
    double score = 0.0;
    for (const auto& d : core::ParamSpace::dimensions()) {
      if (!d.is_system) continue;
      const auto dim = static_cast<std::size_t>(d.dim);
      if (dim >= effects.size()) continue;
      const double lo = core::ParamSpace::low(d.dim);
      const double hi = core::ParamSpace::high(d.dim);
      if (hi <= lo) continue;
      // Normalise the level to [-1, 1] (the PB design's coding).
      const double level = 2.0 * (p[dim] - lo) / (hi - lo) - 1.0;
      score += -effects[dim] * level;
    }
    scored.push_back({score, &c});
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& a, const Scored& b) {
                     return a.score > b.score;
                   });
  const std::size_t n = std::min(top_k, scored.size());
  std::ostringstream os;
  os << "ok " << n << " recommendations (objective="
     << core::to_string(objective) << ", fallback=pb-ranking)\n";
  for (std::size_t i = 0; i < n; ++i) {
    os << "  " << scored[i].config->label() << " pb_score="
       << scored[i].score << "\n";
  }
  return os.str();
}

std::string QueryService::handle_predict(const Engine& engine,
                                         const std::string& line) {
  const auto kv = parse_pairs(line);
  const auto cfg_it = kv.find("config");
  ACIC_CHECK_MSG(cfg_it != kv.end(), "predict needs config=<label>");
  const auto config = config_by_label(cfg_it->second);
  const auto obj_it = kv.find("objective");
  const core::Objective objective =
      obj_it == kv.end() ? core::Objective::kPerformance
                         : parse_objective(obj_it->second);
  const auto traits = parse_workload_query(line);
  const auto learner_it = kv.find("learner");
  const std::string learner = learner_it != kv.end()
                                  ? learner_it->second
                                  : engine.primary_learner();
  plugin::learners().lookup(learner);  // typed unknown-learner error
  const core::Acic* model = engine.model_for(objective, learner);
  if (model == nullptr && learner_it != kv.end()) {
    throw untrained_learner_error(engine, learner);
  }
  ACIC_CHECK_MSG(model != nullptr,
                 "no trained model snapshot available (empty training "
                 "database?); try recommend for a PB-ranking fallback");
  const double improvement = model->predict(config, traits);
  std::ostringstream os;
  os << "ok predicted_improvement=" << improvement << " config="
     << config.label() << " objective=" << core::to_string(objective);
  if (learner_it != kv.end()) os << " learner=" << learner;
  os << "\n";
  return os.str();
}

std::string QueryService::handle_simulate(const std::string& line) {
  const auto kv = parse_pairs(line);
  const auto cfg_it = kv.find("config");
  ACIC_CHECK_MSG(cfg_it != kv.end(), "simulate needs config=<label>");
  const auto config = config_by_label(cfg_it->second);
  const auto traits = parse_workload_query(line);

  io::RunOptions opts;
  const auto get = [&kv](const char* key) {
    const auto it = kv.find(key);
    return it == kv.end() ? static_cast<const std::string*>(nullptr)
                          : &it->second;
  };
  // chaos=<preset> seeds the whole fault model from a registered plugin
  // (unknown names throw the registry's PluginError listing the
  // presets); the explicit fields below still override per knob.
  if (const auto* v = get("chaos")) {
    opts.fault_model = plugin::fault_models().lookup(*v).model;
  }
  if (const auto* v = get("seed")) opts.seed = parse_count("seed", *v);
  if (const auto* v = get("failures")) {
    opts.fault_model.outages_per_hour = parse_nonneg_double("failures", *v);
  }
  if (const auto* v = get("brownouts")) {
    opts.fault_model.brownouts_per_hour =
        parse_nonneg_double("brownouts", *v);
  }
  if (const auto* v = get("brownout_fraction")) {
    opts.fault_model.brownout_fraction =
        parse_nonneg_double("brownout_fraction", *v);
  }
  if (const auto* v = get("stragglers")) {
    opts.fault_model.stragglers_per_hour =
        parse_nonneg_double("stragglers", *v);
  }
  if (const auto* v = get("straggler_factor")) {
    opts.fault_model.straggler_factor =
        parse_nonneg_double("straggler_factor", *v);
  }
  if (const auto* v = get("correlated")) {
    opts.fault_model.correlated_outage_probability =
        parse_nonneg_double("correlated", *v);
  }
  if (const auto* v = get("permanent")) {
    opts.fault_model.permanent_loss_probability =
        parse_nonneg_double("permanent", *v);
  }
  if (const auto* v = get("retry")) {
    opts.tuning.retry.enabled = parse_bool(*v);
  }
  if (const auto* v = get("timeout")) {
    opts.tuning.retry.request_timeout = parse_nonneg_double("timeout", *v);
  }
  if (const auto* v = get("attempts")) {
    opts.tuning.retry.max_attempts =
        parse_int_field("attempts", *v);
  }
  if (const auto* v = get("watchdog")) {
    opts.watchdog_sim_time = parse_nonneg_double("watchdog", *v);
  }
  if (const auto* v = get("preemptions")) {
    opts.fault_model.preemptions_per_hour =
        parse_nonneg_double("preemptions", *v);
  }
  if (const auto* v = get("notice")) {
    opts.fault_model.preemption_notice = parse_nonneg_double("notice", *v);
  }
  if (const auto* v = get("checkpoint")) {
    opts.checkpoint.enabled = parse_bool(*v);
  }
  if (const auto* v = get("checkpoint_interval")) {
    opts.checkpoint.interval =
        parse_nonneg_double("checkpoint_interval", *v);
  }
  if (const auto* v = get("checkpoint_bytes")) {
    opts.checkpoint.bytes = parse_size(*v);
    // Naming a dump size is opting into the periodic dumps.
    opts.checkpoint.enabled = true;
  }
  if (const auto* v = get("max_restarts")) {
    opts.checkpoint.max_restarts = parse_int_field("max_restarts", *v);
  }
  if (const auto* v = get("spot")) {
    if (parse_bool(*v)) opts.spot_pricing.emplace();
  }
  if (const auto* v = get("spot_factor")) {
    if (!opts.spot_pricing) opts.spot_pricing.emplace();
    opts.spot_pricing->price_factor = parse_nonneg_double("spot_factor", *v);
  }
  if (const auto* v = get("restart_cost")) {
    if (!opts.spot_pricing) opts.spot_pricing.emplace();
    opts.spot_pricing->per_restart_cost =
        parse_nonneg_double("restart_cost", *v);
  }
  ACIC_CHECK_MSG(opts.fault_model.valid(), "invalid fault model");
  ACIC_CHECK_MSG(opts.tuning.retry.valid(), "invalid retry policy");
  ACIC_CHECK_MSG(opts.checkpoint.valid(), "invalid checkpoint policy");

  // Through the engine: a simulate verb repeated with identical
  // parameters — or one matching a run a training sweep already did —
  // answers from the run cache instead of burning a fresh simulation.
  const auto r = exec::Executor::global().run(
      exec::RunRequest{traits, config, opts});
  std::ostringstream os;
  os << "ok time=" << r.total_time << " cost=" << r.cost
     << " outcome=" << io::to_string(r.outcome) << " retries=" << r.retries
     << " timeouts=" << r.timeouts << " failed_requests="
     << r.failed_requests << " cancelled_fault_events="
     << r.fault_events_cancelled << " preemptions=" << r.preemptions
     << " restarts=" << r.restarts << " lost_time=" << r.lost_sim_time
     << " checkpoint_bytes=" << r.checkpoint_bytes
     << " sim_events=" << r.sim_events << "\n";
  return os.str();
}

std::string QueryService::handle_rank(const Engine& engine,
                                      const std::string& line) {
  const auto kv = parse_pairs(line);
  const auto top_it = kv.find("top");
  std::size_t top = top_it == kv.end()
                        ? engine.ranking.importance.size()
                        : parse_count("top", top_it->second);
  top = std::min(top, engine.ranking.importance.size());
  std::ostringstream os;
  os << "ok " << top << " dimensions by PB importance\n";
  for (std::size_t i = 0; i < top; ++i) {
    const auto dim = static_cast<core::Dim>(engine.ranking.importance[i]);
    os << "  " << (i + 1) << ". "
       << core::ParamSpace::dimension(dim).name << "\n";
  }

  // Opt-in model-side section: one batch prediction over every candidate
  // config ranks the *system* dimensions by how much the trained model
  // thinks they matter for the given workload (defaults if no workload
  // keys are supplied).  Opt-in keeps the default response stable for
  // existing clients.
  const auto model_it = kv.find("model");
  if (model_it != kv.end() && parse_bool(model_it->second)) {
    const auto obj_it = kv.find("objective");
    const core::Objective objective =
        obj_it == kv.end() ? core::Objective::kPerformance
                           : parse_objective(obj_it->second);
    const core::Acic* model = engine.model_for(objective);
    ACIC_CHECK_MSG(model != nullptr,
                   "no trained model snapshot for the model-spread section "
                   "(empty training database?)");
    const auto traits = parse_workload_query(line);
    const auto spreads = core::model_dimension_spread(*model, traits);
    os << "  model spread (objective=" << core::to_string(objective)
       << ", workload-specific, higher = more impact)\n";
    for (std::size_t i = 0; i < spreads.size(); ++i) {
      os << "  " << (i + 1) << ". " << spreads[i].name
         << " spread=" << spreads[i].spread << "\n";
    }
  }
  return os.str();
}

std::string QueryService::handle_stats(const Engine& engine) {
  std::ostringstream os;
  os << "ok database=" << engine.database.size() << " samples, "
     << cloud::IoConfig::enumerate_candidates().size()
     << " candidate configs, mode="
     << (engine.degraded() ? "fallback" : "full") << "\n";
  std::string trained;
  for (const auto& [name, set] : engine.models) {
    if (!trained.empty()) trained += ",";
    trained += name;
  }
  os << "  learners=" << (trained.empty() ? "none" : trained)
     << " primary=" << engine.primary_learner() << "\n";
  for (const auto& info : plugin::inventory()) {
    os << "  plugin " << info.summary << "\n";
  }
  os << obs::MetricsRegistry::global().snapshot().to_text("  ");
  return os.str();
}

std::string QueryService::handle_plugins() {
  const auto inv = plugin::inventory();
  std::ostringstream os;
  os << "ok " << inv.size() << " plugins registered\n";
  for (const auto& info : inv) {
    os << "  " << info.summary << "\n";
  }
  // A healthy binary has none of these; surfacing them here is what
  // keeps "registration never aborts" honest.
  for (const auto& err : plugin::registration_errors()) {
    os << "  registration-error " << err << "\n";
  }
  return os.str();
}

std::string QueryService::help_text() {
  return
      "ok commands\n"
      "  recommend objective=performance|cost top_k=N [learner=<name>]\n"
      "            [fs=<name>] [chaos=<preset>|preemptions=R\n"
      "            checkpoint_interval=S checkpoint_bytes=SZ spot_factor=F\n"
      "            restart_cost=$] <workload keys>\n"
      "  predict config=<label> objective=... [learner=<name>]\n"
      "          <workload keys>\n"
      "  rank [top=N] [model=yes objective=... <workload keys>]\n"
      "  simulate config=<label> <workload keys> [chaos=<preset>]\n"
      "           [chaos keys]\n"
      "  stats\n"
      "  plugins   (registered substrates: filesystems, learners,\n"
      "             fault-model presets, pricing models)\n"
      "  workload keys: np io_procs interface iterations data request op\n"
      "                 collective shared (sizes like 4MiB, 256KiB)\n"
      "  chaos keys: seed failures brownouts brownout_fraction stragglers\n"
      "              straggler_factor correlated permanent preemptions\n"
      "              notice retry timeout attempts watchdog checkpoint\n"
      "              checkpoint_interval checkpoint_bytes max_restarts\n"
      "              spot spot_factor restart_cost (rates per hour;\n"
      "              retry=yes arms deadline/backoff; checkpoint=yes or a\n"
      "              checkpoint_bytes size arms periodic dumps; spot=yes\n"
      "              bills at the spot discount plus per-restart fees;\n"
      "              seeded runs are reproducible)\n"
      "  learner/fs/chaos names resolve through the plugin registry;\n"
      "  unknown names answer with the registered list\n";
}

}  // namespace acic::service
