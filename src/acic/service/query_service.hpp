// Configuration query service — the paper's §8 future work ("web-based
// ACIC query service") realised as a transport-agnostic request/response
// engine: a line-oriented text protocol any front end (CLI, web gateway,
// batch script) can speak.
//
// Protocol (one request per line, key=value pairs, order-free):
//
//   recommend objective=performance top_k=3 np=256 io_procs=256
//             interface=MPI-IO iterations=40 data=4MiB request=4MiB
//             op=write collective=yes shared=yes
//   predict   config=pvfs.4.D.eph <same workload keys>
//   rank      [top=N]                     — PB dimension ranking
//   stats                                 — database summary
//   help
//
// Responses are "ok ..." / "error ..." lines followed by indented detail
// rows, so they stay greppable and machine-parseable.
#pragma once

#include <string>

#include "acic/core/predictor.hpp"
#include "acic/core/ranking.hpp"
#include "acic/core/training.hpp"

namespace acic::service {

/// Parse a size literal: "4MiB", "256KiB", "1.5GiB", "2048" (bytes).
Bytes parse_size(const std::string& text);

/// Parse one protocol line into a workload description.  Unknown keys
/// throw; missing keys keep the defaults below.
io::Workload parse_workload_query(const std::string& line);

class QueryService {
 public:
  /// The service owns its models; it trains one per objective lazily
  /// from the shared database snapshot.
  QueryService(core::TrainingDatabase database,
               core::PbRankingResult ranking);

  /// Handle one protocol line; never throws — malformed input yields an
  /// "error ..." response.
  std::string handle(const std::string& request_line);

  /// Refresh the database snapshot (a crowdsourced contribution batch)
  /// and invalidate trained models.
  void update_database(core::TrainingDatabase database);

  std::size_t database_size() const { return database_.size(); }

 private:
  std::string handle_recommend(const std::string& line);
  std::string handle_predict(const std::string& line);
  std::string handle_rank(const std::string& line);
  std::string handle_stats() const;
  static std::string help_text();

  const core::Acic& model_for(core::Objective objective);

  core::TrainingDatabase database_;
  core::PbRankingResult ranking_;
  std::unique_ptr<core::Acic> perf_model_;
  std::unique_ptr<core::Acic> cost_model_;
};

}  // namespace acic::service
