// Configuration query service — the paper's §8 future work ("web-based
// ACIC query service") realised as a transport-agnostic request/response
// engine: a line-oriented text protocol any front end (CLI, web gateway,
// batch script) can speak.
//
// Protocol (one request per line, key=value pairs, order-free):
//
//   recommend objective=performance top_k=3 np=256 io_procs=256
//             interface=MPI-IO iterations=40 data=4MiB request=4MiB
//             op=write collective=yes shared=yes
//   predict   config=pvfs.4.D.eph <same workload keys>
//   rank      [top=N] [model=yes objective=... <workload keys>]
//                                         — PB dimension ranking; model=yes
//                                           appends the trained model's
//                                           workload-specific dimension
//                                           spreads (one batch prediction)
//   simulate  config=<label> <workload keys> [seed= failures= brownouts=
//             brownout_fraction= stragglers= straggler_factor= correlated=
//             permanent= retry= timeout= attempts= watchdog=]
//                                         — one chaos run, reproducible
//   stats                                 — database + request metrics
//   plugins                               — substrate inventory (kind,
//                                           name, knob count, schema)
//   help
//
// recommend/predict additionally accept learner=<name> (any registered
// learner plugin trained in the snapshot) and recommend accepts
// fs=<name> to restrict candidates to one registered filesystem;
// simulate accepts chaos=<preset> (a registered fault-model plugin,
// overridable field by field).  Unknown names answer with a typed
// error listing what is registered.
//
// Responses are "ok ..." / "error ..." lines followed by indented detail
// rows, so they stay greppable and machine-parseable.  Under graceful
// degradation two more typed first words appear: "shed ..." (bounded
// admission rejected the request) and "timeout ..." (the per-request
// deadline expired) — clients can branch on the first token alone.
//
// Concurrency model: the service state is an immutable `Engine` snapshot
// (training database + ranking + both trained models) behind an
// atomically swapped shared_ptr.  `handle()` pins the current snapshot
// for the duration of one request; `update_database()` trains a *new*
// engine off to the side and swaps the pointer (copy-on-write) — the
// micro-mutex guards only the shared_ptr copy (a refcount bump, never
// training or prediction), so readers never wait on a writer's work and
// in-flight requests keep answering from the snapshot they started with.
// Both models are trained eagerly when an engine is built, so the hot
// path never trains.  Every request is counted and timed into the
// process-wide `acic::obs` registry under `service.requests.<verb>` /
// `service.latency_us.<verb>`.
#pragma once

#include <atomic>
#include <chrono>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "acic/common/mutex.hpp"
#include "acic/common/thread_annotations.hpp"
#include "acic/core/predictor.hpp"
#include "acic/core/ranking.hpp"
#include "acic/core/training.hpp"
#include "acic/obs/metrics.hpp"

namespace acic::service {

/// Parse a size literal: "4MiB", "256KiB", "1.5GiB", "2048" (bytes).
/// The value must be a positive, finite number; anything else (including
/// "-4MiB", "nan", or a bare unit) throws acic::Error naming the input.
Bytes parse_size(const std::string& text);

/// Parse a non-negative integer protocol field (top_k=…, np=…).  Signs,
/// non-digit characters, and out-of-range values throw acic::Error with
/// the offending key and text (std::stoul would happily wrap "-1").
std::size_t parse_count(const std::string& key, const std::string& text);

/// Parse one protocol line into a workload description.  Unknown keys
/// throw; missing keys keep the defaults below.
io::Workload parse_workload_query(const std::string& line);

/// Graceful-degradation knobs.  Both default off, which preserves the
/// legacy unbounded/undeadlined behaviour.
struct ServiceOptions {
  /// Bounded admission: requests beyond this many concurrently running
  /// ones are answered with a typed "shed ..." line instead of queuing
  /// (0 = unbounded).
  std::size_t max_in_flight = 0;
  /// Per-request compute deadline in microseconds; a request that blows
  /// it gets a typed "timeout ..." response (0 = none).
  double deadline_us = 0.0;
  /// Registered learner plugins to train per engine snapshot; the first
  /// entry is the primary (answers requests without a learner= key).
  /// Every name is validated against the plugin registry at
  /// construction, so a typo fails service startup with a typed error
  /// instead of surfacing per-request.
  std::vector<std::string> learners = {"cart"};
};

class QueryService {
 public:
  /// Builds the first engine snapshot: trains one model per objective
  /// eagerly so concurrent `handle()` calls never observe a half-trained
  /// model.  If training is impossible (e.g. an empty database), the
  /// service still comes up in fallback mode: recommend answers from the
  /// PB ranking, predict reports the model as unavailable.
  QueryService(core::TrainingDatabase database, core::PbRankingResult ranking,
               ServiceOptions options = {});

  /// Handle one protocol line; never throws — malformed input yields an
  /// "error ..." response.  Safe to call from any number of threads
  /// concurrently, including while `update_database()` swaps snapshots.
  std::string handle(const std::string& request_line);

  /// Same, with the deadline clock started at `admitted_at` instead of
  /// at entry — a network front end passes the frame-arrival time so
  /// queue wait counts against `deadline_us`.  The deadline is enforced
  /// on both sides of the verb dispatch: a request that is already over
  /// budget when it reaches compute is answered `timeout ... phase=queue`
  /// without doing the work, and one that blows the budget *during*
  /// compute is answered `timeout ... phase=compute degraded=yes` — both
  /// count into `service.deadline_exceeded`.
  std::string handle(const std::string& request_line,
                     std::chrono::steady_clock::time_point admitted_at);

  /// Handle a batch of independent requests, fanning across
  /// `parallel_for` (0 threads = hardware concurrency).  Response i
  /// answers request i.
  std::vector<std::string> handle_batch(
      const std::vector<std::string>& request_lines, unsigned threads = 0);

  /// Drive the service from a stream: reads request lines until EOF or a
  /// "quit"/"exit" line, answers them in batches of `batch_size` across
  /// `threads` workers, and writes responses to `out` in request order.
  /// Returns the number of requests served.
  std::size_t serve(std::istream& in, std::ostream& out,
                    unsigned threads = 0, std::size_t batch_size = 64);

  /// Refresh the database snapshot (a crowdsourced contribution batch):
  /// trains a replacement engine and atomically publishes it.  In-flight
  /// requests finish on the old snapshot; it is freed when the last one
  /// drops its reference.  If the replacement cannot be trained while
  /// the current engine has working models, the current one is kept (a
  /// bad contribution batch must not degrade a healthy service).
  void update_database(core::TrainingDatabase database);

  std::size_t database_size() const;

  /// Requests currently inside handle() (admission gauge; exposed so
  /// overload tests can synchronise deterministically).
  std::size_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }

  /// True while the current snapshot answers from the PB-ranking
  /// fallback instead of trained models.
  bool degraded() const;

 private:
  /// Both objectives' models for one learner plugin.  Only complete
  /// pairs are published into an engine's model map.
  struct ModelSet {
    std::optional<core::Acic> perf;
    std::optional<core::Acic> cost;
  };

  /// Immutable service state; shared read-only by concurrent requests.
  /// Models are optional: a snapshot whose training failed (empty or
  /// corrupt database) still serves rank/stats and fallback recommends.
  struct Engine {
    Engine(core::TrainingDatabase db, core::PbRankingResult rank,
           std::vector<std::string> learner_names);

    core::TrainingDatabase database;
    core::PbRankingResult ranking;
    /// Requested learner plugin names; front() is the primary.
    std::vector<std::string> learners;
    /// Trained models per learner; a learner whose training threw is
    /// simply absent (per-learner failure isolation).
    std::map<std::string, ModelSet, std::less<>> models;

    const std::string& primary_learner() const { return learners.front(); }
    bool degraded() const { return model_set(primary_learner()) == nullptr; }
    const ModelSet* model_set(std::string_view learner) const {
      const auto it = models.find(learner);
      return it == models.end() ? nullptr : &it->second;
    }
    const core::Acic* model_for(core::Objective objective) const {
      return model_for(objective, primary_learner());
    }
    const core::Acic* model_for(core::Objective objective,
                                std::string_view learner) const {
      const ModelSet* set = model_set(learner);
      if (set == nullptr) return nullptr;
      const auto& m = objective == core::Objective::kPerformance ? set->perf
                                                                 : set->cost;
      return m ? &*m : nullptr;
    }
  };
  using EngineRef = std::shared_ptr<const Engine>;

  // A plain mutex around the shared_ptr copy instead of
  // std::atomic<shared_ptr>: the critical sections are two instructions
  // wide, and libstdc++'s lock-bit _Sp_atomic confuses TSan (the tsan CI
  // preset is how this file's guarantees are enforced).
  EngineRef engine() const ACIC_EXCLUDES(engine_mutex_) {
    MutexLock lock(&engine_mutex_);
    return engine_;
  }
  void publish(EngineRef next) ACIC_EXCLUDES(engine_mutex_) {
    MutexLock lock(&engine_mutex_);
    engine_ = std::move(next);
  }

  std::string handle_recommend(const Engine& engine,
                               const std::string& line);
  static std::string handle_predict(const Engine& engine,
                                    const std::string& line);
  static std::string handle_rank(const Engine& engine,
                                 const std::string& line);
  static std::string handle_simulate(const std::string& line);
  static std::string handle_stats(const Engine& engine);
  static std::string handle_plugins();
  static std::string help_text();
  /// The registered-but-untrained learner error (distinct from the
  /// unknown-name PluginError the registry itself throws): lists the
  /// learners this snapshot actually trained.
  static Error untrained_learner_error(const Engine& engine,
                                       const std::string& learner);
  /// PB-effects fallback: score every candidate config against the
  /// screening effects and return the top_k (used when no model
  /// snapshot exists).
  static std::string fallback_recommend(const Engine& engine,
                                        core::Objective objective,
                                        std::size_t top_k);
  std::string dispatch(const std::string& verb, const std::string& line);

  /// Per-verb instruments, resolved once at construction so the request
  /// path never takes the registry lock.
  struct VerbMetrics {
    obs::Counter* requests = nullptr;
    obs::Histogram* latency_us = nullptr;
  };
  const VerbMetrics& metrics_for(const std::string& verb) const;

  mutable Mutex engine_mutex_;
  EngineRef engine_ ACIC_GUARDED_BY(engine_mutex_);
  ServiceOptions options_;
  std::atomic<std::size_t> in_flight_{0};
  VerbMetrics recommend_metrics_;
  VerbMetrics predict_metrics_;
  VerbMetrics rank_metrics_;
  VerbMetrics simulate_metrics_;
  VerbMetrics stats_metrics_;
  VerbMetrics plugins_metrics_;
  VerbMetrics other_metrics_;
  obs::Counter* errors_ = nullptr;
  obs::Counter* shed_ = nullptr;
  obs::Counter* deadline_exceeded_ = nullptr;
  obs::Counter* fallback_answers_ = nullptr;
  obs::Counter* engine_build_failures_ = nullptr;
  // Resolved once in the constructor: the engine-rebuild instruments
  // used by both the constructor and update_database().  (They used to
  // be re-registered inline at each call site — two registration sites
  // for one name, which the acic-lint metrics rule now rejects.)
  obs::Counter* engine_builds_ = nullptr;
  obs::Histogram* train_latency_us_ = nullptr;
};

}  // namespace acic::service
