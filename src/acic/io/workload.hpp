// Workload description: the paper's nine application I/O characteristics
// (Table 1, bottom half) plus the application-side compute/communication
// phases that IOR does not model but real applications have.
#pragma once

#include <string>

#include "acic/common/units.hpp"

namespace acic::io {

/// I/O interface used by the application.  HDF5 and netCDF run on top of
/// MPI-IO and add self-describing metadata overhead.
enum class IoInterface {
  kPosix,
  kMpiIo,
  kHdf5,
  kNetcdf,
};

enum class OpMix {
  kRead,
  kWrite,
  kReadWrite,
};

const char* to_string(IoInterface i);
const char* to_string(OpMix m);
IoInterface interface_from_string(const std::string& s);
OpMix opmix_from_string(const std::string& s);

/// True for the MPI-IO family (anything that can do collective I/O).
bool is_mpiio_family(IoInterface i);

struct Workload {
  std::string name = "ior";

  // --- The nine Table 1 application characteristics -------------------
  int num_processes = 32;      ///< ranks in the job
  int num_io_processes = 32;   ///< ranks that perform I/O
  IoInterface interface = IoInterface::kMpiIo;
  int iterations = 1;          ///< I/O iterations over the run
  Bytes data_size = 16.0 * MiB;   ///< bytes per I/O process per iteration
  Bytes request_size = 4.0 * MiB; ///< bytes per I/O call
  OpMix op = OpMix::kWrite;
  bool collective = false;     ///< cooperative two-phase I/O
  bool file_shared = true;     ///< single shared file vs file-per-process

  // --- Application-side phases (zero for pure IOR runs) ---------------
  /// Compute seconds (at cc2 core speed) per rank per iteration.
  double compute_per_iteration = 0.0;
  /// Ring-exchange payload per rank per iteration.
  Bytes comm_per_iteration = 0.0;

  /// Clamp request size to data size and I/O processes to processes —
  /// the paper's validity rules for the characteristic space.
  void normalize();
  bool valid() const;

  /// Total bytes the job moves per iteration.
  Bytes bytes_per_iteration() const;
  /// Total bytes over the whole run (read+write counted once each).
  Bytes total_bytes() const;
};

}  // namespace acic::io
