// One-shot workload execution: provisions a cluster for an IoConfig,
// spawns one coroutine per rank, runs the simulation to completion and
// reports time / cost / I/O statistics.  This is the "run it on the
// cloud" primitive used by IOR training sweeps, application evaluation,
// space walking and every bench harness.
#pragma once

#include <cstdint>
#include <optional>

#include "acic/cloud/ioconfig.hpp"
#include "acic/cloud/pricing.hpp"
#include "acic/common/units.hpp"
#include "acic/fs/filesystem.hpp"
#include "acic/io/workload.hpp"
#include "acic/profiler/tracer.hpp"

namespace acic::io {

struct RunOptions {
  std::uint64_t seed = 1;
  /// Multi-tenant capacity jitter (log-normal sigma).
  double jitter_sigma = 0.06;
  /// Mean transient-outage rate across the job (0 = reliable run).
  double failures_per_hour = 0.0;
  fs::FsTuning tuning = {};
  /// Optional logical-request tracer (the profiling tool's tap).
  profiler::IoTracer* tracer = nullptr;
  /// When set, `cost` includes EBS volume-hour and per-I/O surcharges
  /// instead of the paper's pure Eq. (1).
  std::optional<cloud::DetailedPricing> detailed_pricing;
};

struct RunResult {
  SimTime total_time = 0.0;  ///< job wall time, seconds
  Money cost = 0.0;          ///< paper Eq. (1)
  SimTime io_time = 0.0;     ///< wall time inside I/O phases
  int num_instances = 0;     ///< billed instances
  std::uint64_t fs_requests = 0;
  Bytes fs_bytes = 0.0;
  std::uint64_t sim_events = 0;
};

/// Execute `workload` under `config`.  Deterministic for a given seed.
/// Throws acic::Error on invalid inputs or if the job deadlocks.
RunResult run_workload(const Workload& workload,
                       const cloud::IoConfig& config,
                       const RunOptions& options = {});

}  // namespace acic::io
