// One-shot workload execution: provisions a cluster for an IoConfig,
// spawns one coroutine per rank, runs the simulation to completion and
// reports time / cost / I/O statistics.  This is the "run it on the
// cloud" primitive used by IOR training sweeps, application evaluation,
// space walking and every bench harness.
#pragma once

#include <cstdint>
#include <optional>

#include "acic/cloud/failure.hpp"
#include "acic/cloud/ioconfig.hpp"
#include "acic/cloud/pricing.hpp"
#include "acic/common/units.hpp"
#include "acic/fs/filesystem.hpp"
#include "acic/io/checkpoint.hpp"
#include "acic/io/workload.hpp"
#include "acic/profiler/tracer.hpp"

namespace acic::io {

struct RunOptions {
  std::uint64_t seed = 1;
  /// Multi-tenant capacity jitter (log-normal sigma).
  double jitter_sigma = 0.06;
  /// Mean transient-outage rate across the job (0 = reliable run).
  /// Legacy shorthand for fault_model.outages_per_hour; the larger of
  /// the two wins.
  double failures_per_hour = 0.0;
  /// Full fault vocabulary (brownouts, stragglers, correlated outages,
  /// permanent loss).  All-zero by default.
  cloud::FaultModel fault_model;
  /// Job-level watchdog: give up once simulated time would pass this
  /// bound and grade the run `failed`.  0 picks a default (24 h) when
  /// any fault is armed; with no faults the legacy deadlock check runs
  /// unchanged.
  SimTime watchdog_sim_time = 0.0;
  fs::FsTuning tuning = {};
  /// Checkpoint/restart reaction: periodic dumps through the configured
  /// file system plus seeded replacement-server recovery on preemption.
  /// The recovery half also engages (restart-from-scratch) whenever the
  /// fault model arms preemptions, even with checkpointing off.
  CheckpointPolicy checkpoint;
  /// Optional logical-request tracer (the profiling tool's tap).
  profiler::IoTracer* tracer = nullptr;
  /// When set, `cost` includes EBS volume-hour and per-I/O surcharges
  /// instead of the paper's pure Eq. (1).
  std::optional<cloud::DetailedPricing> detailed_pricing;
  /// When set, `cost` uses spot-market billing (discounted rate plus
  /// per-restart reacquisition fees); takes precedence over
  /// detailed_pricing.
  std::optional<cloud::SpotPricing> spot_pricing;
};

/// How a run ended.  `degraded` means the job finished but the fault
/// reaction had to intervene (timeouts or abandoned payloads); its
/// timing is still a usable—if noisy—measurement.  `failed` runs hit the
/// watchdog or stalled outright; their timing is meaningless and must
/// not enter a training database.
enum class RunOutcome {
  kOk,
  kDegraded,
  kFailed,
};

const char* to_string(RunOutcome outcome);

struct RunResult {
  SimTime total_time = 0.0;  ///< job wall time, seconds
  Money cost = 0.0;          ///< paper Eq. (1)
  SimTime io_time = 0.0;     ///< wall time inside I/O phases
  int num_instances = 0;     ///< billed instances
  std::uint64_t fs_requests = 0;
  Bytes fs_bytes = 0.0;
  std::uint64_t sim_events = 0;
  RunOutcome outcome = RunOutcome::kOk;
  /// Fault-reaction statistics (all zero on a clean run).
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t failed_requests = 0;
  SimTime stalled_time = 0.0;
  /// Unfired fault suppress/restore events cancelled at job end.
  std::uint64_t fault_events_cancelled = 0;
  /// Preemption/checkpoint accounting (all zero on a clean run).  A run
  /// that restarted at least once is graded kDegraded even when it
  /// finished; one that exhausted the restart budget is kFailed.
  std::uint64_t preemptions = 0;     ///< spot reclaims observed
  std::uint64_t restarts = 0;        ///< replacement servers acquired
  SimTime lost_sim_time = 0.0;       ///< replayed work, seconds
  Bytes checkpoint_bytes = 0.0;      ///< durable checkpoint dump bytes
};

/// Execute `workload` under `config`.  Deterministic for a given seed.
/// Throws acic::Error on invalid inputs; a stalled or watchdog-expired
/// chaos run returns outcome == kFailed instead of hanging or throwing.
RunResult run_workload(const Workload& workload,
                       const cloud::IoConfig& config,
                       const RunOptions& options = {});

}  // namespace acic::io
