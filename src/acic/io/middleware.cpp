#include "acic/io/middleware.hpp"

#include <algorithm>
#include <cmath>

#include "acic/common/error.hpp"

namespace acic::io {

ParallelIo::ParallelIo(cloud::ClusterModel& cluster, mpi::Runtime& mpi,
                       fs::FileSystem& filesystem,
                       profiler::IoTracer* tracer)
    : cluster_(cluster), mpi_(mpi), fs_(filesystem), tracer_(tracer) {}

double ParallelIo::inflation(IoInterface i) const {
  switch (i) {
    case IoInterface::kHdf5:
      return kHdf5Inflation;
    case IoInterface::kNetcdf:
      return kNetcdfInflation;
    default:
      return 1.0;
  }
}

void ParallelIo::trace_logical_requests(int rank, const Workload& w,
                                        bool is_write, int iteration) {
  if (!tracer_) return;
  const double ops = std::ceil(w.data_size / w.request_size);
  tracer_->record(rank, w.data_size, w.request_size, ops, is_write,
                  cluster_.simulator().now(), iteration);
}

sim::Task ParallelIo::run_rank(int rank, Workload w) {
  w.normalize();
  ACIC_CHECK_MSG(w.valid(), "invalid workload " << w.name);
  ACIC_CHECK(w.num_processes == cluster_.ranks());
  if (tracer_ && rank == 0) {
    tracer_->set_job_info(w.num_processes, w.interface, w.collective,
                          w.file_shared);
  }
  auto& sim = cluster_.simulator();

  co_await mpi_.barrier();
  // File-per-process opens one file per rank; a shared file is opened by
  // every rank too (each client performs its own metadata RPC).
  co_await fs_.open_file(rank);

  for (int iter = 0; iter < w.iterations; ++iter) {
    if (w.compute_per_iteration > 0.0) {
      co_await sim.delay(cluster_.compute_time(w.compute_per_iteration, rank));
    }
    if (w.comm_per_iteration > 0.0) {
      co_await mpi_.exchange_ring(rank, w.comm_per_iteration);
    }
    if (w.op != OpMix::kRead) {
      co_await io_phase(rank, w, /*is_write=*/true, iter);
    }
    if (w.op != OpMix::kWrite) {
      co_await io_phase(rank, w, /*is_write=*/false, iter);
    }
  }

  co_await fs_.close_file(rank);
  co_await mpi_.barrier();
}

sim::Task ParallelIo::io_phase(int rank, const Workload& w, bool is_write,
                               int iteration) {
  co_await mpi_.barrier();
  const SimTime start = cluster_.simulator().now();

  if (rank < w.num_io_processes) {
    trace_logical_requests(rank, w, is_write, iteration);
  }
  if (is_write && rank == 0 && is_mpiio_family(w.interface) &&
      inflation(w.interface) > 1.0) {
    co_await format_header(rank, w, iteration);
  }

  if (w.collective) {
    co_await collective_io(rank, w, is_write, iteration);
  } else {
    co_await independent_io(rank, w, is_write, iteration);
  }

  co_await mpi_.barrier();
  if (rank == 0) io_time_ += cluster_.simulator().now() - start;
}

sim::Task ParallelIo::format_header(int rank, const Workload& w,
                                    int iteration) {
  (void)iteration;
  // Self-describing formats serialise a header/superblock update.
  co_await fs_.request(rank, kHeaderBytes, /*is_write=*/true, w.file_shared,
                       /*op_weight=*/1.0);
}

sim::Task ParallelIo::chunked_requests(int rank, Bytes total_bytes,
                                       Bytes chunk_size, bool is_write,
                                       bool shared_file) {
  if (total_bytes <= 0.0) co_return;
  // Coalesce beyond kMaxChunksPerPhase simulated requests: per-request
  // fixed costs are preserved through the op weight (see
  // FileSystem::request), payload totals are exact.
  const double true_chunks = std::ceil(total_bytes / chunk_size);
  const int sim_chunks = static_cast<int>(
      std::min(true_chunks, static_cast<double>(kMaxChunksPerPhase)));
  const Bytes per_chunk = total_bytes / static_cast<double>(sim_chunks);
  const double weight = true_chunks / static_cast<double>(sim_chunks);
  for (int i = 0; i < sim_chunks; ++i) {
    co_await fs_.request(rank, per_chunk, is_write, shared_file, weight);
  }
}

sim::Task ParallelIo::independent_io(int rank, const Workload& w,
                                     bool is_write, int iteration) {
  (void)iteration;
  if (rank >= w.num_io_processes) co_return;
  const double factor = inflation(w.interface);
  co_await chunked_requests(rank, w.data_size * factor,
                            w.request_size * factor, is_write,
                            w.file_shared);
}

Bytes ParallelIo::aggregated_bytes(int agg, const Workload& w) const {
  int owned = 0;
  for (int r = 0; r < w.num_io_processes; ++r) {
    if (mpi_.aggregator_of(r) == agg) ++owned;
  }
  return static_cast<double>(owned) * w.data_size;
}

sim::Task ParallelIo::collective_io(int rank, const Workload& w,
                                    bool is_write, int iteration) {
  (void)iteration;
  const bool is_io_proc = rank < w.num_io_processes;
  const int agg = mpi_.aggregator_of(rank);
  const double factor = inflation(w.interface);

  if (is_write) {
    // Phase 1: shuffle data to the aggregators.
    if (is_io_proc && rank != agg) {
      co_await mpi_.send(rank, agg, w.data_size);
    }
    co_await mpi_.barrier();
    // Phase 2: aggregators issue large coalesced writes.
    if (mpi_.is_aggregator(rank)) {
      co_await chunked_requests(rank, aggregated_bytes(rank, w) * factor,
                                kCollectiveBuffer, /*is_write=*/true,
                                /*shared_file=*/true);
    }
    co_await mpi_.barrier();
  } else {
    // Phase 1: aggregators issue large coalesced reads.
    if (mpi_.is_aggregator(rank)) {
      co_await chunked_requests(rank, aggregated_bytes(rank, w) * factor,
                                kCollectiveBuffer, /*is_write=*/false,
                                /*shared_file=*/true);
    }
    co_await mpi_.barrier();
    // Phase 2: scatter to the I/O processes.
    if (is_io_proc && rank != agg) {
      co_await mpi_.send(agg, rank, w.data_size);
    }
    co_await mpi_.barrier();
  }
}

}  // namespace acic::io
