#include "acic/io/checkpoint.hpp"

#include <algorithm>

#include "acic/common/error.hpp"
#include "acic/simcore/simulator.hpp"

namespace acic::io {
namespace {

/// Checkpoint dumps go through the file system in a bounded number of
/// back-to-back chunks (same event-count discipline as the middleware's
/// kMaxChunksPerPhase): enough pieces that a retrying client can make
/// progress across per-request deadlines, few enough that a 60 GiB dump
/// does not flood the event queue.
constexpr int kDumpChunks = 8;

}  // namespace

bool CheckpointPolicy::valid() const {
  return interval > 0.0 && bytes >= 0.0 && max_restarts >= 0 &&
         replacement_delay_min >= 0.0 &&
         replacement_delay_max >= replacement_delay_min;
}

CheckpointManager::CheckpointManager(cloud::ClusterModel& cluster,
                                     fs::FileSystem& filesystem,
                                     cloud::FailureInjector& injector,
                                     const CheckpointPolicy& policy,
                                     std::uint64_t seed)
    : cluster_(cluster),
      fs_(filesystem),
      injector_(injector),
      policy_(policy),
      // Decorrelate the replacement-delay stream from the fault schedule
      // and the jitter streams without introducing a new seed knob.
      rng_(seed ^ 0x5c0775c0775ULL) {
  ACIC_CHECK_MSG(policy_.valid(), "invalid checkpoint policy");
}

void CheckpointManager::start(int ranks) {
  ranks_running_ = ranks;
  app_done_ = ranks <= 0;
  cloud::PreemptionHooks hooks;
  hooks.on_notice = [this](int server, SimTime reclaim_at) {
    on_notice(server, reclaim_at);
  };
  hooks.on_reclaim = [this](int server) { on_reclaim(server); };
  injector_.set_preemption_hooks(std::move(hooks));
  if (checkpointing()) schedule_tick();
}

sim::Task CheckpointManager::observe_rank(sim::Task inner) {
  co_await std::move(inner);
  if (--ranks_running_ <= 0) app_done_ = true;
}

std::size_t CheckpointManager::finish() {
  auto& sim = cluster_.simulator();
  const SimTime now = sim.now();
  std::size_t cancelled = 0;
  for (const auto& [event, at] : pending_) {
    // Same >= rule as the injector: a same-timestamp tick/restore may
    // not have fired yet and must not outlive the job.
    if (at >= now) {
      sim.cancel(event);
      ++cancelled;
    }
  }
  pending_.clear();
  app_done_ = true;
  return cancelled;
}

void CheckpointManager::schedule_tick() {
  auto& sim = cluster_.simulator();
  const SimTime at = sim.now() + policy_.interval;
  track(sim.at(at,
               [this] {
                 if (app_done_) return;
                 // Skip (don't queue) a tick that lands while the
                 // previous dump is still draining: back-to-back dumps
                 // of identical state buy no extra durability.
                 if (!write_in_flight_) {
                   cluster_.simulator().spawn(write_checkpoint());
                 }
                 schedule_tick();
               }),
        at);
}

sim::Task CheckpointManager::write_checkpoint() {
  write_in_flight_ = true;
  const Bytes per = policy_.bytes / static_cast<double>(kDumpChunks);
  for (int i = 0; i < kDumpChunks; ++i) {
    co_await fs_.request(/*rank=*/0, per, /*is_write=*/true,
                         /*shared_file=*/true);
  }
  // Durable only once every chunk landed: a dump cut short by the
  // reclaim it was racing leaves last_durable_ at the previous dump.
  last_durable_ = cluster_.simulator().now();
  ++stats_.checkpoint_writes;
  stats_.checkpoint_bytes += policy_.bytes;
  write_in_flight_ = false;
}

sim::Task CheckpointManager::restore_read() {
  const Bytes per = policy_.bytes / static_cast<double>(kDumpChunks);
  for (int i = 0; i < kDumpChunks; ++i) {
    co_await fs_.request(/*rank=*/0, per, /*is_write=*/false,
                         /*shared_file=*/true);
  }
  ++stats_.restores;
}

void CheckpointManager::on_notice(int /*server*/, SimTime /*reclaim_at*/) {
  if (app_done_ || !checkpointing() || write_in_flight_) return;
  ++stats_.urgent_checkpoints;
  cluster_.simulator().spawn(write_checkpoint());
}

void CheckpointManager::on_reclaim(int server) {
  ++stats_.preemptions;
  if (app_done_) {
    // The job already drained; hand the server straight back so the
    // post-run force-restore accounting stays exact.
    injector_.restore_server(server);
    return;
  }
  if (static_cast<int>(stats_.restarts) >= policy_.max_restarts) {
    // Budget exhausted: the server stays dark, in-flight I/O through it
    // never completes, and the runner's watchdog grades the run failed.
    stats_.gave_up = true;
    return;
  }
  ++stats_.restarts;
  auto& sim = cluster_.simulator();
  const SimTime lost =
      std::max(sim.now() - std::max(last_durable_, 0.0), 0.0);
  stats_.lost_sim_time += lost;
  // Replacement acquisition is a seeded draw; the replay of the work lost
  // since the last durable checkpoint is modelled as extending the
  // suppression window by `lost` (the replacement recomputes it while the
  // server's NIC and device stay dark to the rest of the job).
  const SimTime acquire = rng_.uniform(policy_.replacement_delay_min,
                                       policy_.replacement_delay_max);
  const SimTime back_at = sim.now() + acquire + lost;
  track(sim.at(back_at,
               [this, server] {
                 injector_.restore_server(server);
                 if (!app_done_ && checkpointing() && last_durable_ > 0.0) {
                   cluster_.simulator().spawn(restore_read());
                 }
               }),
        back_at);
}

void CheckpointManager::track(sim::EventId event, SimTime at) {
  pending_.emplace_back(event, at);
}

}  // namespace acic::io
