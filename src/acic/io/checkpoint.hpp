// Checkpoint/restart reaction to spot-instance preemption (DESIGN.md
// §15).  A CheckpointManager periodically writes the application's
// restart state through the *configured* file system — checkpoint I/O
// competes with application I/O for the same NICs and devices, which is
// exactly the trade-off the checkpoint-cadence studies sweep — and
// reacts to the injector's preemption events:
//
//   notice   -> squeeze in an urgent checkpoint if none is in flight;
//   reclaim  -> count the preemption; if the restart budget is left,
//               acquire a seeded-delay replacement server and replay the
//               work lost since the last durable checkpoint (modelled as
//               an extended suppression window), then restage the
//               checkpoint through the file system; otherwise give up
//               and leave the server dark (the runner's watchdog grades
//               the run `failed`).
//
// Everything is event-driven (scheduled callbacks plus short-lived
// spawned write/restore tasks) — never a forever-coroutine, which would
// deadlock run_until_processes_done().  All randomness comes from one
// seeded Rng, so preempted runs replay bit-identically.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "acic/cloud/cluster.hpp"
#include "acic/cloud/failure.hpp"
#include "acic/common/rng.hpp"
#include "acic/common/units.hpp"
#include "acic/fs/filesystem.hpp"
#include "acic/simcore/task.hpp"

namespace acic::io {

/// Knobs of the checkpoint/restart reaction.  `max_restarts` and the
/// replacement delays also govern preemption recovery when periodic
/// checkpointing itself is off (`enabled == false` or `bytes == 0`):
/// the job then restarts from scratch — everything since t=0 is lost.
struct CheckpointPolicy {
  /// Master switch for periodic checkpoint writes.
  bool enabled = false;
  /// Sim-time seconds between checkpoint attempts.
  SimTime interval = 600.0;
  /// Bytes per checkpoint dump, written through the configured fs.
  Bytes bytes = 0.0;
  /// Replacement acquisitions before the job gives up (`failed`).
  int max_restarts = 10;
  /// Seeded-uniform bounds on the replacement-server acquisition delay.
  SimTime replacement_delay_min = 30.0;
  SimTime replacement_delay_max = 120.0;

  bool valid() const;
};

class CheckpointManager {
 public:
  /// Per-run checkpoint/restart accounting (all zero on a clean run).
  struct Stats {
    std::uint64_t preemptions = 0;         ///< reclaim events observed
    std::uint64_t restarts = 0;            ///< replacement servers acquired
    std::uint64_t checkpoint_writes = 0;   ///< completed dumps
    std::uint64_t urgent_checkpoints = 0;  ///< notice-triggered attempts
    std::uint64_t restores = 0;            ///< checkpoint restage reads
    SimTime lost_sim_time = 0.0;           ///< work replayed after restarts
    Bytes checkpoint_bytes = 0.0;          ///< durably written dump bytes
    bool gave_up = false;                  ///< restart budget exhausted
  };

  CheckpointManager(cloud::ClusterModel& cluster, fs::FileSystem& filesystem,
                    cloud::FailureInjector& injector,
                    const CheckpointPolicy& policy, std::uint64_t seed);

  /// Install the injector hooks and schedule the first periodic tick.
  /// `ranks` is the number of application processes the runner spawns;
  /// ticking stops once all of them finished (via observe_rank), so a
  /// drained job cannot keep spawning checkpoint writes forever.
  void start(int ranks);

  /// Wrapper for the runner's per-rank tasks: runs `inner` to completion,
  /// then notifies the manager that one rank is done.
  sim::Task observe_rank(sim::Task inner);

  /// Cancel every pending tick/restore event (call at job end, before the
  /// injector's own cancel_pending()).  Returns the number cancelled.
  std::size_t finish();

  const Stats& stats() const { return stats_; }

 private:
  bool checkpointing() const {
    return policy_.enabled && policy_.bytes > 0.0;
  }
  void schedule_tick();
  sim::Task write_checkpoint();
  sim::Task restore_read();
  void on_notice(int server, SimTime reclaim_at);
  void on_reclaim(int server);
  void track(sim::EventId event, SimTime at);

  cloud::ClusterModel& cluster_;
  fs::FileSystem& fs_;
  cloud::FailureInjector& injector_;
  CheckpointPolicy policy_;
  Rng rng_;
  Stats stats_;
  /// Completion time of the newest durable checkpoint (0 = none yet:
  /// a restart replays the whole job so far).
  SimTime last_durable_ = 0.0;
  bool write_in_flight_ = false;
  bool app_done_ = false;
  int ranks_running_ = 0;
  /// Scheduled (event, time) pairs, for finish() cancellation.
  std::vector<std::pair<sim::EventId, SimTime>> pending_;
};

}  // namespace acic::io
