#include "acic/io/runner.hpp"

#include <algorithm>

#include "acic/cloud/cluster.hpp"
#include "acic/cloud/failure.hpp"
#include "acic/common/error.hpp"
#include "acic/io/middleware.hpp"
#include "acic/mpi/runtime.hpp"
#include "acic/obs/metrics.hpp"
#include "acic/plugin/substrates.hpp"
#include "acic/simcore/simulator.hpp"

namespace acic::io {

const char* to_string(RunOutcome outcome) {
  switch (outcome) {
    case RunOutcome::kOk:
      return "ok";
    case RunOutcome::kDegraded:
      return "degraded";
    case RunOutcome::kFailed:
      return "failed";
  }
  return "unknown";
}

RunResult run_workload(const Workload& workload,
                       const cloud::IoConfig& config,
                       const RunOptions& options) {
  Workload w = workload;
  w.normalize();
  ACIC_CHECK_MSG(w.valid(), "invalid workload " << w.name);
  ACIC_CHECK_MSG(config.valid(), "invalid IoConfig " << config.label());

  sim::Simulator simulator;
  cloud::ClusterModel::Options copts;
  copts.num_processes = w.num_processes;
  copts.config = config;
  copts.jitter_sigma = options.jitter_sigma;
  copts.seed = options.seed;
  cloud::ClusterModel cluster(simulator, copts);

  mpi::Runtime mpi(cluster);
  auto filesystem = fs::make_filesystem(cluster, options.tuning);
  ParallelIo middleware(cluster, mpi, *filesystem, options.tracer);

  // Merge the legacy outage-rate shorthand into the full fault model.
  cloud::FaultModel faults = options.fault_model;
  faults.outages_per_hour =
      std::max(faults.outages_per_hour, options.failures_per_hour);

  cloud::FailureInjector injector(cluster);
  if (faults.any()) {
    // Schedule faults over a generous horizon; faults beyond the job's
    // actual end are cancelled below, not fired.
    Rng rng(options.seed ^ 0xfa17u);
    injector.inject_random(rng, faults, /*horizon=*/24.0 * kHour);
  }

  // The checkpoint/restart manager exists only when it has work to do
  // (periodic dumps armed, or preemptions that need recovery); clean
  // runs keep the exact legacy spawn structure, so their event counts
  // and cached results are untouched.
  std::optional<CheckpointManager> checkpoints;
  ACIC_CHECK_MSG(options.checkpoint.valid(), "invalid checkpoint policy");
  if (options.checkpoint.enabled || faults.preemptions_per_hour > 0.0) {
    checkpoints.emplace(cluster, *filesystem, injector, options.checkpoint,
                        options.seed);
    checkpoints->start(w.num_processes);
  }

  for (int rank = 0; rank < w.num_processes; ++rank) {
    if (checkpoints) {
      simulator.spawn(checkpoints->observe_rank(middleware.run_rank(rank, w)));
    } else {
      simulator.spawn(middleware.run_rank(rank, w));
    }
  }

  RunResult result;
  // Faulted runs can legitimately stall (e.g. permanent server loss with
  // retries disabled), so they run under a watchdog and grade the
  // outcome; clean runs keep the strict legacy contract, where a stall
  // is a simulator bug and throws.
  SimTime watchdog = options.watchdog_sim_time;
  if (watchdog <= 0.0 && faults.any()) watchdog = 24.0 * kHour;
  {
    // Wall-clock of the simulation itself (the perf gate reads its
    // p50/p99); setup and the metrics roll-up below stay outside.
    obs::Timer wall_timer(obs::MetricsRegistry::global().histogram(
        "io.sim_wall_us", obs::latency_buckets_us()));
    if (watchdog > 0.0) {
      if (!simulator.run_until_processes_done_or(watchdog)) {
        result.outcome = RunOutcome::kFailed;
      }
    } else {
      simulator.run_until_processes_done();
    }
  }

  // Wind down the fault machinery in dependency order: the checkpoint
  // manager's ticks/restores first (they reference the injector), then
  // the injector's own unfired events — both *before* reading the event
  // count, so a job that beats its outage windows is not billed for
  // their restores.
  if (checkpoints) {
    checkpoints->finish();
    const CheckpointManager::Stats& cstats = checkpoints->stats();
    result.preemptions = cstats.preemptions;
    result.restarts = cstats.restarts;
    result.lost_sim_time = cstats.lost_sim_time;
    result.checkpoint_bytes = cstats.checkpoint_bytes;
    if (cstats.gave_up) result.outcome = RunOutcome::kFailed;
  }
  result.fault_events_cancelled = injector.cancel_pending();

  result.total_time = simulator.now();
  result.fs_requests = filesystem->requests_served();
  {
    // Pricing goes through the plugin registry; the RunOptions shim
    // maps a present spot_pricing onto the "spot" plugin, a present
    // detailed_pricing onto the "detailed" plugin and everything else
    // onto the paper's Eq. (1).
    plugin::PricingContext ctx;
    ctx.cluster = &cluster;
    ctx.duration = result.total_time;
    ctx.io_operations = result.fs_requests;
    ctx.detailed =
        options.detailed_pricing ? &*options.detailed_pricing : nullptr;
    ctx.restarts = result.restarts;
    ctx.spot = options.spot_pricing ? &*options.spot_pricing : nullptr;
    const char* pricing_name = options.spot_pricing      ? "spot"
                               : options.detailed_pricing ? "detailed"
                                                          : "eq1";
    result.cost = plugin::pricings().lookup(pricing_name).cost(ctx);
  }
  result.io_time = middleware.io_time();
  result.num_instances = cluster.num_instances();
  result.fs_bytes = filesystem->bytes_moved();
  result.sim_events = simulator.events_executed();

  const fs::FaultStats& fstats = filesystem->fault_stats();
  result.retries = fstats.retries;
  result.timeouts = fstats.timeouts;
  result.failed_requests = fstats.failed_requests;
  result.stalled_time = fstats.stalled_time;
  if (result.outcome == RunOutcome::kOk &&
      (result.timeouts > 0 || result.failed_requests > 0 ||
       result.restarts > 0)) {
    result.outcome = RunOutcome::kDegraded;
  }

  // Per-run observability roll-up: one registry touch per simulation (the
  // per-event/per-request hot paths stay uninstrumented on purpose).
  auto& registry = obs::MetricsRegistry::global();
  const std::string fs_prefix = std::string("fs.") + filesystem->name();
  registry.counter(fs_prefix + ".bytes_moved").add(result.fs_bytes);
  registry.counter(fs_prefix + ".requests")
      .add(static_cast<double>(result.fs_requests));
  registry.counter("io.runs").inc();
  registry.counter("io.sim_events")
      .add(static_cast<double>(result.sim_events));
  registry
      .histogram("io.run_seconds", obs::duration_buckets_s())
      .observe(result.total_time);
  if (result.retries > 0) {
    registry.counter("io.retries").add(static_cast<double>(result.retries));
  }
  if (result.timeouts > 0) {
    registry.counter("io.timeouts")
        .add(static_cast<double>(result.timeouts));
  }
  if (result.failed_requests > 0) {
    registry.counter("io.failed_requests")
        .add(static_cast<double>(result.failed_requests));
  }
  if (result.fault_events_cancelled > 0) {
    registry.counter("io.fault_events_cancelled")
        .add(static_cast<double>(result.fault_events_cancelled));
  }
  if (result.preemptions > 0) {
    registry.counter("io.preempt.preemptions")
        .add(static_cast<double>(result.preemptions));
  }
  if (result.restarts > 0) {
    registry.counter("io.preempt.restarts")
        .add(static_cast<double>(result.restarts));
  }
  if (result.lost_sim_time > 0.0) {
    registry.counter("io.preempt.lost_sim_time").add(result.lost_sim_time);
  }
  if (checkpoints && checkpoints->stats().gave_up) {
    registry.counter("io.preempt.gave_up").inc();
  }
  if (checkpoints && checkpoints->stats().checkpoint_writes > 0) {
    registry.counter("io.checkpoint.writes")
        .add(static_cast<double>(checkpoints->stats().checkpoint_writes));
  }
  if (result.checkpoint_bytes > 0.0) {
    registry.counter("io.checkpoint.bytes").add(result.checkpoint_bytes);
  }
  if (checkpoints && checkpoints->stats().urgent_checkpoints > 0) {
    registry.counter("io.checkpoint.urgent")
        .add(static_cast<double>(checkpoints->stats().urgent_checkpoints));
  }
  if (checkpoints && checkpoints->stats().restores > 0) {
    registry.counter("io.checkpoint.restores")
        .add(static_cast<double>(checkpoints->stats().restores));
  }
  if (result.outcome == RunOutcome::kDegraded) {
    registry.counter("io.runs_degraded").inc();
  } else if (result.outcome == RunOutcome::kFailed) {
    registry.counter("io.runs_failed").inc();
  }
  return result;
}

}  // namespace acic::io
