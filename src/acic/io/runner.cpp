#include "acic/io/runner.hpp"

#include "acic/cloud/cluster.hpp"
#include "acic/cloud/failure.hpp"
#include "acic/common/error.hpp"
#include "acic/io/middleware.hpp"
#include "acic/mpi/runtime.hpp"
#include "acic/obs/metrics.hpp"
#include "acic/simcore/simulator.hpp"

namespace acic::io {

RunResult run_workload(const Workload& workload,
                       const cloud::IoConfig& config,
                       const RunOptions& options) {
  Workload w = workload;
  w.normalize();
  ACIC_CHECK_MSG(w.valid(), "invalid workload " << w.name);
  ACIC_CHECK_MSG(config.valid(), "invalid IoConfig " << config.label());

  sim::Simulator simulator;
  cloud::ClusterModel::Options copts;
  copts.num_processes = w.num_processes;
  copts.config = config;
  copts.jitter_sigma = options.jitter_sigma;
  copts.seed = options.seed;
  cloud::ClusterModel cluster(simulator, copts);

  mpi::Runtime mpi(cluster);
  auto filesystem = fs::make_filesystem(cluster, options.tuning);
  ParallelIo middleware(cluster, mpi, *filesystem, options.tracer);

  cloud::FailureInjector injector(cluster);
  if (options.failures_per_hour > 0.0) {
    // Schedule outages over a generous horizon; outages beyond the job's
    // actual end simply never fire.
    Rng rng(options.seed ^ 0xfa17u);
    injector.inject_random(rng, options.failures_per_hour,
                           /*horizon=*/24.0 * kHour);
  }

  for (int rank = 0; rank < w.num_processes; ++rank) {
    simulator.spawn(middleware.run_rank(rank, w));
  }
  simulator.run_until_processes_done();

  RunResult result;
  result.total_time = simulator.now();
  result.fs_requests = filesystem->requests_served();
  if (options.detailed_pricing) {
    result.cost = options.detailed_pricing->run_cost(
        cluster, result.total_time, result.fs_requests);
  } else {
    result.cost = cluster.cost_of(result.total_time);  // paper Eq. (1)
  }
  result.io_time = middleware.io_time();
  result.num_instances = cluster.num_instances();
  result.fs_bytes = filesystem->bytes_moved();
  result.sim_events = simulator.events_executed();

  // Per-run observability roll-up: one registry touch per simulation (the
  // per-event/per-request hot paths stay uninstrumented on purpose).
  auto& registry = obs::MetricsRegistry::global();
  const std::string fs_prefix = std::string("fs.") + filesystem->name();
  registry.counter(fs_prefix + ".bytes_moved").add(result.fs_bytes);
  registry.counter(fs_prefix + ".requests")
      .add(static_cast<double>(result.fs_requests));
  registry.counter("io.runs").inc();
  registry.counter("io.sim_events")
      .add(static_cast<double>(result.sim_events));
  registry
      .histogram("io.run_seconds", obs::duration_buckets_s())
      .observe(result.total_time);
  return result;
}

}  // namespace acic::io
