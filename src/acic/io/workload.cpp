#include "acic/io/workload.hpp"

#include <algorithm>

#include "acic/common/error.hpp"

namespace acic::io {

const char* to_string(IoInterface i) {
  switch (i) {
    case IoInterface::kPosix:
      return "POSIX";
    case IoInterface::kMpiIo:
      return "MPI-IO";
    case IoInterface::kHdf5:
      return "HDF5";
    case IoInterface::kNetcdf:
      return "netCDF";
  }
  return "?";
}

const char* to_string(OpMix m) {
  switch (m) {
    case OpMix::kRead:
      return "read";
    case OpMix::kWrite:
      return "write";
    case OpMix::kReadWrite:
      return "read+write";
  }
  return "?";
}

IoInterface interface_from_string(const std::string& s) {
  if (s == "POSIX" || s == "posix") return IoInterface::kPosix;
  if (s == "MPI-IO" || s == "mpiio" || s == "mpi-io") return IoInterface::kMpiIo;
  if (s == "HDF5" || s == "hdf5") return IoInterface::kHdf5;
  if (s == "netCDF" || s == "netcdf") return IoInterface::kNetcdf;
  throw Error("unknown I/O interface: " + s);
}

OpMix opmix_from_string(const std::string& s) {
  if (s == "read") return OpMix::kRead;
  if (s == "write") return OpMix::kWrite;
  if (s == "read+write" || s == "rw") return OpMix::kReadWrite;
  throw Error("unknown op mix: " + s);
}

bool is_mpiio_family(IoInterface i) { return i != IoInterface::kPosix; }

void Workload::normalize() {
  num_io_processes = std::min(num_io_processes, num_processes);
  request_size = std::min(request_size, data_size);
  if (!is_mpiio_family(interface)) collective = false;
  if (!file_shared) collective = false;
}

bool Workload::valid() const {
  if (num_processes < 1 || num_io_processes < 1) return false;
  if (num_io_processes > num_processes) return false;
  if (iterations < 1) return false;
  if (data_size <= 0.0 || request_size <= 0.0) return false;
  if (request_size > data_size) return false;
  if (collective && !is_mpiio_family(interface)) return false;
  if (collective && !file_shared) return false;
  return true;
}

Bytes Workload::bytes_per_iteration() const {
  const double factor = (op == OpMix::kReadWrite) ? 2.0 : 1.0;
  return factor * data_size * static_cast<double>(num_io_processes);
}

Bytes Workload::total_bytes() const {
  return bytes_per_iteration() * static_cast<double>(iterations);
}

}  // namespace acic::io
