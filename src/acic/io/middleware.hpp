// Parallel I/O middleware: the layer between applications and the file
// system, covering the paper's interface dimension.
//
//  * POSIX / independent MPI-IO — every I/O process issues its own
//    request-sized calls straight to the file system.
//  * Collective MPI-IO — ROMIO-style two-phase I/O: I/O processes ship
//    their data to per-instance aggregators, which issue few large
//    coalesced requests.  With part-time I/O servers the aggregator often
//    sits on the same instance as a server, so the coalesced write never
//    leaves the box (paper §5.6 observation 1).
//  * HDF5 / netCDF — collective-capable MPI-IO plus self-describing
//    metadata: a serialized per-iteration header write and a small data
//    inflation factor.
//
// Every *logical* application request is reported to an optional IoTracer
// before the middleware transforms it — that is where the paper's
// profiling tool taps in.
#pragma once

#include "acic/cloud/cluster.hpp"
#include "acic/fs/filesystem.hpp"
#include "acic/io/workload.hpp"
#include "acic/mpi/runtime.hpp"
#include "acic/profiler/tracer.hpp"
#include "acic/simcore/task.hpp"

namespace acic::io {

class ParallelIo {
 public:
  /// Collective buffering granularity (ROMIO cb_buffer_size).
  static constexpr Bytes kCollectiveBuffer = 16.0 * MiB;
  /// Cap on *simulated* requests per rank per phase; additional requests
  /// are coalesced and charged via the FileSystem op-weight mechanism.
  static constexpr int kMaxChunksPerPhase = 32;
  /// Self-describing-format overheads.
  static constexpr Bytes kHeaderBytes = 64.0 * KiB;
  static constexpr double kHdf5Inflation = 1.03;
  static constexpr double kNetcdfInflation = 1.02;

  ParallelIo(cloud::ClusterModel& cluster, mpi::Runtime& mpi,
             fs::FileSystem& filesystem,
             profiler::IoTracer* tracer = nullptr);

  /// Full lifecycle of one rank: startup barrier, open, iterate
  /// (compute -> communicate -> I/O), close.  Spawn one per rank; all
  /// ranks must run the same workload.
  sim::Task run_rank(int rank, Workload workload);

  /// Wall time spent inside I/O phases (measured on rank 0, barriers to
  /// barrier).
  SimTime io_time() const { return io_time_; }

 private:
  sim::Task chunked_requests(int rank, Bytes total_bytes, Bytes chunk_size,
                             bool is_write, bool shared_file);
  sim::Task io_phase(int rank, const Workload& w, bool is_write,
                     int iteration);
  sim::Task independent_io(int rank, const Workload& w, bool is_write,
                           int iteration);
  sim::Task collective_io(int rank, const Workload& w, bool is_write,
                          int iteration);
  sim::Task format_header(int rank, const Workload& w, int iteration);

  /// Bytes aggregator `agg` coalesces per direction per iteration.
  Bytes aggregated_bytes(int agg, const Workload& w) const;
  double inflation(IoInterface i) const;
  void trace_logical_requests(int rank, const Workload& w, bool is_write,
                              int iteration);

  cloud::ClusterModel& cluster_;
  mpi::Runtime& mpi_;
  fs::FileSystem& fs_;
  profiler::IoTracer* tracer_;
  SimTime io_time_ = 0.0;
};

}  // namespace acic::io
