#include "acic/net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "acic/common/error.hpp"

namespace acic::net {

namespace {

// epoll_event.data.u64 sentinels for the two non-connection fds.
constexpr std::uint64_t kListenerTag = 0;
constexpr std::uint64_t kWakeTag = 1;

void close_fd(int& fd) noexcept {
  if (fd >= 0) {
    int rc;
    do {
      rc = ::close(fd);
    } while (rc < 0 && errno == EINTR);
    fd = -1;
  }
}

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

in_addr_t parse_host(const std::string& host) {
  const std::string resolved =
      (host.empty() || host == "localhost") ? "127.0.0.1" : host;
  in_addr addr{};
  ACIC_EXPECTS(::inet_pton(AF_INET, resolved.c_str(), &addr) == 1,
               "listen host '" << host
                               << "' is not an IPv4 dotted-quad address");
  return addr.s_addr;
}

}  // namespace

Server::Server(ServerOptions options, Handler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {
  ACIC_EXPECTS(handler_ != nullptr, "server needs a request handler");
  ACIC_EXPECTS(options_.max_frame_bytes > 0, "max_frame_bytes must be > 0");
  if (options_.max_connections == 0) options_.max_connections = 1024;
  if (options_.max_pipeline == 0) options_.max_pipeline = 1;
  if (options_.max_queue_depth == 0) options_.max_queue_depth = 1;

  auto& registry = obs::MetricsRegistry::global();
  metrics_.connections_accepted =
      &registry.counter("net.connections_accepted");
  metrics_.connections_rejected =
      &registry.counter("net.connections_rejected");
  metrics_.connections_closed = &registry.counter("net.connections_closed");
  metrics_.connections_active = &registry.gauge("net.connections_active");
  metrics_.frames_in = &registry.counter("net.frames_in");
  metrics_.frames_out = &registry.counter("net.frames_out");
  metrics_.bytes_in = &registry.counter("net.bytes_in");
  metrics_.bytes_out = &registry.counter("net.bytes_out");
  metrics_.protocol_errors = &registry.counter("net.protocol_errors");
  metrics_.idle_disconnects = &registry.counter("net.idle_disconnects");
  metrics_.write_stall_disconnects =
      &registry.counter("net.write_stall_disconnects");
  metrics_.backpressure_pauses =
      &registry.counter("net.backpressure_pauses");
  metrics_.queue_shed = &registry.counter("net.queue_shed");
  metrics_.requests = &registry.counter("net.requests");
  metrics_.request_latency_us =
      &registry.histogram("net.request_latency_us");
  metrics_.drain_forced_closes =
      &registry.counter("net.drain_forced_closes");

  // Wake channel: an AF_UNIX socketpair instead of a pipe/eventfd so the
  // waker side uses send() — async-signal-safe, and no naked ::write
  // outside the durability layer.
  int sv[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0,
                   sv) != 0) {
    throw Error(errno_text("socketpair(wake channel)"));
  }
  wake_rx_ = sv[0];
  wake_tx_ = sv[1];

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    const std::string msg = errno_text("socket(listener)");
    close_fd(wake_rx_);
    close_fd(wake_tx_);
    throw Error(msg);
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = parse_host(options_.host);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, SOMAXCONN) != 0) {
    const std::string msg = errno_text("bind/listen");
    close_fd(listen_fd_);
    close_fd(wake_rx_);
    close_fd(wake_tx_);
    throw Error(msg);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    const std::string msg = errno_text("epoll_create1");
    close_fd(listen_fd_);
    close_fd(wake_rx_);
    close_fd(wake_tx_);
    throw Error(msg);
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerTag;
  ACIC_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0,
             "epoll_ctl(listener) failed");
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeTag;
  ACIC_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_rx_, &ev) == 0,
             "epoll_ctl(wake) failed");
}

Server::~Server() {
  // run() closes connection fds on its way out; whatever remains (a
  // server destroyed without run(), or after a forced drain) is closed
  // here.
  for (auto& [id, conn] : conns_) close_fd(conn->fd);
  conns_.clear();
  close_fd(listen_fd_);
  close_fd(epoll_fd_);
  close_fd(wake_rx_);
  close_fd(wake_tx_);
}

void Server::request_drain() noexcept {
  drain_requested_.store(true, std::memory_order_release);
  wake_loop();
}

void Server::wake_loop() noexcept {
  const char byte = 1;
  // Best effort: EAGAIN means a wake byte is already pending, which is
  // all a level-triggered loop needs.  send() is async-signal-safe.
  (void)::send(wake_tx_, &byte, 1, MSG_NOSIGNAL | MSG_DONTWAIT);
}

void Server::start_workers() {
  unsigned n = options_.workers;
  if (n == 0) {
    n = std::min(std::max(1u, std::thread::hardware_concurrency()), 8u);
  }
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

void Server::stop_workers() {
  {
    MutexLock lock(&queue_mutex_);
    workers_stop_ = true;
  }
  work_available_.notify_all();
  for (auto& t : workers_) t.join();
  workers_.clear();
}

bool Server::pop_work(WorkItem* item) {
  MutexLock lock(&queue_mutex_);
  while (!workers_stop_ && work_queue_.empty()) {
    work_available_.wait(queue_mutex_);
  }
  if (work_queue_.empty()) return false;  // stop requested, queue drained
  *item = std::move(work_queue_.front());
  work_queue_.pop_front();
  return true;
}

void Server::push_completion(Completion c) {
  MutexLock lock(&queue_mutex_);
  completions_.push_back(std::move(c));
}

void Server::worker_main() {
  WorkItem item;
  while (pop_work(&item)) {
    std::string response;
    try {
      response = handler_(item.request);
    } catch (const std::exception& e) {
      response = std::string("error handler failure: ") + e.what() + "\n";
    } catch (...) {
      response = "error handler failure\n";
    }
    // The framing layer is strict in both directions; make any response
    // representable rather than poisoning the connection.
    if (response.empty()) response = "error empty handler response\n";
    std::replace(response.begin(), response.end(), '\0', '?');
    if (response.size() > options_.max_frame_bytes) {
      response = "error response exceeded the frame cap\n";
    }
    const double latency_us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - item.request.received_at)
            .count();
    metrics_.request_latency_us->observe(latency_us);
    push_completion({item.conn_id, std::move(response)});
    wake_loop();
  }
}

void Server::run() {
  start_workers();
  std::vector<epoll_event> events(64);
  std::vector<std::uint64_t> doomed;
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (drain_requested_.load(std::memory_order_acquire) &&
        !drain_started_) {
      begin_drain();
    }
    if (drain_started_) {
      if (conns_.empty()) break;
      if (now >= drain_deadline_) {
        // Out of budget: force-close the stragglers.  Their queued work
        // is abandoned too — nobody is left to receive it.
        metrics_.drain_forced_closes->add(
            static_cast<double>(conns_.size()));
        doomed.clear();
        for (const auto& [id, conn] : conns_) doomed.push_back(id);
        for (const auto id : doomed) close_conn(id);
        {
          MutexLock lock(&queue_mutex_);
          work_queue_.clear();
        }
        break;
      }
    }

    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()),
                               static_cast<int>(next_timeout_ms(now)));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(errno_text("epoll_wait"));
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      const std::uint32_t mask = events[i].events;
      if (tag == kListenerTag) {
        accept_ready();
        continue;
      }
      if (tag == kWakeTag) {
        char buf[256];
        while (::recv(wake_rx_, buf, sizeof(buf), MSG_DONTWAIT) > 0) {
        }
        continue;
      }
      const auto it = conns_.find(tag);
      if (it == conns_.end()) continue;  // closed earlier this batch
      Conn& conn = *it->second;
      if ((mask & (EPOLLERR | EPOLLHUP)) != 0 &&
          (mask & (EPOLLIN | EPOLLRDHUP)) == 0) {
        close_conn(tag);
        continue;
      }
      if ((mask & (EPOLLIN | EPOLLRDHUP)) != 0) conn_readable(conn);
      // conn_readable may have closed the connection.
      const auto again = conns_.find(tag);
      if (again == conns_.end()) continue;
      if ((mask & EPOLLOUT) != 0) conn_writable(*again->second);
    }
    drain_completions();
    sweep_deadlines(std::chrono::steady_clock::now());
  }
  stop_workers();
  drain_completions();  // conns are gone; drop whatever remains
}

long Server::next_timeout_ms(
    std::chrono::steady_clock::time_point now) const {
  using std::chrono::milliseconds;
  auto earliest = now + milliseconds(500);
  if (drain_started_) earliest = std::min(earliest, drain_deadline_);
  if (options_.idle_timeout_ms > 0) {
    for (const auto& [id, conn] : conns_) {
      auto deadline = conn->last_progress +
                      milliseconds(options_.idle_timeout_ms);
      if (conn->mid_frame) {
        deadline = std::min(
            deadline,
            conn->frame_started + milliseconds(options_.idle_timeout_ms));
      }
      earliest = std::min(earliest, deadline);
    }
  }
  const auto delta =
      std::chrono::duration_cast<milliseconds>(earliest - now).count();
  return std::max<long>(1, std::min<long>(500, delta));
}

void Server::accept_ready() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN, or a transient accept error — the loop retries
    }
    if (conns_.size() >= options_.max_connections) {
      // Best-effort typed rejection; whatever fits in the socket buffer.
      static const std::string kReject = encode_frame(
          "error server at connection capacity; retry later\n");
      (void)::send(fd, kReject.data(), kReject.size(),
                   MSG_NOSIGNAL | MSG_DONTWAIT);
      int tmp = fd;
      close_fd(tmp);
      metrics_.connections_rejected->inc();
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Conn>(options_.max_frame_bytes);
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->last_progress = std::chrono::steady_clock::now();
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      int tmp = fd;
      close_fd(tmp);
      continue;
    }
    metrics_.connections_accepted->inc();
    conns_.emplace(conn->id, std::move(conn));
    metrics_.connections_active->set(static_cast<double>(conns_.size()));
  }
}

void Server::dispatch_or_shed(Conn& conn, std::string payload) {
  metrics_.requests->inc();
  const auto received_at = std::chrono::steady_clock::now();
  bool queued = false;
  {
    MutexLock lock(&queue_mutex_);
    if (work_queue_.size() < options_.max_queue_depth) {
      work_queue_.push_back(
          WorkItem{conn.id, Request{std::move(payload), received_at}});
      queued = true;
    }
  }
  if (queued) {
    conn.in_dispatch++;
    work_available_.notify_one();
  } else {
    // The dispatch queue is the gate in front of the handler's own
    // admission control; shed here is typed exactly like the service's.
    metrics_.queue_shed->inc();
    queue_response(conn, "shed server work queue full; retry later\n");
  }
}

void Server::conn_readable(Conn& conn) {
  if (conn.read_closed || drain_started_ || !conn.want_read) {
    update_interest(conn);
    return;
  }
  char buf[16 * 1024];
  for (;;) {
    const ssize_t got = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_conn(conn.id);  // ECONNRESET and friends
      return;
    }
    if (got == 0) {
      // Half-close: the peer finished sending.  Every request already
      // received still gets its response before we close our side.
      conn.read_closed = true;
      if (conn.decoder.mid_frame()) {
        // A truncated frame is a protocol violation, not a clean close.
        metrics_.protocol_errors->inc();
      }
      conn.close_after_flush = true;
      break;
    }
    metrics_.bytes_in->add(static_cast<double>(got));
    conn.last_progress = std::chrono::steady_clock::now();
    conn.decoder.feed(buf, static_cast<std::size_t>(got));
    for (;;) {
      auto result = conn.decoder.next();
      if (result.status == FrameDecoder::Status::kNeedMore) break;
      if (result.status == FrameDecoder::Status::kError) {
        // Strict parser: one typed error response, then done reading.
        metrics_.protocol_errors->inc();
        queue_response(conn, "error net " + result.error + "\n");
        conn.read_closed = true;
        conn.close_after_flush = true;
        break;
      }
      metrics_.frames_in->inc();
      dispatch_or_shed(conn, std::move(result.payload));
    }
    if (conn.read_closed) break;
    // Backpressure: stop reading while this connection owes us drain.
    const bool paused =
        conn.outbuf.size() - conn.out_offset > options_.max_output_bytes ||
        conn.in_dispatch >= options_.max_pipeline;
    if (paused) {
      if (conn.want_read) metrics_.backpressure_pauses->inc();
      conn.want_read = false;
      break;
    }
    if (static_cast<std::size_t>(got) < sizeof(buf)) break;
  }
  // Track frame-assembly progress for the slow-loris sweep.
  if (conn.decoder.mid_frame()) {
    if (!conn.mid_frame) {
      conn.mid_frame = true;
      conn.frame_started = std::chrono::steady_clock::now();
    }
  } else {
    conn.mid_frame = false;
  }
  if (conn.close_after_flush && conn.in_dispatch == 0 &&
      conn.out_offset == conn.outbuf.size()) {
    close_conn(conn.id);
    return;
  }
  update_interest(conn);
}

void Server::queue_response(Conn& conn, std::string_view payload) {
  // Responses originate here (handler output is pre-sanitised in the
  // worker; the rest are our own literals), but a tiny max_frame_bytes
  // in a test must never make the encoder throw on the loop thread.
  if (payload.size() > options_.max_frame_bytes) {
    payload = payload.substr(0, options_.max_frame_bytes);
  }
  conn.outbuf.append(encode_frame(payload, options_.max_frame_bytes));
  metrics_.frames_out->inc();
  flush_some(conn);
  update_interest(conn);
}

void Server::flush_some(Conn& conn) {
  while (conn.out_offset < conn.outbuf.size()) {
    const ssize_t sent =
        ::send(conn.fd, conn.outbuf.data() + conn.out_offset,
               conn.outbuf.size() - conn.out_offset,
               MSG_NOSIGNAL | MSG_DONTWAIT);
    if (sent < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      // Broken pipe / reset: nobody will read this output.  Drop it and
      // let the next close check reap the connection.
      conn.close_after_flush = true;
      conn.outbuf.clear();
      conn.out_offset = 0;
      return;
    }
    conn.out_offset += static_cast<std::size_t>(sent);
    metrics_.bytes_out->add(static_cast<double>(sent));
    conn.last_progress = std::chrono::steady_clock::now();
  }
  conn.outbuf.clear();
  conn.out_offset = 0;
}

void Server::conn_writable(Conn& conn) {
  flush_some(conn);
  if (conn.close_after_flush && conn.in_dispatch == 0 &&
      conn.out_offset == conn.outbuf.size()) {
    close_conn(conn.id);
    return;
  }
  // Output drained below the watermark: resume reading.
  if (!conn.read_closed && !drain_started_ && !conn.want_read &&
      conn.outbuf.size() - conn.out_offset <= options_.max_output_bytes &&
      conn.in_dispatch < options_.max_pipeline) {
    conn.want_read = true;
  }
  update_interest(conn);
}

void Server::update_interest(Conn& conn) {
  const bool want_write = conn.out_offset < conn.outbuf.size();
  const bool want_read = conn.want_read && !conn.read_closed &&
                         !drain_started_;
  std::uint32_t mask = 0;
  if (want_read) mask |= EPOLLIN | EPOLLRDHUP;
  if (want_write) mask |= EPOLLOUT;
  epoll_event ev{};
  ev.events = mask;
  ev.data.u64 = conn.id;
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
  conn.want_write = want_write;
}

void Server::close_conn(std::uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& conn = *it->second;
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
  close_fd(conn.fd);
  conns_.erase(it);
  metrics_.connections_closed->inc();
  metrics_.connections_active->set(static_cast<double>(conns_.size()));
}

void Server::begin_drain() {
  drain_started_ = true;
  drain_deadline_ = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(options_.drain_timeout_ms);
  // Stop accepting: close the listener so the OS refuses new peers
  // instead of parking them in the backlog.
  if (listen_fd_ >= 0) {
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    close_fd(listen_fd_);
  }
  // Stop reading everywhere; finish what is in flight, flush, close.
  std::vector<std::uint64_t> idle;
  for (auto& [id, conn] : conns_) {
    conn->read_closed = true;
    conn->close_after_flush = true;
    if (conn->in_dispatch == 0 &&
        conn->out_offset == conn->outbuf.size()) {
      idle.push_back(id);
    } else {
      update_interest(*conn);
    }
  }
  for (const auto id : idle) close_conn(id);
}

void Server::sweep_deadlines(std::chrono::steady_clock::time_point now) {
  if (options_.idle_timeout_ms <= 0) return;
  const auto budget = std::chrono::milliseconds(options_.idle_timeout_ms);
  std::vector<std::uint64_t> doomed_idle;
  std::vector<std::uint64_t> doomed_stalled;
  for (const auto& [id, conn] : conns_) {
    const bool output_pending = conn->out_offset < conn->outbuf.size();
    if (output_pending && now - conn->last_progress > budget) {
      // The peer stopped draining its responses.
      doomed_stalled.push_back(id);
      continue;
    }
    if (conn->mid_frame && now - conn->frame_started > budget) {
      // Slow loris: a frame that never finishes assembling.
      doomed_idle.push_back(id);
      continue;
    }
    if (!output_pending && conn->in_dispatch == 0 && !conn->read_closed &&
        now - conn->last_progress > budget) {
      doomed_idle.push_back(id);
    }
  }
  for (const auto id : doomed_idle) {
    metrics_.idle_disconnects->inc();
    close_conn(id);
  }
  for (const auto id : doomed_stalled) {
    metrics_.write_stall_disconnects->inc();
    close_conn(id);
  }
}

void Server::drain_completions() {
  std::vector<Completion> batch;
  {
    MutexLock lock(&queue_mutex_);
    batch.swap(completions_);
  }
  for (auto& c : batch) {
    const auto it = conns_.find(c.conn_id);
    if (it == conns_.end()) continue;  // connection died mid-request
    Conn& conn = *it->second;
    ACIC_DCHECK(conn.in_dispatch > 0, "completion without a dispatch");
    if (conn.in_dispatch > 0) conn.in_dispatch--;
    queue_response(conn, c.response);
    const auto again = conns_.find(c.conn_id);
    if (again == conns_.end()) continue;
    if (conn.close_after_flush && conn.in_dispatch == 0 &&
        conn.out_offset == conn.outbuf.size()) {
      close_conn(c.conn_id);
      continue;
    }
    // A completed request frees pipeline budget: maybe resume reading.
    if (!conn.read_closed && !drain_started_ && !conn.want_read &&
        conn.outbuf.size() - conn.out_offset <= options_.max_output_bytes &&
        conn.in_dispatch < options_.max_pipeline) {
      conn.want_read = true;
      update_interest(conn);
    }
  }
}

}  // namespace acic::net
