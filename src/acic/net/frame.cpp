#include "acic/net/frame.hpp"

#include <cstring>

#include "acic/common/error.hpp"

namespace acic::net {

namespace {

void put_u16_be(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>(v & 0xFF));
}

void put_u32_be(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>(v & 0xFF));
}

std::uint16_t get_u16_be(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint16_t>((u[0] << 8) | u[1]);
}

std::uint32_t get_u32_be(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return (static_cast<std::uint32_t>(u[0]) << 24) |
         (static_cast<std::uint32_t>(u[1]) << 16) |
         (static_cast<std::uint32_t>(u[2]) << 8) |
         static_cast<std::uint32_t>(u[3]);
}

}  // namespace

std::string encode_frame(std::string_view payload, std::size_t max_payload) {
  ACIC_EXPECTS(!payload.empty(), "refusing to encode an empty frame");
  ACIC_EXPECTS(payload.size() <= max_payload,
               "frame payload of " << payload.size()
                                   << " bytes exceeds the cap of "
                                   << max_payload);
  ACIC_EXPECTS(payload.find('\0') == std::string_view::npos,
               "frame payload contains a NUL byte");
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.push_back(static_cast<char>(kFrameMagic));
  out.push_back(static_cast<char>(kFrameVersion));
  put_u16_be(out, 0);  // flags, reserved
  put_u32_be(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  return out;
}

FrameDecoder::FrameDecoder(std::size_t max_payload)
    : max_payload_(max_payload) {}

void FrameDecoder::feed(const char* data, std::size_t n) {
  if (failed_ || n == 0) return;
  // Shift out the consumed prefix before growing; keeps the buffer
  // bounded by (header + max_payload) plus one socket read.
  if (consumed_ > 0) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, n);
}

FrameDecoder::Result FrameDecoder::fail(std::string reason) {
  failed_ = true;
  error_ = std::move(reason);
  buffer_.clear();
  consumed_ = 0;
  Result r;
  r.status = Status::kError;
  r.error = error_;
  return r;
}

FrameDecoder::Result FrameDecoder::next() {
  if (failed_) {
    Result r;
    r.status = Status::kError;
    r.error = error_;
    return r;
  }
  const std::size_t avail = buffer_.size() - consumed_;
  // Validate header fields as soon as each byte is present — a garbage
  // first byte is rejected immediately, not after 8 bytes trickle in.
  const char* p = buffer_.data() + consumed_;
  if (avail >= 1 &&
      static_cast<std::uint8_t>(p[0]) != kFrameMagic) {
    return fail("bad magic byte (not an ACIC frame)");
  }
  if (avail >= 2 &&
      static_cast<std::uint8_t>(p[1]) != kFrameVersion) {
    return fail("unsupported frame version");
  }
  if (avail >= 4 && get_u16_be(p + 2) != 0) {
    return fail("non-zero reserved flags");
  }
  if (avail < kFrameHeaderBytes) {
    return Result{};  // kNeedMore
  }
  const std::uint32_t length = get_u32_be(p + 4);
  if (length == 0) {
    return fail("zero-length frame");
  }
  if (length > max_payload_) {
    return fail("frame payload of " + std::to_string(length) +
                " bytes exceeds the cap of " + std::to_string(max_payload_));
  }
  if (avail < kFrameHeaderBytes + length) {
    return Result{};  // kNeedMore — partial payload stays buffered
  }
  Result r;
  r.payload.assign(p + kFrameHeaderBytes, length);
  if (r.payload.find('\0') != std::string::npos) {
    return fail("frame payload contains a NUL byte");
  }
  consumed_ += kFrameHeaderBytes + length;
  if (consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  }
  r.status = Status::kFrame;
  return r;
}

}  // namespace acic::net
