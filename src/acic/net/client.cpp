#include "acic/net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace acic::net {

namespace {

void close_quietly(int& fd) noexcept {
  if (fd >= 0) {
    int rc;
    do {
      rc = ::close(fd);
    } while (rc < 0 && errno == EINTR);
    fd = -1;
  }
}

}  // namespace

BlockingClient::BlockingClient(BlockingClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      decoder_(std::move(other.decoder_)),
      error_(std::move(other.error_)) {}

BlockingClient& BlockingClient::operator=(BlockingClient&& other) noexcept {
  if (this != &other) {
    close_quietly(fd_);
    fd_ = std::exchange(other.fd_, -1);
    decoder_ = std::move(other.decoder_);
    error_ = std::move(other.error_);
  }
  return *this;
}

BlockingClient::~BlockingClient() { close_quietly(fd_); }

bool BlockingClient::wait_io(short events, long timeout_ms) {
  pollfd p{};
  p.fd = fd_;
  p.events = events;
  for (;;) {
    const int rc = ::poll(&p, 1, static_cast<int>(timeout_ms));
    if (rc < 0) {
      if (errno == EINTR) continue;
      error_ = std::string("poll: ") + std::strerror(errno);
      return false;
    }
    if (rc == 0) {
      error_ = "timeout";
      return false;
    }
    return true;
  }
}

bool BlockingClient::connect(const std::string& host, std::uint16_t port,
                             long timeout_ms) {
  close_quietly(fd_);
  decoder_ = FrameDecoder();
  error_.clear();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved =
      (host.empty() || host == "localhost") ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    error_ = "host '" + host + "' is not an IPv4 address";
    close_quietly(fd_);
    return false;
  }
  int rc;
  do {
    rc = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0 && errno == EINPROGRESS) {
    if (!wait_io(POLLOUT, timeout_ms)) {
      close_quietly(fd_);
      return false;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      error_ = std::string("connect: ") + std::strerror(err);
      close_quietly(fd_);
      return false;
    }
    rc = 0;
  }
  if (rc < 0) {
    error_ = std::string("connect: ") + std::strerror(errno);
    close_quietly(fd_);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return true;
}

bool BlockingClient::send_raw(std::string_view bytes, std::size_t chunk,
                              long pause_ms) {
  if (fd_ < 0) {
    error_ = "not connected";
    return false;
  }
  std::size_t off = 0;
  while (off < bytes.size()) {
    std::size_t want = bytes.size() - off;
    if (chunk > 0) want = std::min(want, chunk);
    const ssize_t sent = ::send(fd_, bytes.data() + off, want,
                                MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!wait_io(POLLOUT, 5000)) return false;
        continue;
      }
      error_ = std::string("send: ") + std::strerror(errno);
      return false;
    }
    off += static_cast<std::size_t>(sent);
    if (pause_ms > 0 && off < bytes.size()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(pause_ms));
    }
  }
  return true;
}

bool BlockingClient::send_request(std::string_view line, long timeout_ms) {
  (void)timeout_ms;
  std::string frame;
  try {
    frame = encode_frame(line);
  } catch (const std::exception& e) {
    error_ = e.what();
    return false;
  }
  return send_raw(frame);
}

std::optional<std::string> BlockingClient::read_response(long timeout_ms) {
  if (fd_ < 0) {
    error_ = "not connected";
    return std::nullopt;
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  char buf[16 * 1024];
  for (;;) {
    auto result = decoder_.next();
    if (result.status == FrameDecoder::Status::kFrame) {
      return std::move(result.payload);
    }
    if (result.status == FrameDecoder::Status::kError) {
      error_ = "protocol: " + result.error;
      return std::nullopt;
    }
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - std::chrono::steady_clock::now())
                          .count();
    if (left <= 0) {
      error_ = "timeout";
      return std::nullopt;
    }
    if (!wait_io(POLLIN, left)) return std::nullopt;
    const ssize_t got = ::recv(fd_, buf, sizeof(buf), 0);
    if (got < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      error_ = std::string("recv: ") + std::strerror(errno);
      return std::nullopt;
    }
    if (got == 0) {
      error_ = decoder_.mid_frame() ? "eof mid-frame" : "eof";
      return std::nullopt;
    }
    decoder_.feed(buf, static_cast<std::size_t>(got));
  }
}

std::optional<std::string> BlockingClient::call(std::string_view line,
                                                long timeout_ms) {
  if (!send_request(line, timeout_ms)) return std::nullopt;
  return read_response(timeout_ms);
}

void BlockingClient::half_close() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void BlockingClient::close() { close_quietly(fd_); }

}  // namespace acic::net
