// Minimal blocking client for the framed ACIC protocol — the test and
// load-harness counterpart of net::Server.  One connection, synchronous
// calls, explicit timeouts via poll(2); also exposes the raw socket
// verbs (send_raw / half_close) that the chaos clients in
// bench/acic_slap.cpp use to misbehave on purpose.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "acic/net/frame.hpp"

namespace acic::net {

class BlockingClient {
 public:
  BlockingClient() = default;
  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;
  BlockingClient(BlockingClient&& other) noexcept;
  BlockingClient& operator=(BlockingClient&& other) noexcept;
  ~BlockingClient();

  /// Connect to host:port (IPv4 dotted-quad or "localhost") within
  /// `timeout_ms`.  Returns false (with last_error() set) on failure.
  bool connect(const std::string& host, std::uint16_t port,
               long timeout_ms = 5000);

  bool connected() const { return fd_ >= 0; }

  /// Frame `line` and send it fully.  False on any socket error.
  bool send_request(std::string_view line, long timeout_ms = 5000);

  /// Read one response frame.  std::nullopt on timeout, clean EOF, or a
  /// protocol/socket error — last_error() distinguishes them ("timeout",
  /// "eof", or a description).
  std::optional<std::string> read_response(long timeout_ms = 5000);

  /// Convenience: send_request + read_response.
  std::optional<std::string> call(std::string_view line,
                                  long timeout_ms = 5000);

  // --- chaos verbs ----------------------------------------------------
  /// Push raw bytes down the socket, unframed, optionally dripping them
  /// `chunk` bytes at a time with `pause_ms` between chunks.
  bool send_raw(std::string_view bytes, std::size_t chunk = 0,
                long pause_ms = 0);
  /// shutdown(SHUT_WR): we are done sending; responses still flow back.
  void half_close();
  /// Abrupt close (mid-frame disconnect chaos).
  void close();

  const std::string& last_error() const { return error_; }
  int fd() const { return fd_; }

 private:
  bool wait_io(short events, long timeout_ms);

  int fd_ = -1;
  FrameDecoder decoder_;
  std::string error_;
};

}  // namespace acic::net
