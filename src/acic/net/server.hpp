// Overload-resilient epoll TCP front end for the ACIC query service.
//
// One event-loop thread owns the listener, every connection, and all
// socket I/O; a small worker pool runs the request handler (typically
// `QueryService::handle`, which is thread-safe) so a slow `simulate`
// cannot stall the sockets.  The loop and the workers meet at two
// bounded, mutex-protected queues: requests flow out through the work
// queue, responses flow back through the completion queue plus a wake
// byte on an AF_UNIX socketpair.  Connections are addressed by a
// monotonically increasing id, never by pointer, so a completion for a
// connection that died mid-request is silently dropped.
//
// Robustness budgets (all per ServerOptions, all metered in `net.*`):
//
//  * Strict framing — any protocol violation (garbage, oversized or
//    zero length, embedded NUL; see frame.hpp) earns one typed `error`
//    frame and a close.  There is no resync on a length-prefixed
//    stream.
//  * Slow-loris defense — a connection that stays completely idle, or
//    dribbles a frame for longer than `idle_timeout_ms` without
//    completing it, is disconnected.  The clock is *frame progress*,
//    not raw bytes, so a byte-per-second client cannot hold a slot.
//  * Write-stall defense — a peer that stops draining its responses for
//    `idle_timeout_ms` while output is pending is disconnected.
//  * Backpressure — while a connection's output buffer exceeds
//    `max_output_bytes`, or it has `max_pipeline` requests in flight,
//    the loop stops *reading* from it (EPOLLIN off).  Memory per
//    connection is bounded; a fast requester is throttled to its own
//    drain rate instead of growing the heap.
//  * Bounded dispatch — when the work queue is full the request is
//    answered immediately with a typed `shed` frame; the handler's own
//    admission control (ServiceOptions::max_in_flight) remains the
//    second gate behind it.
//  * Connection cap — accepts beyond `max_connections` get a typed
//    `error` frame (best-effort) and an immediate close.
//
// Lifecycle: `run()` owns the loop until `request_drain()` — which is
// async-signal-safe, so SIGTERM/SIGINT handlers may call it directly —
// flips the server into drain mode: the listener closes, reading stops,
// in-flight and already-queued requests finish and flush, and `run()`
// returns once every connection is closed or `drain_timeout_ms`
// expires (stragglers are force-closed and counted).  Half-closed
// peers (shutdown(SHUT_WR)) still receive every response they are owed
// before the server closes its side.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "acic/common/mutex.hpp"
#include "acic/common/thread_annotations.hpp"
#include "acic/net/frame.hpp"
#include "acic/obs/metrics.hpp"

namespace acic::net {

struct ServerOptions {
  /// Bind address, IPv4 dotted-quad (or "localhost").  Port 0 binds an
  /// ephemeral port; read it back with Server::port().
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  /// Hard cap on simultaneously open connections (0 = a safe default).
  std::size_t max_connections = 1024;
  /// Hard cap on one frame's payload bytes.
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Read-idle / frame-assembly / write-stall deadline, milliseconds.
  long idle_timeout_ms = 10000;
  /// Drain budget after request_drain(), milliseconds.
  long drain_timeout_ms = 5000;
  /// Per-connection output-buffer high watermark (backpressure).
  std::size_t max_output_bytes = 256 * 1024;
  /// Per-connection requests dispatched but unanswered (pipelining cap).
  std::size_t max_pipeline = 32;
  /// Bounded work queue between the loop and the workers; requests
  /// beyond it are shed with a typed response.
  std::size_t max_queue_depth = 256;
  /// Handler worker threads (0 = min(hardware_concurrency, 8)).
  unsigned workers = 0;
};

/// One decoded request as the handler sees it.
struct Request {
  std::string line;  ///< frame payload (protocol line)
  /// When the complete frame arrived — queue wait counts against the
  /// service deadline (QueryService::handle(line, admitted_at)).
  std::chrono::steady_clock::time_point received_at;
};

using Handler = std::function<std::string(const Request&)>;

class Server {
 public:
  /// Binds and listens (throws acic::Error on failure); the loop does
  /// not start until run().  Connections made before run() sit in the
  /// accept backlog.
  Server(ServerOptions options, Handler handler);
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;
  ~Server();

  /// Resolved listening port (after the constructor bound it).
  std::uint16_t port() const { return port_; }

  /// Event loop: accepts, reads, dispatches, writes.  Returns after a
  /// drain completes.  Call from exactly one thread.
  void run();

  /// Flip into drain mode.  Async-signal-safe (one atomic store + one
  /// send() on the wake socketpair); callable from any thread or from a
  /// SIGTERM/SIGINT handler.  Idempotent.
  void request_drain() noexcept;

  /// True once run() has returned (or before it ever started).
  bool draining() const noexcept {
    return drain_requested_.load(std::memory_order_acquire);
  }

 private:
  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    FrameDecoder decoder;
    std::string outbuf;          ///< encoded frames awaiting send()
    std::size_t out_offset = 0;  ///< sent prefix of outbuf
    std::size_t in_dispatch = 0; ///< requests handed to workers
    bool want_read = true;       ///< EPOLLIN currently armed
    bool want_write = false;     ///< EPOLLOUT currently armed
    bool read_closed = false;    ///< peer half-closed or we stopped reading
    bool close_after_flush = false;
    std::chrono::steady_clock::time_point last_progress;
    /// Set while an incomplete frame is buffered; bounds frame assembly.
    std::chrono::steady_clock::time_point frame_started;
    bool mid_frame = false;

    explicit Conn(std::size_t max_frame) : decoder(max_frame) {}
  };

  struct WorkItem {
    std::uint64_t conn_id = 0;
    Request request;
  };
  struct Completion {
    std::uint64_t conn_id = 0;
    std::string response;
  };

  // --- event-loop internals (single-threaded; no lock needed) --------
  void accept_ready();
  void conn_readable(Conn& conn);
  void conn_writable(Conn& conn);
  void queue_response(Conn& conn, std::string_view payload);
  void flush_some(Conn& conn);
  void update_interest(Conn& conn);
  void close_conn(std::uint64_t id);
  void begin_drain();
  void sweep_deadlines(std::chrono::steady_clock::time_point now);
  void drain_completions();
  void dispatch_or_shed(Conn& conn, std::string payload);
  long next_timeout_ms(std::chrono::steady_clock::time_point now) const;

  // --- worker-pool plumbing ------------------------------------------
  void worker_main();
  void start_workers();
  void stop_workers();
  bool pop_work(WorkItem* item) ACIC_EXCLUDES(queue_mutex_);
  void push_completion(Completion c) ACIC_EXCLUDES(queue_mutex_);
  void wake_loop() noexcept;

  ServerOptions options_;
  Handler handler_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_rx_ = -1;  ///< loop end of the socketpair
  int wake_tx_ = -1;  ///< worker / signal end

  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::uint64_t next_conn_id_ = 2;  // 0 = listener, 1 = wake fd
  std::atomic<bool> drain_requested_{false};
  bool drain_started_ = false;
  std::chrono::steady_clock::time_point drain_deadline_{};

  Mutex queue_mutex_;
  CondVar work_available_;
  std::deque<WorkItem> work_queue_ ACIC_GUARDED_BY(queue_mutex_);
  std::vector<Completion> completions_ ACIC_GUARDED_BY(queue_mutex_);
  bool workers_stop_ ACIC_GUARDED_BY(queue_mutex_) = false;
  std::vector<std::thread> workers_;

  // net.* instruments, registered once here (single-site rule).
  struct Metrics {
    obs::Counter* connections_accepted = nullptr;
    obs::Counter* connections_rejected = nullptr;
    obs::Counter* connections_closed = nullptr;
    obs::Gauge* connections_active = nullptr;
    obs::Counter* frames_in = nullptr;
    obs::Counter* frames_out = nullptr;
    obs::Counter* bytes_in = nullptr;
    obs::Counter* bytes_out = nullptr;
    obs::Counter* protocol_errors = nullptr;
    obs::Counter* idle_disconnects = nullptr;
    obs::Counter* write_stall_disconnects = nullptr;
    obs::Counter* backpressure_pauses = nullptr;
    obs::Counter* queue_shed = nullptr;
    obs::Counter* requests = nullptr;
    obs::Histogram* request_latency_us = nullptr;
    obs::Counter* drain_forced_closes = nullptr;
  };
  Metrics metrics_;
};

}  // namespace acic::net
