// Wire framing for the ACIC network protocol.
//
// The query protocol itself is line-oriented text (see
// service/query_service.hpp); TCP gives us a byte stream, so the socket
// layer wraps each request and response in a small binary frame:
//
//   offset  size  field
//   0       1     magic      0xAC
//   1       1     version    0x01
//   2       2     flags      big-endian, must be zero (reserved)
//   4       4     length     big-endian payload byte count, 1..max
//   8       len   payload    UTF-8 protocol text, no NUL bytes
//
// The decoder is a *strict* incremental parser: it consumes whatever the
// socket delivered (one byte or a megabyte), buffers partial frames
// across reads, and classifies every violation — wrong magic, unknown
// version, non-zero flags, zero or oversized length, embedded NUL — as a
// typed error with a human-readable reason.  A framing error is
// unrecoverable by design: after garbage there is no trustworthy way to
// resynchronise on a length-prefixed stream, so the server answers one
// typed `error` frame and closes the connection.  The cap on `length`
// is the first line of overload defense — a client claiming a 4 GiB
// frame is rejected after 8 header bytes, not buffered.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace acic::net {

inline constexpr std::uint8_t kFrameMagic = 0xAC;
inline constexpr std::uint8_t kFrameVersion = 0x01;
inline constexpr std::size_t kFrameHeaderBytes = 8;

/// Default hard cap on one frame's payload.  Protocol lines are short;
/// anything near this is either a bug or an attack.
inline constexpr std::size_t kDefaultMaxFrameBytes = 64 * 1024;

/// Wrap `payload` in one wire frame.  Throws acic::Error when the
/// payload is empty, exceeds `max_payload`, or contains a NUL byte —
/// the encoder enforces the same strictness the decoder does, so a
/// malformed frame can never originate from this process.
std::string encode_frame(std::string_view payload,
                         std::size_t max_payload = kDefaultMaxFrameBytes);

/// Incremental strict decoder for a stream of frames.
class FrameDecoder {
 public:
  enum class Status : std::uint8_t {
    kNeedMore,  ///< no complete frame buffered yet
    kFrame,     ///< one frame extracted into `payload`
    kError,     ///< protocol violation; `error` describes it
  };

  struct Result {
    Status status = Status::kNeedMore;
    std::string payload;  ///< valid when status == kFrame
    std::string error;    ///< valid when status == kError
  };

  explicit FrameDecoder(std::size_t max_payload = kDefaultMaxFrameBytes);

  /// Append raw bytes from the socket.  After an error the decoder is
  /// poisoned: further feed() calls are ignored and next() keeps
  /// returning the same error (the connection is done).
  void feed(const char* data, std::size_t n);
  void feed(std::string_view bytes) { feed(bytes.data(), bytes.size()); }

  /// Try to extract the next frame.  Call in a loop until kNeedMore:
  /// one feed() may complete several pipelined frames.
  Result next();

  /// True when bytes of an incomplete frame are buffered — at stream
  /// EOF this distinguishes a clean close from a truncated frame.
  bool mid_frame() const { return !failed_ && !buffer_.empty(); }

  /// True once a protocol violation has been seen.
  bool failed() const { return failed_; }

  std::size_t buffered_bytes() const { return buffer_.size(); }
  std::size_t max_payload() const { return max_payload_; }

 private:
  Result fail(std::string reason);

  std::size_t max_payload_;
  std::string buffer_;
  std::size_t consumed_ = 0;  ///< parsed prefix of buffer_
  bool failed_ = false;
  std::string error_;
};

}  // namespace acic::net
