#include "acic/exec/runkey.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "acic/plugin/substrates.hpp"

namespace acic::exec {

namespace {

/// Fingerprint schema version.  Bump whenever the serialization below
/// changes meaning — old persistent stores then simply miss rather than
/// serve rows computed under different semantics.
constexpr const char* kVersionTag = "acic.exec.runkey.v1";

/// Builds the canonical tagged serialization.  Doubles are hashed by
/// their IEEE-754 bit pattern so that no decimal-formatting choice can
/// split (or merge) keys; -0.0 is normalised to +0.0 and every NaN to one
/// quiet-NaN pattern so equal-behaving inputs stay equal-keyed.
class Canonicalizer {
 public:
  Canonicalizer() { text_.reserve(512); }

  void field(std::string_view tag, double v) {
    if (v == 0.0) v = 0.0;  // -0.0 -> +0.0
    if (std::isnan(v)) v = std::numeric_limits<double>::quiet_NaN();
    raw(tag, std::bit_cast<std::uint64_t>(v));
  }
  void field(std::string_view tag, std::uint64_t v) { raw(tag, v); }
  void field(std::string_view tag, int v) {
    raw(tag, static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
  }
  void field(std::string_view tag, bool v) { raw(tag, v ? 1u : 0u); }
  void mark(const char* tag) {
    text_ += tag;
    text_ += ';';
  }

  std::string str() && { return std::move(text_); }

 private:
  void raw(std::string_view tag, std::uint64_t bits) {
    // Byte-identical to the old "%s=%016llx;" rendering, minus the
    // fixed tag-length cap (plugin knob tags are caller-controlled).
    text_ += tag;
    char buf[24];
    std::snprintf(buf, sizeof(buf), "=%016llx;",
                  static_cast<unsigned long long>(bits));
    text_ += buf;
  }

  std::string text_;
};

std::uint64_t fnv1a(std::string_view text, std::uint64_t basis) {
  std::uint64_t h = basis;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::string RunKey::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

std::optional<RunKey> RunKey::from_hex(std::string_view text) {
  if (text.size() != 32) return std::nullopt;
  auto parse_half = [](std::string_view half) -> std::optional<std::uint64_t> {
    std::uint64_t v = 0;
    for (char c : half) {
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint64_t>(c - 'a' + 10);
      } else {
        return std::nullopt;
      }
    }
    return v;
  };
  const auto hi = parse_half(text.substr(0, 16));
  const auto lo = parse_half(text.substr(16, 16));
  if (!hi || !lo) return std::nullopt;
  return RunKey{*hi, *lo};
}

std::string canonical_run_fingerprint(const io::Workload& workload,
                                      const cloud::IoConfig& config,
                                      const io::RunOptions& options) {
  Canonicalizer c;
  c.mark(kVersionTag);

  // --- Configuration (system half) ----------------------------------
  // Canonicalizations: the stripe size is meaningless (and normalised to
  // zero) outside the parallel file systems, and a defaulted RAID member
  // count resolves to the same platform value an explicit spelling would.
  c.field("cfg.device", static_cast<int>(config.device));
  c.field("cfg.fs", static_cast<int>(config.fs));
  c.field("cfg.instance", static_cast<int>(config.instance));
  c.field("cfg.servers", config.io_servers);
  c.field("cfg.placement", static_cast<int>(config.placement));
  c.field("cfg.stripe", plugin::filesystem_for(config.fs).single_server
                            ? 0.0
                            : config.stripe_size);
  c.field("cfg.raid", config.effective_raid_members());

  // Plugin-declared knobs fold in under their own versioned sub-block.
  // An empty knob list contributes zero bytes, keeping every pre-plugin
  // key bit-identical (the golden-RunKey regression pins this); the
  // substrate's schema version participates so re-interpreting a knob
  // misses the cache instead of serving stale rows.
  if (!config.plugin_knobs.empty()) {
    const auto& substrate = plugin::filesystem_for(config.fs);
    c.mark("cfg.knobs.v1");
    c.field("cfg.knobs.schema",
            static_cast<int>(substrate.schema.version));
    std::vector<std::pair<std::string, double>> knobs = config.plugin_knobs;
    std::sort(knobs.begin(), knobs.end());
    for (const auto& [name, value] : knobs) {
      c.field("k." + name, value);
    }
  }

  // --- Workload (application half) -----------------------------------
  // Hash the *normalized* shape: run_workload normalizes before
  // simulating, so a pre-normalized and a raw spelling behave the same.
  // Workload::name is a display label and is deliberately excluded.
  io::Workload w = workload;
  w.normalize();
  c.field("w.np", w.num_processes);
  c.field("w.io_procs", w.num_io_processes);
  c.field("w.interface", static_cast<int>(w.interface));
  c.field("w.iterations", w.iterations);
  c.field("w.data", w.data_size);
  c.field("w.request", w.request_size);
  c.field("w.op", static_cast<int>(w.op));
  c.field("w.collective", w.collective);
  c.field("w.shared", w.file_shared);
  c.field("w.compute", w.compute_per_iteration);
  c.field("w.comm", w.comm_per_iteration);

  // --- Behaviour-relevant run options --------------------------------
  c.field("o.seed", options.seed);
  c.field("o.jitter", options.jitter_sigma);
  c.field("o.watchdog", options.watchdog_sim_time);

  // The legacy failures_per_hour shorthand merges into the fault model
  // exactly as the runner merges it (the larger rate wins), and inert
  // sub-blocks are skipped: probabilities that only shape outages cannot
  // split keys when no outage is ever scheduled.
  cloud::FaultModel faults = options.fault_model;
  faults.outages_per_hour =
      std::max(faults.outages_per_hour, options.failures_per_hour);
  if (faults.outages_per_hour > 0.0) {
    c.field("f.outages", faults.outages_per_hour);
    c.field("f.correlated", faults.correlated_outage_probability);
    c.field("f.permanent", faults.permanent_loss_probability);
  }
  if (faults.brownouts_per_hour > 0.0) {
    c.field("f.brownouts", faults.brownouts_per_hour);
    c.field("f.brownout_fraction", faults.brownout_fraction);
  }
  if (faults.stragglers_per_hour > 0.0) {
    c.field("f.stragglers", faults.stragglers_per_hour);
    c.field("f.straggler_factor", faults.straggler_factor);
  }
  if (faults.preemptions_per_hour > 0.0) {
    c.field("f.preemptions", faults.preemptions_per_hour);
    c.field("f.preempt_notice", faults.preemption_notice);
  }
  if (faults.any()) {
    c.field("f.min_duration", faults.min_duration);
    c.field("f.max_duration", faults.max_duration);
  }

  // Checkpoint/restart policy folds in only once it can affect the run
  // (periodic dumps armed, or preemptions needing the recovery half);
  // the inert default contributes zero bytes, keeping pre-checkpoint
  // keys bit-identical.
  const io::CheckpointPolicy& ck = options.checkpoint;
  if (ck.enabled || faults.preemptions_per_hour > 0.0) {
    c.mark("ck.v1");
    c.field("ck.enabled", ck.enabled);
    c.field("ck.interval", ck.interval);
    c.field("ck.bytes", ck.bytes);
    c.field("ck.max_restarts", ck.max_restarts);
    c.field("ck.delay_min", ck.replacement_delay_min);
    c.field("ck.delay_max", ck.replacement_delay_max);
  }

  // File-system tuning always shapes the simulated costs.
  const fs::FsTuning& t = options.tuning;
  c.field("t.nfs_client", t.nfs_client_overhead);
  c.field("t.nfs_server", t.nfs_server_overhead);
  c.field("t.nfs_wlat", t.nfs_write_latency_factor);
  c.field("t.nfs_shared_pen", t.nfs_shared_write_penalty);
  c.field("t.nfs_open", t.nfs_open_cost);
  c.field("t.nfs_close", t.nfs_close_cost);
  c.field("t.nfs_cache", t.nfs_cache_fraction);
  c.field("t.pvfs_client", t.pvfs_client_overhead);
  c.field("t.pvfs_server", t.pvfs_server_overhead);
  c.field("t.pvfs_stripe_cpu", t.pvfs_per_stripe_cpu);
  c.field("t.pvfs_wlat", t.pvfs_write_latency_factor);
  c.field("t.pvfs_rlat", t.pvfs_read_latency_factor);
  c.field("t.pvfs_mds", t.pvfs_mds_op_cost);

  // Retry shape only matters once the policy is armed (disabled keeps
  // the legacy wait-forever semantics bit-for-bit).  The deadline.v2
  // mark versions the total-deadline clamp semantics: armed-retry rows
  // computed under the old overshooting backoff miss rather than serve.
  if (t.retry.enabled) {
    c.mark("r.enabled");
    c.mark("r.deadline.v2");
    c.field("r.timeout", t.retry.request_timeout);
    c.field("r.attempts", t.retry.max_attempts);
    c.field("r.base", t.retry.backoff_base);
    c.field("r.mult", t.retry.backoff_multiplier);
    c.field("r.cap", t.retry.backoff_cap);
    c.field("r.jitter", t.retry.backoff_jitter);
  }

  if (options.spot_pricing) {
    const cloud::SpotPricing& s = *options.spot_pricing;
    c.mark("p.spot");
    c.field("p.spot_factor", s.price_factor);
    c.field("p.spot_restart", s.per_restart_cost);
  } else if (options.detailed_pricing) {
    const cloud::DetailedPricing& p = *options.detailed_pricing;
    c.mark("p.detailed");
    c.field("p.gb_month", p.ebs_gb_month);
    c.field("p.per_mio", p.ebs_per_million_ios);
    c.field("p.volume", p.ebs_volume_size);
    c.field("p.hours", p.hours_per_month);
  } else {
    c.mark("p.eq1");
  }

  return std::move(c).str();
}

RunKey run_key(const io::Workload& workload, const cloud::IoConfig& config,
               const io::RunOptions& options) {
  const std::string canon =
      canonical_run_fingerprint(workload, config, options);
  // Two independent FNV-1a streams give a 128-bit address; collisions at
  // cache scale (millions of runs) are then vanishingly unlikely.
  return RunKey{fnv1a(canon, 14695981039346656037ULL ^ 0x9e3779b97f4a7c15ULL),
                fnv1a(canon, 14695981039346656037ULL)};
}

}  // namespace acic::exec
