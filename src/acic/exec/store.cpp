#include "acic/exec/store.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "acic/common/error.hpp"

namespace acic::exec {

namespace {

// Row layout.  Doubles are written with %.17g, which round-trips every
// finite IEEE-754 double exactly — cold and warm results stay
// bit-identical through the CSV.  The first header cell doubles as the
// schema version tag (it names the key column's schema generation).
const std::string kHeader =
    std::string(RunStore::kVersionTag) +
    ",total_time,cost,io_time,num_instances,fs_requests,fs_bytes,"
    "sim_events,outcome,retries,timeouts,failed_requests,stalled_time,"
    "fault_events_cancelled";
constexpr std::size_t kColumns = 14;

std::vector<std::string> split_row(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  for (char c : line) {
    if (c == ',') {
      cells.push_back(cell);
      cell.clear();
    } else if (c != '\r') {
      cell += c;
    }
  }
  cells.push_back(cell);
  return cells;
}

bool parse_double(const std::string& text, double& out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  out = v;
  return true;
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  std::uint64_t v = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = v;
  return true;
}

bool parse_outcome(const std::string& text, io::RunOutcome& out) {
  if (text == "ok") {
    out = io::RunOutcome::kOk;
  } else if (text == "degraded") {
    out = io::RunOutcome::kDegraded;
  } else if (text == "failed") {
    out = io::RunOutcome::kFailed;
  } else {
    return false;
  }
  return true;
}

/// Parse and validate one data row; false = quarantine it.
bool parse_row(const std::string& line, RunKey& key, io::RunResult& r) {
  const auto cells = split_row(line);
  if (cells.size() != kColumns) return false;
  const auto parsed_key = RunKey::from_hex(cells[0]);
  if (!parsed_key) return false;
  key = *parsed_key;
  std::uint64_t instances = 0;
  if (!parse_double(cells[1], r.total_time) ||
      !parse_double(cells[2], r.cost) ||
      !parse_double(cells[3], r.io_time) ||
      !parse_u64(cells[4], instances) ||
      !parse_u64(cells[5], r.fs_requests) ||
      !parse_double(cells[6], r.fs_bytes) ||
      !parse_u64(cells[7], r.sim_events) ||
      !parse_outcome(cells[8], r.outcome) ||
      !parse_u64(cells[9], r.retries) ||
      !parse_u64(cells[10], r.timeouts) ||
      !parse_u64(cells[11], r.failed_requests) ||
      !parse_double(cells[12], r.stalled_time) ||
      !parse_u64(cells[13], r.fault_events_cancelled)) {
    return false;
  }
  r.num_instances = static_cast<int>(instances);
  if (!std::isfinite(r.total_time) || !std::isfinite(r.cost) ||
      !std::isfinite(r.io_time) || !std::isfinite(r.fs_bytes) ||
      !std::isfinite(r.stalled_time) || r.total_time < 0.0) {
    return false;
  }
  // A row claiming a usable grade must carry a believable measurement;
  // only rows honestly marked `failed` may hold meaningless timings.
  if (r.outcome != io::RunOutcome::kFailed &&
      (r.total_time <= 0.0 || r.cost <= 0.0)) {
    return false;
  }
  return true;
}

std::string format_row(const RunKey& key, const io::RunResult& r) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "%s,%.17g,%.17g,%.17g,%d,%llu,%.17g,%llu,%s,%llu,%llu,%llu,%.17g,%llu",
      key.hex().c_str(), r.total_time, r.cost, r.io_time, r.num_instances,
      static_cast<unsigned long long>(r.fs_requests), r.fs_bytes,
      static_cast<unsigned long long>(r.sim_events), io::to_string(r.outcome),
      static_cast<unsigned long long>(r.retries),
      static_cast<unsigned long long>(r.timeouts),
      static_cast<unsigned long long>(r.failed_requests), r.stalled_time,
      static_cast<unsigned long long>(r.fault_events_cancelled));
  return buf;
}

}  // namespace

RunStore::RunStore(std::string dir) : dir_(std::move(dir)) {
  namespace fsys = std::filesystem;
  fsys::create_directories(dir_);
  runs_path_ = (fsys::path(dir_) / "runs.csv").string();
  if (!fsys::exists(runs_path_)) return;

  std::ifstream in(runs_path_);
  if (!in) throw Error("cannot read run store " + runs_path_);
  std::string line;
  if (!std::getline(in, line)) return;  // empty file: treat as fresh
  const auto header = split_row(line);
  if (header.empty() || header[0] != kVersionTag) {
    // Different schema generation: sideline the whole file rather than
    // guess at its row meaning, and start fresh.
    in.close();
    fsys::rename(runs_path_, runs_path_ + ".incompatible");
    return;
  }

  std::vector<std::string> bad_rows;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    RunKey key;
    io::RunResult r;
    if (parse_row(line, key, r)) {
      rows_.emplace(key, r);
    } else {
      bad_rows.push_back(line);
    }
  }
  in.close();
  quarantined_ = bad_rows.size();
  if (bad_rows.empty()) return;

  // Quarantine, then rewrite runs.csv with only the survivors so the
  // corruption is handled once, not re-reported every open.
  std::ofstream q((fsys::path(dir_) / "quarantine.csv").string(),
                  std::ios::app);
  for (const auto& row : bad_rows) q << row << "\n";
  std::ofstream out(runs_path_, std::ios::trunc);
  if (!out) throw Error("cannot rewrite run store " + runs_path_);
  out << kHeader << "\n";
  for (const auto& [key, r] : rows_) out << format_row(key, r) << "\n";
}

std::optional<io::RunResult> RunStore::lookup(const RunKey& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = rows_.find(key);
  if (it == rows_.end()) return std::nullopt;
  return it->second;
}

void RunStore::put(const RunKey& key, const io::RunResult& result) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!rows_.emplace(key, result).second) return;  // already present
  append_row(key, result);
}

void RunStore::append_row(const RunKey& key, const io::RunResult& result) {
  const bool fresh = !std::filesystem::exists(runs_path_);
  std::ofstream out(runs_path_, std::ios::app);
  if (!out) throw Error("cannot append to run store " + runs_path_);
  if (fresh) out << kHeader << "\n";
  out << format_row(key, result) << "\n";
}

std::size_t RunStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rows_.size();
}

std::uint64_t RunStore::bytes_on_disk() const {
  std::error_code ec;
  const auto size = std::filesystem::file_size(runs_path_, ec);
  return ec ? 0 : static_cast<std::uint64_t>(size);
}

}  // namespace acic::exec
