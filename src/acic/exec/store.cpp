#include "acic/exec/store.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>  // std::once_flag / std::call_once only (see acic_lint.py)
#include <sstream>
#include <string_view>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "acic/common/crc32c.hpp"
#include "acic/common/error.hpp"
#include "acic/exec/crashpoint.hpp"
#include "acic/obs/metrics.hpp"

namespace acic::exec {

namespace {

// Row layout.  Doubles are written with %.17g, which round-trips every
// finite IEEE-754 double exactly — cold and warm results stay
// bit-identical through the CSV.  The first header cell doubles as the
// schema version tag (it names the record schema's generation).  Every
// data row carries one extra framing cell: the 8-hex-digit CRC32C of
// the payload in front of it.
const std::string kHeader =
    std::string(RunStore::kVersionTag) +
    ",total_time,cost,io_time,num_instances,fs_requests,fs_bytes,"
    "sim_events,outcome,retries,timeouts,failed_requests,stalled_time,"
    "fault_events_cancelled,preemptions,restarts,lost_sim_time,"
    "checkpoint_bytes,crc32c";
constexpr std::size_t kColumns = 18;  // payload cells, excluding the frame

std::vector<std::string> split_row(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  for (char c : line) {
    if (c == ',') {
      cells.push_back(cell);
      cell.clear();
    } else if (c != '\r') {
      cell += c;
    }
  }
  cells.push_back(cell);
  return cells;
}

bool parse_double(const std::string& text, double& out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  out = v;
  return true;
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  std::uint64_t v = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    const auto digit = static_cast<std::uint64_t>(c - '0');
    // Reject overflow instead of wrapping: a corrupt >20-digit counter
    // must never be accepted as a small believable value.
    if (v > (UINT64_MAX - digit) / 10) return false;
    v = v * 10 + digit;
  }
  out = v;
  return true;
}

bool parse_outcome(const std::string& text, io::RunOutcome& out) {
  if (text == "ok") {
    out = io::RunOutcome::kOk;
  } else if (text == "degraded") {
    out = io::RunOutcome::kDegraded;
  } else if (text == "failed") {
    out = io::RunOutcome::kFailed;
  } else {
    return false;
  }
  return true;
}

/// Parse and validate one CRC-verified payload; false = quarantine it.
bool parse_row(const std::string& line, RunKey& key, io::RunResult& r) {
  const auto cells = split_row(line);
  if (cells.size() != kColumns) return false;
  const auto parsed_key = RunKey::from_hex(cells[0]);
  if (!parsed_key) return false;
  key = *parsed_key;
  std::uint64_t instances = 0;
  if (!parse_double(cells[1], r.total_time) ||
      !parse_double(cells[2], r.cost) ||
      !parse_double(cells[3], r.io_time) ||
      !parse_u64(cells[4], instances) ||
      !parse_u64(cells[5], r.fs_requests) ||
      !parse_double(cells[6], r.fs_bytes) ||
      !parse_u64(cells[7], r.sim_events) ||
      !parse_outcome(cells[8], r.outcome) ||
      !parse_u64(cells[9], r.retries) ||
      !parse_u64(cells[10], r.timeouts) ||
      !parse_u64(cells[11], r.failed_requests) ||
      !parse_double(cells[12], r.stalled_time) ||
      !parse_u64(cells[13], r.fault_events_cancelled) ||
      !parse_u64(cells[14], r.preemptions) ||
      !parse_u64(cells[15], r.restarts) ||
      !parse_double(cells[16], r.lost_sim_time) ||
      !parse_double(cells[17], r.checkpoint_bytes)) {
    return false;
  }
  r.num_instances = static_cast<int>(instances);
  if (!std::isfinite(r.total_time) || !std::isfinite(r.cost) ||
      !std::isfinite(r.io_time) || !std::isfinite(r.fs_bytes) ||
      !std::isfinite(r.stalled_time) || !std::isfinite(r.lost_sim_time) ||
      !std::isfinite(r.checkpoint_bytes) || r.total_time < 0.0) {
    return false;
  }
  // A row claiming a usable grade must carry a believable measurement;
  // only rows honestly marked `failed` may hold meaningless timings.
  if (r.outcome != io::RunOutcome::kFailed &&
      (r.total_time <= 0.0 || r.cost <= 0.0)) {
    return false;
  }
  return true;
}

std::string format_row(const RunKey& key, const io::RunResult& r) {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "%s,%.17g,%.17g,%.17g,%d,%llu,%.17g,%llu,%s,%llu,%llu,%llu,%.17g,%llu,"
      "%llu,%llu,%.17g,%.17g",
      key.hex().c_str(), r.total_time, r.cost, r.io_time, r.num_instances,
      static_cast<unsigned long long>(r.fs_requests), r.fs_bytes,
      static_cast<unsigned long long>(r.sim_events), io::to_string(r.outcome),
      static_cast<unsigned long long>(r.retries),
      static_cast<unsigned long long>(r.timeouts),
      static_cast<unsigned long long>(r.failed_requests), r.stalled_time,
      static_cast<unsigned long long>(r.fault_events_cancelled),
      static_cast<unsigned long long>(r.preemptions),
      static_cast<unsigned long long>(r.restarts), r.lost_sim_time,
      r.checkpoint_bytes);
  return buf;
}

/// Splits a framed line into payload and verifies its CRC cell.
bool unframe(const std::string& line, std::string& payload) {
  const auto comma = line.rfind(',');
  if (comma == std::string::npos || line.size() - comma - 1 != 8) {
    return false;
  }
  std::uint32_t crc = 0;
  for (std::size_t i = comma + 1; i < line.size(); ++i) {
    const char c = line[i];
    std::uint32_t nibble;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<std::uint32_t>(c - 'a') + 10;
    } else {
      return false;
    }
    crc = crc << 4 | nibble;
  }
  payload = line.substr(0, comma);
  if (crc32c(payload) != crc) return false;
  return true;
}

std::string strerr() { return std::strerror(errno); }

/// Whole-file read; returns false with `exists` cleared when the file is
/// absent, throws on a file that exists but cannot be read.
bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (!std::filesystem::exists(path)) return false;
    throw Error("cannot read run store " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

int open_retry(const char* path, int flags, mode_t mode = 0) {
  int fd;
  do {
    fd = ::open(path, flags, mode);
  } while (fd < 0 && errno == EINTR);
  return fd;
}

/// Full write with EINTR retry; returns bytes written (may be short on
/// ENOSPC — the caller decides how to scrub the partial record).
std::size_t write_all(int fd, const char* data, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd, data + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    done += static_cast<std::size_t>(n);
  }
  return done;
}

struct FdCloser {
  int fd;
  ~FdCloser() {
    if (fd >= 0) ::close(fd);
  }
};

}  // namespace

/// Everything one pass over runs.csv learns.  `good_bytes` is the byte
/// offset just past the last well-formed (or quarantinable-but-
/// complete) record — the truncation point when the tail is torn.
struct RunStore::ScanResult {
  std::vector<std::pair<RunKey, io::RunResult>> rows;
  std::vector<std::string> bad;  ///< complete interior records to quarantine
  std::uint64_t good_bytes = 0;
  std::uint64_t ino = 0;
  std::uint64_t file_size = 0;
  bool torn = false;          ///< bytes past good_bytes are a torn tail
  bool fresh = false;         ///< no file / empty file: header must be written
  bool incompatible = false;  ///< complete foreign header: sideline whole
};

RunStore::RunStore(std::string dir) : dir_(std::move(dir)) {
  namespace fsys = std::filesystem;
  static std::once_flag crashpoint_once;
  std::call_once(crashpoint_once, [] { Crashpoints::arm_from_env(); });

  auto& registry = obs::MetricsRegistry::global();
  torn_metric_ = &registry.counter("exec.store.torn_tail");
  quarantined_metric_ = &registry.counter("exec.store_quarantined");
  quarantine_dropped_metric_ =
      &registry.counter("exec.store.quarantine_dropped");
  replayed_metric_ = &registry.counter("exec.store.replayed_rows");
  compactions_metric_ = &registry.counter("exec.store.compactions");

  std::error_code ec;
  fsys::create_directories(dir_, ec);
  if (ec) {
    throw Error("cannot create run store directory " + dir_ + ": " +
                ec.message());
  }
  runs_path_ = (fsys::path(dir_) / "runs.csv").string();
  tmp_path_ = runs_path_ + ".tmp";
  lock_ = std::make_unique<FileLock>(
      (fsys::path(dir_) / kLockFileName).string());
  if (!lock_->valid()) {
    throw Error("cannot create run store lock in " + dir_ + ": " + strerr());
  }

  // The mutex is uncontended during construction (no other thread sees
  // this instance yet), but the recovery helpers' lock contracts are
  // unconditional — hold it rather than carve out a constructor
  // exception.  Lock order holds: mutex_ before the flock.
  MutexLock lock(&mutex_);
  // Fast path under a shared lock: a clean file (the common case) loads
  // without blocking concurrent readers or appenders.
  {
    ScopedFileLock shared(*lock_, ScopedFileLock::Mode::kShared);
    if (!shared.held()) throw Error("cannot lock run store " + dir_);
    auto scan = scan_file();
    if (adopt_clean_scan(scan)) return;
  }
  // Something needs writing (missing header, torn tail, corrupt rows,
  // foreign schema): upgrade to exclusive and re-scan — another process
  // may have repaired, or appended, between the two locks.
  recover_exclusive();
}

bool RunStore::adopt_clean_scan(const ScanResult& scan) {
  if (scan.fresh || scan.incompatible || scan.torn || !scan.bad.empty()) {
    return false;
  }
  rows_.clear();
  for (const auto& [key, result] : scan.rows) rows_.emplace(key, result);
  replay_ino_ = scan.ino;
  replay_offset_ = scan.good_bytes;
  return true;
}

void RunStore::recover_exclusive() {
  ScopedFileLock exclusive(*lock_, ScopedFileLock::Mode::kExclusive);
  if (!exclusive.held()) throw Error("cannot lock run store " + dir_);
  auto scan = scan_file();
  if (adopt_clean_scan(scan)) return;  // someone else repaired already

  if (scan.incompatible) {
    // Different schema generation: sideline the whole file rather than
    // guess at its row meaning, and start fresh.
    std::error_code ec;
    std::filesystem::rename(runs_path_, runs_path_ + ".incompatible", ec);
    if (ec) {
      throw Error("cannot sideline incompatible run store " + runs_path_ +
                  ": " + ec.message());
    }
    scan = ScanResult{};
    scan.fresh = true;
  }

  rows_.clear();
  for (const auto& [key, result] : scan.rows) rows_.emplace(key, result);
  if (scan.torn) note_torn_tail();
  if (!scan.bad.empty()) quarantine_records(scan.bad);

  if (!scan.fresh && scan.bad.empty()) {
    // Torn tail only: surgically truncate the unacknowledged bytes; the
    // live file keeps its identity (other processes' replay cursors
    // stay valid).
    if (::truncate(runs_path_.c_str(), static_cast<off_t>(scan.good_bytes)) !=
        0) {
      throw Error("cannot truncate torn run store tail " + runs_path_ + ": " +
                  strerr());
    }
    refresh_replay_position();
    return;
  }
  // Fresh header and/or quarantined rows: atomically rewrite the whole
  // file (header + survivors) — never truncate the live file in place.
  rewrite_locked();
}

RunStore::ScanResult RunStore::scan_file() const {
  ScanResult scan;
  std::string content;
  if (!read_file(runs_path_, content)) {
    scan.fresh = true;
    return scan;
  }
  struct stat st {};
  if (::stat(runs_path_.c_str(), &st) == 0) {
    scan.ino = static_cast<std::uint64_t>(st.st_ino);
  }
  scan.file_size = content.size();
  if (content.empty()) {
    scan.fresh = true;
    return scan;
  }

  const auto header_end = content.find('\n');
  if (header_end == std::string::npos) {
    // A file that is nothing but an unterminated prefix of our own
    // header is a crash during header initialization — recover it as a
    // torn tail.  Anything else is an unknown format: sideline it.
    if (kHeader.compare(0, content.size(), content) == 0) {
      scan.fresh = true;
      scan.torn = true;
      return scan;
    }
    scan.incompatible = true;
    return scan;
  }
  {
    std::string first_line = content.substr(0, header_end);
    if (!first_line.empty() && first_line.back() == '\r') first_line.pop_back();
    const auto header = split_row(first_line);
    if (header.empty() || header[0] != kVersionTag) {
      scan.incompatible = true;
      return scan;
    }
  }
  scan.good_bytes = header_end + 1;

  std::size_t pos = header_end + 1;
  while (pos < content.size()) {
    const auto nl = content.find('\n', pos);
    if (nl == std::string::npos) {
      // Unterminated trailing bytes: a torn append (or a concurrent
      // writer's record caught mid-flight during replay).
      scan.torn = true;
      break;
    }
    std::string line = content.substr(pos, nl - pos);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    pos = nl + 1;
    if (line.empty()) {
      scan.good_bytes = pos;
      continue;
    }
    std::string payload;
    if (unframe(line, payload)) {
      RunKey key;
      io::RunResult result;
      if (parse_row(payload, key, result)) {
        scan.rows.emplace_back(key, result);
      } else {
        scan.bad.push_back(line);  // CRC fine, content invalid: corrupt
      }
      scan.good_bytes = pos;
    } else {
      // Bad CRC on a fully newline-terminated record — even the final
      // one.  A torn single-write(2) append can never persist the
      // trailing newline without the payload bytes in front of it, so
      // terminated-but-bad-CRC is real corruption (bit rot, a foreign
      // writer), not a torn tail: quarantine it for forensics.
      scan.bad.push_back(line);
      scan.good_bytes = pos;
    }
  }
  return scan;
}

void RunStore::note_torn_tail() {
  ++torn_tails_;
  torn_metric_->inc();
}

void RunStore::quarantine_records(const std::vector<std::string>& lines) {
  const auto path =
      (std::filesystem::path(dir_) / "quarantine.csv").string();
  std::ofstream q(path, std::ios::app);
  for (const auto& line : lines) q << line << "\n";
  q.flush();
  if (!q) {
    // The forensic copy could not be written — likely ENOSPC, i.e.
    // exactly when the store is already failing.  The rows still leave
    // the live set, but count them as dropped rather than letting the
    // metrics claim they were sidelined.
    quarantine_dropped_ += lines.size();
    quarantine_dropped_metric_->add(static_cast<double>(lines.size()));
    std::fprintf(stderr,
                 "acic: cannot write %zu quarantined record(s) to %s; "
                 "forensic copies lost\n",
                 lines.size(), path.c_str());
    return;
  }
  quarantined_ += lines.size();
  quarantined_metric_->add(static_cast<double>(lines.size()));
}

void RunStore::refresh_replay_position() {
  struct stat st {};
  if (::stat(runs_path_.c_str(), &st) == 0) {
    replay_ino_ = static_cast<std::uint64_t>(st.st_ino);
    replay_offset_ = static_cast<std::uint64_t>(st.st_size);
  } else {
    replay_ino_ = 0;
    replay_offset_ = 0;
  }
}

void RunStore::rewrite_locked() {
  // Stage the complete survivor set, fsync, then atomically replace the
  // live file.  A crash at any point leaves either the old complete
  // runs.csv or the new one — never a truncated hybrid.
  std::string content = kHeader + "\n";
  for (const auto& [key, result] : rows_) {
    content += frame(format_row(key, result));
    content += '\n';
  }

  const int fd = open_retry(tmp_path_.c_str(),
                            O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw Error("cannot stage run store rewrite " + tmp_path_ + ": " +
                strerr());
  }
  {
    FdCloser closer{fd};
    if (const auto crash = Crashpoints::on_write("store.compact")) {
      if (*crash == CrashMode::kBeforeWrite) Crashpoints::die();
      if (*crash == CrashMode::kTornWrite) {
        (void)write_all(fd, content.data(), content.size() / 2);
        Crashpoints::die();
      }
      (void)write_all(fd, content.data(), content.size());
      Crashpoints::die();
    }
    if (write_all(fd, content.data(), content.size()) != content.size()) {
      throw Error("cannot write run store rewrite " + tmp_path_ + ": " +
                  strerr());
    }
    if (::fsync(fd) != 0) {
      throw Error("cannot sync run store rewrite " + tmp_path_ + ": " +
                  strerr());
    }
  }
  if (Crashpoints::on_write("store.compact.rename")) Crashpoints::die();
  if (::rename(tmp_path_.c_str(), runs_path_.c_str()) != 0) {
    throw Error("cannot publish run store rewrite " + runs_path_ + ": " +
                strerr());
  }
  // Persist the rename itself (best-effort: some filesystems refuse
  // directory fsync; the data file is already synced).
  if (const int dirfd = open_retry(dir_.c_str(), O_RDONLY | O_DIRECTORY);
      dirfd >= 0) {
    ::fsync(dirfd);
    ::close(dirfd);
  }
  ++compactions_;
  compactions_metric_->inc();
  replay_offset_ = content.size();
  struct stat st {};
  if (::stat(runs_path_.c_str(), &st) == 0) {
    replay_ino_ = static_cast<std::uint64_t>(st.st_ino);
  }
}

std::string RunStore::frame(const std::string& payload) {
  char crc_hex[10];
  std::snprintf(crc_hex, sizeof(crc_hex), ",%08x", crc32c(payload));
  return payload + crc_hex;
}

std::optional<io::RunResult> RunStore::lookup(const RunKey& key) {
  MutexLock lock(&mutex_);
  if (const auto it = rows_.find(key); it != rows_.end()) return it->second;
  // Miss: another process sharing this directory may have appended the
  // run since we last read — replay before giving up.
  replay_appended_locked();
  if (const auto it = rows_.find(key); it != rows_.end()) return it->second;
  return std::nullopt;
}

void RunStore::replay_appended_locked() {
  // Best-effort by contract: lookup() must never throw, so any hiccup
  // here simply means "no new rows visible yet".
  ScopedFileLock shared(*lock_, ScopedFileLock::Mode::kShared);
  if (!shared.held()) return;
  struct stat st {};
  if (::stat(runs_path_.c_str(), &st) != 0) return;
  const auto ino = static_cast<std::uint64_t>(st.st_ino);
  const auto size = static_cast<std::uint64_t>(st.st_size);
  if (ino == replay_ino_ && size == replay_offset_) return;

  std::size_t fresh_rows = 0;
  if (ino == replay_ino_ && size > replay_offset_) {
    // Same file grew: incrementally parse the appended region.  The
    // cursor always rests on a record boundary, and an unterminated or
    // bad-CRC tail is left unconsumed (a concurrent append may still be
    // landing); it heals on the next replay or the next open.
    std::ifstream in(runs_path_, std::ios::binary);
    if (!in) return;
    in.seekg(static_cast<std::streamoff>(replay_offset_));
    std::string chunk(static_cast<std::size_t>(size - replay_offset_), '\0');
    in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    if (in.gcount() <= 0) return;
    chunk.resize(static_cast<std::size_t>(in.gcount()));

    std::size_t pos = 0;
    std::uint64_t consumed = 0;
    while (pos < chunk.size()) {
      const auto nl = chunk.find('\n', pos);
      if (nl == std::string::npos) break;
      std::string line = chunk.substr(pos, nl - pos);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      const bool is_last = nl + 1 >= chunk.size();
      std::string payload;
      if (!line.empty()) {
        if (unframe(line, payload)) {
          RunKey key;
          io::RunResult result;
          if (parse_row(payload, key, result) &&
              rows_.emplace(key, result).second) {
            ++fresh_rows;
          }
        } else if (is_last) {
          // Bad CRC at the end of the replay window: either a
          // concurrent append caught mid-visibility or real corruption.
          // Replay holds only a shared lock and cannot rewrite — leave
          // it unconsumed for open-time recovery to judge.
          break;
        }
      }
      pos = nl + 1;
      consumed = pos;
    }
    replay_offset_ += consumed;
  } else {
    // The file shrank or was replaced (a compaction, or a quarantine
    // rewrite, by another process): reload it whole and union the rows.
    ScanResult scan;
    try {
      scan = scan_file();
    } catch (const std::exception&) {
      return;
    }
    if (scan.fresh || scan.incompatible) return;
    for (const auto& [key, result] : scan.rows) {
      if (rows_.emplace(key, result).second) ++fresh_rows;
    }
    replay_ino_ = scan.ino;
    replay_offset_ = scan.good_bytes;
  }
  if (fresh_rows > 0) {
    replayed_ += fresh_rows;
    replayed_metric_->add(static_cast<double>(fresh_rows));
  }
}

void RunStore::put(const RunKey& key, const io::RunResult& result) {
  MutexLock lock(&mutex_);
  const auto [it, inserted] = rows_.emplace(key, result);
  if (!inserted) return;  // already present (content-addressed)
  try {
    append_record(frame(format_row(key, result)) + "\n");
  } catch (...) {
    // The record was never durably acknowledged: roll the row back out
    // of memory so a later compact() cannot resurrect it.
    rows_.erase(it);
    throw;
  }
}

void RunStore::append_record(const std::string& line) {
  ScopedFileLock shared(*lock_, ScopedFileLock::Mode::kShared);
  if (!shared.held()) throw Error("cannot lock run store " + dir_);
  // No O_CREAT: the header was folded into the (exclusively locked)
  // open path, so a missing file here means the store was yanked out
  // from under us — fail and let the executor degrade, rather than
  // silently recreating a headerless file.
  const int fd =
      open_retry(runs_path_.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd < 0) {
    throw Error("cannot append to run store " + runs_path_ + ": " + strerr());
  }
  FdCloser closer{fd};

  if (const auto crash = Crashpoints::on_write("store.append")) {
    if (*crash == CrashMode::kBeforeWrite) Crashpoints::die();
    if (*crash == CrashMode::kTornWrite) {
      (void)write_all(fd, line.data(), line.size() / 2);
      Crashpoints::die();
    }
    (void)write_all(fd, line.data(), line.size());
    Crashpoints::die();
  }

  const std::size_t written = write_all(fd, line.data(), line.size());
  if (written != line.size()) {
    const int saved_errno = errno;
    // Partial record on disk (ENOSPC mid-write).  Scrub it if it is
    // still the tail, so it cannot glue onto a neighbour's later append
    // and corrupt *their* acknowledged record.
    if (written > 0 && lock_->lock_exclusive()) {
      struct stat st {};
      if (::fstat(fd, &st) == 0 &&
          static_cast<std::size_t>(st.st_size) >= written) {
        std::string tail(written, '\0');
        const auto tail_at = static_cast<off_t>(st.st_size) -
                             static_cast<off_t>(written);
        if (::pread(fd, tail.data(), written, tail_at) ==
                static_cast<ssize_t>(written) &&
            tail.compare(0, written, line, 0, written) == 0) {
          (void)::ftruncate(fd, tail_at);
        }
      }
    }
    throw Error("short append to run store " + runs_path_ + ": " +
                std::strerror(saved_errno));
  }
  // The record is acknowledged only once it is durable.
  if (::fsync(fd) != 0) {
    throw Error("cannot sync run store append " + runs_path_ + ": " +
                strerr());
  }
}

void RunStore::compact() {
  MutexLock lock(&mutex_);
  ScopedFileLock exclusive(*lock_, ScopedFileLock::Mode::kExclusive);
  if (!exclusive.held()) throw Error("cannot lock run store " + dir_);
  // Merge the on-disk state first: compaction must never drop a record
  // another writer acknowledged since our last replay.
  auto scan = scan_file();
  if (!scan.incompatible) {
    for (const auto& [key, result] : scan.rows) rows_.emplace(key, result);
    if (scan.torn) note_torn_tail();
    if (!scan.bad.empty()) quarantine_records(scan.bad);
  }
  rewrite_locked();
}

std::size_t RunStore::size() const {
  MutexLock lock(&mutex_);
  return rows_.size();
}

std::uint64_t RunStore::bytes_on_disk() const {
  std::error_code ec;
  const auto size = std::filesystem::file_size(runs_path_, ec);
  return ec ? 0 : static_cast<std::uint64_t>(size);
}

}  // namespace acic::exec
