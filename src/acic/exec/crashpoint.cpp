#include "acic/exec/crashpoint.hpp"

#include <atomic>
#include <cstdlib>

#include <unistd.h>

#include "acic/common/mutex.hpp"
#include "acic/common/thread_annotations.hpp"

namespace acic::exec {

namespace {

// The armed state.  `remaining` is the fast-path guard: 0 means
// disarmed, so an unarmed process pays one relaxed load per store
// write.  The site string is only read once `remaining` is non-zero,
// under the mutex (arming and firing never race in practice — torture
// tests arm before forking — but the lock keeps TSan and the
// thread-safety analysis honest).
std::atomic<std::size_t> g_remaining{0};
Mutex g_mutex;
std::string g_site ACIC_GUARDED_BY(g_mutex);
CrashMode g_mode ACIC_GUARDED_BY(g_mutex) = CrashMode::kBeforeWrite;

}  // namespace

void Crashpoints::arm(std::string site, std::size_t nth, CrashMode mode) {
  MutexLock lock(&g_mutex);
  g_site = std::move(site);
  g_mode = mode;
  g_remaining.store(nth, std::memory_order_release);
}

void Crashpoints::disarm() { arm(std::string(), 0); }

void Crashpoints::arm_from_env() {
  const char* spec = std::getenv("ACIC_CRASHPOINT");
  if (!spec || !*spec) return;
  const std::string text(spec);
  const auto colon = text.find(':');
  if (colon == std::string::npos || colon == 0) return;
  std::string site = text.substr(0, colon);
  std::string rest = text.substr(colon + 1);
  CrashMode mode = CrashMode::kBeforeWrite;
  if (const auto colon2 = rest.find(':'); colon2 != std::string::npos) {
    const std::string mode_text = rest.substr(colon2 + 1);
    rest = rest.substr(0, colon2);
    if (mode_text == "torn") {
      mode = CrashMode::kTornWrite;
    } else if (mode_text == "after") {
      mode = CrashMode::kAfterWrite;
    } else if (mode_text != "before") {
      return;  // unknown mode: refuse to arm rather than guess
    }
  }
  char* end = nullptr;
  const unsigned long nth = std::strtoul(rest.c_str(), &end, 10);
  if (end == rest.c_str() || *end != '\0' || nth == 0) return;
  arm(std::move(site), static_cast<std::size_t>(nth), mode);
}

std::optional<CrashMode> Crashpoints::on_write(std::string_view site) {
  if (g_remaining.load(std::memory_order_acquire) == 0) return std::nullopt;
  MutexLock lock(&g_mutex);
  std::size_t remaining = g_remaining.load(std::memory_order_relaxed);
  if (remaining == 0 || g_site != site) return std::nullopt;
  --remaining;
  g_remaining.store(remaining, std::memory_order_release);
  if (remaining > 0) return std::nullopt;
  return g_mode;
}

void Crashpoints::die() { ::_exit(2); }

}  // namespace acic::exec
