// Canonical run identity for the execution engine.
//
// Every ACIC phase boils down to "run (workload, config, options) through
// the simulator" — and because the simulator is deterministic per seed,
// two requests with the same *behavioural* inputs produce bit-identical
// results.  RunKey is the content address for that primitive: a 128-bit
// FNV-1a fingerprint over a canonical serialization of the inputs, stable
// across field-assignment order, float formatting, and the various
// equivalent spellings the option structs allow (the legacy
// `failures_per_hour` shorthand, a defaulted RAID member count, an
// un-normalized workload).
//
// Deliberately EXCLUDED from the fingerprint (see DESIGN.md §9):
//  * Workload::name            — a display label, never read by the model.
//  * RunOptions::tracer        — an observation tap; traced runs bypass
//                                the cache entirely (Executor refuses to
//                                answer them from memory, because the tap
//                                is a side effect a cache hit would skip).
//  * inert fault-model fields  — brownout_fraction when no brownouts are
//                                scheduled, retry shape when the policy is
//                                disabled, etc.  Two option structs that
//                                cannot behave differently share a key.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "acic/io/runner.hpp"

namespace acic::exec {

/// 128-bit content address of one simulation run.
struct RunKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend auto operator<=>(const RunKey&, const RunKey&) = default;

  /// 32 lowercase hex characters (hi then lo); the on-disk row key.
  std::string hex() const;
  /// Parse `hex()` output; nullopt on anything malformed.
  static std::optional<RunKey> from_hex(std::string_view text);
};

struct RunKeyHash {
  std::size_t operator()(const RunKey& k) const noexcept {
    return static_cast<std::size_t>(k.lo ^ (k.hi * 0x9e3779b97f4a7c15ULL));
  }
};

/// The canonical serialization the fingerprint hashes: a versioned,
/// tagged "field=value;" string with doubles rendered as IEEE-754 bit
/// patterns (format-independent) and every canonicalization rule applied.
/// Exposed for tests and debugging — production callers want run_key().
std::string canonical_run_fingerprint(const io::Workload& workload,
                                      const cloud::IoConfig& config,
                                      const io::RunOptions& options);

/// Fingerprint of one run request.  Invariant to field ordering, float
/// formatting, and behaviourally-equivalent option spellings; distinct
/// for anything that can change the simulated outcome (seed, jitter,
/// fault model, tuning, pricing mode, workload shape, configuration).
RunKey run_key(const io::Workload& workload, const cloud::IoConfig& config,
               const io::RunOptions& options);

}  // namespace acic::exec
