// The unified execution engine: every consumer of "run (workload,
// config, options) through the simulator" — training sweeps, PB
// screening, space walking, the service's simulate verb, application
// evaluation, the bench harnesses — routes through one Executor instead
// of calling io::run_workload directly.
//
// What the engine adds over the raw primitive:
//
//  * canonical run identity — requests are content-addressed by RunKey
//    (see runkey.hpp), so equivalent spellings of the same run share one
//    simulation;
//  * a two-tier cache — a thread-safe in-memory memo table, plus an
//    optional persistent RunStore shared across processes (armed by
//    ExecutorOptions::store_dir, or by the ACIC_CACHE_DIR environment
//    variable for the process-wide executor);
//  * a deduplicating batch scheduler — run_batch() collapses duplicate
//    keys before dispatch and fans the unique work across parallel_for;
//  * in-flight coalescing — two concurrent callers asking for the same
//    key share one simulation, the second blocks on the first's future;
//  * honest failure caching — failed runs are cached with their grade
//    (RunOutcome::kFailed travels through both tiers), never laundered
//    into timings;
//  * observability — acic::obs counters for hits, misses, dedup,
//    coalesced waits and cache footprint under the `exec.` prefix;
//  * graceful degradation — any store I/O failure (read-only cache
//    directory, ENOSPC, yanked directory) demotes the executor to
//    memo-only with the `exec.store.degraded` gauge and a one-shot
//    stderr warning, instead of failing the caller's run.
//
// Traced runs (options.tracer != nullptr) bypass the cache entirely:
// the trace tap is a side effect a cached answer would silently skip.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "acic/common/mutex.hpp"
#include "acic/common/thread_annotations.hpp"
#include "acic/exec/runkey.hpp"
#include "acic/exec/store.hpp"
#include "acic/io/runner.hpp"

namespace acic::obs {
class Counter;
class Gauge;
}  // namespace acic::obs

namespace acic::exec {

/// One unit of work for the engine.
struct RunRequest {
  io::Workload workload;
  cloud::IoConfig config;
  io::RunOptions options;
};

/// Where a result came from (per-request provenance for callers that
/// account probes/hits themselves, e.g. the space walker).
enum class RunSource {
  kExecuted,     ///< fresh simulation on this call
  kMemo,         ///< in-memory tier hit
  kStore,        ///< persistent tier hit
  kCoalesced,    ///< shared a concurrent caller's in-flight simulation
  kDeduped,      ///< duplicate key inside one run_batch
  kUncacheable,  ///< traced or cache-disabled: executed, not recorded
};

const char* to_string(RunSource source);

struct RunInfo {
  RunSource source = RunSource::kExecuted;
  RunKey key;
};

struct ExecutorOptions {
  /// Master switch for both cache tiers and coalescing; false turns the
  /// engine into a pass-through (the examples' --no-cache).
  bool cache = true;
  /// Non-empty arms the persistent tier at this directory.
  std::string store_dir;
  /// Default host-thread fan-out for run_batch (0 = hardware).
  unsigned threads = 0;
  /// Test seam: replaces io::run_workload as the simulation primitive.
  std::function<io::RunResult(const RunRequest&)> run_fn;
};

class Executor {
 public:
  explicit Executor(ExecutorOptions options = {});
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// The process-wide engine every default-configured consumer shares —
  /// this is what makes training sweeps, walker probes and service
  /// queries dedupe against *each other*.  Its persistent tier is armed
  /// from the ACIC_CACHE_DIR environment variable when set.
  static Executor& global();

  /// Execute one request through the cache tiers.  Deterministic inputs
  /// mean a hit is bit-identical to a fresh run.  Throws whatever the
  /// underlying simulation throws (invalid workload/config).
  io::RunResult run(const RunRequest& request, RunInfo* info = nullptr)
      ACIC_EXCLUDES(mutex_);

  /// Batch scheduler: collapses duplicate keys, fans unique work across
  /// parallel_for, and scatters results so response i answers request i.
  /// Failed runs surface per-request via RunResult::outcome.
  std::vector<io::RunResult> run_batch(std::span<const RunRequest> requests,
                                       std::vector<RunInfo>* infos = nullptr);
  std::vector<io::RunResult> run_batch(std::span<const RunRequest> requests,
                                       unsigned threads,
                                       std::vector<RunInfo>* infos = nullptr);

  /// Arm the persistent tier at `dir` if none is armed yet (idempotent;
  /// a second call with a different directory is ignored).  A directory
  /// that cannot be opened degrades to memo-only instead of throwing.
  void arm_store(const std::string& dir) ACIC_EXCLUDES(mutex_);
  bool has_store() const ACIC_EXCLUDES(mutex_);

  /// True once any store I/O failure (unopenable directory, failed
  /// append, ENOSPC, EROFS) demoted this executor to memo-only.  Also
  /// visible process-wide as the `exec.store.degraded` gauge; the first
  /// degradation prints a one-shot warning to stderr.
  bool store_degraded() const ACIC_EXCLUDES(mutex_);

  std::size_t memo_size() const ACIC_EXCLUDES(mutex_);
  /// Construction-time options.  Immutable after the constructor (run()
  /// reads `cache`/`run_fn` without the lock on that basis); the armed
  /// store directory lives on the RunStore itself, not here.
  const ExecutorOptions& options() const { return options_; }

 private:
  struct InFlight {
    std::promise<io::RunResult> promise;
    std::shared_future<io::RunResult> future;
  };

  io::RunResult execute(const RunRequest& request);
  /// Probes the memo tier; non-null means a hit whose counters and
  /// `info` provenance are already accounted.
  const io::RunResult* memo_probe_locked(const RunKey& key, RunInfo* info)
      ACIC_REQUIRES(mutex_);
  /// Joins an in-flight simulation of `key` (fills `wait_on`) or claims
  /// ownership of a new one (fills `owned` and registers it).
  void join_or_claim_locked(const RunKey& key,
                            std::shared_ptr<InFlight>& wait_on,
                            std::shared_ptr<InFlight>& owned)
      ACIC_REQUIRES(mutex_);
  void note_memo_footprint_locked() ACIC_REQUIRES(mutex_);
  void degrade_store_locked(const char* why) ACIC_REQUIRES(mutex_);

  // Immutable after construction (see options()).
  ExecutorOptions options_;
  mutable Mutex mutex_;
  std::unordered_map<RunKey, io::RunResult, RunKeyHash> memo_
      ACIC_GUARDED_BY(mutex_);
  std::unordered_map<RunKey, std::shared_ptr<InFlight>, RunKeyHash> inflight_
      ACIC_GUARDED_BY(mutex_);
  // shared_ptr so callers can pin the store by value and use it outside
  // mutex_; degradation drops this reference, but a pinned store stays
  // alive until every in-flight put()/lookup() returns.
  std::shared_ptr<RunStore> store_ ACIC_GUARDED_BY(mutex_);
  bool degraded_ ACIC_GUARDED_BY(mutex_) = false;
  std::atomic<bool> store_degradation_warned_{false};

  // Process-wide instruments, resolved once so the hot path never takes
  // the registry lock.
  obs::Counter* cache_hits_;
  obs::Counter* memo_hits_;
  obs::Counter* store_hits_;
  obs::Counter* misses_;
  obs::Counter* runs_executed_;
  obs::Counter* coalesced_waits_;
  obs::Counter* dedup_collapsed_;
  obs::Counter* uncacheable_;
  obs::Gauge* memo_entries_;
  obs::Gauge* memo_bytes_;
  obs::Gauge* store_bytes_;
  obs::Gauge* store_degraded_;
};

}  // namespace acic::exec
