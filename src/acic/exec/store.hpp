// Persistent tier of the execution engine's run cache: a content-
// addressed on-disk table of finished simulation results, keyed by
// RunKey — crash-safe and shareable between processes.
//
// Layout (one directory per store):
//   runs.csv        — versioned header + one CRC-framed record per run
//   runs.csv.tmp    — compaction staging file (atomically renamed over
//                     runs.csv; a leftover tmp from a crashed compactor
//                     is inert and overwritten by the next rewrite)
//   quarantine.csv  — records that failed validation, kept for
//                     forensics instead of silently dropped
//   .store.lock     — advisory flock coordination point (stable across
//                     the rename-replacement of runs.csv)
//
// Durability design (DESIGN.md §10):
//
//  * Record framing.  Every data row carries a trailing CRC32C cell
//    over its payload.  On open, *unterminated* trailing bytes are a
//    torn write: truncated silently (counted in
//    `exec.store.torn_tail`), because a crash mid-append can only tear
//    the last record and that record was never acknowledged.  A
//    newline-terminated record with a bad CRC — tail or interior —
//    cannot be a torn single-write append (the newline is the last
//    byte, so a partial write never persists it without the payload):
//    it is corruption, and is quarantined along with rows whose CRC
//    passes but whose content fails validation (wrong arity, bad key
//    hex, non-numeric or overflowing cells, unknown outcome,
//    non-positive timings on rows claiming a clean outcome).  A
//    quarantine copy that itself cannot be written (ENOSPC) is counted
//    in `exec.store.quarantine_dropped` instead of claimed sidelined.
//  * Atomic rewrite.  Quarantine repair and compact() stage the full
//    survivor set in runs.csv.tmp, fsync, then rename(2) over the live
//    file — runs.csv is never truncated in place, so a crash leaves
//    either the old complete file or the new complete file.
//  * Single-write appends.  Each record is one write(2) on an O_APPEND
//    descriptor, so concurrent appenders cannot interleave mid-row, and
//    each append is fsync'd before put() acknowledges it.
//  * Multi-process coordination.  Advisory flock on `.store.lock`:
//    shared for replay and appends, exclusive for anything that
//    replaces or truncates runs.csv (open-time repair, compaction,
//    header initialization — which is why two racing first-appends can
//    no longer both write the header).  A lookup miss replays records
//    appended by other processes since the last read; a compaction by
//    another process (inode change) triggers a full reload.
//
// Two lock layers, one order (DESIGN.md §11).  The store is protected
// by two orthogonal locks that must never be conflated:
//
//    acic::Mutex mutex_   — *in-process* exclusion.  Guards the
//                           in-memory row map, the stats counters and
//                           the replay cursor; compile-time checked via
//                           ACIC_GUARDED_BY/ACIC_REQUIRES under Clang
//                           `-Wthread-safety`.
//    flock(.store.lock)   — *cross-process* coordination.  Guards the
//                           bytes of runs.csv against other processes;
//                           invisible to the static analysis (the OS
//                           holds it), so its discipline lives in the
//                           ScopedFileLock call sites below.
//
//    Lock order: mutex_ is ALWAYS acquired before the file lock and
//    released after it.  The file lock never wraps a mutex_ acquire,
//    so the two layers cannot deadlock against each other.
//
// Failure policy: constructor, put() and compact() throw acic::Error on
// I/O failure (the Executor catches and degrades to memo-only);
// lookup() never throws — replay is best-effort.  put() rolls its row
// back out of memory when the append fails, so a later compact() cannot
// resurrect a record that was never durably acknowledged.
//
// Thread-safe within one process; safe between processes via flock.
// Two RunStore instances on one directory — same or different
// processes — see each other's rows.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "acic/common/filelock.hpp"
#include "acic/common/mutex.hpp"
#include "acic/common/thread_annotations.hpp"
#include "acic/exec/runkey.hpp"
#include "acic/io/runner.hpp"

namespace acic::obs {
class Counter;
}  // namespace acic::obs

namespace acic::exec {

class RunStore {
 public:
  /// Opens (creating the directory if needed) and loads `dir`/runs.csv,
  /// recovering from torn tails and quarantining corrupt records.  An
  /// incompatible schema generation sidelines the whole file.  Throws
  /// acic::Error when the directory, lock file or runs.csv cannot be
  /// created/read (e.g. a read-only cache directory).
  explicit RunStore(std::string dir);

  const std::string& dir() const { return dir_; }

  /// Cache probe.  A miss replays records appended by other processes
  /// before answering.  Never throws.
  std::optional<io::RunResult> lookup(const RunKey& key)
      ACIC_EXCLUDES(mutex_);

  /// Insert-or-ignore: the store is content-addressed, so a key that is
  /// already present keeps its existing (identical) row.  The insert is
  /// acknowledged only once the framed record is durably appended;
  /// on failure the row is rolled back and acic::Error is thrown.
  void put(const RunKey& key, const io::RunResult& result)
      ACIC_EXCLUDES(mutex_);

  /// Atomically rewrites runs.csv as header + the full merged row set
  /// (other writers' records are replayed first, so compaction never
  /// drops their acknowledged rows).  Throws acic::Error on I/O failure.
  void compact() ACIC_EXCLUDES(mutex_);

  std::size_t size() const ACIC_EXCLUDES(mutex_);
  // The stats accessors lock: the counters are mutated under mutex_ by
  // concurrent lookup()-replay and compact(), so an unlocked read was a
  // (thread-safety-analysis-caught) data race.
  /// Corrupt records sidelined to quarantine.csv by this instance.
  std::size_t quarantined() const ACIC_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return quarantined_;
  }
  /// Corrupt records whose forensic copy could not be written (the
  /// quarantine.csv append itself failed); they left the live set but
  /// are not preserved.
  std::size_t quarantine_dropped() const ACIC_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return quarantine_dropped_;
  }
  /// Torn tail records truncated during recovery by this instance.
  std::size_t torn_tails() const ACIC_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return torn_tails_;
  }
  /// Records appended by other writers and replayed on lookup miss.
  std::size_t replayed() const ACIC_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return replayed_;
  }
  /// Atomic rewrites (open-time repair + explicit compact()) performed.
  std::size_t compactions() const ACIC_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return compactions_;
  }
  /// Current size of runs.csv in bytes (0 when nothing is cached yet).
  std::uint64_t bytes_on_disk() const;

  /// Frames `payload` as stored on disk: payload + "," + 8-hex CRC32C.
  /// Exposed so tests and tooling can synthesize valid records.
  static std::string frame(const std::string& payload);

  /// First header cell of runs.csv; bump together with the record
  /// schema (v2 added the CRC frame cell; v3 the preemption/checkpoint
  /// columns).
  static constexpr const char* kVersionTag = "acic_exec_store_v3";
  static constexpr const char* kLockFileName = ".store.lock";

 private:
  struct ScanResult;

  // scan_file() reads only immutable paths (and the file itself under
  // the caller's flock), so it carries no lock contract; every helper
  // that touches the in-memory state requires mutex_.
  ScanResult scan_file() const;
  bool adopt_clean_scan(const ScanResult& scan) ACIC_REQUIRES(mutex_);
  void recover_exclusive() ACIC_REQUIRES(mutex_);
  void note_torn_tail() ACIC_REQUIRES(mutex_);
  void quarantine_records(const std::vector<std::string>& lines)
      ACIC_REQUIRES(mutex_);
  void rewrite_locked() ACIC_REQUIRES(mutex_);
  void append_record(const std::string& line) ACIC_REQUIRES(mutex_);
  void replay_appended_locked() ACIC_REQUIRES(mutex_);
  void refresh_replay_position() ACIC_REQUIRES(mutex_);

  // Immutable after construction.
  std::string dir_;
  std::string runs_path_;
  std::string tmp_path_;
  std::unique_ptr<FileLock> lock_;

  // In-process state: everything below is guarded by mutex_ (the
  // cross-process flock guards the *file*, never these members — see
  // the layering note in the file comment).
  mutable Mutex mutex_;
  std::unordered_map<RunKey, io::RunResult, RunKeyHash> rows_
      ACIC_GUARDED_BY(mutex_);
  std::size_t quarantined_ ACIC_GUARDED_BY(mutex_) = 0;
  std::size_t quarantine_dropped_ ACIC_GUARDED_BY(mutex_) = 0;
  std::size_t torn_tails_ ACIC_GUARDED_BY(mutex_) = 0;
  std::size_t replayed_ ACIC_GUARDED_BY(mutex_) = 0;
  std::size_t compactions_ ACIC_GUARDED_BY(mutex_) = 0;

  // Replay cursor: how far into runs.csv (and which inode) this
  // instance has consumed.
  std::uint64_t replay_ino_ ACIC_GUARDED_BY(mutex_) = 0;
  std::uint64_t replay_offset_ ACIC_GUARDED_BY(mutex_) = 0;

  // Process-wide instruments (exec.store.*), resolved once.
  obs::Counter* torn_metric_;
  obs::Counter* quarantined_metric_;
  obs::Counter* quarantine_dropped_metric_;
  obs::Counter* replayed_metric_;
  obs::Counter* compactions_metric_;
};

}  // namespace acic::exec
