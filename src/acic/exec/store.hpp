// Persistent tier of the execution engine's run cache: a content-
// addressed on-disk table of finished simulation results, keyed by
// RunKey.
//
// Layout (one directory per store):
//   runs.csv        — versioned header + one row per cached run
//   quarantine.csv  — rows that failed validation at load time, kept for
//                     forensics instead of silently dropped
//
// The store is loaded whole at open (cached sweeps are thousands of rows,
// not millions), appends one CSV line per new result, and validates
// ruthlessly on the way in: wrong arity, non-numeric cells, unknown
// outcome grades, and non-positive timings on rows claiming a clean
// outcome are all quarantined — a corrupt shared cache must never
// resurface as a believable measurement.  Failed runs are stored *with
// their grade*, so a warm hit of a failed run is still a failure, never a
// timing.
//
// Thread-safe within one process.  Concurrent *processes* appending to
// one store directory are not coordinated; point them at separate
// directories (the CI smoke job runs cold/warm sequentially).
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "acic/exec/runkey.hpp"
#include "acic/io/runner.hpp"

namespace acic::exec {

class RunStore {
 public:
  /// Opens (creating the directory if needed) and loads `dir`/runs.csv.
  /// An incompatible schema version sidelines the whole file; corrupt
  /// rows are appended to quarantine.csv and runs.csv is rewritten with
  /// only the surviving rows.  Throws acic::Error on I/O failure.
  explicit RunStore(std::string dir);

  const std::string& dir() const { return dir_; }

  std::optional<io::RunResult> lookup(const RunKey& key) const;

  /// Insert-or-ignore: the store is content-addressed, so a key that is
  /// already present keeps its existing (identical) row.
  void put(const RunKey& key, const io::RunResult& result);

  std::size_t size() const;
  /// Corrupt rows sidelined while loading this store.
  std::size_t quarantined() const { return quarantined_; }
  /// Current size of runs.csv in bytes (0 when nothing is cached yet).
  std::uint64_t bytes_on_disk() const;

  /// First header cell of runs.csv; bump together with the RunKey schema.
  static constexpr const char* kVersionTag = "acic_exec_store_v1";

 private:
  void append_row(const RunKey& key, const io::RunResult& result);

  std::string dir_;
  std::string runs_path_;
  mutable std::mutex mutex_;
  std::unordered_map<RunKey, io::RunResult, RunKeyHash> rows_;
  std::size_t quarantined_ = 0;
};

}  // namespace acic::exec
