#include "acic/exec/executor.hpp"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "acic/common/parallel.hpp"
#include "acic/obs/metrics.hpp"

namespace acic::exec {

const char* to_string(RunSource source) {
  switch (source) {
    case RunSource::kExecuted:
      return "executed";
    case RunSource::kMemo:
      return "memo";
    case RunSource::kStore:
      return "store";
    case RunSource::kCoalesced:
      return "coalesced";
    case RunSource::kDeduped:
      return "deduped";
    case RunSource::kUncacheable:
      return "uncacheable";
  }
  return "unknown";
}

Executor::Executor(ExecutorOptions options) : options_(std::move(options)) {
  auto& registry = obs::MetricsRegistry::global();
  cache_hits_ = &registry.counter("exec.cache_hits");
  memo_hits_ = &registry.counter("exec.memo_hits");
  store_hits_ = &registry.counter("exec.store_hits");
  misses_ = &registry.counter("exec.cache_misses");
  runs_executed_ = &registry.counter("exec.runs_executed");
  coalesced_waits_ = &registry.counter("exec.coalesced_waits");
  dedup_collapsed_ = &registry.counter("exec.dedup_collapsed");
  uncacheable_ = &registry.counter("exec.uncacheable_runs");
  memo_entries_ = &registry.gauge("exec.memo_entries");
  memo_bytes_ = &registry.gauge("exec.memo_bytes");
  store_bytes_ = &registry.gauge("exec.store_bytes");
  store_degraded_ = &registry.gauge("exec.store.degraded");
  if (!options_.run_fn) {
    options_.run_fn = [](const RunRequest& r) {
      return io::run_workload(r.workload, r.config, r.options);
    };
  }
  if (options_.cache && !options_.store_dir.empty()) {
    // No other thread can see a half-constructed executor, but the
    // degrade helper's lock contract is unconditional — take the
    // (uncontended) lock rather than carve out a constructor exception.
    MutexLock lock(&mutex_);
    try {
      store_ = std::make_shared<RunStore>(options_.store_dir);
      store_bytes_->set(static_cast<double>(store_->bytes_on_disk()));
    } catch (const std::exception& e) {
      degrade_store_locked(e.what());
    }
  }
}

Executor& Executor::global() {
  static Executor* instance = [] {
    ExecutorOptions options;
    if (const char* dir = std::getenv("ACIC_CACHE_DIR"); dir && *dir) {
      options.store_dir = dir;
    }
    return new Executor(std::move(options));
  }();
  return *instance;
}

void Executor::arm_store(const std::string& dir) {
  MutexLock lock(&mutex_);
  if (!options_.cache || store_ || dir.empty()) return;
  try {
    // options_ stays untouched: it is immutable after construction so
    // run() may read it without the lock.  The armed directory is
    // recorded on the store itself (store_->dir()).
    store_ = std::make_shared<RunStore>(dir);
    store_bytes_->set(static_cast<double>(store_->bytes_on_disk()));
  } catch (const std::exception& e) {
    degrade_store_locked(e.what());
  }
}

void Executor::degrade_store_locked(const char* why) {
  // Graceful degradation: a store that cannot be opened or written
  // (read-only cache dir, ENOSPC, yanked directory) must cost us the
  // persistent tier, not the run — the memo tier keeps serving and
  // every simulation still completes.  Dropping our reference does not
  // destroy the store while peer threads hold a pinned shared_ptr and
  // are still inside put()/lookup(); the last pin frees it.
  store_.reset();
  degraded_ = true;
  store_degraded_->set(1.0);
  if (!store_degradation_warned_.exchange(true)) {
    std::fprintf(stderr,
                 "acic: run store degraded to memo-only (%s); results from "
                 "this process will not persist\n",
                 why);
  }
}

bool Executor::has_store() const {
  MutexLock lock(&mutex_);
  return store_ != nullptr;
}

bool Executor::store_degraded() const {
  MutexLock lock(&mutex_);
  return degraded_;
}

std::size_t Executor::memo_size() const {
  MutexLock lock(&mutex_);
  return memo_.size();
}

io::RunResult Executor::execute(const RunRequest& request) {
  runs_executed_->inc();
  return options_.run_fn(request);
}

const io::RunResult* Executor::memo_probe_locked(const RunKey& key,
                                                 RunInfo* info) {
  const auto it = memo_.find(key);
  if (it == memo_.end()) return nullptr;
  cache_hits_->inc();
  memo_hits_->inc();
  if (info) info->source = RunSource::kMemo;
  return &it->second;
}

void Executor::join_or_claim_locked(const RunKey& key,
                                    std::shared_ptr<InFlight>& wait_on,
                                    std::shared_ptr<InFlight>& owned) {
  if (const auto it = inflight_.find(key); it != inflight_.end()) {
    wait_on = it->second;
  } else {
    owned = std::make_shared<InFlight>();
    owned->future = owned->promise.get_future().share();
    inflight_.emplace(key, owned);
  }
}

void Executor::note_memo_footprint_locked() {
  // Approximate: the memo holds flat structs, so entries * entry size is
  // within a small factor of the truth (hash-table overhead excluded).
  memo_entries_->set(static_cast<double>(memo_.size()));
  memo_bytes_->set(static_cast<double>(
      memo_.size() * (sizeof(RunKey) + sizeof(io::RunResult))));
}

io::RunResult Executor::run(const RunRequest& request, RunInfo* info) {
  // A traced run's value is the trace itself; answering it from cache
  // would silently skip the tap.  Cache-disabled executors pass through.
  if (!options_.cache || request.options.tracer != nullptr) {
    if (info) info->source = RunSource::kUncacheable;
    uncacheable_->inc();
    return options_.run_fn(request);
  }

  const RunKey key = run_key(request.workload, request.config,
                             request.options);
  if (info) info->key = key;

  std::shared_ptr<InFlight> wait_on;
  std::shared_ptr<InFlight> owned;
  std::shared_ptr<RunStore> store;
  {
    MutexLock lock(&mutex_);
    if (const auto* hit = memo_probe_locked(key, info)) return *hit;
    // Pin the store by value: a concurrent degradation drops store_,
    // and this reference is what keeps the object alive while we probe.
    store = store_;
    if (!store) join_or_claim_locked(key, wait_on, owned);
  }

  if (store) {
    // Probe the persistent tier outside mutex_: lookup() takes a
    // blocking shared flock and may replay the whole file, so holding
    // the executor lock here would stall every thread — including pure
    // memo hits — behind another process's compaction.  lookup() never
    // throws by contract (replay of other writers' rows is best-effort),
    // so the probe cannot degrade the store.
    const auto hit = store->lookup(key);
    MutexLock lock(&mutex_);
    // Re-check the memo: another thread may have installed the result
    // while we were probing without the lock.
    if (const auto* memo_hit = memo_probe_locked(key, info)) return *memo_hit;
    if (hit) {
      memo_.emplace(key, *hit);
      note_memo_footprint_locked();
      cache_hits_->inc();
      store_hits_->inc();
      if (info) info->source = RunSource::kStore;
      return *hit;
    }
    join_or_claim_locked(key, wait_on, owned);
  }

  if (wait_on) {
    // Someone else is already simulating this key: share their result
    // (or their exception) instead of burning a second simulation.
    coalesced_waits_->inc();
    if (info) info->source = RunSource::kCoalesced;
    return wait_on->future.get();
  }

  misses_->inc();
  io::RunResult result;
  try {
    result = execute(request);
  } catch (...) {
    {
      MutexLock lock(&mutex_);
      inflight_.erase(key);
    }
    owned->promise.set_exception(std::current_exception());
    throw;
  }

  {
    MutexLock lock(&mutex_);
    // Failed runs are cached *as failures*: the full result including
    // its RunOutcome grade goes in, so a warm hit can never pass a
    // meaningless timing off as a measurement.
    memo_.emplace(key, result);
    inflight_.erase(key);
    note_memo_footprint_locked();
    // Re-pin under the lock: arm_store may have armed the tier since
    // the probe, and a peer's degradation may have dropped it.  The
    // shared_ptr keeps the store alive through the put even if a peer
    // degrades (store_.reset()) while we are inside it.
    store = store_;
  }
  if (store) {
    try {
      store->put(key, result);
      store_bytes_->set(static_cast<double>(store->bytes_on_disk()));
    } catch (const std::exception& e) {
      // The result is already acknowledged in the memo tier; losing the
      // persistent copy demotes the store, never the caller's run.
      MutexLock lock(&mutex_);
      if (store_ == store) degrade_store_locked(e.what());
    }
  }
  owned->promise.set_value(result);
  if (info) info->source = RunSource::kExecuted;
  return result;
}

std::vector<io::RunResult> Executor::run_batch(
    std::span<const RunRequest> requests, std::vector<RunInfo>* infos) {
  return run_batch(requests, options_.threads, infos);
}

std::vector<io::RunResult> Executor::run_batch(
    std::span<const RunRequest> requests, unsigned threads,
    std::vector<RunInfo>* infos) {
  std::vector<io::RunResult> results(requests.size());
  std::vector<RunInfo> local_infos(requests.size());

  // Collapse duplicate keys before dispatch: the first index holding a
  // key becomes its representative; the rest share its result below.
  // Traced / cache-disabled requests are never collapsed (each tap must
  // actually run).
  std::vector<std::size_t> unique;
  unique.reserve(requests.size());
  std::unordered_map<RunKey, std::size_t, RunKeyHash> representative;
  std::vector<std::size_t> duplicate_of(requests.size(), SIZE_MAX);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (!options_.cache || requests[i].options.tracer != nullptr) {
      unique.push_back(i);
      continue;
    }
    const RunKey key = run_key(requests[i].workload, requests[i].config,
                               requests[i].options);
    local_infos[i].key = key;
    const auto [it, inserted] = representative.emplace(key, i);
    if (inserted) {
      unique.push_back(i);
    } else {
      duplicate_of[i] = it->second;
    }
  }
  const std::size_t collapsed = requests.size() - unique.size();
  if (collapsed > 0) dedup_collapsed_->add(static_cast<double>(collapsed));

  parallel_for(
      unique.size(),
      [&](std::size_t j) {
        const std::size_t i = unique[j];
        results[i] = run(requests[i], &local_infos[i]);
      },
      threads);

  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (duplicate_of[i] == SIZE_MAX) continue;
    results[i] = results[duplicate_of[i]];
    local_infos[i].source = RunSource::kDeduped;
  }
  if (infos) *infos = std::move(local_infos);
  return results;
}

}  // namespace acic::exec
