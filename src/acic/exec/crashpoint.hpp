// Deterministic crash injection for durability testing.
//
// A crashpoint is a named write site in a persistence path (e.g. the
// run store's append, its compaction rename) where the process can be
// made to die abruptly — `_exit(2)`, no unwinding, no flushing, the
// closest user-space stand-in for `kill -9` — at a chosen occurrence
// count.  The crash-torture test arms a crashpoint, forks a writer,
// lets it die mid-write, and asserts that reopening the store recovers
// every acknowledged record.
//
// Arming, two ways:
//  * programmatically: `Crashpoints::arm("store.append", 3, kTornWrite)`
//    — used by fork-based in-process torture tests;
//  * by environment: `ACIC_CRASHPOINT=store.append:3[:before|torn|after]`
//    — read once per process (`arm_from_env`, called when the first
//    RunStore opens), for driving whole binaries from CI.
//
// The mode shapes what the Nth hit leaves on disk:
//  * kBeforeWrite — die before any bytes reach the file (clean loss of
//    the unacknowledged record);
//  * kTornWrite   — the caller writes a prefix of the record, then
//    dies (a torn tail, which recovery must truncate);
//  * kAfterWrite  — the caller writes the full record, then dies (a
//    complete but never-acknowledged record; recovery may keep it).
//
// In a normal process nothing is armed and `on_write()` is one relaxed
// atomic load — negligible even if it were on a hot path (it is not:
// store writes happen once per multi-second simulation).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

namespace acic::exec {

enum class CrashMode {
  kBeforeWrite,
  kTornWrite,
  kAfterWrite,
};

class Crashpoints {
 public:
  /// Arm `site` to crash on its `nth` (1-based) hit.  nth == 0 disarms.
  /// One site may be armed at a time — torture tests iterate.
  static void arm(std::string site, std::size_t nth,
                  CrashMode mode = CrashMode::kBeforeWrite);
  static void disarm();

  /// Parse ACIC_CRASHPOINT ("site:N" or "site:N:before|torn|after") and
  /// arm accordingly.  Unset or unparsable is a no-op.
  static void arm_from_env();

  /// Per-write check, called exactly once per record written at `site`.
  /// Counts the hit; on the armed Nth hit returns the crash mode for
  /// the caller to apply (kBeforeWrite: die() immediately; kTornWrite:
  /// write a prefix, then die(); kAfterWrite: write fully, then die()).
  /// Unarmed or non-matching sites return nullopt.
  static std::optional<CrashMode> on_write(std::string_view site);

  /// Immediate abrupt process exit — no unwinding, no stream flushing,
  /// no atexit.  What `kill -9` leaves behind, minus the signal.
  [[noreturn]] static void die();
};

}  // namespace acic::exec
