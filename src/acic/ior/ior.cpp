#include "acic/ior/ior.hpp"

#include "acic/common/error.hpp"
#include "acic/exec/executor.hpp"

namespace acic::ior {

io::Workload IorBench::default_workload() {
  io::Workload w;
  w.name = "IOR";
  w.num_processes = 32;
  w.num_io_processes = 32;
  w.interface = io::IoInterface::kMpiIo;
  w.iterations = 1;
  w.data_size = 16.0 * MiB;
  w.request_size = 4.0 * MiB;
  w.op = io::OpMix::kWrite;
  w.collective = false;
  w.file_shared = true;
  return w;
}

IorBench& IorBench::api(const std::string& name) {
  if (name == "POSIX") {
    w_.interface = io::IoInterface::kPosix;
  } else if (name == "MPIIO" || name == "MPI-IO") {
    w_.interface = io::IoInterface::kMpiIo;
  } else if (name == "HDF5") {
    w_.interface = io::IoInterface::kHdf5;
  } else if (name == "NCMPI" || name == "netCDF") {
    w_.interface = io::IoInterface::kNetcdf;
  } else {
    throw Error("IOR: unknown API " + name);
  }
  return *this;
}

IorBench& IorBench::tasks(int n) {
  w_.num_processes = n;
  return *this;
}

IorBench& IorBench::io_tasks(int n) {
  w_.num_io_processes = n;
  return *this;
}

IorBench& IorBench::block_size(Bytes b) {
  w_.data_size = b;
  return *this;
}

IorBench& IorBench::transfer_size(Bytes b) {
  w_.request_size = b;
  return *this;
}

IorBench& IorBench::segments(int n) {
  w_.iterations = n;
  return *this;
}

IorBench& IorBench::collective(bool on) {
  w_.collective = on;
  return *this;
}

IorBench& IorBench::file_per_process(bool on) {
  w_.file_shared = !on;
  return *this;
}

IorBench& IorBench::write_only() {
  w_.op = io::OpMix::kWrite;
  return *this;
}

IorBench& IorBench::read_only() {
  w_.op = io::OpMix::kRead;
  return *this;
}

IorBench& IorBench::read_and_write() {
  w_.op = io::OpMix::kReadWrite;
  return *this;
}

io::Workload IorBench::build() const {
  io::Workload w = w_;
  w.normalize();
  ACIC_CHECK_MSG(w.valid(), "invalid IOR parameter combination");
  return w;
}

io::RunResult run_ior(const io::Workload& workload,
                      const cloud::IoConfig& config,
                      const io::RunOptions& options,
                      exec::Executor* executor, exec::RunInfo* info) {
  io::Workload w = workload;
  // IOR is a pure I/O benchmark: no application compute/comm phases.
  w.compute_per_iteration = 0.0;
  w.comm_per_iteration = 0.0;
  // Training fidelity/cost tradeoff: with no compute between segments,
  // back-to-back segments are statistically interchangeable — collapse
  // beyond kMaxSimulatedSegments into proportionally larger segments
  // (per-call overheads are preserved by the middleware's op weights).
  constexpr int kMaxSimulatedSegments = 10;
  if (w.iterations > kMaxSimulatedSegments) {
    const double scale = static_cast<double>(w.iterations) /
                         static_cast<double>(kMaxSimulatedSegments);
    w.data_size *= scale;
    w.iterations = kMaxSimulatedSegments;
  }
  exec::Executor& engine = executor ? *executor : exec::Executor::global();
  return engine.run(exec::RunRequest{std::move(w), config, options}, info);
}

}  // namespace acic::ior
