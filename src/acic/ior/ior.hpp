// IOR-equivalent synthetic parallel I/O benchmark.
//
// ACIC's reusable training runs a generic synthetic benchmark instead of
// real applications so that one training database serves every future
// query.  This module mirrors the IOR command-line surface (LLNL's
// parameterized synthetic benchmark the paper trains with): block size,
// transfer size, segment count, API, collective mode, file-per-process,
// read/write selection and task counts, and executes the resulting
// workload on a candidate cloud I/O configuration.
#pragma once

#include "acic/cloud/ioconfig.hpp"
#include "acic/io/runner.hpp"
#include "acic/io/workload.hpp"

namespace acic::exec {
class Executor;
struct RunInfo;
}  // namespace acic::exec

namespace acic::ior {

/// Fluent builder mirroring IOR's option names:
///   IorBench().api("MPIIO").tasks(64).block_size(16 * MiB)
///             .transfer_size(4 * MiB).segments(10).collective(true)
///             .write_only().build()
class IorBench {
 public:
  /// -a: POSIX | MPIIO | HDF5 | NCMPI
  IorBench& api(const std::string& name);
  /// -N: number of MPI tasks.
  IorBench& tasks(int n);
  /// Number of tasks that perform I/O (ACIC's "I/O processes" knob; IOR
  /// itself uses task subsetting for this).
  IorBench& io_tasks(int n);
  /// -b: per-task data volume per segment.
  IorBench& block_size(Bytes b);
  /// -t: bytes per I/O call.
  IorBench& transfer_size(Bytes b);
  /// -s: segment count (ACIC's iteration count).
  IorBench& segments(int n);
  /// -c: collective I/O.
  IorBench& collective(bool on);
  /// -F: file per process (off = single shared file).
  IorBench& file_per_process(bool on);
  IorBench& write_only();
  IorBench& read_only();
  IorBench& read_and_write();

  /// Materialise the workload (throws on invalid combinations).
  io::Workload build() const;

 private:
  io::Workload w_ = default_workload();
  static io::Workload default_workload();
};

/// Execute one IOR run on a candidate configuration (the training
/// primitive: one (config, characteristics) -> (time, cost) sample).
///
/// Runs route through the execution engine: `executor` when given,
/// otherwise the process-wide exec::Executor::global() — identical runs
/// across training sweeps, PB screening and walker probes therefore
/// share one simulation (and its cached result).
io::RunResult run_ior(const io::Workload& workload,
                      const cloud::IoConfig& config,
                      const io::RunOptions& options = {},
                      exec::Executor* executor = nullptr,
                      exec::RunInfo* info = nullptr);

}  // namespace acic::ior
