#include "acic/core/ranking.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "acic/common/mutex.hpp"
#include "acic/common/parallel.hpp"
#include "acic/ior/ior.hpp"

namespace acic::core {

PbRankingResult run_pb_ranking(const PbRankingOptions& options) {
  PbRankingResult result;
  const int runs = PbDesign::runs_for(kNumDims);  // 16 for N = 15
  result.design = PbDesign::foldover(runs);       // 32 rows

  // Row -> concrete exploration-space point: +1 takes the dimension's
  // high end, -1 its low end; the validity repair mirrors what the paper
  // had to do for combinations like "NFS with 4 servers".
  std::vector<Point> points;
  points.reserve(result.design.size());
  for (const auto& row : result.design) {
    Point p{};
    for (int d = 0; d < kNumDims; ++d) {
      const Dim dim = static_cast<Dim>(d);
      p[d] = row[static_cast<std::size_t>(d)] > 0 ? ParamSpace::high(dim)
                                                  : ParamSpace::low(dim);
    }
    points.push_back(ParamSpace::repaired(p));
  }

  result.response.assign(points.size(), 0.0);
  Mutex stats_mutex;
  parallel_for(
      points.size(),
      [&](std::size_t i) {
        io::RunOptions opts;
        opts.seed = options.seed ^ (0x9b97f4a7ULL + i);
        opts.jitter_sigma = options.jitter_sigma;
        const auto r = ior::run_ior(ParamSpace::workload_of(points[i]),
                                    ParamSpace::config_of(points[i]), opts);
        result.response[i] = options.objective == Objective::kPerformance
                                 ? r.total_time
                                 : r.cost;
        MutexLock lock(&stats_mutex);
        ++result.stats.runs;
        result.stats.simulated_hours += r.total_time / kHour;
        result.stats.money += r.cost;
      },
      options.threads);

  std::vector<double> screening = result.response;
  if (options.log_response) {
    for (double& r : screening) r = std::log(std::max(r, 1e-9));
  }
  result.effects = PbDesign::effects(result.design, screening, kNumDims);
  result.importance = PbDesign::ranking(result.effects);
  result.rank_of_each = PbDesign::rank_of_each(result.effects);
  return result;
}

std::vector<DimensionSpread> model_dimension_spread(
    const Acic& model, const io::Workload& traits,
    const std::vector<cloud::IoConfig>& candidates) {
  ACIC_CHECK(!candidates.empty());
  // One contiguous pass over every candidate; the per-dimension grouping
  // below then only shuffles 56 precomputed scores around.
  const std::vector<double> scores = model.predict_batch(candidates, traits);
  std::vector<Point> points;
  points.reserve(candidates.size());
  for (const auto& c : candidates) {
    points.push_back(ParamSpace::encode(c, traits));
  }

  std::vector<DimensionSpread> spreads;
  for (const auto& spec : ParamSpace::dimensions()) {
    if (!spec.is_system) continue;
    // Mean predicted improvement per value this dimension actually takes
    // across the (validity-filtered) candidate set.
    std::map<double, std::pair<double, std::size_t>> by_value;
    for (std::size_t i = 0; i < points.size(); ++i) {
      auto& [sum, count] = by_value[points[i][spec.dim]];
      sum += scores[i];
      ++count;
    }
    DimensionSpread s;
    s.dim = spec.dim;
    s.name = spec.name;
    if (by_value.size() >= 2) {
      double lo = std::numeric_limits<double>::infinity();
      double hi = -std::numeric_limits<double>::infinity();
      for (const auto& [value, acc] : by_value) {
        const double mean = acc.first / static_cast<double>(acc.second);
        lo = std::min(lo, mean);
        hi = std::max(hi, mean);
      }
      s.spread = hi - lo;
    }
    spreads.push_back(std::move(s));
  }
  std::stable_sort(spreads.begin(), spreads.end(),
                   [](const DimensionSpread& a, const DimensionSpread& b) {
                     return a.spread > b.spread;
                   });
  return spreads;
}

}  // namespace acic::core
