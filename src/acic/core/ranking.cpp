#include "acic/core/ranking.hpp"

#include <algorithm>
#include <cmath>

#include "acic/common/mutex.hpp"
#include "acic/common/parallel.hpp"
#include "acic/ior/ior.hpp"

namespace acic::core {

PbRankingResult run_pb_ranking(const PbRankingOptions& options) {
  PbRankingResult result;
  const int runs = PbDesign::runs_for(kNumDims);  // 16 for N = 15
  result.design = PbDesign::foldover(runs);       // 32 rows

  // Row -> concrete exploration-space point: +1 takes the dimension's
  // high end, -1 its low end; the validity repair mirrors what the paper
  // had to do for combinations like "NFS with 4 servers".
  std::vector<Point> points;
  points.reserve(result.design.size());
  for (const auto& row : result.design) {
    Point p{};
    for (int d = 0; d < kNumDims; ++d) {
      const Dim dim = static_cast<Dim>(d);
      p[d] = row[static_cast<std::size_t>(d)] > 0 ? ParamSpace::high(dim)
                                                  : ParamSpace::low(dim);
    }
    points.push_back(ParamSpace::repaired(p));
  }

  result.response.assign(points.size(), 0.0);
  Mutex stats_mutex;
  parallel_for(
      points.size(),
      [&](std::size_t i) {
        io::RunOptions opts;
        opts.seed = options.seed ^ (0x9b97f4a7ULL + i);
        opts.jitter_sigma = options.jitter_sigma;
        const auto r = ior::run_ior(ParamSpace::workload_of(points[i]),
                                    ParamSpace::config_of(points[i]), opts);
        result.response[i] = options.objective == Objective::kPerformance
                                 ? r.total_time
                                 : r.cost;
        MutexLock lock(&stats_mutex);
        ++result.stats.runs;
        result.stats.simulated_hours += r.total_time / kHour;
        result.stats.money += r.cost;
      },
      options.threads);

  std::vector<double> screening = result.response;
  if (options.log_response) {
    for (double& r : screening) r = std::log(std::max(r, 1e-9));
  }
  result.effects = PbDesign::effects(result.design, screening, kNumDims);
  result.importance = PbDesign::ranking(result.effects);
  result.rank_of_each = PbDesign::rank_of_each(result.effects);
  return result;
}

}  // namespace acic::core
