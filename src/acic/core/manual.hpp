// Rule-based stand-ins for the paper's user-study participants (§6): an
// experienced application *user* and a core *developer* manually choose
// I/O configurations from the same information ACIC gets.  The rules
// encode the kind of common knowledge the study reports ("ephemeral is
// fast", "part-time saves money", "PVFS2 scales") — individually sound,
// but blind to parameter interplay, which is exactly why ACIC beats them.
#pragma once

#include <vector>

#include "acic/cloud/ioconfig.hpp"
#include "acic/core/training.hpp"
#include "acic/io/workload.hpp"

namespace acic::core {

/// The skilled application user's single pick.
cloud::IoConfig user_choice(const io::Workload& traits, Objective objective);

/// The user's top-3 candidates (first = user_choice).
std::vector<cloud::IoConfig> user_top3(const io::Workload& traits,
                                       Objective objective);

/// The core developer's single pick (more pattern-aware).
cloud::IoConfig developer_choice(const io::Workload& traits,
                                 Objective objective);

/// The developer's top-3 candidates (first = developer_choice).
std::vector<cloud::IoConfig> developer_top3(const io::Workload& traits,
                                            Objective objective);

}  // namespace acic::core
