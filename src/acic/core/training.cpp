#include "acic/core/training.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>

#include "acic/common/error.hpp"
#include "acic/common/mutex.hpp"
#include "acic/common/parallel.hpp"
#include "acic/common/rng.hpp"
#include "acic/common/stats.hpp"
#include "acic/ior/ior.hpp"
#include "acic/obs/metrics.hpp"

namespace acic::core {

const char* to_string(Objective o) {
  return o == Objective::kPerformance ? "performance" : "cost";
}

void TrainingDatabase::insert(TrainingSample sample) {
  // Reject corrupt measurements at the door: a zero or negative time/cost
  // (e.g. a mangled CSV row) would yield an inf/negative improvement
  // label and silently poison every model trained from the database.
  ACIC_CHECK_MSG(std::isfinite(sample.time) && sample.time > 0.0 &&
                     std::isfinite(sample.cost) && sample.cost > 0.0,
                 "training sample has non-positive measurement: time="
                     << sample.time << " cost=" << sample.cost);
  ACIC_CHECK_MSG(std::isfinite(sample.baseline_time) &&
                     sample.baseline_time > 0.0 &&
                     std::isfinite(sample.baseline_cost) &&
                     sample.baseline_cost > 0.0,
                 "training sample has non-positive baseline: baseline_time="
                     << sample.baseline_time
                     << " baseline_cost=" << sample.baseline_cost);
  sample.sequence = next_sequence_++;
  samples_.push_back(sample);
}

void TrainingDatabase::age_out(std::size_t keep_latest) {
  if (samples_.size() <= keep_latest) return;
  samples_.erase(samples_.begin(),
                 samples_.end() - static_cast<std::ptrdiff_t>(keep_latest));
}

ml::Dataset TrainingDatabase::to_dataset(Objective objective) const {
  ml::Dataset data;
  data.x.reserve(samples_.size());
  data.y.reserve(samples_.size());
  for (const auto& s : samples_) {
    data.add(std::vector<double>(s.point.begin(), s.point.end()),
             s.improvement(objective));
  }
  return data;
}

CsvTable TrainingDatabase::to_csv() const {
  CsvTable t;
  for (const auto& d : ParamSpace::dimensions()) {
    std::string name = d.name;
    std::replace(name.begin(), name.end(), ' ', '_');
    t.header.push_back(name);
  }
  t.header.insert(t.header.end(),
                  {"time", "cost", "baseline_time", "baseline_cost",
                   "sequence", "repeats", "rejected", "retries"});
  for (const auto& s : samples_) {
    std::vector<std::string> row;
    char buf[64];
    for (double v : s.point) {
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      row.emplace_back(buf);
    }
    for (double v : {s.time, s.cost, s.baseline_time, s.baseline_cost}) {
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      row.emplace_back(buf);
    }
    row.push_back(std::to_string(s.sequence));
    row.push_back(std::to_string(s.repeats));
    row.push_back(std::to_string(s.rejected));
    row.push_back(std::to_string(s.retries));
    t.rows.push_back(std::move(row));
  }
  return t;
}

TrainingDatabase TrainingDatabase::from_csv(const CsvTable& table) {
  TrainingDatabase db;
  // Two accepted arities: the legacy layout (measurements only) and the
  // provenance layout with repeats/rejected/retries appended.  Legacy
  // databases keep loading unchanged; their provenance defaults to one
  // clean single-shot measurement per row.
  const bool provenance = table.header.size() ==
                          static_cast<std::size_t>(kNumDims) + 8;
  ACIC_CHECK_MSG(provenance || table.header.size() ==
                                   static_cast<std::size_t>(kNumDims) + 5,
                 "unexpected training CSV header arity");
  std::size_t row_number = 0;
  for (const auto& row : table.rows) {
    ++row_number;
    TrainingSample s;
    try {
      for (int d = 0; d < kNumDims; ++d) {
        s.point[static_cast<std::size_t>(d)] =
            std::stod(row[static_cast<std::size_t>(d)]);
      }
      s.time = std::stod(row[kNumDims + 0]);
      s.cost = std::stod(row[kNumDims + 1]);
      s.baseline_time = std::stod(row[kNumDims + 2]);
      s.baseline_cost = std::stod(row[kNumDims + 3]);
      if (provenance) {
        s.repeats = std::stoi(row[kNumDims + 5]);
        s.rejected = std::stoi(row[kNumDims + 6]);
        s.retries = std::stoi(row[kNumDims + 7]);
      }
    } catch (const std::logic_error&) {
      // std::stod's bare "stod" message names neither the row nor the
      // cell; rewrap so a corrupt shared database is diagnosable.
      throw Error("training CSV row " + std::to_string(row_number) +
                  " has a malformed numeric field");
    }
    db.insert(s);  // rejects non-positive measurements (see above)
  }
  return db;
}

void TrainingDatabase::save(const std::string& path) const {
  write_csv_file(path, to_csv());
}

TrainingDatabase TrainingDatabase::load(const std::string& path) {
  return from_csv(read_csv_file(path));
}

Point default_point() {
  Point p{};
  p[kDevice] = 0;        // EBS
  p[kFileSystem] = 0;    // NFS
  p[kInstanceType] = 1;  // cc2.8xlarge
  p[kIoServers] = 1;
  p[kPlacement] = 1;  // dedicated
  p[kStripeSize] = 0;
  p[kNumProcs] = 64;
  p[kNumIoProcs] = 64;
  p[kInterface] = 1;  // MPI-IO
  p[kIterations] = 10;
  p[kDataSize] = 16.0 * MiB;
  p[kRequestSize] = 4.0 * MiB;
  p[kOpType] = 1;  // write
  p[kCollective] = 0;
  p[kFileSharing] = 1;
  return ParamSpace::repaired(p);
}

namespace {

/// Deterministic key for caching baseline runs per distinct workload.
std::string workload_key(const Point& p) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%g|%g|%g|%g|%g|%g|%g|%g|%g",
                p[kNumProcs], p[kNumIoProcs], p[kInterface], p[kIterations],
                p[kDataSize], p[kRequestSize], p[kOpType], p[kCollective],
                p[kFileSharing]);
  return buf;
}

std::string point_key(const Point& p) {
  std::string key;
  char buf[32];
  for (double v : p) {
    std::snprintf(buf, sizeof(buf), "%g|", v);
    key += buf;
  }
  return key;
}

/// One fault-tolerant measurement: up to `max_attempts` runs per repeat
/// (failed outcomes retried on a perturbed seed), MAD-based outlier
/// rejection across the surviving repeats, median of what is left.
struct Measurement {
  double time = 0.0;
  double cost = 0.0;
  int repeats = 0;   ///< successful repeats that produced the medians
  int rejected = 0;  ///< repeats dropped by the outlier cut
  int retries = 0;   ///< failed attempts that were retried
  bool ok = false;   ///< false = every repeat failed (quarantine)
};

Measurement measure_point(const io::Workload& workload,
                          const cloud::IoConfig& config,
                          std::uint64_t base_seed, const TrainingPlan& plan,
                          TrainingStats& stats, Mutex& stats_mutex) {
  const SweepResilience& res = plan.resilience;
  const int repeats = std::max(1, res.repeats);
  const int attempts = std::max(1, res.max_attempts);

  Measurement m;
  std::vector<double> times;
  std::vector<double> costs;
  times.reserve(static_cast<std::size_t>(repeats));
  costs.reserve(static_cast<std::size_t>(repeats));
  for (int k = 0; k < repeats; ++k) {
    for (int a = 0; a < attempts; ++a) {
      io::RunOptions opts;
      // Repeat 0 / attempt 0 reproduces the legacy single-shot seed
      // exactly (the XOR terms vanish), so default plans stay
      // bit-identical with pre-resilience sweeps.
      opts.seed = base_seed ^
                  (static_cast<std::uint64_t>(k) * 0x7f4a7c15ULL) ^
                  (static_cast<std::uint64_t>(a) * 0xc2b2ae35ULL);
      opts.jitter_sigma = plan.jitter_sigma;
      opts.fault_model = res.fault_model;
      opts.tuning.retry = res.retry;
      opts.watchdog_sim_time = res.watchdog_sim_time;
      const auto r = ior::run_ior(workload, config, opts, plan.executor);
      const bool failed = r.outcome == io::RunOutcome::kFailed;
      const bool will_retry = failed && a + 1 < attempts;
      {
        MutexLock lock(&stats_mutex);
        ++stats.runs;
        stats.simulated_hours += r.total_time / kHour;
        stats.money += r.cost;
        if (failed) ++stats.failed_runs;
        if (will_retry) ++stats.retried_runs;
      }
      if (!failed) {
        times.push_back(r.total_time);
        costs.push_back(r.cost);
        break;
      }
      if (will_retry) ++m.retries;
    }
  }
  if (times.empty()) return m;  // ok stays false: quarantine

  const auto filter = reject_outliers(times, res.outlier_mad_threshold);
  std::vector<double> kept_times;
  std::vector<double> kept_costs;
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (!filter.keep[i]) continue;
    kept_times.push_back(times[i]);
    kept_costs.push_back(costs[i]);
  }
  m.time = median_of(kept_times);
  m.cost = median_of(kept_costs);
  m.repeats = static_cast<int>(kept_times.size());
  m.rejected = static_cast<int>(filter.rejected);
  m.ok = true;
  if (filter.rejected > 0) {
    MutexLock lock(&stats_mutex);
    stats.rejected_outliers += filter.rejected;
  }
  return m;
}

}  // namespace

TrainingStats collect_training_data(TrainingDatabase& db,
                                    const TrainingPlan& plan) {
  ACIC_CHECK(plan.top_dims >= 1 &&
             plan.top_dims <= static_cast<int>(plan.dim_order.size()));

  const std::vector<int> explored = explored_dims(
      plan.dim_order, plan.top_dims, plan.always_explore_system_dims);

  // Enumerate (or sub-sample) the cartesian product of explored dims.
  const auto* overrides =
      plan.value_overrides.entries.empty() ? nullptr : &plan.value_overrides;
  std::vector<std::size_t> radix;
  double product = 1.0;
  for (int d : explored) {
    const auto& values =
        ParamSpace::values_of(static_cast<Dim>(d), overrides);
    radix.push_back(values.size());
    product *= static_cast<double>(values.size());
  }

  Rng rng(plan.seed);
  std::set<std::string> seen;
  std::vector<Point> points;
  auto add_combo = [&](double combo_index) {
    Point p = default_point();
    double idx = combo_index;
    for (std::size_t i = 0; i < explored.size(); ++i) {
      const auto& values =
          ParamSpace::values_of(static_cast<Dim>(explored[i]), overrides);
      const std::size_t v =
          static_cast<std::size_t>(std::fmod(idx, radix[i]));
      idx = std::floor(idx / static_cast<double>(radix[i]));
      p[explored[i]] = values[v];
    }
    p = ParamSpace::repaired(p, overrides);
    if (seen.insert(point_key(p)).second) points.push_back(p);
  };

  if (product <= static_cast<double>(plan.max_samples)) {
    for (double c = 0; c < product; c += 1.0) add_combo(c);
  } else {
    // Uniform sub-sampling of the product (the paper's sparse-sampling
    // bootstrap); repair-dedup may return slightly fewer points.
    std::size_t attempts = 0;
    const std::size_t max_attempts = plan.max_samples * 40;
    while (points.size() < plan.max_samples && attempts++ < max_attempts) {
      add_combo(std::floor(rng.uniform() * product));
    }
  }

  // Baseline runs: one per distinct workload half.
  std::map<std::string, std::pair<double, double>> baselines;
  std::vector<Point> baseline_points;
  for (const auto& p : points) {
    const auto key = workload_key(p);
    if (!baselines.count(key)) {
      baselines[key] = {0.0, 0.0};
      baseline_points.push_back(p);
    }
  }

  TrainingStats stats;
  Mutex stats_mutex;
  const auto baseline_cfg = cloud::IoConfig::baseline();

  const auto quarantine = [&](const Point& p) {
    MutexLock lock(&stats_mutex);
    ++stats.quarantined;
    stats.quarantined_labels.push_back(ParamSpace::config_of(p).label() +
                                       "|" + workload_key(p));
  };

  parallel_for(
      baseline_points.size(),
      [&](std::size_t i) {
        const Point& p = baseline_points[i];
        const auto m =
            measure_point(ParamSpace::workload_of(p), baseline_cfg,
                          plan.seed ^ 0xb5e11eULL ^ i, plan, stats,
                          stats_mutex);
        if (!m.ok) {
          // An unmeasurable baseline poisons every point that shares the
          // workload: leave the (0, 0) placeholder and quarantine them
          // below rather than divide by a failed measurement.
          return;
        }
        MutexLock lock(&stats_mutex);
        baselines[workload_key(p)] = {m.time, m.cost};
      },
      plan.threads);

  std::vector<TrainingSample> collected(points.size());
  parallel_for(
      points.size(),
      [&](std::size_t i) {
        const Point& p = points[i];
        const auto m = measure_point(
            ParamSpace::workload_of(p), ParamSpace::config_of(p),
            plan.seed ^ (i * 0x9e3779b9ULL + 17), plan, stats, stats_mutex);
        if (!m.ok) {
          quarantine(p);
          return;  // collected[i].time stays 0: skipped at insert below
        }
        TrainingSample s;
        s.point = p;
        s.time = m.time;
        s.cost = m.cost;
        s.repeats = m.repeats;
        s.rejected = m.rejected;
        s.retries = m.retries;
        collected[i] = s;
      },
      plan.threads);

  std::size_t inserted = 0;
  for (auto& s : collected) {
    if (s.time <= 0.0) continue;  // quarantined point
    const auto& base = baselines.at(workload_key(s.point));
    if (base.first <= 0.0) {
      // Baseline itself was quarantined; the relative label is undefined.
      quarantine(s.point);
      continue;
    }
    s.baseline_time = base.first;
    s.baseline_cost = base.second;
    db.insert(s);
    ++inserted;
  }

  auto& registry = obs::MetricsRegistry::global();
  registry.counter("training.sweeps").inc();
  registry.counter("training.runs").add(static_cast<double>(stats.runs));
  registry.counter("training.simulated_hours").add(stats.simulated_hours);
  registry.counter("training.samples").add(static_cast<double>(inserted));
  if (stats.retried_runs > 0) {
    registry.counter("training.retried_runs")
        .add(static_cast<double>(stats.retried_runs));
  }
  if (stats.failed_runs > 0) {
    registry.counter("training.failed_runs")
        .add(static_cast<double>(stats.failed_runs));
  }
  if (stats.rejected_outliers > 0) {
    registry.counter("training.rejected_outliers")
        .add(static_cast<double>(stats.rejected_outliers));
  }
  if (stats.quarantined > 0) {
    registry.counter("training.quarantined")
        .add(static_cast<double>(stats.quarantined));
  }
  return stats;
}

std::vector<int> explored_dims(const std::vector<int>& dim_order,
                               int top_dims,
                               bool always_explore_system_dims) {
  ACIC_CHECK(top_dims >= 1 &&
             top_dims <= static_cast<int>(dim_order.size()));
  std::vector<int> explored;
  if (always_explore_system_dims) {
    for (const auto& d : ParamSpace::dimensions()) {
      if (d.is_system) explored.push_back(d.dim);
    }
    ACIC_CHECK_MSG(top_dims >= static_cast<int>(explored.size()),
                   "top_dims must cover at least the system dimensions");
    for (int d : dim_order) {
      if (static_cast<int>(explored.size()) >= top_dims) break;
      if (std::find(explored.begin(), explored.end(), d) == explored.end()) {
        explored.push_back(d);
      }
    }
  } else {
    explored.assign(dim_order.begin(), dim_order.begin() + top_dims);
  }
  return explored;
}

double enumeration_size(const std::vector<int>& dim_order, int top_dims) {
  double n = 1.0;
  for (int d : explored_dims(dim_order, top_dims)) {
    n *= static_cast<double>(
        ParamSpace::dimension(static_cast<Dim>(d)).values.size());
  }
  return n;
}

Money full_training_cost(const std::vector<int>& dim_order, int top_dims,
                         Money avg_run_cost) {
  return enumeration_size(dim_order, top_dims) * avg_run_cost;
}

}  // namespace acic::core
