// The paper's §4.1 screening experiment: a foldover PB design over all 15
// dimensions (N = 15, N' = 16, 32 IOR runs) that produces the importance
// ranking in Table 1's rightmost column.  The ranking then drives both
// incremental training (explore important dimensions first) and
// PB-guided space walking.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "acic/cloud/ioconfig.hpp"
#include "acic/core/pbdesign.hpp"
#include "acic/core/predictor.hpp"
#include "acic/core/training.hpp"
#include "acic/io/workload.hpp"

namespace acic::core {

struct PbRankingResult {
  PbMatrix design;                ///< the 32 foldover rows actually run
  std::vector<double> response;   ///< measured objective per run
  std::vector<double> effects;    ///< per-dimension PB effects
  std::vector<int> importance;    ///< dimension indices, most important first
  std::vector<int> rank_of_each;  ///< 1-based rank per dimension
  TrainingStats stats;            ///< what the 32 runs cost
};

struct PbRankingOptions {
  Objective objective = Objective::kPerformance;
  std::uint64_t seed = 1;
  double jitter_sigma = 0.06;
  unsigned threads = 0;
  /// Compute effects on log(response).  The PB rows span three orders of
  /// magnitude in I/O volume, so raw-scale effects are dominated by the
  /// volume dimensions; the log transform measures multiplicative impact
  /// and lets configuration dimensions register.
  bool log_response = true;
};

/// Execute the 32-run foldover screening with IOR on the simulated cloud
/// and rank all 15 dimensions.
PbRankingResult run_pb_ranking(const PbRankingOptions& options = {});

/// Model-side importance of one system dimension for a specific
/// application: the spread (max minus min) of the mean predicted
/// improvement across the dimension's candidate values.
struct DimensionSpread {
  Dim dim = kDevice;
  std::string name;
  double spread = 0.0;
};

/// Complement to the PB screening: instead of 32 fresh simulations, one
/// batch prediction over every candidate configuration (a single
/// flat-tree pass) measures how much the *trained model* thinks each
/// system dimension matters for this application.  Sorted most important
/// first; free once a model exists, and workload-specific where the PB
/// ranking is global.
std::vector<DimensionSpread> model_dimension_spread(
    const Acic& model, const io::Workload& traits,
    const std::vector<cloud::IoConfig>& candidates =
        cloud::IoConfig::enumerate_candidates());

}  // namespace acic::core
