#include "acic/core/paramspace.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "acic/common/error.hpp"
#include "acic/plugin/substrates.hpp"

namespace acic::core {

namespace {

double nearest(const std::vector<double>& values, double x) {
  double best = values.front();
  for (double v : values) {
    if (std::abs(v - x) < std::abs(best - x)) best = v;
  }
  return best;
}

// Sorted union of one declared knob's values across the default-grid
// filesystem plugins.  For the seed substrates this reproduces the old
// hard-wired grids: io_servers {1,2,4}, stripe_size {64 KiB, 4 MiB}.
std::vector<double> grid_knob_values(const char* knob_name) {
  std::vector<double> out;
  for (const auto* fs : plugin::default_grid_filesystems()) {
    if (const auto* knob = fs->schema.find(knob_name)) {
      out.insert(out.end(), knob->values.begin(), knob->values.end());
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<double> grid_filesystem_levels() {
  std::vector<double> out;
  for (const auto* fs : plugin::default_grid_filesystems()) {
    out.push_back(fs->point_id);
  }
  return out;  // already point_id-sorted
}

}  // namespace

const std::vector<DimensionSpec>& ParamSpace::dimensions() {
  // The system-side grids come from the plugin registry; fail loudly if
  // someone asks before static init has registered the substrates
  // (rather than caching an empty grid forever).
  ACIC_CHECK_MSG(!plugin::default_grid_filesystems().empty(),
                 "ParamSpace::dimensions() called before filesystem "
                 "plugins registered");
  static const std::vector<DimensionSpec> kDims = {
      {kDevice, "Disk device", {0, 1}, true},
      {kFileSystem, "File system", grid_filesystem_levels(), true},
      {kInstanceType, "Instance type", {0, 1}, true},
      {kIoServers, "I/O server number", grid_knob_values("io_servers"), true},
      {kPlacement, "Placement", {0, 1}, true},
      {kStripeSize, "Stripe size", grid_knob_values("stripe_size"), true},
      {kNumProcs, "Num. of all processes", {32, 64, 128, 256}, false},
      {kNumIoProcs, "Num. of I/O processes", {32, 64, 128, 256}, false},
      {kInterface, "I/O interface", {0, 1}, false},
      {kIterations, "I/O iteration count", {1, 10, 100}, false},
      {kDataSize,
       "Data size",
       {1.0 * MiB, 4.0 * MiB, 16.0 * MiB, 32.0 * MiB, 128.0 * MiB,
        512.0 * MiB},
       false},
      {kRequestSize,
       "Request size",
       {256.0 * KiB, 4.0 * MiB, 16.0 * MiB, 128.0 * MiB},
       false},
      // 0 = read, 1 = write, 0.5 = read+write in one run (IOR -w -r).
      // The paper's Table 1 lists {read, write}; we also sample the mix
      // because two of the four evaluation applications are read+write.
      {kOpType, "Read and/or write", {0, 0.5, 1}, false},
      {kCollective, "Collective", {0, 1}, false},
      {kFileSharing, "File sharing", {0, 1}, false},
  };
  return kDims;
}

const DimensionSpec& ParamSpace::dimension(Dim d) {
  const auto& dims = dimensions();
  ACIC_CHECK(d >= 0 && d < kNumDims);
  ACIC_CHECK(dims[static_cast<std::size_t>(d)].dim == d);
  return dims[static_cast<std::size_t>(d)];
}

double ParamSpace::low(Dim d) { return dimension(d).values.front(); }
double ParamSpace::high(Dim d) { return dimension(d).values.back(); }

bool ParamSpace::valid(const Point& p) {
  const bool single =
      plugin::filesystem_for_level(p[kFileSystem]).single_server;
  if (single && p[kIoServers] != 1) return false;
  if (single && p[kStripeSize] != 0.0) return false;
  if (!single && p[kStripeSize] <= 0.0) return false;
  if (p[kRequestSize] > p[kDataSize]) return false;
  if (p[kNumIoProcs] > p[kNumProcs]) return false;
  const bool posix = p[kInterface] < 0.5;
  if (posix && p[kCollective] > 0.5) return false;
  if (p[kCollective] > 0.5 && p[kFileSharing] < 0.5) return false;
  return true;
}

const std::vector<double>* ParamSpace::ValueOverrides::find(Dim d) const {
  for (const auto& [dim, values] : entries) {
    if (dim == d) return &values;
  }
  return nullptr;
}

const std::vector<double>& ParamSpace::values_of(
    Dim d, const ValueOverrides* overrides) {
  if (overrides) {
    if (const auto* v = overrides->find(d)) return *v;
  }
  return dimension(d).values;
}

Point ParamSpace::repaired(Point p, const ValueOverrides* overrides) {
  // Snap every dimension onto its sampled grid first.
  for (const auto& d : dimensions()) {
    p[d.dim] = nearest(values_of(d.dim, overrides), p[d.dim]);
  }
  if (plugin::filesystem_for_level(p[kFileSystem]).single_server) {
    p[kIoServers] = 1;
    p[kStripeSize] = 0.0;
  }
  p[kRequestSize] = std::min(p[kRequestSize], p[kDataSize]);
  p[kNumIoProcs] = std::min(p[kNumIoProcs], p[kNumProcs]);
  if (p[kInterface] < 0.5) p[kCollective] = 0;
  if (p[kFileSharing] < 0.5) p[kCollective] = 0;
  ACIC_CHECK(valid(p));
  return p;
}

cloud::IoConfig ParamSpace::config_of(const Point& p) {
  cloud::IoConfig c;
  // 0 = EBS, 1 = ephemeral, 2 = SSD (extension value; see ValueOverrides).
  c.device = p[kDevice] < 0.5
                 ? storage::DeviceType::kEbs
                 : (p[kDevice] < 1.5 ? storage::DeviceType::kEphemeral
                                     : storage::DeviceType::kSsd);
  // Level → substrate via nearest registered point_id (0 = NFS,
  // 1 = PVFS2, 2 = Lustre for the seeds; see ValueOverrides).
  c.fs = plugin::filesystem_for_level(p[kFileSystem]).type;
  c.instance = p[kInstanceType] < 0.5 ? cloud::InstanceType::kCc1_4xlarge
                                      : cloud::InstanceType::kCc2_8xlarge;
  c.io_servers = static_cast<int>(p[kIoServers] + 0.5);
  c.placement = p[kPlacement] < 0.5 ? cloud::Placement::kPartTime
                                    : cloud::Placement::kDedicated;
  c.stripe_size = p[kStripeSize];
  ACIC_CHECK_MSG(c.valid(), "point decodes to invalid config");
  return c;
}

io::Workload ParamSpace::workload_of(const Point& p) {
  io::Workload w;
  w.name = "IOR";
  w.num_processes = static_cast<int>(p[kNumProcs] + 0.5);
  w.num_io_processes = static_cast<int>(p[kNumIoProcs] + 0.5);
  w.interface = p[kInterface] < 0.5 ? io::IoInterface::kPosix
                                    : io::IoInterface::kMpiIo;
  w.iterations = static_cast<int>(p[kIterations] + 0.5);
  w.data_size = p[kDataSize];
  w.request_size = p[kRequestSize];
  if (p[kOpType] < 0.25) {
    w.op = io::OpMix::kRead;
  } else if (p[kOpType] > 0.75) {
    w.op = io::OpMix::kWrite;
  } else {
    w.op = io::OpMix::kReadWrite;
  }
  w.collective = p[kCollective] > 0.5;
  w.file_shared = p[kFileSharing] > 0.5;
  w.normalize();
  ACIC_CHECK_MSG(w.valid(), "point decodes to invalid workload");
  return w;
}

Point ParamSpace::encode(const cloud::IoConfig& config,
                         const io::Workload& workload) {
  Point p{};
  switch (config.device) {
    case storage::DeviceType::kEbs:
      p[kDevice] = 0;
      break;
    case storage::DeviceType::kEphemeral:
      p[kDevice] = 1;
      break;
    case storage::DeviceType::kSsd:
      p[kDevice] = 2;
      break;
  }
  const auto& substrate = plugin::filesystem_for(config.fs);
  p[kFileSystem] = substrate.point_id;
  p[kInstanceType] =
      config.instance == cloud::InstanceType::kCc1_4xlarge ? 0 : 1;
  p[kIoServers] = config.io_servers;
  p[kPlacement] = config.placement == cloud::Placement::kPartTime ? 0 : 1;
  p[kStripeSize] = substrate.single_server ? 0.0 : config.stripe_size;
  p[kNumProcs] = workload.num_processes;
  p[kNumIoProcs] = workload.num_io_processes;
  p[kInterface] = io::is_mpiio_family(workload.interface) ? 1 : 0;
  p[kIterations] = workload.iterations;
  p[kDataSize] = workload.data_size;
  p[kRequestSize] = workload.request_size;
  switch (workload.op) {
    case io::OpMix::kRead:
      p[kOpType] = 0.0;
      break;
    case io::OpMix::kWrite:
      p[kOpType] = 1.0;
      break;
    case io::OpMix::kReadWrite:
      p[kOpType] = 0.5;
      break;
  }
  p[kCollective] = workload.collective ? 1 : 0;
  p[kFileSharing] = workload.file_shared ? 1 : 0;
  return p;
}

double ParamSpace::raw_combinations() {
  double n = 1.0;
  for (const auto& d : dimensions()) {
    n *= static_cast<double>(d.values.size());
  }
  return n;
}

std::string ParamSpace::describe(const Point& p) {
  std::ostringstream os;
  os << config_of(p).label() << " | ";
  const auto w = workload_of(p);
  os << "np=" << w.num_processes << " io=" << w.num_io_processes << " "
     << io::to_string(w.interface) << " iters=" << w.iterations
     << " data=" << format_bytes(w.data_size)
     << " req=" << format_bytes(w.request_size) << " "
     << io::to_string(w.op) << (w.collective ? " coll" : "")
     << (w.file_shared ? " shared" : " indiv");
  return os.str();
}

}  // namespace acic::core
