#include "acic/core/pbdesign.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "acic/common/error.hpp"

namespace acic::core {

namespace {

/// First rows of the classic cyclic PB designs (Plackett & Burman 1946).
const std::vector<int>& generator(int runs) {
  static const std::vector<int> g8 = {+1, +1, +1, -1, +1, -1, -1};
  static const std::vector<int> g12 = {+1, +1, -1, +1, +1, +1,
                                       -1, -1, -1, +1, -1};
  static const std::vector<int> g16 = {+1, +1, +1, +1, -1, +1, -1, +1,
                                       +1, -1, -1, +1, -1, -1, -1};
  static const std::vector<int> g20 = {+1, +1, -1, -1, +1, +1, +1, +1, -1, +1,
                                       -1, +1, -1, -1, -1, -1, +1, +1, -1};
  static const std::vector<int> g24 = {+1, +1, +1, +1, +1, -1, +1, -1,
                                       +1, +1, -1, -1, +1, +1, -1, -1,
                                       +1, -1, +1, -1, -1, -1, -1};
  switch (runs) {
    case 8:
      return g8;
    case 12:
      return g12;
    case 16:
      return g16;
    case 20:
      return g20;
    case 24:
      return g24;
    default:
      throw Error("no PB generator for N' = " + std::to_string(runs));
  }
}

}  // namespace

PbMatrix PbDesign::matrix(int runs) {
  const auto& gen = generator(runs);
  const int cols = runs - 1;
  ACIC_CHECK(static_cast<int>(gen.size()) == cols);
  PbMatrix m;
  m.reserve(static_cast<std::size_t>(runs));
  // Rows 0..runs-2 are cyclic right-shifts of the generator.
  for (int r = 0; r < runs - 1; ++r) {
    std::vector<int> row(static_cast<std::size_t>(cols));
    for (int c = 0; c < cols; ++c) {
      row[static_cast<std::size_t>(c)] =
          gen[static_cast<std::size_t>(((c - r) % cols + cols) % cols)];
    }
    m.push_back(std::move(row));
  }
  // Final row: all low.
  m.emplace_back(static_cast<std::size_t>(cols), -1);
  return m;
}

int PbDesign::runs_for(int params) {
  ACIC_CHECK(params >= 1);
  int runs = ((params + 1) + 3) / 4 * 4;  // smallest multiple of 4 > params
  while (runs <= params) runs += 4;
  return runs;
}

PbMatrix PbDesign::foldover(int runs) {
  PbMatrix m = matrix(runs);
  const std::size_t base = m.size();
  for (std::size_t r = 0; r < base; ++r) {
    std::vector<int> neg = m[r];
    for (int& v : neg) v = -v;
    m.push_back(std::move(neg));
  }
  return m;
}

std::vector<double> PbDesign::effects(const PbMatrix& design,
                                      const std::vector<double>& response,
                                      int params) {
  ACIC_CHECK(!design.empty());
  ACIC_CHECK_MSG(design.size() == response.size(),
                 "response size " << response.size() << " != runs "
                                  << design.size());
  ACIC_CHECK(params >= 1 &&
             params <= static_cast<int>(design.front().size()));
  std::vector<double> eff(static_cast<std::size_t>(params), 0.0);
  for (std::size_t r = 0; r < design.size(); ++r) {
    for (int c = 0; c < params; ++c) {
      eff[static_cast<std::size_t>(c)] +=
          design[r][static_cast<std::size_t>(c)] * response[r];
    }
  }
  return eff;
}

std::vector<int> PbDesign::ranking(const std::vector<double>& effects) {
  std::vector<int> order(effects.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return std::abs(effects[static_cast<std::size_t>(a)]) >
           std::abs(effects[static_cast<std::size_t>(b)]);
  });
  return order;
}

std::vector<int> PbDesign::rank_of_each(const std::vector<double>& effects) {
  const auto order = ranking(effects);
  std::vector<int> rank(effects.size(), 0);
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    rank[static_cast<std::size_t>(order[pos])] = static_cast<int>(pos) + 1;
  }
  return rank;
}

}  // namespace acic::core
