// PB-guided space walking (§4.3) and the random-walk control (§5.5).
//
// When the training database is not yet populated, ACIC can still give a
// recommendation by greedily walking the *system* configuration
// dimensions in PB-rank order: for each dimension it probes every value
// (running short IOR tests shaped like the application) while holding the
// already-fixed dimensions and leaving the rest at the baseline, then
// fixes the best value and moves on.  Random walk does the same with a
// random dimension order — the paper's control showing PB guidance is
// what makes walking work.
#pragma once

#include <functional>
#include <vector>

#include "acic/cloud/ioconfig.hpp"
#include "acic/common/rng.hpp"
#include "acic/core/paramspace.hpp"
#include "acic/core/training.hpp"
#include "acic/io/runner.hpp"
#include "acic/io/workload.hpp"

namespace acic::exec {
class Executor;
}  // namespace acic::exec

namespace acic::core {

class Acic;

class SpaceWalker {
 public:
  /// Measures one candidate configuration; returns the objective value
  /// (lower is better: seconds or dollars).  In production this runs IOR
  /// on the cloud; benches pass a simulator probe.
  using Probe = std::function<double(const cloud::IoConfig&)>;

  /// Engine-backed probe: each measurement is an IOR run shaped like the
  /// application, routed through the execution engine.  Unlike the
  /// function Probe (whose cache is a per-walk label map), probes here
  /// are keyed by canonical exec::RunKey — identical probes dedupe
  /// *across* walks, and against training sweeps and service queries
  /// sharing the same executor.
  struct ExecProbe {
    io::Workload workload;   ///< probe shape (typically an IorBench build)
    io::RunOptions options;  ///< seed / jitter / faults for every probe
    Objective objective = Objective::kPerformance;
    exec::Executor* executor = nullptr;  ///< nullptr = Executor::global()
  };

  struct Result {
    cloud::IoConfig best = cloud::IoConfig::baseline();
    double best_measure = 0.0;
    int probes = 0;  ///< number of IOR test runs spent
  };

  /// The six system dimensions in Table 1 order.
  static std::vector<Dim> system_dims();

  /// Restrict a full 15-dimension PB ranking (parameter indices, most
  /// important first) to the system dimensions.
  static std::vector<Dim> system_dims_ranked(
      const std::vector<int>& full_ranking);

  /// Greedy dimension-by-dimension walk from the baseline, probing every
  /// value of each dimension in `order`.  Probes are cached per config.
  /// This is the paper's single-pass §4.3 procedure.
  static Result walk(const Probe& probe, const std::vector<Dim>& order);

  /// Extension: iterate the greedy pass until a full sweep makes no
  /// further improvement (coordinate descent, at most `max_passes`).
  /// Escapes the single-pass local optima that ordering interactions
  /// cause (e.g. server count walked before device type), at the price
  /// of a handful more probe runs.
  static Result walk_converged(const Probe& probe,
                               const std::vector<Dim>& order,
                               int max_passes = 3);

  /// Random-ordered walk (the control).  Deterministic per seed.
  static Result random_walk(const Probe& probe, Rng& rng);

  /// Engine-backed variants.  Result::probes counts fresh simulations
  /// only; cache answers of any tier roll into the same
  /// `walker.probe_cache_hits` counter the legacy overloads use.
  static Result walk(const ExecProbe& probe, const std::vector<Dim>& order);
  static Result walk_converged(const ExecProbe& probe,
                               const std::vector<Dim>& order,
                               int max_passes = 3);
  static Result random_walk(const ExecProbe& probe, Rng& rng);

  /// Model-driven walk: probes are batch predictions from a trained
  /// model instead of simulations — each dimension's whole value row is
  /// scored in one flat-tree pass, so a full converged walk costs
  /// microseconds and zero simulations (Result::probes stays 0; rows
  /// scored roll into the `walker.predicted_rows` counter).  NOTE the
  /// objective inversion relative to the sim-backed walks: the model
  /// predicts *improvement over baseline* (higher is better), so
  /// Result::best_measure is the predicted improvement of the chosen
  /// configuration, not a seconds/dollars measure to minimise.
  static Result predicted_walk(const Acic& model, const io::Workload& traits,
                               const std::vector<Dim>& order,
                               int max_passes = 3);
};

}  // namespace acic::core
