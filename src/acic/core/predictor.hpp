// The ACIC predictor (§4.2): joins an application's I/O characteristics
// with every candidate system configuration, predicts each candidate's
// improvement over the baseline with a learner trained on the IOR
// database, and returns the top-k recommendations.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "acic/cloud/ioconfig.hpp"
#include "acic/core/paramspace.hpp"
#include "acic/core/training.hpp"
#include "acic/io/workload.hpp"
#include "acic/ml/dataset.hpp"

namespace acic::core {

struct Recommendation {
  cloud::IoConfig config;
  double predicted_improvement = 0.0;  ///< over baseline; higher is better
};

class Acic {
 public:
  /// Factory producing a fresh learner (defaults to the "cart" plugin).
  using LearnerFactory = std::function<std::unique_ptr<ml::Learner>()>;

  /// Train a model for `objective` from the database.
  Acic(const TrainingDatabase& db, Objective objective,
       LearnerFactory make_learner = nullptr);

  /// Train with the named registered learner ("cart", "forest", "knn",
  /// "linear", ...); throws plugin::PluginError listing the registered
  /// names when nothing answers to `learner_name`.
  Acic(const TrainingDatabase& db, Objective objective,
       std::string_view learner_name);

  Objective objective() const { return objective_; }
  const ml::Learner& model() const { return *model_; }

  /// Predicted improvement of one (config, characteristics) pair.
  double predict(const cloud::IoConfig& config,
                 const io::Workload& traits) const;

  /// Batch-predict pre-encoded exploration points in one model pass
  /// (flat-tree fast path when the model supports it).  Results are
  /// bit-identical to calling predict() per point.
  std::vector<double> predict_points(std::span<const Point> points) const;

  /// Batch-predict many candidate configurations for one application:
  /// encodes all (config, traits) pairs into a single contiguous matrix
  /// and evaluates it in one pass.
  std::vector<double> predict_batch(std::span<const cloud::IoConfig> configs,
                                    const io::Workload& traits) const;

  /// Rank all candidate configurations for an application, best first.
  /// `candidates` defaults to the full Table 1 system enumeration.
  std::vector<Recommendation> recommend(
      const io::Workload& traits, std::size_t top_k = 1,
      const std::vector<cloud::IoConfig>& candidates =
          cloud::IoConfig::enumerate_candidates()) const;

  /// Table 1 row names (feature naming for tree dumps).
  static std::vector<std::string> feature_names();

 private:
  Objective objective_;
  std::unique_ptr<ml::Learner> model_;
};

}  // namespace acic::core
