// The ACIC predictor (§4.2): joins an application's I/O characteristics
// with every candidate system configuration, predicts each candidate's
// improvement over the baseline with a learner trained on the IOR
// database, and returns the top-k recommendations.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "acic/cloud/ioconfig.hpp"
#include "acic/cloud/pricing.hpp"
#include "acic/common/units.hpp"
#include "acic/core/paramspace.hpp"
#include "acic/core/training.hpp"
#include "acic/io/workload.hpp"
#include "acic/ml/dataset.hpp"

namespace acic::core {

struct Recommendation {
  cloud::IoConfig config;
  double predicted_improvement = 0.0;  ///< over baseline; higher is better
};

/// First-order spot-market preemption model for restart-aware ranking.
/// Configurations with more I/O servers face proportionally more
/// reclaims; configurations with slower storage pay more for every
/// checkpoint dump — the recommender folds both into the ranking via
/// Daly's checkpoint/restart slowdown formula.
struct PreemptionModel {
  /// Spot reclaim rate per I/O server (matches
  /// FaultModel::preemptions_per_hour).
  double preemptions_per_hour = 0.0;
  /// Checkpoint cadence and dump size the job will run with.
  SimTime checkpoint_interval = 600.0;
  Bytes checkpoint_bytes = 0.0;
  /// Replacement acquisition + rebind cost per restart, seconds.
  SimTime restart_overhead = 120.0;
  /// Billing terms for the cost objective.
  cloud::SpotPricing spot;

  bool active() const { return preemptions_per_hour > 0.0; }
};

/// Expected execution-time slowdown factor (>= 1) of `config` under the
/// preemption model: (1 + delta/tau) * (1 + lambda * (tau/2 + R)) with
/// delta the dump-write time through the config's aggregate storage
/// bandwidth, tau the checkpoint interval, lambda the whole-cluster
/// reclaim rate and R the restart overhead plus the restore read.  With
/// checkpointing off the replay term uses a pessimistic one-hour mean
/// (lost work since t=0 grows with elapsed runtime).
double expected_preemption_slowdown(const cloud::IoConfig& config,
                                    const PreemptionModel& model);

class Acic {
 public:
  /// Factory producing a fresh learner (defaults to the "cart" plugin).
  using LearnerFactory = std::function<std::unique_ptr<ml::Learner>()>;

  /// Train a model for `objective` from the database.
  Acic(const TrainingDatabase& db, Objective objective,
       LearnerFactory make_learner = nullptr);

  /// Train with the named registered learner ("cart", "forest", "knn",
  /// "linear", ...); throws plugin::PluginError listing the registered
  /// names when nothing answers to `learner_name`.
  Acic(const TrainingDatabase& db, Objective objective,
       std::string_view learner_name);

  Objective objective() const { return objective_; }
  const ml::Learner& model() const { return *model_; }

  /// Predicted improvement of one (config, characteristics) pair.
  double predict(const cloud::IoConfig& config,
                 const io::Workload& traits) const;

  /// Batch-predict pre-encoded exploration points in one model pass
  /// (flat-tree fast path when the model supports it).  Results are
  /// bit-identical to calling predict() per point.
  std::vector<double> predict_points(std::span<const Point> points) const;

  /// Batch-predict many candidate configurations for one application:
  /// encodes all (config, traits) pairs into a single contiguous matrix
  /// and evaluates it in one pass.
  std::vector<double> predict_batch(std::span<const cloud::IoConfig> configs,
                                    const io::Workload& traits) const;

  /// Rank all candidate configurations for an application, best first.
  /// `candidates` defaults to the full Table 1 system enumeration.
  std::vector<Recommendation> recommend(
      const io::Workload& traits, std::size_t top_k = 1,
      const std::vector<cloud::IoConfig>& candidates =
          cloud::IoConfig::enumerate_candidates()) const;

  /// Restart-aware ranking: each candidate's predicted improvement is
  /// scaled by its preemption-adjusted expected slowdown (and, for the
  /// cost objective, the spot discount and per-restart reacquisition
  /// fees) relative to the baseline's, so a config that wins on raw
  /// bandwidth can lose to one that checkpoints or recovers cheaper.
  /// An inactive model degrades to the plain ranking above.
  std::vector<Recommendation> recommend(
      const io::Workload& traits, const PreemptionModel& preemption,
      std::size_t top_k = 1,
      const std::vector<cloud::IoConfig>& candidates =
          cloud::IoConfig::enumerate_candidates()) const;

  /// Table 1 row names (feature naming for tree dumps).
  static std::vector<std::string> feature_names();

 private:
  Objective objective_;
  std::unique_ptr<ml::Learner> model_;
};

}  // namespace acic::core
