// Plackett–Burman experiment designs (Plackett & Burman 1946), including
// the foldover variant the paper uses to rank parameter importance.
//
// A PB design screens N parameters with N' runs, N' being the smallest
// multiple of four >= N+1.  Row i of the matrix assigns each parameter to
// its "high" (+1) or "low" (-1) value for run i.  After measuring the N'
// responses, a parameter's effect is the dot product of its column with
// the response vector; |effect| ranks importance (the sign is not
// meaningful for ranking, §4.1).  Foldover appends the negated matrix,
// doubling the runs and cancelling pairwise-interaction aliasing.
#pragma once

#include <cstddef>
#include <vector>

namespace acic::core {

/// +1/-1 design matrix, `runs` x `runs-1` columns.
using PbMatrix = std::vector<std::vector<int>>;

class PbDesign {
 public:
  /// Standard PB design for N' = 8, 12, 16, 20 or 24 runs (cyclic
  /// generator rows plus the all-minus row).  Throws for other sizes.
  static PbMatrix matrix(int runs);

  /// Smallest supported N' for `params` parameters.
  static int runs_for(int params);

  /// Foldover design: 2*N' rows (the matrix followed by its negation).
  static PbMatrix foldover(int runs);

  /// Per-parameter effects: dot(column_j, response).  `params` selects
  /// the first columns (ignore padding columns when N < N'-1).
  static std::vector<double> effects(const PbMatrix& design,
                                     const std::vector<double>& response,
                                     int params);

  /// Parameter indices ordered by decreasing |effect| (rank 1 first).
  static std::vector<int> ranking(const std::vector<double>& effects);

  /// Convenience: 1-based rank of each parameter (rank[i] = position of
  /// parameter i in the importance order).
  static std::vector<int> rank_of_each(const std::vector<double>& effects);
};

}  // namespace acic::core
