// The paper's 15-dimensional exploration space (Table 1): six cloud I/O
// system dimensions concatenated with nine application I/O
// characteristics.
//
// A Point is the numeric encoding of one (configuration, characteristics)
// pair: categorical values are small integers, byte/count values are
// their actual magnitudes.  The encoding is what PB design and the CART
// learner operate on; `config_of` / `workload_of` decode a Point back
// into executable objects.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "acic/cloud/ioconfig.hpp"
#include "acic/io/workload.hpp"

namespace acic::core {

/// Dimension indices into a Point (Table 1 order: system block first).
enum Dim : int {
  kDevice = 0,      // 0 = EBS, 1 = ephemeral
  kFileSystem,      // 0 = NFS, 1 = PVFS2
  kInstanceType,    // 0 = cc1.4xlarge, 1 = cc2.8xlarge
  kIoServers,       // {1, 2, 4}
  kPlacement,       // 0 = part-time, 1 = dedicated
  kStripeSize,      // bytes; 0 for NFS
  kNumProcs,        // {32 .. 256}
  kNumIoProcs,      // {32 .. 256}
  kInterface,       // 0 = POSIX, 1 = MPI-IO family
  kIterations,      // {1, 10, 100}
  kDataSize,        // bytes per I/O process per iteration
  kRequestSize,     // bytes per call
  kOpType,          // 0 = read, 1 = write, 0.5 = mixed
  kCollective,      // 0 / 1
  kFileSharing,     // 0 = individual files, 1 = shared file
  kNumDims
};

using Point = std::array<double, kNumDims>;

struct DimensionSpec {
  Dim dim;
  std::string name;          ///< Table 1 row name
  std::vector<double> values;  ///< sampled value range (ascending)
  bool is_system = false;    ///< system configuration vs app characteristic
};

class ParamSpace {
 public:
  /// Table 1, in order; values are the paper's sampled ranges.
  static const std::vector<DimensionSpec>& dimensions();

  static const DimensionSpec& dimension(Dim d);

  /// Low/high ends of a dimension's range (PB design levels).
  static double low(Dim d);
  static double high(Dim d);

  /// Paper's validity rules (NFS => 1 server & no stripe; request <=
  /// data; I/O procs <= procs; collective => MPI-IO + shared file).
  static bool valid(const Point& p);

  /// Extension hook (§2 "expandability"): per-dimension replacement value
  /// sets, e.g. adding the SSD device class the platform just launched.
  /// Dimensions without an entry keep their Table 1 grid.
  struct ValueOverrides {
    std::vector<std::pair<Dim, std::vector<double>>> entries;
    const std::vector<double>* find(Dim d) const;
  };

  /// Effective sampled values for a dimension under optional overrides.
  static const std::vector<double>& values_of(
      Dim d, const ValueOverrides* overrides = nullptr);

  /// Repair an arbitrary assignment into the nearest valid Point,
  /// snapping onto the (possibly overridden) sampled grid.
  static Point repaired(Point p,
                        const ValueOverrides* overrides = nullptr);

  /// Decode the system half into an IoConfig.
  static cloud::IoConfig config_of(const Point& p);
  /// Decode the application half into an (IOR-style) workload.
  static io::Workload workload_of(const Point& p);

  /// Encode a (config, workload) pair.
  static Point encode(const cloud::IoConfig& config,
                      const io::Workload& workload);

  /// Number of raw value combinations across all 15 dimensions
  /// (~1.77 M, the paper's footnote 1).
  static double raw_combinations();

  /// Human-readable dump of one point.
  static std::string describe(const Point& p);
};

}  // namespace acic::core
