// Training-data collection and the crowdsourced training database
// (§2, §4.1): IOR runs over PB-selected dimensions of the exploration
// space, stored as relative improvement over the baseline configuration
// so that results from different reporters are comparable (§4.2's
// "relative fitness" trick).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "acic/cloud/failure.hpp"
#include "acic/common/check.hpp"
#include "acic/common/csv.hpp"
#include "acic/core/paramspace.hpp"
#include "acic/fs/retry.hpp"
#include "acic/ml/dataset.hpp"

namespace acic::exec {
class Executor;
}  // namespace acic::exec

namespace acic::core {

enum class Objective {
  kPerformance,  ///< minimise total execution time
  kCost,         ///< minimise monetary cost (paper Eq. 1)
};

const char* to_string(Objective o);

struct TrainingSample {
  Point point{};
  double time = 0.0;           ///< measured run time, s
  double cost = 0.0;           ///< measured run cost, $
  double baseline_time = 0.0;  ///< same workload on the baseline config
  double baseline_cost = 0.0;
  std::uint64_t sequence = 0;  ///< insertion order (for data aging)
  /// Measurement provenance (resilient sweeps): how many successful
  /// repeats back this sample, how many were rejected as outliers, and
  /// how many failed attempts had to be retried along the way.
  int repeats = 1;
  int rejected = 0;
  int retries = 0;

  /// Relative improvement over baseline (higher is better).  Division is
  /// safe because TrainingDatabase::insert rejects non-positive
  /// measurements — a zero-time sample (corrupt CSV row) would otherwise
  /// turn into an inf label and poison CART training.
  double improvement(Objective o) const {
    ACIC_DCHECK(time > 0.0 && cost > 0.0, "unvalidated training sample");
    return o == Objective::kPerformance ? baseline_time / time
                                        : baseline_cost / cost;
  }
};

/// The shareable performance/cost database.  Incremental inserts model
/// community contributions; `age_out` drops the oldest entries after a
/// platform upgrade.
class TrainingDatabase {
 public:
  void insert(TrainingSample sample);
  const std::vector<TrainingSample>& samples() const { return samples_; }
  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Keep only the newest `keep_latest` samples.
  void age_out(std::size_t keep_latest);

  /// Feature matrix = the 15-D points, target = improvement(objective).
  ml::Dataset to_dataset(Objective objective) const;

  CsvTable to_csv() const;
  static TrainingDatabase from_csv(const CsvTable& table);
  void save(const std::string& path) const;
  static TrainingDatabase load(const std::string& path);

 private:
  std::vector<TrainingSample> samples_;
  std::uint64_t next_sequence_ = 1;
};

/// Fault-tolerant measurement settings for a sweep.  The default is the
/// legacy single-shot protocol: one run per point, no faults, no retry —
/// bit-identical seeds and results.
struct SweepResilience {
  /// Measurements per point; the median of the survivors is recorded.
  int repeats = 1;
  /// Attempts per measurement before it is written off as failed.
  int max_attempts = 1;
  /// Modified-z-score cut for MAD-based outlier rejection across the
  /// repeats (a brownout-corrupted repeat cannot poison the CART label).
  double outlier_mad_threshold = 3.5;
  /// Faults injected into every measurement run (chaos training).
  cloud::FaultModel fault_model;
  /// Client-side deadline/retry reaction passed to the runs.
  fs::RetryPolicy retry;
  /// Per-run watchdog bound (0 = runner default when faults are armed).
  SimTime watchdog_sim_time = 0.0;
};

/// How to sample the space when bootstrapping the database.
struct TrainingPlan {
  /// Explore `top_dims` dimensions in total; the rest stay at their
  /// defaults.  With `always_explore_system_dims` (default), the six
  /// system dimensions are always in the explored set — a recommender
  /// can only rank configuration knobs it has actually varied — and the
  /// PB ranking in `dim_order` selects which workload dimensions join
  /// them.  Setting the flag false follows the paper's literal
  /// top-k-of-the-full-ranking protocol.
  std::vector<int> dim_order;
  int top_dims = 10;
  bool always_explore_system_dims = true;
  /// Expandability hook: replacement sampled-value sets per dimension
  /// (e.g. device {EBS, ephemeral, SSD} after a platform upgrade).  New
  /// values extend the database without invalidating collected data.
  ParamSpace::ValueOverrides value_overrides;
  /// Upper bound on collected samples; the cartesian product of the
  /// explored dimensions is sub-sampled uniformly when larger.
  std::size_t max_samples = 500;
  std::uint64_t seed = 1;
  double jitter_sigma = 0.06;
  /// Host threads for the independent simulations (0 = hardware).
  unsigned threads = 0;
  /// Fault tolerance for the measurement runs (defaults = legacy
  /// single-shot protocol).
  SweepResilience resilience;
  /// Execution engine for the measurement runs.  nullptr routes through
  /// the process-wide exec::Executor::global(): repeated sweeps (and
  /// sweeps overlapping walker probes or service queries) answer
  /// already-simulated points from the run cache.
  exec::Executor* executor = nullptr;
};

struct TrainingStats {
  std::size_t runs = 0;            ///< IOR runs executed (incl. baselines)
  double simulated_hours = 0.0;    ///< total simulated machine time
  Money money = 0.0;               ///< what the runs would have cost on EC2
  std::size_t retried_runs = 0;    ///< failed attempts that were retried
  std::size_t failed_runs = 0;     ///< runs graded RunOutcome::kFailed
  std::size_t rejected_outliers = 0;  ///< repeats dropped by the MAD cut
  std::size_t quarantined = 0;     ///< points with no usable measurement
  /// `config|workload` keys of quarantined points (repeatedly failing
  /// configurations a crowdsourcing deployment should stop assigning).
  std::vector<std::string> quarantined_labels;
};

/// The neutral defaults used for unexplored dimensions (baseline config +
/// a typical mid-range workload).
Point default_point();

/// Collect IOR training samples into `db` following `plan`.
TrainingStats collect_training_data(TrainingDatabase& db,
                                    const TrainingPlan& plan);

/// The dimensions a TrainingPlan with these settings explores.
std::vector<int> explored_dims(const std::vector<int>& dim_order,
                               int top_dims,
                               bool always_explore_system_dims = true);

/// Size of the full cartesian product over the explored dimensions
/// (Fig. 8's exponential x-axis).
double enumeration_size(const std::vector<int>& dim_order, int top_dims);

/// Estimated dollars to *exhaustively* train with `top_dims` dimensions,
/// given an observed average per-run cost (Fig. 8, right axis).
Money full_training_cost(const std::vector<int>& dim_order, int top_dims,
                         Money avg_run_cost);

}  // namespace acic::core
