#include "acic/core/manual.hpp"

#include "acic/plugin/substrates.hpp"

namespace acic::core {

namespace {

Bytes job_bytes(const io::Workload& w) { return w.total_bytes(); }

}  // namespace

cloud::IoConfig user_choice(const io::Workload& traits, Objective objective) {
  cloud::IoConfig c;
  c.instance = cloud::InstanceType::kCc2_8xlarge;  // "bigger is better"
  c.device = storage::DeviceType::kEphemeral;      // "local disks are fast"
  // The user reaches for NFS unless the job is obviously huge, and then
  // under-provisions the parallel file system.
  if (job_bytes(traits) < 8.0 * GiB) {
    plugin::filesystem_named("nfs").configure(c);
  } else {
    plugin::filesystem_named("pvfs2").configure(c, 2, 4.0 * MiB);
  }
  // "Part-time saves money" — applied to the cost goal and to small jobs.
  c.placement = (objective == Objective::kCost || traits.num_processes <= 64)
                    ? cloud::Placement::kPartTime
                    : cloud::Placement::kDedicated;
  return c;
}

std::vector<cloud::IoConfig> user_top3(const io::Workload& traits,
                                       Objective objective) {
  std::vector<cloud::IoConfig> out;
  out.push_back(user_choice(traits, objective));
  // Variant 2: hedge on the file system choice.
  cloud::IoConfig alt = out.front();
  if (alt.fs == cloud::FileSystemType::kNfs) {
    plugin::filesystem_named("pvfs2").configure(alt, 2, 4.0 * MiB);
  } else {
    plugin::filesystem_named("nfs").configure(alt);
  }
  out.push_back(alt);
  // Variant 3: flip placement.
  cloud::IoConfig alt2 = out.front();
  alt2.placement = alt2.placement == cloud::Placement::kPartTime
                       ? cloud::Placement::kDedicated
                       : cloud::Placement::kPartTime;
  out.push_back(alt2);
  return out;
}

cloud::IoConfig developer_choice(const io::Workload& traits,
                                 Objective objective) {
  cloud::IoConfig c;
  c.instance = cloud::InstanceType::kCc2_8xlarge;
  c.device = storage::DeviceType::kEphemeral;
  // The developer knows the access pattern: parallel FS for volume,
  // NFS only for genuinely small output.
  if (job_bytes(traits) < 2.0 * GiB) {
    plugin::filesystem_named("nfs").configure(c);
  } else {
    // ... but is conservative about server count on smaller jobs.
    plugin::filesystem_named("pvfs2").configure(
        c, traits.num_processes >= 128 ? 4 : 2,
        traits.request_size <= 512.0 * KiB ? 64.0 * KiB : 4.0 * MiB);
  }
  c.placement = objective == Objective::kCost
                    ? cloud::Placement::kPartTime
                    : cloud::Placement::kDedicated;
  return c;
}

std::vector<cloud::IoConfig> developer_top3(const io::Workload& traits,
                                            Objective objective) {
  std::vector<cloud::IoConfig> out;
  out.push_back(developer_choice(traits, objective));
  cloud::IoConfig alt = out.front();
  if (alt.fs == cloud::FileSystemType::kPvfs2) {
    // Variant 2: max out the server count.
    alt.io_servers = 4;
  } else {
    plugin::filesystem_named("pvfs2").configure(alt, 2, 4.0 * MiB);
  }
  out.push_back(alt);
  // Variant 3: flip placement on the primary pick.
  cloud::IoConfig alt2 = out.front();
  alt2.placement = alt2.placement == cloud::Placement::kPartTime
                       ? cloud::Placement::kDedicated
                       : cloud::Placement::kPartTime;
  out.push_back(alt2);
  return out;
}

}  // namespace acic::core
