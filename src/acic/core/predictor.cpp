#include "acic/core/predictor.hpp"

#include <algorithm>

#include "acic/cloud/instance.hpp"
#include "acic/common/error.hpp"
#include "acic/core/paramspace.hpp"
#include "acic/plugin/substrates.hpp"
#include "acic/storage/device.hpp"

namespace acic::core {

namespace {

/// Aggregate streaming bandwidth of the config's I/O tier, bytes/s
/// (RAID-0 set per server, NIC-capped for network-attached devices).
double aggregate_io_bandwidth(const cloud::IoConfig& config, bool for_write) {
  const auto& dev = storage::device_spec(config.device);
  double per_server = storage::raid0_bandwidth(
      dev, config.effective_raid_members(), for_write);
  if (dev.network_attached) {
    per_server = std::min(
        per_server, cloud::instance_spec(config.instance).nic_bandwidth);
  }
  return std::max(per_server * static_cast<double>(config.io_servers), 1.0);
}

/// The objective-specific expected penalty multiplier (>= time slowdown
/// for the cost objective: the spot discount is common to every
/// candidate, but the per-restart reacquisition fees scale with the
/// reclaim rate relative to the I/O tier's hourly bill).
double preemption_penalty(const cloud::IoConfig& config,
                          const PreemptionModel& model,
                          Objective objective) {
  const double slowdown = expected_preemption_slowdown(config, model);
  if (objective == Objective::kPerformance) return slowdown;
  const double reclaims_per_hour =
      model.preemptions_per_hour * static_cast<double>(config.io_servers);
  const double hourly_bill =
      std::max(cloud::instance_spec(config.instance).price_per_hour *
                   static_cast<double>(config.io_servers),
               1e-9);
  const double fee_share =
      reclaims_per_hour * model.spot.per_restart_cost / hourly_bill;
  return slowdown * (model.spot.price_factor + fee_share);
}

}  // namespace

Acic::Acic(const TrainingDatabase& db, Objective objective,
           LearnerFactory make_learner)
    : objective_(objective) {
  ACIC_CHECK_MSG(!db.empty(), "cannot train ACIC on an empty database");
  if (make_learner) {
    model_ = make_learner();
  } else {
    model_ = plugin::make_learner("cart");
  }
  model_->fit(db.to_dataset(objective));
}

Acic::Acic(const TrainingDatabase& db, Objective objective,
           std::string_view learner_name)
    : Acic(db, objective,
           [factory = plugin::learners().lookup(learner_name).make] {
             return factory();
           }) {}

double Acic::predict(const cloud::IoConfig& config,
                     const io::Workload& traits) const {
  const Point p = ParamSpace::encode(config, traits);
  return model_->predict(std::span<const double>(p.data(), p.size()));
}

std::vector<double> Acic::predict_points(std::span<const Point> points) const {
  std::vector<double> out(points.size());
  if (points.empty()) return out;
  std::vector<double> matrix;
  matrix.reserve(points.size() * kNumDims);
  for (const Point& p : points) {
    matrix.insert(matrix.end(), p.begin(), p.end());
  }
  model_->predict_batch(matrix, points.size(), out);
  return out;
}

std::vector<double> Acic::predict_batch(
    std::span<const cloud::IoConfig> configs,
    const io::Workload& traits) const {
  std::vector<double> out(configs.size());
  if (configs.empty()) return out;
  std::vector<double> matrix;
  matrix.reserve(configs.size() * kNumDims);
  for (const auto& c : configs) {
    const Point p = ParamSpace::encode(c, traits);
    matrix.insert(matrix.end(), p.begin(), p.end());
  }
  model_->predict_batch(matrix, configs.size(), out);
  return out;
}

std::vector<Recommendation> Acic::recommend(
    const io::Workload& traits, std::size_t top_k,
    const std::vector<cloud::IoConfig>& candidates) const {
  ACIC_CHECK(!candidates.empty());
  const std::vector<double> scores = predict_batch(candidates, traits);
  std::vector<Recommendation> recs;
  recs.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    recs.push_back(Recommendation{candidates[i], scores[i]});
  }
  std::stable_sort(recs.begin(), recs.end(),
                   [](const Recommendation& a, const Recommendation& b) {
                     return a.predicted_improvement >
                            b.predicted_improvement;
                   });
  if (top_k > 0 && recs.size() > top_k) recs.resize(top_k);
  return recs;
}

double expected_preemption_slowdown(const cloud::IoConfig& config,
                                    const PreemptionModel& model) {
  if (!model.active()) return 1.0;
  const double lambda = model.preemptions_per_hour *
                        static_cast<double>(config.io_servers) / kHour;
  double dump_time = 0.0;
  double restore_time = 0.0;
  double tau = std::max(model.checkpoint_interval, 1.0);
  if (model.checkpoint_bytes > 0.0) {
    dump_time =
        model.checkpoint_bytes / aggregate_io_bandwidth(config, true);
    restore_time =
        model.checkpoint_bytes / aggregate_io_bandwidth(config, false);
  } else {
    // No checkpoints: a reclaim replays everything since t=0.  The mean
    // replay grows with elapsed runtime; a fixed pessimistic one-hour
    // stand-in keeps the formula first-order without knowing the job
    // length.
    tau = kHour;
  }
  const double recovery = model.restart_overhead + restore_time;
  return (1.0 + dump_time / tau) * (1.0 + lambda * (tau / 2.0 + recovery));
}

std::vector<Recommendation> Acic::recommend(
    const io::Workload& traits, const PreemptionModel& preemption,
    std::size_t top_k, const std::vector<cloud::IoConfig>& candidates) const {
  if (!preemption.active()) return recommend(traits, top_k, candidates);
  ACIC_CHECK(!candidates.empty());
  const std::vector<double> scores = predict_batch(candidates, traits);
  // Improvements are ratios against the paper's baseline; the baseline
  // suffers preemptions too, so each candidate's penalty is taken
  // relative to the baseline's own.
  const double baseline_penalty =
      preemption_penalty(cloud::IoConfig::baseline(), preemption, objective_);
  std::vector<Recommendation> recs;
  recs.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const double penalty =
        preemption_penalty(candidates[i], preemption, objective_);
    recs.push_back(
        Recommendation{candidates[i], scores[i] * baseline_penalty / penalty});
  }
  std::stable_sort(recs.begin(), recs.end(),
                   [](const Recommendation& a, const Recommendation& b) {
                     return a.predicted_improvement >
                            b.predicted_improvement;
                   });
  if (top_k > 0 && recs.size() > top_k) recs.resize(top_k);
  return recs;
}

std::vector<std::string> Acic::feature_names() {
  std::vector<std::string> names;
  for (const auto& d : ParamSpace::dimensions()) names.push_back(d.name);
  return names;
}

}  // namespace acic::core
