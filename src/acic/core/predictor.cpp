#include "acic/core/predictor.hpp"

#include <algorithm>

#include "acic/common/error.hpp"
#include "acic/core/paramspace.hpp"

namespace acic::core {

Acic::Acic(const TrainingDatabase& db, Objective objective,
           LearnerFactory make_learner)
    : objective_(objective) {
  ACIC_CHECK_MSG(!db.empty(), "cannot train ACIC on an empty database");
  if (make_learner) {
    model_ = make_learner();
  } else {
    model_ = std::make_unique<ml::CartTree>();
  }
  model_->fit(db.to_dataset(objective));
}

double Acic::predict(const cloud::IoConfig& config,
                     const io::Workload& traits) const {
  const Point p = ParamSpace::encode(config, traits);
  return model_->predict(std::vector<double>(p.begin(), p.end()));
}

std::vector<Recommendation> Acic::recommend(
    const io::Workload& traits, std::size_t top_k,
    const std::vector<cloud::IoConfig>& candidates) const {
  ACIC_CHECK(!candidates.empty());
  std::vector<Recommendation> recs;
  recs.reserve(candidates.size());
  for (const auto& c : candidates) {
    recs.push_back(Recommendation{c, predict(c, traits)});
  }
  std::stable_sort(recs.begin(), recs.end(),
                   [](const Recommendation& a, const Recommendation& b) {
                     return a.predicted_improvement >
                            b.predicted_improvement;
                   });
  if (top_k > 0 && recs.size() > top_k) recs.resize(top_k);
  return recs;
}

std::vector<std::string> Acic::feature_names() {
  std::vector<std::string> names;
  for (const auto& d : ParamSpace::dimensions()) names.push_back(d.name);
  return names;
}

}  // namespace acic::core
