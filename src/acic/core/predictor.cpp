#include "acic/core/predictor.hpp"

#include <algorithm>

#include "acic/common/error.hpp"
#include "acic/core/paramspace.hpp"
#include "acic/plugin/substrates.hpp"

namespace acic::core {

Acic::Acic(const TrainingDatabase& db, Objective objective,
           LearnerFactory make_learner)
    : objective_(objective) {
  ACIC_CHECK_MSG(!db.empty(), "cannot train ACIC on an empty database");
  if (make_learner) {
    model_ = make_learner();
  } else {
    model_ = plugin::make_learner("cart");
  }
  model_->fit(db.to_dataset(objective));
}

Acic::Acic(const TrainingDatabase& db, Objective objective,
           std::string_view learner_name)
    : Acic(db, objective,
           [factory = plugin::learners().lookup(learner_name).make] {
             return factory();
           }) {}

double Acic::predict(const cloud::IoConfig& config,
                     const io::Workload& traits) const {
  const Point p = ParamSpace::encode(config, traits);
  return model_->predict(std::span<const double>(p.data(), p.size()));
}

std::vector<double> Acic::predict_points(std::span<const Point> points) const {
  std::vector<double> out(points.size());
  if (points.empty()) return out;
  std::vector<double> matrix;
  matrix.reserve(points.size() * kNumDims);
  for (const Point& p : points) {
    matrix.insert(matrix.end(), p.begin(), p.end());
  }
  model_->predict_batch(matrix, points.size(), out);
  return out;
}

std::vector<double> Acic::predict_batch(
    std::span<const cloud::IoConfig> configs,
    const io::Workload& traits) const {
  std::vector<double> out(configs.size());
  if (configs.empty()) return out;
  std::vector<double> matrix;
  matrix.reserve(configs.size() * kNumDims);
  for (const auto& c : configs) {
    const Point p = ParamSpace::encode(c, traits);
    matrix.insert(matrix.end(), p.begin(), p.end());
  }
  model_->predict_batch(matrix, configs.size(), out);
  return out;
}

std::vector<Recommendation> Acic::recommend(
    const io::Workload& traits, std::size_t top_k,
    const std::vector<cloud::IoConfig>& candidates) const {
  ACIC_CHECK(!candidates.empty());
  const std::vector<double> scores = predict_batch(candidates, traits);
  std::vector<Recommendation> recs;
  recs.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    recs.push_back(Recommendation{candidates[i], scores[i]});
  }
  std::stable_sort(recs.begin(), recs.end(),
                   [](const Recommendation& a, const Recommendation& b) {
                     return a.predicted_improvement >
                            b.predicted_improvement;
                   });
  if (top_k > 0 && recs.size() > top_k) recs.resize(top_k);
  return recs;
}

std::vector<std::string> Acic::feature_names() {
  std::vector<std::string> names;
  for (const auto& d : ParamSpace::dimensions()) names.push_back(d.name);
  return names;
}

}  // namespace acic::core
