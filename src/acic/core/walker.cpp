#include "acic/core/walker.hpp"

#include <limits>
#include <map>
#include <string>

#include "acic/common/error.hpp"
#include "acic/core/predictor.hpp"
#include "acic/exec/executor.hpp"
#include "acic/ior/ior.hpp"
#include "acic/obs/metrics.hpp"

namespace acic::core {

namespace {

/// Repair that gives the dimension being walked priority: probing
/// "4 I/O servers" or "a 4 MiB stripe" from an NFS point implies
/// switching to the parallel file system, not reverting the probe.
/// Without this, greedy walking can never leave NFS when the server
/// dimension is ranked ahead of the file-system dimension.
Point pinned_repair(Point p, Dim pinned) {
  const bool nfs = p[kFileSystem] < 0.5;
  if (nfs && pinned == kIoServers && p[kIoServers] > 1.5) {
    p[kFileSystem] = 1;  // PVFS2
  }
  if (nfs && pinned == kStripeSize && p[kStripeSize] > 0.0) {
    p[kFileSystem] = 1;
  }
  if (p[kFileSystem] > 0.5 && p[kStripeSize] <= 0.0) {
    // Freshly switched to the parallel FS: start from its common 4 MiB
    // default stripe rather than grid-snapping 0 to the 64 KiB end.
    p[kStripeSize] = 4.0 * MiB;
  }
  return ParamSpace::repaired(p);
}

/// One greedy pass over `order` starting from `start`, measuring through
/// `measure` (which owns caching and probe accounting).
template <typename Measure>
std::pair<Point, double> greedy_pass(Measure&& measure, Point start,
                                     const std::vector<Dim>& order) {
  Point current = start;
  double best = measure(ParamSpace::config_of(current));
  for (Dim d : order) {
    Point best_point = current;
    for (double v : ParamSpace::dimension(d).values) {
      Point candidate = current;
      candidate[d] = v;
      candidate = pinned_repair(candidate, d);
      const double measured = measure(ParamSpace::config_of(candidate));
      if (measured < best) {
        best = measured;
        best_point = candidate;
      }
    }
    current = best_point;  // fix this dimension, move to the next
  }
  return {current, best};
}

/// The shared coordinate-descent driver: greedy passes from the baseline
/// until converged (or `max_passes`).  `measure` owns caching and probe
/// accounting; `cache_hits` is read after the walk (the caller's measure
/// keeps tallying into it while passes run).
template <typename Measure>
void converged_walk(Measure&& measure, const std::vector<Dim>& order,
                    int max_passes, SpaceWalker::Result& result,
                    const std::uint64_t& cache_hits) {
  // s0: the baseline configuration.
  Point current = ParamSpace::encode(cloud::IoConfig::baseline(),
                                     ParamSpace::workload_of(default_point()));
  double best = 0.0;
  for (int pass = 0; pass < max_passes; ++pass) {
    auto [next, next_best] = greedy_pass(measure, current, order);
    const bool converged =
        pass > 0 && ParamSpace::config_of(next).label() ==
                        ParamSpace::config_of(current).label();
    current = next;
    best = next_best;
    if (converged) break;
  }

  result.best = ParamSpace::config_of(current);
  result.best_measure = best;

  auto& registry = obs::MetricsRegistry::global();
  registry.counter("walker.probes").add(static_cast<double>(result.probes));
  registry.counter("walker.probe_cache_hits")
      .add(static_cast<double>(cache_hits));
}

}  // namespace

std::vector<Dim> SpaceWalker::system_dims() {
  return {kDevice, kFileSystem, kInstanceType,
          kIoServers, kPlacement, kStripeSize};
}

std::vector<Dim> SpaceWalker::system_dims_ranked(
    const std::vector<int>& full_ranking) {
  std::vector<Dim> order;
  for (int d : full_ranking) {
    for (Dim s : system_dims()) {
      if (d == s) order.push_back(s);
    }
  }
  ACIC_CHECK_MSG(order.size() == system_dims().size(),
                 "ranking does not cover all system dimensions");
  return order;
}

SpaceWalker::Result SpaceWalker::walk(const Probe& probe,
                                      const std::vector<Dim>& order) {
  return walk_converged(probe, order, /*max_passes=*/1);
}

SpaceWalker::Result SpaceWalker::walk_converged(const Probe& probe,
                                                const std::vector<Dim>& order,
                                                int max_passes) {
  ACIC_CHECK(!order.empty());
  ACIC_CHECK(max_passes >= 1);

  Result result;
  std::map<std::string, double> cache;
  std::uint64_t cache_hits = 0;
  auto measure = [&](const cloud::IoConfig& cfg) {
    const std::string key = cfg.label();
    auto it = cache.find(key);
    if (it != cache.end()) {
      ++cache_hits;
      return it->second;
    }
    const double v = probe(cfg);
    cache[key] = v;
    ++result.probes;
    return v;
  };
  converged_walk(measure, order, max_passes, result, cache_hits);
  return result;
}

SpaceWalker::Result SpaceWalker::random_walk(const Probe& probe, Rng& rng) {
  auto dims = system_dims();
  const auto perm = rng.permutation(dims.size());
  std::vector<Dim> order;
  order.reserve(dims.size());
  for (std::size_t i : perm) order.push_back(dims[i]);
  return walk(probe, order);
}

SpaceWalker::Result SpaceWalker::walk(const ExecProbe& probe,
                                      const std::vector<Dim>& order) {
  return walk_converged(probe, order, /*max_passes=*/1);
}

SpaceWalker::Result SpaceWalker::walk_converged(const ExecProbe& probe,
                                                const std::vector<Dim>& order,
                                                int max_passes) {
  ACIC_CHECK(!order.empty());
  ACIC_CHECK(max_passes >= 1);

  Result result;
  std::uint64_t cache_hits = 0;
  // No per-walk map here: the engine's canonical RunKey *is* the cache,
  // so a revisited configuration hits whether it was probed in this
  // walk, a previous walk, or a training sweep through the same engine.
  auto measure = [&](const cloud::IoConfig& cfg) {
    exec::RunInfo info;
    const auto r =
        ior::run_ior(probe.workload, cfg, probe.options, probe.executor,
                     &info);
    if (info.source == exec::RunSource::kExecuted ||
        info.source == exec::RunSource::kUncacheable) {
      ++result.probes;
    } else {
      ++cache_hits;
    }
    return probe.objective == Objective::kCost ? r.cost : r.total_time;
  };
  converged_walk(measure, order, max_passes, result, cache_hits);
  return result;
}

SpaceWalker::Result SpaceWalker::random_walk(const ExecProbe& probe,
                                             Rng& rng) {
  auto dims = system_dims();
  const auto perm = rng.permutation(dims.size());
  std::vector<Dim> order;
  order.reserve(dims.size());
  for (std::size_t i : perm) order.push_back(dims[i]);
  return walk(probe, order);
}

SpaceWalker::Result SpaceWalker::predicted_walk(const Acic& model,
                                                const io::Workload& traits,
                                                const std::vector<Dim>& order,
                                                int max_passes) {
  ACIC_CHECK(!order.empty());
  ACIC_CHECK(max_passes >= 1);

  Result result;
  Point current = ParamSpace::encode(cloud::IoConfig::baseline(), traits);
  // Higher is better here (predicted improvement over baseline) — the
  // inversion relative to the sim-backed walks is documented on the
  // declaration.
  double best = model.predict_points({&current, 1}).front();
  std::uint64_t rows_scored = 1;
  std::vector<Point> candidates;
  for (int pass = 0; pass < max_passes; ++pass) {
    const std::string before = ParamSpace::config_of(current).label();
    for (Dim d : order) {
      candidates.clear();
      for (double v : ParamSpace::dimension(d).values) {
        Point candidate = current;
        candidate[d] = v;
        candidates.push_back(pinned_repair(candidate, d));
      }
      const std::vector<double> scores = model.predict_points(candidates);
      rows_scored += scores.size();
      for (std::size_t i = 0; i < scores.size(); ++i) {
        if (scores[i] > best) {
          best = scores[i];
          current = candidates[i];
        }
      }
    }
    if (ParamSpace::config_of(current).label() == before) break;
  }

  result.best = ParamSpace::config_of(current);
  result.best_measure = best;
  result.probes = 0;  // zero simulations spent — that is the point
  obs::MetricsRegistry::global()
      .counter("walker.predicted_rows")
      .add(static_cast<double>(rows_scored));
  return result;
}

}  // namespace acic::core
