// Simulated MPI runtime.
//
// Ranks are coroutine processes; this runtime gives them the primitives
// HPC applications actually synchronise with: barriers, point-to-point
// sends (modelled as flows when they cross instances), ring exchanges, and
// log-depth collectives via a latency/bandwidth cost model.  It also owns
// the ROMIO-style collective-I/O aggregator assignment (one aggregator per
// instance — the piece that interacts with part-time I/O server placement
// in the paper's observation 1).
#pragma once

#include <vector>

#include "acic/cloud/cluster.hpp"
#include "acic/common/units.hpp"
#include "acic/simcore/sync.hpp"
#include "acic/simcore/task.hpp"

namespace acic::mpi {

class Runtime {
 public:
  explicit Runtime(cloud::ClusterModel& cluster);

  int size() const { return cluster_.ranks(); }

  /// Per-message launch latency between instances (TCP over 10 GbE).
  SimTime alpha() const { return 0.06 * kMillisecond; }
  /// Intra-instance (shared-memory) copy bandwidth.
  double shm_bandwidth() const { return 6.0e9; }

  /// MPI_Barrier: every rank must call it; released together with a
  /// log2(p) latency term.
  sim::Task barrier();

  /// Point-to-point payload from `from` to `to`.  Crossing instances uses
  /// the flow network (NIC contention is real); staying on an instance
  /// costs a shared-memory copy.
  sim::Task send(int from, int to, Bytes bytes);

  /// Ring halo exchange: rank sends `bytes` to its +1 neighbour.  Every
  /// rank must call it (internally barriered).
  sim::Task exchange_ring(int rank, Bytes bytes);

  /// MPI_Allreduce cost model: recursive doubling, log2(p) rounds of
  /// (alpha + bytes/NIC).  Every rank must call it.
  sim::Task allreduce(int rank, Bytes bytes);

  /// Collective-I/O aggregators: the lowest rank on each compute instance.
  const std::vector<int>& aggregators() const { return aggregators_; }
  /// The aggregator responsible for `rank` (same instance).
  int aggregator_of(int rank) const;
  bool is_aggregator(int rank) const;

 private:
  double log2_ranks() const;

  cloud::ClusterModel& cluster_;
  sim::Barrier barrier_impl_;
  std::vector<int> aggregators_;
};

}  // namespace acic::mpi
