#include "acic/mpi/runtime.hpp"

#include <cmath>

#include "acic/common/error.hpp"

namespace acic::mpi {

Runtime::Runtime(cloud::ClusterModel& cluster)
    : cluster_(cluster),
      barrier_impl_(cluster.simulator(),
                    static_cast<std::size_t>(cluster.ranks())) {
  const int ppn = cluster_.ranks_per_instance();
  for (int rank = 0; rank < cluster_.ranks(); rank += ppn) {
    aggregators_.push_back(rank);
  }
}

double Runtime::log2_ranks() const {
  return std::log2(static_cast<double>(std::max(2, cluster_.ranks())));
}

sim::Task Runtime::barrier() {
  co_await barrier_impl_.arrive_and_wait();
  co_await cluster_.simulator().delay(alpha() * log2_ranks());
}

sim::Task Runtime::send(int from, int to, Bytes bytes) {
  auto path = cluster_.comm_path(from, to);
  if (path.empty()) {
    // Same instance: shared-memory copy.
    co_await cluster_.simulator().delay(1.0e-6 + bytes / shm_bandwidth());
  } else {
    co_await cluster_.simulator().delay(alpha());
    co_await cluster_.network().transfer(std::move(path), bytes);
  }
}

sim::Task Runtime::exchange_ring(int rank, Bytes bytes) {
  const int next = (rank + 1) % cluster_.ranks();
  co_await send(rank, next, bytes);
  co_await barrier();
}

sim::Task Runtime::allreduce(int rank, Bytes bytes) {
  (void)rank;
  co_await barrier();
  const double rounds = log2_ranks();
  const double bw = cluster_.spec().nic_bandwidth;
  co_await cluster_.simulator().delay(rounds * (alpha() + bytes / bw));
}

int Runtime::aggregator_of(int rank) const {
  const int ppn = cluster_.ranks_per_instance();
  ACIC_CHECK(rank >= 0 && rank < cluster_.ranks());
  return (rank / ppn) * ppn;
}

bool Runtime::is_aggregator(int rank) const {
  return aggregator_of(rank) == rank;
}

}  // namespace acic::mpi
