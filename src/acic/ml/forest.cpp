#include "acic/ml/forest.hpp"

#include <cmath>

#include "acic/common/error.hpp"
#include "acic/common/rng.hpp"
#include "acic/common/stats.hpp"

namespace acic::ml {

void ForestRegressor::fit(const Dataset& data) {
  ACIC_CHECK(data.rows() > 0);
  ACIC_CHECK(params_.trees >= 1);
  trees_.clear();
  trees_.reserve(static_cast<std::size_t>(params_.trees));
  Rng rng(params_.seed);
  const std::size_t draws = std::max<std::size_t>(
      1, static_cast<std::size_t>(params_.bootstrap_fraction *
                                  static_cast<double>(data.rows())));
  for (int t = 0; t < params_.trees; ++t) {
    Dataset boot;
    boot.x.reserve(draws);
    boot.y.reserve(draws);
    for (std::size_t i = 0; i < draws; ++i) {
      const std::size_t row =
          static_cast<std::size_t>(rng.uniform_index(data.rows()));
      boot.x.push_back(data.x[row]);
      boot.y.push_back(data.y[row]);
    }
    trees_.push_back(CartTree::train(boot, params_.tree_params));
  }
}

double ForestRegressor::predict(std::span<const double> features) const {
  ACIC_CHECK_MSG(!trees_.empty(), "predict() on an unfitted forest");
  double sum = 0.0;
  for (const auto& tree : trees_) sum += tree.predict(features);
  return sum / static_cast<double>(trees_.size());
}

double ForestRegressor::prediction_stddev(
    std::span<const double> features) const {
  ACIC_CHECK_MSG(!trees_.empty(), "prediction_stddev() on unfitted forest");
  OnlineStats stats;
  for (const auto& tree : trees_) stats.add(tree.predict(features));
  return stats.stddev();
}

}  // namespace acic::ml
