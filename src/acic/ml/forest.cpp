#include "acic/ml/forest.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "acic/common/error.hpp"
#include "acic/common/rng.hpp"
#include "acic/common/stats.hpp"
#include "acic/plugin/substrates.hpp"

namespace acic::ml {

void ForestRegressor::fit(const Dataset& data) {
  ACIC_CHECK(data.rows() > 0);
  ACIC_CHECK(params_.trees >= 1);
  trees_.clear();
  trees_.reserve(static_cast<std::size_t>(params_.trees));
  Rng rng(params_.seed);
  const std::size_t draws = std::max<std::size_t>(
      1, static_cast<std::size_t>(params_.bootstrap_fraction *
                                  static_cast<double>(data.rows())));
  // Bootstraps are index views into `data` — drawing the same row ids in
  // the same rng order as a materialised resample, so seeded models are
  // unchanged, without the old O(trees x n x f) row copies.
  std::vector<std::size_t> boot(draws);
  for (int t = 0; t < params_.trees; ++t) {
    for (std::size_t i = 0; i < draws; ++i) {
      boot[i] = static_cast<std::size_t>(rng.uniform_index(data.rows()));
    }
    trees_.push_back(CartTree::train_on_rows(data, boot, params_.tree_params));
  }
}

void ForestRegressor::predict_batch(std::span<const double> X,
                                    std::size_t n_rows,
                                    std::span<double> out) const {
  ACIC_CHECK_MSG(!trees_.empty(), "predict_batch() on an unfitted forest");
  if (n_rows == 0) return;
  ACIC_EXPECTS(out.size() >= n_rows,
               "output span holds " << out.size() << " slots for " << n_rows
                                    << " rows");
  std::fill(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(n_rows),
            0.0);
  for (const auto& tree : trees_) {
    tree.flat().predict_batch_add(X, n_rows, out);
  }
  // Divide (not multiply by the reciprocal): predict() divides, and the
  // two must stay bit-identical.
  const auto count = static_cast<double>(trees_.size());
  for (std::size_t i = 0; i < n_rows; ++i) out[i] /= count;
}

double ForestRegressor::predict(std::span<const double> features) const {
  ACIC_CHECK_MSG(!trees_.empty(), "predict() on an unfitted forest");
  double sum = 0.0;
  for (const auto& tree : trees_) sum += tree.predict(features);
  return sum / static_cast<double>(trees_.size());
}

double ForestRegressor::prediction_stddev(
    std::span<const double> features) const {
  ACIC_CHECK_MSG(!trees_.empty(), "prediction_stddev() on unfitted forest");
  OnlineStats stats;
  for (const auto& tree : trees_) stats.add(tree.predict(features));
  return stats.stddev();
}

}  // namespace acic::ml

ACIC_REGISTER_PLUGIN(forest_learner) {
  acic::plugin::LearnerPlugin p;
  p.name = "forest";
  p.description = "bootstrap-aggregated CART forest";
  p.schema.version = 1;
  p.schema.knobs = {{"trees", {25.0}}, {"bootstrap_fraction", {1.0}}};
  p.make = [] {
    return std::unique_ptr<acic::ml::Learner>(
        std::make_unique<acic::ml::ForestRegressor>());
  };
  acic::plugin::learners().add(std::move(p));
}
