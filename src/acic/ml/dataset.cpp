#include "acic/ml/dataset.hpp"

#include <cmath>

#include "acic/common/error.hpp"

namespace acic::ml {

void Dataset::add(std::vector<double> features, double target) {
  if (!x.empty()) {
    ACIC_EXPECTS(features.size() == x.front().size(),
                 "inconsistent feature arity: got " << features.size()
                                                    << " expected "
                                                    << x.front().size());
  }
  ACIC_EXPECTS(std::isfinite(target), "non-finite training target " << target);
  ACIC_DCHECK(
      [&features] {
        for (double v : features) {
          if (!std::isfinite(v)) return false;
        }
        return true;
      }(),
      "non-finite feature value in training row");
  x.push_back(std::move(features));
  y.push_back(target);
}

std::pair<Dataset, Dataset> Dataset::split_validation(
    std::size_t every_kth) const {
  ACIC_CHECK(every_kth >= 2);
  Dataset train, val;
  for (std::size_t i = 0; i < rows(); ++i) {
    auto& part = (i % every_kth == every_kth - 1) ? val : train;
    part.x.push_back(x[i]);
    part.y.push_back(y[i]);
  }
  return {std::move(train), std::move(val)};
}

void Learner::predict_batch(std::span<const double> X, std::size_t n_rows,
                            std::span<double> out) const {
  if (n_rows == 0) return;
  ACIC_EXPECTS(X.size() % n_rows == 0,
               "batch of " << X.size() << " values is not divisible into "
                           << n_rows << " rows");
  ACIC_EXPECTS(out.size() >= n_rows,
               "output span holds " << out.size() << " slots for " << n_rows
                                    << " rows");
  const std::size_t stride = X.size() / n_rows;
  for (std::size_t i = 0; i < n_rows; ++i) {
    out[i] = predict(X.subspan(i * stride, stride));
  }
}

double mse(const Learner& model, const Dataset& data) {
  ACIC_CHECK(data.rows() > 0);
  double sum = 0.0;
  for (std::size_t i = 0; i < data.rows(); ++i) {
    const double e = model.predict(data.x[i]) - data.y[i];
    sum += e * e;
  }
  return sum / static_cast<double>(data.rows());
}

}  // namespace acic::ml
