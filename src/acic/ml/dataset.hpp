// Supervised-regression dataset and the learner interface ACIC plugs its
// prediction models into (§4.2: "different learning algorithms can be
// easily plugged in").
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

namespace acic::ml {

struct Dataset {
  /// Row-major feature matrix; all rows share x.front().size() features.
  std::vector<std::vector<double>> x;
  /// Regression targets, one per row.
  std::vector<double> y;

  std::size_t rows() const { return x.size(); }
  std::size_t features() const { return x.empty() ? 0 : x.front().size(); }

  void add(std::vector<double> features, double target);

  /// Deterministic split into train/validation parts (every k-th row goes
  /// to validation).
  std::pair<Dataset, Dataset> split_validation(std::size_t every_kth) const;
};

class Learner {
 public:
  virtual ~Learner() = default;
  virtual void fit(const Dataset& data) = 0;
  virtual double predict(std::span<const double> features) const = 0;
  /// Evaluate `n_rows` rows packed row-major in `X` (stride inferred as
  /// X.size() / n_rows, which must divide evenly) into `out[0..n_rows)`.
  /// Predictions must be bit-identical to calling predict() per row; the
  /// base implementation does exactly that, and models with a fast path
  /// (flat CART/forest) override it.
  virtual void predict_batch(std::span<const double> X, std::size_t n_rows,
                             std::span<double> out) const;
  virtual std::string name() const = 0;
};

/// Mean squared prediction error over a dataset.
double mse(const Learner& model, const Dataset& data);

}  // namespace acic::ml
