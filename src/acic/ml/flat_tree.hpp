// Contiguous structure-of-arrays snapshot of a trained CART tree.
//
// CartTree's node vector is fine for training but slow to evaluate in
// bulk: predict() hops through a 64-byte Node per level and the 504-row
// recommend sweep pays that pointer chase (plus a vector allocation per
// call at the predictor layer) for every candidate.  FlatTree copies the
// decision structure into three parallel arrays laid out in preorder —
// feature index, threshold, right-child index — so the whole tree sits
// in a few cache lines and the left child is always the next array slot
// (no pointer to store, no pointer to load).  Leaves are encoded as
// feature == -1 with the predicted mean stored in the threshold slot.
//
// The batch walk applies the exact comparison the pointer tree uses
// (`row[feature] < threshold`), so predictions are bit-identical to
// CartTree::predict — regression-tested, because the determinism
// contract (same model, same answer) extends to the fast path.
//
// A FlatTree is an immutable value: safe to share across threads for
// concurrent predict_batch calls once built.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace acic::ml {

class CartTree;

class FlatTree {
 public:
  FlatTree() = default;
  /// Flatten a trained tree.  The tree must have a root.
  explicit FlatTree(const CartTree& tree);

  bool empty() const { return feature_.empty(); }
  std::size_t node_count() const { return feature_.size(); }
  /// Edges on the longest root-to-leaf path (0 for a single leaf).
  std::size_t depth() const { return depth_; }
  /// Smallest feature-vector arity a prediction row must supply (max
  /// feature index used by any split, plus one).
  std::size_t min_features() const { return min_features_; }

  /// Single-row evaluation; bit-identical to CartTree::predict.
  double predict(std::span<const double> features) const;

  /// Evaluate `n_rows` rows packed row-major in `X` (stride inferred as
  /// X.size() / n_rows, which must divide evenly and cover
  /// min_features()) into `out[0..n_rows)`.
  void predict_batch(std::span<const double> X, std::size_t n_rows,
                     std::span<double> out) const;

  /// Accumulating variant: `out[i] += prediction(row i)`.  Lets a forest
  /// sum per-tree contributions in tree order without a temporary, which
  /// preserves the exact addition order of the per-row ensemble average.
  void predict_batch_add(std::span<const double> X, std::size_t n_rows,
                         std::span<double> out) const;

 private:
  std::int32_t flatten(const CartTree& tree, int node, std::size_t depth);
  template <bool Add>
  void batch_impl(std::span<const double> X, std::size_t n_rows,
                  std::span<double> out) const;

  std::vector<std::int32_t> feature_;  // -1 marks a leaf
  std::vector<double> threshold_;      // leaf slot holds the predicted mean
  std::vector<std::int32_t> right_;    // left child is implicitly node + 1
  std::size_t depth_ = 0;
  std::size_t min_features_ = 0;
};

}  // namespace acic::ml
