#include "acic/ml/knn.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "acic/common/error.hpp"
#include "acic/plugin/substrates.hpp"

namespace acic::ml {

namespace {

void fit_normalizer(const Dataset& data, std::vector<double>& lo,
                    std::vector<double>& scale) {
  const std::size_t f = data.features();
  lo.assign(f, 0.0);
  scale.assign(f, 1.0);
  for (std::size_t j = 0; j < f; ++j) {
    double mn = data.x[0][j], mx = data.x[0][j];
    for (const auto& row : data.x) {
      mn = std::min(mn, row[j]);
      mx = std::max(mx, row[j]);
    }
    lo[j] = mn;
    scale[j] = (mx > mn) ? 1.0 / (mx - mn) : 0.0;
  }
}

}  // namespace

void KnnRegressor::fit(const Dataset& data) {
  ACIC_CHECK(data.rows() > 0);
  data_ = data;
  fit_normalizer(data_, lo_, scale_);
}

double KnnRegressor::predict(std::span<const double> features) const {
  ACIC_CHECK_MSG(data_.rows() > 0, "predict() on an unfitted kNN");
  ACIC_CHECK(features.size() == data_.features());
  std::vector<std::pair<double, double>> dist;  // (distance, y)
  dist.reserve(data_.rows());
  for (std::size_t i = 0; i < data_.rows(); ++i) {
    double d = 0.0;
    for (std::size_t j = 0; j < features.size(); ++j) {
      const double a = (features[j] - lo_[j]) * scale_[j];
      const double b = (data_.x[i][j] - lo_[j]) * scale_[j];
      d += (a - b) * (a - b);
    }
    dist.emplace_back(d, data_.y[i]);
  }
  const std::size_t k =
      std::min<std::size_t>(static_cast<std::size_t>(k_), dist.size());
  std::partial_sort(dist.begin(),
                    dist.begin() + static_cast<std::ptrdiff_t>(k),
                    dist.end());
  double sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) sum += dist[i].second;
  return sum / static_cast<double>(k);
}

void LinearRegressor::fit(const Dataset& data) {
  ACIC_CHECK(data.rows() > 0);
  fit_normalizer(data, lo_, scale_);
  const std::size_t f = data.features();
  const std::size_t m = f + 1;  // intercept + features

  // Normal equations A beta = b with ridge damping on the diagonal.
  std::vector<double> a(m * m, 0.0), b(m, 0.0);
  std::vector<double> row(m);
  for (std::size_t i = 0; i < data.rows(); ++i) {
    row[0] = 1.0;
    for (std::size_t j = 0; j < f; ++j) {
      row[j + 1] = (data.x[i][j] - lo_[j]) * scale_[j];
    }
    for (std::size_t p = 0; p < m; ++p) {
      for (std::size_t q = 0; q < m; ++q) a[p * m + q] += row[p] * row[q];
      b[p] += row[p] * data.y[i];
    }
  }
  for (std::size_t p = 0; p < m; ++p) a[p * m + p] += ridge_;

  // Gaussian elimination with partial pivoting.
  for (std::size_t col = 0; col < m; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < m; ++r) {
      if (std::abs(a[r * m + col]) > std::abs(a[pivot * m + col])) pivot = r;
    }
    for (std::size_t q = 0; q < m; ++q) {
      std::swap(a[col * m + q], a[pivot * m + q]);
    }
    std::swap(b[col], b[pivot]);
    const double diag = a[col * m + col];
    ACIC_CHECK_MSG(std::abs(diag) > 1e-12, "singular normal equations");
    for (std::size_t r = 0; r < m; ++r) {
      if (r == col) continue;
      const double factor = a[r * m + col] / diag;
      for (std::size_t q = col; q < m; ++q) {
        a[r * m + q] -= factor * a[col * m + q];
      }
      b[r] -= factor * b[col];
    }
  }
  beta_.assign(m, 0.0);
  for (std::size_t p = 0; p < m; ++p) beta_[p] = b[p] / a[p * m + p];
}

double LinearRegressor::predict(std::span<const double> features) const {
  ACIC_CHECK_MSG(!beta_.empty(), "predict() on an unfitted model");
  ACIC_CHECK(features.size() + 1 == beta_.size());
  double y = beta_[0];
  for (std::size_t j = 0; j < features.size(); ++j) {
    y += beta_[j + 1] * (features[j] - lo_[j]) * scale_[j];
  }
  return y;
}

}  // namespace acic::ml

ACIC_REGISTER_PLUGIN(knn_learner) {
  acic::plugin::LearnerPlugin p;
  p.name = "knn";
  p.description = "k-nearest-neighbour baseline";
  p.schema.version = 1;
  p.schema.knobs = {{"k", {5.0}}};
  p.make = [] {
    return std::unique_ptr<acic::ml::Learner>(
        std::make_unique<acic::ml::KnnRegressor>());
  };
  acic::plugin::learners().add(std::move(p));
}

ACIC_REGISTER_PLUGIN(linear_learner) {
  acic::plugin::LearnerPlugin p;
  p.name = "linear";
  p.description = "ridge-regularised linear baseline";
  p.schema.version = 1;
  p.schema.knobs = {{"ridge", {1e-6}}};
  p.make = [] {
    return std::unique_ptr<acic::ml::Learner>(
        std::make_unique<acic::ml::LinearRegressor>());
  };
  acic::plugin::learners().add(std::move(p));
}
