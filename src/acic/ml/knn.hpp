// k-nearest-neighbour regression: the simplest drop-in alternative
// learner, demonstrating the paper's pluggable-model claim.  Features are
// normalised to [0,1] per dimension so byte-valued and boolean dimensions
// weigh equally.
#pragma once

#include "acic/ml/dataset.hpp"

namespace acic::ml {

class KnnRegressor final : public Learner {
 public:
  explicit KnnRegressor(int k = 5) : k_(k) {}

  void fit(const Dataset& data) override;
  double predict(std::span<const double> features) const override;
  std::string name() const override { return "kNN"; }

 private:
  int k_;
  Dataset data_;
  std::vector<double> lo_, scale_;
};

/// Ordinary least squares on (1, x) via normal equations with ridge
/// damping; the "linear baseline" learner.
class LinearRegressor final : public Learner {
 public:
  explicit LinearRegressor(double ridge = 1e-6) : ridge_(ridge) {}

  void fit(const Dataset& data) override;
  double predict(std::span<const double> features) const override;
  std::string name() const override { return "linear"; }

 private:
  double ridge_;
  std::vector<double> beta_;  // intercept first
  std::vector<double> lo_, scale_;
};

}  // namespace acic::ml
