#include "acic/ml/cart.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <numeric>
#include <sstream>
#include <utility>

#include "acic/common/error.hpp"
#include "acic/plugin/substrates.hpp"

namespace acic::ml {

namespace {

struct SplitChoice {
  bool found = false;
  int feature = -1;
  double threshold = 0.0;
  double sse = std::numeric_limits<double>::infinity();
};

}  // namespace

CartTree CartTree::train(const Dataset& data, const CartParams& params) {
  std::vector<std::size_t> rows(data.rows());
  std::iota(rows.begin(), rows.end(), 0);
  return train_on_rows(data, rows, params);
}

CartTree CartTree::train_on_rows(const Dataset& data,
                                 std::span<const std::size_t> rows,
                                 const CartParams& params) {
  ACIC_EXPECTS(!rows.empty(), "cannot fit CART on an empty row view");
  ACIC_EXPECTS(params.max_depth >= 1,
               "CART max_depth must be >= 1, got " << params.max_depth);
  ACIC_EXPECTS(params.min_samples_leaf >= 1 && params.min_samples_split >= 2,
               "degenerate CART split parameters: min_samples_leaf="
                   << params.min_samples_leaf
                   << " min_samples_split=" << params.min_samples_split);
  ACIC_DCHECK(
      [&] {
        for (std::size_t r : rows) {
          if (r >= data.rows()) return false;
        }
        return true;
      }(),
      "row view references a row outside the dataset");
  CartTree tree;

  // Replicate split_validation()'s deterministic every-k-th holdout over
  // the view: position i of the view goes to validation iff
  // i % k == k - 1.  Only the (small) validation part is materialised;
  // the training side stays an index view.
  std::vector<std::size_t> train_rows;
  Dataset val_part;
  if (params.prune_holdout >= 2 && rows.size() >= 4 * params.prune_holdout) {
    const std::size_t k = params.prune_holdout;
    train_rows.reserve(rows.size() - rows.size() / k);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (i % k == k - 1) {
        val_part.x.push_back(data.x[rows[i]]);
        val_part.y.push_back(data.y[rows[i]]);
      } else {
        train_rows.push_back(rows[i]);
      }
    }
  } else {
    train_rows.assign(rows.begin(), rows.end());
  }

  tree.root_ = tree.build(data, train_rows, 0, train_rows.size(), 0, params);

  if (val_part.rows() > 0) tree.prune_with(val_part);
  tree.flat_ = FlatTree(tree);
  return tree;
}

int CartTree::build(const Dataset& data, std::vector<std::size_t>& index,
                    std::size_t begin, std::size_t end, int depth,
                    const CartParams& params) {
  const std::size_t n = end - begin;
  ACIC_CHECK(n > 0);

  Node node;
  node.samples = n;
  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    const double y = data.y[index[i]];
    sum += y;
    sum_sq += y * y;
  }
  node.mean = sum / static_cast<double>(n);
  ACIC_CHECK(std::isfinite(node.mean),
             "non-finite node mean (loss) over " << n << " samples");
  const double sse_here =
      std::max(0.0, sum_sq - sum * sum / static_cast<double>(n));
  node.stddev = std::sqrt(sse_here / static_cast<double>(n));

  const bool can_split =
      depth < params.max_depth &&
      n >= static_cast<std::size_t>(params.min_samples_split) &&
      sse_here > 0.0;

  SplitChoice best;
  if (can_split) {
    const std::size_t features = data.features();
    std::vector<std::pair<double, double>> column(n);  // (x, y)
    for (std::size_t f = 0; f < features; ++f) {
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t row = index[begin + i];
        column[i] = {data.x[row][f], data.y[row]};
      }
      std::sort(column.begin(), column.end());
      // Prefix scan: evaluate every boundary between distinct x values.
      double left_sum = 0.0, left_sq = 0.0;
      for (std::size_t k = 1; k < n; ++k) {
        left_sum += column[k - 1].second;
        left_sq += column[k - 1].second * column[k - 1].second;
        if (column[k - 1].first == column[k].first) continue;
        const std::size_t nl = k, nr = n - k;
        if (nl < static_cast<std::size_t>(params.min_samples_leaf) ||
            nr < static_cast<std::size_t>(params.min_samples_leaf)) {
          continue;
        }
        const double right_sum = sum - left_sum;
        const double right_sq = sum_sq - left_sq;
        const double sse_l =
            left_sq - left_sum * left_sum / static_cast<double>(nl);
        const double sse_r =
            right_sq - right_sum * right_sum / static_cast<double>(nr);
        const double sse = sse_l + sse_r;
        if (sse < best.sse) {
          // Midpoint of adjacent doubles can round back onto the lower
          // value (or overflow for huge magnitudes), which would make the
          // `x < thr` partition produce an empty left side.  Any thr with
          // a < thr <= b yields the same partition, so fall back to b.
          const double a = column[k - 1].first;
          const double b = column[k].first;
          double thr = 0.5 * (a + b);
          if (!(a < thr && thr <= b)) thr = b;
          best.found = true;
          best.feature = static_cast<int>(f);
          best.threshold = thr;
          best.sse = sse;
        }
      }
    }
    if (best.found &&
        sse_here - best.sse < params.min_gain * std::max(sse_here, 1e-30)) {
      best.found = false;  // gain too small to be worth a node
    }
  }

  const int my_id = static_cast<int>(nodes_.size());
  nodes_.push_back(node);

  if (!best.found) return my_id;

  // Partition the index range on the chosen split.
  const int f = best.feature;
  const double thr = best.threshold;
  auto mid_it = std::partition(
      index.begin() + static_cast<std::ptrdiff_t>(begin),
      index.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t row) { return data.x[row][static_cast<std::size_t>(f)] <
                                    thr; });
  const std::size_t mid =
      static_cast<std::size_t>(mid_it - index.begin());
  ACIC_CHECK(mid > begin && mid < end,
             "CART split produced an empty side: begin=" << begin << " mid="
                                                         << mid
                                                         << " end=" << end);

  const int left = build(data, index, begin, mid, depth + 1, params);
  const int right = build(data, index, mid, end, depth + 1, params);
  nodes_[static_cast<std::size_t>(my_id)].leaf = false;
  nodes_[static_cast<std::size_t>(my_id)].feature = f;
  nodes_[static_cast<std::size_t>(my_id)].threshold = thr;
  nodes_[static_cast<std::size_t>(my_id)].left = left;
  nodes_[static_cast<std::size_t>(my_id)].right = right;
  return my_id;
}

void CartTree::prune_with(const Dataset& validation) {
  if (root_ < 0 || validation.rows() == 0) return;
  // Route every validation sample through the tree, recording visits.
  std::vector<std::vector<std::size_t>> at(nodes_.size());
  for (std::size_t i = 0; i < validation.rows(); ++i) {
    int n = root_;
    while (true) {
      at[static_cast<std::size_t>(n)].push_back(i);
      const Node& node = nodes_[static_cast<std::size_t>(n)];
      if (node.leaf) break;
      n = validation.x[i][static_cast<std::size_t>(node.feature)] <
                  node.threshold
              ? node.left
              : node.right;
    }
  }
  // Bottom-up reduced-error pruning.
  std::function<double(int)> best_sse = [&](int n) -> double {
    Node& node = nodes_[static_cast<std::size_t>(n)];
    const auto& rows = at[static_cast<std::size_t>(n)];
    double leaf_sse = 0.0;
    for (std::size_t i : rows) {
      const double e = validation.y[i] - node.mean;
      leaf_sse += e * e;
    }
    if (node.leaf) return leaf_sse;
    const double child_sse = best_sse(node.left) + best_sse(node.right);
    // Collapse only when the held-out data actually prefers the leaf;
    // unseen subtrees (no validation traffic) are left alone.
    if (!rows.empty() && leaf_sse <= child_sse + 1e-12) {
      node.leaf = true;
      node.left = node.right = -1;
      return leaf_sse;
    }
    return child_sse;
  };
  best_sse(root_);
}

double CartTree::predict(std::span<const double> features) const {
  ACIC_EXPECTS(root_ >= 0, "predict() on an unfitted tree");
  int n = root_;
  while (true) {
    const Node& node = nodes_[static_cast<std::size_t>(n)];
    if (node.leaf) {
      ACIC_ENSURES(std::isfinite(node.mean), "non-finite CART prediction");
      return node.mean;
    }
    ACIC_CHECK(static_cast<std::size_t>(node.feature) < features.size(),
               "tree split on feature " << node.feature << " but only "
                                        << features.size()
                                        << " features supplied");
    n = features[static_cast<std::size_t>(node.feature)] < node.threshold
            ? node.left
            : node.right;
  }
}

void CartTree::predict_batch(std::span<const double> X, std::size_t n_rows,
                             std::span<double> out) const {
  ACIC_EXPECTS(root_ >= 0, "predict_batch() on an unfitted tree");
  flat_.predict_batch(X, n_rows, out);
}

int CartTree::node_count() const {
  int count = 0;
  std::function<void(int)> visit = [&](int n) {
    if (n < 0) return;
    ++count;
    const Node& node = nodes_[static_cast<std::size_t>(n)];
    if (!node.leaf) {
      visit(node.left);
      visit(node.right);
    }
  };
  visit(root_);
  return count;
}

int CartTree::leaf_count() const {
  int count = 0;
  std::function<void(int)> visit = [&](int n) {
    const Node& node = nodes_[static_cast<std::size_t>(n)];
    if (node.leaf) {
      ++count;
    } else {
      visit(node.left);
      visit(node.right);
    }
  };
  if (root_ >= 0) visit(root_);
  return count;
}

int CartTree::depth() const {
  std::function<int(int)> visit = [&](int n) -> int {
    const Node& node = nodes_[static_cast<std::size_t>(n)];
    if (node.leaf) return 1;
    return 1 + std::max(visit(node.left), visit(node.right));
  };
  return root_ >= 0 ? visit(root_) : 0;
}

std::vector<int> CartTree::split_counts(std::size_t features) const {
  std::vector<int> counts(features, 0);
  std::function<void(int)> visit = [&](int n) {
    const Node& node = nodes_[static_cast<std::size_t>(n)];
    if (node.leaf) return;
    if (static_cast<std::size_t>(node.feature) < features) {
      ++counts[static_cast<std::size_t>(node.feature)];
    }
    visit(node.left);
    visit(node.right);
  };
  if (root_ >= 0) visit(root_);
  return counts;
}

void CartTree::dump_node(int n, int indent,
                         const std::vector<std::string>& feature_names,
                         std::string& out) const {
  const Node& node = nodes_[static_cast<std::size_t>(n)];
  std::ostringstream os;
  os << std::string(static_cast<std::size_t>(indent) * 2, ' ');
  if (node.leaf) {
    os << "leaf: avg=" << node.mean << " std=" << node.stddev
       << " n=" << node.samples << "\n";
    out += os.str();
    return;
  }
  std::string fname =
      static_cast<std::size_t>(node.feature) < feature_names.size()
          ? feature_names[static_cast<std::size_t>(node.feature)]
          : "x" + std::to_string(node.feature);
  os << fname << " < " << node.threshold << " ? (avg=" << node.mean
     << " std=" << node.stddev << " n=" << node.samples << ")\n";
  out += os.str();
  dump_node(node.left, indent + 1, feature_names, out);
  dump_node(node.right, indent + 1, feature_names, out);
}

std::string CartTree::dump(
    const std::vector<std::string>& feature_names) const {
  std::string out;
  if (root_ >= 0) dump_node(root_, 0, feature_names, out);
  return out;
}

}  // namespace acic::ml

// The paper's learner (§4: a CART regression tree per objective).
ACIC_REGISTER_PLUGIN(cart_learner) {
  acic::plugin::LearnerPlugin p;
  p.name = "cart";
  p.description = "CART regression tree (the paper's model)";
  p.schema.version = 1;
  p.schema.knobs = {{"min_leaf", {2.0}}, {"max_depth", {16.0}}};
  p.make = [] {
    return std::unique_ptr<acic::ml::Learner>(
        std::make_unique<acic::ml::CartTree>());
  };
  acic::plugin::learners().add(std::move(p));
}
