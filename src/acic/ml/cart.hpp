// CART regression trees (Breiman, Friedman, Olshen & Stone 1984) — the
// paper's prediction model (§4.2).
//
// Trees are grown top-down: at each node the split (feature, threshold)
// minimising the summed squared error of the two children is chosen;
// growth stops on depth/size limits, and the grown tree is pruned bottom-
// up against a held-out validation set (reduced-error pruning), which is
// the over-fitting guard the paper describes.  Every node keeps the mean
// and standard deviation of its samples so the tree can be dumped in the
// paper's Figure 4 style.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "acic/ml/dataset.hpp"
#include "acic/ml/flat_tree.hpp"

namespace acic::ml {

struct CartParams {
  int max_depth = 16;
  int min_samples_leaf = 2;
  int min_samples_split = 4;
  /// Minimum relative SSE improvement for a split to be kept.
  double min_gain = 1e-9;
  /// 0 disables pruning; k >= 2 holds out every k-th sample and prunes
  /// subtrees that do not help on the held-out part.
  std::size_t prune_holdout = 5;
};

class CartTree final : public Learner {
 public:
  CartTree() = default;

  /// Grow (and prune) a tree on `data`.
  static CartTree train(const Dataset& data, const CartParams& params = {});

  /// Grow (and prune) a tree on the rows of `data` named by `rows` — an
  /// index view, so callers (forest bootstraps, cross-validation folds)
  /// never copy feature matrices.  Training on a view of rows [0, n) is
  /// bit-identical to train() on the whole dataset.
  static CartTree train_on_rows(const Dataset& data,
                                std::span<const std::size_t> rows,
                                const CartParams& params = {});

  // Learner interface.
  void fit(const Dataset& data) override { *this = train(data); }
  double predict(std::span<const double> features) const override;
  void predict_batch(std::span<const double> X, std::size_t n_rows,
                     std::span<double> out) const override;
  std::string name() const override { return "CART"; }

  /// Contiguous SoA snapshot of the pruned tree, rebuilt by every train;
  /// the batch fast path and anything that wants allocation-free repeated
  /// evaluation reads this.
  const FlatTree& flat() const { return flat_; }

  int node_count() const;
  int leaf_count() const;
  int depth() const;

  /// Figure 4-style rendering: predictor / threshold / avg / std per node.
  /// `feature_names` may be empty (indices are used).
  std::string dump(const std::vector<std::string>& feature_names = {}) const;

  /// How often each feature is used as a splitter (CART's own importance
  /// ordering — complements, not replaces, the PB ranking; §4.2).
  std::vector<int> split_counts(std::size_t features) const;

 private:
  friend class FlatTree;  // reads nodes_/root_ to build the SoA snapshot

  struct Node {
    bool leaf = true;
    int feature = -1;
    double threshold = 0.0;
    double mean = 0.0;
    double stddev = 0.0;
    std::size_t samples = 0;
    int left = -1;
    int right = -1;
  };

  int build(const Dataset& data, std::vector<std::size_t>& index,
            std::size_t begin, std::size_t end, int depth,
            const CartParams& params);
  void prune_with(const Dataset& validation);
  double subtree_sse(int node, const Dataset& data,
                     const std::vector<std::vector<std::size_t>>& routing)
      const;
  void dump_node(int node, int indent,
                 const std::vector<std::string>& feature_names,
                 std::string& out) const;

  std::vector<Node> nodes_;
  int root_ = -1;
  FlatTree flat_;
};

}  // namespace acic::ml
