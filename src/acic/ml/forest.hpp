// Bagged regression forest: an ensemble of CART trees fitted on
// bootstrap resamples, predictions averaged.  Same bias family as the
// paper's CART but with far lower variance on the sparse training
// databases ACIC bootstraps from — one of the "different machine
// learning algorithms" the architecture lets users plug in (§2, §4.2).
#pragma once

#include <cstdint>
#include <vector>

#include "acic/ml/cart.hpp"

namespace acic::ml {

struct ForestParams {
  int trees = 25;
  std::uint64_t seed = 1;
  CartParams tree_params = {};
  /// Fraction of rows each bootstrap draws (with replacement).
  double bootstrap_fraction = 1.0;
};

class ForestRegressor final : public Learner {
 public:
  explicit ForestRegressor(ForestParams params = {}) : params_(params) {
    // Individual trees do not hold out a pruning set — bagging is the
    // variance control here.
    params_.tree_params.prune_holdout = 0;
  }

  void fit(const Dataset& data) override;
  double predict(std::span<const double> features) const override;
  /// Sums each tree's flat-path batch contribution in tree order, then
  /// divides — the same addition order as per-row predict(), so the two
  /// are bit-identical.
  void predict_batch(std::span<const double> X, std::size_t n_rows,
                     std::span<double> out) const override;
  std::string name() const override { return "forest"; }

  std::size_t tree_count() const { return trees_.size(); }

  /// Ensemble spread at a query point (prediction std-dev across trees) —
  /// a cheap confidence signal for the recommendation UI.
  double prediction_stddev(std::span<const double> features) const;

 private:
  ForestParams params_;
  std::vector<CartTree> trees_;
};

}  // namespace acic::ml
