#include "acic/ml/flat_tree.hpp"

#include <algorithm>

#include "acic/common/error.hpp"
#include "acic/ml/cart.hpp"

namespace acic::ml {

FlatTree::FlatTree(const CartTree& tree) {
  ACIC_EXPECTS(tree.root_ >= 0, "cannot flatten an unfitted tree");
  const std::size_t upper = tree.nodes_.size();
  feature_.reserve(upper);
  threshold_.reserve(upper);
  right_.reserve(upper);
  flatten(tree, tree.root_, 0);
}

std::int32_t FlatTree::flatten(const CartTree& tree, int node,
                               std::size_t depth) {
  const CartTree::Node& n = tree.nodes_[static_cast<std::size_t>(node)];
  const auto my = static_cast<std::int32_t>(feature_.size());
  if (n.leaf) {
    feature_.push_back(-1);
    threshold_.push_back(n.mean);
    right_.push_back(my);
    depth_ = std::max(depth_, depth);
    return my;
  }
  feature_.push_back(n.feature);
  threshold_.push_back(n.threshold);
  right_.push_back(-1);  // patched once the left subtree's extent is known
  min_features_ = std::max(min_features_,
                           static_cast<std::size_t>(n.feature) + 1);
  flatten(tree, n.left, depth + 1);  // lands at my + 1 by construction
  right_[static_cast<std::size_t>(my)] = flatten(tree, n.right, depth + 1);
  return my;
}

double FlatTree::predict(std::span<const double> features) const {
  ACIC_EXPECTS(!empty(), "predict() on an empty flat tree");
  ACIC_EXPECTS(features.size() >= min_features_,
               "flat tree needs " << min_features_ << " features, got "
                                  << features.size());
  std::int32_t n = 0;
  std::int32_t f = feature_[0];
  while (f >= 0) {
    n = features[static_cast<std::size_t>(f)] <
                threshold_[static_cast<std::size_t>(n)]
            ? n + 1
            : right_[static_cast<std::size_t>(n)];
    f = feature_[static_cast<std::size_t>(n)];
  }
  return threshold_[static_cast<std::size_t>(n)];
}

template <bool Add>
void FlatTree::batch_impl(std::span<const double> X, std::size_t n_rows,
                          std::span<double> out) const {
  if (n_rows == 0) return;
  ACIC_EXPECTS(!empty(), "predict_batch() on an empty flat tree");
  ACIC_EXPECTS(X.size() % n_rows == 0,
               "batch of " << X.size() << " values is not divisible into "
                           << n_rows << " rows");
  const std::size_t stride = X.size() / n_rows;
  ACIC_EXPECTS(stride >= min_features_,
               "batch stride " << stride << " narrower than the "
                               << min_features_ << " features the tree uses");
  ACIC_EXPECTS(out.size() >= n_rows,
               "output span holds " << out.size() << " slots for " << n_rows
                                    << " rows");
  // One validated, allocation-free pass: the walk below is the same
  // comparison chain as predict(), hoisted out of span bounds plumbing
  // and with all four arrays resident in cache across rows.
  const std::int32_t* const feat = feature_.data();
  const double* const thr = threshold_.data();
  const std::int32_t* const right = right_.data();
  const double* row = X.data();
  for (std::size_t i = 0; i < n_rows; ++i, row += stride) {
    std::int32_t n = 0;
    std::int32_t f = feat[0];
    while (f >= 0) {
      n = row[f] < thr[n] ? n + 1 : right[n];
      f = feat[n];
    }
    if constexpr (Add) {
      out[i] += thr[n];
    } else {
      out[i] = thr[n];
    }
  }
}

void FlatTree::predict_batch(std::span<const double> X, std::size_t n_rows,
                             std::span<double> out) const {
  batch_impl<false>(X, n_rows, out);
}

void FlatTree::predict_batch_add(std::span<const double> X,
                                 std::size_t n_rows,
                                 std::span<double> out) const {
  batch_impl<true>(X, n_rows, out);
}

}  // namespace acic::ml
