#include "acic/cloud/instance.hpp"

#include "acic/common/error.hpp"

namespace acic::cloud {

const InstanceSpec& instance_spec(InstanceType type) {
  // 10 GbE = 10/8 GB/s raw; we budget ~85 % of line rate for goodput,
  // matching TCP-over-commodity-Ethernet efficiency on EC2.
  static const InstanceSpec kCc1{
      /*name=*/"cc1.4xlarge",
      /*cores=*/8,
      /*memory_gb=*/23.0,
      /*nic_bandwidth=*/1.06e9,
      /*core_speed=*/0.8,  // Nehalem-generation cores
      /*ephemeral_disks=*/2,
      /*ephemeral_disk_capacity=*/840.0 * GiB,
      /*price_per_hour=*/1.30,
  };
  static const InstanceSpec kCc2{
      /*name=*/"cc2.8xlarge",
      /*cores=*/16,
      /*memory_gb=*/60.5,
      /*nic_bandwidth=*/1.06e9,
      /*core_speed=*/1.0,  // Sandy Bridge
      /*ephemeral_disks=*/4,
      /*ephemeral_disk_capacity=*/840.0 * GiB,
      /*price_per_hour=*/2.40,
  };
  switch (type) {
    case InstanceType::kCc1_4xlarge:
      return kCc1;
    case InstanceType::kCc2_8xlarge:
      return kCc2;
  }
  throw Error("unknown instance type");
}

const char* to_string(InstanceType type) {
  return instance_spec(type).name.c_str();
}

InstanceType instance_type_from_string(const std::string& s) {
  if (s == "cc1.4xlarge") return InstanceType::kCc1_4xlarge;
  if (s == "cc2.8xlarge") return InstanceType::kCc2_8xlarge;
  throw Error("unknown instance type: " + s);
}

}  // namespace acic::cloud
