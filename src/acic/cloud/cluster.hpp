// Provisioned cluster topology: maps an IoConfig + job size onto concrete
// simulated instances, NIC resources, storage devices and prices.
//
// This is the piece that substitutes for the paper's EC2 testbed.  It
// builds the flow-network resources that make contention behave like the
// measured platform:
//   * every instance gets a transmit and a receive NIC resource
//     (10 GbE full duplex);
//   * every I/O server gets a read and a write device resource sized by
//     its RAID-0 set; EBS devices additionally transit the hosting
//     instance's NIC (the defining EBS penalty);
//   * part-time servers live on compute instances (data locality, no extra
//     bill, but shared NIC and a compute-slowdown tax); dedicated servers
//     get their own billed instances;
//   * every capacity is multiplied by seeded log-normal jitter to model
//     multi-tenancy.
#pragma once

#include <memory>
#include <vector>

#include "acic/cloud/instance.hpp"
#include "acic/cloud/ioconfig.hpp"
#include "acic/common/rng.hpp"
#include "acic/common/units.hpp"
#include "acic/simcore/flow.hpp"
#include "acic/simcore/simulator.hpp"
#include "acic/simcore/sync.hpp"

namespace acic::cloud {

class ClusterModel {
 public:
  struct Options {
    int num_processes = 16;  ///< MPI ranks in the job
    IoConfig config;
    /// Log-normal sigma for multi-tenant capacity jitter (0 = exact).
    double jitter_sigma = 0.06;
    std::uint64_t seed = 1;
    /// Fraction of an instance's compute throughput consumed by a
    /// co-located (part-time) I/O server daemon.
    double part_time_compute_tax = 0.12;
  };

  ClusterModel(sim::Simulator& sim, Options options);

  sim::Simulator& simulator() { return sim_; }
  sim::FlowNetwork& network() { return net_; }
  const Options& options() const { return options_; }
  const InstanceSpec& spec() const { return spec_; }

  int ranks() const { return options_.num_processes; }
  int ranks_per_instance() const { return spec_.cores; }
  int num_compute_instances() const { return compute_instances_; }
  /// Total billed instances (compute + dedicated I/O servers).
  int num_instances() const { return total_instances_; }
  int num_io_servers() const { return options_.config.io_servers; }

  int instance_of_rank(int rank) const;
  int instance_of_server(int server) const;
  bool rank_colocated_with_server(int rank, int server) const;

  /// Resource chain for writing `rank`'s data onto `server`'s device.
  std::vector<sim::ResourceId> write_path(int rank, int server) const;
  /// Resource chain for a write absorbed by the server's page cache: NIC
  /// hops only, no device (empty when rank and server share an instance —
  /// a memory copy).
  std::vector<sim::ResourceId> cached_write_path(int rank, int server) const;
  /// Sustainable drain rate of `server`'s write-back cache (device write
  /// bandwidth, NIC-capped for network-attached devices).
  double drain_bandwidth(int server) const;
  /// Resource chain for reading from `server`'s device into `rank`.
  std::vector<sim::ResourceId> read_path(int rank, int server) const;
  /// Resource chain for an MPI message between two ranks (empty when they
  /// share an instance — intra-node communication is effectively free at
  /// the fidelity of this model).
  std::vector<sim::ResourceId> comm_path(int from_rank, int to_rank) const;

  /// Per-request device overhead (seek/queue) at a server.
  SimTime device_latency(int server) const;
  /// One-permit queue serialising per-request overhead at each server.
  sim::Semaphore& server_op_queue(int server);
  /// Network round-trip cost per RPC between distinct instances.
  SimTime network_rpc_latency() const { return 0.2 * kMillisecond; }

  /// Wall time to execute `work` seconds-at-cc2-core-speed of computation
  /// on `rank`, accounting for core speed and part-time server tax.
  SimTime compute_time(double work, int rank) const;

  /// Paper Eq. (1): cost = time x instances x unit price.
  Money cost_of(SimTime duration) const;

  /// NIC resources (exposed for failure injection and tests).
  sim::ResourceId nic_tx(int instance) const;
  sim::ResourceId nic_rx(int instance) const;
  sim::ResourceId device_read_resource(int server) const;
  sim::ResourceId device_write_resource(int server) const;

 private:
  sim::Simulator& sim_;
  Options options_;
  const InstanceSpec& spec_;
  sim::FlowNetwork net_;
  Rng rng_;

  int compute_instances_ = 0;
  int total_instances_ = 0;

  std::vector<sim::ResourceId> nic_tx_;
  std::vector<sim::ResourceId> nic_rx_;
  std::vector<sim::ResourceId> dev_read_;
  std::vector<sim::ResourceId> dev_write_;
  std::vector<int> server_instance_;
  std::vector<SimTime> dev_latency_;
  std::vector<std::unique_ptr<sim::Semaphore>> server_queues_;
  std::vector<bool> hosts_part_time_server_;
};

}  // namespace acic::cloud
