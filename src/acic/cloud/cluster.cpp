#include "acic/cloud/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "acic/common/error.hpp"

namespace acic::cloud {

namespace {
int div_ceil(int a, int b) { return (a + b - 1) / b; }
}  // namespace

ClusterModel::ClusterModel(sim::Simulator& sim, Options options)
    : sim_(sim),
      options_(std::move(options)),
      spec_(instance_spec(options_.config.instance)),
      net_(sim),
      rng_(options_.seed) {
  ACIC_CHECK_MSG(options_.config.valid(),
                 "invalid IoConfig " << options_.config.label());
  ACIC_CHECK(options_.num_processes >= 1);

  compute_instances_ = div_ceil(options_.num_processes, spec_.cores);
  const int servers = options_.config.io_servers;
  const bool dedicated =
      options_.config.placement == Placement::kDedicated;
  total_instances_ = compute_instances_ + (dedicated ? servers : 0);

  auto jitter = [&]() {
    return options_.jitter_sigma > 0.0
               ? rng_.lognormal_jitter(options_.jitter_sigma)
               : 1.0;
  };

  // NIC resources, one pair per instance.
  nic_tx_.reserve(total_instances_);
  nic_rx_.reserve(total_instances_);
  for (int i = 0; i < total_instances_; ++i) {
    nic_tx_.push_back(net_.add_resource("nic_tx/" + std::to_string(i),
                                        spec_.nic_bandwidth * jitter()));
    nic_rx_.push_back(net_.add_resource("nic_rx/" + std::to_string(i),
                                        spec_.nic_bandwidth * jitter()));
  }

  // Server placement: part-time servers round-robin over compute
  // instances; dedicated servers get the extra instances at the end.
  hosts_part_time_server_.assign(static_cast<std::size_t>(total_instances_),
                                 false);
  server_instance_.reserve(servers);
  for (int s = 0; s < servers; ++s) {
    int inst = 0;
    if (dedicated) {
      inst = compute_instances_ + s;
    } else {
      inst = s % compute_instances_;
      hosts_part_time_server_[static_cast<std::size_t>(inst)] = true;
    }
    server_instance_.push_back(inst);
  }

  // Storage devices per server.
  const auto& dev = storage::device_spec(options_.config.device);
  const int members = options_.config.effective_raid_members();
  dev_read_.reserve(servers);
  dev_write_.reserve(servers);
  for (int s = 0; s < servers; ++s) {
    dev_read_.push_back(net_.add_resource(
        "dev_rd/" + std::to_string(s),
        storage::raid0_bandwidth(dev, members, /*for_write=*/false) *
            jitter()));
    dev_write_.push_back(net_.add_resource(
        "dev_wr/" + std::to_string(s),
        storage::raid0_bandwidth(dev, members, /*for_write=*/true) *
            jitter()));
    dev_latency_.push_back(storage::raid0_latency(dev, members) * jitter());
    server_queues_.push_back(std::make_unique<sim::Semaphore>(sim_, 1));
  }
}

int ClusterModel::instance_of_rank(int rank) const {
  ACIC_CHECK(rank >= 0 && rank < options_.num_processes);
  return rank / spec_.cores;
}

int ClusterModel::instance_of_server(int server) const {
  ACIC_CHECK(server >= 0 &&
             server < static_cast<int>(server_instance_.size()));
  return server_instance_[static_cast<std::size_t>(server)];
}

bool ClusterModel::rank_colocated_with_server(int rank, int server) const {
  return instance_of_rank(rank) == instance_of_server(server);
}

std::vector<sim::ResourceId> ClusterModel::write_path(int rank,
                                                      int server) const {
  const int ri = instance_of_rank(rank);
  const int si = instance_of_server(server);
  const bool ebs = storage::device_spec(options_.config.device)
                       .network_attached;
  std::vector<sim::ResourceId> path;
  if (ri != si) {
    path.push_back(nic_tx_[static_cast<std::size_t>(ri)]);
    path.push_back(nic_rx_[static_cast<std::size_t>(si)]);
  }
  if (ebs) {
    // The server forwards the payload to the EBS backend over its NIC.
    path.push_back(nic_tx_[static_cast<std::size_t>(si)]);
  }
  path.push_back(dev_write_[static_cast<std::size_t>(server)]);
  return path;
}

std::vector<sim::ResourceId> ClusterModel::cached_write_path(
    int rank, int server) const {
  const int ri = instance_of_rank(rank);
  const int si = instance_of_server(server);
  if (ri == si) return {};
  return {nic_tx_[static_cast<std::size_t>(ri)],
          nic_rx_[static_cast<std::size_t>(si)]};
}

double ClusterModel::drain_bandwidth(int server) const {
  const double dev =
      net_.capacity(device_write_resource(server));
  if (storage::device_spec(options_.config.device).network_attached) {
    const int si = instance_of_server(server);
    return std::min(dev, net_.capacity(nic_tx_[static_cast<std::size_t>(si)]));
  }
  return dev;
}

std::vector<sim::ResourceId> ClusterModel::read_path(int rank,
                                                     int server) const {
  const int ri = instance_of_rank(rank);
  const int si = instance_of_server(server);
  const bool ebs = storage::device_spec(options_.config.device)
                       .network_attached;
  std::vector<sim::ResourceId> path;
  path.push_back(dev_read_[static_cast<std::size_t>(server)]);
  if (ebs) {
    // Payload arrives from the EBS backend through the server's NIC.
    path.push_back(nic_rx_[static_cast<std::size_t>(si)]);
  }
  if (ri != si) {
    path.push_back(nic_tx_[static_cast<std::size_t>(si)]);
    path.push_back(nic_rx_[static_cast<std::size_t>(ri)]);
  }
  return path;
}

std::vector<sim::ResourceId> ClusterModel::comm_path(int from_rank,
                                                     int to_rank) const {
  const int fi = instance_of_rank(from_rank);
  const int ti = instance_of_rank(to_rank);
  if (fi == ti) return {};
  return {nic_tx_[static_cast<std::size_t>(fi)],
          nic_rx_[static_cast<std::size_t>(ti)]};
}

SimTime ClusterModel::device_latency(int server) const {
  ACIC_CHECK(server >= 0 && server < static_cast<int>(dev_latency_.size()));
  return dev_latency_[static_cast<std::size_t>(server)];
}

sim::Semaphore& ClusterModel::server_op_queue(int server) {
  ACIC_CHECK(server >= 0 &&
             server < static_cast<int>(server_queues_.size()));
  return *server_queues_[static_cast<std::size_t>(server)];
}

SimTime ClusterModel::compute_time(double work, int rank) const {
  const int inst = instance_of_rank(rank);
  double slowdown = 1.0;
  if (hosts_part_time_server_[static_cast<std::size_t>(inst)]) {
    slowdown += options_.part_time_compute_tax;
  }
  return work / spec_.core_speed * slowdown;
}

Money ClusterModel::cost_of(SimTime duration) const {
  return duration * static_cast<double>(total_instances_) *
         per_hour(spec_.price_per_hour);
}

sim::ResourceId ClusterModel::nic_tx(int instance) const {
  ACIC_CHECK(instance >= 0 && instance < total_instances_);
  return nic_tx_[static_cast<std::size_t>(instance)];
}

sim::ResourceId ClusterModel::nic_rx(int instance) const {
  ACIC_CHECK(instance >= 0 && instance < total_instances_);
  return nic_rx_[static_cast<std::size_t>(instance)];
}

sim::ResourceId ClusterModel::device_read_resource(int server) const {
  ACIC_CHECK(server >= 0 && server < static_cast<int>(dev_read_.size()));
  return dev_read_[static_cast<std::size_t>(server)];
}

sim::ResourceId ClusterModel::device_write_resource(int server) const {
  ACIC_CHECK(server >= 0 && server < static_cast<int>(dev_write_.size()));
  return dev_write_[static_cast<std::size_t>(server)];
}

}  // namespace acic::cloud
