#include "acic/cloud/failure.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "acic/common/error.hpp"
#include "acic/obs/metrics.hpp"
#include "acic/plugin/substrates.hpp"

namespace acic::cloud {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kOutage:
      return "outage";
    case FaultKind::kBrownout:
      return "brownout";
    case FaultKind::kStraggler:
      return "straggler";
    case FaultKind::kPermanentLoss:
      return "permanent_loss";
    case FaultKind::kPreemption:
      return "preemption";
  }
  return "unknown";
}

bool FaultModel::valid() const {
  // The outage-shaping probabilities only ever apply to scheduled
  // outages: setting them without a nonzero outage rate is a config
  // error (silently inert knobs hide typos), not a no-op.
  if ((correlated_outage_probability > 0.0 ||
       permanent_loss_probability > 0.0) &&
      outages_per_hour <= 0.0) {
    return false;
  }
  return outages_per_hour >= 0.0 && brownouts_per_hour >= 0.0 &&
         stragglers_per_hour >= 0.0 && brownout_fraction >= 0.0 &&
         brownout_fraction < 1.0 && straggler_factor > 0.0 &&
         straggler_factor < 1.0 && correlated_outage_probability >= 0.0 &&
         correlated_outage_probability <= 1.0 &&
         permanent_loss_probability >= 0.0 &&
         permanent_loss_probability <= 1.0 && min_duration > 0.0 &&
         max_duration >= min_duration && preemptions_per_hour >= 0.0 &&
         preemption_notice >= 0.0;
}

FailureInjector::~FailureInjector() {
  if (faults_injected_ == 0 && events_cancelled_ == 0) return;
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("cloud.faults.injected")
      .add(static_cast<double>(faults_injected_));
  registry.counter("cloud.fault_events_cancelled")
      .add(static_cast<double>(events_cancelled_));
}

std::vector<sim::ResourceId> FailureInjector::resources_for(
    const FaultSpec& spec) const {
  // Stragglers model a slow disk, so they always land device-side.
  const bool nic = spec.hit_nic && spec.kind != FaultKind::kStraggler;
  if (nic) {
    const int inst = cluster_.instance_of_server(spec.server);
    return {cluster_.nic_tx(inst), cluster_.nic_rx(inst)};
  }
  return {cluster_.device_read_resource(spec.server),
          cluster_.device_write_resource(spec.server)};
}

std::vector<sim::ResourceId> FailureInjector::server_resources(
    int server) const {
  // A reclamation takes the whole instance: both NIC directions plus the
  // storage device, so neither retries nor cached reads sneak through.
  const int inst = cluster_.instance_of_server(server);
  return {cluster_.nic_tx(inst), cluster_.nic_rx(inst),
          cluster_.device_read_resource(server),
          cluster_.device_write_resource(server)};
}

void FailureInjector::set_preemption_hooks(PreemptionHooks hooks) {
  hooks_ = std::move(hooks);
}

void FailureInjector::track(sim::EventId event, SimTime at) {
  pending_.emplace_back(event, at);
}

void FailureInjector::inject(const FaultSpec& spec) {
  ACIC_CHECK_MSG(spec.server >= 0 && spec.server < cluster_.num_io_servers(),
                 "fault targets unknown server " << spec.server);
  ACIC_CHECK(spec.at >= cluster_.simulator().now());
  if (spec.kind != FaultKind::kPermanentLoss &&
      spec.kind != FaultKind::kPreemption) {
    ACIC_CHECK(spec.duration > 0.0);
  }
  if (spec.kind == FaultKind::kBrownout ||
      spec.kind == FaultKind::kStraggler) {
    ACIC_CHECK_MSG(spec.fraction > 0.0 && spec.fraction < 1.0,
                   "degradation fraction " << spec.fraction
                                           << " outside (0, 1)");
  }

  auto& sim = cluster_.simulator();
  if (spec.kind == FaultKind::kPreemption) {
    // One notice and one reclaim event per fault (not per resource): the
    // hooks see a server, and the reclaim zeroes all of its resources in
    // a single step.
    ACIC_CHECK(spec.notice >= 0.0);
    const int server = spec.server;
    const SimTime reclaim_at = spec.at + spec.notice;
    track(sim.at(spec.at,
                 [this, server, reclaim_at] {
                   if (hooks_.on_notice) hooks_.on_notice(server, reclaim_at);
                 }),
          spec.at);
    track(sim.at(reclaim_at, [this, server] { reclaim_server(server); }),
          reclaim_at);
    ++scheduled_;
    ++faults_injected_;
    return;
  }
  for (auto r : resources_for(spec)) {
    switch (spec.kind) {
      case FaultKind::kOutage:
        track(sim.at(spec.at, [this, r] { begin_outage(r); }), spec.at);
        track(sim.at(spec.at + spec.duration, [this, r] { end_outage(r); }),
              spec.at + spec.duration);
        break;
      case FaultKind::kBrownout:
      case FaultKind::kStraggler: {
        const double f = spec.fraction;
        track(sim.at(spec.at, [this, r, f] { begin_degradation(r, f); }),
              spec.at);
        track(
            sim.at(spec.at + spec.duration,
                   [this, r, f] { end_degradation(r, f); }),
            spec.at + spec.duration);
        break;
      }
      case FaultKind::kPermanentLoss:
        track(sim.at(spec.at, [this, r] { mark_permanent(r); }), spec.at);
        break;
      case FaultKind::kPreemption:
        break;  // handled above (whole-server, not per-resource)
    }
  }
  ++scheduled_;
  ++faults_injected_;
}

void FailureInjector::inject(Target target, int server, SimTime at,
                             SimTime duration) {
  FaultSpec spec;
  spec.kind = FaultKind::kOutage;
  spec.server = server;
  spec.at = at;
  spec.duration = duration;
  spec.hit_nic = target == Target::kServerNic;
  inject(spec);
}

void FailureInjector::inject_correlated(SimTime at, SimTime duration,
                                        bool hit_nic) {
  for (int server = 0; server < cluster_.num_io_servers(); ++server) {
    FaultSpec spec;
    spec.kind = FaultKind::kOutage;
    spec.server = server;
    spec.at = at;
    spec.duration = duration;
    spec.hit_nic = hit_nic;
    inject(spec);
  }
}

void FailureInjector::inject_random(Rng& rng, const FaultModel& model,
                                    SimTime horizon) {
  ACIC_CHECK_MSG(model.valid(), "invalid fault model");
  if (!model.any()) return;
  const SimTime start = cluster_.simulator().now();
  const auto servers = static_cast<std::uint64_t>(
      std::max(1, cluster_.num_io_servers()));

  // Each fault class is an independent Poisson stream (exponential
  // inter-arrival gaps).  Draw order within a stream is fixed —
  // gap, duration, side, server, [escalation] — so a given Rng state
  // always yields the same schedule.
  const auto schedule_stream = [&](double per_hour, auto&& emit) {
    if (per_hour <= 0.0) return;
    const double mean_gap = kHour / per_hour;
    SimTime t = start;
    while (true) {
      t += -mean_gap * std::log(1.0 - rng.uniform());
      if (t >= horizon) break;
      emit(t);
    }
  };

  schedule_stream(model.outages_per_hour, [&](SimTime t) {
    const SimTime duration =
        rng.uniform(model.min_duration, model.max_duration);
    const bool hit_nic = rng.uniform() < 0.5;
    if (model.correlated_outage_probability > 0.0 &&
        rng.uniform() < model.correlated_outage_probability) {
      inject_correlated(t, duration, hit_nic);
      return;
    }
    FaultSpec spec;
    spec.server = static_cast<int>(rng.uniform_index(servers));
    spec.at = t;
    spec.duration = duration;
    spec.hit_nic = hit_nic;
    if (model.permanent_loss_probability > 0.0 &&
        rng.uniform() < model.permanent_loss_probability) {
      spec.kind = FaultKind::kPermanentLoss;
    }
    inject(spec);
  });

  schedule_stream(model.brownouts_per_hour, [&](SimTime t) {
    FaultSpec spec;
    spec.kind = FaultKind::kBrownout;
    spec.duration = rng.uniform(model.min_duration, model.max_duration);
    spec.hit_nic = rng.uniform() < 0.5;
    spec.server = static_cast<int>(rng.uniform_index(servers));
    spec.at = t;
    spec.fraction = model.brownout_fraction;
    inject(spec);
  });

  schedule_stream(model.stragglers_per_hour, [&](SimTime t) {
    FaultSpec spec;
    spec.kind = FaultKind::kStraggler;
    // Slow disks linger: straggler windows are drawn from a 4x-stretched
    // range so they dominate a request's lifetime instead of flickering.
    spec.duration =
        rng.uniform(model.min_duration, model.max_duration) * 4.0;
    spec.server = static_cast<int>(rng.uniform_index(servers));
    spec.at = t;
    spec.fraction = model.straggler_factor;
    inject(spec);
  });

  // The preemption stream is appended *after* the legacy streams so every
  // pre-preemption seeded schedule stays bit-identical.  The model's rate
  // is per server (each I/O server is its own spot instance), so the
  // aggregate stream scales with the server count — a 4-server array is
  // four times as exposed as the NFS box, which is exactly the trade-off
  // the restart-aware objective has to weigh.
  schedule_stream(
      model.preemptions_per_hour * static_cast<double>(servers),
      [&](SimTime t) {
        FaultSpec spec;
        spec.kind = FaultKind::kPreemption;
        spec.server = static_cast<int>(rng.uniform_index(servers));
        spec.at = t;
        spec.notice = model.preemption_notice;
        inject(spec);
      });
}

void FailureInjector::inject_random(Rng& rng, double outages_per_hour,
                                    SimTime horizon, SimTime min_duration,
                                    SimTime max_duration) {
  ACIC_CHECK(outages_per_hour >= 0.0);
  FaultModel model;
  model.outages_per_hour = outages_per_hour;
  model.min_duration = min_duration;
  model.max_duration = max_duration;
  inject_random(rng, model, horizon);
}

std::size_t FailureInjector::cancel_pending() {
  auto& sim = cluster_.simulator();
  const SimTime now = sim.now();
  std::size_t cancelled = 0;
  for (const auto& [event, at] : pending_) {
    // Events strictly in the past have fired; same-timestamp ones may
    // not have, so >= keeps any straggling restore from resurrecting a
    // fault after we force-restore below.
    if (at >= now) {
      sim.cancel(event);
      ++cancelled;
    }
  }
  pending_.clear();
  // Force still-faulted resources back to their exact originals so the
  // caller's post-run accounting sees pre-fault capacities.
  for (auto it = active_.begin(); it != active_.end();
       it = active_.erase(it)) {
    cluster_.network().set_capacity(it->first, it->second.original);
  }
  events_cancelled_ += cancelled;
  return cancelled;
}

FailureInjector::ResourceState& FailureInjector::state_of(
    sim::ResourceId id) {
  auto it = active_.find(id);
  if (it == active_.end()) {
    ResourceState st;
    st.original = cluster_.network().capacity(id);
    it = active_.emplace(id, st).first;
  }
  return it->second;
}

void FailureInjector::begin_outage(sim::ResourceId id) {
  ++state_of(id).outages;
  apply(id);
}

void FailureInjector::end_outage(sim::ResourceId id) {
  auto it = active_.find(id);
  ACIC_CHECK(it != active_.end() && it->second.outages > 0);
  --it->second.outages;
  apply(id);
}

void FailureInjector::begin_degradation(sim::ResourceId id, double fraction) {
  state_of(id).degradations.push_back(fraction);
  apply(id);
}

void FailureInjector::end_degradation(sim::ResourceId id, double fraction) {
  auto it = active_.find(id);
  ACIC_CHECK(it != active_.end());
  auto& degs = it->second.degradations;
  const auto pos = std::find(degs.begin(), degs.end(), fraction);
  ACIC_CHECK(pos != degs.end());
  degs.erase(pos);
  apply(id);
}

void FailureInjector::mark_permanent(sim::ResourceId id) {
  state_of(id).permanent = true;
  apply(id);
}

void FailureInjector::reclaim_server(int server) {
  for (auto r : server_resources(server)) {
    ++state_of(r).preempted;
    apply(r);
  }
  if (hooks_.on_reclaim) hooks_.on_reclaim(server);
}

void FailureInjector::restore_server(int server) {
  for (auto r : server_resources(server)) {
    const auto it = active_.find(r);
    // cancel_pending() (job already over) may have force-restored the
    // resource; a late restore must then stay a no-op.
    if (it == active_.end() || it->second.preempted == 0) continue;
    --it->second.preempted;
    apply(r);
  }
}

void FailureInjector::apply(sim::ResourceId id) {
  const auto it = active_.find(id);
  ACIC_CHECK(it != active_.end());
  const ResourceState& st = it->second;
  // Always derive from `original` (never scale the live value): overlap
  // in any order restores the exact pre-fault capacity, jitter included.
  double effective = 0.0;
  if (!st.permanent && st.outages == 0 && st.preempted == 0) {
    effective = st.original;
    for (double f : st.degradations) effective *= f;
  }
  cluster_.network().set_capacity(id, effective);
  if (!st.permanent && st.outages == 0 && st.preempted == 0 &&
      st.degradations.empty()) {
    active_.erase(it);  // fully healed: forget, original restored exactly
  }
}

}  // namespace acic::cloud

// Named chaos presets.  `simulate chaos=<name>` and the CLI --chaos flag
// resolve these; explicit failure knobs still override field by field.
namespace {

acic::cloud::FaultModel preset_base() { return acic::cloud::FaultModel{}; }

}  // namespace

ACIC_REGISTER_PLUGIN(fault_none) {
  acic::plugin::FaultModelPlugin p;
  p.name = "none";
  p.description = "fault-free cloud (all rates zero)";
  p.schema.version = 1;
  p.model = preset_base();
  acic::plugin::fault_models().add(std::move(p));
}

ACIC_REGISTER_PLUGIN(fault_outages) {
  acic::plugin::FaultModelPlugin p;
  p.name = "outages";
  p.description = "hard server outages, full recovery";
  p.schema.version = 1;
  p.schema.knobs = {{"outages_per_hour", {4.0}}};
  p.model = preset_base();
  p.model.outages_per_hour = 4.0;
  acic::plugin::fault_models().add(std::move(p));
}

ACIC_REGISTER_PLUGIN(fault_brownouts) {
  acic::plugin::FaultModelPlugin p;
  p.name = "brownouts";
  p.description = "partial capacity loss episodes";
  p.schema.version = 1;
  p.schema.knobs = {{"brownouts_per_hour", {6.0}},
                    {"brownout_fraction", {0.2}}};
  p.model = preset_base();
  p.model.brownouts_per_hour = 6.0;
  p.model.brownout_fraction = 0.2;
  acic::plugin::fault_models().add(std::move(p));
}

ACIC_REGISTER_PLUGIN(fault_stragglers) {
  acic::plugin::FaultModelPlugin p;
  p.name = "stragglers";
  p.description = "slow-node episodes (noisy neighbours)";
  p.schema.version = 1;
  p.schema.knobs = {{"stragglers_per_hour", {3.0}},
                    {"straggler_factor", {0.35}}};
  p.model = preset_base();
  p.model.stragglers_per_hour = 3.0;
  p.model.straggler_factor = 0.35;
  acic::plugin::fault_models().add(std::move(p));
}

ACIC_REGISTER_PLUGIN(fault_lossy_az) {
  acic::plugin::FaultModelPlugin p;
  p.name = "lossy-az";
  p.description = "correlated outages with occasional permanent loss";
  p.schema.version = 1;
  p.schema.knobs = {{"outages_per_hour", {2.0}},
                    {"correlated_outage_probability", {0.5}},
                    {"permanent_loss_probability", {0.1}}};
  p.model = preset_base();
  p.model.outages_per_hour = 2.0;
  p.model.correlated_outage_probability = 0.5;
  p.model.permanent_loss_probability = 0.1;
  acic::plugin::fault_models().add(std::move(p));
}

ACIC_REGISTER_PLUGIN(fault_spot_preempt) {
  acic::plugin::FaultModelPlugin p;
  p.name = "spot-preempt";
  p.description =
      "spot reclamations: notice, whole-server loss, replacement restart";
  p.schema.version = 2;
  p.schema.knobs = {{"preemptions_per_hour", {1.0}},
                    {"preemption_notice", {120.0}}};
  p.model = preset_base();
  p.model.preemptions_per_hour = 1.0;  // per server-hour
  p.model.preemption_notice = 120.0;
  acic::plugin::fault_models().add(std::move(p));
}
