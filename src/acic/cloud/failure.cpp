#include "acic/cloud/failure.hpp"

#include <cmath>
#include <vector>

#include "acic/common/error.hpp"

namespace acic::cloud {

void FailureInjector::inject(Target target, int server, SimTime at,
                             SimTime duration) {
  ACIC_CHECK(duration > 0.0);
  std::vector<sim::ResourceId> resources;
  if (target == Target::kServerNic) {
    const int inst = cluster_.instance_of_server(server);
    resources = {cluster_.nic_tx(inst), cluster_.nic_rx(inst)};
  } else {
    resources = {cluster_.device_read_resource(server),
                 cluster_.device_write_resource(server)};
  }
  auto& sim = cluster_.simulator();
  for (auto r : resources) {
    sim.at(at, [this, r] { suppress(r); });
    sim.at(at + duration, [this, r] { restore(r); });
  }
  ++scheduled_;
}

void FailureInjector::inject_random(Rng& rng, double outages_per_hour,
                                    SimTime horizon, SimTime min_duration,
                                    SimTime max_duration) {
  ACIC_CHECK(outages_per_hour >= 0.0);
  if (outages_per_hour == 0.0) return;
  const double mean_gap = kHour / outages_per_hour;
  SimTime t = cluster_.simulator().now();
  while (true) {
    // Exponential inter-arrival times.
    t += -mean_gap * std::log(1.0 - rng.uniform());
    if (t >= horizon) break;
    const int server = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(
            std::max(1, cluster_.num_io_servers()))));
    const Target target =
        rng.uniform() < 0.5 ? Target::kServerNic : Target::kServerDevice;
    inject(target, server, t, rng.uniform(min_duration, max_duration));
  }
}

void FailureInjector::suppress(sim::ResourceId id) {
  auto& entry = active_[id];
  if (entry.second == 0) {
    entry.first = cluster_.network().capacity(id);
    cluster_.network().set_capacity(id, 0.0);
  }
  ++entry.second;
}

void FailureInjector::restore(sim::ResourceId id) {
  auto it = active_.find(id);
  ACIC_CHECK(it != active_.end() && it->second.second > 0);
  --it->second.second;
  if (it->second.second == 0) {
    cluster_.network().set_capacity(id, it->second.first);
    active_.erase(it);
  }
}

}  // namespace acic::cloud
