#include "acic/cloud/pricing.hpp"

#include "acic/storage/device.hpp"

namespace acic::cloud {

Money DetailedPricing::ebs_surcharge(const ClusterModel& cluster,
                                     SimTime duration,
                                     std::uint64_t io_operations) const {
  const auto& cfg = cluster.options().config;
  if (!storage::device_spec(cfg.device).network_attached) return 0.0;
  const double volumes =
      static_cast<double>(cluster.num_io_servers()) *
      static_cast<double>(cfg.effective_raid_members());
  const double volume_hours = volumes * duration / kHour;
  const Money capacity_charge = volume_hours *
                                (ebs_volume_size / GiB) * ebs_gb_month /
                                hours_per_month;
  const Money io_charge = static_cast<double>(io_operations) / 1e6 *
                          ebs_per_million_ios;
  return capacity_charge + io_charge;
}

Money DetailedPricing::run_cost(const ClusterModel& cluster,
                                SimTime duration,
                                std::uint64_t io_operations) const {
  return cluster.cost_of(duration) +
         ebs_surcharge(cluster, duration, io_operations);
}

}  // namespace acic::cloud
