#include "acic/cloud/pricing.hpp"

#include <utility>

#include "acic/common/error.hpp"
#include "acic/plugin/substrates.hpp"
#include "acic/storage/device.hpp"

namespace acic::cloud {

Money DetailedPricing::ebs_surcharge(const ClusterModel& cluster,
                                     SimTime duration,
                                     std::uint64_t io_operations) const {
  const auto& cfg = cluster.options().config;
  if (!storage::device_spec(cfg.device).network_attached) return 0.0;
  const double volumes =
      static_cast<double>(cluster.num_io_servers()) *
      static_cast<double>(cfg.effective_raid_members());
  const double volume_hours = volumes * duration / kHour;
  const Money capacity_charge = volume_hours *
                                (ebs_volume_size / GiB) * ebs_gb_month /
                                hours_per_month;
  const Money io_charge = static_cast<double>(io_operations) / 1e6 *
                          ebs_per_million_ios;
  return capacity_charge + io_charge;
}

Money DetailedPricing::run_cost(const ClusterModel& cluster,
                                SimTime duration,
                                std::uint64_t io_operations) const {
  return cluster.cost_of(duration) +
         ebs_surcharge(cluster, duration, io_operations);
}

Money SpotPricing::run_cost(const ClusterModel& cluster, SimTime duration,
                            std::uint64_t restarts) const {
  return cluster.cost_of(duration) * price_factor +
         static_cast<double>(restarts) * per_restart_cost;
}

}  // namespace acic::cloud

// The paper's Eq. (1): cost = time x instances x unit price.
ACIC_REGISTER_PLUGIN(eq1_pricing) {
  acic::plugin::PricingPlugin p;
  p.name = "eq1";
  p.description = "Eq. (1) instance-hours only (the paper's model)";
  p.schema.version = 1;
  p.cost = [](const acic::plugin::PricingContext& ctx) {
    ACIC_CHECK_MSG(ctx.cluster != nullptr, "pricing needs a cluster");
    return ctx.cluster->cost_of(ctx.duration);
  };
  acic::plugin::pricings().add(std::move(p));
}

// 2013 EBS billing refinement: Eq. (1) plus volume-hour and per-I/O
// charges.  Uses the caller's DetailedPricing rates when supplied,
// otherwise the defaults above.
ACIC_REGISTER_PLUGIN(detailed_pricing) {
  acic::plugin::PricingPlugin p;
  p.name = "detailed";
  p.description = "Eq. (1) plus EBS volume-hour and per-I/O charges";
  p.schema.version = 1;
  p.schema.knobs = {{"ebs_gb_month", {0.10}},
                    {"ebs_per_million_ios", {0.10}},
                    {"ebs_volume_size", {200.0 * acic::GiB}},
                    {"hours_per_month", {720.0}}};
  p.cost = [](const acic::plugin::PricingContext& ctx) {
    ACIC_CHECK_MSG(ctx.cluster != nullptr, "pricing needs a cluster");
    const acic::cloud::DetailedPricing defaults;
    const auto& rates = ctx.detailed != nullptr ? *ctx.detailed : defaults;
    return rates.run_cost(*ctx.cluster, ctx.duration, ctx.io_operations);
  };
  acic::plugin::pricings().add(std::move(p));
}

// Spot-market billing: discounted instance-hours plus per-restart
// reacquisition fees.  Uses the caller's SpotPricing terms when supplied,
// otherwise the defaults above.
ACIC_REGISTER_PLUGIN(spot_pricing) {
  acic::plugin::PricingPlugin p;
  p.name = "spot";
  p.description =
      "spot-market Eq. (1): discounted rate plus per-restart fees";
  p.schema.version = 1;
  p.schema.knobs = {{"price_factor", {0.35}}, {"per_restart_cost", {0.08}}};
  p.cost = [](const acic::plugin::PricingContext& ctx) {
    ACIC_CHECK_MSG(ctx.cluster != nullptr, "pricing needs a cluster");
    const acic::cloud::SpotPricing defaults;
    const auto& terms = ctx.spot != nullptr ? *ctx.spot : defaults;
    return terms.run_cost(*ctx.cluster, ctx.duration, ctx.restarts);
  };
  acic::plugin::pricings().add(std::move(p));
}
