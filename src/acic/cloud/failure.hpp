// Transient failure injection (paper §5.6 observation 5: lost connections
// to I/O servers happen on real cloud platforms).
//
// An outage zeroes the capacity of a server's NIC or device resources for
// a period; in-flight flows stall and resume when capacity is restored —
// clients observe a hung connection rather than an error, which matches
// the stalled-then-recovered behaviour the paper reports.
#pragma once

#include <map>

#include "acic/cloud/cluster.hpp"
#include "acic/common/rng.hpp"
#include "acic/common/units.hpp"

namespace acic::cloud {

class FailureInjector {
 public:
  explicit FailureInjector(ClusterModel& cluster) : cluster_(cluster) {}

  enum class Target {
    kServerNic,     ///< sever the server instance's network connectivity
    kServerDevice,  ///< stall the server's storage device
  };

  /// Schedule one outage of `duration` seconds starting at `at`.
  void inject(Target target, int server, SimTime at, SimTime duration);

  /// Schedule Poisson-ish random outages until `horizon` at the given mean
  /// rate; each outage picks a random server/target and lasts
  /// [min_duration, max_duration).
  void inject_random(Rng& rng, double outages_per_hour, SimTime horizon,
                     SimTime min_duration = 5.0, SimTime max_duration = 30.0);

  int scheduled_outages() const { return scheduled_; }

 private:
  void suppress(sim::ResourceId id);
  void restore(sim::ResourceId id);

  ClusterModel& cluster_;
  int scheduled_ = 0;
  /// resource -> (original capacity, active outage nesting count)
  std::map<sim::ResourceId, std::pair<double, int>> active_;
};

}  // namespace acic::cloud
