// Fault injection (paper §5.6 observation 5: lost connections to I/O
// servers happen on real cloud platforms).
//
// The vocabulary goes beyond the binary outage:
//   * outage      — capacity zeroed for a window; in-flight flows stall
//                   and resume on restore (a hung connection, not an
//                   error, matching the paper's observed behaviour).
//   * brownout    — capacity degraded to a fraction for a window
//                   (multi-tenant interference, throttled EBS volume).
//   * straggler   — a slow-disk server: its *device* resources run at a
//                   fraction for a (typically long) window.
//   * permanent loss — a server never comes back; only clients with
//                   deadlines + retries make progress past it.
//   * preemption  — a spot-instance reclamation: a seeded notice event
//                   fires first (checkpoint managers react to it), then
//                   the whole server — NIC *and* device — goes dark
//                   until someone acquires a replacement and calls
//                   restore_server().  Without a restore it behaves
//                   like a whole-server permanent loss.
// Correlated outages hit every server in one window (rack/AZ events).
//
// All schedules are driven by an explicitly seeded Rng, so chaos runs are
// reproducible bit-for-bit.  Effective capacity is always recomputed from
// the resource's *original* capacity (never incrementally), so arbitrarily
// overlapped faults restore the exact pre-fault value — including the
// jittered capacities ClusterModel sets up at construction.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "acic/cloud/cluster.hpp"
#include "acic/common/rng.hpp"
#include "acic/common/units.hpp"

namespace acic::cloud {

enum class FaultKind {
  kOutage,         ///< capacity -> 0 for the window
  kBrownout,       ///< capacity -> original * fraction for the window
  kStraggler,      ///< device capacity -> original * fraction (slow disk)
  kPermanentLoss,  ///< capacity -> 0, never restored
  kPreemption,     ///< notice, then whole-server loss until restore_server()
};

const char* to_string(FaultKind kind);

/// One scheduled fault.
struct FaultSpec {
  FaultKind kind = FaultKind::kOutage;
  int server = 0;
  SimTime at = 0.0;
  /// Window length; ignored for kPermanentLoss.
  SimTime duration = 10.0;
  /// Remaining capacity fraction for kBrownout / kStraggler.
  double fraction = 0.2;
  /// Hit the NIC (true) or the storage device (false).  Stragglers are
  /// always device-side regardless of this flag; preemptions always take
  /// the whole server (NIC and device).
  bool hit_nic = false;
  /// kPreemption only: seconds between the reclamation notice (`at`) and
  /// the actual loss at `at + notice`.
  SimTime notice = 120.0;
};

/// Rates and shapes for seeded random fault schedules.  All rates are
/// mean events/hour (exponential inter-arrival); `any()` is false for the
/// all-zero default, which keeps reliable runs injector-free.
struct FaultModel {
  double outages_per_hour = 0.0;
  double brownouts_per_hour = 0.0;
  double brownout_fraction = 0.2;
  double stragglers_per_hour = 0.0;
  double straggler_factor = 0.35;
  /// Probability that a scheduled outage is correlated (hits every
  /// server at once) instead of a single server.
  double correlated_outage_probability = 0.0;
  /// Probability that a scheduled outage is a permanent server loss.
  double permanent_loss_probability = 0.0;
  SimTime min_duration = 5.0;
  SimTime max_duration = 30.0;
  /// Spot-instance reclamations per *server*-hour (each I/O server is an
  /// independent spot instance, so a config's exposure scales with its
  /// server count).
  double preemptions_per_hour = 0.0;
  /// Seconds of warning between a reclamation notice and the loss.
  SimTime preemption_notice = 120.0;

  bool any() const {
    return outages_per_hour > 0.0 || brownouts_per_hour > 0.0 ||
           stragglers_per_hour > 0.0 || preemptions_per_hour > 0.0;
  }
  bool valid() const;
};

/// Observer seams for kPreemption faults.  `on_notice` fires at the
/// reclamation notice (with the scheduled loss time), `on_reclaim` right
/// after the server's resources were zeroed — the checkpoint/restart
/// machinery hangs off these.
struct PreemptionHooks {
  std::function<void(int server, SimTime reclaim_at)> on_notice;
  std::function<void(int server)> on_reclaim;
};

class FailureInjector {
 public:
  explicit FailureInjector(ClusterModel& cluster) : cluster_(cluster) {}
  ~FailureInjector();

  enum class Target {
    kServerNic,     ///< sever the server instance's network connectivity
    kServerDevice,  ///< stall the server's storage device
  };

  /// Schedule one fault.
  void inject(const FaultSpec& spec);

  /// Legacy binary outage of `duration` seconds starting at `at`.
  void inject(Target target, int server, SimTime at, SimTime duration);

  /// Correlated outage: every I/O server loses the chosen side for one
  /// shared window (a rack/AZ-level event).
  void inject_correlated(SimTime at, SimTime duration, bool hit_nic = false);

  /// Schedule a seeded random fault mix until `horizon` following
  /// `model`'s rates.  Deterministic for a given Rng state.
  void inject_random(Rng& rng, const FaultModel& model, SimTime horizon);

  /// Legacy signature: outages only, at the given mean rate.
  void inject_random(Rng& rng, double outages_per_hour, SimTime horizon,
                     SimTime min_duration = 5.0, SimTime max_duration = 30.0);

  int scheduled_outages() const { return scheduled_; }

  /// Install the preemption observers (replaces any previous hooks).
  void set_preemption_hooks(PreemptionHooks hooks);

  /// Bring a preempted server's replacement online: undoes one reclaim
  /// on each of the server's resources and re-derives their capacities
  /// (stalled flows resume).  Harmless when the server is not currently
  /// preempted.
  void restore_server(int server);

  /// Cancel every pending (unfired) suppress/degrade/restore event and
  /// force still-faulted resources back to their exact original
  /// capacities.  Call when the job finishes before the fault schedule
  /// runs out, so late callbacks neither inflate the event count nor
  /// leak a suppressed resource into a caller's post-run bookkeeping.
  /// Returns the number of events cancelled.
  std::size_t cancel_pending();

 private:
  /// Per-resource fault bookkeeping.  `original` is captured when the
  /// first fault arrives and is the single source of truth: the applied
  /// capacity is always derived from it, so the final restore lands on
  /// the exact original value no matter how faults overlapped.
  struct ResourceState {
    double original = 0.0;
    int outages = 0;                   ///< active zero-capacity windows
    std::vector<double> degradations;  ///< active brownout/straggler fractions
    bool permanent = false;
    /// Active reclamations (a counter, not a flag: part-time servers can
    /// share a NIC, so two preempted servers may overlap on a resource).
    int preempted = 0;
  };

  void begin_outage(sim::ResourceId id);
  void end_outage(sim::ResourceId id);
  void begin_degradation(sim::ResourceId id, double fraction);
  void end_degradation(sim::ResourceId id, double fraction);
  void mark_permanent(sim::ResourceId id);
  void reclaim_server(int server);
  void apply(sim::ResourceId id);
  ResourceState& state_of(sim::ResourceId id);
  std::vector<sim::ResourceId> resources_for(const FaultSpec& spec) const;
  std::vector<sim::ResourceId> server_resources(int server) const;
  void track(sim::EventId event, SimTime at);

  ClusterModel& cluster_;
  PreemptionHooks hooks_;
  int scheduled_ = 0;
  std::map<sim::ResourceId, ResourceState> active_;
  /// Every scheduled (event, time) pair, for cancel_pending().
  std::vector<std::pair<sim::EventId, SimTime>> pending_;
  std::size_t faults_injected_ = 0;   ///< rolled into obs at destruction
  std::size_t events_cancelled_ = 0;  ///< ditto
};

}  // namespace acic::cloud
