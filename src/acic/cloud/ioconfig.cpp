#include "acic/cloud/ioconfig.hpp"

#include <sstream>

#include "acic/common/error.hpp"
#include "acic/plugin/substrates.hpp"

namespace acic::cloud {

const char* to_string(FileSystemType fs) {
  // The registry's map nodes are address-stable, so the c_str() stays
  // valid for the process lifetime (same contract as the old literals).
  return plugin::filesystem_for(fs).display_name.c_str();
}

const char* to_string(Placement p) {
  switch (p) {
    case Placement::kPartTime:
      return "part-time";
    case Placement::kDedicated:
      return "dedicated";
  }
  return "?";
}

FileSystemType fs_from_string(const std::string& s) {
  // Throws plugin::PluginError listing the registered names.
  return plugin::filesystem_named(s).type;
}

Placement placement_from_string(const std::string& s) {
  if (s == "part-time" || s == "P") return Placement::kPartTime;
  if (s == "dedicated" || s == "D") return Placement::kDedicated;
  throw Error("unknown placement: " + s);
}

bool IoConfig::valid() const {
  if (io_servers < 1) return false;
  const auto& substrate = plugin::filesystem_for(fs);
  if (substrate.single_server && io_servers != 1) return false;
  if (!substrate.single_server && stripe_size <= 0.0) return false;
  if (raid_members < 0) return false;
  return true;
}

int IoConfig::effective_raid_members() const {
  if (raid_members > 0) return raid_members;
  switch (device) {
    case storage::DeviceType::kEphemeral:
      return instance_spec(instance).ephemeral_disks;
    case storage::DeviceType::kEbs:
      return 2;  // the common two-volume RAID-0 EBS setup
    case storage::DeviceType::kSsd:
      return 2;
  }
  return 1;
}

std::string IoConfig::label() const {
  std::ostringstream os;
  const auto& substrate = plugin::filesystem_for(fs);
  os << substrate.label_stem;
  if (!substrate.single_server) os << "." << io_servers;
  os << "." << (placement == Placement::kDedicated ? "D" : "P");
  os << ".";
  switch (device) {
    case storage::DeviceType::kEphemeral:
      os << "eph";
      break;
    case storage::DeviceType::kEbs:
      os << "ebs";
      break;
    case storage::DeviceType::kSsd:
      os << "ssd";
      break;
  }
  if (!substrate.single_server) {
    os << (stripe_size >= MiB ? ".4M" : ".64K");
  }
  if (instance == InstanceType::kCc1_4xlarge) os << ".cc1";
  return os.str();
}

IoConfig IoConfig::baseline() {
  IoConfig c;
  c.device = storage::DeviceType::kEbs;
  c.fs = FileSystemType::kNfs;
  c.instance = InstanceType::kCc2_8xlarge;
  c.io_servers = 1;
  c.placement = Placement::kDedicated;
  c.stripe_size = 0.0;
  c.raid_members = 0;  // EBS default resolves to the two-volume RAID-0
  return c;
}

namespace {

std::vector<IoConfig> enumerate_over(
    const std::vector<storage::DeviceType>& devices);

}  // namespace

std::vector<IoConfig> IoConfig::enumerate_candidates() {
  return enumerate_over(
      {storage::DeviceType::kEbs, storage::DeviceType::kEphemeral});
}

std::vector<IoConfig> IoConfig::enumerate_candidates_with_ssd() {
  return enumerate_over({storage::DeviceType::kEbs,
                         storage::DeviceType::kEphemeral,
                         storage::DeviceType::kSsd});
}

namespace {

std::vector<IoConfig> enumerate_over(
    const std::vector<storage::DeviceType>& devices) {
  std::vector<IoConfig> out;
  const InstanceType instances[] = {InstanceType::kCc1_4xlarge,
                                    InstanceType::kCc2_8xlarge};
  const Placement placements[] = {Placement::kPartTime, Placement::kDedicated};
  // Default-grid substrates in point_id order (NFS before PVFS2) with
  // their declared knob grids reproduce the seed 56-candidate order
  // byte for byte (guarded by the golden-RunKey regression).
  const auto grid = plugin::default_grid_filesystems();
  ACIC_CHECK_MSG(!grid.empty(), "no default-grid filesystem plugins");
  for (auto dev : devices) {
    for (auto inst : instances) {
      for (auto place : placements) {
        for (const plugin::FilesystemPlugin* substrate : grid) {
          IoConfig base;
          base.device = dev;
          base.instance = inst;
          base.placement = place;
          if (substrate->single_server) {
            substrate->configure(base);
            out.push_back(base);
            continue;
          }
          const plugin::Knob* servers = substrate->schema.find("io_servers");
          const plugin::Knob* stripes = substrate->schema.find("stripe_size");
          ACIC_CHECK_MSG(servers != nullptr && stripes != nullptr,
                         "striped substrate must declare io_servers and "
                         "stripe_size knobs");
          for (double server_count : servers->values) {
            for (double stripe : stripes->values) {
              IoConfig c = base;
              substrate->configure(c, static_cast<int>(server_count), stripe);
              out.push_back(c);
            }
          }
        }
      }
    }
  }
  for (const auto& c : out) ACIC_CHECK(c.valid());
  return out;
}

}  // namespace

}  // namespace acic::cloud
