#include "acic/cloud/ioconfig.hpp"

#include <sstream>

#include "acic/common/error.hpp"

namespace acic::cloud {

const char* to_string(FileSystemType fs) {
  switch (fs) {
    case FileSystemType::kNfs:
      return "NFS";
    case FileSystemType::kPvfs2:
      return "PVFS2";
    case FileSystemType::kLustre:
      return "Lustre";
  }
  return "?";
}

const char* to_string(Placement p) {
  switch (p) {
    case Placement::kPartTime:
      return "part-time";
    case Placement::kDedicated:
      return "dedicated";
  }
  return "?";
}

FileSystemType fs_from_string(const std::string& s) {
  if (s == "NFS" || s == "nfs") return FileSystemType::kNfs;
  if (s == "PVFS2" || s == "pvfs2" || s == "pvfs") return FileSystemType::kPvfs2;
  if (s == "Lustre" || s == "lustre") return FileSystemType::kLustre;
  throw Error("unknown file system: " + s);
}

Placement placement_from_string(const std::string& s) {
  if (s == "part-time" || s == "P") return Placement::kPartTime;
  if (s == "dedicated" || s == "D") return Placement::kDedicated;
  throw Error("unknown placement: " + s);
}

bool IoConfig::valid() const {
  if (io_servers < 1) return false;
  if (fs == FileSystemType::kNfs && io_servers != 1) return false;
  if (fs != FileSystemType::kNfs && stripe_size <= 0.0) return false;
  if (raid_members < 0) return false;
  return true;
}

int IoConfig::effective_raid_members() const {
  if (raid_members > 0) return raid_members;
  switch (device) {
    case storage::DeviceType::kEphemeral:
      return instance_spec(instance).ephemeral_disks;
    case storage::DeviceType::kEbs:
      return 2;  // the common two-volume RAID-0 EBS setup
    case storage::DeviceType::kSsd:
      return 2;
  }
  return 1;
}

std::string IoConfig::label() const {
  std::ostringstream os;
  switch (fs) {
    case FileSystemType::kNfs:
      os << "nfs";
      break;
    case FileSystemType::kPvfs2:
      os << "pvfs." << io_servers;
      break;
    case FileSystemType::kLustre:
      os << "lustre." << io_servers;
      break;
  }
  os << "." << (placement == Placement::kDedicated ? "D" : "P");
  os << ".";
  switch (device) {
    case storage::DeviceType::kEphemeral:
      os << "eph";
      break;
    case storage::DeviceType::kEbs:
      os << "ebs";
      break;
    case storage::DeviceType::kSsd:
      os << "ssd";
      break;
  }
  if (fs != FileSystemType::kNfs) {
    os << (stripe_size >= MiB ? ".4M" : ".64K");
  }
  if (instance == InstanceType::kCc1_4xlarge) os << ".cc1";
  return os.str();
}

IoConfig IoConfig::baseline() {
  IoConfig c;
  c.device = storage::DeviceType::kEbs;
  c.fs = FileSystemType::kNfs;
  c.instance = InstanceType::kCc2_8xlarge;
  c.io_servers = 1;
  c.placement = Placement::kDedicated;
  c.stripe_size = 0.0;
  c.raid_members = 0;  // EBS default resolves to the two-volume RAID-0
  return c;
}

namespace {

std::vector<IoConfig> enumerate_over(
    const std::vector<storage::DeviceType>& devices);

}  // namespace

std::vector<IoConfig> IoConfig::enumerate_candidates() {
  return enumerate_over(
      {storage::DeviceType::kEbs, storage::DeviceType::kEphemeral});
}

std::vector<IoConfig> IoConfig::enumerate_candidates_with_ssd() {
  return enumerate_over({storage::DeviceType::kEbs,
                         storage::DeviceType::kEphemeral,
                         storage::DeviceType::kSsd});
}

namespace {

std::vector<IoConfig> enumerate_over(
    const std::vector<storage::DeviceType>& devices) {
  std::vector<IoConfig> out;
  const InstanceType instances[] = {InstanceType::kCc1_4xlarge,
                                    InstanceType::kCc2_8xlarge};
  const Placement placements[] = {Placement::kPartTime, Placement::kDedicated};
  for (auto dev : devices) {
    for (auto inst : instances) {
      for (auto place : placements) {
        // NFS: single server, no stripe size.
        IoConfig nfs;
        nfs.device = dev;
        nfs.fs = FileSystemType::kNfs;
        nfs.instance = inst;
        nfs.io_servers = 1;
        nfs.placement = place;
        nfs.stripe_size = 0.0;
        out.push_back(nfs);
        // PVFS2: {1,2,4} servers x {64KB,4MB} stripes.
        for (int servers : {1, 2, 4}) {
          for (Bytes stripe : {64.0 * KiB, 4.0 * MiB}) {
            IoConfig p;
            p.device = dev;
            p.fs = FileSystemType::kPvfs2;
            p.instance = inst;
            p.io_servers = servers;
            p.placement = place;
            p.stripe_size = stripe;
            out.push_back(p);
          }
        }
      }
    }
  }
  for (const auto& c : out) ACIC_CHECK(c.valid());
  return out;
}

}  // namespace

}  // namespace acic::cloud
