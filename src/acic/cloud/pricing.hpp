// Pricing models.
//
// The paper evaluates with Eq. (1): cost = time x instances x unit price.
// Real 2013 EBS billing additionally charged for provisioned volume-hours
// and per-I/O operations (§3.1 notes the devices' "different pricing
// policies").  DetailedPricing adds those terms as an opt-in refinement;
// every reproduced figure uses Eq. (1) unless stated otherwise.
#pragma once

#include <cstdint>

#include "acic/cloud/cluster.hpp"
#include "acic/common/units.hpp"

namespace acic::cloud {

struct DetailedPricing {
  /// 2013 EBS standard-volume rates.
  Money ebs_gb_month = 0.10;
  Money ebs_per_million_ios = 0.10;
  /// Provisioned size per RAID member volume.
  Bytes ebs_volume_size = 200.0 * GiB;
  /// Hours per billing month (AWS convention).
  double hours_per_month = 720.0;

  /// Eq. (1) instance bill plus, for EBS-backed clusters, volume-hour
  /// and per-I/O charges.  `io_operations` is the device-level request
  /// count observed during the run.
  Money run_cost(const ClusterModel& cluster, SimTime duration,
                 std::uint64_t io_operations) const;

  /// The EBS surcharge alone (0 for non-EBS clusters).
  Money ebs_surcharge(const ClusterModel& cluster, SimTime duration,
                      std::uint64_t io_operations) const;
};

/// Spot-market billing: instances cost a fraction of the on-demand rate,
/// but every preemption restart pays a reacquisition fee (the partial
/// billing hour lost on the reclaimed server plus provisioning spin-up).
/// Net effect: the cost objective now trades the spot discount against
/// the preemption-recovery tax, which is exactly the restart-aware
/// ranking the recommender needs.
struct SpotPricing {
  /// Spot price as a fraction of the on-demand rate (2013 spot markets
  /// hovered around a third of on-demand for steady bids).
  double price_factor = 0.35;
  /// Dollars charged per replacement-server acquisition.
  Money per_restart_cost = 0.08;

  /// Discounted Eq. (1) bill plus the per-restart reacquisition fees.
  Money run_cost(const ClusterModel& cluster, SimTime duration,
                 std::uint64_t restarts) const;
};

}  // namespace acic::cloud
