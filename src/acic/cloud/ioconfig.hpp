// Cloud I/O system configuration — the six system-side dimensions of the
// paper's Table 1 (disk device, file system, instance type, number of I/O
// servers, server placement, PVFS2 stripe size).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "acic/cloud/instance.hpp"
#include "acic/common/units.hpp"
#include "acic/storage/device.hpp"

namespace acic::cloud {

enum class FileSystemType {
  kNfs,
  kPvfs2,
  /// Extension value beyond the paper's Table 1 grid (§3.1 names Lustre
  /// as the parallel FS large clusters deploy; §8 plans such additions).
  kLustre,
};

enum class Placement {
  kPartTime,   ///< I/O servers share instances with compute ranks.
  kDedicated,  ///< I/O servers run on their own (billed) instances.
};

const char* to_string(FileSystemType fs);
const char* to_string(Placement p);
FileSystemType fs_from_string(const std::string& s);
Placement placement_from_string(const std::string& s);

/// One point in the system-side configuration space.
struct IoConfig {
  storage::DeviceType device = storage::DeviceType::kEbs;
  FileSystemType fs = FileSystemType::kNfs;
  InstanceType instance = InstanceType::kCc2_8xlarge;
  int io_servers = 1;
  Placement placement = Placement::kDedicated;
  /// PVFS2 stripe size; ignored (and normalised to 0) for NFS.
  Bytes stripe_size = 4.0 * MiB;
  /// RAID-0 member count per server; 0 selects the platform default
  /// (all local disks for ephemeral/SSD, two volumes for EBS).
  int raid_members = 0;
  /// Extra substrate-declared knob settings (name → value) for knobs
  /// beyond the Table 1 dimensions above.  Empty for every seed
  /// substrate; out-of-tree plugins use it to make their settings part
  /// of the config identity (and thus the RunKey — see the versioned
  /// knob fold in exec/runkey.cpp).
  std::vector<std::pair<std::string, double>> plugin_knobs;

  /// Validity rules from the paper: NFS has exactly one server and no
  /// stripe size; PVFS2 needs >= 1 server and a positive stripe size.
  bool valid() const;

  /// Effective RAID member count given the instance type.
  int effective_raid_members() const;

  /// Paper-style short label, e.g. "pvfs.4.D.eph" / "nfs.P.ebs".
  std::string label() const;

  /// The paper's reference point: one dedicated NFS server exporting a
  /// two-volume EBS RAID-0 on a cc2.8xlarge.
  static IoConfig baseline();

  /// Enumerate every *valid* configuration over the Table 1 system-side
  /// value ranges (56 candidates).
  static std::vector<IoConfig> enumerate_candidates();

  /// Extended enumeration including the SSD device class (84 candidates)
  /// — the "platform upgrade" scenario for ACIC's expandability story.
  static std::vector<IoConfig> enumerate_candidates_with_ssd();

  friend bool operator==(const IoConfig&, const IoConfig&) = default;
};

}  // namespace acic::cloud
