// EC2-style instance-type catalogue (2013-era Cluster Compute Instances).
//
// The two types below are the ones the paper's Table 1 explores.  Numbers
// are taken from the public 2013 EC2 specifications: both CCI generations
// attach 10-Gigabit Ethernet; they differ in core count, memory, local
// ("ephemeral") disk count, per-core throughput and hourly price.
#pragma once

#include <string>

#include "acic/common/units.hpp"

namespace acic::cloud {

enum class InstanceType {
  kCc1_4xlarge,
  kCc2_8xlarge,
};

struct InstanceSpec {
  std::string name;
  int cores = 0;
  double memory_gb = 0.0;
  /// NIC bandwidth in bytes/s (full duplex; one resource per direction).
  double nic_bandwidth = 0.0;
  /// Relative per-core compute throughput (cc2 Sandy Bridge ≈ 1.0).
  double core_speed = 1.0;
  int ephemeral_disks = 0;
  Bytes ephemeral_disk_capacity = 0.0;
  Money price_per_hour = 0.0;
};

/// Catalogue lookup; every InstanceType has an entry.
const InstanceSpec& instance_spec(InstanceType type);

const char* to_string(InstanceType type);
InstanceType instance_type_from_string(const std::string& s);

}  // namespace acic::cloud
