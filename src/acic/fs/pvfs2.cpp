#include "acic/fs/pvfs2.hpp"

#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "acic/common/error.hpp"
#include "acic/plugin/substrates.hpp"
#include "acic/simcore/join.hpp"

namespace acic::fs {

Pvfs2Model::Pvfs2Model(cloud::ClusterModel& cluster, FsTuning tuning)
    : cluster_(cluster),
      tuning_(tuning),
      stripe_(cluster.options().config.stripe_size),
      servers_(cluster.num_io_servers()) {
  ACIC_EXPECTS(stripe_ > 0.0, "non-positive PVFS2 stripe size " << stripe_);
  ACIC_EXPECTS(servers_ >= 1,
               "PVFS2 needs at least one I/O server, got " << servers_);
}

int Pvfs2Model::servers_touched(Bytes bytes) const {
  const int stripes =
      static_cast<int>(std::ceil(bytes / stripe_));
  return std::min(std::max(stripes, 1), servers_);
}

sim::Task Pvfs2Model::server_chunk(int rank, int server, Bytes bytes,
                                   bool is_write, double op_weight) {
  ACIC_DCHECK(server >= 0 && server < servers_,
              "stripe routed to unknown server " << server);
  auto& sim = cluster_.simulator();
  if (!cluster_.rank_colocated_with_server(rank, server)) {
    co_await sim.delay(cluster_.network_rpc_latency() * op_weight);
  }
  const double latency_factor = is_write ? tuning_.pvfs_write_latency_factor
                                         : tuning_.pvfs_read_latency_factor;
  auto& queue = cluster_.server_op_queue(server);
  co_await queue.acquire();
  co_await sim.delay((tuning_.pvfs_server_overhead +
                      cluster_.device_latency(server) * latency_factor) *
                     op_weight);
  queue.release();
  auto path = is_write ? cluster_.write_path(rank, server)
                       : cluster_.read_path(rank, server);
  co_await resilient_transfer(cluster_, std::move(path), bytes);
}

sim::Task Pvfs2Model::request(int rank, Bytes bytes, bool is_write,
                              bool shared_file, double op_weight) {
  (void)shared_file;  // PVFS2 has no POSIX shared-file lock semantics.
  account(bytes, op_weight);
  auto& sim = cluster_.simulator();

  // The call stands for `op_weight` original application requests of
  // `bytes / op_weight` each (middleware coalescing).  Striping costs
  // must reflect the *original* requests: each original request splits
  // into its own stripes and touches its own server subset.
  const Bytes original = bytes / op_weight;
  const double stripes_per_original =
      std::max(1.0, std::ceil(original / stripe_));
  const double stripe_total = op_weight * stripes_per_original;
  const int touched_per_original = servers_touched(original);

  // Client software cost: fixed part per original request plus the
  // per-stripe splitting work.
  co_await sim.delay(tuning_.pvfs_client_overhead * op_weight +
                     tuning_.pvfs_per_stripe_cpu * stripe_total);

  // Fan the payload out across servers.  Consecutive original requests
  // rotate round-robin over the stripe layout, so the coalesced payload
  // spreads over up to `servers_` devices for bandwidth purposes, while
  // the total per-op service charge stays op_weight x touched-per-
  // original, split evenly over the servers actually hit.
  const int touched = std::min(
      servers_,
      std::max(servers_touched(bytes),
               op_weight > 1.0 ? servers_ : touched_per_original));
  const double weight_per_server =
      op_weight * static_cast<double>(touched_per_original) /
      static_cast<double>(touched);

  const int start = rank % servers_;
  if (touched == 1) {
    co_await server_chunk(rank, start, bytes, is_write, weight_per_server);
    co_return;
  }
  std::vector<sim::Task> chunks;
  chunks.reserve(static_cast<std::size_t>(touched));
  const Bytes per_server = bytes / static_cast<double>(touched);
  for (int i = 0; i < touched; ++i) {
    const int server = (start + i) % servers_;
    chunks.push_back(
        server_chunk(rank, server, per_server, is_write, weight_per_server));
  }
  co_await sim::when_all(sim, std::move(chunks));
}

sim::Task Pvfs2Model::mds_op(int rank) {
  auto& sim = cluster_.simulator();
  constexpr int kMds = 0;
  if (!cluster_.rank_colocated_with_server(rank, kMds)) {
    co_await sim.delay(cluster_.network_rpc_latency());
  }
  auto& queue = cluster_.server_op_queue(kMds);
  co_await queue.acquire();
  co_await sim.delay(tuning_.pvfs_mds_op_cost);
  queue.release();
}

sim::Task Pvfs2Model::open_file(int rank) { co_await mds_op(rank); }

sim::Task Pvfs2Model::close_file(int rank) { co_await mds_op(rank); }

}  // namespace acic::fs

// PVFS2 substrate registration: the paper's striped parallel FS (point
// 1).  Declared knobs reproduce the Table 1 grid: servers {1,2,4} and
// stripes {64 KiB, 4 MiB}.
ACIC_REGISTER_PLUGIN(pvfs2_filesystem) {
  acic::plugin::FilesystemPlugin p;
  p.name = "pvfs2";
  p.display_name = "PVFS2";
  p.label_stem = "pvfs";
  p.aliases = {"PVFS2", "pvfs"};
  p.type = acic::cloud::FileSystemType::kPvfs2;
  p.point_id = 1.0;
  p.single_server = false;
  p.in_default_grid = true;
  p.schema.version = 1;
  p.schema.knobs = {{"io_servers", {1.0, 2.0, 4.0}},
                    {"stripe_size", {64.0 * acic::KiB, 4.0 * acic::MiB}}};
  p.make = [](acic::cloud::ClusterModel& cluster,
              const acic::fs::FsTuning& tuning) {
    return std::make_unique<acic::fs::Pvfs2Model>(cluster, tuning);
  };
  acic::plugin::filesystems().add(std::move(p));
}
