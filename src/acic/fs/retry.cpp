#include "acic/fs/retry.hpp"

#include <algorithm>
#include <cmath>

namespace acic::fs {

bool RetryPolicy::valid() const {
  return request_timeout > 0.0 && max_attempts >= 1 &&
         backoff_base >= 0.0 && backoff_multiplier >= 1.0 &&
         backoff_cap >= backoff_base && backoff_jitter >= 0.0 &&
         backoff_jitter < 1.0;
}

SimTime backoff_delay(const RetryPolicy& policy, int attempt, Rng& rng,
                      SimTime budget) {
  double delay =
      policy.backoff_base *
      std::pow(policy.backoff_multiplier, static_cast<double>(attempt));
  delay = std::min(delay, static_cast<double>(policy.backoff_cap));
  if (policy.backoff_jitter > 0.0) {
    delay *= 1.0 + policy.backoff_jitter * (2.0 * rng.uniform() - 1.0);
  }
  // Deadline clamp: never sleep past the request's remaining budget (the
  // jitter draw above already happened, so clamped and unclamped paths
  // consume the same RNG stream).
  delay = std::min(delay, std::max(budget, 0.0));
  return std::max(delay, 0.0);
}

}  // namespace acic::fs
