// NFS model: one server, low per-op overhead, server-side write-back
// caching, shared-file write locking.  See filesystem.hpp for the
// behavioural contrast with PVFS2.
//
// Write-back cache: a 2013 CCI has tens of GB of RAM, so an async NFS
// export absorbs bursty checkpoint writes at NIC speed and drains them to
// the device during the application's compute phases.  We model the dirty
// set as a leaky bucket: writes that fit under the cache limit skip the
// device resource; the dirty volume decays at the device's write
// bandwidth.  The export is asynchronous (the 2013 default for this kind
// of setup): close() does not wait for the server's own write-back, so a
// checkpoint can rest in server RAM when the application exits — the
// paper measures application wall time, which is what we report.  Reads
// are always cold — the paper clears caches between runs.
#pragma once

#include "acic/fs/filesystem.hpp"

namespace acic::fs {

class NfsModel final : public FileSystem {
 public:
  NfsModel(cloud::ClusterModel& cluster, FsTuning tuning);
  /// Flushes this run's write-back cache hit/miss totals into the
  /// process-wide metrics registry (`fs.NFS.cache_hits` / `.cache_misses`).
  ~NfsModel() override;

  sim::Task request(int rank, Bytes bytes, bool is_write, bool shared_file,
                    double op_weight) override;
  sim::Task open_file(int rank) override;
  sim::Task close_file(int rank) override;
  const char* name() const override { return "NFS"; }

  /// Currently dirty (cached, not yet on the device) bytes.
  Bytes dirty_bytes() const;

 private:
  sim::Task metadata_op(int rank, SimTime cost);
  /// Apply leaky-bucket decay of the dirty set up to now.
  void drain_to_now() const;

  cloud::ClusterModel& cluster_;
  FsTuning tuning_;
  Bytes cache_capacity_ = 0.0;
  mutable Bytes dirty_ = 0.0;
  mutable SimTime last_drain_ = 0.0;
  std::uint64_t cache_hits_ = 0;    ///< writes absorbed by the cache
  std::uint64_t cache_misses_ = 0;  ///< writes that touched the device
};

}  // namespace acic::fs
