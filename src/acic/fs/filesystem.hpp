// Shared / parallel file-system models: NFS and PVFS2.
//
// Both expose the same client-side contract: a `request()` coroutine that
// performs one contiguous read or write from a rank, plus open/close
// metadata operations.  The behavioural contrast that drives the paper's
// results lives here:
//
//  * NFS — a single server; all traffic funnels through its NIC and
//    device.  Per-request software overhead is low and the client-side
//    write-back cache hides most of the device latency on writes, which is
//    why NFS wins for applications issuing small amounts of POSIX I/O
//    (paper §5.6 obs. 4).  Concurrent writers to one shared file pay a
//    consistency/locking penalty.
//
//  * PVFS2 — data is striped round-robin in `stripe_size` units over N
//    servers, so one large request fans out into parallel per-server
//    transfers (aggregate bandwidth scales with servers, obs. 2), at the
//    price of a higher per-request software cost and a per-stripe
//    splitting cost.  Metadata operations serialise at the metadata
//    server (server 0).  No shared-file locking penalty (PVFS2 has no
//    POSIX lock semantics).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "acic/cloud/cluster.hpp"
#include "acic/common/check.hpp"
#include "acic/common/rng.hpp"
#include "acic/common/units.hpp"
#include "acic/fs/retry.hpp"
#include "acic/simcore/task.hpp"

namespace acic::fs {

/// Software-cost constants for the file-system models.  Exposed as a
/// struct so the ablation benches can perturb them.
struct FsTuning {
  // NFS
  SimTime nfs_client_overhead = 0.15 * kMillisecond;
  SimTime nfs_server_overhead = 0.10 * kMillisecond;
  /// Fraction of device latency a write pays (write-back cache absorbs
  /// the rest); reads pay the full seek.
  double nfs_write_latency_factor = 0.25;
  SimTime nfs_shared_write_penalty = 0.60 * kMillisecond;
  SimTime nfs_open_cost = 0.20 * kMillisecond;
  SimTime nfs_close_cost = 0.50 * kMillisecond;  // close-to-open flush
  /// Fraction of the server instance's RAM usable as write-back cache
  /// (0 disables the cache entirely — the ablation knob).
  double nfs_cache_fraction = 0.5;

  // PVFS2
  SimTime pvfs_client_overhead = 0.45 * kMillisecond;
  SimTime pvfs_server_overhead = 0.20 * kMillisecond;
  SimTime pvfs_per_stripe_cpu = 0.015 * kMillisecond;
  double pvfs_write_latency_factor = 0.9;  // direct I/O, no client cache
  double pvfs_read_latency_factor = 1.0;
  SimTime pvfs_mds_op_cost = 0.50 * kMillisecond;

  /// Client-side deadline/retry/backoff behaviour (disabled by default,
  /// which preserves the legacy wait-forever semantics bit-for-bit).
  RetryPolicy retry;
};

class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Perform one contiguous request of `bytes` issued by `rank`.
  /// `shared_file` marks requests into a single file shared by all ranks.
  ///
  /// `op_weight` supports the middleware's request coalescing: a call
  /// with weight w stands for w back-to-back application requests whose
  /// payloads have been merged into `bytes`.  Every fixed per-request
  /// cost (software overhead, RPC, seek) is charged w times; bandwidth
  /// terms are unchanged.  This bounds simulated event counts for jobs
  /// issuing millions of small calls without altering their totals.
  virtual sim::Task request(int rank, Bytes bytes, bool is_write,
                            bool shared_file, double op_weight = 1.0) = 0;

  /// Metadata: open one file on behalf of `rank`.
  virtual sim::Task open_file(int rank) = 0;
  /// Metadata: close/flush.
  virtual sim::Task close_file(int rank) = 0;

  virtual const char* name() const = 0;

  std::uint64_t requests_served() const { return requests_; }
  Bytes bytes_moved() const { return bytes_; }

  /// Arm the deadline/retry layer (no-op for a disabled policy).  The
  /// backoff jitter stream is seeded from `seed`, so retry schedules are
  /// deterministic per run.
  void configure_fault_tolerance(const RetryPolicy& policy,
                                 std::uint64_t seed);

  /// Fault-reaction totals accumulated by resilient_transfer().
  const FaultStats& fault_stats() const { return fault_stats_; }

 protected:
  /// Move a payload with the configured deadline/retry/backoff reaction;
  /// falls back to a plain (wait-forever) transfer when the policy is
  /// disabled.  An abandoned payload counts as a failed request; the
  /// coroutine still returns normally so the rank can finish — the
  /// runner downgrades the run's outcome instead.
  sim::Task resilient_transfer(cloud::ClusterModel& cluster,
                               std::vector<sim::ResourceId> path,
                               Bytes bytes);

  void account(Bytes bytes, double op_weight) {
    ACIC_EXPECTS(bytes >= 0.0, "negative request size " << bytes);
    ACIC_EXPECTS(op_weight > 0.0, "non-positive op weight " << op_weight);
    requests_ += static_cast<std::uint64_t>(op_weight + 0.5);
    bytes_ += bytes;
  }

 private:
  std::uint64_t requests_ = 0;
  Bytes bytes_ = 0.0;
  RetryPolicy retry_;
  FaultStats fault_stats_;
  Rng retry_rng_{0};
};

/// Instantiate the model selected by the cluster's IoConfig.
std::unique_ptr<FileSystem> make_filesystem(cloud::ClusterModel& cluster,
                                            const FsTuning& tuning = {});

}  // namespace acic::fs
