// PVFS2 model: round-robin striping over N data servers with a metadata
// server co-located on server 0.  See filesystem.hpp for the behavioural
// contrast with NFS.
#pragma once

#include "acic/fs/filesystem.hpp"

namespace acic::fs {

class Pvfs2Model final : public FileSystem {
 public:
  Pvfs2Model(cloud::ClusterModel& cluster, FsTuning tuning);

  sim::Task request(int rank, Bytes bytes, bool is_write, bool shared_file,
                    double op_weight) override;
  sim::Task open_file(int rank) override;
  sim::Task close_file(int rank) override;
  const char* name() const override { return "PVFS2"; }

  /// How many distinct servers a request of `bytes` touches (exposed for
  /// tests: small requests on large stripes hit one server; large
  /// requests fan out to all of them).
  int servers_touched(Bytes bytes) const;

 private:
  sim::Task server_chunk(int rank, int server, Bytes bytes, bool is_write,
                         double op_weight);
  sim::Task mds_op(int rank);

  cloud::ClusterModel& cluster_;
  FsTuning tuning_;
  Bytes stripe_;
  int servers_;
};

}  // namespace acic::fs
