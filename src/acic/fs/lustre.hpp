// Lustre model — an extension file system (§3.1 names Lustre and GPFS as
// the parallel file systems large clusters deploy; §8 plans support for
// "incrementally new I/O configurations").  Structurally it is a striped
// parallel file system like PVFS2, with Lustre's distinguishing traits:
//
//  * object storage servers with threaded request pipelines — lower
//    per-request server cost and a slightly better write path than our
//    PVFS2 model;
//  * distributed lock management (LDLM): shared-file writes pay a small
//    per-request lock acquisition, unlike PVFS2's lock-free semantics
//    (and far cheaper than NFS's whole-file consistency penalty);
//  * a dedicated metadata target with faster open/close service.
//
// Deploying it needs nothing new anywhere else: IoConfig carries it as an
// extension value of the file-system dimension, and ACIC learns it from
// contributed training batches exactly like the SSD rollout.
#pragma once

#include "acic/fs/filesystem.hpp"

namespace acic::fs {

class LustreModel final : public FileSystem {
 public:
  LustreModel(cloud::ClusterModel& cluster, FsTuning tuning);

  sim::Task request(int rank, Bytes bytes, bool is_write, bool shared_file,
                    double op_weight) override;
  sim::Task open_file(int rank) override;
  sim::Task close_file(int rank) override;
  const char* name() const override { return "Lustre"; }

  /// Distinct object servers one request of `bytes` touches.
  int servers_touched(Bytes bytes) const;

 private:
  sim::Task server_chunk(int rank, int server, Bytes bytes, bool is_write,
                         double op_weight);
  sim::Task mdt_op(int rank, double cost_scale);

  cloud::ClusterModel& cluster_;
  FsTuning tuning_;
  Bytes stripe_;
  int servers_;
};

}  // namespace acic::fs
