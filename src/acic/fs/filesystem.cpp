#include "acic/fs/filesystem.hpp"

#include <algorithm>

#include "acic/common/error.hpp"
#include "acic/plugin/substrates.hpp"

namespace acic::fs {

void FileSystem::configure_fault_tolerance(const RetryPolicy& policy,
                                           std::uint64_t seed) {
  ACIC_CHECK_MSG(policy.valid(), "invalid retry policy");
  retry_ = policy;
  // Decorrelate from the cluster's jitter stream without a new knob.
  retry_rng_ = Rng(seed ^ 0x8e712ffULL);
}

sim::Task FileSystem::resilient_transfer(cloud::ClusterModel& cluster,
                                         std::vector<sim::ResourceId> path,
                                         Bytes bytes) {
  if (!retry_.enabled) {
    co_await cluster.network().transfer(std::move(path), bytes);
    co_return;
  }
  auto& sim = cluster.simulator();
  // The request's overall deadline: max_attempts full windows from the
  // first send.  Backoff sleeps are clamped to the remaining budget and
  // the final attempt's window is shortened to whatever is left, so the
  // request resolves — completed, or reported failed — no later than the
  // deadline instead of backoff_cap seconds past it.
  const SimTime deadline =
      sim.now() +
      retry_.request_timeout * static_cast<double>(retry_.max_attempts);
  for (int attempt = 0; attempt < retry_.max_attempts; ++attempt) {
    const SimTime window =
        std::min(retry_.request_timeout, deadline - sim.now());
    if (window <= 0.0) {
      // A clamped backoff landed exactly on the deadline: report the
      // timeout there rather than starting a zero-length attempt.
      ++fault_stats_.timeouts;
      ++fault_stats_.failed_requests;
      co_return;
    }
    bool completed = false;
    const SimTime started = sim.now();
    // The path is re-used across attempts, so pass a copy each time.
    co_await cluster.network().transfer_within(path, bytes, window,
                                               &completed);
    if (completed) co_return;
    ++fault_stats_.timeouts;
    fault_stats_.stalled_time += sim.now() - started;
    if (attempt + 1 >= retry_.max_attempts) {
      // Budget exhausted: abandon the payload (it was cancelled on the
      // wire) and let the rank carry on — a lost write, not a hang.
      ++fault_stats_.failed_requests;
      co_return;
    }
    ++fault_stats_.retries;
    co_await sim.delay(backoff_delay(retry_, attempt, retry_rng_,
                                     deadline - sim.now()));
  }
}

std::unique_ptr<FileSystem> make_filesystem(cloud::ClusterModel& cluster,
                                            const FsTuning& tuning) {
  const auto& substrate =
      plugin::filesystem_for(cluster.options().config.fs);
  auto fs = substrate.make(cluster, tuning);
  if (!fs) throw Error("filesystem plugin '" + substrate.name +
                       "' returned no model");
  fs->configure_fault_tolerance(tuning.retry, cluster.options().seed);
  return fs;
}

}  // namespace acic::fs
