#include "acic/fs/filesystem.hpp"

#include "acic/common/error.hpp"
#include "acic/fs/lustre.hpp"
#include "acic/fs/nfs.hpp"
#include "acic/fs/pvfs2.hpp"

namespace acic::fs {

std::unique_ptr<FileSystem> make_filesystem(cloud::ClusterModel& cluster,
                                            const FsTuning& tuning) {
  switch (cluster.options().config.fs) {
    case cloud::FileSystemType::kNfs:
      return std::make_unique<NfsModel>(cluster, tuning);
    case cloud::FileSystemType::kPvfs2:
      return std::make_unique<Pvfs2Model>(cluster, tuning);
    case cloud::FileSystemType::kLustre:
      return std::make_unique<LustreModel>(cluster, tuning);
  }
  throw Error("unknown file system type");
}

}  // namespace acic::fs
