#include "acic/fs/lustre.hpp"

#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "acic/common/error.hpp"
#include "acic/plugin/substrates.hpp"
#include "acic/simcore/join.hpp"

namespace acic::fs {

namespace {
// Lustre-specific cost constants relative to the FsTuning PVFS2 numbers:
// threaded OSS pipelines and a dedicated MDT.
constexpr SimTime kClientOverhead = 0.30 * kMillisecond;
constexpr SimTime kServerOverhead = 0.12 * kMillisecond;
constexpr SimTime kLdlmLockCost = 0.15 * kMillisecond;
constexpr double kWriteLatencyFactor = 0.85;
constexpr double kReadLatencyFactor = 1.0;
constexpr SimTime kMdtOpCost = 0.25 * kMillisecond;
}  // namespace

LustreModel::LustreModel(cloud::ClusterModel& cluster, FsTuning tuning)
    : cluster_(cluster),
      tuning_(tuning),
      stripe_(cluster.options().config.stripe_size),
      servers_(cluster.num_io_servers()) {
  ACIC_CHECK(stripe_ > 0.0);
  ACIC_CHECK(servers_ >= 1);
}

int LustreModel::servers_touched(Bytes bytes) const {
  const int stripes = static_cast<int>(std::ceil(bytes / stripe_));
  return std::min(std::max(stripes, 1), servers_);
}

sim::Task LustreModel::server_chunk(int rank, int server, Bytes bytes,
                                    bool is_write, double op_weight) {
  auto& sim = cluster_.simulator();
  if (!cluster_.rank_colocated_with_server(rank, server)) {
    co_await sim.delay(cluster_.network_rpc_latency() * op_weight);
  }
  const double latency_factor =
      is_write ? kWriteLatencyFactor : kReadLatencyFactor;
  auto& queue = cluster_.server_op_queue(server);
  co_await queue.acquire();
  co_await sim.delay((kServerOverhead +
                      cluster_.device_latency(server) * latency_factor) *
                     op_weight);
  queue.release();
  auto path = is_write ? cluster_.write_path(rank, server)
                       : cluster_.read_path(rank, server);
  co_await resilient_transfer(cluster_, std::move(path), bytes);
}

sim::Task LustreModel::request(int rank, Bytes bytes, bool is_write,
                               bool shared_file, double op_weight) {
  account(bytes, op_weight);
  auto& sim = cluster_.simulator();

  const Bytes original = bytes / op_weight;
  const double stripes_per_original =
      std::max(1.0, std::ceil(original / stripe_));
  const double stripe_total = op_weight * stripes_per_original;
  const int touched_per_original = servers_touched(original);

  // Client cost: software per original request, per-stripe splitting,
  // and LDLM extent-lock acquisition for shared-file writes.
  SimTime client = kClientOverhead * op_weight +
                   tuning_.pvfs_per_stripe_cpu * stripe_total;
  if (is_write && shared_file) client += kLdlmLockCost * op_weight;
  co_await sim.delay(client);

  const int touched = std::min(
      servers_,
      std::max(servers_touched(bytes),
               op_weight > 1.0 ? servers_ : touched_per_original));
  const double weight_per_server =
      op_weight * static_cast<double>(touched_per_original) /
      static_cast<double>(touched);

  const int start = rank % servers_;
  if (touched == 1) {
    co_await server_chunk(rank, start, bytes, is_write, weight_per_server);
    co_return;
  }
  std::vector<sim::Task> chunks;
  chunks.reserve(static_cast<std::size_t>(touched));
  const Bytes per_server = bytes / static_cast<double>(touched);
  for (int i = 0; i < touched; ++i) {
    const int server = (start + i) % servers_;
    chunks.push_back(
        server_chunk(rank, server, per_server, is_write, weight_per_server));
  }
  co_await sim::when_all(sim, std::move(chunks));
}

sim::Task LustreModel::mdt_op(int rank, double cost_scale) {
  auto& sim = cluster_.simulator();
  constexpr int kMdt = 0;  // metadata target co-hosted on server 0
  if (!cluster_.rank_colocated_with_server(rank, kMdt)) {
    co_await sim.delay(cluster_.network_rpc_latency());
  }
  auto& queue = cluster_.server_op_queue(kMdt);
  co_await queue.acquire();
  co_await sim.delay(kMdtOpCost * cost_scale);
  queue.release();
}

sim::Task LustreModel::open_file(int rank) { co_await mdt_op(rank, 1.0); }

sim::Task LustreModel::close_file(int rank) { co_await mdt_op(rank, 0.6); }

}  // namespace acic::fs

// Lustre substrate registration: the post-paper extension (point 2).
// Registered but outside the default grid, so enumerate_candidates()
// and the trained rankings are unchanged; simulate/predict reach it by
// name.
ACIC_REGISTER_PLUGIN(lustre_filesystem) {
  acic::plugin::FilesystemPlugin p;
  p.name = "lustre";
  p.display_name = "Lustre";
  p.label_stem = "lustre";
  p.aliases = {"Lustre"};
  p.type = acic::cloud::FileSystemType::kLustre;
  p.point_id = 2.0;
  p.single_server = false;
  p.in_default_grid = false;
  p.schema.version = 1;
  p.schema.knobs = {{"io_servers", {1.0, 2.0, 4.0}},
                    {"stripe_size", {64.0 * acic::KiB, 4.0 * acic::MiB}}};
  p.make = [](acic::cloud::ClusterModel& cluster,
              const acic::fs::FsTuning& tuning) {
    return std::make_unique<acic::fs::LustreModel>(cluster, tuning);
  };
  acic::plugin::filesystems().add(std::move(p));
}
