#include "acic/fs/nfs.hpp"

#include <algorithm>

#include "acic/common/units.hpp"

namespace acic::fs {

namespace {
constexpr int kServer = 0;  // NFS has exactly one server
}

NfsModel::NfsModel(cloud::ClusterModel& cluster, FsTuning tuning)
    : cluster_(cluster), tuning_(tuning) {
  cache_capacity_ =
      tuning_.nfs_cache_fraction * cluster_.spec().memory_gb * GiB;
}

void NfsModel::drain_to_now() const {
  const SimTime now = cluster_.simulator().now();
  const double rate = cluster_.drain_bandwidth(kServer);
  dirty_ = std::max(0.0, dirty_ - (now - last_drain_) * rate);
  last_drain_ = now;
}

Bytes NfsModel::dirty_bytes() const {
  drain_to_now();
  return dirty_;
}

sim::Task NfsModel::request(int rank, Bytes bytes, bool is_write,
                            bool shared_file, double op_weight) {
  account(bytes, op_weight);
  auto& sim = cluster_.simulator();

  // Client-side software cost.
  co_await sim.delay(tuning_.nfs_client_overhead * op_weight);
  if (!cluster_.rank_colocated_with_server(rank, kServer)) {
    co_await sim.delay(cluster_.network_rpc_latency() * op_weight);
  }
  if (is_write && shared_file) {
    // Concurrent writers to one file fight over attribute/lock state.
    co_await sim.delay(tuning_.nfs_shared_write_penalty * op_weight);
  }

  drain_to_now();
  const bool absorbed =
      is_write && (dirty_ + bytes <= cache_capacity_);

  // Serialized server-side service: software + seek where the device is
  // actually touched (cache-absorbed writes skip the seek entirely).
  double latency_factor = 1.0;
  if (is_write) {
    latency_factor = absorbed ? 0.0 : tuning_.nfs_write_latency_factor;
  }
  auto& queue = cluster_.server_op_queue(kServer);
  co_await queue.acquire();
  co_await sim.delay((tuning_.nfs_server_overhead +
                      cluster_.device_latency(kServer) * latency_factor) *
                     op_weight);
  queue.release();

  // Payload transfer.
  if (absorbed) {
    auto path = cluster_.cached_write_path(rank, kServer);
    if (path.empty()) {
      // Local memory copy.
      co_await sim.delay(bytes / 6.0e9);
    } else {
      co_await cluster_.network().transfer(std::move(path), bytes);
    }
    drain_to_now();
    dirty_ += bytes;
  } else {
    auto path = is_write ? cluster_.write_path(rank, kServer)
                         : cluster_.read_path(rank, kServer);
    co_await cluster_.network().transfer(std::move(path), bytes);
  }
}

sim::Task NfsModel::metadata_op(int rank, SimTime cost) {
  auto& sim = cluster_.simulator();
  if (!cluster_.rank_colocated_with_server(rank, kServer)) {
    co_await sim.delay(cluster_.network_rpc_latency());
  }
  auto& queue = cluster_.server_op_queue(kServer);
  co_await queue.acquire();
  co_await sim.delay(cost);
  queue.release();
}

sim::Task NfsModel::open_file(int rank) {
  co_await metadata_op(rank, tuning_.nfs_open_cost);
}

sim::Task NfsModel::close_file(int rank) {
  // Async export: close flushes *client* pages (already modelled as part
  // of the transfer), but the server acks before its own disk write-back
  // completes — the dirty set may outlive the application, exactly as on
  // the paper's EC2 setup.  Only the metadata round-trip is paid here.
  co_await metadata_op(rank, tuning_.nfs_close_cost);
}

}  // namespace acic::fs
