#include "acic/fs/nfs.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "acic/common/units.hpp"
#include "acic/obs/metrics.hpp"
#include "acic/plugin/substrates.hpp"

namespace acic::fs {

namespace {
constexpr int kServer = 0;  // NFS has exactly one server
// Slack for fp residue in the dirty-byte accounting audits.
constexpr Bytes kEpsilonBytesNfs = 1e-3;
}

NfsModel::NfsModel(cloud::ClusterModel& cluster, FsTuning tuning)
    : cluster_(cluster), tuning_(tuning) {
  ACIC_EXPECTS(tuning_.nfs_cache_fraction >= 0.0 &&
                   tuning_.nfs_cache_fraction <= 1.0,
               "nfs_cache_fraction " << tuning_.nfs_cache_fraction
                                     << " outside [0, 1]");
  cache_capacity_ =
      tuning_.nfs_cache_fraction * cluster_.spec().memory_gb * GiB;
}

NfsModel::~NfsModel() {
  if (cache_hits_ + cache_misses_ == 0) return;
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("fs.NFS.cache_hits")
      .add(static_cast<double>(cache_hits_));
  registry.counter("fs.NFS.cache_misses")
      .add(static_cast<double>(cache_misses_));
}

void NfsModel::drain_to_now() const {
  const SimTime now = cluster_.simulator().now();
  const double rate = cluster_.drain_bandwidth(kServer);
  dirty_ = std::max(0.0, dirty_ - (now - last_drain_) * rate);
  last_drain_ = now;
}

Bytes NfsModel::dirty_bytes() const {
  drain_to_now();
  return dirty_;
}

sim::Task NfsModel::request(int rank, Bytes bytes, bool is_write,
                            bool shared_file, double op_weight) {
  account(bytes, op_weight);
  auto& sim = cluster_.simulator();

  // Client-side software cost.
  co_await sim.delay(tuning_.nfs_client_overhead * op_weight);
  if (!cluster_.rank_colocated_with_server(rank, kServer)) {
    co_await sim.delay(cluster_.network_rpc_latency() * op_weight);
  }
  if (is_write && shared_file) {
    // Concurrent writers to one file fight over attribute/lock state.
    co_await sim.delay(tuning_.nfs_shared_write_penalty * op_weight);
  }

  drain_to_now();
  const bool absorbed =
      is_write && (dirty_ + bytes <= cache_capacity_);
  if (is_write) {
    // The simulation is single-threaded per Simulator, so plain counters
    // suffice; the destructor rolls them into the global registry once.
    ++(absorbed ? cache_hits_ : cache_misses_);
  }
  if (absorbed) {
    // Reserve the cache space at admission time, before any co_await: other
    // requests interleave during the transfer below, and admitting them
    // against a stale dirty level would overfill the cache (caught by the
    // occupancy ACIC_DCHECK when this reservation was still done after the
    // transfer).
    dirty_ += bytes;
    ACIC_DCHECK(dirty_ <= cache_capacity_ + kEpsilonBytesNfs,
                "NFS write-back cache overfilled: dirty="
                    << dirty_ << " capacity=" << cache_capacity_);
  }

  // Serialized server-side service: software + seek where the device is
  // actually touched (cache-absorbed writes skip the seek entirely).
  double latency_factor = 1.0;
  if (is_write) {
    latency_factor = absorbed ? 0.0 : tuning_.nfs_write_latency_factor;
  }
  auto& queue = cluster_.server_op_queue(kServer);
  co_await queue.acquire();
  co_await sim.delay((tuning_.nfs_server_overhead +
                      cluster_.device_latency(kServer) * latency_factor) *
                     op_weight);
  queue.release();

  // Payload transfer (deadline/retry-aware when the policy is armed).
  if (absorbed) {
    auto path = cluster_.cached_write_path(rank, kServer);
    if (path.empty()) {
      // Local memory copy.
      co_await sim.delay(bytes / 6.0e9);
    } else {
      co_await resilient_transfer(cluster_, std::move(path), bytes);
    }
  } else {
    auto path = is_write ? cluster_.write_path(rank, kServer)
                         : cluster_.read_path(rank, kServer);
    co_await resilient_transfer(cluster_, std::move(path), bytes);
  }
}

sim::Task NfsModel::metadata_op(int rank, SimTime cost) {
  auto& sim = cluster_.simulator();
  if (!cluster_.rank_colocated_with_server(rank, kServer)) {
    co_await sim.delay(cluster_.network_rpc_latency());
  }
  auto& queue = cluster_.server_op_queue(kServer);
  co_await queue.acquire();
  co_await sim.delay(cost);
  queue.release();
}

sim::Task NfsModel::open_file(int rank) {
  co_await metadata_op(rank, tuning_.nfs_open_cost);
}

sim::Task NfsModel::close_file(int rank) {
  // Async export: close flushes *client* pages (already modelled as part
  // of the transfer), but the server acks before its own disk write-back
  // completes — the dirty set may outlive the application, exactly as on
  // the paper's EC2 setup.  Only the metadata round-trip is paid here.
  co_await metadata_op(rank, tuning_.nfs_close_cost);
}

}  // namespace acic::fs

// NFS substrate registration: the single-server baseline (point 0 of
// the kFileSystem dimension).  No striping, so the only declared knob
// is the degenerate io_servers grid {1}.
ACIC_REGISTER_PLUGIN(nfs_filesystem) {
  acic::plugin::FilesystemPlugin p;
  p.name = "nfs";
  p.display_name = "NFS";
  p.label_stem = "nfs";
  p.aliases = {"NFS"};
  p.type = acic::cloud::FileSystemType::kNfs;
  p.point_id = 0.0;
  p.single_server = true;
  p.in_default_grid = true;
  p.schema.version = 1;
  p.schema.knobs = {{"io_servers", {1.0}}};
  p.make = [](acic::cloud::ClusterModel& cluster,
              const acic::fs::FsTuning& tuning) {
    return std::make_unique<acic::fs::NfsModel>(cluster, tuning);
  };
  acic::plugin::filesystems().add(std::move(p));
}
