// Client-side fault tolerance for file-system requests: per-request
// deadlines with retry + exponential backoff + jitter and a bounded
// attempt budget.
//
// A request whose payload transfer exceeds the deadline is treated as a
// lost connection (paper §5.6 obs. 5): the in-flight flow is cancelled,
// the client backs off and re-sends the whole payload.  Once the budget
// is exhausted the request is abandoned and counted as failed — the
// runner grades such runs `degraded` (or `failed` when nothing makes
// progress at all) instead of hanging on a stalled cluster.
#pragma once

#include <cstdint>
#include <limits>

#include "acic/common/rng.hpp"
#include "acic/common/units.hpp"

namespace acic::fs {

struct RetryPolicy {
  /// Master switch; the all-default policy leaves the legacy
  /// wait-forever semantics untouched.
  bool enabled = false;
  /// Per-attempt transfer deadline, seconds of simulated time.
  SimTime request_timeout = 20.0;
  /// Total attempts per request (first try included).
  int max_attempts = 4;
  /// Backoff for attempt k sleeps base * multiplier^k, capped, then
  /// scaled by a uniform jitter in [1-jitter, 1+jitter] (decorrelates
  /// clients re-sending into the same recovering server).
  SimTime backoff_base = 0.25;
  double backoff_multiplier = 2.0;
  SimTime backoff_cap = 8.0;
  double backoff_jitter = 0.25;

  bool valid() const;
};

/// Per-filesystem fault-reaction totals for one run.
struct FaultStats {
  std::uint64_t timeouts = 0;         ///< attempts that hit the deadline
  std::uint64_t retries = 0;          ///< re-sent payloads
  std::uint64_t failed_requests = 0;  ///< abandoned after the full budget
  SimTime stalled_time = 0.0;         ///< simulated seconds spent stalled
};

/// Deterministic backoff delay for 0-based `attempt` (draws one uniform
/// from `rng` when the policy jitters).  The result is clamped to
/// `budget` — the remaining time before the request's overall deadline —
/// so a capped backoff can never push the next attempt past it.  The
/// jitter draw happens before the clamp, keeping the RNG stream
/// identical whether or not the clamp bites.
SimTime backoff_delay(const RetryPolicy& policy, int attempt, Rng& rng,
                      SimTime budget = std::numeric_limits<double>::infinity());

}  // namespace acic::fs
