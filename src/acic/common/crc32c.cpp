#include "acic/common/crc32c.hpp"

#include <array>

namespace acic {

namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // 0x1EDC6F41 reflected

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32c(std::string_view data) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (char c : data) {
    crc = (crc >> 8) ^ kTable[(crc ^ static_cast<unsigned char>(c)) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace acic
