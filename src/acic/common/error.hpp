// Error handling used across the library.
//
// `acic::Error`, the contract macros (ACIC_CHECK / ACIC_EXPECTS /
// ACIC_ENSURES / ACIC_DCHECK) and the pluggable failure handler all live
// in check.hpp; this header remains as the conventional include for code
// that throws or catches `acic::Error`.
#pragma once

#include "acic/common/check.hpp"
