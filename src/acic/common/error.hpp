// Error handling used across the library.
//
// The library throws `acic::Error` for contract violations and unexpected
// states; ACIC_CHECK is the assertion macro used on hot-but-not-inner-loop
// paths so misuse is diagnosed in release builds too.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace acic {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "ACIC_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace acic

#define ACIC_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr))                                                      \
      ::acic::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define ACIC_CHECK_MSG(expr, msg)                                        \
  do {                                                                   \
    if (!(expr)) {                                                       \
      std::ostringstream acic_os_;                                       \
      acic_os_ << msg;                                                   \
      ::acic::detail::check_failed(#expr, __FILE__, __LINE__,            \
                                   acic_os_.str());                      \
    }                                                                    \
  } while (0)
