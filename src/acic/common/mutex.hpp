// The annotated lock layer: the only place in src/acic where raw
// standard-library mutex primitives may appear (enforced by
// tools/lint/acic_lint.py).  Everything else takes `acic::Mutex` and
// the RAII guards below, so Clang's `-Wthread-safety` can prove at
// compile time that every `ACIC_GUARDED_BY` member is only touched
// under its lock and every `*_locked()` helper is only called with the
// lock held (see thread_annotations.hpp and DESIGN.md §11).
//
// Design notes:
//
//  * `Mutex` is a reader/writer lock (std::shared_mutex underneath):
//    exclusive `lock()/unlock()` for writers, `lock_shared()/
//    unlock_shared()` for readers.  Components that never need shared
//    mode simply use MutexLock everywhere — a pure-exclusive
//    shared_mutex costs the same uncontended fast path.
//  * `MutexLock` / `ReaderMutexLock` are the scoped guards; prefer them
//    over manual lock()/unlock() pairs (the analysis tracks both, but
//    the guards are exception-safe).
//  * `CondVar` is the annotated condition-variable wait helper: `wait()`
//    declares `ACIC_REQUIRES(mu)`, making "you must hold the mutex you
//    wait on" a compile-time contract instead of a runtime surprise.
//  * This layer covers *in-process* exclusion only.  Cross-process
//    coordination (the run store) layers advisory flock on top — see
//    common/filelock.hpp and the layering note in exec/store.hpp; the
//    in-process Mutex is always acquired before the file lock.
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "acic/common/thread_annotations.hpp"

namespace acic {

/// Annotated reader/writer mutex.  Non-recursive; writer-exclusive or
/// reader-shared.  Declare protected members with
/// `ACIC_GUARDED_BY(mutex_)` and helpers with `ACIC_REQUIRES(mutex_)`.
class ACIC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACIC_ACQUIRE() { mu_.lock(); }
  void unlock() ACIC_RELEASE() { mu_.unlock(); }
  bool try_lock() ACIC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void lock_shared() ACIC_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() ACIC_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool try_lock_shared() ACIC_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  friend class CondVar;
  std::shared_mutex mu_;
};

/// Scoped exclusive lock.  Takes a pointer (Abseil-style) so the call
/// site reads `MutexLock lock(&mutex_);` — visibly a lock, not a copy.
class ACIC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACIC_ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() ACIC_RELEASE() { mu_->unlock(); }

 private:
  Mutex* mu_;
};

/// Scoped shared (reader) lock.
class ACIC_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(Mutex* mu) ACIC_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->lock_shared();
  }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;
  ~ReaderMutexLock() ACIC_RELEASE_SHARED() { mu_->unlock_shared(); }

 private:
  Mutex* mu_;
};

/// Condition variable bound to acic::Mutex.  `wait()` requires the
/// mutex held exclusively — the annotation makes forgetting the lock a
/// compile error, and the loop form guards against spurious wakeups by
/// construction.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, sleeps, and re-acquires `mu` before
  /// returning.  Caller must re-test its predicate (spurious wakeups);
  /// prefer the predicate overload.
  void wait(Mutex& mu) ACIC_REQUIRES(mu);

  /// Waits until `pred()` holds.  `pred` runs with `mu` held.
  template <typename Predicate>
  void wait(Mutex& mu, Predicate pred) ACIC_REQUIRES(mu) {
    while (!pred()) wait(mu);
  }

  void notify_one() noexcept;
  void notify_all() noexcept;

 private:
  std::condition_variable_any cv_;
};

}  // namespace acic
