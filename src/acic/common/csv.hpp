// Minimal CSV persistence for the crowdsourced training database.
//
// The format intentionally stays simple (no quoting/escaping) because the
// database stores only identifiers and numbers; writing a value containing
// a comma or newline is rejected rather than silently corrupting the file.
#pragma once

#include <string>
#include <vector>

namespace acic {

struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Serialize to CSV text; throws acic::Error on values containing ',' or
/// newlines.
std::string to_csv(const CsvTable& table);

/// Parse CSV text produced by to_csv (first line is the header).
CsvTable from_csv(const std::string& text);

/// Write table to a file (throws on I/O failure).
void write_csv_file(const std::string& path, const CsvTable& table);

/// Read a CSV file (throws on I/O failure).
CsvTable read_csv_file(const std::string& path);

}  // namespace acic
