#include "acic/common/parallel.hpp"

#include <atomic>
#include <exception>
#include <thread>
#include <vector>

#include "acic/common/mutex.hpp"

namespace acic {

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  unsigned threads) {
  if (n == 0) return;
  unsigned workers = threads ? threads : std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  workers = static_cast<unsigned>(
      std::min<std::size_t>(workers, n));

  if (workers == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  Mutex error_mutex;

  auto worker = [&] {
    // Once any worker fails, the others drain promptly instead of
    // grinding through the remaining items (a bad config early in a
    // 10k-simulation sweep used to burn the whole sweep before the
    // exception finally surfaced).
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        body(i);
      } catch (...) {
        MutexLock lock(&error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace acic
