// Fixed-width ASCII table printer used by the bench harnesses so that the
// regenerated paper tables/figures come out aligned and diff-friendly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace acic {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with the given precision.
  static std::string num(double v, int precision = 2);

  /// Render with column alignment and a header separator.
  std::string to_string() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace acic
