// Unit helpers shared across the ACIC code base.
//
// Simulation time is a plain `double` number of seconds (SimTime); data
// volumes are `double` bytes so fractional byte accounting from bandwidth
// integration never truncates; money is `double` US dollars.  The helpers
// here exist so call sites read in the paper's units (MB request sizes,
// $/hour instance prices, GB checkpoint files) rather than raw powers of
// two.
#pragma once

#include <cstdint>
#include <string>

namespace acic {

/// Simulated wall-clock time, in seconds.
using SimTime = double;

/// Data volume, in bytes.
using Bytes = double;

/// Monetary amount, in US dollars.
using Money = double;

inline constexpr Bytes KiB = 1024.0;
inline constexpr Bytes MiB = 1024.0 * KiB;
inline constexpr Bytes GiB = 1024.0 * MiB;
inline constexpr Bytes TiB = 1024.0 * GiB;

inline constexpr SimTime kMicrosecond = 1e-6;
inline constexpr SimTime kMillisecond = 1e-3;
inline constexpr SimTime kSecond = 1.0;
inline constexpr SimTime kMinute = 60.0;
inline constexpr SimTime kHour = 3600.0;

/// Bandwidth in bytes/second from the conventional MB/s figure.
constexpr double mb_per_s(double mb) { return mb * MiB; }

/// Hourly price to a per-second rate.
constexpr double per_hour(Money dollars) { return dollars / kHour; }

/// Render a byte count as a human-readable string ("6.4 GiB").
std::string format_bytes(Bytes b);

/// Render a duration as a human-readable string ("2m 13.5s").
std::string format_time(SimTime t);

/// Render dollars with two decimals ("$1.23").
std::string format_money(Money m);

}  // namespace acic
