// CRC32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum framing
// on-disk records in the persistent run store.  Chosen over CRC-32/zlib
// for its better error-detection spectrum on short records; computed in
// software (slicing not needed: store rows are a few hundred bytes and
// written once per multi-second simulation).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace acic {

/// CRC32C of `data` (standard reflected algorithm, init/final xor
/// 0xFFFFFFFF).  crc32c("123456789") == 0xE3069283.
std::uint32_t crc32c(std::string_view data);

}  // namespace acic
