#include "acic/common/mutex.hpp"

namespace acic {

void CondVar::wait(Mutex& mu) {
  // std::condition_variable_any treats Mutex as a BasicLockable: it
  // atomically releases it around the sleep and re-acquires it before
  // returning, so the ACIC_REQUIRES(mu) contract holds on both edges.
  // The release/re-acquire happens inside the standard library, where
  // the analysis does not look — exactly the semantics the annotation
  // promises.
  cv_.wait(mu);
}

void CondVar::notify_one() noexcept { cv_.notify_one(); }
void CondVar::notify_all() noexcept { cv_.notify_all(); }

}  // namespace acic
