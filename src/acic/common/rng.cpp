#include "acic/common/rng.hpp"

#include <cmath>
#include <numbers>

#include "acic/common/error.hpp"

namespace acic {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  ACIC_CHECK(n > 0);
  // Modulo bias is negligible for n << 2^64 (all our uses).
  return next_u64() % n;
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal_jitter(double sigma) {
  return std::exp(sigma * normal());
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(uniform_index(i));
    std::swap(p[i - 1], p[j]);
  }
  return p;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace acic
