#include "acic/common/filelock.hpp"

#include <cerrno>
#include <utility>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

namespace acic {

namespace {

int flock_retry(int fd, int operation) {
  int rc;
  do {
    rc = ::flock(fd, operation);
  } while (rc != 0 && errno == EINTR);
  return rc;
}

}  // namespace

FileLock::FileLock(const std::string& path) : path_(path) {
  do {
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  } while (fd_ < 0 && errno == EINTR);
}

FileLock::FileLock(FileLock&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)) {}

FileLock& FileLock::operator=(FileLock&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
  }
  return *this;
}

FileLock::~FileLock() {
  // Closing the descriptor releases any lock held on it.
  if (fd_ >= 0) ::close(fd_);
}

bool FileLock::lock_shared() {
  return fd_ >= 0 && flock_retry(fd_, LOCK_SH) == 0;
}

bool FileLock::lock_exclusive() {
  return fd_ >= 0 && flock_retry(fd_, LOCK_EX) == 0;
}

bool FileLock::unlock() {
  return fd_ >= 0 && flock_retry(fd_, LOCK_UN) == 0;
}

}  // namespace acic
