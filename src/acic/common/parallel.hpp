// Thread-pool parallel-for over independent work items.
//
// Training-data collection runs thousands of mutually independent
// simulations; each owns its Simulator, so they parallelise trivially
// across host threads.  Exceptions from workers are captured and the
// first one is rethrown on the calling thread.
#pragma once

#include <cstddef>
#include <functional>

namespace acic {

/// Invoke `body(i)` for every i in [0, n) using up to `threads` host
/// threads (0 = hardware concurrency).  Blocks until all items finish.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  unsigned threads = 0);

}  // namespace acic
