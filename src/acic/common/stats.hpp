// Descriptive statistics used by the evaluation harnesses and the CART
// learner: one-pass (Welford) accumulation plus quantile summaries over
// stored samples.
#pragma once

#include <cstddef>
#include <vector>

namespace acic {

/// Streaming mean / variance accumulator (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(n_); }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const OnlineStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Five-number-style summary over a stored sample set.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p25 = 0.0;
  double p75 = 0.0;
};

/// Build a Summary from samples (copied; the input is left untouched).
Summary summarize(const std::vector<double>& samples);

/// Linear-interpolated quantile (q in [0,1]) over samples.
double quantile(std::vector<double> samples, double q);

/// Arithmetic mean; 0 for an empty vector.
double mean_of(const std::vector<double>& samples);

/// Median; 0 for an empty vector.
double median_of(const std::vector<double>& samples);

/// Geometric mean; requires all samples > 0.
double geomean_of(const std::vector<double>& samples);

/// Median absolute deviation around the median; 0 for < 2 samples.
double mad_of(const std::vector<double>& samples);

/// Robust outlier rejection via the modified z-score
/// (0.6745 * |x - median| / MAD, Iglewicz–Hoaglin).  keep[i] is false
/// for samples whose score exceeds `threshold` (3.5 is the customary
/// cut).  A zero MAD (e.g. identical repeats) keeps everything.
struct OutlierFilter {
  std::vector<bool> keep;
  std::size_t rejected = 0;
};
OutlierFilter reject_outliers(const std::vector<double>& samples,
                              double threshold = 3.5);

}  // namespace acic
