// Clang thread-safety-analysis attributes behind ACIC_* spellings.
//
// These macros make lock discipline *compile-time checked*: a field
// declared `ACIC_GUARDED_BY(mutex_)` cannot be touched without holding
// `mutex_`, and a helper declared `ACIC_REQUIRES(mutex_)` cannot be
// called without it — `-Wthread-safety` (the ACIC_THREAD_SAFETY CMake
// option promotes it to an error) rejects the program otherwise.  They
// are the concurrency analogue of `acic::check` (DESIGN.md §5): value
// contracts are executable, lock contracts are compilable.
//
// Under any compiler without the attribute family (GCC, MSVC) every
// macro expands to nothing, so annotated code stays portable; the
// analysis runs wherever Clang builds the tree (the `thread-safety`
// CMake preset and CI job).  The negative-compile tests under
// tests/negative_compile/ prove the macros are live under Clang — an
// accidental no-op definition there would fail the suite.
//
// Only `acic::Mutex` (common/mutex.hpp) may be named as a capability;
// raw std::mutex is banned outside that file by tools/lint/acic_lint.py.
//
// Attribute reference:
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define ACIC_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef ACIC_THREAD_ANNOTATION_
#define ACIC_THREAD_ANNOTATION_(x)  // no-op off Clang
#endif

/// Declares a type to be a lockable capability ("mutex" names the kind
/// in diagnostics).
#define ACIC_CAPABILITY(x) ACIC_THREAD_ANNOTATION_(capability(x))

/// Declares a RAII type whose constructor acquires and destructor
/// releases a capability (MutexLock, ReaderMutexLock).
#define ACIC_SCOPED_CAPABILITY ACIC_THREAD_ANNOTATION_(scoped_lockable)

/// Field/variable may only be accessed while holding `x`.
#define ACIC_GUARDED_BY(x) ACIC_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer field whose *pointee* may only be accessed while holding `x`
/// (the pointer itself is unguarded).
#define ACIC_PT_GUARDED_BY(x) ACIC_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the listed capabilities held exclusively (the
/// `_locked()` helper contract).
#define ACIC_REQUIRES(...) \
  ACIC_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function requires the listed capabilities held at least shared.
#define ACIC_REQUIRES_SHARED(...) \
  ACIC_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and does not release it.
#define ACIC_ACQUIRE(...) \
  ACIC_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ACIC_ACQUIRE_SHARED(...) \
  ACIC_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases a capability acquired earlier.
#define ACIC_RELEASE(...) \
  ACIC_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define ACIC_RELEASE_SHARED(...) \
  ACIC_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define ACIC_RELEASE_GENERIC(...) \
  ACIC_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

/// Function attempts the acquisition; `result` is the success value.
#define ACIC_TRY_ACQUIRE(result, ...) \
  ACIC_THREAD_ANNOTATION_(try_acquire_capability(result, __VA_ARGS__))
#define ACIC_TRY_ACQUIRE_SHARED(result, ...) \
  ACIC_THREAD_ANNOTATION_(try_acquire_shared_capability(result, __VA_ARGS__))

/// Function must be called *without* the listed capabilities held —
/// catches self-deadlock through re-entrant public APIs.
#define ACIC_EXCLUDES(...) ACIC_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Documents lock-ordering edges for deadlock detection.
#define ACIC_ACQUIRED_BEFORE(...) \
  ACIC_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define ACIC_ACQUIRED_AFTER(...) \
  ACIC_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Function returns a reference to the capability guarding its result.
#define ACIC_RETURN_CAPABILITY(x) ACIC_THREAD_ANNOTATION_(lock_returned(x))

/// Runtime assertion that the capability is held (for code reached both
/// with and without the lock, after an explicit check).
#define ACIC_ASSERT_CAPABILITY(x) \
  ACIC_THREAD_ANNOTATION_(assert_capability(x))
#define ACIC_ASSERT_SHARED_CAPABILITY(x) \
  ACIC_THREAD_ANNOTATION_(assert_shared_capability(x))

/// Opt-out escape hatch.  Every use MUST carry a one-line justification
/// comment on the same or the preceding line — tools/lint/acic_lint.py
/// rejects bare suppressions.
#define ACIC_NO_THREAD_SAFETY_ANALYSIS \
  ACIC_THREAD_ANNOTATION_(no_thread_safety_analysis)
