#include "acic/common/csv.hpp"

#include <fstream>
#include <sstream>

#include "acic/common/error.hpp"

namespace acic {

namespace {

void append_row(std::ostringstream& os, const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    ACIC_CHECK_MSG(row[i].find_first_of(",\n\r") == std::string::npos,
                   "CSV cell contains a separator: '" << row[i] << "'");
    if (i) os << ',';
    os << row[i];
  }
  os << '\n';
}

std::vector<std::string> split_row(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream is(line);
  while (std::getline(is, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

}  // namespace

std::string to_csv(const CsvTable& table) {
  std::ostringstream os;
  append_row(os, table.header);
  for (const auto& row : table.rows) {
    ACIC_CHECK_MSG(row.size() == table.header.size(),
                   "CSV row arity mismatch");
    append_row(os, row);
  }
  return os.str();
}

CsvTable from_csv(const std::string& text) {
  CsvTable table;
  std::istringstream is(text);
  std::string line;
  bool first = true;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    auto cells = split_row(line);
    if (first) {
      table.header = std::move(cells);
      first = false;
    } else {
      ACIC_CHECK_MSG(cells.size() == table.header.size(),
                     "CSV row arity mismatch while parsing");
      table.rows.push_back(std::move(cells));
    }
  }
  return table;
}

void write_csv_file(const std::string& path, const CsvTable& table) {
  std::ofstream out(path, std::ios::trunc);
  ACIC_CHECK_MSG(out.good(), "cannot open for write: " << path);
  out << to_csv(table);
  ACIC_CHECK_MSG(out.good(), "write failed: " << path);
}

CsvTable read_csv_file(const std::string& path) {
  std::ifstream in(path);
  ACIC_CHECK_MSG(in.good(), "cannot open for read: " << path);
  std::ostringstream os;
  os << in.rdbuf();
  return from_csv(os.str());
}

}  // namespace acic
