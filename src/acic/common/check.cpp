#include "acic/common/check.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace acic {

namespace {

std::atomic<ContractHandler> g_handler{&throw_contract_handler};

}  // namespace

const char* to_string(ContractKind kind) {
  switch (kind) {
    case ContractKind::kCheck:
      return "ACIC_CHECK";
    case ContractKind::kExpects:
      return "ACIC_EXPECTS";
    case ContractKind::kEnsures:
      return "ACIC_ENSURES";
    case ContractKind::kDcheck:
      return "ACIC_DCHECK";
  }
  return "ACIC_CHECK";
}

std::string ContractViolation::describe() const {
  std::ostringstream os;
  os << to_string(kind) << " failed: (" << expression << ") at " << file
     << ":" << line << " in " << function;
  if (!message.empty()) os << " — " << message;
  return os.str();
}

ContractError::ContractError(ContractViolation violation)
    : Error(violation.describe()), violation_(std::move(violation)) {}

void throw_contract_handler(const ContractViolation& violation) {
  throw ContractError(violation);
}

void abort_contract_handler(const ContractViolation& violation) {
  const std::string text = violation.describe();
  std::fprintf(stderr, "%s\n", text.c_str());
  std::fflush(stderr);
  std::abort();
}

ContractHandler set_contract_handler(ContractHandler handler) {
  ACIC_EXPECTS(handler != nullptr);
  return g_handler.exchange(handler, std::memory_order_acq_rel);
}

ContractHandler contract_handler() {
  return g_handler.load(std::memory_order_acquire);
}

namespace detail {

void contract_fail(ContractKind kind, const char* expr, const char* file,
                   int line, const char* function, std::string message) {
  ContractViolation violation;
  violation.kind = kind;
  violation.expression = expr;
  violation.file = file;
  violation.line = line;
  violation.function = function;
  violation.message = std::move(message);
  contract_handler()(violation);
  // A handler that returns leaves the violated invariant live; refuse to
  // continue past it.
  abort_contract_handler(violation);
}

}  // namespace detail
}  // namespace acic
