// Advisory file locking for multi-process coordination.
//
// A FileLock owns one file descriptor on a dedicated lock file and
// takes BSD `flock(2)` locks on it — shared for readers/appenders,
// exclusive for writers that must see (and produce) a consistent whole
// file, e.g. the run store's compaction.  flock locks attach to the
// *open file description*, so two FileLock objects on the same path
// contend with each other even inside one process — which is exactly
// what lets a test simulate two processes sharing a store directory.
//
// The locks are advisory: every party touching the protected resource
// must go through a FileLock on the same path.  Locking a separate
// `.lock` file (rather than the data file itself) keeps the lock
// identity stable across atomic rename-replacement of the data file.
//
// All methods are failure-tolerant by design: a lock that cannot be
// taken (unsupported filesystem, EBADF after a failed open) reports
// `false` instead of throwing, so callers on a degraded store can fall
// back to single-process behaviour instead of crashing.
#pragma once

#include <string>

namespace acic {

class FileLock {
 public:
  /// Opens (creating if needed, mode 0644) the lock file.  Check
  /// `valid()`: an unopenable path (read-only directory, ENOENT parent)
  /// yields an invalid lock whose lock methods all return false.
  explicit FileLock(const std::string& path);
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;
  FileLock(FileLock&& other) noexcept;
  FileLock& operator=(FileLock&& other) noexcept;
  ~FileLock();

  bool valid() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// Blocking lock acquisition (retried through EINTR).  Upgrades and
  /// downgrades in place: flock atomically converts an existing lock.
  bool lock_shared();
  bool lock_exclusive();
  bool unlock();

 private:
  int fd_ = -1;
  std::string path_;
};

/// RAII guard: takes the requested lock in the constructor, releases in
/// the destructor.  `held()` reports whether acquisition succeeded (it
/// fails only on an invalid FileLock or a filesystem without flock).
class ScopedFileLock {
 public:
  enum class Mode { kShared, kExclusive };

  ScopedFileLock(FileLock& lock, Mode mode) : lock_(&lock) {
    held_ = (mode == Mode::kExclusive) ? lock.lock_exclusive()
                                       : lock.lock_shared();
  }
  ScopedFileLock(const ScopedFileLock&) = delete;
  ScopedFileLock& operator=(const ScopedFileLock&) = delete;
  ~ScopedFileLock() {
    if (held_) lock_->unlock();
  }

  bool held() const { return held_; }

 private:
  FileLock* lock_;
  bool held_ = false;
};

}  // namespace acic
