#include "acic/common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "acic/common/error.hpp"

namespace acic {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double quantile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  ACIC_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  OnlineStats acc;
  for (double x : samples) acc.add(x);
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  s.median = quantile(samples, 0.5);
  s.p25 = quantile(samples, 0.25);
  s.p75 = quantile(samples, 0.75);
  return s;
}

double mean_of(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (double x : samples) sum += x;
  return sum / static_cast<double>(samples.size());
}

double median_of(const std::vector<double>& samples) {
  return quantile(samples, 0.5);
}

double geomean_of(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : samples) {
    ACIC_CHECK_MSG(x > 0.0, "geomean requires positive samples");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(samples.size()));
}

double mad_of(const std::vector<double>& samples) {
  if (samples.size() < 2) return 0.0;
  const double med = median_of(samples);
  std::vector<double> deviations;
  deviations.reserve(samples.size());
  for (double x : samples) deviations.push_back(std::abs(x - med));
  return median_of(deviations);
}

OutlierFilter reject_outliers(const std::vector<double>& samples,
                              double threshold) {
  ACIC_CHECK(threshold > 0.0);
  OutlierFilter filter;
  filter.keep.assign(samples.size(), true);
  const double mad = mad_of(samples);
  if (mad <= 0.0) return filter;  // identical (or too few) repeats
  const double med = median_of(samples);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double score = 0.6745 * std::abs(samples[i] - med) / mad;
    if (score > threshold) {
      filter.keep[i] = false;
      ++filter.rejected;
    }
  }
  return filter;
}

}  // namespace acic
