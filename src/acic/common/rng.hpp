// Deterministic pseudo-random number generation.
//
// Every stochastic element of the simulator (multi-tenant jitter, walker
// tie-breaks, workload sampling) draws from an explicitly seeded Rng so
// experiments are reproducible bit-for-bit across runs and platforms.  The
// engine is xoshiro256**, seeded through splitmix64 as its authors
// recommend.
#pragma once

#include <cstdint>
#include <vector>

namespace acic {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box–Muller.
  double normal();

  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev);

  /// Lognormal multiplicative jitter with median 1 and the given sigma;
  /// used to model multi-tenant cloud performance variability.
  double lognormal_jitter(double sigma);

  /// Fisher–Yates shuffle of an index permutation [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derive an independent child generator (for per-rank streams).
  Rng fork();

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace acic
