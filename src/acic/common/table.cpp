#include "acic/common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "acic/common/error.hpp"

namespace acic {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  ACIC_CHECK(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
  ACIC_CHECK_MSG(row.size() == header_.size(),
                 "row arity " << row.size() << " != header " << header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(width[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|" : "|") << std::string(width[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << to_string(); }

}  // namespace acic
