#include "acic/common/units.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace acic {

std::string format_bytes(Bytes b) {
  static constexpr std::array<const char*, 5> kSuffix = {"B", "KiB", "MiB",
                                                         "GiB", "TiB"};
  double v = b;
  std::size_t i = 0;
  while (v >= 1024.0 && i + 1 < kSuffix.size()) {
    v /= 1024.0;
    ++i;
  }
  char buf[64];
  if (i == 0) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", v, kSuffix[i]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, kSuffix[i]);
  }
  return buf;
}

std::string format_time(SimTime t) {
  char buf[64];
  if (t < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", t * 1e6);
  } else if (t < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", t * 1e3);
  } else if (t < kMinute) {
    std::snprintf(buf, sizeof(buf), "%.2f s", t);
  } else if (t < kHour) {
    std::snprintf(buf, sizeof(buf), "%dm %.1fs", static_cast<int>(t / kMinute),
                  std::fmod(t, kMinute));
  } else {
    std::snprintf(buf, sizeof(buf), "%dh %dm", static_cast<int>(t / kHour),
                  static_cast<int>(std::fmod(t, kHour) / kMinute));
  }
  return buf;
}

std::string format_money(Money m) {
  char buf[64];
  if (m >= 1000.0) {
    std::snprintf(buf, sizeof(buf), "$%.1fK", m / 1000.0);
  } else {
    std::snprintf(buf, sizeof(buf), "$%.2f", m);
  }
  return buf;
}

}  // namespace acic
