// Contract-checking subsystem used across the library.
//
// Two tiers of checks:
//
//  * Always-on — `ACIC_CHECK` (internal invariant), `ACIC_EXPECTS`
//    (precondition at an API boundary) and `ACIC_ENSURES`
//    (postcondition).  These stay active in every build type; they guard
//    conditions whose violation would silently corrupt simulation results
//    (the paper's core claim is that identical configs map to identical
//    time/cost, so a corrupted run is worse than an aborted one).
//
//  * Debug-tier — `ACIC_DCHECK`, for O(n) audits and hot inner loops.
//    Compiled out when `ACIC_ENABLE_DCHECKS` is 0 (the default for
//    NDEBUG builds); force-enabled by the sanitizer presets via the
//    `ACIC_DCHECKS` CMake option.
//
// Every macro accepts an optional streamed message after the condition:
//
//   ACIC_CHECK(t >= now_, "event scheduled in the past: t=" << t);
//
// On violation the installed failure handler receives a fully-described
// `ContractViolation` (kind, expression, file:line, function, message).
// The default handler throws `acic::ContractError` (derived from
// `acic::Error`, so existing `EXPECT_THROW(..., Error)` tests keep
// working); `abort_contract_handler` prints and aborts for fail-fast
// production binaries and death tests.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace acic {

/// Base error type for the library (kept here so `ContractError` can
/// derive from it; `acic/common/error.hpp` re-exports it).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

enum class ContractKind : std::uint8_t {
  kCheck,    ///< internal invariant (ACIC_CHECK)
  kExpects,  ///< precondition (ACIC_EXPECTS)
  kEnsures,  ///< postcondition (ACIC_ENSURES)
  kDcheck,   ///< debug-tier audit (ACIC_DCHECK)
};

const char* to_string(ContractKind kind);

/// Everything known about a failed contract, handed to the failure
/// handler before any unwinding happens.
struct ContractViolation {
  ContractKind kind = ContractKind::kCheck;
  const char* expression = "";
  const char* file = "";
  int line = 0;
  const char* function = "";
  std::string message;  ///< formatted user message, possibly empty

  /// "ACIC_CHECK failed: (expr) at file:line in fn — message"
  std::string describe() const;
};

/// Thrown by the default failure handler.
class ContractError : public Error {
 public:
  explicit ContractError(ContractViolation violation);
  const ContractViolation& violation() const { return violation_; }

 private:
  ContractViolation violation_;
};

/// A failure handler must not return; if it does, the runtime aborts.
using ContractHandler = void (*)(const ContractViolation&);

/// Default: throw `ContractError` (unit-testable failures).
[[noreturn]] void throw_contract_handler(const ContractViolation& violation);

/// Print the violation to stderr and abort (fail-fast binaries,
/// death tests, contexts where unwinding is unsafe).
[[noreturn]] void abort_contract_handler(const ContractViolation& violation);

/// Install a handler; returns the previous one.  Thread-safe.
ContractHandler set_contract_handler(ContractHandler handler);
ContractHandler contract_handler();

/// RAII handler swap for tests.
class ScopedContractHandler {
 public:
  explicit ScopedContractHandler(ContractHandler handler)
      : previous_(set_contract_handler(handler)) {}
  ~ScopedContractHandler() { set_contract_handler(previous_); }
  ScopedContractHandler(const ScopedContractHandler&) = delete;
  ScopedContractHandler& operator=(const ScopedContractHandler&) = delete;

 private:
  ContractHandler previous_;
};

namespace detail {

/// Seed for the streamed-message macro argument: builds a std::string
/// from `<<` chains without requiring a named ostringstream at the
/// call site.
class MessageStream {
 public:
  template <typename T>
  MessageStream& operator<<(T&& value) {
    os_ << value;
    return *this;
  }
  std::string str() const { return os_.str(); }

 private:
  std::ostringstream os_;
};

/// Dispatch a violation to the installed handler (never returns).
[[noreturn]] void contract_fail(ContractKind kind, const char* expr,
                                const char* file, int line,
                                const char* function, std::string message);

}  // namespace detail
}  // namespace acic

// Tier selection: ACIC_ENABLE_DCHECKS may be forced from the build
// system; otherwise it follows NDEBUG.
#if !defined(ACIC_ENABLE_DCHECKS)
#if defined(NDEBUG)
#define ACIC_ENABLE_DCHECKS 0
#else
#define ACIC_ENABLE_DCHECKS 1
#endif
#endif

namespace acic {
/// True when ACIC_DCHECK conditions are evaluated in this build.
constexpr bool contract_dchecks_enabled() { return ACIC_ENABLE_DCHECKS != 0; }
}  // namespace acic

#define ACIC_CONTRACT_CHECK_(kind, cond, ...)                                \
  do {                                                                       \
    if (!(cond)) [[unlikely]] {                                              \
      ::acic::detail::contract_fail(                                         \
          kind, #cond, __FILE__, __LINE__,                                   \
          static_cast<const char*>(__func__),                                \
          (::acic::detail::MessageStream{} __VA_OPT__(<< __VA_ARGS__))       \
              .str());                                                       \
    }                                                                        \
  } while (0)

/// Always-on internal invariant.
#define ACIC_CHECK(...) \
  ACIC_CONTRACT_CHECK_(::acic::ContractKind::kCheck, __VA_ARGS__)

/// Always-on precondition (argument/state validation at API boundaries).
#define ACIC_EXPECTS(...) \
  ACIC_CONTRACT_CHECK_(::acic::ContractKind::kExpects, __VA_ARGS__)

/// Always-on postcondition (result validation before returning).
#define ACIC_ENSURES(...) \
  ACIC_CONTRACT_CHECK_(::acic::ContractKind::kEnsures, __VA_ARGS__)

/// Debug-tier audit: compiled out (condition parsed, never evaluated)
/// unless ACIC_ENABLE_DCHECKS is set.
#if ACIC_ENABLE_DCHECKS
#define ACIC_DCHECK(...) \
  ACIC_CONTRACT_CHECK_(::acic::ContractKind::kDcheck, __VA_ARGS__)
#else
#define ACIC_DCHECK(cond, ...)   \
  do {                           \
    (void)sizeof(!(cond));       \
  } while (0)
#endif

/// Back-compat spelling from the original error.hpp.
#define ACIC_CHECK_MSG(cond, msg) ACIC_CHECK(cond, msg)
