#include "acic/obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "acic/common/check.hpp"

namespace acic::obs {

namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::vector<double> geometric_buckets(double first, double ratio, int n) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(n));
  double b = first;
  for (int i = 0; i < n; ++i) {
    bounds.push_back(b);
    b *= ratio;
  }
  return bounds;
}

}  // namespace

std::vector<double> latency_buckets_us() {
  // 1us, 4us, 16us, ... ~17s: 13 buckets spanning sub-cache-hit to
  // "the model retrained inside the request".
  return geometric_buckets(1.0, 4.0, 13);
}

std::vector<double> duration_buckets_s() {
  // 1ms, 8ms, 64ms, ... ~4.5h: simulated job wall times.
  return geometric_buckets(1e-3, 8.0, 8);
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  ACIC_EXPECTS(!bounds_.empty(), "histogram needs at least one bucket bound");
  ACIC_EXPECTS(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                   std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                       bounds_.end(),
               "histogram bounds must be strictly increasing");
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::uint64_t Histogram::bucket(std::size_t i) const {
  ACIC_EXPECTS(i <= bounds_.size(), "bucket index " << i << " out of range");
  return buckets_[i].load(std::memory_order_relaxed);
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

double HistogramSnapshot::quantile(double q) const {
  ACIC_EXPECTS(q >= 0.0 && q <= 1.0, "quantile " << q << " outside [0, 1]");
  if (count == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(count) + 0.5);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= target) {
      return i < bounds.size() ? bounds[i] : bounds.back();
    }
  }
  return bounds.back();
}

std::string MetricsSnapshot::to_text(const std::string& indent) const {
  std::string out;
  for (const auto& [name, value] : counters) {
    out += indent + name + " " + format_double(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    out += indent + name + " " + format_double(value) + "\n";
  }
  for (const auto& h : histograms) {
    out += indent + h.name + " count=" + format_double(double(h.count)) +
           " sum=" + format_double(h.sum) + " mean=" + format_double(h.mean()) +
           " p50=" + format_double(h.quantile(0.5)) +
           " p99=" + format_double(h.quantile(0.99)) + "\n";
  }
  return out;
}

CsvTable MetricsSnapshot::to_csv() const {
  CsvTable t;
  t.header = {"name", "kind", "value", "count", "sum", "mean", "p50", "p95",
              "p99"};
  for (const auto& [name, value] : counters) {
    t.rows.push_back({name, "counter", format_double(value), "", "", "", "",
                      "", ""});
  }
  for (const auto& [name, value] : gauges) {
    t.rows.push_back({name, "gauge", format_double(value), "", "", "", "",
                      "", ""});
  }
  for (const auto& h : histograms) {
    t.rows.push_back({h.name, "histogram", "", std::to_string(h.count),
                      format_double(h.sum), format_double(h.mean()),
                      format_double(h.quantile(0.5)),
                      format_double(h.quantile(0.95)),
                      format_double(h.quantile(0.99))});
  }
  return t;
}

const double* MetricsSnapshot::counter(const std::string& name) const {
  for (const auto& c : counters) {
    if (c.first == name) return &c.second;
  }
  return nullptr;
}

const double* MetricsSnapshot::gauge(const std::string& name) const {
  for (const auto& g : gauges) {
    if (g.first == name) return &g.second;
  }
  return nullptr;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    const std::string& name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

void MetricsRegistry::claim_name(const std::string& name, Kind kind) {
  ACIC_EXPECTS(!name.empty(), "metric needs a non-empty name");
  const auto [it, inserted] = kinds_.emplace(name, kind);
  if (!inserted && it->second != kind) {
    throw Error("metric '" + name + "' already registered as another kind");
  }
}

Counter& MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(&mutex_);
  claim_name(name, Kind::kCounter);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(&mutex_);
  claim_name(name, Kind::kGauge);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<double>& upper_bounds) {
  MutexLock lock(&mutex_);
  claim_name(name, Kind::kHistogram);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(upper_bounds);
  } else if (slot->bounds() != upper_bounds) {
    throw Error("histogram '" + name + "' re-registered with different bounds");
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MutexLock lock(&mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.bounds = h->bounds();
    hs.buckets.reserve(hs.bounds.size() + 1);
    for (std::size_t i = 0; i <= hs.bounds.size(); ++i) {
      hs.buckets.push_back(h->bucket(i));
    }
    hs.count = h->count();
    hs.sum = h->sum();
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

void MetricsRegistry::reset_all() {
  MutexLock lock(&mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace acic::obs
