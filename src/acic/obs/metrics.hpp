// Observability layer: a process-wide metrics registry.
//
// Every long-lived subsystem (query service, simulation runner, file
// systems, training sweeps) reports into named instruments so that a
// production deployment — the ROADMAP's "heavy traffic" query service —
// can answer "what is this process doing?" without a debugger:
//
//  * Counter   — monotonically growing double (requests, bytes, hours).
//  * Gauge     — last-written value (queue depth, model age).
//  * Histogram — fixed upper-bound buckets + count + sum; the default
//                bucket sets cover request latencies (microseconds) and
//                simulated run times (seconds).
//  * Timer     — RAII guard observing its own lifetime into a Histogram.
//
// Hot-path writes are lock-free (relaxed atomics); a mutex guards only
// instrument *creation* and snapshotting.  Instrument references stay
// valid for the registry's lifetime, so callers hoist the name lookup out
// of their hot loops.  `snapshot()` returns a deep copy that later
// updates cannot mutate, renderable as text ("name value" lines, greppable
// like the query protocol) or as a CsvTable for offline analysis.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "acic/common/csv.hpp"
#include "acic/common/mutex.hpp"
#include "acic/common/thread_annotations.hpp"

namespace acic::obs {

class Counter {
 public:
  void inc() noexcept { add(1.0); }
  void add(double delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Default latency buckets, microseconds: 1us .. ~16s, powers of 4.
std::vector<double> latency_buckets_us();
/// Default duration buckets, seconds: 1ms .. ~4.5h, powers of 8.
std::vector<double> duration_buckets_s();

class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing and non-empty; an
  /// implicit +inf overflow bucket is appended.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Bucket i counts observations <= bounds()[i]; bucket bounds().size()
  /// is the overflow bucket.
  std::uint64_t bucket(std::size_t i) const;
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_+1 slots
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// RAII timer: observes its own lifetime (microseconds of wall time) into
/// the sink histogram on destruction.
class Timer {
 public:
  explicit Timer(Histogram& sink)
      : sink_(&sink), start_(std::chrono::steady_clock::now()) {}
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  ~Timer() { sink_->observe(elapsed_us()); }

  double elapsed_us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  Histogram* sink_;
  std::chrono::steady_clock::time_point start_;
};

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  ///< bounds.size()+1 (last = overflow)
  std::uint64_t count = 0;
  double sum = 0.0;

  double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
  /// Upper bound of the bucket containing quantile q (0..1); the last
  /// finite bound when q lands in the overflow bucket.
  double quantile(double q) const;
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, double>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// "name value" / "name count=… sum=… p50=… p99=…" lines, one per
  /// instrument, sorted by name.  `indent` prefixes every line.
  std::string to_text(const std::string& indent = "") const;
  /// One row per instrument: name, kind, value, count, sum, mean, p50,
  /// p95, p99 (empty cells where a column does not apply).
  CsvTable to_csv() const;

  /// Lookup helpers (nullptr when absent) — for tests and assertions.
  const double* counter(const std::string& name) const;
  const double* gauge(const std::string& name) const;
  const HistogramSnapshot* histogram(const std::string& name) const;
};

/// Named-instrument registry.  `global()` is the process-wide instance;
/// tests construct private registries for isolation.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& global();

  /// Find-or-create.  Re-registering a name under a different kind (or a
  /// histogram under different bounds) throws acic::Error.  Returned
  /// references live as long as the registry.
  Counter& counter(const std::string& name) ACIC_EXCLUDES(mutex_);
  Gauge& gauge(const std::string& name) ACIC_EXCLUDES(mutex_);
  Histogram& histogram(const std::string& name,
                       const std::vector<double>& upper_bounds =
                           latency_buckets_us()) ACIC_EXCLUDES(mutex_);

  /// Deep, point-in-time copy of every instrument.
  MetricsSnapshot snapshot() const ACIC_EXCLUDES(mutex_);

  /// Zero every instrument (registered handles stay valid).  Meant for
  /// tests and between benchmark repetitions, not the serving path.
  void reset_all() ACIC_EXCLUDES(mutex_);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  void claim_name(const std::string& name, Kind kind) ACIC_REQUIRES(mutex_);

  // The mutex guards instrument *creation* and snapshotting only;
  // hot-path writes go through the returned references' relaxed
  // atomics and never take it.
  mutable Mutex mutex_;
  std::map<std::string, Kind> kinds_ ACIC_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Counter>> counters_
      ACIC_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      ACIC_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      ACIC_GUARDED_BY(mutex_);
};

}  // namespace acic::obs
