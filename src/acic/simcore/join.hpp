// Fork/join helper for coroutine processes: run several Tasks concurrently
// and resume the caller when every one has finished.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "acic/simcore/simulator.hpp"
#include "acic/simcore/sync.hpp"
#include "acic/simcore/task.hpp"

namespace acic::sim {

namespace detail {

struct JoinState {
  explicit JoinState(Simulator& sim, std::size_t n)
      : remaining(n), cond(sim) {}
  std::size_t remaining;
  Condition cond;
};

inline Task run_and_count(Task inner, std::shared_ptr<JoinState> state) {
  co_await std::move(inner);
  if (--state->remaining == 0) state->cond.notify_all();
}

}  // namespace detail

/// Launch every task concurrently on `sim` and suspend the caller until
/// all of them complete.  Exceptions escaping a child surface from
/// Simulator::run() (children are detached processes).
inline Task when_all(Simulator& sim, std::vector<Task> tasks) {
  if (tasks.empty()) co_return;
  if (tasks.size() == 1) {
    // Single child: run it inline, no join bookkeeping.
    co_await std::move(tasks.front());
    co_return;
  }
  auto state = std::make_shared<detail::JoinState>(sim, tasks.size());
  for (auto& t : tasks) {
    sim.spawn(detail::run_and_count(std::move(t), state));
  }
  while (state->remaining > 0) {
    co_await state->cond.wait();
  }
}

}  // namespace acic::sim
