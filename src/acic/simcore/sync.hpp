// Synchronization primitives for simulated processes.
//
// All primitives resume waiters *through the event queue* at the current
// virtual time rather than inline, so a notifier never runs arbitrary
// coroutine code re-entrantly and wake order is deterministic (FIFO).
#pragma once

#include <coroutine>
#include <cstddef>
#include <deque>
#include <vector>

#include "acic/common/error.hpp"
#include "acic/simcore/simulator.hpp"

namespace acic::sim {

/// One-shot or repeated wait-for-notification point.
///
/// `co_await cond.wait()` suspends until some other process calls
/// `notify_all()` (wakes everyone) or `notify_one()` (wakes the oldest
/// waiter).
class Condition {
 public:
  explicit Condition(Simulator& sim) : sim_(sim) {}

  auto wait() {
    struct Awaiter {
      Condition& cond;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        cond.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  void notify_all() {
    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (auto h : waiters) {
      sim_.at(sim_.now(), [h] { h.resume(); });
    }
  }

  void notify_one() {
    if (waiters_.empty()) return;
    auto h = waiters_.front();
    waiters_.pop_front();
    sim_.at(sim_.now(), [h] { h.resume(); });
  }

  std::size_t waiter_count() const { return waiters_.size(); }

 private:
  Simulator& sim_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Classic counting semaphore; models exclusive device/server slots.
class Semaphore {
 public:
  Semaphore(Simulator& sim, std::size_t permits)
      : sim_(sim), permits_(permits) {}

  auto acquire() {
    struct Awaiter {
      Semaphore& sem;
      bool await_ready() const noexcept {
        if (sem.permits_ > 0) {
          --sem.permits_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        sem.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  void release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      // Hand the permit straight to the waiter.
      sim_.at(sim_.now(), [h] { h.resume(); });
    } else {
      ++permits_;
    }
  }

  std::size_t available() const { return permits_; }

 private:
  Simulator& sim_;
  std::size_t permits_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Reusable barrier over `parties` simulated processes (MPI_Barrier-like).
class Barrier {
 public:
  Barrier(Simulator& sim, std::size_t parties)
      : sim_(sim), parties_(parties) {
    ACIC_CHECK(parties_ > 0);
  }

  auto arrive_and_wait() {
    struct Awaiter {
      Barrier& bar;
      bool await_ready() const noexcept { return false; }
      bool await_suspend(std::coroutine_handle<> h) {
        ++bar.arrived_;
        ACIC_DCHECK(bar.arrived_ <= bar.parties_,
                    "barrier overrun: " << bar.arrived_ << " arrivals for "
                                        << bar.parties_ << " parties");
        if (bar.arrived_ == bar.parties_) {
          // The last arriver releases everyone and proceeds immediately.
          bar.release_all();
          return false;
        }
        bar.waiters_.push_back(h);
        return true;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  std::size_t waiting() const { return arrived_; }

 private:
  void release_all() {
    arrived_ = 0;
    auto waiters = std::move(waiters_);
    waiters_.clear();
    ++generation_;
    for (auto h : waiters) sim_.at(sim_.now(), [h] { h.resume(); });
  }

  Simulator& sim_;
  std::size_t parties_;
  std::size_t arrived_ = 0;
  std::uint64_t generation_ = 0;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Unbounded message queue between simulated processes.
template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Simulator& sim) : cond_(sim) {}

  void send(T value) {
    queue_.push_back(std::move(value));
    cond_.notify_one();
  }

  /// Awaitable receive; completes when a message is available.
  Task recv_into(T& out) {
    while (queue_.empty()) {
      co_await cond_.wait();
    }
    out = std::move(queue_.front());
    queue_.pop_front();
  }

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }

 private:
  Condition cond_;
  std::deque<T> queue_;
};

}  // namespace acic::sim
