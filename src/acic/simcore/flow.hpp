// Flow-level bandwidth-sharing model (SimGrid-style).
//
// A Resource is anything with a byte/s capacity: a NIC transmit path, a
// switch backplane slice, a disk.  A Flow is a data transfer that crosses
// an ordered set of resources and is entitled to a max-min fair share of
// each.  Whenever a flow starts, finishes, or a capacity changes, the
// network re-solves the max-min allocation by progressive filling and
// re-schedules the earliest completion on the simulator's event queue.
//
// This is the contention model that makes the cloud substrate behave like
// the paper's EC2 testbed: an NFS server funnels every client through one
// NIC resource; PVFS2 stripes spread flows over several servers; part-time
// I/O servers make application traffic and storage traffic share the same
// instance NIC; EBS volumes hang off the instance NIC instead of a local
// disk controller.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "acic/common/units.hpp"
#include "acic/simcore/simulator.hpp"
#include "acic/simcore/task.hpp"

namespace acic::sim {

using ResourceId = std::size_t;
using FlowId = std::uint64_t;

inline constexpr FlowId kInvalidFlow = 0;

class FlowNetwork {
 public:
  explicit FlowNetwork(Simulator& sim) : sim_(sim) {}
  FlowNetwork(const FlowNetwork&) = delete;
  FlowNetwork& operator=(const FlowNetwork&) = delete;

  /// Register a resource with the given capacity in bytes/second.
  ResourceId add_resource(std::string name, double capacity);

  /// Change a resource's capacity (jitter / failure injection).  Active
  /// flows are re-allocated immediately.
  void set_capacity(ResourceId id, double capacity);

  double capacity(ResourceId id) const;
  const std::string& resource_name(ResourceId id) const;
  std::size_t resource_count() const { return resources_.size(); }

  /// Begin transferring `bytes` across `path`; `on_complete` fires through
  /// the event queue when the transfer finishes.  Zero-byte transfers
  /// complete immediately.  The path must be non-empty and duplicate-free.
  FlowId start_flow(std::vector<ResourceId> path, Bytes bytes,
                    std::function<void()> on_complete);

  /// Coroutine-friendly transfer: suspends the calling process until the
  /// flow completes.
  Task transfer(std::vector<ResourceId> path, Bytes bytes);

  /// Deadline-bounded transfer: suspends until the flow completes or
  /// `timeout` seconds elapse, whichever comes first.  On timeout the
  /// flow is cancelled (its undelivered bytes are abandoned, see
  /// `bytes_cancelled()`) and `*completed` is set false; on completion
  /// the timer is cancelled and `*completed` is set true.  The client
  /// observing a timed-out request maps to the paper's "lost connection
  /// to an I/O server": the payload is gone and must be re-sent.
  Task transfer_within(std::vector<ResourceId> path, Bytes bytes,
                       SimTime timeout, bool* completed);

  /// Abort an active flow: its remaining bytes are dropped (credited to
  /// `bytes_cancelled()`), rates are re-solved, and its on_complete never
  /// fires.  Harmless no-op if the flow already finished.
  void cancel_flow(FlowId id);

  std::size_t active_flows() const { return flows_.size(); }

  /// Current allocated rate of an active flow (0 if unknown/finished).
  double flow_rate(FlowId id) const;

  /// Cumulative bytes delivered across all completed flows.
  Bytes bytes_delivered() const { return bytes_delivered_; }

  /// Cumulative bytes injected by start_flow()/transfer() since creation.
  Bytes bytes_injected() const { return bytes_injected_; }

  /// Cumulative undelivered bytes abandoned by cancel_flow().
  Bytes bytes_cancelled() const { return bytes_cancelled_; }

 private:
  struct Flow {
    FlowId id = kInvalidFlow;
    std::vector<ResourceId> path;
    Bytes remaining = 0.0;
    double rate = 0.0;
    std::function<void()> on_complete;
  };

  /// Integrate progress of all flows up to sim_.now().
  void advance();
  /// Re-solve max-min fair sharing (progressive filling).
  void recompute_rates();
  /// Byte conservation: injected == delivered + cancelled + in-flight
  /// (within fp noise).  Backs an ACIC_DCHECK after every completion
  /// sweep.
  bool bytes_conserved() const;
  /// Allocation feasibility: no resource carries more than its capacity.
  bool rates_feasible() const;
  /// (Re)arm the single pending completion event.
  void schedule_next_completion();
  void handle_completion_event(std::uint64_t generation);

  Simulator& sim_;
  struct Resource {
    std::string name;
    double capacity;
  };
  std::vector<Resource> resources_;
  std::vector<Flow> flows_;
  SimTime last_update_ = 0.0;
  std::uint64_t generation_ = 0;
  FlowId next_flow_id_ = 1;
  Bytes bytes_delivered_ = 0.0;
  Bytes bytes_injected_ = 0.0;
  Bytes bytes_cancelled_ = 0.0;
};

}  // namespace acic::sim
