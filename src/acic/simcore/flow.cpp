#include "acic/simcore/flow.hpp"

#include <algorithm>
#include <cmath>

#include "acic/common/error.hpp"

namespace acic::sim {

namespace {
// Flows with less than this many bytes left are considered complete; it
// absorbs floating-point residue from rate integration.
constexpr Bytes kEpsilonBytes = 1e-3;
// Completion tolerance in *time*: a flow that would finish within a
// nanosecond is finished now.  This guards against the zero-progress spin
// where the next completion lies below one ulp of the current (large)
// timestamp, so the clock cannot actually advance to it.
constexpr SimTime kTimeQuantum = 1e-9;

bool flow_done(Bytes remaining, double rate) {
  if (remaining <= kEpsilonBytes) return true;
  return rate > 0.0 && remaining <= rate * kTimeQuantum;
}

bool path_is_duplicate_free(const std::vector<ResourceId>& path) {
  for (std::size_t i = 0; i < path.size(); ++i) {
    for (std::size_t j = i + 1; j < path.size(); ++j) {
      if (path[i] == path[j]) return false;
    }
  }
  return true;
}
}  // namespace

ResourceId FlowNetwork::add_resource(std::string name, double capacity) {
  ACIC_EXPECTS(capacity >= 0.0, "negative capacity " << capacity << " for "
                                                     << name);
  resources_.push_back(Resource{std::move(name), capacity});
  return resources_.size() - 1;
}

void FlowNetwork::set_capacity(ResourceId id, double capacity) {
  ACIC_EXPECTS(id < resources_.size(), "unknown resource " << id);
  ACIC_EXPECTS(capacity >= 0.0, "negative capacity " << capacity << " for "
                                                     << resources_[id].name);
  advance();
  resources_[id].capacity = capacity;
  recompute_rates();
  schedule_next_completion();
}

double FlowNetwork::capacity(ResourceId id) const {
  ACIC_EXPECTS(id < resources_.size(), "unknown resource " << id);
  return resources_[id].capacity;
}

const std::string& FlowNetwork::resource_name(ResourceId id) const {
  ACIC_EXPECTS(id < resources_.size(), "unknown resource " << id);
  return resources_[id].name;
}

FlowId FlowNetwork::start_flow(std::vector<ResourceId> path, Bytes bytes,
                               std::function<void()> on_complete) {
  ACIC_EXPECTS(!path.empty(), "flow path must name at least one resource");
  for (ResourceId r : path) {
    ACIC_EXPECTS(r < resources_.size(), "unknown resource " << r
                                                            << " in flow path");
  }
  // Duplicate resources in one path would double-count the flow against
  // that resource in the max-min solve (documented contract; O(p^2) over
  // paths of length <= 4, so debug tier only).
  ACIC_DCHECK(path_is_duplicate_free(path),
              "flow path crosses the same resource twice");
  ACIC_EXPECTS(bytes >= 0.0, "negative flow size " << bytes);

  const FlowId id = next_flow_id_++;
  bytes_injected_ += bytes;
  if (bytes <= kEpsilonBytes) {
    bytes_delivered_ += bytes;
    if (on_complete) sim_.at(sim_.now(), std::move(on_complete));
    return id;
  }
  advance();
  flows_.push_back(
      Flow{id, std::move(path), bytes, 0.0, std::move(on_complete)});
  recompute_rates();
  schedule_next_completion();
  return id;
}

Task FlowNetwork::transfer(std::vector<ResourceId> path, Bytes bytes) {
  struct WaitState {
    bool done = false;
    std::coroutine_handle<> waiter;
  };
  auto state = std::make_shared<WaitState>();
  start_flow(std::move(path), bytes, [state] {
    state->done = true;
    if (state->waiter) state->waiter.resume();
  });
  // NOTE: the awaiter holds a raw pointer, not the shared_ptr — awaiter
  // temporaries must stay trivially destructible (see task.hpp).  The
  // `state` local keeps the WaitState alive across the suspension.
  struct Awaiter {
    WaitState* state;
    bool await_ready() const noexcept { return state->done; }
    void await_suspend(std::coroutine_handle<> h) { state->waiter = h; }
    void await_resume() const noexcept {}
  };
  co_await Awaiter{state.get()};
}

Task FlowNetwork::transfer_within(std::vector<ResourceId> path, Bytes bytes,
                                  SimTime timeout, bool* completed) {
  ACIC_EXPECTS(timeout > 0.0, "non-positive transfer timeout " << timeout);
  ACIC_EXPECTS(completed != nullptr,
               "transfer_within needs a completion out-param");
  // Completion and timeout race on the event queue; whichever fires first
  // settles the state, disarms the other, and resumes the waiter exactly
  // once.  Both callbacks capture the shared_ptr by value, so the state
  // outlives the coroutine frame even if the loser fires after the frame
  // is gone (e.g. completion event and timer landing on one timestamp:
  // the completion sweep has already queued on_complete as a separate
  // event when the timer fires first).
  struct TimedState {
    bool settled = false;
    bool flow_done = false;
    EventId timer = 0;
    std::coroutine_handle<> waiter;
  };
  auto state = std::make_shared<TimedState>();
  const FlowId flow = start_flow(std::move(path), bytes, [this, state] {
    if (state->settled) return;  // the timeout won this timestamp's race
    state->settled = true;
    state->flow_done = true;
    if (state->timer != 0) sim_.cancel(state->timer);
    if (state->waiter) state->waiter.resume();
  });
  // Safe to arm after start_flow: callbacks only fire once control
  // returns to the event loop, so `state->timer` is always set by then.
  state->timer = sim_.in(timeout, [this, state, flow] {
    if (state->settled) return;  // the flow completed first
    state->settled = true;
    cancel_flow(flow);
    if (state->waiter) state->waiter.resume();
  });
  // Raw pointer for the awaiter (trivially destructible, see task.hpp);
  // the `state` local keeps the TimedState alive across the suspension.
  struct Awaiter {
    TimedState* state;
    bool await_ready() const noexcept { return state->settled; }
    void await_suspend(std::coroutine_handle<> h) { state->waiter = h; }
    void await_resume() const noexcept {}
  };
  co_await Awaiter{state.get()};
  *completed = state->flow_done;
}

void FlowNetwork::cancel_flow(FlowId id) {
  for (auto it = flows_.begin(); it != flows_.end(); ++it) {
    if (it->id != id) continue;
    advance();
    bytes_cancelled_ += it->remaining;
    flows_.erase(it);
    recompute_rates();
    schedule_next_completion();
    return;
  }
  // Already completed (or never admitted, e.g. a zero-byte flow): no-op.
}

double FlowNetwork::flow_rate(FlowId id) const {
  for (const auto& f : flows_) {
    if (f.id == id) return f.rate;
  }
  return 0.0;
}

void FlowNetwork::advance() {
  const SimTime now = sim_.now();
  const SimTime dt = now - last_update_;
  if (dt > 0.0) {
    for (auto& f : flows_) {
      const Bytes moved = std::min(f.rate * dt, f.remaining);
      f.remaining -= moved;
      bytes_delivered_ += moved;
    }
  }
  last_update_ = now;
}

void FlowNetwork::recompute_rates() {
  const std::size_t nf = flows_.size();
  if (nf == 0) return;

  // Progressive filling: repeatedly find the bottleneck resource (the one
  // offering the smallest per-flow fair share among its unfixed flows),
  // freeze the rates of every unfixed flow crossing it, and deduct that
  // bandwidth from every resource those flows traverse.  Only resources
  // actually crossed by an active flow participate — the solver is
  // O(rounds x (used resources + total path length)), not O(|resources|).
  std::vector<double> residual(resources_.size());
  std::vector<std::size_t> unfixed_count(resources_.size(), 0);
  std::vector<ResourceId> used;
  used.reserve(4 * nf);
  for (std::size_t i = 0; i < nf; ++i) {
    flows_[i].rate = -1.0;  // marks "not yet fixed by this solve"
    for (ResourceId r : flows_[i].path) {
      if (unfixed_count[r] == 0) {
        residual[r] = resources_[r].capacity;
        used.push_back(r);
      }
      ++unfixed_count[r];
    }
  }

  std::size_t fixed_total = 0;
  while (fixed_total < nf) {
    // Find bottleneck share among used resources.
    double best_share = std::numeric_limits<double>::infinity();
    bool found = false;
    for (ResourceId r : used) {
      if (unfixed_count[r] == 0) continue;
      const double share = residual[r] / static_cast<double>(unfixed_count[r]);
      if (share < best_share) {
        best_share = share;
        found = true;
      }
    }
    if (!found) break;  // defensive: every flow crosses no counted resource
    best_share = std::max(best_share, 0.0);

    // Freeze every unfixed flow that crosses a bottleneck resource.
    bool froze_any = false;
    for (std::size_t i = 0; i < nf; ++i) {
      if (flows_[i].rate >= 0.0) continue;  // already fixed this solve
      bool at_bottleneck = false;
      for (ResourceId r : flows_[i].path) {
        if (unfixed_count[r] == 0) continue;
        const double share =
            residual[r] / static_cast<double>(unfixed_count[r]);
        if (share <= best_share * (1.0 + 1e-12)) {
          at_bottleneck = true;
          break;
        }
      }
      if (!at_bottleneck) continue;
      froze_any = true;
      ++fixed_total;
      flows_[i].rate = best_share;
      for (ResourceId r : flows_[i].path) {
        residual[r] = std::max(0.0, residual[r] - best_share);
        --unfixed_count[r];
      }
    }
    if (!froze_any) break;  // defensive against FP pathologies
  }
  for (auto& f : flows_) {
    if (f.rate < 0.0) f.rate = 0.0;  // flows the solver could not place
  }
}

void FlowNetwork::schedule_next_completion() {
  ++generation_;
  if (flows_.empty()) return;
  SimTime min_eta = std::numeric_limits<SimTime>::infinity();
  for (const auto& f : flows_) {
    if (f.rate > 0.0) {
      min_eta = std::min(min_eta, f.remaining / f.rate);
    }
  }
  if (!std::isfinite(min_eta)) return;  // everything stalled (failure)
  // Always land on a representable instant strictly after `now` so the
  // clock provably advances (see kTimeQuantum).
  const SimTime now = sim_.now();
  SimTime target = now + std::max(min_eta, kTimeQuantum);
  if (target <= now) {
    target = std::nextafter(now, std::numeric_limits<SimTime>::infinity());
  }
  const std::uint64_t gen = generation_;
  sim_.at(target, [this, gen] { handle_completion_event(gen); });
}

void FlowNetwork::handle_completion_event(std::uint64_t generation) {
  if (generation != generation_) return;  // superseded by a newer solve
  advance();

  std::vector<std::function<void()>> callbacks;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (flow_done(it->remaining, it->rate)) {
      // Credit the sub-epsilon residue so bytes_delivered() sums to
      // exactly what was injected (byte conservation).
      bytes_delivered_ += it->remaining;
      if (it->on_complete) callbacks.push_back(std::move(it->on_complete));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  ACIC_DCHECK(bytes_conserved(),
              "flow byte conservation violated: injected="
                  << bytes_injected_ << " delivered=" << bytes_delivered_
                  << " cancelled=" << bytes_cancelled_);
  recompute_rates();
  ACIC_DCHECK(rates_feasible(), "max-min solve oversubscribed a resource");
  schedule_next_completion();
  for (auto& cb : callbacks) sim_.at(sim_.now(), std::move(cb));
}

bool FlowNetwork::bytes_conserved() const {
  Bytes in_flight = 0.0;
  for (const auto& f : flows_) in_flight += f.remaining;
  const Bytes drift =
      bytes_injected_ - (bytes_delivered_ + bytes_cancelled_ + in_flight);
  // fp noise from rate integration scales with the totals involved.
  const Bytes tolerance =
      1e-6 * std::max(1.0, bytes_injected_);
  return drift >= -tolerance && drift <= tolerance;
}

bool FlowNetwork::rates_feasible() const {
  std::vector<double> load(resources_.size(), 0.0);
  for (const auto& f : flows_) {
    if (f.rate <= 0.0) continue;
    for (ResourceId r : f.path) load[r] += f.rate;
  }
  for (std::size_t r = 0; r < resources_.size(); ++r) {
    if (load[r] > resources_[r].capacity * (1.0 + 1e-9) + 1e-9) return false;
  }
  return true;
}

}  // namespace acic::sim
