// Coroutine process type for the simulation kernel.
//
// `Task` is a lazily-started coroutine.  Awaiting a Task runs it to
// completion and resumes the awaiter (symmetric transfer); spawning a Task
// on the Simulator turns it into a detached simulated process whose frame
// the simulator keeps alive.  Exceptions propagate to the awaiter, or — for
// spawned root tasks — out of Simulator::run().
//
// TOOLCHAIN CONSTRAINT: every awaiter type used with these coroutines must
// be TRIVIALLY DESTRUCTIBLE (hold references or raw pointers, never
// shared_ptr/vector/etc.).  GCC 12.2 destroys the awaiter temporary of a
// co_await expression twice in some resume orders (fixed in later GCCs);
// with trivially destructible awaiters the double-destroy is harmless.
// tests/simcore_test.cpp carries a regression test for this.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

#include "acic/common/check.hpp"

namespace acic::sim {

class [[nodiscard]] Task {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation;
    std::exception_ptr exception;
    bool finished = false;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept {
        h.promise().finished = true;
        if (h.promise().continuation) return h.promise().continuation;
        return std::noop_coroutine();
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() noexcept {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return handle_ && handle_.promise().finished; }

  /// Start the coroutine without an awaiting parent (used by spawn()).
  void start_detached() {
    ACIC_EXPECTS(handle_, "start_detached() on an empty Task");
    ACIC_CHECK(!handle_.promise().finished,
               "resume of a finished coroutine frame");
    handle_.resume();
  }

  /// Rethrow an exception that escaped the coroutine body, if any.
  void rethrow_if_failed() const {
    if (handle_ && handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

  /// co_await support: start the child, resume the parent at completion.
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> child;
      bool await_ready() const noexcept {
        return !child || child.promise().finished;
      }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> parent) noexcept {
        // A child with a continuation already set is being awaited twice;
        // resuming two parents from one final-suspend would be UB.
        ACIC_DCHECK(!child.promise().continuation,
                    "Task awaited by two parents");
        child.promise().continuation = parent;
        return child;  // symmetric transfer into the child
      }
      void await_resume() const {
        if (child && child.promise().exception) {
          std::rethrow_exception(child.promise().exception);
        }
      }
    };
    return Awaiter{handle_};
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace acic::sim
