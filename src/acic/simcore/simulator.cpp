#include "acic/simcore/simulator.hpp"

#include <algorithm>
#include <utility>

#include "acic/common/error.hpp"
#include "acic/obs/metrics.hpp"

namespace acic::sim {

Simulator::~Simulator() {
  if (executed_ == 0) return;
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("sim.simulations").inc();
  registry.counter("sim.events").add(static_cast<double>(executed_));
  registry.counter("sim.simulated_seconds").add(now_);
}

// --- Intrusive heap plumbing ----------------------------------------------
//
// heap_ holds arena slot indices ordered by (t, id); every move of a heap
// entry writes the new position back into its slot's heap_pos so cancel()
// and step() can unlink in O(log n) without searching.

void Simulator::sift_up(std::size_t pos) {
  const std::uint32_t slot = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 2;
    if (!fires_before(slot, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    arena_[heap_[pos]].heap_pos = static_cast<std::uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = slot;
  arena_[slot].heap_pos = static_cast<std::uint32_t>(pos);
}

void Simulator::sift_down(std::size_t pos) {
  const std::uint32_t slot = heap_[pos];
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t child = 2 * pos + 1;
    if (child >= n) break;
    if (child + 1 < n && fires_before(heap_[child + 1], heap_[child])) {
      ++child;
    }
    if (!fires_before(heap_[child], slot)) break;
    heap_[pos] = heap_[child];
    arena_[heap_[pos]].heap_pos = static_cast<std::uint32_t>(pos);
    pos = child;
  }
  heap_[pos] = slot;
  arena_[slot].heap_pos = static_cast<std::uint32_t>(pos);
}

void Simulator::heap_remove(std::size_t pos) {
  ACIC_DCHECK(pos < heap_.size(), "heap_remove at " << pos << " of "
                                                    << heap_.size());
  const std::size_t last = heap_.size() - 1;
  if (pos != last) {
    const std::uint32_t moved = heap_[last];
    heap_[pos] = moved;
    arena_[moved].heap_pos = static_cast<std::uint32_t>(pos);
    heap_.pop_back();
    // The moved-in entry may need to travel either direction relative to
    // the removed one's old position.
    sift_down(pos);
    sift_up(arena_[moved].heap_pos);
  } else {
    heap_.pop_back();
  }
}

std::uint32_t Simulator::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  ACIC_CHECK(arena_.size() < kNoSlot, "event arena exhausted");
  arena_.emplace_back();
  return static_cast<std::uint32_t>(arena_.size() - 1);
}

void Simulator::release_slot(std::uint32_t slot) {
  arena_[slot].fn = nullptr;  // drop the capture buffer eagerly
  free_slots_.push_back(slot);
}

void Simulator::trim_window() {
  // Advance past fired/cancelled ids, then drop the dead prefix once it
  // dominates the vector — amortised O(1) per scheduled event.
  while (window_head_ < slot_of_.size() &&
         slot_of_[window_head_] == kNoSlot) {
    ++window_head_;
  }
  if (window_head_ >= 64 && window_head_ * 2 >= slot_of_.size()) {
    slot_of_.erase(slot_of_.begin(),
                   slot_of_.begin() +
                       static_cast<std::ptrdiff_t>(window_head_));
    window_base_ += window_head_;
    window_head_ = 0;
  }
}

EventId Simulator::at(SimTime t, std::function<void()> fn) {
  ACIC_EXPECTS(t >= now_, "event scheduled in the past: t=" << t
                                                            << " now=" << now_);
  ACIC_EXPECTS(fn != nullptr, "event scheduled with an empty callback");
  const EventId id = next_id_++;
  const std::uint32_t slot = acquire_slot();
  EventSlot& ev = arena_[slot];
  ev.t = t;
  ev.id = id;
  ev.fn = std::move(fn);
  slot_of_.push_back(slot);
  heap_.push_back(slot);
  sift_up(heap_.size() - 1);
  trim_window();
  return id;
}

void Simulator::cancel(EventId id) {
  ACIC_EXPECTS(id >= 1 && id < next_id_,
               "cancel of EventId " << id << " that was never issued");
  if (id < window_base_) return;  // reaped long ago: already fired/cancelled
  const std::size_t idx = window_index(id);
  const std::uint32_t slot = slot_of_[idx];
  if (slot == kNoSlot) return;  // already fired or already cancelled
  slot_of_[idx] = kNoSlot;
  heap_remove(arena_[slot].heap_pos);
  release_slot(slot);
}

void Simulator::spawn(Task task) {
  ACIC_EXPECTS(task.valid(), "spawn() needs a live coroutine");
  // Start before storing: the process may spawn further processes
  // re-entrantly, which would reallocate `processes_` under a reference.
  task.start_detached();
  processes_.push_back(std::move(task));
  // Fork-join patterns spawn short-lived children by the hundred
  // thousand; reap the finished ones so the table stays small.
  if (++spawned_since_compact_ >= 4096) compact_processes();
}

void Simulator::compact_processes() {
  spawned_since_compact_ = 0;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    if (processes_[i].done()) {
      processes_[i].rethrow_if_failed();  // surface errors before reaping
      continue;
    }
    if (keep != i) processes_[keep] = std::move(processes_[i]);
    ++keep;
  }
  processes_.resize(keep);
}

bool Simulator::step() {
  if (heap_.empty()) return false;
  const std::uint32_t slot = heap_.front();
  const SimTime t = arena_[slot].t;
  const EventId id = arena_[slot].id;
  // Move the callback out and fully unlink the event *before* invoking it:
  // the callback may schedule (reallocating arena_) or cancel re-entrantly,
  // so no reference into the arena survives past this point.
  auto fn = std::move(arena_[slot].fn);
  heap_remove(0);
  slot_of_[window_index(id)] = kNoSlot;
  release_slot(slot);
  // Kernel invariants: virtual time never rewinds, and equal-time events
  // fire in issue order (the determinism contract the trained models and
  // every regression figure rely on).
  ACIC_CHECK(t >= now_,
             "event queue yielded a past event: t=" << t << " now=" << now_);
  ACIC_DCHECK(t > last_fired_t_ || (t == last_fired_t_ && id > last_fired_id_),
              "FIFO tie-break violated at t=" << t << " id=" << id);
  last_fired_t_ = t;
  last_fired_id_ = id;
  now_ = t;
  ++executed_;
  fn();
  return true;
}

void Simulator::run() {
  while (step()) {
  }
  check_spawned_exceptions();
}

void Simulator::run_until_processes_done() {
  while (!all_processes_done() && step()) {
  }
  check_spawned_exceptions();
  ACIC_CHECK_MSG(all_processes_done(),
                 "event queue drained with processes still suspended "
                 "(deadlock)");
}

bool Simulator::run_until_processes_done_or(SimTime deadline) {
  ACIC_EXPECTS(deadline >= now_, "watchdog deadline " << deadline
                                                      << " is already past ("
                                                      << now_ << ")");
  while (!all_processes_done()) {
    if (heap_.empty()) break;            // stalled: nothing left to fire
    if (head_time() > deadline) break;   // watchdog: out of simulated time
    step();
  }
  check_spawned_exceptions();
  return all_processes_done();
}

void Simulator::run_until(SimTime deadline) {
  ACIC_EXPECTS(deadline >= now_, "run_until(" << deadline
                                              << ") would rewind the clock from "
                                              << now_);
  // The heap head is always live (cancel unlinks eagerly), so this check
  // is exact: no event past the deadline can fire.
  while (!heap_.empty() && head_time() <= deadline) {
    step();
  }
  now_ = std::max(now_, deadline);
  check_spawned_exceptions();
}

bool Simulator::all_processes_done() const {
  // Early-out on the first unfinished process; together with compaction
  // this keeps the per-event check O(1) amortised.
  for (const auto& p : processes_) {
    if (!p.done()) return false;
  }
  return true;
}

void Simulator::check_spawned_exceptions() {
  for (const auto& p : processes_) p.rethrow_if_failed();
}

}  // namespace acic::sim
