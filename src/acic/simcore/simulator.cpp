#include "acic/simcore/simulator.hpp"

#include <algorithm>

#include "acic/common/error.hpp"
#include "acic/obs/metrics.hpp"

namespace acic::sim {

Simulator::~Simulator() {
  if (executed_ == 0) return;
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("sim.simulations").inc();
  registry.counter("sim.events").add(static_cast<double>(executed_));
  registry.counter("sim.simulated_seconds").add(now_);
}

EventId Simulator::at(SimTime t, std::function<void()> fn) {
  ACIC_EXPECTS(t >= now_, "event scheduled in the past: t=" << t
                                                            << " now=" << now_);
  ACIC_EXPECTS(fn != nullptr, "event scheduled with an empty callback");
  const EventId id = next_id_++;
  queue_.push(Scheduled{t, id, std::move(fn)});
  return id;
}

void Simulator::cancel(EventId id) {
  ACIC_EXPECTS(id >= 1 && id < next_id_,
               "cancel of EventId " << id << " that was never issued");
  cancelled_.push_back(id);
}

void Simulator::spawn(Task task) {
  ACIC_EXPECTS(task.valid(), "spawn() needs a live coroutine");
  // Start before storing: the process may spawn further processes
  // re-entrantly, which would reallocate `processes_` under a reference.
  task.start_detached();
  processes_.push_back(std::move(task));
  // Fork-join patterns spawn short-lived children by the hundred
  // thousand; reap the finished ones so the table stays small.
  if (++spawned_since_compact_ >= 4096) compact_processes();
}

void Simulator::compact_processes() {
  spawned_since_compact_ = 0;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    if (processes_[i].done()) {
      processes_[i].rethrow_if_failed();  // surface errors before reaping
      continue;
    }
    if (keep != i) processes_[keep] = std::move(processes_[i]);
    ++keep;
  }
  processes_.resize(keep);
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Scheduled ev = queue_.top();
    queue_.pop();
    const auto it =
        std::find(cancelled_.begin(), cancelled_.end(), ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    // Kernel invariants: virtual time never rewinds, and equal-time events
    // fire in issue order (the determinism contract the trained models and
    // every regression figure rely on).
    ACIC_CHECK(ev.t >= now_, "event queue yielded a past event: t="
                                 << ev.t << " now=" << now_);
    ACIC_DCHECK(ev.t > last_fired_t_ ||
                    (ev.t == last_fired_t_ && ev.id > last_fired_id_),
                "FIFO tie-break violated at t=" << ev.t << " id=" << ev.id);
    last_fired_t_ = ev.t;
    last_fired_id_ = ev.id;
    now_ = ev.t;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::run() {
  while (step()) {
  }
  check_spawned_exceptions();
}

void Simulator::run_until_processes_done() {
  while (!all_processes_done() && step()) {
  }
  check_spawned_exceptions();
  ACIC_CHECK_MSG(all_processes_done(),
                 "event queue drained with processes still suspended "
                 "(deadlock)");
}

bool Simulator::run_until_processes_done_or(SimTime deadline) {
  ACIC_EXPECTS(deadline >= now_, "watchdog deadline " << deadline
                                                      << " is already past ("
                                                      << now_ << ")");
  while (!all_processes_done()) {
    // Drop cancelled events at the head so the deadline check sees the
    // event that would actually fire (step() skips them lazily, which
    // could otherwise fire a live event past the deadline in one call).
    while (!queue_.empty()) {
      const auto it =
          std::find(cancelled_.begin(), cancelled_.end(), queue_.top().id);
      if (it == cancelled_.end()) break;
      cancelled_.erase(it);
      queue_.pop();
    }
    if (queue_.empty()) break;             // stalled: nothing left to fire
    if (queue_.top().t > deadline) break;  // watchdog: out of simulated time
    step();
  }
  check_spawned_exceptions();
  return all_processes_done();
}

void Simulator::run_until(SimTime deadline) {
  ACIC_EXPECTS(deadline >= now_, "run_until(" << deadline
                                              << ") would rewind the clock from "
                                              << now_);
  while (!queue_.empty() && queue_.top().t <= deadline) {
    step();
  }
  now_ = std::max(now_, deadline);
  check_spawned_exceptions();
}

bool Simulator::all_processes_done() const {
  // Early-out on the first unfinished process; together with compaction
  // this keeps the per-event check O(1) amortised.
  for (const auto& p : processes_) {
    if (!p.done()) return false;
  }
  return true;
}

void Simulator::check_spawned_exceptions() {
  for (const auto& p : processes_) p.rethrow_if_failed();
}

}  // namespace acic::sim
