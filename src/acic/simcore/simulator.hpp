// Discrete-event simulation kernel.
//
// A Simulator owns a virtual clock and an intrusive binary min-heap of
// timestamped events.  Higher layers build two styles of logic on top of
// it:
//   * callback events scheduled with `at()` / `in()`, and
//   * process-style C++20 coroutines (`Task`) spawned with `spawn()`,
//     which suspend on awaitables (timers, conditions, flow completions).
// Events with equal timestamps fire in FIFO order (a monotone sequence
// number breaks ties), which keeps runs deterministic.
//
// Event storage is a slot-reuse arena: each scheduled event occupies one
// `EventSlot` whose index the heap orders by (t, id), and fired or
// cancelled events release their slot (and its std::function's capture
// buffer) for the next `at()`.  A steady-state simulation therefore
// allocates no per-event queue nodes — the ~2.4 ms IOR run pushes and
// pops hundreds of thousands of events through a handful of recycled
// slots.  `cancel()` unlinks its event from the heap immediately
// (O(log n), slot position is intrusive), so there are no tombstones:
// the heap head is always a live event, which is what makes the deadline
// checks in `run_until*` exact.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "acic/common/check.hpp"
#include "acic/common/units.hpp"
#include "acic/simcore/task.hpp"

namespace acic::sim {

/// Handle for cancelling a scheduled event.
using EventId = std::uint64_t;

class Simulator {
 public:
  Simulator() = default;
  /// Rolls this simulator's lifetime totals (events executed, simulated
  /// seconds) into the process-wide `acic::obs` registry — one registry
  /// touch per simulation, so the per-event hot path stays metric-free.
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time, seconds.
  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute virtual time `t` (>= now).
  EventId at(SimTime t, std::function<void()> fn);

  /// Schedule `fn` after a delay of `dt` seconds.
  EventId in(SimTime dt, std::function<void()> fn) {
    return at(now_ + dt, std::move(fn));
  }

  /// Cancel a previously scheduled event; harmless if already fired (or
  /// already cancelled).  A pending event is unlinked from the heap right
  /// here in O(log n) — no tombstone is left behind, and a stale id
  /// (fired, cancelled, or reaped long ago) leaves no residue of any
  /// kind.
  void cancel(EventId id);

  /// Launch a coroutine process.  The simulator keeps its frame alive for
  /// the lifetime of the simulation and rethrows any escaped exception at
  /// the end of run().
  void spawn(Task task);

  /// Run until the event queue drains.  Throws if any spawned process
  /// terminated with an exception.
  void run();

  /// Run until every spawned process has finished (later events — e.g.
  /// scheduled fault injections past the job's end — stay queued).
  /// Throws if any process terminated with an exception.
  void run_until_processes_done();

  /// Watchdog variant: run until every process has finished, the queue
  /// drains, or the next event lies past `deadline` — whichever comes
  /// first.  Returns true iff all processes finished.  Unlike
  /// run_until_processes_done(), a stalled cluster (capacity permanently
  /// zero, drained queue) is reported, not thrown: the caller decides how
  /// to grade the outcome.  Exceptions from spawned processes still
  /// propagate.
  bool run_until_processes_done_or(SimTime deadline);

  /// Run until `deadline` (events after it stay queued, including events
  /// at exactly the deadline's timestamp — those fire).
  void run_until(SimTime deadline);

  /// Execute the next event; false when the queue is empty.
  bool step();

  /// True once every spawned process has finished.
  bool all_processes_done() const;

  /// Total number of events executed so far (for micro-benchmarks).
  std::uint64_t events_executed() const { return executed_; }

  /// Events currently scheduled and not yet fired or cancelled.
  std::size_t pending_events() const { return heap_.size(); }

  /// Arena slots ever allocated (tests/benches: slot reuse keeps this at
  /// the simulation's peak concurrent event count, not its event total).
  std::size_t event_arena_slots() const { return arena_.size(); }

  /// Awaitable for `co_await simulator.delay(dt)` inside a Task.
  /// Delays must be non-negative: a negative dt is always a sign of broken
  /// time arithmetic upstream, not a request to travel backwards.
  auto delay(SimTime dt) {
    ACIC_DCHECK(dt >= 0.0, "negative delay " << dt);
    struct Awaiter {
      Simulator& sim;
      SimTime dt;
      bool await_ready() const noexcept { return dt <= 0.0; }
      void await_suspend(std::coroutine_handle<> h) {
        sim.in(dt, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, dt};
  }

 private:
  /// One arena slot.  `heap_pos` is the intrusive back-pointer into
  /// `heap_` that makes cancel() O(log n): the slot knows where it sits,
  /// so unlinking never searches.
  struct EventSlot {
    SimTime t = 0.0;
    EventId id = 0;
    std::uint32_t heap_pos = 0;
    std::function<void()> fn;
  };
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  /// True when slot `a`'s event fires before slot `b`'s: earlier time
  /// first, issue order (monotone id) breaking ties — the determinism
  /// contract.
  bool fires_before(std::uint32_t a, std::uint32_t b) const {
    const EventSlot& ea = arena_[a];
    const EventSlot& eb = arena_[b];
    if (ea.t != eb.t) return ea.t < eb.t;
    return ea.id < eb.id;
  }
  SimTime head_time() const { return arena_[heap_.front()].t; }

  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);
  void heap_remove(std::size_t pos);
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  /// slot_of_ index for a live id; valid only while the event is pending.
  std::size_t window_index(EventId id) const {
    ACIC_DCHECK(id >= window_base_ && id < next_id_,
                "event id " << id << " outside the live window");
    return static_cast<std::size_t>(id - window_base_);
  }
  void trim_window();

  void check_spawned_exceptions();
  /// Drop frames of finished processes (after surfacing their errors) so
  /// long simulations with many short-lived children stay bounded.
  void compact_processes();

  SimTime now_ = 0.0;
  EventId next_id_ = 1;
  // Last fired (t, id) pair; backs the ACIC_DCHECK that equal-time events
  // fire in strictly increasing id order.
  SimTime last_fired_t_ = -1.0;
  EventId last_fired_id_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t spawned_since_compact_ = 0;

  // Event storage: arena + intrusive heap of slot indices, plus the
  // id -> slot window that resolves cancel() handles.  Ids are issued
  // densely, so the window is a vector indexed by (id - window_base_);
  // fired/cancelled entries become kNoSlot and the dead prefix is trimmed
  // amortised-O(1) as new events are scheduled.
  std::vector<EventSlot> arena_;
  std::vector<std::uint32_t> heap_;        // slot indices, min-heap on (t, id)
  std::vector<std::uint32_t> free_slots_;  // recycled arena slots
  std::vector<std::uint32_t> slot_of_;     // slot_of_[id - window_base_]
  EventId window_base_ = 1;
  std::size_t window_head_ = 0;  // leading dead entries awaiting trim

  std::vector<Task> processes_;
};

}  // namespace acic::sim
